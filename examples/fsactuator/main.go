// Fsactuator: drive the controller's isolation decisions into the exact
// Linux kernel interface formats — cgroup cpuset lists, resctrl CAT
// schemata, cpufreq caps and HTB ceilings — under a scratch directory.
// Pointing the same code at "/" on a CAT-capable server programs real
// hardware.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"heracles"
	"heracles/internal/isolation"
)

func main() {
	root, err := os.MkdirTemp("", "heracles-fs-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(root)

	fs := heracles.NewFSActuator(root, heracles.DefaultFSLayout())

	// The latency-critical job owns CPUs 0-27 with their hyperthread
	// siblings 36-63; best-effort tasks get the rest.
	lc := isolation.RangeCPUSet(0, 27)
	for c := 36; c <= 63; c++ {
		lc.Add(c)
	}
	be := isolation.RangeCPUSet(28, 35)
	for c := 64; c <= 71; c++ {
		be.Add(c)
	}
	must(fs.SetCPUSet("lc", lc))
	must(fs.SetCPUSet("be", be))

	// CAT: 18 of 20 ways to the LC partition, 2 ways to BE, per socket.
	lcMask, _ := isolation.NewWayMask(2, 18)
	beMask, _ := isolation.NewWayMask(0, 2)
	must(fs.SetSchemata("lc", []isolation.WayMask{lcMask, lcMask}))
	must(fs.SetSchemata("be", []isolation.WayMask{beMask, beMask}))

	// Per-core DVFS cap for the BE cores and HTB ceiling for BE egress.
	must(fs.SetFreqCap(be, 1.8))
	must(fs.SetHTBCeil("be", 0.55))

	// Show the resulting kernel-format tree.
	_ = filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		b, _ := os.ReadFile(path)
		rel, _ := filepath.Rel(root, path)
		fmt.Printf("%-55s %s", rel, string(b))
		return nil
	})

	// Everything reads back through the same parsers the kernel formats
	// define.
	gotLC, _ := fs.ReadCPUSet("lc")
	schemata, _ := fs.ReadSchemata("be")
	cap, _ := fs.ReadFreqCap(28)
	ceil, _ := fs.ReadHTBCeil("be")
	fmt.Printf("\nround-trip: lc cpus=%s be schemata=%s cap=%.1fGHz ceil=%.2fGB/s\n",
		gotLC, isolation.SchemataLine(schemata), cap, ceil)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
