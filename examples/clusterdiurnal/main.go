// Clusterdiurnal: the §5.3 experiment at example scale — a websearch
// fan-out cluster rides a diurnal load curve while Heracles colocates
// brain and streetview on the leaves, converting latency slack into
// throughput with no violations of the cluster-level (µ/30s) SLO.
package main

import (
	"fmt"
	"time"

	"heracles"
)

func main() {
	lab := heracles.DefaultLab()

	// The diurnal curve is a scenario load shape; the same scenario can
	// carry timed events (BE churn, degradation) — see
	// examples/fleetscenarios.
	sc := heracles.Scenario{
		Name:     "diurnal",
		Duration: 3 * time.Hour,
		Load: heracles.DiurnalShape(heracles.DiurnalConfig{
			Duration: 3 * time.Hour,
			Step:     time.Second,
			MinLoad:  0.20,
			MaxLoad:  0.80,
			Seed:     7,
		}),
	}

	for _, mode := range []bool{false, true} {
		cfg := heracles.ClusterConfig{
			Leaves:   12,
			Heracles: mode,
			HW:       lab.Cfg,
			LC:       lab.LC("websearch"),
			Brain:    lab.BE("brain"),
			SView:    lab.BE("streetview"),
			Seed:     7,
			Model:    lab.DRAMModel("websearch"),
		}
		res := heracles.RunClusterScenario(cfg, sc)
		s := res.Summarize()
		name := "baseline"
		if mode {
			name = "heracles"
		}
		fmt.Printf("%-8s meanEMU=%5.1f%% latency(mean/worst)=%.0f%%/%.0f%% of SLO, violations=%d\n",
			name, 100*s.MeanEMU, 100*s.MeanRootFrac, 100*s.MaxRootFrac, s.Violations)
	}

	fmt.Println()
	for _, c := range heracles.AnalyzeTCO(heracles.BarrosoTCO()) {
		fmt.Printf("raising a %2.0f%%-utilised cluster to %2.0f%%: throughput/TCO %+.0f%% (energy-proportionality alone: %+.1f%%)\n",
			100*c.BaseUtil, 100*c.TargetUtil, 100*c.HeraclesGain, 100*c.EnergyGain)
	}
}
