// Checkpoint: snapshot a Heracles cluster run mid-flight and resume it
// bit-identically — the mechanism behind cmd/cluster -checkpoint/-resume,
// the control plane's pause/migrate routes and heraclesd's crash
// recovery (DESIGN.md §11).
//
// The run is a 20-minute flash-crowd scenario with the BE job scheduler
// attached. At minute 8 the engine's full state — machines, controllers,
// scheduler, scenario cursor — is serialized to a JSON file; the resumed
// run replays only the remaining epochs, and the example verifies every
// one of them matches the uninterrupted reference exactly.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"heracles"
)

func main() {
	lab := heracles.DefaultLab()

	sc := heracles.Scenario{
		Name:     "flashcrowd",
		Duration: 20 * time.Minute,
		Load: heracles.SumShapes(
			heracles.FlatLoad(0.35),
			heracles.FlashCrowdLoad{
				Start: 10 * time.Minute, Rise: time.Minute,
				Hold: 2 * time.Minute, Fall: time.Minute, Amp: 0.4,
			},
		),
	}
	cfg := heracles.ClusterConfig{
		Leaves:   8,
		Heracles: true,
		HW:       lab.Cfg,
		LC:       lab.LC("websearch"),
		Brain:    lab.BE("brain"),
		SView:    lab.BE("streetview"),
		Seed:     7,
		Model:    lab.DRAMModel("websearch"),
		Warmup:   2 * time.Minute,
		Sched: &heracles.SchedConfig{
			Jobs: heracles.SyntheticJobs(12, 20*time.Minute, 7,
				[]string{"brain", "streetview"}),
		},
	}

	// Reference: the uninterrupted run.
	full := heracles.RunClusterScenario(cfg, sc)

	// Interrupted run: snapshot at minute 8, persisted like a real
	// operator would (atomic write-then-rename).
	path := filepath.Join(os.TempDir(), "heracles-example.ckpt.json")
	ckCfg := cfg
	ckCfg.CheckpointAt = 8 * time.Minute
	ckCfg.OnCheckpoint = func(cp *heracles.EngineCheckpoint) {
		if err := cp.WriteFile(path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("checkpoint at t=%v -> %s (%d machines, epoch %d)\n",
			cp.Now, path, len(cp.Machines), cp.Epoch)
	}
	heracles.RunClusterScenario(ckCfg, sc)

	// Resume from the file. Same config, same scenario: the checkpoint
	// carries the state, the caller re-supplies the code.
	cp, err := heracles.ReadCheckpoint(path)
	if err != nil {
		log.Fatal(err)
	}
	resumed, err := heracles.RunClusterScenarioFrom(cfg, sc, cp)
	if err != nil {
		log.Fatal(err)
	}

	// Every resumed epoch must equal the uninterrupted run's.
	skip := int(cp.Epoch)
	diverged := 0
	for i, e := range resumed.Epochs {
		if e != full.Epochs[skip+i] {
			diverged++
		}
	}
	fmt.Printf("resumed %d epochs after the checkpoint: %d diverged from the uninterrupted run\n",
		len(resumed.Epochs), diverged)

	fs, rs := full.Summarize(), resumed.Summarize()
	fmt.Printf("full run:    meanEMU=%5.1f%% violations=%d sched goodput=%.1f%%\n",
		100*fs.MeanEMU, fs.Violations, 100*fs.Sched.GoodputFrac())
	fmt.Printf("resumed run: jobs completed %d/%d, goodput %.1f%% (accounting continued across the restore)\n",
		rs.Sched.Completed, rs.Sched.Submitted, 100*rs.Sched.GoodputFrac())
	os.Remove(path)
}
