// Fleetscenarios: the fleet-scale walkthrough — compose declarative load
// shapes and timed events into per-cluster scenarios, run a heterogeneous
// fleet (two hardware generations) baseline vs Heracles, and price the
// utilisation lift with the §5.3 TCO model.
//
// Everything here goes through the public facade: shapes compose with
// SumShapes/ClampShape, events schedule best-effort churn and a mid-run
// load-target change, and RunFleet fans the cluster runs out over a
// deterministic worker pool (any -workers count is bit-identical).
package main

import (
	"fmt"
	"time"

	"heracles"
)

func main() {
	const horizon = 10 * time.Minute

	// Scenario 1: a ramping morning with a flash crowd. The crowd peaks
	// above the controller's 0.85 load-disable threshold, so Heracles
	// parks the BE tasks for its duration — and brain departs for a
	// rebuild partway through, then returns.
	morning := heracles.Scenario{
		Name:     "ramp+flashcrowd",
		Duration: horizon,
		Load: heracles.ClampShape(heracles.SumShapes(
			heracles.RampLoad{From: 0.25, To: 0.55, Start: 0, End: horizon},
			heracles.FlashCrowdLoad{
				Start: 6 * time.Minute,
				Rise:  time.Minute, Hold: 90 * time.Second, Fall: time.Minute,
				Amp: 0.35,
			},
		), 0, 0.88),
		// Brain lives on the even leaves (the §5.3 half-and-half split);
		// the rebuild churn targets exactly those so the fleet's workload
		// mix is unchanged after the return.
		Events: []heracles.ScenarioEvent{
			heracles.BEDepartEvent(3*time.Minute, 0, "brain"),
			heracles.BEDepartEvent(3*time.Minute, 2, "brain"),
			heracles.BEArriveEvent(5*time.Minute, 0, "brain"),
			heracles.BEArriveEvent(5*time.Minute, 2, "brain"),
		},
	}

	// Scenario 2: stepped load-target changes (§5.2) on the older compact
	// generation, with one leaf degrading mid-run (a slow machine the
	// fan-out root still has to wait for).
	evening := heracles.Scenario{
		Name:     "steps+slowleaf",
		Duration: horizon,
		Load: heracles.StepLoads{
			{At: 0, Load: 0.30},
			{At: 4 * time.Minute, Load: 0.45},
			{At: 8 * time.Minute, Load: 0.35},
		},
		Events: []heracles.ScenarioEvent{
			heracles.DegradeEvent(5*time.Minute, 0, 1.4),
			heracles.LoadScaleEvent(9*time.Minute, 1.1),
		},
	}

	cfg := heracles.FleetConfig{
		Seed: 17,
		Clusters: []heracles.FleetClusterSpec{
			{
				Name: "std", Count: 2,
				HW: heracles.DefaultHardware(), Leaves: 4,
				Warmup: 2 * time.Minute, Scenario: morning,
			},
			{
				Name: "compact",
				HW:   heracles.CompactHardware(), Leaves: 3,
				LeafTargetFrac: 0.65, DynamicLeafTargets: true,
				Warmup: 2 * time.Minute, Scenario: evening,
			},
		},
	}

	res := heracles.RunFleet(cfg)
	fmt.Print(res.String())

	fmt.Printf("\nfleet EMU %.1f%% -> %.1f%% with %d Heracles SLO violations\n",
		100*res.Baseline.MeanEMU, 100*res.Heracles.MeanEMU, res.Heracles.Violations)
}
