// Customworkload: define your own latency-critical service and best-effort
// job, calibrate them, and run them under Heracles — the path a downstream
// user takes to model their own fleet.
//
// The LC service modelled here is an RPC-based ad-ranking tier: ~4 ms of
// compute per request, a 6 MB hot working set over a 128 MB model, a p99
// SLO, and moderate egress. The BE job is a log-compaction task that
// streams heavily through DRAM.
package main

import (
	"fmt"
	"time"

	"heracles"
	"heracles/internal/cache"
)

func main() {
	hwCfg := heracles.DefaultHardware()

	adrank := heracles.LCSpec{
		Name:           "adrank",
		SLOQuantile:    0.99,
		SLOMultiplier:  3.0,
		CPUTime:        4 * time.Millisecond,
		MemTime:        1 * time.Millisecond,
		Sigma:          0.5,
		AccessesPerReq: 300e3,
		CacheComponents: []cache.Component{
			{Name: "hot", AccessFrac: 0.6, FootprintMB: 6, HitMax: 0.99, Theta: 0.6},
			{Name: "model", AccessFrac: 0.4, FootprintMB: 128, HitMax: 0.4, Theta: 1.0},
		},
		RefOutstanding:  24,
		BytesPerReq:     4 * 1024,
		Flows:           32,
		Activity:        0.95,
		RampPenalty:     10 * time.Millisecond,
		OSSharedPenalty: 40 * time.Millisecond,
	}

	compact := heracles.BESpec{
		Name:              "log-compaction",
		CPUFrac:           0.3,
		MemFrac:           0.7,
		AccessRatePerCore: 90e6,
		CacheComponents: []cache.Component{
			{Name: "segments", AccessFrac: 1, FootprintMB: 1024, HitMax: 0.1, Theta: 1},
		},
		Activity: 0.8,
	}

	lc := heracles.CalibrateLC(hwCfg, heracles.SpecOf(adrank))
	be := heracles.CalibrateBE(hwCfg, compact)
	fmt.Printf("calibrated %s: SLO=%v peak=%.0f QPS guaranteed=%.2f GHz\n",
		adrank.Name, lc.SLO, lc.PeakQPS, lc.GuaranteedGHz)

	m := heracles.NewMachine(hwCfg)
	m.SetLC(lc)
	m.AddBE(be, heracles.PlaceDedicated)
	m.SetLoad(0.35)

	ctl := heracles.NewController(m, nil, heracles.DefaultControllerConfig())
	ctl.OnEvent(func(e heracles.ControllerEvent) {
		if e.Action == "grow-cores" || e.Action == "dram-saturation" {
			fmt.Printf("  [%7v] %s: %s\n", e.At, e.Action, e.Detail)
		}
	})

	for i := 0; i < 600; i++ { // ten simulated minutes
		t := m.Step()
		ctl.Step(m.Clock().Now())
		if i%120 == 119 {
			fmt.Printf("t=%-5v tail=%5.1f%% of SLO, EMU=%5.1f%%, compaction rate=%.2f of alone\n",
				m.Clock().Now(), 100*t.TailLatency.Seconds()/lc.SLO.Seconds(),
				100*t.EMU, t.BERateNorm)
		}
	}
}
