// Schedpolicies: the slack-aware scheduler walkthrough — close the loop
// the paper leaves open in §5.3: each machine's Heracles controller
// advertises its latency slack upward, and a fleet scheduler dispatches
// best-effort jobs onto that slack.
//
// Everything goes through the public facade. A deterministic synthetic
// job batch (SyntheticJobs) oversubscribes the fleet's BE capacity; two
// leaves run tightened latency targets so their controllers are stingy
// with BE resources; RunFleetPolicies then runs one paired arm per
// placement policy — same seeds everywhere — so the goodput spread
// between slack-greedy and the random baseline is attributable to
// placement quality alone.
package main

import (
	"fmt"
	"time"

	"heracles"
)

func main() {
	const horizon = 15 * time.Minute

	// A steady afternoon with two fragile leaves: their controllers
	// defend tightened latency targets (thin slack), so a slack-blind
	// policy that keeps feeding them starves its jobs, while the real
	// root latency stays comfortably inside the SLO.
	sc := heracles.Scenario{
		Name:     "two-fragile-leaves",
		Duration: horizon,
		Load:     heracles.FlatLoad(0.55),
		Events: []heracles.ScenarioEvent{
			heracles.SLOScaleEvent(0, 1, 0.62),
			heracles.SLOScaleEvent(0, 2, 0.70),
		},
	}

	// Deterministic job stream: 24 jobs over the horizon, one to four
	// cores and one to five minutes of CPU work each, brain/streetview
	// mix. Doubling demand and work oversubscribes the four leaves, so
	// placement decisions matter.
	jobs := heracles.SyntheticJobs(24, horizon, 7, []string{"brain", "streetview"})
	for i := range jobs {
		jobs[i].Demand *= 2
		jobs[i].Work *= 2
	}

	cfg := heracles.FleetConfig{
		Seed: 42,
		Clusters: []heracles.FleetClusterSpec{{
			Name: "std", HW: heracles.DefaultHardware(), Leaves: 4,
			RootSamples: 40, Warmup: 2 * time.Minute,
			Scenario: sc, Jobs: jobs,
		}},
	}

	res := heracles.RunFleetPolicies(cfg, heracles.SchedPolicyNames())
	fmt.Print(res.String())

	fmt.Println("\nWhy slack-greedy wins: eligibility (controller allows BE,")
	fmt.Println("cores fit) is enforced for every policy, so the spread above is")
	fmt.Println("pure placement quality — slack-blind policies park work on")
	fmt.Println("machines whose controllers will not grow it, while slack-greedy")
	fmt.Println("follows the capacity each controller actually advertises.")
}
