// Quickstart: colocate Google-style websearch with the brain deep-learning
// batch job under Heracles and watch utilisation rise with zero SLO
// violations — the paper's headline result in ~40 lines.
package main

import (
	"fmt"

	"heracles"
)

func main() {
	// A lab calibrates workloads on the reference dual-socket server:
	// SLOs, peak QPS and guaranteed frequencies are derived, not assumed.
	lab := heracles.DefaultLab()

	loads := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}

	// Baseline: websearch alone. Utilisation equals load; everything else
	// is stranded.
	baseline := lab.Baseline("websearch", loads, heracles.RunOpts{})
	fmt.Println(baseline)

	// Heracles: the controller grows brain into every resource the SLO
	// does not need — cores, cache ways, power and network — and backs
	// off before latency is at risk.
	colocated := lab.Colocate("websearch", "brain", loads, heracles.RunOpts{
		UseDRAMModel: true,
	})
	fmt.Println(colocated)

	if v := colocated.Violations(); len(v) == 0 {
		fmt.Printf("no SLO violations; mean EMU %.0f%% (baseline %.0f%%)\n",
			100*colocated.MeanEMU(), 100*baseline.MeanEMU())
	} else {
		fmt.Printf("SLO violations at loads %v\n", v)
	}
}
