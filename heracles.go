// Package heracles is a faithful reimplementation of Heracles — the
// feedback controller from "Heracles: Improving Resource Efficiency at
// Scale" (Lo, Cheng, Govindaraju, Ranganathan, Kozyrakis; ISCA 2015) —
// together with everything needed to reproduce the paper's evaluation:
// a simulated dual-socket server (cores, hyperthreads, CAT-partitioned
// LLC, DRAM controllers, RAPL/DVFS power, HTB-shaped NIC), calibrated
// models of the paper's three latency-critical and six best-effort
// workloads, baseline policies, a fan-out cluster simulator, a TCO model,
// experiment harnesses for every figure and table, and a control plane
// that serves live controller-managed machines over HTTP (REST + SSE +
// Prometheus; see ServeConfig and cmd/heraclesd).
//
// # Quick start
//
//	lab := heracles.NewLab(heracles.DefaultHardware())
//	series := lab.Colocate("websearch", "brain", []float64{0.2, 0.5, 0.8},
//	    heracles.RunOpts{})
//	fmt.Println(series)
//
// The controller itself (heracles.Controller) is written against the Env
// interface, so the same control logic drives either the simulated
// machine or filesystem actuators (resctrl/cgroup/cpufreq/tc formats) on
// real hardware.
package heracles

import (
	"heracles/internal/actuate"
	"heracles/internal/chash"
	"heracles/internal/cluster"
	"heracles/internal/core"
	"heracles/internal/engine"
	"heracles/internal/experiment"
	"heracles/internal/fed"
	"heracles/internal/fleet"
	"heracles/internal/hw"
	"heracles/internal/lat"
	"heracles/internal/machine"
	"heracles/internal/scenario"
	"heracles/internal/sched"
	"heracles/internal/serve"
	"heracles/internal/tco"
	"heracles/internal/trace"
	"heracles/internal/workload"
)

// Hardware description.
type (
	// HardwareConfig describes the modelled server (sockets, cores,
	// LLC ways, DRAM bandwidth, TDP, NIC rate).
	HardwareConfig = hw.Config
	// CPUID identifies a logical CPU.
	CPUID = hw.CPUID
)

// DefaultHardware returns the dual-socket Haswell-class server of the
// paper's testbed (§3.2).
func DefaultHardware() HardwareConfig { return hw.DefaultConfig() }

// CompactHardware returns the single-socket efficiency generation mixed
// into heterogeneous fleet experiments.
func CompactHardware() HardwareConfig { return hw.CompactConfig() }

// Workload models.
type (
	// LCSpec describes a latency-critical workload before calibration.
	LCSpec = workload.LCSpec
	// LC is a calibrated latency-critical workload.
	LC = workload.LC
	// BESpec describes a best-effort workload or antagonist.
	BESpec = workload.BESpec
	// BE is a calibrated best-effort workload.
	BE = workload.BE
	// PlacementKind selects dedicated, hyperthread-sibling or OS-shared
	// placement for a BE task.
	PlacementKind = workload.PlacementKind
)

// Placement kinds (§3.2 experiment setups).
const (
	PlaceDedicated = workload.PlaceDedicated
	PlaceHTSibling = workload.PlaceHTSibling
	PlaceOSShared  = workload.PlaceOSShared
)

// Workload constructors (paper §3.1 and §5.1).
var (
	Websearch  = workload.Websearch
	MLCluster  = workload.MLCluster
	Memkeyval  = workload.Memkeyval
	StreamLLC  = workload.StreamLLC
	StreamDRAM = workload.StreamDRAM
	CPUPower   = workload.CPUPower
	Iperf      = workload.Iperf
	Brain      = workload.Brain
	Streetview = workload.Streetview
)

// Machine simulation.
type (
	// Machine is the simulated server hosting one LC task and any number
	// of BE tasks; it satisfies the controller's Env interface.
	Machine = machine.Machine
	// Telemetry is one epoch's monitor readings.
	Telemetry = machine.Telemetry
	// MachineOption configures a Machine.
	MachineOption = machine.Option
)

// Machine constructors and calibration.
var (
	// NewMachine builds a simulated server.
	NewMachine = machine.New
	// WithEngine selects the latency engine (analytic or DES).
	WithEngine = machine.WithEngine
	// WithEpoch sets the resolution epoch.
	WithEpoch = machine.WithEpoch
	// CalibrateLC calibrates an LC spec on given hardware (SLO, peak QPS,
	// guaranteed frequency).
	CalibrateLC = machine.CalibrateLC
	// SpecOf adapts an LCSpec for CalibrateLC.
	SpecOf = machine.SpecOf
	// CalibrateBE measures a BE spec running alone (EMU normalisation).
	CalibrateBE = machine.CalibrateBE
)

// Latency engines.
type (
	// LatencyEngine evaluates the LC queue each epoch.
	LatencyEngine = lat.Engine
	// AnalyticEngine is the closed-form M/G/k engine.
	AnalyticEngine = lat.Analytic
	// DESEngine is the discrete-event simulation engine.
	DESEngine = lat.DES
)

// NewDES returns a seeded discrete-event latency engine.
var NewDES = lat.NewDES

// The Heracles controller (the paper's contribution, §4).
type (
	// Controller is the four-mechanism feedback controller.
	Controller = core.Controller
	// ControllerConfig carries Algorithm 1-4 constants.
	ControllerConfig = core.Config
	// Env is everything the controller monitors and actuates.
	Env = core.Env
	// DRAMModel is the offline LC bandwidth model (§4.2).
	DRAMModel = core.DRAMModel
	// DRAMModelFunc adapts a function to DRAMModel.
	DRAMModelFunc = core.DRAMModelFunc
	// ControllerEvent records one controller decision.
	ControllerEvent = core.Event
)

var (
	// NewController binds a controller to an environment.
	NewController = core.New
	// DefaultControllerConfig returns the paper's constants.
	DefaultControllerConfig = core.DefaultConfig
)

// Experiments (one per paper figure/table).
type (
	// Lab caches calibrated workloads and runs the experiments.
	Lab = experiment.Lab
	// RunOpts configures colocation runs.
	RunOpts = experiment.RunOpts
	// Series is a load sweep for one LC/BE pair.
	Series = experiment.Series
	// Fig1Table is an interference characterisation table.
	Fig1Table = experiment.Fig1Table
	// Fig3Surface is the cores x LLC performance surface.
	Fig3Surface = experiment.Fig3Surface
	// DRAMTable is the profiled offline DRAM model.
	DRAMTable = experiment.DRAMTable
)

var (
	// NewLab builds a lab for the given hardware.
	NewLab = experiment.NewLab
	// DefaultLab builds a lab on the reference hardware.
	DefaultLab = experiment.DefaultLab
	// DefaultLoads returns the 19 load points of Figure 1.
	DefaultLoads = experiment.DefaultLoads
)

// Cluster experiment (§5.3, Figure 8).
type (
	// ClusterConfig describes a fan-out cluster run.
	ClusterConfig = cluster.Config
	// ClusterResult is a full cluster run.
	ClusterResult = cluster.Result
	// ClusterSummary aggregates a run.
	ClusterSummary = cluster.Summary
	// LoadTrace is a time-ordered load trace.
	LoadTrace = trace.Trace
	// DiurnalConfig parameterises the synthetic diurnal trace.
	DiurnalConfig = trace.DiurnalConfig
)

var (
	// RunCluster replays a load trace against the cluster.
	RunCluster = cluster.Run
	// RunClusterScenario drives the cluster through a declarative
	// scenario (load shape + timed events).
	RunClusterScenario = cluster.RunScenario
	// RunClusterScenarioFrom resumes a checkpointed cluster run: same
	// Config and scenario, continuation bit-identical to an
	// uninterrupted run.
	RunClusterScenarioFrom = cluster.RunScenarioFrom
	// DiurnalTrace synthesises the §5.3 12-hour load trace.
	DiurnalTrace = trace.Diurnal
	// ConstantTrace returns a flat load trace.
	ConstantTrace = trace.Constant
)

// Unified epoch engine (DESIGN.md §11): the canonical loop both the
// batch (cluster/fleet) and live (serve) layers drive, with
// checkpoint/restore of the full simulation state.
type (
	// Engine owns the canonical epoch loop over a set of machines.
	Engine = engine.Engine
	// EngineConfig describes an engine (nodes, workloads, subsystems).
	EngineConfig = engine.Config
	// EngineEpochResult is everything one Step produced.
	EngineEpochResult = engine.EpochResult
	// EngineCheckpoint is the versioned serialized simulation state.
	EngineCheckpoint = engine.Checkpoint
	// InstanceCheckpoint is a live instance's checkpoint wire form.
	InstanceCheckpoint = serve.InstanceCheckpoint
)

var (
	// NewEngine builds an engine.
	NewEngine = engine.New
	// RestoreEngine rebuilds an engine from a checkpoint; the
	// continuation is bit-identical to an uninterrupted run.
	RestoreEngine = engine.Restore
	// ReadCheckpoint loads a checkpoint persisted with
	// EngineCheckpoint.WriteFile.
	ReadCheckpoint = engine.ReadFile
)

// Scenario engine: declarative load shapes and timed events.
type (
	// Scenario composes a load shape with an event schedule.
	Scenario = scenario.Scenario
	// LoadShape is a composable load-vs-time function.
	LoadShape = scenario.Shape
	// ScenarioEvent is one timed action (BE churn, degradation,
	// SLO/load-target change).
	ScenarioEvent = scenario.Event
	// FlatLoad is a constant load shape.
	FlatLoad = scenario.Flat
	// StepLoads is a piecewise-constant shape (§5.2 load changes).
	StepLoads = scenario.Steps
	// LoadLevel is one plateau of a StepLoads shape.
	LoadLevel = scenario.Level
	// RampLoad interpolates linearly between two loads.
	RampLoad = scenario.Ramp
	// FlashCrowdLoad is an additive trapezoid spike.
	FlashCrowdLoad = scenario.FlashCrowd
)

// AllLeaves targets every leaf in a scenario event.
const AllLeaves = scenario.AllLeaves

var (
	// ScenarioFromTrace wraps a bare trace as an event-free scenario.
	ScenarioFromTrace = scenario.FromTrace
	// ReplayShape wraps a trace as a load shape.
	ReplayShape = scenario.Replay
	// DiurnalShape synthesises a diurnal load shape.
	DiurnalShape = scenario.Diurnal
	// SumShapes adds shapes pointwise (overlay a flash crowd on a base).
	SumShapes = scenario.Sum
	// ScaleShape multiplies a shape by a constant.
	ScaleShape = scenario.Scale
	// ClampShape bounds a shape to [lo, hi].
	ClampShape = scenario.Clamp
	// BEArriveEvent schedules a best-effort task launch.
	BEArriveEvent = scenario.BEArrive
	// BEDepartEvent schedules a best-effort task departure.
	BEDepartEvent = scenario.BEDepart
	// DegradeEvent schedules a per-leaf service-time degradation.
	DegradeEvent = scenario.Degrade
	// SLOScaleEvent schedules a latency-target change.
	SLOScaleEvent = scenario.SLOScale
	// LoadScaleEvent schedules an offered-load multiplier change.
	LoadScaleEvent = scenario.LoadScale
)

// Fleet simulation: many heterogeneous clusters, baseline vs Heracles.
type (
	// FleetConfig describes a fleet experiment.
	FleetConfig = fleet.Config
	// FleetClusterSpec is one homogeneous slice of the fleet.
	FleetClusterSpec = fleet.ClusterSpec
	// FleetResult is a full fleet run with TCO analysis.
	FleetResult = fleet.Result
	// FleetOutcome is one cluster's paired baseline/Heracles summary.
	FleetOutcome = fleet.Outcome
	// FleetAggregate reduces the fleet to §5.2/§5.3 quantities.
	FleetAggregate = fleet.Aggregate
)

// RunFleet executes every cluster of the fleet, baseline and Heracles,
// and aggregates utilisation, SLO compliance and TCO.
var RunFleet = fleet.Run

// Best-effort job scheduler: fleet-wide dispatch onto slack-advertising
// machines, eviction with backoff, goodput accounting.
type (
	// SchedConfig configures a job scheduler (policy, job batch, seed,
	// backoff, eviction grace).
	SchedConfig = sched.Config
	// SchedJobSpec describes one best-effort job (workload, core demand,
	// required CPU work, priority, retry budget, submission time).
	SchedJobSpec = sched.JobSpec
	// SchedJob is a submitted job and its dispatch history.
	SchedJob = sched.Job
	// SchedPolicy places jobs on eligible machines.
	SchedPolicy = sched.Policy
	// SchedNodeState is one machine's slack/EMU advertisement.
	SchedNodeState = sched.NodeState
	// SchedAction is one executor instruction returned by a tick.
	SchedAction = sched.Action
	// SchedDecision is one placement-log entry.
	SchedDecision = sched.Decision
	// SchedAccounting aggregates goodput vs wasted BE CPU time.
	SchedAccounting = sched.Accounting
	// SchedReport is a finished run's scheduler artefact.
	SchedReport = sched.Report
	// Scheduler is the deterministic dispatch loop itself.
	Scheduler = sched.Scheduler
	// FleetPoliciesResult is a paired policy-vs-policy fleet comparison.
	FleetPoliciesResult = fleet.PoliciesResult
	// FleetPolicyOutcome is one arm of that comparison.
	FleetPolicyOutcome = fleet.PolicyOutcome
	// FleetSchedAggregate is the fleet-level scheduler reduction.
	FleetSchedAggregate = fleet.SchedAggregate
)

var (
	// NewScheduler builds a scheduler from a SchedConfig.
	NewScheduler = sched.New
	// SchedPolicyByName resolves "slack-greedy", "bin-pack", "spread" or
	// "random".
	SchedPolicyByName = sched.PolicyByName
	// SchedPolicyNames lists the built-in policies.
	SchedPolicyNames = sched.PolicyNames
	// SyntheticJobs generates a deterministic batch of BE jobs.
	SyntheticJobs = sched.SyntheticJobs
	// RunFleetPolicies runs the fleet once per placement policy, paired
	// on seeds, with goodput/queue-delay aggregates per arm.
	RunFleetPolicies = fleet.RunPolicies
)

// TCO analysis (§5.3).
type (
	// TCOParams are the Barroso cost-model inputs.
	TCOParams = tco.Params
	// TCOComparison is one §5.3 scenario.
	TCOComparison = tco.Comparison
)

var (
	// BarrosoTCO returns the paper's cost parameters.
	BarrosoTCO = tco.Barroso
	// AnalyzeTCO reproduces the §5.3 scenarios.
	AnalyzeTCO = tco.Analyze
)

// Control plane: live machine instances served over HTTP (REST + SSE +
// Prometheus). cmd/heraclesd is the thin daemon over this layer; see
// docs/API.md for the wire surface.
type (
	// ServeConfig configures a control-plane server.
	ServeConfig = serve.Config
	// ServeServer owns the instance pool and the HTTP API over it.
	ServeServer = serve.Server
	// ServeInstance is one live simulated machine with its controller.
	ServeInstance = serve.Instance
	// ServeInstanceSpec configures a new live instance.
	ServeInstanceSpec = serve.InstanceSpec
	// ServeBEAttachment names a best-effort task on an instance.
	ServeBEAttachment = serve.BEAttachment
	// ServeStatus is a point-in-time instance snapshot.
	ServeStatus = serve.Status
	// ServeEpochUpdate is the per-epoch telemetry summary streamed over
	// SSE.
	ServeEpochUpdate = serve.EpochUpdate
	// ServeScenarioSpec is the JSON encoding of a declarative scenario.
	ServeScenarioSpec = serve.ScenarioSpec
	// ServeShardStatus is one control-plane shard's accounting snapshot.
	ServeShardStatus = serve.ShardStatus
	// ServeMigrateRequest names a migration destination (shard or peer).
	ServeMigrateRequest = serve.MigrateRequest
	// ServeMigrateResult reports a completed instance migration.
	ServeMigrateResult = serve.MigrateResult
)

// ServeSpeedMax requests free-running simulation for an instance.
const ServeSpeedMax = serve.SpeedMax

var (
	// NewServer builds a control-plane server and its route table.
	NewServer = serve.New
	// ServeRoutes lists every registered API endpoint.
	ServeRoutes = serve.Routes
)

// Federation: one API over several control-plane daemons, with
// consistent-hash placement and live cross-daemon migration
// (DESIGN.md §14). cmd/heraclesfed is the thin daemon over this layer.
type (
	// FedConfig configures a federation router.
	FedConfig = fed.Config
	// FedRouter proxies instance and job traffic across member daemons.
	FedRouter = fed.Router
	// FedInstanceInfo is a member instance viewed through the router.
	FedInstanceInfo = fed.InstanceInfo
	// ChashTable is an immutable rendezvous-hash placement table.
	ChashTable = chash.Table
)

var (
	// NewFedRouter builds a federation router over member base URLs.
	NewFedRouter = fed.NewRouter
	// FedRoutes lists every registered federation endpoint.
	FedRoutes = fed.Routes
	// NewChashTable builds a rendezvous-hash table over members.
	NewChashTable = chash.New
)

// Filesystem actuation (kernel interface formats).
type (
	// FSActuator writes resctrl/cgroup/cpufreq/tc files.
	FSActuator = actuate.FSActuator
	// FSLayout holds the file-tree layout.
	FSLayout = actuate.Layout
)

var (
	// NewFSActuator returns an actuator rooted at a directory.
	NewFSActuator = actuate.NewFS
	// DefaultFSLayout mirrors the standard Linux mount points.
	DefaultFSLayout = actuate.DefaultLayout
)
