package cluster

import (
	"testing"
	"time"

	"heracles/internal/scenario"
	"heracles/internal/slo"
)

// budgetCrowd saturates the cluster behind a degraded dependency long
// enough to fire the fast-burn page on every leaf.
func budgetCrowd(d time.Duration) scenario.Scenario {
	return scenario.Scenario{
		Name:     "budget-crowd",
		Duration: d,
		Load: scenario.Sum(
			scenario.Flat(0.40),
			scenario.FlashCrowd{Start: 2 * time.Minute, Rise: 30 * time.Second,
				Hold: 15 * time.Minute, Fall: 30 * time.Second, Amp: 0.6},
		),
		Events: []scenario.Event{
			scenario.Degrade(150*time.Second, scenario.AllLeaves, 1.3),
			scenario.Degrade(16*time.Minute, scenario.AllLeaves, 1),
		},
	}
}

// TestClusterBudgetReport: a run with Config.Budget carries the full
// error-budget accounting — per-leaf and cluster-wide status plus every
// alert edge — and the report is bit-identical across worker counts.
func TestClusterBudgetReport(t *testing.T) {
	sc := budgetCrowd(20 * time.Minute)
	run := func(workers int) Result {
		cfg := baseConfig(t)
		cfg.Heracles = true
		cfg.Workers = workers
		cfg.Budget = &slo.Config{}
		return RunScenario(cfg, sc)
	}
	res := run(1)
	if res.Budget == nil {
		t.Fatal("Result.Budget missing on a budget-tracking run")
	}
	if len(res.Budget.Nodes) != 4 {
		t.Fatalf("budget report covers %d leaves, want 4", len(res.Budget.Nodes))
	}
	if res.Budget.Cluster.Violations == 0 || res.Budget.Cluster.BudgetSpent <= 0 {
		t.Fatalf("crowd spent no budget: %+v", res.Budget.Cluster)
	}
	var pageFired bool
	for _, tr := range res.Budget.Transitions {
		if tr.Node == -1 && tr.Alert == slo.AlertPage && tr.Firing {
			pageFired = true
		}
	}
	if !pageFired {
		t.Fatalf("cluster page never fired; transitions: %+v", res.Budget.Transitions)
	}

	par := run(4)
	if len(par.Budget.Transitions) != len(res.Budget.Transitions) {
		t.Fatalf("transition count depends on workers: %d vs %d",
			len(par.Budget.Transitions), len(res.Budget.Transitions))
	}
	for i := range par.Budget.Transitions {
		if par.Budget.Transitions[i] != res.Budget.Transitions[i] {
			t.Fatalf("transition %d differs across workers: %+v vs %+v",
				i, par.Budget.Transitions[i], res.Budget.Transitions[i])
		}
	}
	if par.Budget.Cluster != res.Budget.Cluster {
		t.Fatalf("cluster budget status differs across workers:\n%+v\n%+v",
			par.Budget.Cluster, res.Budget.Cluster)
	}
}

// TestClusterBudgetOffByDefault: no Config.Budget, no report.
func TestClusterBudgetOffByDefault(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Heracles = true
	res := RunScenario(cfg, budgetCrowd(3*time.Minute))
	if res.Budget != nil {
		t.Fatal("Result.Budget present without Config.Budget")
	}
}
