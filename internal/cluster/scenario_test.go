package cluster

import (
	"testing"
	"time"

	"heracles/internal/scenario"
)

// meanEMUBetween averages per-epoch EMU over [from, to).
func meanEMUBetween(res Result, from, to time.Duration) float64 {
	var sum float64
	var n int
	for _, e := range res.Epochs {
		if e.At < from || e.At >= to {
			continue
		}
		sum += e.EMU
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func TestScenarioBEChurn(t *testing.T) {
	// §5.2-style churn: every BE task departs mid-run, then brain returns
	// everywhere. EMU must collapse toward the bare load during the gap
	// and recover after the arrivals.
	cfg := baseConfig(t)
	cfg.Heracles = true
	sc := scenario.Scenario{
		Name:     "churn",
		Duration: 14 * time.Minute,
		Load:     scenario.Flat(0.4),
		Events: []scenario.Event{
			scenario.BEDepart(6*time.Minute, scenario.AllLeaves, "brain"),
			scenario.BEDepart(6*time.Minute, scenario.AllLeaves, "streetview"),
			scenario.BEArrive(10*time.Minute, scenario.AllLeaves, "brain"),
		},
	}
	res := RunScenario(cfg, sc)

	before := meanEMUBetween(res, 4*time.Minute, 6*time.Minute)
	gap := meanEMUBetween(res, 7*time.Minute, 10*time.Minute)
	after := meanEMUBetween(res, 12*time.Minute, 14*time.Minute)
	if before < 0.5 {
		t.Fatalf("pre-churn EMU = %.3f, want colocation benefit", before)
	}
	if gap > 0.48 {
		t.Fatalf("EMU during BE gap = %.3f, want ~bare load 0.4", gap)
	}
	if after < gap+0.05 {
		t.Fatalf("EMU after re-arrival = %.3f, want recovery above gap %.3f", after, gap)
	}
}

func TestScenarioLeafDegradeRaisesRootLatency(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Heracles = false
	sc := scenario.Scenario{
		Name:     "degrade",
		Duration: 8 * time.Minute,
		Load:     scenario.Flat(0.4),
		Events: []scenario.Event{
			scenario.Degrade(4*time.Minute, scenario.AllLeaves, 1.5),
		},
	}
	res := RunScenario(cfg, sc)
	var before, after time.Duration
	var nb, na int
	for _, e := range res.Epochs {
		if e.At >= 2*time.Minute && e.At < 4*time.Minute {
			before += e.RootMean
			nb++
		}
		if e.At >= 6*time.Minute {
			after += e.RootMean
			na++
		}
	}
	before /= time.Duration(nb)
	after /= time.Duration(na)
	if after <= before {
		t.Fatalf("degraded leaves did not slow the root: %v -> %v", before, after)
	}
}

func TestScenarioSingleLeafDegradeDominatesFanout(t *testing.T) {
	// Fan-out tail at scale: one slow leaf out of four should still drag
	// the root mean up, since every request waits for its slowest leaf.
	cfg := baseConfig(t)
	cfg.Heracles = false
	healthy := RunScenario(cfg, scenario.Scenario{
		Name: "healthy", Duration: 4 * time.Minute, Load: scenario.Flat(0.4),
	})
	oneSlow := RunScenario(cfg, scenario.Scenario{
		Name: "one-slow", Duration: 4 * time.Minute, Load: scenario.Flat(0.4),
		Events: []scenario.Event{scenario.Degrade(0, 2, 2.0)},
	})
	lh := healthy.Epochs[len(healthy.Epochs)-1].RootMean
	ls := oneSlow.Epochs[len(oneSlow.Epochs)-1].RootMean
	if ls <= lh {
		t.Fatalf("one degraded leaf invisible at the root: %v vs %v", ls, lh)
	}
}

func TestScenarioLoadScaleChangesOfferedLoad(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Heracles = false
	sc := scenario.Scenario{
		Name:     "load-target",
		Duration: 4 * time.Minute,
		Load:     scenario.Flat(0.6),
		Events: []scenario.Event{
			scenario.LoadScale(2*time.Minute, 0.5),
		},
	}
	res := RunScenario(cfg, sc)
	for _, e := range res.Epochs {
		want := 0.6
		if e.At >= 2*time.Minute {
			want = 0.3
		}
		if e.Load != want {
			t.Fatalf("load at %v = %v, want %v", e.At, e.Load, want)
		}
	}
}

func TestScenarioSLOScaleSteersController(t *testing.T) {
	// Mid-run latency-target changes (§5.2 "load changes" family): a
	// Heracles cluster whose leaf targets tighten sharply mid-run must
	// surrender BE throughput relative to an unchanged run.
	cfg := baseConfig(t)
	cfg.Heracles = true
	base := scenario.Scenario{
		Name: "steady", Duration: 12 * time.Minute, Load: scenario.Flat(0.4),
	}
	tightened := base
	tightened.Name = "tighten"
	tightened.Events = []scenario.Event{
		scenario.SLOScale(6*time.Minute, scenario.AllLeaves, 0.35),
	}
	steady := RunScenario(cfg, base)
	tight := RunScenario(cfg, tightened)
	sEMU := meanEMUBetween(steady, 9*time.Minute, 12*time.Minute)
	tEMU := meanEMUBetween(tight, 9*time.Minute, 12*time.Minute)
	if tEMU >= sEMU {
		t.Fatalf("tightened SLO did not reduce BE harvest: %.3f vs %.3f", tEMU, sEMU)
	}
}

func TestScenarioUnknownBEPanics(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Heracles = true
	sc := scenario.Scenario{
		Name: "bad", Duration: 2 * time.Minute, Load: scenario.Flat(0.3),
		Events: []scenario.Event{scenario.BEArrive(time.Minute, scenario.AllLeaves, "nope")},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown BE workload did not panic")
		}
	}()
	RunScenario(cfg, sc)
}

func TestScenarioInvalidPanics(t *testing.T) {
	cfg := baseConfig(t)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid scenario did not panic")
		}
	}()
	RunScenario(cfg, scenario.Scenario{Name: "no-load", Duration: time.Minute})
}
