package cluster

import (
	"sync"
	"testing"
	"time"

	"heracles/internal/hw"
	"heracles/internal/machine"
	"heracles/internal/trace"
	"heracles/internal/workload"
)

var (
	setupOnce sync.Once
	testCfg   Config
)

func baseConfig(t *testing.T) Config {
	t.Helper()
	setupOnce.Do(func() {
		hwc := hw.DefaultConfig()
		testCfg = Config{
			Leaves:      4,
			HW:          hwc,
			LC:          machine.CalibrateLC(hwc, machine.SpecOf(workload.Websearch())),
			Brain:       machine.CalibrateBE(hwc, workload.Brain()),
			SView:       machine.CalibrateBE(hwc, workload.Streetview()),
			RootSamples: 50,
			Seed:        1,
			Warmup:      2 * time.Minute,
		}
	})
	return testCfg
}

func shortTrace() trace.Trace {
	return trace.Constant(0.4, 8*time.Minute, time.Second)
}

func TestBaselineClusterMeetsSLO(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Heracles = false
	res := Run(cfg, shortTrace())
	s := res.Summarize()
	if s.Violations != 0 {
		t.Fatalf("baseline cluster violations = %d", s.Violations)
	}
	// Baseline EMU equals load.
	if s.MeanEMU < 0.35 || s.MeanEMU > 0.45 {
		t.Fatalf("baseline EMU = %v, want ~0.4", s.MeanEMU)
	}
}

func TestHeraclesClusterRaisesEMUWithoutViolations(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Heracles = true
	res := Run(cfg, shortTrace())
	s := res.Summarize()
	if s.Violations != 0 {
		t.Fatalf("heracles cluster violations = %d (max window %.0f%%)", s.Violations, 100*s.MaxRootFrac)
	}
	if s.MeanEMU < 0.55 {
		t.Fatalf("heracles EMU = %v, want well above the 0.4 baseline", s.MeanEMU)
	}
}

func TestClusterEpochAccounting(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Heracles = false
	tr := trace.Constant(0.3, 3*time.Minute, time.Second)
	res := Run(cfg, tr)
	if len(res.Epochs) != 180 {
		t.Fatalf("epochs = %d", len(res.Epochs))
	}
	for _, e := range res.Epochs {
		if e.Load != 0.3 {
			t.Fatalf("epoch load = %v", e.Load)
		}
		if e.RootMean <= 0 {
			t.Fatal("root latency missing")
		}
	}
}

func TestRootLatencyGrowsWithFanout(t *testing.T) {
	// Mean-of-max over more leaves is slower than over fewer (tail at
	// scale, Dean & Barroso): the 8-leaf root must be at least as slow as
	// the 2-leaf root.
	cfg := baseConfig(t)
	small, big := cfg, cfg
	small.Leaves, big.Leaves = 2, 8
	tr := trace.Constant(0.5, time.Minute, time.Second)
	a := Run(small, tr)
	b := Run(big, tr)
	la := a.Epochs[len(a.Epochs)-1].RootMean
	lb := b.Epochs[len(b.Epochs)-1].RootMean
	if lb < la {
		t.Fatalf("fan-out 8 latency %v < fan-out 2 latency %v", lb, la)
	}
}

func TestSummaryWarmupSkipped(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Heracles = false
	cfg.Warmup = 2 * time.Minute
	tr := trace.Constant(0.4, 4*time.Minute, time.Second)
	res := Run(cfg, tr)
	s := res.Summarize()
	if s.MeanEMU == 0 {
		t.Fatal("summary empty after warmup skip")
	}
	// A run shorter than the warmup yields an empty summary.
	short := Run(cfg, trace.Constant(0.4, time.Minute, time.Second))
	if got := short.Summarize(); got.MeanEMU != 0 {
		t.Fatalf("short run summary = %+v", got)
	}
}

func TestDynamicLeafTargetsHarvestRootSlack(t *testing.T) {
	// §5.3 (future work implemented here): "a centralized controller that
	// dynamically sets the per-leaf tail latency targets based on slack
	// at the root". Starting from a conservative uniform leaf target, the
	// root-level controller should loosen targets to harvest the root's
	// slack — more EMU than the conservative static target, still with no
	// violations of the cluster SLO.
	cfg := baseConfig(t)
	cfg.Heracles = true
	cfg.LeafTargetFrac = 0.6 // deliberately conservative
	tr := shortTrace()
	static := Run(cfg, tr).Summarize()
	cfg.DynamicLeafTargets = true
	dynamic := Run(cfg, tr).Summarize()
	if dynamic.Violations != 0 {
		t.Fatalf("dynamic targets violated the SLO %d times (max window %.0f%%)",
			dynamic.Violations, 100*dynamic.MaxRootFrac)
	}
	if dynamic.MeanEMU < static.MeanEMU {
		t.Fatalf("dynamic targets failed to harvest slack: EMU %.3f vs static %.3f",
			dynamic.MeanEMU, static.MeanEMU)
	}
}

func TestDynamicLeafTargetsProtectTightRoot(t *testing.T) {
	// The flip side: when the uniform target already runs the root close
	// to its SLO, the centralized controller tightens leaf targets and
	// buys back margin (lower worst window than static).
	cfg := baseConfig(t)
	cfg.Heracles = true
	cfg.LeafTargetFrac = 0.9 // deliberately aggressive
	tr := shortTrace()
	static := Run(cfg, tr).Summarize()
	cfg.DynamicLeafTargets = true
	dynamic := Run(cfg, tr).Summarize()
	if dynamic.Violations > static.Violations {
		t.Fatalf("dynamic targets violated more than static: %d vs %d",
			dynamic.Violations, static.Violations)
	}
	if dynamic.MaxRootFrac > static.MaxRootFrac+0.02 {
		t.Fatalf("dynamic targets did not protect the root: worst %.3f vs static %.3f",
			dynamic.MaxRootFrac, static.MaxRootFrac)
	}
}
