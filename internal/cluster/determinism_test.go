package cluster

import (
	"reflect"
	"testing"
	"time"

	"heracles/internal/trace"
)

// TestParallelRunMatchesSequential asserts the cluster simulation is
// worker-count-invariant: leaves step concurrently but write only their own
// slots, reductions happen in leaf order, and the root's fan-out sampling
// uses an RNG stream derived from (seed, epoch) rather than shared state.
func TestParallelRunMatchesSequential(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Heracles = true
	tr := trace.Constant(0.45, 4*time.Minute, time.Second)

	cfg.Workers = 1
	seq := Run(cfg, tr)
	cfg.Workers = 4
	par := Run(cfg, tr)

	if seq.SLO != par.SLO {
		t.Fatalf("SLO differs: %v vs %v", seq.SLO, par.SLO)
	}
	if len(seq.Epochs) != len(par.Epochs) {
		t.Fatalf("epoch count differs: %d vs %d", len(seq.Epochs), len(par.Epochs))
	}
	for i := range seq.Epochs {
		if !reflect.DeepEqual(seq.Epochs[i], par.Epochs[i]) {
			t.Fatalf("epoch %d diverged:\nseq: %+v\npar: %+v", i, seq.Epochs[i], par.Epochs[i])
		}
	}
}

// TestSeedChangesRootSampling guards the (seed, epoch) stream derivation:
// different seeds must actually change the root's sampled fan-out latency.
func TestSeedChangesRootSampling(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Heracles = false
	tr := trace.Constant(0.5, 90*time.Second, time.Second)
	a := Run(cfg, tr)
	cfg.Seed += 1
	b := Run(cfg, tr)
	same := true
	for i := range a.Epochs {
		if a.Epochs[i].RootMean != b.Epochs[i].RootMean {
			same = false
			break
		}
	}
	if same {
		t.Fatal("root sampling ignores the seed")
	}
}
