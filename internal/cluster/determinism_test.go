package cluster

import (
	"testing"
	"time"

	"heracles/internal/trace"
)

// Worker-count invariance of the epoch loop is pinned at the engine
// level (internal/engine), which cluster runs are a thin driver over;
// this file keeps only the cluster-specific seed-sensitivity guard.

// TestSeedChangesRootSampling guards the (seed, epoch) stream derivation:
// different seeds must actually change the root's sampled fan-out latency.
func TestSeedChangesRootSampling(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Heracles = false
	tr := trace.Constant(0.5, 90*time.Second, time.Second)
	a := Run(cfg, tr)
	cfg.Seed += 1
	b := Run(cfg, tr)
	same := true
	for i := range a.Epochs {
		if a.Epochs[i].RootMean != b.Epochs[i].RootMean {
			same = false
			break
		}
	}
	if same {
		t.Fatal("root sampling ignores the seed")
	}
}
