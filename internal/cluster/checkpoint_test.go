package cluster

import (
	"testing"
	"time"

	"heracles/internal/engine"
	"heracles/internal/scenario"
	"heracles/internal/sched"
)

// TestResumeFromCheckpointBitIdentical is the batch layer's round trip:
// a run checkpointed mid-flight and resumed with RunScenarioFrom must
// produce exactly the epochs the uninterrupted run produced after the
// snapshot point — including the scheduler's goodput accounting.
func TestResumeFromCheckpointBitIdentical(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Heracles = true
	cfg.Sched = &sched.Config{
		Policy: sched.SlackGreedy{},
		Jobs: []sched.JobSpec{
			{Name: "a", Workload: "brain", Demand: 2, Work: 2 * time.Minute, Retries: 3, Submit: 30 * time.Second},
			{Name: "b", Workload: "streetview", Demand: 1, Work: 3 * time.Minute, Retries: 3, Submit: 2 * time.Minute},
		},
	}
	sc := scenario.Scenario{
		Name:     "resume",
		Duration: 8 * time.Minute,
		Load:     scenario.Ramp{From: 0.3, To: 0.55, Start: 0, End: 6 * time.Minute},
		Events: []scenario.Event{
			scenario.BEArrive(3*time.Minute, 0, "brain"),
			scenario.SLOScale(5*time.Minute, scenario.AllLeaves, 0.75),
		},
	}

	full := RunScenario(cfg, sc)

	var cp *engine.Checkpoint
	ckCfg := cfg
	ckCfg.CheckpointAt = 4 * time.Minute
	ckCfg.OnCheckpoint = func(c *engine.Checkpoint) { cp = c }
	interrupted := RunScenario(ckCfg, sc)
	if cp == nil {
		t.Fatal("OnCheckpoint never fired")
	}
	// The checkpointing run itself must be unperturbed by the snapshot.
	if len(interrupted.Epochs) != len(full.Epochs) {
		t.Fatalf("checkpointing run epochs = %d, want %d", len(interrupted.Epochs), len(full.Epochs))
	}
	for i := range full.Epochs {
		if interrupted.Epochs[i] != full.Epochs[i] {
			t.Fatalf("snapshotting perturbed the run at epoch %d", i)
		}
	}

	resumed, err := RunScenarioFrom(cfg, sc, cp)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	skip := int(cp.Epoch)
	if want := len(full.Epochs) - skip; len(resumed.Epochs) != want {
		t.Fatalf("resumed epochs = %d, want %d (checkpoint at epoch %d)", len(resumed.Epochs), want, skip)
	}
	for i := range resumed.Epochs {
		if resumed.Epochs[i] != full.Epochs[skip+i] {
			t.Fatalf("resumed run diverged at epoch %d:\n%+v\nvs\n%+v",
				skip+i, full.Epochs[skip+i], resumed.Epochs[i])
		}
	}
	if resumed.SLO != full.SLO {
		t.Fatalf("resumed SLO %v, want %v", resumed.SLO, full.SLO)
	}
	if resumed.Sched == nil || full.Sched == nil {
		t.Fatal("scheduler report missing")
	}
	if resumed.Sched.Accounting != full.Sched.Accounting {
		t.Fatalf("scheduler accounting diverged:\n%+v\nvs\n%+v",
			resumed.Sched.Accounting, full.Sched.Accounting)
	}
}
