package cluster

import (
	"reflect"
	"testing"
	"time"

	"heracles/internal/scenario"
	"heracles/internal/sched"
)

// schedConfig builds a cluster config with a scheduler-driven BE source.
func schedConfig(t *testing.T, policy sched.Policy, jobs []sched.JobSpec) Config {
	cfg := baseConfig(t)
	cfg.Heracles = true
	cfg.Sched = &sched.Config{Policy: policy, Jobs: jobs, EvictGrace: 10 * time.Second, Backoff: 20 * time.Second}
	return cfg
}

func schedJobs(n int, horizon time.Duration) []sched.JobSpec {
	return sched.SyntheticJobs(n, horizon, 5, []string{"brain", "streetview"})
}

// TestSchedulerClusterCompletesJobs: on a calm cluster the scheduler
// dispatches and completes jobs, banks their CPU time as goodput, and
// colocation lifts EMU above the bare load.
func TestSchedulerClusterCompletesJobs(t *testing.T) {
	horizon := 16 * time.Minute
	cfg := schedConfig(t, sched.SlackGreedy{}, schedJobs(12, horizon))
	res := RunScenario(cfg, scenario.Scenario{
		Name: "sched-calm", Duration: horizon, Load: scenario.Flat(0.35),
	})
	if res.Sched == nil {
		t.Fatal("no scheduler report")
	}
	acct := res.Sched.Accounting
	if acct.Completed == 0 {
		t.Fatalf("no jobs completed: %+v", acct)
	}
	if acct.GoodCPUSec <= 0 {
		t.Fatalf("no goodput banked: %+v", acct)
	}
	s := res.Summarize()
	if s.Sched == nil || s.SchedPolicy != "slack-greedy" {
		t.Fatalf("summary lost sched accounting: %+v", s)
	}
	if s.MeanEMU <= 0.37 {
		t.Fatalf("scheduled BE work did not lift EMU: %.3f", s.MeanEMU)
	}
	// Depths are reported per epoch.
	sawRunning := false
	for _, e := range res.Epochs {
		if e.SchedRunning > 0 {
			sawRunning = true
			break
		}
	}
	if !sawRunning {
		t.Fatal("no epoch reported running jobs")
	}
}

// TestSchedulerClusterDeterministicAcrossWorkers pins the tentpole's
// determinism contract: the per-epoch stats AND the placement log are
// bit-identical for workers=1 and workers=4, for a policy that draws on
// the RNG stream (random) as well as the slack-driven one.
func TestSchedulerClusterDeterministicAcrossWorkers(t *testing.T) {
	horizon := 10 * time.Minute
	for _, pol := range []sched.Policy{sched.SlackGreedy{}, sched.Random{}} {
		sc := scenario.Scenario{
			Name: "sched-det", Duration: horizon,
			Load: scenario.Steps{{At: 0, Load: 0.3}, {At: horizon / 2, Load: 0.6}},
		}
		cfg := schedConfig(t, pol, schedJobs(10, horizon))
		cfg.Workers = 1
		seq := RunScenario(cfg, sc)
		cfg = schedConfig(t, pol, schedJobs(10, horizon))
		cfg.Workers = 4
		par := RunScenario(cfg, sc)

		if !reflect.DeepEqual(seq.Epochs, par.Epochs) {
			t.Fatalf("%s: epoch stats diverged across worker counts", pol.Name())
		}
		if !reflect.DeepEqual(seq.Sched, par.Sched) {
			t.Fatalf("%s: placement log diverged across worker counts", pol.Name())
		}
		if len(seq.Sched.Decisions) == 0 {
			t.Fatalf("%s: empty placement log", pol.Name())
		}
	}
}

// TestSchedulerEvictsUnderFlashCrowd drives load above the controller's
// disable threshold mid-run: every controller parks BE, the scheduler
// must evict and re-queue (wasting the accrued work), and the
// dispatch-to-disabled panic guard in applySchedAction must stay silent
// throughout — the integration half of the invariant test.
func TestSchedulerEvictsUnderFlashCrowd(t *testing.T) {
	horizon := 18 * time.Minute
	jobs := []sched.JobSpec{}
	for i := 0; i < 8; i++ {
		jobs = append(jobs, sched.JobSpec{
			Name: "long", Workload: "brain", Demand: 2,
			Work: time.Hour, Retries: 8, Submit: time.Duration(i) * 20 * time.Second,
		})
	}
	cfg := schedConfig(t, sched.Spread{}, jobs)
	res := RunScenario(cfg, scenario.Scenario{
		Name:     "sched-crowd",
		Duration: horizon,
		Load: scenario.Clamp(scenario.Sum(
			scenario.Flat(0.35),
			scenario.FlashCrowd{Start: 6 * time.Minute, Rise: time.Minute, Hold: 2 * time.Minute, Fall: time.Minute, Amp: 0.55},
		), 0, 0.92),
	})
	acct := res.Sched.Accounting
	if acct.Evictions == 0 {
		t.Fatalf("flash crowd caused no evictions: %+v", acct)
	}
	if acct.WastedCPUSec <= 0 {
		t.Fatalf("evictions wasted no CPU time: %+v", acct)
	}
}

// TestScriptedDepartSparesSchedulerTasks: a scripted be-depart event for
// a workload the scheduler is also running must not detach the
// scheduler's tasks — otherwise those jobs would freeze mid-run, never
// completing and never evicting. With departs fenced off, every job
// still completes.
func TestScriptedDepartSparesSchedulerTasks(t *testing.T) {
	horizon := 14 * time.Minute
	jobs := []sched.JobSpec{}
	for i := 0; i < 4; i++ {
		jobs = append(jobs, sched.JobSpec{
			Name: "j", Workload: "brain", Demand: 2,
			Work: 2 * time.Minute, Retries: 3,
			Submit: time.Duration(i) * 30 * time.Second,
		})
	}
	cfg := schedConfig(t, sched.SlackGreedy{}, jobs)
	res := RunScenario(cfg, scenario.Scenario{
		Name: "depart-vs-sched", Duration: horizon, Load: scenario.Flat(0.35),
		Events: []scenario.Event{
			// Fires while the scheduler's brain jobs are running.
			scenario.BEDepart(4*time.Minute, scenario.AllLeaves, "brain"),
		},
	})
	acct := res.Sched.Accounting
	if acct.Completed != len(jobs) {
		t.Fatalf("scripted depart froze scheduler jobs: %+v", acct)
	}
}

// TestSchedulerUnknownWorkloadPanics: job composition errors fail before
// any simulation state exists, like scenario events.
func TestSchedulerUnknownWorkloadPanics(t *testing.T) {
	cfg := schedConfig(t, sched.SlackGreedy{}, []sched.JobSpec{
		{Name: "bad", Workload: "nope", Work: time.Minute},
	})
	defer func() {
		if recover() == nil {
			t.Fatal("unknown job workload did not panic")
		}
	}()
	RunScenario(cfg, scenario.Scenario{Name: "bad", Duration: time.Minute, Load: scenario.Flat(0.3)})
}
