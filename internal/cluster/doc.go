// Package cluster models the websearch minicluster of §5.3: a root that
// fans every user request out to all leaf servers and combines their
// replies, with an instance of Heracles running on every leaf. The
// cluster SLO is the mean latency at the root over 30-second windows
// (µ/30s); each leaf runs a uniform 99%-ile latency target chosen so the
// root satisfies the SLO.
//
// RunScenario is the interpreter for declarative scenarios: timed events
// are applied between epochs in schedule order, and leaves — independent
// machines — step concurrently on a persistent worker pool, with the
// root's fan-out sampling drawn from per-epoch derived RNG streams so
// every worker count produces bit-identical results. The optional
// DynamicLeafTargets mode implements the centralized root controller the
// paper sketches, converting root-level slack into per-leaf latency
// targets. internal/fleet runs many of these clusters; Run is the
// compatibility wrapper for callers with a bare load trace.
package cluster
