// Package cluster models the websearch minicluster of §5.3: a root that
// fans every user request out to all leaf servers and combines their
// replies, with an instance of Heracles running on every leaf. The
// cluster SLO is the mean latency at the root over 30-second windows
// (µ/30s); each leaf runs a uniform 99%-ile latency target chosen so the
// root satisfies the SLO.
//
// The package is a thin batch driver over internal/engine, which owns
// the canonical epoch loop (scenario events, scheduler ticks, leaf and
// controller stepping, root fan-out sampling — see DESIGN.md §11):
// RunScenario installs the scenario and steps the engine to the horizon,
// collecting per-epoch statistics. The optional DynamicLeafTargets mode
// enables the engine's centralized root controller, converting
// root-level slack into per-leaf latency targets. Config.OnCheckpoint
// snapshots the run mid-flight and RunScenarioFrom resumes it
// bit-identically. internal/fleet runs many of these clusters; Run is
// the compatibility wrapper for callers with a bare load trace.
package cluster
