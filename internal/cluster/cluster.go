package cluster

import (
	"time"

	"heracles/internal/core"
	"heracles/internal/engine"
	"heracles/internal/fault"
	"heracles/internal/hw"
	"heracles/internal/scenario"
	"heracles/internal/sched"
	"heracles/internal/slo"
	"heracles/internal/trace"
	"heracles/internal/workload"
)

// Config describes a cluster experiment.
type Config struct {
	Leaves int // number of leaf servers (default 20)
	// Heracles: when true, brain runs on half of the leaves and
	// streetview on the other half under Heracles control (§5.3); when
	// false the cluster runs the baseline with no best-effort tasks.
	Heracles bool

	HW    hw.Config
	LC    *workload.LC // calibrated websearch (or any LC workload)
	Brain *workload.BE
	SView *workload.BE
	// Catalog resolves additional calibrated BE workloads referenced by
	// scenario BE-arrival events; Brain and SView are always resolvable
	// by their workload names without an entry here.
	Catalog map[string]*workload.BE

	// RootSamples is the number of per-epoch request samples used to
	// estimate the root's fan-out latency.
	RootSamples int
	Seed        uint64
	// Model is the shared offline DRAM model (all leaves share one model
	// even though each leaf has a different shard, §5.3).
	Model core.DRAMModel
	// LeafTargetFrac scales each leaf's controller-visible latency target
	// below the workload SLO so that the root-level mean-of-max latency
	// satisfies the cluster SLO (§5.3: "a uniform 99%-ile latency target
	// set such that the latency at the root satisfies the SLO").
	// Default 0.8.
	LeafTargetFrac float64
	// Warmup is excluded from Summarize (controller convergence).
	// Default 10 minutes.
	Warmup time.Duration
	// DynamicLeafTargets enables the centralized extension the paper
	// sketches in §5.3: "a centralized controller that dynamically sets
	// the per-leaf tail latency targets based on slack at the root",
	// letting Heracles harvest slack in higher layers of the fan-out
	// tree. Every AdjustPeriod the root compares its mean latency to the
	// cluster SLO and scales every leaf's latency target up or down.
	DynamicLeafTargets bool
	// AdjustPeriod is the root controller's adjustment cadence
	// (default 30 s).
	AdjustPeriod time.Duration
	// Workers bounds how many leaves step concurrently within an epoch:
	// 0 selects parallel.DefaultWorkers, 1 forces the sequential
	// reference run. Leaves are independent machines and the root's
	// fan-out sampling draws from an RNG stream derived from
	// (Seed, epoch) rather than shared generator state, so every worker
	// count produces identical results.
	Workers int

	// Sched, when non-nil, attaches a fleet-wide best-effort job
	// scheduler to the Heracles run: instead of the construction-time
	// brain/streetview split, BE work arrives as a job stream dispatched
	// onto leaves by the scheduler's policy, evicted when a leaf's
	// controller disables BE, and accounted as goodput vs wasted CPU
	// time (Result.Sched). Scripted BE arrive/depart events still apply
	// on top, but departures never touch scheduler-owned tasks — the
	// scheduler is the sole owner of its jobs' lifecycle. Ignored on
	// baseline (no-colocation) runs. A zero
	// Sched.Seed inherits Config.Seed (the scheduler decorrelates its
	// streams internally).
	Sched *sched.Config

	// Budget, when non-nil, attaches the error-budget engine
	// (internal/slo, DESIGN.md §15) to the run: every leaf and the
	// cluster get burn-rate trackers, Result.Budget carries the final
	// accounting and every alert edge, and — with Budget.Admission —
	// firing fast-burn pages throttle best-effort admission on the
	// affected leaves.
	Budget *slo.Config

	// Faults is a deterministic fault schedule injected during the run:
	// leaf crashes, telemetry blackouts, slow machines, actuation
	// failures and BE kills fire at their scheduled times (see
	// internal/fault). The schedule is part of the experiment's identity —
	// run the same schedule with Heracles on and off to measure resilience
	// paired, exactly like the load trace. Invalid faults panic at
	// construction (programmer error, like malformed scenarios).
	Faults []fault.Fault

	// CheckpointAt, together with OnCheckpoint, snapshots the run: at the
	// first completed epoch whose simulated time reaches CheckpointAt the
	// engine's full state is serialized and handed to OnCheckpoint.
	// Resume the run later with RunScenarioFrom (same Config and the same
	// scenario) — the continuation is bit-identical to the uninterrupted
	// run.
	CheckpointAt time.Duration
	OnCheckpoint func(*engine.Checkpoint)
}

// EpochStat is the cluster state for one trace epoch. It is the engine's
// per-epoch statistic: the cluster layer is a thin driver over
// internal/engine, which owns the canonical epoch loop.
type EpochStat = engine.EpochStat

// Result is a full cluster run.
type Result struct {
	SLO    time.Duration // root-level SLO (µ/30s target)
	Warmup time.Duration // excluded from Summarize
	Epochs []EpochStat

	// Sched is the job scheduler's final report (nil without
	// Config.Sched or on baseline runs).
	Sched *sched.Report

	// Budget is the error-budget engine's final accounting (nil without
	// Config.Budget): the cluster-wide and per-leaf burn status plus
	// every alert edge the run produced, in deterministic order.
	Budget *BudgetReport
}

// BudgetReport is the error-budget engine's view of a finished run.
type BudgetReport struct {
	// Cluster is the fleet-wide tracker's final status; Nodes holds one
	// status per leaf.
	Cluster slo.Status
	Nodes   []slo.Status
	// Transitions is every alert fire/resolve edge, in emission order
	// (epoch ascending; nodes ascending with the cluster tracker last;
	// page before ticket per tracker).
	Transitions []slo.Transition
}

// Run replays the load trace against the cluster and returns per-epoch
// statistics — the compatibility wrapper over RunScenario for callers
// with a bare trace and no events.
func Run(cfg Config, tr trace.Trace) Result {
	return RunScenario(cfg, scenario.FromTrace("trace", tr))
}

// lookupBE resolves a BE-arrival event's workload name against the
// config; unknown names return nil and the engine panics (scenario
// composition is programmer error, not runtime input).
func (cfg Config) lookupBE(name string) *workload.BE {
	if be, ok := cfg.Catalog[name]; ok {
		return be
	}
	if cfg.Brain != nil && cfg.Brain.Spec.Name == name {
		return cfg.Brain
	}
	if cfg.SView != nil && cfg.SView.Spec.Name == name {
		return cfg.SView
	}
	return nil
}

// engineConfig translates the cluster configuration into the engine's.
func (cfg Config) engineConfig() engine.Config {
	ecfg := engine.Config{
		Nodes:          cfg.Leaves,
		HW:             cfg.HW,
		LC:             cfg.LC,
		Heracles:       cfg.Heracles,
		Model:          cfg.Model,
		LookupBE:       cfg.lookupBE,
		RootSamples:    cfg.RootSamples,
		Seed:           cfg.Seed,
		DynamicTargets: cfg.Heracles && cfg.DynamicLeafTargets,
		AdjustPeriod:   cfg.AdjustPeriod,
		Workers:        cfg.Workers,
		Faults:         cfg.Faults,
		SLO:            cfg.Budget,
	}
	if cfg.Heracles {
		ecfg.SLOScale = cfg.LeafTargetFrac
		if cfg.Sched != nil {
			ecfg.Sched = cfg.Sched
		} else {
			// The construction-time split of §5.3: brain on even leaves,
			// streetview on odd ones.
			brain, sview := cfg.Brain, cfg.SView
			ecfg.InitialBEs = func(i int) []engine.BEAttach {
				if i%2 == 0 {
					return []engine.BEAttach{{WL: brain, Placement: workload.PlaceDedicated}}
				}
				return []engine.BEAttach{{WL: sview, Placement: workload.PlaceDedicated}}
			}
		}
	}
	return ecfg
}

// withDefaults fills the documented defaults in place.
func (cfg Config) withDefaults() Config {
	if cfg.Leaves <= 0 {
		cfg.Leaves = 20
	}
	if cfg.RootSamples <= 0 {
		cfg.RootSamples = 200
	}
	if cfg.LeafTargetFrac == 0 {
		cfg.LeafTargetFrac = 0.8
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 10 * time.Minute
	}
	if cfg.AdjustPeriod == 0 {
		cfg.AdjustPeriod = 30 * time.Second
	}
	return cfg
}

// RunScenario drives the cluster through a declarative scenario — a thin
// batch driver over the engine that owns the epoch loop (see
// internal/engine and DESIGN.md §11): the scenario's load shape and
// timed events, the per-epoch scheduler tick and the leaf/controller
// stepping all happen inside engine.Step. The root-level SLO is set as
// the µ/30s latency when serving 90% load with no colocated tasks
// (§5.3).
func RunScenario(cfg Config, sc scenario.Scenario) Result {
	cfg = cfg.withDefaults()
	eng := engine.New(cfg.engineConfig())
	defer eng.Close()
	eng.InstallScenario(sc)
	return drive(cfg, eng, sc.Duration)
}

// RunScenarioFrom resumes a checkpointed run: cfg and sc must be the
// ones the original run used (the checkpoint stores the cursor position
// and simulation state, not the scenario's code). The returned result
// covers the epochs from the checkpoint to the scenario end, and is
// bit-identical to the same span of an uninterrupted run.
func RunScenarioFrom(cfg Config, sc scenario.Scenario, cp *engine.Checkpoint) (Result, error) {
	cfg = cfg.withDefaults()
	eng, err := engine.Restore(cfg.engineConfig(), cp, &sc)
	if err != nil {
		return Result{}, err
	}
	defer eng.Close()
	return drive(cfg, eng, sc.Duration), nil
}

// drive steps the engine to the scenario horizon, collecting stats and
// taking the configured checkpoint.
func drive(cfg Config, eng *engine.Engine, end time.Duration) Result {
	res := Result{SLO: eng.SLO(), Warmup: cfg.Warmup}
	checkpointed := cfg.OnCheckpoint == nil
	var edges []slo.Transition
	for eng.Now() < end {
		er := eng.Step()
		res.Epochs = append(res.Epochs, er.Stat)
		edges = append(edges, er.SLOTransitions...)
		if !checkpointed && eng.Now() >= cfg.CheckpointAt {
			checkpointed = true
			cfg.OnCheckpoint(eng.Snapshot())
		}
	}
	res.Sched = eng.SchedReport()
	if eng.SLOEnabled() {
		rep := &BudgetReport{Cluster: eng.SLOClusterStatus(), Transitions: edges}
		for i := 0; i < eng.Nodes(); i++ {
			rep.Nodes = append(rep.Nodes, eng.SLONodeStatus(i))
		}
		res.Budget = rep
	}
	return res
}

// Summary aggregates a run.
type Summary struct {
	SLO          time.Duration
	MeanEMU      float64
	MinEMU       float64
	MeanRootFrac float64
	MaxRootFrac  float64
	Violations   int // epochs with root latency above the SLO

	// DownEpochs counts post-warmup epochs with at least one crashed
	// leaf, and MaxDown the worst simultaneous crash count — both zero
	// without a fault schedule.
	DownEpochs int
	MaxDown    int

	// SchedPolicy and Sched carry the job scheduler's policy name and
	// goodput accounting when the run had one (nil otherwise).
	SchedPolicy string
	Sched       *sched.Accounting
}

// Summarize reduces a result to the quantities §5.3 reports: no SLO
// violations, average EMU ~90%, minimum ~80%. The SLO is evaluated the way
// the paper defines it — mean root latency over 30-second windows — so
// RootFrac epochs are aggregated into rolling 30-epoch windows before
// violations are counted.
func (r Result) Summarize() Summary {
	s := Summary{SLO: r.SLO, MinEMU: 1e9}
	if r.Sched != nil {
		s.SchedPolicy = r.Sched.Policy
		acct := r.Sched.Accounting
		s.Sched = &acct
	}
	const winN = 30
	var win []float64
	winSum := 0.0
	n := 0.0
	for _, e := range r.Epochs {
		if e.At < r.Warmup {
			continue
		}
		n++
		if e.Down > 0 {
			s.DownEpochs++
			if e.Down > s.MaxDown {
				s.MaxDown = e.Down
			}
		}
		s.MeanEMU += e.EMU
		if e.EMU < s.MinEMU {
			s.MinEMU = e.EMU
		}
		s.MeanRootFrac += e.RootFrac
		win = append(win, e.RootFrac)
		winSum += e.RootFrac
		if len(win) > winN {
			winSum -= win[0]
			win = win[1:]
		}
		if len(win) == winN {
			mean := winSum / winN
			if mean > s.MaxRootFrac {
				s.MaxRootFrac = mean
			}
			if mean > 1 {
				s.Violations++
			}
		}
	}
	if n == 0 {
		return Summary{SLO: r.SLO, SchedPolicy: s.SchedPolicy, Sched: s.Sched}
	}
	s.MeanEMU /= n
	s.MeanRootFrac /= n
	return s
}
