package cluster

import (
	"fmt"
	"math"
	"time"

	"heracles/internal/core"
	"heracles/internal/hw"
	"heracles/internal/lat"
	"heracles/internal/machine"
	"heracles/internal/parallel"
	"heracles/internal/scenario"
	"heracles/internal/sched"
	"heracles/internal/sim"
	"heracles/internal/trace"
	"heracles/internal/workload"
)

// Config describes a cluster experiment.
type Config struct {
	Leaves int // number of leaf servers (default 20)
	// Heracles: when true, brain runs on half of the leaves and
	// streetview on the other half under Heracles control (§5.3); when
	// false the cluster runs the baseline with no best-effort tasks.
	Heracles bool

	HW    hw.Config
	LC    *workload.LC // calibrated websearch (or any LC workload)
	Brain *workload.BE
	SView *workload.BE
	// Catalog resolves additional calibrated BE workloads referenced by
	// scenario BE-arrival events; Brain and SView are always resolvable
	// by their workload names without an entry here.
	Catalog map[string]*workload.BE

	// RootSamples is the number of per-epoch request samples used to
	// estimate the root's fan-out latency.
	RootSamples int
	Seed        uint64
	// Model is the shared offline DRAM model (all leaves share one model
	// even though each leaf has a different shard, §5.3).
	Model core.DRAMModel
	// LeafTargetFrac scales each leaf's controller-visible latency target
	// below the workload SLO so that the root-level mean-of-max latency
	// satisfies the cluster SLO (§5.3: "a uniform 99%-ile latency target
	// set such that the latency at the root satisfies the SLO").
	// Default 0.8.
	LeafTargetFrac float64
	// Warmup is excluded from Summarize (controller convergence).
	// Default 10 minutes.
	Warmup time.Duration
	// DynamicLeafTargets enables the centralized extension the paper
	// sketches in §5.3: "a centralized controller that dynamically sets
	// the per-leaf tail latency targets based on slack at the root",
	// letting Heracles harvest slack in higher layers of the fan-out
	// tree. Every AdjustPeriod the root compares its mean latency to the
	// cluster SLO and scales every leaf's latency target up or down.
	DynamicLeafTargets bool
	// AdjustPeriod is the root controller's adjustment cadence
	// (default 30 s).
	AdjustPeriod time.Duration
	// Workers bounds how many leaves step concurrently within an epoch:
	// 0 selects parallel.DefaultWorkers, 1 forces the sequential
	// reference run. Leaves are independent machines and the root's
	// fan-out sampling draws from an RNG stream derived from
	// (Seed, epoch) rather than shared generator state, so every worker
	// count produces identical results.
	Workers int

	// Sched, when non-nil, attaches a fleet-wide best-effort job
	// scheduler to the Heracles run: instead of the construction-time
	// brain/streetview split, BE work arrives as a job stream dispatched
	// onto leaves by the scheduler's policy, evicted when a leaf's
	// controller disables BE, and accounted as goodput vs wasted CPU
	// time (Result.Sched). Scripted BE arrive/depart events still apply
	// on top, but departures never touch scheduler-owned tasks — the
	// scheduler is the sole owner of its jobs' lifecycle. Ignored on
	// baseline (no-colocation) runs. A zero
	// Sched.Seed inherits Config.Seed (the scheduler decorrelates its
	// streams internally).
	Sched *sched.Config
}

// EpochStat is the cluster state for one trace epoch.
type EpochStat struct {
	At         time.Duration
	Load       float64
	RootMean   time.Duration // mean fan-out latency at the root (µ/30s proxy)
	RootFrac   float64       // RootMean / SLO
	EMU        float64       // cluster-wide effective machine utilisation
	LeafWorst  float64       // worst per-leaf tail latency / leaf SLO
	Violations int           // leaves violating their local target this epoch

	// Scheduler depths at this epoch (zero without Config.Sched).
	SchedQueue   int // jobs submitted and waiting for placement
	SchedRunning int // jobs placed on leaves
}

// Result is a full cluster run.
type Result struct {
	SLO    time.Duration // root-level SLO (µ/30s target)
	Warmup time.Duration // excluded from Summarize
	Epochs []EpochStat

	// Sched is the job scheduler's final report (nil without
	// Config.Sched or on baseline runs).
	Sched *sched.Report
}

// leaf couples one machine with its controller.
type leaf struct {
	m   *machine.Machine
	ctl *core.Controller
}

// Run replays the load trace against the cluster and returns per-epoch
// statistics — the compatibility wrapper over RunScenario for callers
// with a bare trace and no events.
func Run(cfg Config, tr trace.Trace) Result {
	return RunScenario(cfg, scenario.FromTrace("trace", tr))
}

// lookupBE resolves a BE-arrival event's workload name against the
// config. Unknown names panic: scenario composition is programmer error,
// not runtime input.
func (cfg Config) lookupBE(name string) *workload.BE {
	if be, ok := cfg.Catalog[name]; ok {
		return be
	}
	if cfg.Brain != nil && cfg.Brain.Spec.Name == name {
		return cfg.Brain
	}
	if cfg.SView != nil && cfg.SView.Spec.Name == name {
		return cfg.SView
	}
	panic("cluster: scenario references unknown BE workload " + name)
}

// RunScenario drives the cluster through a declarative scenario: the
// scenario's load shape replaces bespoke trace plumbing, and its timed
// events (BE churn, leaf degradation, SLO/load-target changes) are
// applied between epochs, in schedule order, before the leaves step. The
// root-level SLO is set as the µ/30s latency when serving 90% load with
// no colocated tasks (§5.3).
func RunScenario(cfg Config, sc scenario.Scenario) Result {
	if err := sc.Validate(); err != nil {
		panic(err.Error())
	}
	if cfg.Leaves <= 0 {
		cfg.Leaves = 20
	}
	// Like unknown BE workload names, an event aimed at a leaf that does
	// not exist is scenario-composition error: fail loudly rather than
	// silently skipping the injection.
	for i, ev := range sc.Events {
		if ev.Leaf != scenario.AllLeaves && (ev.Leaf < 0 || ev.Leaf >= cfg.Leaves) {
			panic(fmt.Sprintf("cluster: scenario event %d (%v) targets leaf %d of a %d-leaf cluster",
				i, ev.Kind, ev.Leaf, cfg.Leaves))
		}
	}
	if cfg.RootSamples <= 0 {
		cfg.RootSamples = 200
	}
	if cfg.LeafTargetFrac == 0 {
		cfg.LeafTargetFrac = 0.8
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 10 * time.Minute
	}
	if cfg.AdjustPeriod == 0 {
		cfg.AdjustPeriod = 30 * time.Second
	}

	// A scheduler-driven run replaces the construction-time
	// brain/streetview split: the job stream is the BE source, so leaves
	// start empty and the scheduler owns BE lifecycle (scripted events
	// still apply on top).
	var schd *sched.Scheduler
	var schedTasks map[int]*machine.BETask  // job id -> live task
	var schedOwned map[*machine.BETask]bool // tasks the scheduler owns
	if cfg.Heracles && cfg.Sched != nil {
		sc2 := *cfg.Sched
		if sc2.Seed == 0 {
			sc2.Seed = cfg.Seed
		}
		// Unknown workload names are composition error, like scenario
		// events: fail before any simulation state exists.
		for _, js := range sc2.Jobs {
			cfg.lookupBE(js.Workload)
		}
		schd = sched.New(sc2)
		schedTasks = make(map[int]*machine.BETask)
		schedOwned = make(map[*machine.BETask]bool)
	}

	leaves := make([]*leaf, cfg.Leaves)
	for i := range leaves {
		m := machine.New(cfg.HW)
		m.SetLC(cfg.LC)
		var ctl *core.Controller
		if cfg.Heracles {
			m.SetSLOScale(cfg.LeafTargetFrac)
			if schd == nil {
				if i%2 == 0 {
					m.AddBE(cfg.Brain, workload.PlaceDedicated)
				} else {
					m.AddBE(cfg.SView, workload.PlaceDedicated)
				}
			}
			ctl = core.New(m, cfg.Model, core.DefaultConfig())
		}
		leaves[i] = &leaf{m: m, ctl: ctl}
	}

	// Root SLO: mean fan-out latency at 90% load with a small margin for
	// trace noise above the nominal crest (the paper sets the target as
	// µ/30s at 90% load). The calibration draws from its own derived RNG
	// stream, disjoint from every epoch's sampling stream.
	slo := rootLatencyAt(cfg, 0.95, sim.DeriveRNG(cfg.Seed, ^uint64(0)))

	res := Result{SLO: slo, Warmup: cfg.Warmup}
	epoch := leaves[0].m.Epoch()
	var t time.Duration
	end := sc.Duration
	leafScale := cfg.LeafTargetFrac
	var lastAdjust time.Duration
	var rootEWMA float64
	loadScale := 1.0
	cursor := sc.Cursor()
	leafEMU := make([]float64, len(leaves))
	leafFrac := make([]float64, len(leaves))
	leafTail := make([]lat.EpochStats, len(leaves))
	// One persistent pool for the whole trace: the epoch loop fans out
	// tens of thousands of times and must not spawn goroutines each time.
	pool := parallel.NewPool(cfg.Workers)
	defer pool.Close()
	var nodeStates []sched.NodeState
	if schd != nil {
		nodeStates = make([]sched.NodeState, len(leaves))
	}
	for epochIdx := uint64(0); t < end; epochIdx++ {
		// Apply due events sequentially before the leaves fan out, so the
		// mutation order never depends on worker scheduling.
		for _, ev := range cursor.Due(t) {
			applyEvent(cfg, leaves, schedOwned, ev)
			switch ev.Kind {
			case scenario.EventLoadScale:
				loadScale = ev.Factor
			case scenario.EventSLOScale:
				if ev.Leaf == scenario.AllLeaves {
					leafScale = ev.Factor
				}
			}
		}
		// The scheduler ticks in the same sequential window as the
		// events, against the previous epoch's telemetry: the slack each
		// controller advertised is what steers placement, and mutation
		// order stays independent of worker scheduling.
		if schd != nil {
			for i, lf := range leaves {
				nodeStates[i] = leafNodeState(i, lf)
			}
			actions := schd.Tick(t, nodeStates, func(j *sched.Job) float64 {
				if task := schedTasks[j.ID]; task != nil {
					return task.CPUSec
				}
				return j.CPUSec
			})
			for _, a := range actions {
				applySchedAction(cfg, leaves, schedTasks, schedOwned, a)
			}
		}
		load := sc.LoadAt(t) * loadScale
		if load > 1 {
			load = 1
		}
		// Leaves are independent servers: step them concurrently, each
		// writing only its own slot, then reduce sequentially in leaf
		// order so float accumulation is identical for any worker count.
		pool.ForEach(len(leaves), func(i int) {
			lf := leaves[i]
			lf.m.SetLoad(load)
			tel := lf.m.Step()
			if lf.ctl != nil {
				lf.ctl.Step(lf.m.Clock().Now())
			}
			leafEMU[i] = tel.EMU
			leafFrac[i] = tel.TailLatency.Seconds() / cfg.LC.SLO.Seconds()
			leafTail[i] = tel.Lat
		})
		var (
			emu   float64
			worst float64
			viol  int
		)
		for i := range leaves {
			emu += leafEMU[i]
			if leafFrac[i] > worst {
				worst = leafFrac[i]
			}
			if leafFrac[i] > 1 {
				viol++
			}
		}
		// The root's fan-out sampling gets a fresh stream derived from
		// (seed, epoch): no shared mutable RNG state, so the samples do
		// not depend on execution order.
		mean := rootMean(leafTail, cfg.RootSamples, sim.DeriveRNG(cfg.Seed, epochIdx))

		es := EpochStat{
			At:         t,
			Load:       load,
			RootMean:   mean,
			RootFrac:   mean.Seconds() / slo.Seconds(),
			EMU:        emu / float64(len(leaves)),
			LeafWorst:  worst,
			Violations: viol,
		}
		if schd != nil {
			es.SchedQueue = schd.QueueDepth()
			es.SchedRunning = schd.Running()
		}
		res.Epochs = append(res.Epochs, es)

		// Centralized leaf-target adjustment (§5.3 future work): convert
		// root-level slack into looser per-leaf targets, and tighten
		// quickly when the root approaches its SLO.
		if cfg.Heracles && cfg.DynamicLeafTargets {
			if rootEWMA == 0 {
				rootEWMA = mean.Seconds()
			} else {
				rootEWMA = 0.2*mean.Seconds() + 0.8*rootEWMA
			}
			if t-lastAdjust >= cfg.AdjustPeriod {
				lastAdjust = t
				rootSlack := (slo.Seconds() - rootEWMA) / slo.Seconds()
				switch {
				case rootSlack < 0.05:
					leafScale -= 0.05
				case rootSlack > 0.15:
					leafScale += 0.02
				}
				if leafScale < 0.5 {
					leafScale = 0.5
				}
				if leafScale > 0.90 {
					leafScale = 0.90
				}
				for _, lf := range leaves {
					lf.m.SetSLOScale(leafScale)
				}
			}
		}
		t += epoch
	}
	if schd != nil {
		rep := schd.Report()
		res.Sched = &rep
	}
	return res
}

// leafNodeState builds the scheduler's view of one leaf from the
// previous epoch's telemetry and the controller's enablement — the
// "slack advertised upward" half of the feedback loop.
func leafNodeState(id int, lf *leaf) sched.NodeState {
	tel := lf.m.Last()
	slack := 0.0
	if slo := lf.m.SLO(); slo > 0 && tel.Time > 0 {
		slack = (slo.Seconds() - tel.TailLatency.Seconds()) / slo.Seconds()
	}
	return sched.NodeState{
		ID:         id,
		BEAllowed:  lf.ctl != nil && lf.ctl.BEEnabled(),
		Slack:      slack,
		EMU:        tel.EMU,
		Load:       lf.m.Load(),
		MaxBECores: lf.m.MaxBECores(),
	}
}

// applySchedAction executes one scheduler instruction on the fleet:
// dispatch installs the job's workload as a dedicated BE task, the stop
// kinds retire it (CompleteBE banks goodput, RemoveBE charges the lost
// work) and re-partition the freed cores back to the LC task.
func applySchedAction(cfg Config, leaves []*leaf, tasks map[int]*machine.BETask, owned map[*machine.BETask]bool, a sched.Action) {
	lf := leaves[a.Node]
	switch a.Kind {
	case sched.ActionDispatch:
		// The scheduler filters eligibility before placement, so a
		// dispatch onto a BE-disabled leaf is a scheduler bug, not a
		// runtime condition: fail loudly (the invariant the tests pin).
		if lf.ctl == nil || !lf.ctl.BEEnabled() {
			panic(fmt.Sprintf("cluster: scheduler dispatched job %d to leaf %d whose controller has BE disabled", a.Job, a.Node))
		}
		task := lf.m.AddBE(cfg.lookupBE(a.Workload), workload.PlaceDedicated)
		task.Enabled = true
		lf.m.Partition(lf.m.BECoreCount())
		tasks[a.Job] = task
		owned[task] = true
	case sched.ActionEvict, sched.ActionFail, sched.ActionComplete:
		task := tasks[a.Job]
		if task == nil {
			return
		}
		if a.Kind == sched.ActionComplete {
			lf.m.CompleteBE(task)
		} else {
			lf.m.RemoveBE(task)
		}
		lf.m.Partition(lf.m.BECoreCount())
		delete(tasks, a.Job)
		delete(owned, task)
	}
}

// applyEvent applies one scenario event to the targeted leaves. BE churn
// applies only to Heracles-managed leaves: the baseline configuration
// models no colocation, so arrivals have nowhere to run. Scheduler-owned
// tasks (schedOwned) are off-limits to scripted departures — the
// scheduler is the sole owner of its jobs' lifecycle, otherwise a depart
// event would freeze the job's progress forever while the scheduler
// still believes it is running.
func applyEvent(cfg Config, leaves []*leaf, schedOwned map[*machine.BETask]bool, ev scenario.Event) {
	for i, lf := range leaves {
		if ev.Leaf != scenario.AllLeaves && ev.Leaf != i {
			continue
		}
		switch ev.Kind {
		case scenario.EventBEArrive:
			if lf.ctl == nil {
				continue
			}
			wl := cfg.lookupBE(ev.Workload)
			// The arrival inherits the controller's current enablement so
			// a task landing mid-emergency or mid-cooldown stays parked
			// until the controller re-enables BE execution. The machine
			// state covers the window before the controller's first
			// enable, when the construction-time BE tasks are running.
			enabled := lf.ctl.BEEnabled() || lf.m.BEEnabled()
			task := lf.m.AddBE(wl, workload.PlaceDedicated)
			task.Enabled = enabled
			lf.m.Partition(lf.m.BECoreCount())
		case scenario.EventBEDepart:
			if lf.ctl == nil {
				continue
			}
			// Collect first: RemoveBE splices the live task list.
			var departing []*machine.BETask
			for _, be := range lf.m.BEs() {
				if be.WL.Spec.Name == ev.Workload && !schedOwned[be] {
					departing = append(departing, be)
				}
			}
			for _, be := range departing {
				lf.m.RemoveBE(be)
			}
			if len(departing) > 0 {
				lf.m.Partition(lf.m.BECoreCount())
			}
		case scenario.EventLeafDegrade:
			lf.m.SetDegrade(ev.Factor)
		case scenario.EventSLOScale:
			lf.m.SetSLOScale(ev.Factor)
		}
	}
}

// rootMean estimates the mean fan-out latency: each request's latency is
// the maximum over per-leaf samples drawn from the leaves' latency
// distributions (approximated as lognormal matching each leaf's measured
// p50/p99).
func rootMean(leafStats []lat.EpochStats, samples int, rng *sim.RNG) time.Duration {
	var sum float64
	for s := 0; s < samples; s++ {
		var worst float64
		for _, ls := range leafStats {
			v := sampleLeaf(ls, rng)
			if v > worst {
				worst = v
			}
		}
		sum += worst
	}
	return time.Duration(sum / float64(samples) * float64(time.Second))
}

// sampleLeaf draws one response-time sample from a leaf's epoch stats.
func sampleLeaf(ls lat.EpochStats, rng *sim.RNG) float64 {
	p50 := ls.P50.Seconds()
	p99 := ls.P99.Seconds()
	if p50 <= 0 {
		return 0
	}
	if p99 < p50 {
		p99 = p50
	}
	// Lognormal with median p50 and 99th percentile p99:
	// sigma = ln(p99/p50)/z99.
	sigma := 0.0
	if p99 > p50 {
		sigma = math.Log(p99/p50) / 2.326
	}
	return p50 * math.Exp(rng.Norm(0, sigma))
}

// rootLatencyAt computes the baseline root mean latency at the given load.
func rootLatencyAt(cfg Config, load float64, rng *sim.RNG) time.Duration {
	stats := make([]lat.EpochStats, cfg.Leaves)
	m := machine.New(cfg.HW)
	m.SetLC(cfg.LC)
	m.SetLoad(load)
	var tel machine.Telemetry
	for i := 0; i < 8; i++ {
		tel = m.Step()
	}
	for i := range stats {
		stats[i] = tel.Lat
	}
	return rootMean(stats, cfg.RootSamples, rng)
}

// Summary aggregates a run.
type Summary struct {
	SLO          time.Duration
	MeanEMU      float64
	MinEMU       float64
	MeanRootFrac float64
	MaxRootFrac  float64
	Violations   int // epochs with root latency above the SLO

	// SchedPolicy and Sched carry the job scheduler's policy name and
	// goodput accounting when the run had one (nil otherwise).
	SchedPolicy string
	Sched       *sched.Accounting
}

// Summarize reduces a result to the quantities §5.3 reports: no SLO
// violations, average EMU ~90%, minimum ~80%. The SLO is evaluated the way
// the paper defines it — mean root latency over 30-second windows — so
// RootFrac epochs are aggregated into rolling 30-epoch windows before
// violations are counted.
func (r Result) Summarize() Summary {
	s := Summary{SLO: r.SLO, MinEMU: 1e9}
	if r.Sched != nil {
		s.SchedPolicy = r.Sched.Policy
		acct := r.Sched.Accounting
		s.Sched = &acct
	}
	const winN = 30
	var win []float64
	winSum := 0.0
	n := 0.0
	for _, e := range r.Epochs {
		if e.At < r.Warmup {
			continue
		}
		n++
		s.MeanEMU += e.EMU
		if e.EMU < s.MinEMU {
			s.MinEMU = e.EMU
		}
		s.MeanRootFrac += e.RootFrac
		win = append(win, e.RootFrac)
		winSum += e.RootFrac
		if len(win) > winN {
			winSum -= win[0]
			win = win[1:]
		}
		if len(win) == winN {
			mean := winSum / winN
			if mean > s.MaxRootFrac {
				s.MaxRootFrac = mean
			}
			if mean > 1 {
				s.Violations++
			}
		}
	}
	if n == 0 {
		return Summary{SLO: r.SLO, SchedPolicy: s.SchedPolicy, Sched: s.Sched}
	}
	s.MeanEMU /= n
	s.MeanRootFrac /= n
	return s
}
