// Package hw describes the modelled server hardware and implements its
// frequency/power behaviour: the turbo-bin table, the per-core dynamic
// power model, and the chip-level frequency resolution under a TDP budget
// with per-core DVFS caps.
//
// The default configuration mirrors the machines in the paper's
// evaluation (§3.2): dual-socket Haswell-class Xeons with a high core
// count, a nominal frequency of 2.3 GHz, 2.5 MB of LLC per core,
// way-partitionable LLC (Cache Allocation Technology), RAPL power
// monitoring and per-core DVFS. CompactConfig is a single-socket
// efficiency generation mixed into heterogeneous fleet experiments.
//
// In the layering, hw is the bottom: internal/machine composes this
// package with the cache, mem and netlink resource models into one
// resolvable server, and everything above (controller, experiments,
// cluster, fleet, control plane) sees hardware only through a Config.
package hw
