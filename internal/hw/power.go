package hw

import "math"

// TurboLimitGHz returns the maximum frequency the chip sustains with
// nActive physical cores active, before considering the power budget. This
// models the turbo-bin table: single-core turbo at MaxTurboGHz, dropping by
// TurboBinGHz per additional active core, never below the nominal
// frequency.
func (c Config) TurboLimitGHz(nActive int) float64 {
	if nActive <= 1 {
		return c.MaxTurboGHz
	}
	f := c.MaxTurboGHz - c.TurboBinGHz*float64(nActive-1)
	if f < c.NominalGHz {
		return c.NominalGHz
	}
	return f
}

// CorePowerWatts returns the dynamic power of one core running at freq GHz
// with the given activity factor. Activity 1.0 corresponds to a typical
// compute-bound workload; a power virus exceeds 1.0 and memory-bound code
// sits below it. Power scales as f^FreqExponent, which folds in the voltage
// scaling that accompanies frequency changes.
func (c Config) CorePowerWatts(freqGHz, activity float64) float64 {
	if freqGHz <= 0 || activity <= 0 {
		return 0
	}
	return c.CoreDynWatts * activity * math.Pow(freqGHz/c.NominalGHz, c.FreqExponent)
}

// CoreLoad describes one active physical core for frequency resolution.
type CoreLoad struct {
	Activity float64 // power activity factor (0 = idle core, skip)
	CapGHz   float64 // per-core DVFS cap; 0 or negative means uncapped
}

// SocketFreq is the result of resolving a socket's frequencies.
type SocketFreq struct {
	FreqGHz    []float64 // per entry in the CoreLoad slice, 0 for idle cores
	PowerWatts float64   // total socket power including idle power
	FreeGHz    float64   // frequency granted to uncapped cores
}

// ResolveFrequencies computes the operating frequency of every active core
// on one socket. Cores with a DVFS cap run at min(cap, turbo limit); the
// remaining cores share the power headroom equally at the highest uniform
// frequency that keeps socket power at or below TDP (found by bisection).
// This mirrors how RAPL plus per-core DVFS behave on the modelled parts:
// lowering the frequency of best-effort cores shifts power budget to the
// latency-critical cores (paper §4.1, power isolation).
func (c Config) ResolveFrequencies(cores []CoreLoad) SocketFreq {
	return c.ResolveFrequenciesInto(make([]float64, len(cores)), cores)
}

// ResolveFrequenciesInto is ResolveFrequencies writing the per-core
// frequencies into freqs (which must have capacity for len(cores) entries)
// so steady-state callers allocate nothing. The result aliases freqs.
func (c Config) ResolveFrequenciesInto(freqs []float64, cores []CoreLoad) SocketFreq {
	n := 0
	// The turbo bin count tracks *effective* active cores: a core that is
	// busy 10% of the time contributes 0.1, so lightly loaded chips run
	// near single-core turbo (this is what makes unloaded latency fast and
	// gives the baseline latency curves their gradual rise with load).
	var effActive float64
	for _, cl := range cores {
		if cl.Activity > 0 {
			n++
			a := cl.Activity
			if a > 1 {
				a = 1
			}
			effActive += a
		}
	}
	freqs = freqs[:len(cores)]
	for i := range freqs {
		freqs[i] = 0
	}
	out := SocketFreq{FreqGHz: freqs}
	if n == 0 {
		out.PowerWatts = c.IdleWatts
		out.FreeGHz = c.TurboLimitGHz(1)
		return out
	}
	nTurbo := int(math.Ceil(effActive))
	if nTurbo < 1 {
		nTurbo = 1
	}
	if nTurbo > n {
		nTurbo = n
	}
	turbo := c.TurboLimitGHz(nTurbo)

	power := func(free float64) float64 {
		p := c.IdleWatts
		// One-entry f^e memo: cores resolve to a handful of distinct
		// frequencies (the uncapped block shares free, each capped block
		// its cap), and math.Pow dominates the whole epoch step without
		// it. Reusing the identical Pow result keeps every term — and the
		// accumulation order — bit-identical to recomputing.
		lastF := math.Inf(-1)
		var lastPow float64
		for _, cl := range cores {
			if cl.Activity <= 0 {
				continue
			}
			f := free
			if cl.CapGHz > 0 && cl.CapGHz < f {
				f = cl.CapGHz
			}
			if f > turbo {
				f = turbo
			}
			if f < c.MinGHz {
				f = c.MinGHz
			}
			if f != lastF {
				lastF = f
				lastPow = math.Pow(f/c.NominalGHz, c.FreqExponent)
			}
			p += c.CoreDynWatts * cl.Activity * lastPow
		}
		return p
	}

	lo, hi := c.MinGHz, turbo
	free := hi
	if power(hi) > c.TDPWatts {
		if power(lo) > c.TDPWatts {
			// Even the floor exceeds TDP; the chip would throttle
			// below the modelled minimum. Clamp to the floor.
			free = lo
		} else {
			for i := 0; i < 40; i++ {
				mid := (lo + hi) / 2
				if power(mid) > c.TDPWatts {
					hi = mid
				} else {
					lo = mid
				}
			}
			free = lo
		}
	}

	// Quantise to 100 MHz steps like real DVFS (paper §4.1: "frequency
	// steps are in 100MHz"). Round down so power stays within budget.
	free = math.Floor(free*10) / 10
	if free < c.MinGHz {
		free = c.MinGHz
	}

	for i, cl := range cores {
		if cl.Activity <= 0 {
			continue
		}
		f := free
		if cl.CapGHz > 0 && cl.CapGHz < f {
			f = cl.CapGHz
		}
		if f > turbo {
			f = turbo
		}
		if f < c.MinGHz {
			f = c.MinGHz
		}
		out.FreqGHz[i] = f
	}
	out.PowerWatts = power(free)
	out.FreeGHz = free
	return out
}
