package hw

import (
	"errors"
	"fmt"
)

// Config describes one server.
type Config struct {
	// Topology.
	Sockets        int // number of CPU sockets
	CoresPerSocket int // physical cores per socket
	ThreadsPerCore int // hyperthreads per physical core

	// Frequency domain (GHz).
	NominalGHz  float64 // guaranteed base frequency
	MinGHz      float64 // lowest DVFS operating point
	MaxTurboGHz float64 // single-core max turbo
	TurboBinGHz float64 // turbo reduction per additional active core

	// Last-level cache, per socket.
	LLCMB   float64 // capacity in MB
	LLCWays int     // way count (CAT partitioning granularity)

	// Memory system, per socket.
	DRAMGBs float64 // peak streaming DRAM bandwidth (GB/s)

	// Power, per socket.
	TDPWatts     float64 // thermal design power
	IdleWatts    float64 // uncore + package idle power
	CoreDynWatts float64 // dynamic power of one core at nominal GHz, activity 1.0
	FreqExponent float64 // P ~ f^FreqExponent (captures V scaling with f)

	// Network.
	LinkGbps float64 // full-duplex NIC line rate
}

// DefaultConfig returns the dual-socket Haswell-class server modelled on the
// paper's testbed.
func DefaultConfig() Config {
	return Config{
		Sockets:        2,
		CoresPerSocket: 18,
		ThreadsPerCore: 2,
		NominalGHz:     2.3,
		MinGHz:         1.2,
		MaxTurboGHz:    3.6,
		TurboBinGHz:    0.05,
		LLCMB:          45, // 2.5 MB per core * 18 cores
		LLCWays:        20,
		DRAMGBs:        60,
		TDPWatts:       145,
		IdleWatts:      40,
		CoreDynWatts:   5.2,
		FreqExponent:   2.5,
		LinkGbps:       10,
	}
}

// CompactConfig returns a single-socket efficiency server — the second
// hardware generation mixed into fleet experiments: fewer, slower cores,
// a smaller LLC and a tighter power budget than the reference dual-socket
// machine, as found in the older rows of a heterogeneous fleet.
func CompactConfig() Config {
	return Config{
		Sockets:        1,
		CoresPerSocket: 16,
		ThreadsPerCore: 2,
		NominalGHz:     2.0,
		MinGHz:         1.0,
		MaxTurboGHz:    3.1,
		TurboBinGHz:    0.05,
		LLCMB:          32, // 2 MB per core * 16 cores
		LLCWays:        16,
		DRAMGBs:        50,
		TDPWatts:       105,
		IdleWatts:      28,
		CoreDynWatts:   4.4,
		FreqExponent:   2.5,
		LinkGbps:       10,
	}
}

// Validate reports whether the configuration is self-consistent.
func (c Config) Validate() error {
	switch {
	case c.Sockets <= 0:
		return errors.New("hw: Sockets must be positive")
	case c.CoresPerSocket <= 0:
		return errors.New("hw: CoresPerSocket must be positive")
	case c.ThreadsPerCore <= 0:
		return errors.New("hw: ThreadsPerCore must be positive")
	case c.MinGHz <= 0 || c.NominalGHz < c.MinGHz || c.MaxTurboGHz < c.NominalGHz:
		return fmt.Errorf("hw: need 0 < MinGHz <= NominalGHz <= MaxTurboGHz, got %g/%g/%g",
			c.MinGHz, c.NominalGHz, c.MaxTurboGHz)
	case c.TurboBinGHz < 0:
		return errors.New("hw: TurboBinGHz must be non-negative")
	case c.LLCMB <= 0:
		return errors.New("hw: LLCMB must be positive")
	case c.LLCWays <= 0:
		return errors.New("hw: LLCWays must be positive")
	case c.DRAMGBs <= 0:
		return errors.New("hw: DRAMGBs must be positive")
	case c.TDPWatts <= c.IdleWatts:
		return errors.New("hw: TDPWatts must exceed IdleWatts")
	case c.CoreDynWatts <= 0:
		return errors.New("hw: CoreDynWatts must be positive")
	case c.FreqExponent < 1:
		return errors.New("hw: FreqExponent must be at least 1")
	case c.LinkGbps <= 0:
		return errors.New("hw: LinkGbps must be positive")
	}
	return nil
}

// TotalCores returns the number of physical cores in the server.
func (c Config) TotalCores() int { return c.Sockets * c.CoresPerSocket }

// TotalThreads returns the number of logical CPUs in the server.
func (c Config) TotalThreads() int { return c.TotalCores() * c.ThreadsPerCore }

// TotalDRAMGBs returns the aggregate peak DRAM bandwidth across sockets.
func (c Config) TotalDRAMGBs() float64 { return float64(c.Sockets) * c.DRAMGBs }

// TotalTDPWatts returns the aggregate TDP across sockets.
func (c Config) TotalTDPWatts() float64 { return float64(c.Sockets) * c.TDPWatts }

// LinkGBs returns the NIC line rate in gigabytes per second.
func (c Config) LinkGBs() float64 { return c.LinkGbps / 8 }

// WayMB returns the capacity of a single LLC way in MB.
func (c Config) WayMB() float64 { return c.LLCMB / float64(c.LLCWays) }

// CPUID identifies a logical CPU. Logical CPUs are numbered the Linux way:
// CPU id = core + socket*CoresPerSocket + thread*TotalCores, so the first
// TotalCores ids are thread 0 of every core and the sibling hyperthread of
// CPU i is i + TotalCores.
type CPUID int

// Socket returns the socket that hosts logical CPU id.
func (c Config) Socket(id CPUID) int {
	return (int(id) % c.TotalCores()) / c.CoresPerSocket
}

// Core returns the physical core index (machine-wide) of logical CPU id.
func (c Config) Core(id CPUID) int { return int(id) % c.TotalCores() }

// Thread returns the hyperthread index of logical CPU id within its core.
func (c Config) Thread(id CPUID) int { return int(id) / c.TotalCores() }

// Sibling returns the other hyperthread on the same physical core, assuming
// two threads per core. With one thread per core it returns id itself.
func (c Config) Sibling(id CPUID) CPUID {
	if c.ThreadsPerCore < 2 {
		return id
	}
	tc := c.TotalCores()
	if int(id) < tc {
		return id + CPUID(tc)
	}
	return id - CPUID(tc)
}

// ThreadsOfCore returns the logical CPU ids belonging to physical core
// (machine-wide index).
func (c Config) ThreadsOfCore(core int) []CPUID {
	ids := make([]CPUID, c.ThreadsPerCore)
	for t := 0; t < c.ThreadsPerCore; t++ {
		ids[t] = CPUID(core + t*c.TotalCores())
	}
	return ids
}
