package hw

import (
	"math"
	"testing"
	"testing/quick"

	"heracles/internal/sim"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Sockets = 0 },
		func(c *Config) { c.CoresPerSocket = -1 },
		func(c *Config) { c.ThreadsPerCore = 0 },
		func(c *Config) { c.MinGHz = 0 },
		func(c *Config) { c.MaxTurboGHz = c.NominalGHz - 1 },
		func(c *Config) { c.TurboBinGHz = -0.1 },
		func(c *Config) { c.LLCMB = 0 },
		func(c *Config) { c.LLCWays = 0 },
		func(c *Config) { c.DRAMGBs = 0 },
		func(c *Config) { c.TDPWatts = c.IdleWatts },
		func(c *Config) { c.CoreDynWatts = 0 },
		func(c *Config) { c.FreqExponent = 0.5 },
		func(c *Config) { c.LinkGbps = 0 },
	}
	for i, mut := range mutations {
		cfg := DefaultConfig()
		mut(&cfg)
		if cfg.Validate() == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestTotals(t *testing.T) {
	c := DefaultConfig()
	if c.TotalCores() != 36 {
		t.Fatalf("cores = %d", c.TotalCores())
	}
	if c.TotalThreads() != 72 {
		t.Fatalf("threads = %d", c.TotalThreads())
	}
	if c.TotalDRAMGBs() != 120 {
		t.Fatalf("dram = %v", c.TotalDRAMGBs())
	}
	if c.TotalTDPWatts() != 290 {
		t.Fatalf("tdp = %v", c.TotalTDPWatts())
	}
	if c.LinkGBs() != 1.25 {
		t.Fatalf("link = %v", c.LinkGBs())
	}
	if math.Abs(c.WayMB()-2.25) > 1e-12 {
		t.Fatalf("wayMB = %v", c.WayMB())
	}
}

func TestTopologyMapping(t *testing.T) {
	c := DefaultConfig()
	// CPU 0: socket 0, core 0, thread 0. Its sibling is CPU 36.
	if c.Socket(0) != 0 || c.Core(0) != 0 || c.Thread(0) != 0 {
		t.Fatal("cpu 0 mapping wrong")
	}
	if c.Sibling(0) != 36 || c.Sibling(36) != 0 {
		t.Fatalf("sibling(0)=%d sibling(36)=%d", c.Sibling(0), c.Sibling(36))
	}
	// CPU 20: socket 1, core 20, thread 0.
	if c.Socket(20) != 1 || c.Thread(20) != 0 {
		t.Fatalf("cpu 20: socket=%d thread=%d", c.Socket(20), c.Thread(20))
	}
	// CPU 40 = thread 1 of core 4.
	if c.Core(40) != 4 || c.Thread(40) != 1 {
		t.Fatalf("cpu 40: core=%d thread=%d", c.Core(40), c.Thread(40))
	}
	th := c.ThreadsOfCore(5)
	if len(th) != 2 || th[0] != 5 || th[1] != 41 {
		t.Fatalf("threads of core 5 = %v", th)
	}
}

func TestSiblingSingleThread(t *testing.T) {
	c := DefaultConfig()
	c.ThreadsPerCore = 1
	if c.Sibling(3) != 3 {
		t.Fatal("single-thread sibling should be itself")
	}
}

func TestTurboLimitTable(t *testing.T) {
	c := DefaultConfig()
	if got := c.TurboLimitGHz(1); got != c.MaxTurboGHz {
		t.Fatalf("single-core turbo = %v", got)
	}
	if got := c.TurboLimitGHz(2); math.Abs(got-(c.MaxTurboGHz-c.TurboBinGHz)) > 1e-12 {
		t.Fatalf("2-core turbo = %v", got)
	}
	// Never below nominal.
	if got := c.TurboLimitGHz(1000); got != c.NominalGHz {
		t.Fatalf("all-core turbo floor = %v", got)
	}
}

func TestCorePowerScalesWithFrequency(t *testing.T) {
	c := DefaultConfig()
	atNominal := c.CorePowerWatts(c.NominalGHz, 1)
	if math.Abs(atNominal-c.CoreDynWatts) > 1e-12 {
		t.Fatalf("power at nominal = %v, want %v", atNominal, c.CoreDynWatts)
	}
	higher := c.CorePowerWatts(c.NominalGHz*1.2, 1)
	want := c.CoreDynWatts * math.Pow(1.2, c.FreqExponent)
	if math.Abs(higher-want) > 1e-9 {
		t.Fatalf("power at 1.2x = %v, want %v", higher, want)
	}
	if c.CorePowerWatts(0, 1) != 0 || c.CorePowerWatts(1, 0) != 0 {
		t.Fatal("idle power should be zero")
	}
}

func TestResolveFrequenciesIdleSocket(t *testing.T) {
	c := DefaultConfig()
	res := c.ResolveFrequencies(make([]CoreLoad, c.CoresPerSocket))
	if res.PowerWatts != c.IdleWatts {
		t.Fatalf("idle power = %v", res.PowerWatts)
	}
	for _, f := range res.FreqGHz {
		if f != 0 {
			t.Fatal("idle cores should report zero frequency")
		}
	}
}

func TestResolveFrequenciesSingleCoreTurbo(t *testing.T) {
	c := DefaultConfig()
	loads := make([]CoreLoad, c.CoresPerSocket)
	loads[0].Activity = 1
	res := c.ResolveFrequencies(loads)
	if res.FreqGHz[0] < c.MaxTurboGHz-0.11 {
		t.Fatalf("single active core at %v, want near max turbo %v", res.FreqGHz[0], c.MaxTurboGHz)
	}
}

func TestResolveFrequenciesRespectsTDP(t *testing.T) {
	c := DefaultConfig()
	loads := make([]CoreLoad, c.CoresPerSocket)
	for i := range loads {
		loads[i].Activity = 1.35 // power virus everywhere
	}
	res := c.ResolveFrequencies(loads)
	if res.PowerWatts > c.TDPWatts*1.001 {
		t.Fatalf("power %v exceeds TDP %v", res.PowerWatts, c.TDPWatts)
	}
	if res.FreeGHz >= c.NominalGHz {
		t.Fatalf("power virus should force below nominal, got %v", res.FreeGHz)
	}
}

func TestResolveFrequenciesHonorsCaps(t *testing.T) {
	c := DefaultConfig()
	loads := make([]CoreLoad, c.CoresPerSocket)
	for i := range loads {
		loads[i].Activity = 1
	}
	loads[3].CapGHz = 1.5
	res := c.ResolveFrequencies(loads)
	if res.FreqGHz[3] > 1.5+1e-9 {
		t.Fatalf("cap ignored: %v", res.FreqGHz[3])
	}
	// Capping one core frees budget: the others should run at least as
	// fast as the capped one.
	if res.FreqGHz[0] < res.FreqGHz[3] {
		t.Fatalf("uncapped %v < capped %v", res.FreqGHz[0], res.FreqGHz[3])
	}
}

func TestCappingBECoresShiftsPowerBudget(t *testing.T) {
	c := DefaultConfig()
	uncapped := make([]CoreLoad, c.CoresPerSocket)
	capped := make([]CoreLoad, c.CoresPerSocket)
	for i := range uncapped {
		uncapped[i].Activity = 1.35
		capped[i].Activity = 1.35
		if i >= 2 { // 16 "BE" cores capped low
			capped[i].CapGHz = 1.4
		}
	}
	fUncapped := c.ResolveFrequencies(uncapped).FreqGHz[0]
	fCapped := c.ResolveFrequencies(capped).FreqGHz[0]
	if fCapped <= fUncapped {
		t.Fatalf("capping BE cores should raise LC frequency: %v -> %v", fUncapped, fCapped)
	}
}

func TestResolveFrequenciesQuantised(t *testing.T) {
	c := DefaultConfig()
	loads := make([]CoreLoad, c.CoresPerSocket)
	for i := range loads {
		loads[i].Activity = 1
	}
	res := c.ResolveFrequencies(loads)
	steps := res.FreeGHz * 10
	if math.Abs(steps-math.Round(steps)) > 1e-9 {
		t.Fatalf("frequency %v not on a 100MHz step", res.FreeGHz)
	}
}

func TestResolveFrequenciesPowerNeverExceedsTDPProperty(t *testing.T) {
	c := DefaultConfig()
	if err := quick.Check(func(acts []uint8) bool {
		loads := make([]CoreLoad, c.CoresPerSocket)
		for i := range loads {
			if i < len(acts) {
				loads[i].Activity = float64(acts[i]%150) / 100
			}
		}
		res := c.ResolveFrequencies(loads)
		// Allow the floor case: at MinGHz the chip may exceed TDP by
		// design (thermal throttling is outside the model).
		if res.FreeGHz > c.MinGHz {
			return res.PowerWatts <= c.TDPWatts*1.001
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTurboUsesEffectiveActiveCores(t *testing.T) {
	c := DefaultConfig()
	// 18 barely-active cores should still turbo near the few-core bins.
	light := make([]CoreLoad, c.CoresPerSocket)
	for i := range light {
		light[i].Activity = 0.05
	}
	res := c.ResolveFrequencies(light)
	if res.FreeGHz < 3.4 {
		t.Fatalf("lightly loaded socket at %v, want near single-core turbo", res.FreeGHz)
	}
}

// TestResolveFrequenciesPowerMemoExact pins the bisection's one-entry
// f^e memo against the definitional per-core sum: the reported socket
// power must equal IdleWatts plus CorePowerWatts over the resolved
// per-core frequencies, bit for bit — reusing a cached Pow result must
// never perturb a single term of the accumulation.
func TestResolveFrequenciesPowerMemoExact(t *testing.T) {
	c := DefaultConfig()
	rng := sim.NewRNG(7)
	for trial := 0; trial < 200; trial++ {
		cores := make([]CoreLoad, c.CoresPerSocket)
		for i := range cores {
			switch rng.Intn(4) {
			case 0: // idle
			case 1: // uncapped LC-style core
				cores[i] = CoreLoad{Activity: 0.2 + 0.8*rng.Float64()}
			case 2: // capped BE core sharing one of two cap values
				cores[i] = CoreLoad{Activity: rng.Float64(), CapGHz: []float64{1.4, 2.1}[rng.Intn(2)]}
			case 3: // per-core cap, alternating with the blocks above
				cores[i] = CoreLoad{Activity: rng.Float64(), CapGHz: c.MinGHz + rng.Float64()*2}
			}
		}
		res := c.ResolveFrequencies(cores)
		want := c.IdleWatts
		for i, cl := range cores {
			if cl.Activity <= 0 {
				continue
			}
			want += c.CorePowerWatts(res.FreqGHz[i], cl.Activity)
		}
		if res.PowerWatts != want {
			t.Fatalf("trial %d: PowerWatts = %v, per-core sum = %v (diff %g)",
				trial, res.PowerWatts, want, res.PowerWatts-want)
		}
	}
}
