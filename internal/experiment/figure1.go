package experiment

import (
	"fmt"
	"strings"

	"heracles/internal/parallel"
	"heracles/internal/workload"
)

// DefaultLoads are the 19 load points of Figure 1 (5%..95%).
func DefaultLoads() []float64 {
	loads := make([]float64, 19)
	for i := range loads {
		loads[i] = 0.05 * float64(i+1)
	}
	return loads
}

// Fig1Row is one antagonist row of a Figure 1 table: tail latency as a
// fraction of the SLO at each load point.
type Fig1Row struct {
	Antagonist string
	Values     []float64
}

// Fig1Table is the characterisation table for one LC workload.
type Fig1Table struct {
	Workload string
	Loads    []float64
	Rows     []Fig1Row
}

// Fig1RowNames lists the antagonist rows in the paper's order.
var Fig1RowNames = []string{
	"LLC (small)", "LLC (med)", "LLC (big)", "DRAM",
	"HyperThread", "CPU power", "Network", "brain",
}

// Figure1 reproduces one of the three tables of Figure 1: the impact of
// each interference source on the LC workload's tail latency across load,
// following the §3.2 methodology exactly:
//
//   - LLC/DRAM/power antagonists: the LC workload is pinned to the fewest
//     cores that meet its SLO at that load; the antagonist gets the rest.
//   - HyperThread: a spinloop runs on the sibling hyperthreads of the LC
//     cores.
//   - Network: the LC workload keeps all cores but one; iperf generates
//     many low-bandwidth "mice" flows.
//   - brain: both workloads share all cores under CFS with low shares for
//     the BE task and no other isolation (OS-only row).
func (l *Lab) Figure1(lcName string, loads []float64) Fig1Table {
	wl := l.LC(lcName)
	table := Fig1Table{Workload: lcName, Loads: loads}

	// The SLO-sizing probes and every (antagonist, load) cell are
	// independent machines; run both grids in parallel. Antagonist
	// calibration is safe under the fan-out: the lab memoises each
	// workload behind its own sync.Once.
	workers := l.workers()
	minCores := parallel.Map(workers, len(loads), func(i int) int {
		return l.MinCoresForSLO(lcName, loads[i])
	})

	const warmup, measure = 6, 10
	nRows, nLoads := len(Fig1RowNames), len(loads)
	cells := parallel.Map(workers, nRows*nLoads, func(cell int) float64 {
		name := Fig1RowNames[cell/nLoads]
		i := cell % nLoads
		m := l.newMachine(nil)
		m.SetLC(wl)
		m.SetLoad(loads[i])

		switch name {
		case "HyperThread":
			m.AddBE(l.BE("spinloop"), workload.PlaceHTSibling)
			m.PinLC(minCores[i])
		case "Network":
			m.AddBE(l.BE("iperf"), workload.PlaceDedicated)
			m.PinLC(l.Cfg.TotalCores() - 1)
		case "brain":
			m.LC().OSShared = true
			m.AddBE(l.BE("brain"), workload.PlaceOSShared)
		case "DRAM":
			m.AddBE(l.BE("stream-DRAM"), workload.PlaceDedicated)
			m.PinLC(minCores[i])
		case "CPU power":
			m.AddBE(l.BE("cpu_pwr"), workload.PlaceDedicated)
			m.PinLC(minCores[i])
		default: // LLC (small) / LLC (med) / LLC (big)
			m.AddBE(l.BE(name), workload.PlaceDedicated)
			m.PinLC(minCores[i])
		}

		return measureTail(m, wl.SLO, warmup, measure)
	})
	for r, name := range Fig1RowNames {
		table.Rows = append(table.Rows, Fig1Row{
			Antagonist: name,
			Values:     cells[r*nLoads : (r+1)*nLoads : (r+1)*nLoads],
		})
	}
	return table
}

// cellString renders one Figure 1 cell the way the paper prints it:
// percentages, saturating at ">300%".
func cellString(v float64) string {
	if v > 3 {
		return ">300%"
	}
	return fmt.Sprintf("%.0f%%", v*100)
}

// String renders the table in the paper's layout with the paper's
// colour-coding thresholds marked as suffixes: "!" for >=120% of SLO and
// "*" for (100%, 120%).
func (t Fig1Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Workload)
	fmt.Fprintf(&b, "%-12s", "")
	for _, l := range t.Loads {
		fmt.Fprintf(&b, "%8.0f%%", l*100)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12s", r.Antagonist)
		for _, v := range r.Values {
			cell := cellString(v)
			switch {
			case v >= 1.2:
				cell += "!"
			case v > 1.0:
				cell += "*"
			}
			fmt.Fprintf(&b, "%9s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Row returns the row with the given antagonist name, or false.
func (t Fig1Table) Row(name string) (Fig1Row, bool) {
	for _, r := range t.Rows {
		if r.Antagonist == name {
			return r, true
		}
	}
	return Fig1Row{}, false
}
