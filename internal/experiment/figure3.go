package experiment

import (
	"fmt"
	"strings"

	"heracles/internal/parallel"
)

// Fig3Surface is the Figure 3 characterisation: the maximum load (fraction
// of peak) at which the LC workload meets its SLO, as a function of the
// fraction of cores and of LLC capacity granted to it. The paper uses this
// surface's convexity to justify gradient descent in the core & memory
// subcontroller.
type Fig3Surface struct {
	Workload  string
	CoreFracs []float64 // rows
	WayFracs  []float64 // columns
	MaxLoad   [][]float64
}

// Figure3 measures the surface by bisecting the largest sustainable load
// for every (cores, ways) allocation with the workload running alone.
func (l *Lab) Figure3(lcName string, coreFracs, wayFracs []float64) Fig3Surface {
	wl := l.LC(lcName)
	total := l.Cfg.TotalCores()
	ways := l.Cfg.LLCWays

	surface := Fig3Surface{
		Workload:  lcName,
		CoreFracs: coreFracs,
		WayFracs:  wayFracs,
		MaxLoad:   make([][]float64, len(coreFracs)),
	}

	meets := func(n, w int, load float64) bool {
		m := l.newMachine(nil)
		m.SetLC(wl)
		m.PinLC(n)
		lc := m.LC()
		if w < ways {
			lc.Ways = w
		}
		m.SetLoad(load)
		var tail float64
		for i := 0; i < 6; i++ {
			tail = m.Step().TailLatency.Seconds()
		}
		return tail <= wl.SLO.Seconds()
	}

	for i := range coreFracs {
		surface.MaxLoad[i] = make([]float64, len(wayFracs))
	}
	// Every (cores, ways) cell is an independent bisection over its own
	// machines; sweep the whole plane in parallel.
	nw := len(wayFracs)
	parallel.ForEach(l.workers(), len(coreFracs)*nw, func(cell int) {
		i, j := cell/nw, cell%nw
		n := int(coreFracs[i]*float64(total) + 0.5)
		if n < 1 {
			n = 1
		}
		w := int(wayFracs[j]*float64(ways) + 0.5)
		if w < 1 {
			w = 1
		}
		if !meets(n, w, 0.02) {
			surface.MaxLoad[i][j] = 0
			return
		}
		lo, hi := 0.02, 1.0
		for it := 0; it < 12; it++ {
			mid := (lo + hi) / 2
			if meets(n, w, mid) {
				lo = mid
			} else {
				hi = mid
			}
		}
		surface.MaxLoad[i][j] = lo
	})
	return surface
}

// String renders the surface as a grid of max-load percentages.
func (s Fig3Surface) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Max load under SLO (%s)\n", s.Workload)
	fmt.Fprintf(&b, "%-9s", "cores\\llc")
	for _, wf := range s.WayFracs {
		fmt.Fprintf(&b, "%7.0f%%", wf*100)
	}
	b.WriteByte('\n')
	for i, cf := range s.CoreFracs {
		fmt.Fprintf(&b, "%8.0f%%", cf*100)
		for j := range s.WayFracs {
			fmt.Fprintf(&b, "%7.0f%%", s.MaxLoad[i][j]*100)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ConvexViolations counts the grid points at which the surface fails the
// discrete midpoint-concavity test along each axis. A small count relative
// to the grid size supports the paper's claim that performance is a convex
// function of cores and cache (§4.3, Figure 3), which guarantees gradient
// descent finds the global optimum.
func (s Fig3Surface) ConvexViolations(tolerance float64) int {
	count := 0
	for i := range s.MaxLoad {
		for j := 1; j+1 < len(s.MaxLoad[i]); j++ {
			mid := s.MaxLoad[i][j]
			if mid+tolerance < (s.MaxLoad[i][j-1]+s.MaxLoad[i][j+1])/2 {
				count++
			}
		}
	}
	for j := 0; j < len(s.WayFracs); j++ {
		for i := 1; i+1 < len(s.MaxLoad); i++ {
			mid := s.MaxLoad[i][j]
			if mid+tolerance < (s.MaxLoad[i-1][j]+s.MaxLoad[i+1][j])/2 {
				count++
			}
		}
	}
	return count
}
