package experiment

import (
	"reflect"
	"testing"
	"time"
)

// The parallel sweep engine must be invisible in the results: any worker
// count produces byte-identical Series output because load points are
// independent machines and carry no shared mutable state.

func shortOpts(workers int) RunOpts {
	return RunOpts{
		Duration:     4 * time.Minute,
		Warmup:       time.Minute,
		UseDRAMModel: true,
		Workers:      workers,
	}
}

func TestParallelColocateMatchesSequential(t *testing.T) {
	lab := sharedLab(t)
	loads := []float64{0.2, 0.45, 0.7}
	seq := lab.Colocate("websearch", "brain", loads, shortOpts(1))
	par := lab.Colocate("websearch", "brain", loads, shortOpts(4))
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel Colocate diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
	if seq.String() != par.String() {
		t.Fatal("rendered series differ between worker counts")
	}
}

func TestParallelBaselineMatchesSequential(t *testing.T) {
	lab := sharedLab(t)
	loads := []float64{0.1, 0.5, 0.9}
	opts := RunOpts{Duration: 3 * time.Minute, Warmup: time.Minute}
	opts.Workers = 1
	seq := lab.Baseline("websearch", loads, opts)
	opts.Workers = 8
	par := lab.Baseline("websearch", loads, opts)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel Baseline diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

func TestParallelFigure3MatchesSequential(t *testing.T) {
	lab := sharedLab(t)
	fracs := []float64{0.3, 0.6, 1.0}
	seqLab := &Lab{Cfg: lab.Cfg, Workers: 1}
	// Reuse the shared lab's calibrations through fresh sweeps: both labs
	// calibrate deterministically from the same hardware config.
	seq := seqLab.Figure3("websearch", fracs, fracs)
	parLab := &Lab{Cfg: lab.Cfg, Workers: 4}
	par := parLab.Figure3("websearch", fracs, fracs)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel Figure3 diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

func TestLabCalibratesOncePerWorkloadUnderConcurrency(t *testing.T) {
	lab := NewLab(sharedLab(t).Cfg)
	const n = 8
	got := make([]any, n)
	done := make(chan int)
	for i := 0; i < n; i++ {
		go func(i int) {
			got[i] = lab.LC("memkeyval")
			done <- i
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	for i := 1; i < n; i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent LC calibration produced distinct instances")
		}
	}
}
