// Package experiment implements one runner per figure and table of the
// paper's evaluation (§3.3 and §5): the interference characterisation
// grid (Figure 1), the cores×LLC performance surface (Figure 3), the
// Heracles colocation sweeps (Figures 4-7), the offline DRAM bandwidth
// model profiler (§4.2), and shared infrastructure — workload calibration
// caching and table rendering.
package experiment

import (
	"sync"
	"time"

	"heracles/internal/hw"
	"heracles/internal/lat"
	"heracles/internal/machine"
	"heracles/internal/workload"
)

// Lab caches calibrated workloads for a hardware configuration so that the
// many experiment runners share one calibration pass.
type Lab struct {
	Cfg hw.Config

	mu         sync.Mutex
	lcs        map[string]*workload.LC
	bes        map[string]*workload.BE
	dramModels map[string]*DRAMTable
}

// NewLab returns a lab for the given hardware.
func NewLab(cfg hw.Config) *Lab {
	return &Lab{
		Cfg: cfg,
		lcs: make(map[string]*workload.LC),
		bes: make(map[string]*workload.BE),
	}
}

// DefaultLab returns a lab on the paper's reference hardware.
func DefaultLab() *Lab { return NewLab(hw.DefaultConfig()) }

// LC returns the calibrated latency-critical workload with the given name,
// calibrating it on first use. It panics on unknown names (experiment
// configuration is programmer error, not runtime input).
func (l *Lab) LC(name string) *workload.LC {
	l.mu.Lock()
	defer l.mu.Unlock()
	if wl, ok := l.lcs[name]; ok {
		return wl
	}
	spec, ok := workload.LCByName(name)
	if !ok {
		panic("experiment: unknown LC workload " + name)
	}
	wl := machine.CalibrateLC(l.Cfg, machine.SpecOf(spec))
	l.lcs[name] = wl
	return wl
}

// BE returns the calibrated best-effort workload with the given name,
// calibrating it on first use.
func (l *Lab) BE(name string) *workload.BE {
	l.mu.Lock()
	defer l.mu.Unlock()
	if wl, ok := l.bes[name]; ok {
		return wl
	}
	spec, ok := workload.BEByName(name)
	if !ok {
		if name == "filler" {
			spec = workload.Filler()
		} else {
			panic("experiment: unknown BE workload " + name)
		}
	}
	wl := machine.CalibrateBE(l.Cfg, spec)
	l.bes[name] = wl
	return wl
}

// newMachine builds a machine with the lab's hardware and an optional
// engine override.
func (l *Lab) newMachine(engine lat.Engine) *machine.Machine {
	if engine == nil {
		return machine.New(l.Cfg)
	}
	return machine.New(l.Cfg, machine.WithEngine(engine))
}

// MinCoresForSLO returns the smallest number of cores on which the LC
// workload meets its SLO at the given load, running alone with the full
// LLC — the §3.2 characterisation setup ("pinning the LC workload to
// enough cores to satisfy its SLO at the specific load").
func (l *Lab) MinCoresForSLO(lcName string, load float64) int {
	wl := l.LC(lcName)
	total := l.Cfg.TotalCores()
	// Pin with a modest margin (90% of the SLO): operators leave headroom
	// when sizing, and the paper's Figure 1 cells hover around 100%. The
	// remaining cores run a neutral compute filler during the probe so
	// that sizing happens at realistic (non-turbo) frequencies — the
	// antagonist occupying those cores will consume the turbo headroom.
	target := wl.SLO.Seconds() * 0.90
	filler := l.BE("filler")
	meets := func(n int) bool {
		m := l.newMachine(nil)
		m.SetLC(wl)
		m.AddBE(filler, workload.PlaceDedicated)
		m.SetLoad(load)
		m.PinLC(n)
		var t machine.Telemetry
		for i := 0; i < 6; i++ {
			t = m.Step()
		}
		return t.TailLatency.Seconds() <= target
	}
	lo, hi := 1, total
	if !meets(hi) {
		return hi
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if meets(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// measureTail runs the machine for warmup+measure epochs and returns the
// mean tail latency over the measurement phase as a fraction of the SLO.
func measureTail(m *machine.Machine, slo time.Duration, warmup, measure int) float64 {
	for i := 0; i < warmup; i++ {
		m.Step()
	}
	var sum float64
	for i := 0; i < measure; i++ {
		t := m.Step()
		sum += t.TailLatency.Seconds()
	}
	return sum / float64(measure) / slo.Seconds()
}
