package experiment

import (
	"sync"
	"time"

	"heracles/internal/hw"
	"heracles/internal/lat"
	"heracles/internal/machine"
	"heracles/internal/parallel"
	"heracles/internal/workload"
)

// Lab caches calibrated workloads for a hardware configuration so that the
// many experiment runners share one calibration pass. Each workload (and
// each offline DRAM model) is calibrated at most once behind its own
// sync.Once, so concurrent sweeps never recalibrate and never serialise on
// an unrelated workload's calibration.
type Lab struct {
	Cfg hw.Config

	// Workers bounds the concurrency of this lab's sweeps and grids:
	// 0 selects parallel.DefaultWorkers (GOMAXPROCS), 1 forces the
	// sequential reference execution the determinism tests compare
	// against. RunOpts.Workers overrides it per run.
	Workers int

	lcs        memo[*workload.LC]
	bes        memo[*workload.BE]
	dramModels memo[*DRAMTable]
}

// memo is a per-key once-cache: the map lock is held only to find or
// create an entry, and the expensive compute runs inside the entry's own
// sync.Once, so different keys calibrate concurrently while the same key
// calibrates exactly once.
type memo[T any] struct {
	mu sync.Mutex
	m  map[string]*memoEntry[T]
}

type memoEntry[T any] struct {
	once sync.Once
	v    T
}

func (mm *memo[T]) get(name string, compute func() T) T {
	mm.mu.Lock()
	if mm.m == nil {
		mm.m = make(map[string]*memoEntry[T])
	}
	e, ok := mm.m[name]
	if !ok {
		e = &memoEntry[T]{}
		mm.m[name] = e
	}
	mm.mu.Unlock()
	e.once.Do(func() { e.v = compute() })
	return e.v
}

// NewLab returns a lab for the given hardware.
func NewLab(cfg hw.Config) *Lab {
	return &Lab{Cfg: cfg}
}

// DefaultLab returns a lab on the paper's reference hardware.
func DefaultLab() *Lab { return NewLab(hw.DefaultConfig()) }

// workers resolves the lab-level worker count.
func (l *Lab) workers() int {
	if l.Workers != 0 {
		return l.Workers
	}
	return parallel.DefaultWorkers()
}

// LC returns the calibrated latency-critical workload with the given name,
// calibrating it on first use. It panics on unknown names (experiment
// configuration is programmer error, not runtime input).
func (l *Lab) LC(name string) *workload.LC {
	spec, ok := workload.LCByName(name)
	if !ok {
		panic("experiment: unknown LC workload " + name)
	}
	return l.lcs.get(name, func() *workload.LC {
		return machine.CalibrateLC(l.Cfg, machine.SpecOf(spec))
	})
}

// BE returns the calibrated best-effort workload with the given name,
// calibrating it on first use.
func (l *Lab) BE(name string) *workload.BE {
	spec, ok := workload.BEByName(name)
	if !ok {
		if name == "filler" {
			spec = workload.Filler()
		} else {
			panic("experiment: unknown BE workload " + name)
		}
	}
	return l.bes.get(name, func() *workload.BE {
		return machine.CalibrateBE(l.Cfg, spec)
	})
}

// newMachine builds a machine with the lab's hardware and an optional
// engine override.
func (l *Lab) newMachine(engine lat.Engine) *machine.Machine {
	if engine == nil {
		return machine.New(l.Cfg)
	}
	return machine.New(l.Cfg, machine.WithEngine(engine))
}

// MinCoresForSLO returns the smallest number of cores on which the LC
// workload meets its SLO at the given load, running alone with the full
// LLC — the §3.2 characterisation setup ("pinning the LC workload to
// enough cores to satisfy its SLO at the specific load").
func (l *Lab) MinCoresForSLO(lcName string, load float64) int {
	wl := l.LC(lcName)
	total := l.Cfg.TotalCores()
	// Pin with a modest margin (90% of the SLO): operators leave headroom
	// when sizing, and the paper's Figure 1 cells hover around 100%. The
	// remaining cores run a neutral compute filler during the probe so
	// that sizing happens at realistic (non-turbo) frequencies — the
	// antagonist occupying those cores will consume the turbo headroom.
	target := wl.SLO.Seconds() * 0.90
	filler := l.BE("filler")
	meets := func(n int) bool {
		m := l.newMachine(nil)
		m.SetLC(wl)
		m.AddBE(filler, workload.PlaceDedicated)
		m.SetLoad(load)
		m.PinLC(n)
		var t machine.Telemetry
		for i := 0; i < 6; i++ {
			t = m.Step()
		}
		return t.TailLatency.Seconds() <= target
	}
	lo, hi := 1, total
	if !meets(hi) {
		return hi
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if meets(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// measureTail runs the machine for warmup+measure epochs and returns the
// mean tail latency over the measurement phase as a fraction of the SLO.
func measureTail(m *machine.Machine, slo time.Duration, warmup, measure int) float64 {
	for i := 0; i < warmup; i++ {
		m.Step()
	}
	var sum float64
	for i := 0; i < measure; i++ {
		t := m.Step()
		sum += t.TailLatency.Seconds()
	}
	return sum / float64(measure) / slo.Seconds()
}
