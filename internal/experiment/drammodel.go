package experiment

import (
	"sort"

	"heracles/internal/core"
	"heracles/internal/parallel"
)

// DRAMTable is the offline model of LC DRAM bandwidth demand as a function
// of load, core count and LLC ways (§4.2). It is produced by profiling the
// LC workload alone and queried by the core & memory subcontroller as
// LcBwModel(). Lookups use trilinear interpolation with clamping.
type DRAMTable struct {
	Loads []float64 // ascending
	Cores []int     // ascending
	Ways  []int     // ascending
	// GBs[i][j][k] is the bandwidth at Loads[i], Cores[j], Ways[k].
	GBs [][][]float64
}

var _ core.DRAMModel = (*DRAMTable)(nil)

// LCDemandGBs implements core.DRAMModel.
func (t *DRAMTable) LCDemandGBs(load float64, lcCores, lcWays int) float64 {
	if len(t.Loads) == 0 || len(t.Cores) == 0 || len(t.Ways) == 0 {
		return 0
	}
	i0, i1, fi := bracketF(t.Loads, load)
	j0, j1, fj := bracketI(t.Cores, lcCores)
	k0, k1, fk := bracketI(t.Ways, lcWays)

	lerp := func(a, b, f float64) float64 { return a + (b-a)*f }
	c00 := lerp(t.GBs[i0][j0][k0], t.GBs[i1][j0][k0], fi)
	c01 := lerp(t.GBs[i0][j0][k1], t.GBs[i1][j0][k1], fi)
	c10 := lerp(t.GBs[i0][j1][k0], t.GBs[i1][j1][k0], fi)
	c11 := lerp(t.GBs[i0][j1][k1], t.GBs[i1][j1][k1], fi)
	c0 := lerp(c00, c10, fj)
	c1 := lerp(c01, c11, fj)
	return lerp(c0, c1, fk)
}

func bracketF(xs []float64, x float64) (int, int, float64) {
	n := len(xs)
	if x <= xs[0] {
		return 0, 0, 0
	}
	if x >= xs[n-1] {
		return n - 1, n - 1, 0
	}
	i := sort.SearchFloat64s(xs, x)
	lo := i - 1
	f := (x - xs[lo]) / (xs[i] - xs[lo])
	return lo, i, f
}

func bracketI(xs []int, x int) (int, int, float64) {
	n := len(xs)
	if x <= xs[0] {
		return 0, 0, 0
	}
	if x >= xs[n-1] {
		return n - 1, n - 1, 0
	}
	i := sort.SearchInts(xs, x)
	if xs[i] == x {
		return i, i, 0
	}
	lo := i - 1
	f := float64(x-xs[lo]) / float64(xs[i]-xs[lo])
	return lo, i, f
}

// DRAMModel profiles (or returns the cached) offline DRAM bandwidth model
// for the named LC workload on the lab's hardware, sweeping a coarse grid
// of load, cores and ways. This is the §4.2 offline step: it must be
// regenerated only when the workload structure changes significantly, and
// the paper shows Heracles tolerates a somewhat outdated model. The grid
// cells are independent single-machine probes, so they run in parallel.
func (l *Lab) DRAMModel(lcName string) *DRAMTable {
	return l.dramModels.get(lcName, func() *DRAMTable { return l.profileDRAM(lcName) })
}

func (l *Lab) profileDRAM(lcName string) *DRAMTable {
	wl := l.LC(lcName)
	total := l.Cfg.TotalCores()
	ways := l.Cfg.LLCWays

	t := &DRAMTable{
		Loads: []float64{0.05, 0.2, 0.4, 0.6, 0.8, 0.95},
		Cores: gridInts(2, total, 6),
		Ways:  gridInts(2, ways, 5),
	}
	nc, nw := len(t.Cores), len(t.Ways)
	t.GBs = make([][][]float64, len(t.Loads))
	for i := range t.GBs {
		t.GBs[i] = make([][]float64, nc)
		for j := range t.GBs[i] {
			t.GBs[i][j] = make([]float64, nw)
		}
	}
	parallel.ForEach(l.workers(), len(t.Loads)*nc*nw, func(cell int) {
		i, j, k := cell/(nc*nw), cell/nw%nc, cell%nw
		m := l.newMachine(nil)
		m.SetLC(wl)
		m.PinLC(t.Cores[j])
		if w := t.Ways[k]; w < ways {
			m.LC().Ways = w
		}
		m.SetLoad(t.Loads[i])
		var bw float64
		for s := 0; s < 5; s++ {
			bw = m.Step().LCDRAMGBs
		}
		t.GBs[i][j][k] = bw
	})
	return t
}

// gridInts returns n roughly evenly spaced ints from lo to hi inclusive.
func gridInts(lo, hi, n int) []int {
	if n < 2 || hi <= lo {
		return []int{lo, hi}
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		v := lo + (hi-lo)*i/(n-1)
		if len(out) == 0 || out[len(out)-1] != v {
			out = append(out, v)
		}
	}
	return out
}
