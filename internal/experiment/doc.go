// Package experiment implements one runner per figure and table of the
// paper's evaluation (§3.3 and §5): the interference characterisation
// grid (Figure 1), the cores×LLC performance surface (Figure 3), the
// Heracles colocation sweeps (Figures 4-7), the offline DRAM bandwidth
// model profiler (§4.2), and shared infrastructure — workload
// calibration caching and table rendering.
//
// The Lab is the shared entry point: it caches calibrated workloads and
// DRAM models per hardware configuration (each behind its own
// sync.Once, so concurrent consumers never recalibrate or serialise on
// unrelated keys) and bounds sweep concurrency through
// internal/parallel. CLIs, tests, the golden-figure regression harness
// and the control plane all draw their calibrated workloads from a Lab.
package experiment
