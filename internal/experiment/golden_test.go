package experiment

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

// update regenerates the golden files instead of comparing:
//
//	go test ./internal/experiment -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files with current results")

// goldenTolerance is the relative drift allowed before a golden
// comparison fails. The simulation is deterministic, so any drift at all
// means behaviour changed; the tolerance only absorbs float formatting.
const goldenTolerance = 1e-9

// goldenArtifacts is the committed small-grid snapshot of the figure
// generators: behavioural drift in a refactor fails these tests until the
// author regenerates the files with -update, making the drift a reviewed
// diff instead of a silent change.
type goldenArtifacts struct {
	Figure1  Fig1Table   `json:"figure1"`
	Figure3  Fig3Surface `json:"figure3"`
	Baseline Series      `json:"baseline"`
	Colocate Series      `json:"colocate"`
}

func computeGolden(t *testing.T) goldenArtifacts {
	t.Helper()
	lab := sharedLab(t)
	loads := []float64{0.2, 0.5, 0.8}
	fracs := []float64{0.4, 0.7, 1.0}
	opts := RunOpts{
		Duration:     4 * time.Minute,
		Warmup:       time.Minute,
		UseDRAMModel: true,
		Workers:      1, // the sequential reference run is the artefact
	}
	return goldenArtifacts{
		Figure1:  lab.Figure1("websearch", loads),
		Figure3:  lab.Figure3("websearch", fracs, fracs),
		Baseline: lab.Baseline("websearch", loads, opts),
		Colocate: lab.Colocate("websearch", "brain", loads, opts),
	}
}

func TestGoldenFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("golden regeneration is not a -short test")
	}
	path := filepath.Join("testdata", "golden_small.json")
	got := computeGolden(t)
	data, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')

	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(data))
		return
	}

	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create it): %v", err)
	}
	var gotV, wantV any
	if err := json.Unmarshal(data, &gotV); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(want, &wantV); err != nil {
		t.Fatalf("golden file corrupt: %v", err)
	}
	diffJSON(t, "golden", wantV, gotV)
	if t.Failed() {
		t.Log("behavioural drift against the golden figures; if intentional, regenerate with: go test ./internal/experiment -run TestGolden -update")
	}
}

// diffJSON compares two decoded JSON trees, reporting every path whose
// numeric values drift beyond the tolerance or whose structure changed.
func diffJSON(t *testing.T, path string, want, got any) {
	t.Helper()
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok {
			t.Errorf("%s: type changed: %T -> %T", path, want, got)
			return
		}
		for k, wv := range w {
			gv, ok := g[k]
			if !ok {
				t.Errorf("%s.%s: missing in current output", path, k)
				continue
			}
			diffJSON(t, path+"."+k, wv, gv)
		}
		for k := range g {
			if _, ok := w[k]; !ok {
				t.Errorf("%s.%s: new field not in golden file", path, k)
			}
		}
	case []any:
		g, ok := got.([]any)
		if !ok {
			t.Errorf("%s: type changed: %T -> %T", path, want, got)
			return
		}
		if len(w) != len(g) {
			t.Errorf("%s: length %d -> %d", path, len(w), len(g))
			return
		}
		for i := range w {
			diffJSON(t, path+"["+strconv.Itoa(i)+"]", w[i], g[i])
		}
	case float64:
		g, ok := got.(float64)
		if !ok {
			t.Errorf("%s: type changed: %T -> %T", path, want, got)
			return
		}
		if !closeEnough(w, g) {
			t.Errorf("%s: %v -> %v", path, w, g)
		}
	default:
		if want != got {
			t.Errorf("%s: %v -> %v", path, want, got)
		}
	}
}

func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= goldenTolerance*scale
}
