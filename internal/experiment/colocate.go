package experiment

import (
	"fmt"
	"strings"
	"time"

	"heracles/internal/core"
	"heracles/internal/lat"
	"heracles/internal/machine"
	"heracles/internal/parallel"
	"heracles/internal/workload"
)

// RunOpts configures a colocation run.
type RunOpts struct {
	Duration time.Duration // total simulated time per load point (default 12 min)
	Warmup   time.Duration // excluded from statistics (default 2 min)
	Window   time.Duration // SLO reporting window (default 60 s, like the paper)
	// Engine overrides the per-point latency engine; nil = analytic. A
	// non-nil engine is a single shared instance whose state carries
	// across load points, so setting it forces the sweep sequential.
	Engine lat.Engine
	// UseDRAMModel attaches the offline DRAM bandwidth model (§4.2); when
	// false the controller estimates LC bandwidth by counter subtraction.
	UseDRAMModel bool
	// Controller overrides the default controller config when non-nil.
	Controller *core.Config
	// Workers bounds the sweep's concurrency: 0 defers to the lab's
	// setting (default GOMAXPROCS), 1 forces the sequential reference
	// run. Load points are independent machines, so any worker count
	// produces byte-identical Series output.
	Workers int
}

func (o RunOpts) withDefaults() RunOpts {
	if o.Duration == 0 {
		o.Duration = 12 * time.Minute
	}
	if o.Warmup == 0 {
		o.Warmup = 2 * time.Minute
	}
	if o.Window == 0 {
		o.Window = time.Minute
	}
	return o
}

// sweepWorkers resolves the worker count for one sweep under this lab.
func (l *Lab) sweepWorkers(opts RunOpts) int {
	if opts.Engine != nil {
		return 1 // shared engine state must be touched in load order
	}
	if opts.Workers != 0 {
		return opts.Workers
	}
	return l.workers()
}

// Point is one measured load point of a colocation experiment. Latency is
// reported the way the paper does: the SLO is defined over Window-sized
// windows and the worst window seen is reported.
type Point struct {
	Load         float64
	WorstTail    float64 // worst window-mean tail latency, fraction of SLO
	AvgTail      float64 // mean tail latency over the run
	EMU          float64 // effective machine utilisation (LC + BE throughput)
	BEOnlyRate   float64 // BE contribution to EMU
	DRAMUtil     float64 // achieved DRAM bandwidth / peak
	CPUUtil      float64
	PowerFrac    float64 // package power / TDP
	LCNetGBs     float64
	BENetGBs     float64
	LinkUtil     float64
	BECores      int
	BEWays       int
	SLOViolation bool
}

// Series is a load sweep for one LC/BE pair.
type Series struct {
	LC     string
	BE     string // "baseline" for the LC workload alone
	Points []Point
}

// Baseline sweeps the LC workload alone across the given loads — the
// "baseline" series of Figures 4-7. Load points are independent machines
// and run concurrently; results land in load order.
func (l *Lab) Baseline(lcName string, loads []float64, opts RunOpts) Series {
	opts = opts.withDefaults()
	wl := l.LC(lcName)
	points := parallel.Map(l.sweepWorkers(opts), len(loads), func(i int) Point {
		m := l.newMachine(opts.Engine)
		m.SetLC(wl)
		m.SetLoad(loads[i])
		return runPoint(m, nil, wl, loads[i], opts)
	})
	return Series{LC: lcName, BE: "baseline", Points: points}
}

// Colocate sweeps the LC workload colocated with the BE task under
// Heracles control across the given loads — Figures 4, 5, 6 and 7.
func (l *Lab) Colocate(lcName, beName string, loads []float64, opts RunOpts) Series {
	var model core.DRAMModel
	if opts.UseDRAMModel {
		model = l.DRAMModel(lcName)
	}
	return l.ColocateWithModel(lcName, beName, loads, opts, model)
}

// ColocateWithModel is Colocate with an explicit (possibly stale or
// perturbed) offline DRAM model, used by the §5.2 model-staleness
// experiments. A nil model selects counter subtraction.
func (l *Lab) ColocateWithModel(lcName, beName string, loads []float64, opts RunOpts, model core.DRAMModel) Series {
	opts = opts.withDefaults()
	wl := l.LC(lcName)
	be := l.BE(beName)

	cfg := core.DefaultConfig()
	if opts.Controller != nil {
		cfg = *opts.Controller
	}

	points := parallel.Map(l.sweepWorkers(opts), len(loads), func(i int) Point {
		m := l.newMachine(opts.Engine)
		m.SetLC(wl)
		m.AddBE(be, workload.PlaceDedicated)
		m.SetLoad(loads[i])
		ctl := core.New(m, model, cfg)
		return runPoint(m, ctl, wl, loads[i], opts)
	})
	return Series{LC: lcName, BE: beName, Points: points}
}

// runPoint advances one machine for the configured duration, driving the
// controller if present, and aggregates the point statistics.
func runPoint(m *machine.Machine, ctl *core.Controller, wl *workload.LC, load float64, opts RunOpts) Point {
	epochs := int(opts.Duration / m.Epoch())
	if epochs < 1 {
		epochs = 1 // the n==0 fallback below then reports a real epoch
	}
	warmup := int(opts.Warmup / m.Epoch())
	winLen := int(opts.Window / m.Epoch())
	if winLen < 1 {
		winLen = 1
	}

	p := Point{Load: load}
	var (
		win     []float64
		sumTail float64
		sums    Point
		n       int
	)
	for i := 0; i < epochs; i++ {
		t := m.Step()
		if ctl != nil {
			ctl.Step(m.Clock().Now())
		}
		if i < warmup {
			continue
		}
		frac := t.TailLatency.Seconds() / wl.SLO.Seconds()
		win = append(win, frac)
		if len(win) > winLen {
			win = win[1:]
		}
		if len(win) == winLen {
			mean := 0.0
			for _, v := range win {
				mean += v
			}
			mean /= float64(winLen)
			if mean > p.WorstTail {
				p.WorstTail = mean
			}
		}
		sumTail += frac
		sums.EMU += t.EMU
		sums.BEOnlyRate += t.BERateNorm
		sums.DRAMUtil += t.DRAMUtil
		sums.CPUUtil += t.CPUUtil
		sums.PowerFrac += t.PowerFracTDP
		sums.LCNetGBs += t.LCTxGBs
		sums.BENetGBs += t.BETxGBs
		sums.LinkUtil += t.LinkUtil
		n++
	}
	last := m.Last()
	if n == 0 {
		// Warmup consumed the whole run; report the final epoch rather
		// than dividing by zero.
		p.AvgTail = last.TailLatency.Seconds() / wl.SLO.Seconds()
		p.WorstTail = p.AvgTail
		p.EMU = last.EMU
		p.BEOnlyRate = last.BERateNorm
		p.DRAMUtil = last.DRAMUtil
		p.CPUUtil = last.CPUUtil
		p.PowerFrac = last.PowerFracTDP
		p.LCNetGBs = last.LCTxGBs
		p.BENetGBs = last.BETxGBs
		p.LinkUtil = last.LinkUtil
		p.BECores = last.BECores
		p.BEWays = last.BEWays
		p.SLOViolation = p.WorstTail > 1.0
		return p
	}
	fn := float64(n)
	p.AvgTail = sumTail / fn
	p.EMU = sums.EMU / fn
	p.BEOnlyRate = sums.BEOnlyRate / fn
	p.DRAMUtil = sums.DRAMUtil / fn
	p.CPUUtil = sums.CPUUtil / fn
	p.PowerFrac = sums.PowerFrac / fn
	p.LCNetGBs = sums.LCNetGBs / fn
	p.BENetGBs = sums.BENetGBs / fn
	p.LinkUtil = sums.LinkUtil / fn
	p.BECores = last.BECores
	p.BEWays = last.BEWays
	p.SLOViolation = p.WorstTail > 1.0
	return p
}

// String renders a series as an aligned table (one row per load point).
func (s Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s + %s\n", s.LC, s.BE)
	fmt.Fprintf(&b, "%6s %10s %8s %8s %8s %8s %8s\n",
		"load", "worstTail", "EMU", "DRAM", "CPU", "power", "link")
	for _, p := range s.Points {
		viol := ""
		if p.SLOViolation {
			viol = " VIOLATION"
		}
		fmt.Fprintf(&b, "%5.0f%% %9.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%%s\n",
			p.Load*100, p.WorstTail*100, p.EMU*100, p.DRAMUtil*100,
			p.CPUUtil*100, p.PowerFrac*100, p.LinkUtil*100, viol)
	}
	return b.String()
}

// Violations returns the load points whose worst window exceeded the SLO.
func (s Series) Violations() []float64 {
	var out []float64
	for _, p := range s.Points {
		if p.SLOViolation {
			out = append(out, p.Load)
		}
	}
	return out
}

// MeanEMU averages EMU across the series' points.
func (s Series) MeanEMU() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.EMU
	}
	return sum / float64(len(s.Points))
}
