package experiment

import (
	"strings"
	"sync"
	"testing"
	"time"

	"heracles/internal/core"
	"heracles/internal/machine"
	"heracles/internal/workload"
)

var (
	labOnce sync.Once
	testLab *Lab
)

func sharedLab(t *testing.T) *Lab {
	t.Helper()
	labOnce.Do(func() { testLab = DefaultLab() })
	return testLab
}

func TestDefaultLoads(t *testing.T) {
	loads := DefaultLoads()
	if len(loads) != 19 {
		t.Fatalf("want 19 load points, got %d", len(loads))
	}
	if loads[0] != 0.05 || loads[18] < 0.949 || loads[18] > 0.951 {
		t.Fatalf("range = [%v, %v]", loads[0], loads[18])
	}
}

func TestLabCachesCalibration(t *testing.T) {
	lab := sharedLab(t)
	a := lab.LC("websearch")
	b := lab.LC("websearch")
	if a != b {
		t.Fatal("calibration not cached")
	}
	if lab.BE("brain") != lab.BE("brain") {
		t.Fatal("BE calibration not cached")
	}
}

func TestLabUnknownWorkloadPanics(t *testing.T) {
	lab := sharedLab(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown workload")
		}
	}()
	lab.LC("nope")
}

func TestMinCoresForSLOMonotoneInLoad(t *testing.T) {
	lab := sharedLab(t)
	prev := 0
	for _, load := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		n := lab.MinCoresForSLO("websearch", load)
		if n < prev {
			t.Fatalf("min cores shrank with load at %v: %d < %d", load, n, prev)
		}
		prev = n
	}
	if prev < 20 {
		t.Fatalf("min cores at 90%% load = %d, want most of the machine", prev)
	}
}

func TestFigure1Shapes(t *testing.T) {
	lab := sharedLab(t)
	loads := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	table := lab.Figure1("websearch", loads)
	if len(table.Rows) != len(Fig1RowNames) {
		t.Fatalf("row count = %d", len(table.Rows))
	}

	small, _ := table.Row("LLC (small)")
	for i, v := range small.Values {
		if v > 1.5 {
			t.Fatalf("LLC (small) at load %v = %v: should barely affect websearch", loads[i], v)
		}
	}
	dram, _ := table.Row("DRAM")
	if dram.Values[0] < 2 {
		t.Fatalf("DRAM antagonist at low load = %v, want severe violation", dram.Values[0])
	}
	if dram.Values[4] > 1.2 {
		t.Fatalf("DRAM antagonist at 90%% load = %v, want recovery (LC defends its share)", dram.Values[4])
	}
	brain, _ := table.Row("brain")
	for i, v := range brain.Values {
		if v < 1.0 {
			t.Fatalf("OS-only brain colocation at load %v = %v: must violate (§3.3)", loads[i], v)
		}
	}
	net, _ := table.Row("Network")
	for i, v := range net.Values {
		if v > 1.0 {
			t.Fatalf("network antagonist hurts websearch at load %v (%v); it must not (§3.3)", loads[i], v)
		}
	}
}

func TestFigure1MemkeyvalNetworkCliff(t *testing.T) {
	lab := sharedLab(t)
	loads := []float64{0.1, 0.3, 0.6, 0.9}
	table := lab.Figure1("memkeyval", loads)
	net, _ := table.Row("Network")
	if net.Values[0] > 1 {
		t.Fatalf("memkeyval network at 10%% load = %v, want fine", net.Values[0])
	}
	if net.Values[2] < 2 {
		t.Fatalf("memkeyval network at 60%% load = %v, want overrun by mice flows (§3.3)", net.Values[2])
	}
}

func TestFigure1Rendering(t *testing.T) {
	table := Fig1Table{
		Workload: "test",
		Loads:    []float64{0.5},
		Rows:     []Fig1Row{{Antagonist: "DRAM", Values: []float64{3.5}}},
	}
	out := table.String()
	if !strings.Contains(out, ">300%") {
		t.Fatalf("saturated cell not rendered: %q", out)
	}
	if !strings.Contains(out, "DRAM") {
		t.Fatal("row name missing")
	}
}

func TestFigure3SurfaceMonotoneAndConvex(t *testing.T) {
	lab := sharedLab(t)
	fracs := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	s := lab.Figure3("websearch", fracs, fracs)
	// Max load never decreases when more cores or cache are granted.
	for i := range s.MaxLoad {
		for j := range s.MaxLoad[i] {
			if i > 0 && s.MaxLoad[i][j] < s.MaxLoad[i-1][j]-0.03 {
				t.Fatalf("more cores lowered max load at (%d,%d)", i, j)
			}
			if j > 0 && s.MaxLoad[i][j] < s.MaxLoad[i][j-1]-0.03 {
				t.Fatalf("more cache lowered max load at (%d,%d)", i, j)
			}
		}
	}
	// Full allocation sustains (nearly) full load.
	if s.MaxLoad[4][4] < 0.9 {
		t.Fatalf("full allocation max load = %v", s.MaxLoad[4][4])
	}
	// The paper's convexity claim (diminishing returns, Figure 3).
	if v := s.ConvexViolations(0.05); v > 3 {
		t.Fatalf("convexity violations = %d", v)
	}
	if !strings.Contains(s.String(), "Max load under SLO") {
		t.Fatal("rendering broken")
	}
}

func TestDRAMModelInterpolation(t *testing.T) {
	lab := sharedLab(t)
	model := lab.DRAMModel("websearch")
	// Bandwidth grows with load.
	low := model.LCDemandGBs(0.1, 36, 20)
	high := model.LCDemandGBs(0.9, 36, 20)
	if high <= low {
		t.Fatalf("model bandwidth not increasing: %v -> %v", low, high)
	}
	// Interpolated points stay between grid neighbours.
	mid := model.LCDemandGBs(0.5, 36, 20)
	if mid < low || mid > high {
		t.Fatalf("interpolation out of range: %v not in [%v, %v]", mid, low, high)
	}
	// Clamping outside the grid.
	if model.LCDemandGBs(-1, 36, 20) < 0 {
		t.Fatal("clamped lookup negative")
	}
	if model.LCDemandGBs(2, 999, 999) <= 0 {
		t.Fatal("clamped lookup should return the max-corner value")
	}
}

func TestColocateNoViolationAndEMUGain(t *testing.T) {
	lab := sharedLab(t)
	loads := []float64{0.3, 0.6}
	opts := RunOpts{Duration: 8 * time.Minute, Warmup: 2 * time.Minute, UseDRAMModel: true}
	s := lab.Colocate("websearch", "brain", loads, opts)
	if v := s.Violations(); len(v) != 0 {
		t.Fatalf("violations at %v", v)
	}
	for i, p := range s.Points {
		if p.EMU <= p.Load+0.05 {
			t.Fatalf("no colocation benefit at load %v: EMU %v", loads[i], p.EMU)
		}
	}
	if !strings.Contains(s.String(), "websearch + brain") {
		t.Fatal("series rendering broken")
	}
}

func TestBaselineEMUEqualsLoad(t *testing.T) {
	lab := sharedLab(t)
	loads := []float64{0.25, 0.75}
	s := lab.Baseline("websearch", loads, RunOpts{Duration: 3 * time.Minute, Warmup: time.Minute})
	for i, p := range s.Points {
		if p.EMU < loads[i]-0.03 || p.EMU > loads[i]+0.03 {
			t.Fatalf("baseline EMU at %v = %v", loads[i], p.EMU)
		}
		if p.SLOViolation {
			t.Fatalf("baseline violates at %v", loads[i])
		}
	}
}

func TestGridInts(t *testing.T) {
	g := gridInts(2, 36, 6)
	if g[0] != 2 || g[len(g)-1] != 36 {
		t.Fatalf("grid endpoints: %v", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatalf("grid not increasing: %v", g)
		}
	}
}

func TestOutdatedDRAMModelTolerated(t *testing.T) {
	// §5.2: "the websearch binary and shard changed between generating the
	// offline profiling model ... and performing this experiment.
	// Nevertheless, Heracles is resilient to these changes and performs
	// well despite the somewhat outdated model." Perturb the model by
	// ±25% and assert the controller still avoids violations.
	lab := sharedLab(t)
	base := lab.DRAMModel("websearch")
	for _, scale := range []float64{0.75, 1.25} {
		stale := core.DRAMModelFunc(func(load float64, cores, ways int) float64 {
			return base.LCDemandGBs(load, cores, ways) * scale
		})
		opts := RunOpts{Duration: 8 * time.Minute, Warmup: 2 * time.Minute}
		cfg := core.DefaultConfig()
		opts.Controller = &cfg
		s := lab.ColocateWithModel("websearch", "streetview", []float64{0.4}, opts, stale)
		if v := s.Violations(); len(v) != 0 {
			t.Fatalf("stale model (x%.2f) caused violations at %v", scale, v)
		}
	}
}

func TestMultipleBETasksShareAllocation(t *testing.T) {
	// Heracles manages one LC workload with *many* BE tasks (§4).
	lab := sharedLab(t)
	m := machine.New(lab.Cfg)
	m.SetLC(lab.LC("websearch"))
	m.AddBE(lab.BE("brain"), workload.PlaceDedicated)
	m.AddBE(lab.BE("streetview"), workload.PlaceDedicated)
	m.SetLoad(0.3)
	ctl := core.New(m, lab.DRAMModel("websearch"), core.DefaultConfig())
	worst := 0.0
	for i := 0; i < 600; i++ {
		tel := m.Step()
		ctl.Step(m.Clock().Now())
		if i > 120 {
			if f := tel.TailLatency.Seconds() / lab.LC("websearch").SLO.Seconds(); f > worst {
				worst = f
			}
		}
	}
	tel := m.Last()
	if worst > 1.0 {
		t.Fatalf("worst tail with two BE tasks = %.0f%% of SLO", 100*worst)
	}
	if tel.EMU < 0.5 {
		t.Fatalf("EMU with two BE tasks = %v", tel.EMU)
	}
	// Both tasks hold disjoint cores.
	brainCores := map[int]bool{}
	for _, c := range m.BEs()[0].Cores {
		brainCores[c] = true
	}
	for _, c := range m.BEs()[1].Cores {
		if brainCores[c] {
			t.Fatalf("BE tasks share core %d", c)
		}
	}
}
