// Package lat computes the tail latency of a latency-critical workload
// from its contention-inflated service parameters. Two interchangeable
// engines are provided:
//
//   - Analytic: a closed-form M/G/k approximation (Erlang-C waiting
//     probability, exponential conditional-wait tail, Allen-Cunneen
//     variability correction). Fast and deterministic; the default for
//     large parameter sweeps.
//   - DES: a discrete-event simulation of a FCFS G/G/k queue with
//     Poisson arrivals and lognormal service times, measuring empirical
//     quantiles.
//
// Both produce the sharp tail-latency inflection near saturation that
// the paper's control decomposition (§4.2) relies on; the test suite
// cross-validates them against each other. The machine model invokes an
// Engine once per epoch with the service parameters the resource models
// produced, and the resulting EpochStats flow into telemetry, the
// controller's slack computation and every figure of the evaluation.
package lat
