package lat

import (
	"container/heap"
	"math"
	"time"

	"heracles/internal/queue"
	"heracles/internal/sim"
	"heracles/internal/stats"
)

// ServiceParams captures everything the latency engines need about one
// control epoch. All contention effects have already been folded in by the
// machine model.
type ServiceParams struct {
	Mean  time.Duration // inflated mean service time
	Sigma float64       // lognormal sigma of the service distribution

	// NetTime is the per-request egress serialisation time including
	// transmit-queueing inflation; it adds to latency but does not occupy
	// a core.
	NetTime time.Duration

	// TailAdd is an additive delay suffered by a fraction TailProb of
	// requests (power-ramp wakeups, CFS scheduling delays in OS-shared
	// mode). It shapes the tail without shifting the median much.
	TailAdd  time.Duration
	TailProb float64
}

// EpochStats summarises the latency behaviour of one epoch.
type EpochStats struct {
	Mean time.Duration
	P50  time.Duration
	P95  time.Duration
	P99  time.Duration

	OfferedQPS  float64
	ServedQPS   float64
	Utilisation float64 // core occupancy lambda*S/k, clamped to [0, 1]
}

// Quantile returns the epoch latency at quantile q by interpolating the
// summary points; it is exact at 0.5, 0.95 and 0.99.
func (e EpochStats) Quantile(q float64) time.Duration {
	switch {
	case q <= 0.5:
		return e.P50
	case q <= 0.95:
		f := (q - 0.5) / 0.45
		return e.P50 + time.Duration(f*float64(e.P95-e.P50))
	case q <= 0.99:
		f := (q - 0.95) / 0.04
		return e.P95 + time.Duration(f*float64(e.P99-e.P95))
	default:
		return e.P99
	}
}

// Engine evaluates one epoch of the LC workload's queue.
type Engine interface {
	// Epoch advances the queue by dt with arrival rate lambda (QPS) and
	// the given number of serving cores, returning latency statistics.
	Epoch(p ServiceParams, lambda float64, servers int, dt time.Duration) EpochStats
	// Reset clears queue state between experiment points.
	Reset()
}

// Analytic is the closed-form engine. The zero value is ready to use.
type Analytic struct{}

// OverloadCap bounds reported latency during overload so tables remain
// finite; it corresponds to the paper's ">300%" entries.
const OverloadCap = 100.0

// Epoch implements Engine.
func (Analytic) Epoch(p ServiceParams, lambda float64, servers int, dt time.Duration) EpochStats {
	s := p.Mean.Seconds()
	if servers < 1 {
		servers = 1
	}
	if s <= 0 {
		return EpochStats{OfferedQPS: lambda}
	}
	k := float64(servers)
	rho := lambda * s / k
	served := lambda
	if rho >= 1 {
		served = k / s * 0.999
	}

	effRho := math.Min(rho, 0.99)
	scale := queue.MGkWaitScale(1, queue.LogNormalCS2(p.Sigma))
	waitQ := func(q float64) float64 {
		return queue.WaitQuantile(servers, effRho, s, q) * scale
	}
	serviceQ := func(q float64) float64 {
		return queue.LogNormalQuantile(s, p.Sigma, q)
	}
	tailAdd := func(q float64) float64 {
		if p.TailAdd <= 0 || p.TailProb <= 0 {
			return 0
		}
		frac := p.TailProb / (1 - q)
		if frac > 1 {
			frac = 1
		}
		return p.TailAdd.Seconds() * frac
	}
	overload := 1.0
	if rho >= 1 {
		// The backlog grows without bound in sustained overload; report a
		// steeply growing but finite proxy, capped for table rendering.
		overload = 1 + 25*(rho-1) + 10
	}
	net := p.NetTime.Seconds()
	at := func(q float64) time.Duration {
		v := (serviceQ(q) + waitQ(q) + net + tailAdd(q)) * overload
		cap := s * OverloadCap * 20
		if v > cap {
			v = cap
		}
		return time.Duration(v * float64(time.Second))
	}

	meanWait := queue.MeanWait(servers, effRho, s) * scale
	mean := (s + meanWait + net) * overload
	if p.TailProb > 0 {
		mean += p.TailAdd.Seconds() * p.TailProb * overload
	}
	return EpochStats{
		Mean:        time.Duration(mean * float64(time.Second)),
		P50:         at(0.50),
		P95:         at(0.95),
		P99:         at(0.99),
		OfferedQPS:  lambda,
		ServedQPS:   served,
		Utilisation: math.Min(rho, 1),
	}
}

// Reset implements Engine; the analytic engine is stateless.
func (Analytic) Reset() {}

// DES is the discrete-event engine. It maintains queue state across epochs
// so backlogs persist through transient overload, exactly like a real
// server.
type DES struct {
	rng *sim.RNG
	// srv is a min-heap of the times at which each server becomes free.
	srv serverHeap
	// MaxEventsPerEpoch bounds simulation cost; epochs offering more
	// arrivals are thinned proportionally (documented in DESIGN.md).
	MaxEventsPerEpoch int

	now float64
}

// NewDES returns a DES engine seeded deterministically.
func NewDES(seed uint64) *DES {
	return &DES{rng: sim.NewRNG(seed), MaxEventsPerEpoch: 200000}
}

type serverHeap []float64

func (h serverHeap) Len() int           { return len(h) }
func (h serverHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h serverHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *serverHeap) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *serverHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// Epoch implements Engine.
func (d *DES) Epoch(p ServiceParams, lambda float64, servers int, dt time.Duration) EpochStats {
	if servers < 1 {
		servers = 1
	}
	// Resize the server pool, preserving busy-until times where possible.
	for len(d.srv) < servers {
		heap.Push(&d.srv, d.now)
	}
	for len(d.srv) > servers {
		heap.Pop(&d.srv)
	}

	end := d.now + dt.Seconds()
	s := p.Mean.Seconds()
	if lambda <= 0 || s <= 0 {
		d.now = end
		return EpochStats{OfferedQPS: lambda}
	}

	effLambda := lambda
	thin := 1.0
	if max := d.MaxEventsPerEpoch; max > 0 {
		expected := lambda * dt.Seconds()
		if expected > float64(max) {
			thin = float64(max) / expected
			effLambda = lambda * thin
		}
	}

	lats := make([]float64, 0, int(effLambda*dt.Seconds())+16)
	var busy float64
	t := d.now
	for {
		t += d.rng.Exp(1 / effLambda)
		if t >= end {
			break
		}
		free := d.srv[0]
		start := t
		if free > start {
			start = free
		}
		svc := d.rng.LogNormal(s, p.Sigma)
		done := start + svc
		d.srv[0] = done
		heap.Fix(&d.srv, 0)
		busy += svc
		l := done - t + p.NetTime.Seconds()
		if p.TailAdd > 0 && p.TailProb > 0 && d.rng.Float64() < p.TailProb {
			l += d.rng.Exp(p.TailAdd.Seconds())
		}
		lats = append(lats, l)
	}
	d.now = end

	es := EpochStats{
		OfferedQPS:  lambda,
		ServedQPS:   float64(len(lats)) / dt.Seconds() / thin,
		Utilisation: math.Min(busy/(float64(servers)*dt.Seconds())/thin, 1),
	}
	if len(lats) == 0 {
		return es
	}
	es.Mean = time.Duration(meanOf(lats) * float64(time.Second))
	es.P50 = time.Duration(stats.Quantile(lats, 0.50) * float64(time.Second))
	es.P95 = time.Duration(stats.Quantile(lats, 0.95) * float64(time.Second))
	es.P99 = time.Duration(stats.Quantile(lats, 0.99) * float64(time.Second))
	return es
}

func meanOf(v []float64) float64 {
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	return sum / float64(len(v))
}

// Reset implements Engine.
func (d *DES) Reset() {
	d.srv = d.srv[:0]
	d.now = 0
}
