package lat

import (
	"math"
	"testing"
	"time"
)

func params(mean time.Duration, sigma float64) ServiceParams {
	return ServiceParams{Mean: mean, Sigma: sigma}
}

func TestAnalyticLowLoadNearService(t *testing.T) {
	var e Analytic
	es := e.Epoch(params(10*time.Millisecond, 0.4), 10, 36, time.Second)
	// At trivial load, p50 should be near the service median and p99 near
	// the lognormal service p99 — no queueing.
	if es.P50 > 11*time.Millisecond || es.P50 < 8*time.Millisecond {
		t.Fatalf("p50 = %v", es.P50)
	}
	if es.P99 < es.P95 || es.P95 < es.P50 {
		t.Fatal("quantiles out of order")
	}
	if es.Utilisation > 0.01 {
		t.Fatalf("util = %v", es.Utilisation)
	}
}

func TestAnalyticMonotoneInLoad(t *testing.T) {
	var e Analytic
	prev := time.Duration(0)
	for _, lambda := range []float64{100, 1000, 2000, 3000, 3400, 3550} {
		es := e.Epoch(params(10*time.Millisecond, 0.4), lambda, 36, time.Second)
		if es.P99 < prev {
			t.Fatalf("p99 not monotone at lambda=%v: %v < %v", lambda, es.P99, prev)
		}
		prev = es.P99
	}
}

func TestAnalyticOverloadCapsServed(t *testing.T) {
	var e Analytic
	es := e.Epoch(params(10*time.Millisecond, 0.4), 10000, 36, time.Second)
	if es.ServedQPS > 3600 {
		t.Fatalf("served %v exceeds capacity", es.ServedQPS)
	}
	if es.P99 < 100*time.Millisecond {
		t.Fatalf("overloaded p99 = %v, want large", es.P99)
	}
	if es.Utilisation != 1 {
		t.Fatalf("overload util = %v", es.Utilisation)
	}
}

func TestAnalyticNetTimeAdds(t *testing.T) {
	var e Analytic
	base := e.Epoch(params(time.Millisecond, 0.3), 100, 8, time.Second)
	withNet := e.Epoch(ServiceParams{Mean: time.Millisecond, Sigma: 0.3, NetTime: time.Millisecond}, 100, 8, time.Second)
	diff := withNet.P99 - base.P99
	if diff < 900*time.Microsecond || diff > 1100*time.Microsecond {
		t.Fatalf("net time contribution = %v, want ~1ms", diff)
	}
}

func TestAnalyticTailAddHitsTailOnly(t *testing.T) {
	var e Analytic
	p := ServiceParams{Mean: time.Millisecond, Sigma: 0.3, TailAdd: 10 * time.Millisecond, TailProb: 0.02}
	es := e.Epoch(p, 100, 8, time.Second)
	base := e.Epoch(params(time.Millisecond, 0.3), 100, 8, time.Second)
	if es.P99-base.P99 < 9*time.Millisecond {
		t.Fatalf("p99 should absorb the full tail add: diff=%v", es.P99-base.P99)
	}
	if es.P50-base.P50 > 2*time.Millisecond {
		t.Fatalf("p50 should barely move: diff=%v", es.P50-base.P50)
	}
}

func TestAnalyticZeroService(t *testing.T) {
	var e Analytic
	es := e.Epoch(params(0, 0.3), 100, 8, time.Second)
	if es.P99 != 0 {
		t.Fatalf("zero service p99 = %v", es.P99)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	es := EpochStats{P50: 10 * time.Millisecond, P95: 20 * time.Millisecond, P99: 40 * time.Millisecond}
	if es.Quantile(0.5) != es.P50 || es.Quantile(0.99) != es.P99 {
		t.Fatal("exact quantiles wrong")
	}
	mid := es.Quantile(0.95)
	if mid < es.P95-time.Microsecond || mid > es.P95+time.Microsecond {
		t.Fatalf("q95 = %v", mid)
	}
	q97 := es.Quantile(0.97)
	if q97 <= es.P95 || q97 >= es.P99 {
		t.Fatalf("q97 = %v outside (p95, p99)", q97)
	}
	if es.Quantile(0.999) != es.P99 {
		t.Fatal("beyond p99 should clamp")
	}
}

func TestDESMatchesAnalyticShape(t *testing.T) {
	// Cross-validate the two engines across utilisations: they must agree
	// on the shape (monotone growth, same inflection region) and roughly
	// on magnitude.
	var a Analytic
	d := NewDES(42)
	s := 5 * time.Millisecond
	k := 16
	for _, rho := range []float64{0.3, 0.6, 0.8, 0.9} {
		lambda := rho * float64(k) / s.Seconds()
		var des EpochStats
		d.Reset()
		for i := 0; i < 30; i++ { // accumulate enough samples
			des = d.Epoch(params(s, 0.4), lambda, k, time.Second)
		}
		ana := a.Epoch(params(s, 0.4), lambda, k, time.Second)
		ratio := des.P99.Seconds() / ana.P99.Seconds()
		if ratio < 0.5 || ratio > 2.0 {
			t.Fatalf("rho=%v: DES p99 %v vs analytic %v (ratio %.2f)", rho, des.P99, ana.P99, ratio)
		}
	}
}

func TestDESDeterministicPerSeed(t *testing.T) {
	run := func() time.Duration {
		d := NewDES(7)
		var es EpochStats
		for i := 0; i < 5; i++ {
			es = d.Epoch(params(2*time.Millisecond, 0.4), 2000, 8, time.Second)
		}
		return es.P99
	}
	if run() != run() {
		t.Fatal("DES not deterministic for fixed seed")
	}
}

func TestDESBacklogPersistsAcrossEpochs(t *testing.T) {
	d := NewDES(3)
	// Overload for a few epochs, then drop to light load: the backlog
	// should keep latencies elevated in the first light epoch.
	for i := 0; i < 5; i++ {
		d.Epoch(params(10*time.Millisecond, 0.3), 2000, 8, time.Second)
	}
	after := d.Epoch(params(10*time.Millisecond, 0.3), 10, 8, time.Second)
	if after.P50 < 50*time.Millisecond {
		t.Fatalf("backlog ignored: p50=%v after overload", after.P50)
	}
}

func TestDESThinningBoundsEvents(t *testing.T) {
	d := NewDES(9)
	d.MaxEventsPerEpoch = 1000
	es := d.Epoch(params(10*time.Microsecond, 0.4), 1e6, 36, time.Second)
	// Served should still be reported at full scale.
	if es.ServedQPS < 5e5 {
		t.Fatalf("thinned served = %v", es.ServedQPS)
	}
}

func TestDESZeroLambda(t *testing.T) {
	d := NewDES(1)
	es := d.Epoch(params(time.Millisecond, 0.3), 0, 4, time.Second)
	if es.P99 != 0 || es.ServedQPS != 0 {
		t.Fatalf("idle epoch stats = %+v", es)
	}
}

func TestAnalyticUtilisationMatchesRho(t *testing.T) {
	var e Analytic
	s := 10 * time.Millisecond
	es := e.Epoch(params(s, 0.4), 1800, 36, time.Second)
	want := 1800 * s.Seconds() / 36
	if math.Abs(es.Utilisation-want) > 1e-9 {
		t.Fatalf("util = %v, want %v", es.Utilisation, want)
	}
}
