package debughttp

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestStartServesPprofAndRuntimeMetrics(t *testing.T) {
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + s.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index missing profile list:\n%.300s", body)
	}
	body := get("/metrics")
	for _, want := range []string{"go_goroutines ", "go_gc_heap_allocs_bytes "} {
		if !strings.Contains(body, want) {
			t.Errorf("runtime metrics missing %q", want)
		}
	}
	// Sorted, Prometheus-legal names only.
	var prev string
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line < prev {
			t.Fatalf("metrics out of order: %q after %q", line, prev)
		}
		prev = line
		name := strings.Fields(line)[0]
		for _, r := range name {
			if !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_') {
				t.Fatalf("illegal metric name %q", name)
			}
		}
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"/gc/heap/allocs:bytes":          "go_gc_heap_allocs_bytes",
		"/sched/gomaxprocs:threads":      "go_sched_gomaxprocs_threads",
		"/cpu/classes/total:cpu-seconds": "go_cpu_classes_total_cpu_seconds",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
