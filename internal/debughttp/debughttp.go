// Package debughttp is the daemons' opt-in profiling listener: pprof
// endpoints and Go runtime metrics on a separate address (-pprof-addr),
// off by default. Keeping it off the API listener means operators can
// firewall profiling away from the control-plane surface, and an
// accidental heavy profile never competes with API traffic for the same
// listener queue.
package debughttp

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	rtmetrics "runtime/metrics"
	"sort"
	"strings"
	"time"
)

// Handler serves the debug surface: the standard pprof index and
// profiles under /debug/pprof/, and Go runtime metrics in Prometheus
// text format at /metrics.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteRuntimeMetrics(w)
	})
	return mux
}

// WriteRuntimeMetrics renders the Go runtime's scalar metrics as
// Prometheus gauges: every runtime/metrics counter and gauge (histogram
// kinds are skipped — the sampled profiles under /debug/pprof/ cover
// those distributions), plus the live goroutine count.
func WriteRuntimeMetrics(w io.Writer) {
	descs := rtmetrics.All()
	samples := make([]rtmetrics.Sample, 0, len(descs))
	for _, d := range descs {
		if d.Kind == rtmetrics.KindUint64 || d.Kind == rtmetrics.KindFloat64 {
			samples = append(samples, rtmetrics.Sample{Name: d.Name})
		}
	}
	rtmetrics.Read(samples)
	lines := make([]string, 0, len(samples)+1)
	for _, s := range samples {
		var v string
		switch s.Value.Kind() {
		case rtmetrics.KindUint64:
			v = fmt.Sprintf("%d", s.Value.Uint64())
		case rtmetrics.KindFloat64:
			v = fmt.Sprintf("%g", s.Value.Float64())
		default:
			continue
		}
		lines = append(lines, fmt.Sprintf("%s %s\n", promName(s.Name), v))
	}
	lines = append(lines, fmt.Sprintf("go_goroutines %d\n", runtime.NumGoroutine()))
	sort.Strings(lines)
	for _, l := range lines {
		io.WriteString(w, l)
	}
}

// promName flattens a runtime/metrics name ("/gc/heap/allocs:bytes")
// into a Prometheus-legal one ("go_gc_heap_allocs_bytes").
func promName(name string) string {
	var b strings.Builder
	b.WriteString("go")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r - 'A' + 'a')
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Server is a running debug listener.
type Server struct {
	// Addr is the bound address, useful when the requested port was 0.
	Addr string

	srv *http.Server
}

// Close shuts the listener down immediately (profiles in flight are
// severed; the debug surface has no clients worth draining for).
func (s *Server) Close() error { return s.srv.Close() }

// Start binds addr and serves the debug surface on it until Close.
func Start(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debughttp: %w", err)
	}
	srv := &http.Server{
		Handler:           Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go srv.Serve(ln)
	return &Server{Addr: ln.Addr().String(), srv: srv}, nil
}
