package fleet

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"heracles/internal/hw"
	"heracles/internal/scenario"
	"heracles/internal/sched"
)

// policyFleet is the policy-comparison fixture: one four-leaf cluster in
// which two leaves run tightened controller targets (structurally thin
// slack, so their controllers are stingy with BE resources) while the
// cluster's real root latency stays comfortably inside its SLO, plus a
// job stream that oversubscribes BE capacity. Placement quality is the
// only free variable: a slack-blind policy keeps feeding the starved
// leaves while slack-greedy routes work to machines that will actually
// run it.
func policyFleet(seed uint64) Config {
	horizon := 20 * time.Minute
	sc := scenario.Scenario{
		Name:     "tight-leaves",
		Duration: horizon,
		Load:     scenario.Flat(0.55),
		Events: []scenario.Event{
			scenario.SLOScale(0, 1, 0.62),
			scenario.SLOScale(0, 2, 0.70),
		},
	}
	jobs := sched.SyntheticJobs(28, horizon, seed+1, []string{"brain", "streetview"})
	for i := range jobs {
		jobs[i].Demand *= 2
		jobs[i].Work *= 2
	}
	return Config{
		Seed: seed,
		Clusters: []ClusterSpec{{
			Name: "std", HW: hw.DefaultConfig(), Leaves: 4,
			RootSamples: 40, Warmup: 2 * time.Minute,
			Scenario: sc, Jobs: jobs,
		}},
	}
}

// TestSlackGreedyBeatsRandomGoodput is the acceptance criterion:
// slack-greedy placement must bank at least 10% more BE goodput than the
// random baseline on the same seed, at equal or better LC SLO compliance
// (violation count no worse; worst root window within a 3% band), and
// the comparison must reproduce bit-for-bit.
func TestSlackGreedyBeatsRandomGoodput(t *testing.T) {
	cfg := policyFleet(42)
	res := RunPolicies(cfg, []string{"slack-greedy", "random"})
	if len(res.Outcomes) != 2 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
	sg, rd := res.Outcomes[0], res.Outcomes[1]
	if sg.Heracles.Sched == nil || rd.Heracles.Sched == nil {
		t.Fatal("missing scheduler accounting")
	}

	// Goodput: higher under slack-aware placement.
	if sg.Heracles.Sched.GoodCPUSec < 1.10*rd.Heracles.Sched.GoodCPUSec {
		t.Fatalf("slack-greedy goodput %.0f cpu-s not >10%% above random %.0f",
			sg.Heracles.Sched.GoodCPUSec, rd.Heracles.Sched.GoodCPUSec)
	}
	// LC SLO compliance: equal or better.
	if sg.Heracles.Violations > rd.Heracles.Violations {
		t.Fatalf("slack-greedy violations %d > random %d",
			sg.Heracles.Violations, rd.Heracles.Violations)
	}
	if sg.Heracles.MaxRootFrac > rd.Heracles.MaxRootFrac+0.03 {
		t.Fatalf("slack-greedy worst root window %.3f above random %.3f + band",
			sg.Heracles.MaxRootFrac, rd.Heracles.MaxRootFrac)
	}
	// Both arms share the paired baseline and stay SLO-compliant.
	if res.Baseline.Violations != 0 || sg.Heracles.Violations != 0 {
		t.Fatalf("fixture regressed into violation: baseline %d, slack-greedy %d",
			res.Baseline.Violations, sg.Heracles.Violations)
	}

	// Reproducibility: the whole comparison is deterministic.
	again := RunPolicies(policyFleet(42), []string{"slack-greedy", "random"})
	if !reflect.DeepEqual(res, again) {
		t.Fatal("policy comparison not reproducible on the same seed")
	}
}

// TestRunPoliciesDeterministicAcrossWorkers extends the fleet's
// worker-count invariance to the policy fan-out.
func TestRunPoliciesDeterministicAcrossWorkers(t *testing.T) {
	cfg := policyFleet(7)
	cfg.Workers = 1
	seq := RunPolicies(cfg, []string{"slack-greedy", "random"})
	cfg = policyFleet(7)
	cfg.Workers = 4
	par := RunPolicies(cfg, []string{"slack-greedy", "random"})
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("policy comparison diverged across worker counts")
	}
}

// TestRunWithJobsCarriesAccounting: the plain fleet entry point honours
// ClusterSpec.Jobs/SchedPolicy and surfaces the aggregate in the
// rendered table.
func TestRunWithJobsCarriesAccounting(t *testing.T) {
	cfg := policyFleet(11)
	cfg.Clusters[0].SchedPolicy = "spread"
	res := Run(cfg)
	if res.Heracles.Sched == nil {
		t.Fatal("Run dropped the scheduler aggregate")
	}
	if res.Baseline.Sched != nil {
		t.Fatal("baseline run grew a scheduler")
	}
	if res.Heracles.Sched.GoodCPUSec <= 0 {
		t.Fatalf("no goodput: %+v", res.Heracles.Sched)
	}
	out := res.String()
	if want := "BE scheduler:"; !strings.Contains(out, want) {
		t.Fatalf("rendered result missing %q:\n%s", want, out)
	}
}

func TestRunPoliciesRejectsUnknownPolicy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown policy did not panic")
		}
	}()
	RunPolicies(policyFleet(1), []string{"nope"})
}
