package fleet

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"heracles/internal/hw"
	"heracles/internal/scenario"
	"heracles/internal/tco"
)

// testFleet mirrors the cmd/fleet shape at test scale: two hardware
// generations, a flash-crowd spike on one and BE churn on the other.
func testFleet() Config {
	std := scenario.Scenario{
		Name:     "diurnal-spike",
		Duration: 6 * time.Minute,
		Load: scenario.Clamp(scenario.Sum(
			scenario.Ramp{From: 0.25, To: 0.5, Start: 0, End: 6 * time.Minute},
			scenario.FlashCrowd{Start: 3 * time.Minute, Rise: 20 * time.Second,
				Hold: 40 * time.Second, Fall: 20 * time.Second, Amp: 0.3},
		), 0, 1),
	}
	compact := scenario.Scenario{
		Name:     "churn",
		Duration: 6 * time.Minute,
		Load:     scenario.Steps{{At: 0, Load: 0.3}, {At: 3 * time.Minute, Load: 0.45}},
		Events: []scenario.Event{
			scenario.BEDepart(2*time.Minute, scenario.AllLeaves, "streetview"),
			scenario.BEArrive(4*time.Minute, scenario.AllLeaves, "streetview"),
		},
	}
	return Config{
		Seed: 11,
		Clusters: []ClusterSpec{
			{
				Name: "std", HW: hw.DefaultConfig(), Leaves: 3,
				RootSamples: 40, Warmup: 90 * time.Second, Scenario: std,
			},
			{
				// The compact generation runs structurally closer to its
				// root SLO (fewer cores flatten the latency/load curve), so
				// it starts from a conservative leaf target and lets the
				// §5.3 centralized controller harvest slack dynamically.
				Name: "compact", HW: hw.CompactConfig(), Leaves: 2,
				LeafTargetFrac: 0.65, DynamicLeafTargets: true,
				RootSamples: 40, Warmup: 90 * time.Second, Scenario: compact,
			},
		},
	}
}

func TestFleetDeterministicAcrossWorkerCounts(t *testing.T) {
	// The acceptance invariant: a mixed-hardware fleet with a flash-crowd
	// spike and BE churn is bit-identical for any worker count.
	cfg := testFleet()
	cfg.Workers = 1
	seq := Run(cfg)
	cfg.Workers = 4
	par := Run(cfg)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("fleet run diverged across worker counts:\nseq: %+v\npar: %+v", seq, par)
	}
}

func TestFleetHeraclesLiftsUtilisation(t *testing.T) {
	res := Run(testFleet())
	if len(res.Clusters) != 2 {
		t.Fatalf("cluster outcomes = %d", len(res.Clusters))
	}
	if res.Heracles.MeanEMU <= res.Baseline.MeanEMU+0.1 {
		t.Fatalf("fleet EMU lift too small: %.3f -> %.3f",
			res.Baseline.MeanEMU, res.Heracles.MeanEMU)
	}
	if res.Heracles.Violations != 0 {
		t.Fatalf("heracles fleet violations = %d", res.Heracles.Violations)
	}
	if res.Gain <= 0 {
		t.Fatalf("throughput/TCO gain = %v", res.Gain)
	}
	if res.HeraclesTCO <= res.BaselineTCO {
		t.Fatalf("TCO should rise with utilisation (more energy): %v vs %v",
			res.HeraclesTCO, res.BaselineTCO)
	}
	// Zero-value TCO params selected the Barroso defaults.
	if res.TCO != tco.Barroso() {
		t.Fatalf("TCO params = %+v", res.TCO)
	}
	out := res.String()
	for _, want := range []string{"std", "compact", "fleet", "throughput/TCO"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered result missing %q:\n%s", want, out)
		}
	}
}

func TestFleetSeedMatters(t *testing.T) {
	cfg := testFleet()
	a := Run(cfg)
	cfg.Seed++
	b := Run(cfg)
	if reflect.DeepEqual(a.Clusters, b.Clusters) {
		t.Fatal("fleet results ignore the seed")
	}
}

func TestFleetReplicasAndDefaults(t *testing.T) {
	cfg := testFleet()
	cfg.Clusters = cfg.Clusters[:1]
	cfg.Clusters[0].Count = 2
	res := Run(cfg)
	if len(res.Clusters) != 2 {
		t.Fatalf("replica expansion produced %d outcomes", len(res.Clusters))
	}
	if res.Clusters[0].Name != "std/0" || res.Clusters[1].Name != "std/1" {
		t.Fatalf("replica names = %q, %q", res.Clusters[0].Name, res.Clusters[1].Name)
	}
	// Replicas draw distinct seeds: their sampled root latencies differ.
	if reflect.DeepEqual(res.Clusters[0].Baseline, res.Clusters[1].Baseline) {
		t.Fatal("replicas share an RNG stream")
	}
}

func TestFleetRejectsBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty fleet did not panic")
		}
	}()
	Run(Config{})
}
