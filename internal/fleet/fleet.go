package fleet

import (
	"fmt"
	"strings"
	"time"

	"heracles/internal/cluster"
	"heracles/internal/experiment"
	"heracles/internal/hw"
	"heracles/internal/parallel"
	"heracles/internal/scenario"
	"heracles/internal/sim"
	"heracles/internal/tco"
	"heracles/internal/workload"
)

// ClusterSpec describes one homogeneous slice of the fleet: Count
// identical clusters of the given hardware running the given LC workload
// through the given scenario.
type ClusterSpec struct {
	Name  string
	Count int // replicas of this spec (default 1)

	HW     hw.Config
	LC     string // LC workload name (default "websearch")
	Leaves int    // leaf servers per cluster (default 8)

	Scenario scenario.Scenario

	// Per-cluster knobs, forwarded to cluster.Config.
	LeafTargetFrac     float64
	RootSamples        int
	Warmup             time.Duration
	DynamicLeafTargets bool
}

// Config describes a fleet experiment.
type Config struct {
	Clusters []ClusterSpec
	Seed     uint64
	// Workers bounds how many cluster runs execute concurrently: 0
	// selects parallel.DefaultWorkers, 1 forces the sequential reference
	// run. Cluster instances are independent and leaf stepping inside
	// each run is sequential, so every worker count is bit-identical.
	Workers int
	// TCO carries the cost-model inputs; the zero value selects the
	// paper's Barroso parameters.
	TCO tco.Params
}

// Outcome is one cluster instance's paired baseline/Heracles result.
type Outcome struct {
	Name     string // spec name, or spec name + replica index when Count > 1
	Spec     int    // index into Config.Clusters
	Replica  int
	Baseline cluster.Summary
	Heracles cluster.Summary
}

// Aggregate reduces the fleet to the quantities §5.2-§5.3 report,
// averaged across cluster instances (violations are summed).
type Aggregate struct {
	MeanEMU      float64
	MinEMU       float64 // minimum across instances of the per-run minimum
	MeanRootFrac float64
	MaxRootFrac  float64 // worst 30-epoch window anywhere in the fleet
	Violations   int
}

// Result is a full fleet run.
type Result struct {
	Clusters []Outcome
	Baseline Aggregate
	Heracles Aggregate

	// TCO analysis: the fleet-wide EMU lift priced with the cost model.
	TCO         tco.Params
	BaselineTCO float64 // lifetime cluster TCO at the baseline utilisation
	HeraclesTCO float64 // lifetime cluster TCO at the Heracles utilisation
	// Gain is the relative throughput/TCO improvement from raising the
	// fleet's utilisation from baseline to Heracles levels.
	Gain float64
}

// instance is one expanded (spec, replica) pair.
type instance struct {
	spec    int
	replica int
}

// Run executes every cluster instance of the fleet, baseline and
// Heracles, and aggregates the results. Workload calibration and the
// offline DRAM model are shared across instances with identical hardware
// (one Lab per distinct hw.Config, memoised behind sync.Once), so mixed
// fleets calibrate each generation exactly once.
func Run(cfg Config) Result {
	if len(cfg.Clusters) == 0 {
		panic("fleet: no cluster specs")
	}
	if cfg.TCO.Servers == 0 {
		cfg.TCO = tco.Barroso()
	}

	// One lab per distinct hardware config: hw.Config is comparable, so
	// replicas and same-generation specs share a calibration.
	labs := make(map[hw.Config]*experiment.Lab)
	for _, spec := range cfg.Clusters {
		if _, ok := labs[spec.HW]; !ok {
			labs[spec.HW] = experiment.NewLab(spec.HW)
		}
	}

	var instances []instance
	for si, spec := range cfg.Clusters {
		n := spec.Count
		if n <= 0 {
			n = 1
		}
		if err := spec.Scenario.Validate(); err != nil {
			panic(fmt.Sprintf("fleet: spec %q: %v", spec.Name, err))
		}
		for r := 0; r < n; r++ {
			instances = append(instances, instance{spec: si, replica: r})
		}
	}

	// Every instance runs twice (baseline, Heracles); all 2N runs are
	// independent, so they share one flat fan-out. Unit 2i is instance
	// i's baseline, unit 2i+1 its Heracles run.
	summaries := parallel.Map(cfg.Workers, 2*len(instances), func(u int) cluster.Summary {
		inst := instances[u/2]
		spec := cfg.Clusters[inst.spec]
		lab := labs[spec.HW]
		lcName := spec.LC
		if lcName == "" {
			lcName = "websearch"
		}
		leaves := spec.Leaves
		if leaves <= 0 {
			leaves = 8
		}
		ccfg := cluster.Config{
			Leaves:             leaves,
			Heracles:           u%2 == 1,
			HW:                 spec.HW,
			LC:                 lab.LC(lcName),
			Brain:              lab.BE("brain"),
			SView:              lab.BE("streetview"),
			Catalog:            catalogFor(lab, spec.Scenario),
			RootSamples:        spec.RootSamples,
			LeafTargetFrac:     spec.LeafTargetFrac,
			Warmup:             spec.Warmup,
			DynamicLeafTargets: spec.DynamicLeafTargets,
			Model:              lab.DRAMModel(lcName),
			// Both runs of an instance share one derived seed, so the
			// baseline/Heracles comparison is paired; leaf stepping inside
			// the run stays sequential — fleet-level fan-out is the
			// parallelism.
			Seed:    sim.DeriveRNG(cfg.Seed, uint64(u/2)).Uint64(),
			Workers: 1,
		}
		return cluster.RunScenario(ccfg, spec.Scenario).Summarize()
	})

	res := Result{TCO: cfg.TCO}
	for i, inst := range instances {
		spec := cfg.Clusters[inst.spec]
		name := spec.Name
		if n := spec.Count; n > 1 {
			name = fmt.Sprintf("%s/%d", spec.Name, inst.replica)
		}
		res.Clusters = append(res.Clusters, Outcome{
			Name:     name,
			Spec:     inst.spec,
			Replica:  inst.replica,
			Baseline: summaries[2*i],
			Heracles: summaries[2*i+1],
		})
	}
	res.Baseline = aggregate(res.Clusters, false)
	res.Heracles = aggregate(res.Clusters, true)

	res.BaselineTCO = cfg.TCO.ClusterTCO(res.Baseline.MeanEMU)
	res.HeraclesTCO = cfg.TCO.ClusterTCO(res.Heracles.MeanEMU)
	res.Gain = cfg.TCO.ThroughputPerTCOGain(res.Baseline.MeanEMU, res.Heracles.MeanEMU)
	return res
}

// catalogFor calibrates every BE workload the scenario's arrival events
// reference, so mid-run churn can launch tasks beyond brain/streetview.
// Departure events match installed tasks by name and never consult the
// catalog, so they need no calibration here.
func catalogFor(lab *experiment.Lab, sc scenario.Scenario) map[string]*workload.BE {
	var cat map[string]*workload.BE
	for _, ev := range sc.Events {
		if ev.Kind != scenario.EventBEArrive {
			continue
		}
		if ev.Workload == "brain" || ev.Workload == "streetview" {
			continue
		}
		if cat == nil {
			cat = make(map[string]*workload.BE)
		}
		if _, ok := cat[ev.Workload]; !ok {
			cat[ev.Workload] = lab.BE(ev.Workload)
		}
	}
	return cat
}

// aggregate reduces outcomes in instance order (float accumulation is
// identical for any worker count).
func aggregate(outs []Outcome, heracles bool) Aggregate {
	a := Aggregate{MinEMU: 1e9}
	for _, o := range outs {
		s := o.Baseline
		if heracles {
			s = o.Heracles
		}
		a.MeanEMU += s.MeanEMU
		if s.MinEMU < a.MinEMU {
			a.MinEMU = s.MinEMU
		}
		a.MeanRootFrac += s.MeanRootFrac
		if s.MaxRootFrac > a.MaxRootFrac {
			a.MaxRootFrac = s.MaxRootFrac
		}
		a.Violations += s.Violations
	}
	n := float64(len(outs))
	if n > 0 {
		a.MeanEMU /= n
		a.MeanRootFrac /= n
	}
	return a
}

// String renders the fleet result as the table cmd/fleet prints.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %9s %9s %10s %10s %6s\n",
		"cluster", "baseEMU", "heraEMU", "baseWorst", "heraWorst", "viol")
	for _, o := range r.Clusters {
		fmt.Fprintf(&b, "%-18s %8.1f%% %8.1f%% %9.1f%% %9.1f%% %3d/%d\n",
			o.Name, 100*o.Baseline.MeanEMU, 100*o.Heracles.MeanEMU,
			100*o.Baseline.MaxRootFrac, 100*o.Heracles.MaxRootFrac,
			o.Baseline.Violations, o.Heracles.Violations)
	}
	fmt.Fprintf(&b, "%-18s %8.1f%% %8.1f%% %9.1f%% %9.1f%% %3d/%d\n",
		"fleet", 100*r.Baseline.MeanEMU, 100*r.Heracles.MeanEMU,
		100*r.Baseline.MaxRootFrac, 100*r.Heracles.MaxRootFrac,
		r.Baseline.Violations, r.Heracles.Violations)
	fmt.Fprintf(&b, "\nTCO (%d servers, $%.0f each): baseline $%.1fM -> heracles $%.1fM at %+.0f%% throughput/TCO\n",
		r.TCO.Servers, r.TCO.ServerCost,
		r.BaselineTCO/1e6, r.HeraclesTCO/1e6, 100*r.Gain)
	return b.String()
}
