package fleet

import (
	"fmt"
	"strings"
	"time"

	"heracles/internal/cluster"
	"heracles/internal/experiment"
	"heracles/internal/fault"
	"heracles/internal/hw"
	"heracles/internal/parallel"
	"heracles/internal/scenario"
	"heracles/internal/sched"
	"heracles/internal/sim"
	"heracles/internal/tco"
	"heracles/internal/workload"
)

// ClusterSpec describes one homogeneous slice of the fleet: Count
// identical clusters of the given hardware running the given LC workload
// through the given scenario.
type ClusterSpec struct {
	Name  string
	Count int // replicas of this spec (default 1)

	HW     hw.Config
	LC     string // LC workload name (default "websearch")
	Leaves int    // leaf servers per cluster (default 8)

	Scenario scenario.Scenario

	// Per-cluster knobs, forwarded to cluster.Config.
	LeafTargetFrac     float64
	RootSamples        int
	Warmup             time.Duration
	DynamicLeafTargets bool

	// Jobs, when non-empty, attaches the best-effort job scheduler to
	// every Heracles run of this spec: the job stream replaces the static
	// brain/streetview split as the BE source, and the run's summary
	// carries goodput/queueing accounting. SchedPolicy names the
	// placement policy (default "slack-greedy"); RunPolicies overrides it
	// per comparison arm.
	Jobs        []sched.JobSpec
	SchedPolicy string

	// Faults is a deterministic fault schedule applied to every replica
	// of this spec. Both arms of each instance (baseline and Heracles,
	// and every policy arm) run the identical schedule, so resilience
	// differences are paired the same way load is.
	Faults []fault.Fault
}

// Config describes a fleet experiment.
type Config struct {
	Clusters []ClusterSpec
	Seed     uint64
	// Workers bounds how many cluster runs execute concurrently: 0
	// selects parallel.DefaultWorkers, 1 forces the sequential reference
	// run. Cluster instances are independent and leaf stepping inside
	// each run is sequential, so every worker count is bit-identical.
	Workers int
	// TCO carries the cost-model inputs; the zero value selects the
	// paper's Barroso parameters.
	TCO tco.Params
}

// Outcome is one cluster instance's paired baseline/Heracles result.
type Outcome struct {
	Name     string // spec name, or spec name + replica index when Count > 1
	Spec     int    // index into Config.Clusters
	Replica  int
	Baseline cluster.Summary
	Heracles cluster.Summary
}

// Aggregate reduces the fleet to the quantities §5.2-§5.3 report,
// averaged across cluster instances (violations are summed).
type Aggregate struct {
	MeanEMU      float64
	MinEMU       float64 // minimum across instances of the per-run minimum
	MeanRootFrac float64
	MaxRootFrac  float64 // worst 30-epoch window anywhere in the fleet
	Violations   int

	// Sched sums the job scheduler's accounting across instances (nil
	// when no instance ran one).
	Sched *SchedAggregate
}

// SchedAggregate is the fleet-level reduction of the per-cluster
// scheduler accounting: total goodput vs wasted BE CPU time, eviction
// and completion counts, and the fleet-mean queueing delay.
type SchedAggregate struct {
	Submitted  int
	Dispatches int
	Completed  int
	Evictions  int
	Failed     int

	GoodCPUSec   float64
	WastedCPUSec float64

	// MeanQueueDelay is the dispatch-weighted mean wait across the fleet.
	MeanQueueDelay time.Duration
	// MaxQueueDepth is the worst queue depth any instance observed.
	MaxQueueDepth int
}

// GoodputFrac is completed CPU time over all consumed CPU time.
func (s SchedAggregate) GoodputFrac() float64 {
	total := s.GoodCPUSec + s.WastedCPUSec
	if total <= 0 {
		return 0
	}
	return s.GoodCPUSec / total
}

// Result is a full fleet run.
type Result struct {
	Clusters []Outcome
	Baseline Aggregate
	Heracles Aggregate

	// TCO analysis: the fleet-wide EMU lift priced with the cost model.
	TCO         tco.Params
	BaselineTCO float64 // lifetime cluster TCO at the baseline utilisation
	HeraclesTCO float64 // lifetime cluster TCO at the Heracles utilisation
	// Gain is the relative throughput/TCO improvement from raising the
	// fleet's utilisation from baseline to Heracles levels.
	Gain float64
}

// instance is one expanded (spec, replica) pair.
type instance struct {
	spec    int
	replica int
}

// expand validates the specs (scenarios, scheduler policy names) and
// returns the shared per-generation labs plus the (spec, replica)
// instances.
func expand(cfg Config) (map[hw.Config]*experiment.Lab, []instance) {
	if len(cfg.Clusters) == 0 {
		panic("fleet: no cluster specs")
	}
	// One lab per distinct hardware config: hw.Config is comparable, so
	// replicas and same-generation specs share a calibration.
	labs := make(map[hw.Config]*experiment.Lab)
	for _, spec := range cfg.Clusters {
		if _, ok := labs[spec.HW]; !ok {
			labs[spec.HW] = experiment.NewLab(spec.HW)
		}
	}
	var instances []instance
	for si, spec := range cfg.Clusters {
		n := spec.Count
		if n <= 0 {
			n = 1
		}
		if err := spec.Scenario.Validate(); err != nil {
			panic(fmt.Sprintf("fleet: spec %q: %v", spec.Name, err))
		}
		leaves := spec.Leaves
		if leaves <= 0 {
			leaves = 8
		}
		for _, f := range spec.Faults {
			if err := f.Validate(leaves); err != nil {
				panic(fmt.Sprintf("fleet: spec %q: %v", spec.Name, err))
			}
		}
		if len(spec.Jobs) > 0 && spec.SchedPolicy != "" {
			if _, err := sched.PolicyByName(spec.SchedPolicy); err != nil {
				panic(fmt.Sprintf("fleet: spec %q: %v", spec.Name, err))
			}
		}
		for r := 0; r < n; r++ {
			instances = append(instances, instance{spec: si, replica: r})
		}
	}
	return labs, instances
}

// runInstance executes one cluster run of an instance. pairSeed is the
// instance's derived seed, shared by every arm (baseline, each policy) so
// comparisons are paired; policy overrides the spec's scheduler policy
// and applies only to Heracles runs of specs that carry Jobs.
func runInstance(cfg Config, inst instance, lab *experiment.Lab, pairSeed uint64, heracles bool, policy string) cluster.Summary {
	spec := cfg.Clusters[inst.spec]
	lcName := spec.LC
	if lcName == "" {
		lcName = "websearch"
	}
	leaves := spec.Leaves
	if leaves <= 0 {
		leaves = 8
	}
	ccfg := cluster.Config{
		Leaves:             leaves,
		Heracles:           heracles,
		HW:                 spec.HW,
		LC:                 lab.LC(lcName),
		Brain:              lab.BE("brain"),
		SView:              lab.BE("streetview"),
		Catalog:            catalogFor(lab, spec.Scenario),
		RootSamples:        spec.RootSamples,
		LeafTargetFrac:     spec.LeafTargetFrac,
		Warmup:             spec.Warmup,
		DynamicLeafTargets: spec.DynamicLeafTargets,
		Model:              lab.DRAMModel(lcName),
		// Every arm of an instance shares one derived seed, so the
		// baseline/Heracles and policy-vs-policy comparisons are paired;
		// leaf stepping inside the run stays sequential — fleet-level
		// fan-out is the parallelism.
		Seed:    pairSeed,
		Workers: 1,
		Faults:  spec.Faults,
	}
	if heracles && len(spec.Jobs) > 0 {
		if policy == "" {
			policy = spec.SchedPolicy
		}
		if policy == "" {
			policy = "slack-greedy"
		}
		pol, err := sched.PolicyByName(policy)
		if err != nil {
			panic(fmt.Sprintf("fleet: spec %q: %v", spec.Name, err))
		}
		// Calibrate the job workloads into the catalog so dispatches can
		// resolve them (jobs may reference workloads no event names).
		cat := ccfg.Catalog
		for _, js := range spec.Jobs {
			if js.Workload == "brain" || js.Workload == "streetview" {
				continue
			}
			if cat == nil {
				cat = make(map[string]*workload.BE)
			}
			if _, ok := cat[js.Workload]; !ok {
				cat[js.Workload] = lab.BE(js.Workload)
			}
		}
		ccfg.Catalog = cat
		ccfg.Sched = &sched.Config{Policy: pol, Jobs: spec.Jobs}
	}
	return cluster.RunScenario(ccfg, spec.Scenario).Summarize()
}

// Run executes every cluster instance of the fleet, baseline and
// Heracles, and aggregates the results. Workload calibration and the
// offline DRAM model are shared across instances with identical hardware
// (one Lab per distinct hw.Config, memoised behind sync.Once), so mixed
// fleets calibrate each generation exactly once.
func Run(cfg Config) Result {
	if cfg.TCO.Servers == 0 {
		cfg.TCO = tco.Barroso()
	}
	labs, instances := expand(cfg)

	// Every instance runs twice (baseline, Heracles); all 2N runs are
	// independent, so they share one flat fan-out. Unit 2i is instance
	// i's baseline, unit 2i+1 its Heracles run.
	summaries := parallel.Map(cfg.Workers, 2*len(instances), func(u int) cluster.Summary {
		inst := instances[u/2]
		lab := labs[cfg.Clusters[inst.spec].HW]
		seed := sim.DeriveRNG(cfg.Seed, uint64(u/2)).Uint64()
		return runInstance(cfg, inst, lab, seed, u%2 == 1, "")
	})

	res := Result{TCO: cfg.TCO}
	base := make([]cluster.Summary, len(instances))
	hera := make([]cluster.Summary, len(instances))
	for i, inst := range instances {
		spec := cfg.Clusters[inst.spec]
		name := spec.Name
		if n := spec.Count; n > 1 {
			name = fmt.Sprintf("%s/%d", spec.Name, inst.replica)
		}
		base[i], hera[i] = summaries[2*i], summaries[2*i+1]
		res.Clusters = append(res.Clusters, Outcome{
			Name:     name,
			Spec:     inst.spec,
			Replica:  inst.replica,
			Baseline: summaries[2*i],
			Heracles: summaries[2*i+1],
		})
	}
	res.Baseline = aggregate(base)
	res.Heracles = aggregate(hera)

	res.BaselineTCO = cfg.TCO.ClusterTCO(res.Baseline.MeanEMU)
	res.HeraclesTCO = cfg.TCO.ClusterTCO(res.Heracles.MeanEMU)
	res.Gain = cfg.TCO.ThroughputPerTCOGain(res.Baseline.MeanEMU, res.Heracles.MeanEMU)
	return res
}

// PolicyOutcome is one arm of a policy comparison: the fleet aggregate
// (with its scheduler accounting) under that placement policy, plus the
// throughput/TCO gain over the paired baseline.
type PolicyOutcome struct {
	Policy   string
	Heracles Aggregate
	Gain     float64
}

// PoliciesResult is a full policy-vs-policy fleet comparison.
type PoliciesResult struct {
	Baseline Aggregate
	Outcomes []PolicyOutcome
	TCO      tco.Params
}

// RunPolicies runs the fleet once per placement policy, paired: every
// arm of an instance (the shared baseline and one Heracles run per
// policy) draws the same derived seed, so goodput and SLO-compliance
// differences are attributable to placement quality alone. All
// (1 + len(policies)) x instances runs share one flat fan-out. Specs
// without Jobs contribute no scheduler accounting but still run.
func RunPolicies(cfg Config, policies []string) PoliciesResult {
	if len(policies) == 0 {
		panic("fleet: no policies to compare")
	}
	for _, p := range policies {
		if _, err := sched.PolicyByName(p); err != nil {
			panic("fleet: " + err.Error())
		}
	}
	if cfg.TCO.Servers == 0 {
		cfg.TCO = tco.Barroso()
	}
	labs, instances := expand(cfg)

	stride := 1 + len(policies)
	summaries := parallel.Map(cfg.Workers, stride*len(instances), func(u int) cluster.Summary {
		inst := instances[u/stride]
		lab := labs[cfg.Clusters[inst.spec].HW]
		seed := sim.DeriveRNG(cfg.Seed, uint64(u/stride)).Uint64()
		arm := u % stride
		if arm == 0 {
			return runInstance(cfg, inst, lab, seed, false, "")
		}
		return runInstance(cfg, inst, lab, seed, true, policies[arm-1])
	})

	pick := func(arm int) []cluster.Summary {
		out := make([]cluster.Summary, len(instances))
		for i := range instances {
			out[i] = summaries[stride*i+arm]
		}
		return out
	}
	res := PoliciesResult{Baseline: aggregate(pick(0)), TCO: cfg.TCO}
	for pi, p := range policies {
		agg := aggregate(pick(1 + pi))
		res.Outcomes = append(res.Outcomes, PolicyOutcome{
			Policy:   p,
			Heracles: agg,
			Gain:     cfg.TCO.ThroughputPerTCOGain(res.Baseline.MeanEMU, agg.MeanEMU),
		})
	}
	return res
}

// catalogFor calibrates every BE workload the scenario's arrival events
// reference, so mid-run churn can launch tasks beyond brain/streetview.
// Departure events match installed tasks by name and never consult the
// catalog, so they need no calibration here.
func catalogFor(lab *experiment.Lab, sc scenario.Scenario) map[string]*workload.BE {
	var cat map[string]*workload.BE
	for _, ev := range sc.Events {
		if ev.Kind != scenario.EventBEArrive {
			continue
		}
		if ev.Workload == "brain" || ev.Workload == "streetview" {
			continue
		}
		if cat == nil {
			cat = make(map[string]*workload.BE)
		}
		if _, ok := cat[ev.Workload]; !ok {
			cat[ev.Workload] = lab.BE(ev.Workload)
		}
	}
	return cat
}

// aggregate reduces summaries in instance order (float accumulation is
// identical for any worker count).
func aggregate(sums []cluster.Summary) Aggregate {
	a := Aggregate{MinEMU: 1e9}
	var queueDelay time.Duration
	for _, s := range sums {
		a.MeanEMU += s.MeanEMU
		if s.MinEMU < a.MinEMU {
			a.MinEMU = s.MinEMU
		}
		a.MeanRootFrac += s.MeanRootFrac
		if s.MaxRootFrac > a.MaxRootFrac {
			a.MaxRootFrac = s.MaxRootFrac
		}
		a.Violations += s.Violations
		if s.Sched == nil {
			continue
		}
		if a.Sched == nil {
			a.Sched = &SchedAggregate{}
		}
		a.Sched.Submitted += s.Sched.Submitted
		a.Sched.Dispatches += s.Sched.Dispatches
		a.Sched.Completed += s.Sched.Completed
		a.Sched.Evictions += s.Sched.Evictions
		a.Sched.Failed += s.Sched.Failed
		a.Sched.GoodCPUSec += s.Sched.GoodCPUSec
		a.Sched.WastedCPUSec += s.Sched.WastedCPUSec
		queueDelay += s.Sched.QueueDelaySum
		if s.Sched.MaxQueueDepth > a.Sched.MaxQueueDepth {
			a.Sched.MaxQueueDepth = s.Sched.MaxQueueDepth
		}
	}
	n := float64(len(sums))
	if n > 0 {
		a.MeanEMU /= n
		a.MeanRootFrac /= n
	}
	if a.Sched != nil && a.Sched.Dispatches > 0 {
		a.Sched.MeanQueueDelay = queueDelay / time.Duration(a.Sched.Dispatches)
	}
	return a
}

// String renders the fleet result as the table cmd/fleet prints.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %9s %9s %10s %10s %6s\n",
		"cluster", "baseEMU", "heraEMU", "baseWorst", "heraWorst", "viol")
	for _, o := range r.Clusters {
		fmt.Fprintf(&b, "%-18s %8.1f%% %8.1f%% %9.1f%% %9.1f%% %3d/%d\n",
			o.Name, 100*o.Baseline.MeanEMU, 100*o.Heracles.MeanEMU,
			100*o.Baseline.MaxRootFrac, 100*o.Heracles.MaxRootFrac,
			o.Baseline.Violations, o.Heracles.Violations)
	}
	fmt.Fprintf(&b, "%-18s %8.1f%% %8.1f%% %9.1f%% %9.1f%% %3d/%d\n",
		"fleet", 100*r.Baseline.MeanEMU, 100*r.Heracles.MeanEMU,
		100*r.Baseline.MaxRootFrac, 100*r.Heracles.MaxRootFrac,
		r.Baseline.Violations, r.Heracles.Violations)
	fmt.Fprintf(&b, "\nTCO (%d servers, $%.0f each): baseline $%.1fM -> heracles $%.1fM at %+.0f%% throughput/TCO\n",
		r.TCO.Servers, r.TCO.ServerCost,
		r.BaselineTCO/1e6, r.HeraclesTCO/1e6, 100*r.Gain)
	if s := r.Heracles.Sched; s != nil {
		b.WriteString("\n" + schedLine(s))
	}
	return b.String()
}

// schedLine renders one scheduler aggregate.
func schedLine(s *SchedAggregate) string {
	return fmt.Sprintf(
		"BE scheduler: %d/%d jobs completed (%d evictions, %d failed), goodput %.0f cpu-s vs %.0f wasted (%.1f%%), mean queue delay %v\n",
		s.Completed, s.Submitted, s.Evictions, s.Failed,
		s.GoodCPUSec, s.WastedCPUSec, 100*s.GoodputFrac(),
		s.MeanQueueDelay.Round(time.Second))
}

// String renders the policy comparison as the table cmd/fleet -policy
// prints.
func (r PoliciesResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "baseline: EMU %.1f%%, worst root window %.1f%%, %d violation(s)\n\n",
		100*r.Baseline.MeanEMU, 100*r.Baseline.MaxRootFrac, r.Baseline.Violations)
	fmt.Fprintf(&b, "%-14s %8s %10s %6s %12s %12s %9s %10s %12s\n",
		"policy", "EMU", "worstRoot", "viol", "good cpu-s", "wasted", "goodput", "completed", "queue delay")
	for _, o := range r.Outcomes {
		s := o.Heracles.Sched
		if s == nil {
			s = &SchedAggregate{}
		}
		fmt.Fprintf(&b, "%-14s %7.1f%% %9.1f%% %6d %12.0f %12.0f %8.1f%% %6d/%-3d %12v\n",
			o.Policy, 100*o.Heracles.MeanEMU, 100*o.Heracles.MaxRootFrac, o.Heracles.Violations,
			s.GoodCPUSec, s.WastedCPUSec, 100*s.GoodputFrac(),
			s.Completed, s.Submitted, s.MeanQueueDelay.Round(time.Second))
	}
	return b.String()
}
