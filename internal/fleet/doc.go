// Package fleet scales the §5.3 evaluation from one cluster to a fleet:
// N clusters of heterogeneous hardware generations and workload mixes,
// each driven through its own declarative scenario, each run twice —
// baseline (no colocation) and under Heracles — so the fleet-wide
// utilisation lift converts into the TCO claim the paper makes at
// datacenter scale.
//
// Cluster instances are independent simulations: they fan out over a
// worker pool with per-instance RNG streams derived from (Seed,
// instance), so fleet results are bit-identical for any worker count.
// The aggregate reduces to §5.2/§5.3 quantities (mean/min EMU, worst
// windowed latency, violation counts) and prices the outcome with
// internal/tco.
package fleet
