// Package scenario is the declarative experiment-description layer: a
// Scenario composes a load Shape (step, ramp, flash-crowd spike,
// diurnal, trace replay, and arithmetic combinations of those) with a
// schedule of timed Events (best-effort task arrival and departure
// churn, per-leaf service degradation, mid-run SLO or load-target
// changes — the §5.2 "load changes" experiments).
//
// Scenario values are plain data that can be composed, validated and
// replayed bit-identically for any worker count; this package only
// describes them. Three interpreters execute them: the cluster simulator
// (every leaf of a fan-out tree), the fleet runner (one scenario per
// cluster spec), and the control plane's live instances (installed over
// the HTTP API via the JSON codec in internal/serve).
package scenario
