package scenario

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"heracles/internal/trace"
)

// Shape is a composable load shape: the offered load (fraction of peak)
// as a pure function of scenario time. Shapes must be deterministic —
// the simulators may evaluate them concurrently and in any order.
type Shape interface {
	At(t time.Duration) float64
}

// --- Primitive shapes --------------------------------------------------

// Flat is a constant load.
type Flat float64

// At implements Shape.
func (f Flat) At(time.Duration) float64 { return float64(f) }

// Level is one plateau of a Steps shape. It is an alias of trace.Point,
// so a Steps value is a trace and shares its lookup.
type Level = trace.Point

// Steps is a piecewise-constant shape: the load steps to each level at
// its time and holds until the next (the abrupt "load changes" of §5.2).
// Levels must be in ascending time order; before the first level the
// first load applies.
type Steps []Level

// At implements Shape via the trace's piecewise-constant search.
func (s Steps) At(t time.Duration) float64 { return trace.Trace(s).At(t) }

// Ramp interpolates linearly from From to To over [Start, End], holding
// From before and To after. A degenerate window (End <= Start) is an
// instant step to To at Start.
type Ramp struct {
	From, To   float64
	Start, End time.Duration
}

// At implements Shape.
func (r Ramp) At(t time.Duration) float64 {
	switch {
	case t < r.Start:
		return r.From
	case t >= r.End:
		return r.To
	}
	f := float64(t-r.Start) / float64(r.End-r.Start)
	return r.From + (r.To-r.From)*f
}

// FlashCrowd is an additive trapezoid spike: zero outside the incident,
// rising linearly to Amp over Rise, holding for Hold, falling back over
// Fall. Overlay it on a base shape with Sum to model a flash crowd.
type FlashCrowd struct {
	Start            time.Duration // spike onset
	Rise, Hold, Fall time.Duration
	Amp              float64 // added load at the plateau
}

// At implements Shape.
func (f FlashCrowd) At(t time.Duration) float64 {
	dt := t - f.Start
	switch {
	case dt < 0:
		return 0
	case dt < f.Rise:
		if f.Rise <= 0 {
			return f.Amp
		}
		return f.Amp * float64(dt) / float64(f.Rise)
	case dt < f.Rise+f.Hold:
		return f.Amp
	case dt < f.Rise+f.Hold+f.Fall:
		if f.Fall <= 0 {
			return 0
		}
		return f.Amp * (1 - float64(dt-f.Rise-f.Hold)/float64(f.Fall))
	default:
		return 0
	}
}

// Replay wraps a load trace as a shape (piecewise-constant, like
// trace.Trace.At).
func Replay(tr trace.Trace) Shape { return replayShape{tr} }

type replayShape struct{ tr trace.Trace }

func (r replayShape) At(t time.Duration) float64 { return r.tr.At(t) }

// Diurnal synthesises the §5.3 diurnal curve as a shape. The underlying
// trace is generated once, so evaluation is deterministic and cheap.
func Diurnal(cfg trace.DiurnalConfig) Shape { return Replay(trace.Diurnal(cfg)) }

// --- Combinators -------------------------------------------------------

// Sum adds shapes pointwise (overlay a FlashCrowd on a base curve).
func Sum(shapes ...Shape) Shape { return sumShape(shapes) }

type sumShape []Shape

func (s sumShape) At(t time.Duration) float64 {
	var v float64
	for _, sh := range s {
		v += sh.At(t)
	}
	return v
}

// Scale multiplies a shape by a constant factor.
func Scale(s Shape, k float64) Shape { return scaleShape{s, k} }

type scaleShape struct {
	s Shape
	k float64
}

func (s scaleShape) At(t time.Duration) float64 { return s.s.At(t) * s.k }

// Clamp bounds a shape to [lo, hi].
func Clamp(s Shape, lo, hi float64) Shape { return clampShape{s, lo, hi} }

type clampShape struct {
	s      Shape
	lo, hi float64
}

func (c clampShape) At(t time.Duration) float64 {
	v := c.s.At(t)
	if v < c.lo {
		return c.lo
	}
	if v > c.hi {
		return c.hi
	}
	return v
}

// --- Events ------------------------------------------------------------

// EventKind enumerates the timed actions a scenario can schedule.
type EventKind int

const (
	// EventBEArrive launches a best-effort task (by workload name) on the
	// target leaves. Ignored on baseline (no-colocation) runs.
	EventBEArrive EventKind = iota
	// EventBEDepart removes every BE task with the given workload name
	// from the target leaves.
	EventBEDepart
	// EventLeafDegrade multiplies the target leaves' LC service time by
	// Factor (>= 1), modelling a slow or degraded server.
	EventLeafDegrade
	// EventSLOScale sets the controller-visible SLO scale of the target
	// leaves to Factor (a mid-run latency-target change). When the
	// cluster runs with DynamicLeafTargets, the centralized root
	// controller owns the per-leaf targets: an all-leaves event re-anchors
	// the controller's scale (clamped to its [0.5, 0.9] working band at
	// the next adjustment), while a single-leaf event is transient and
	// lasts at most one adjust period.
	EventSLOScale
	// EventLoadScale sets the scenario-wide offered-load multiplier to
	// Factor (a mid-run load-target change; absolute, not cumulative).
	EventLoadScale
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventBEArrive:
		return "be-arrive"
	case EventBEDepart:
		return "be-depart"
	case EventLeafDegrade:
		return "leaf-degrade"
	case EventSLOScale:
		return "slo-scale"
	case EventLoadScale:
		return "load-scale"
	default:
		return "unknown"
	}
}

// AllLeaves targets every leaf of the cluster.
const AllLeaves = -1

// Event is one timed action. Events fire at the first epoch whose time is
// >= At; events scheduled at or past the scenario end never fire.
type Event struct {
	At       time.Duration
	Kind     EventKind
	Leaf     int     // target leaf index, or AllLeaves
	Workload string  // BE workload name (arrive/depart)
	Factor   float64 // degrade factor / SLO scale / load multiplier
}

// BEArrive schedules a best-effort task launch.
func BEArrive(at time.Duration, leaf int, workload string) Event {
	return Event{At: at, Kind: EventBEArrive, Leaf: leaf, Workload: workload}
}

// BEDepart schedules a best-effort task departure.
func BEDepart(at time.Duration, leaf int, workload string) Event {
	return Event{At: at, Kind: EventBEDepart, Leaf: leaf, Workload: workload}
}

// Degrade schedules a per-leaf service-time degradation (factor >= 1;
// 1 restores full speed).
func Degrade(at time.Duration, leaf int, factor float64) Event {
	return Event{At: at, Kind: EventLeafDegrade, Leaf: leaf, Factor: factor}
}

// SLOScale schedules a controller-visible latency-target change.
func SLOScale(at time.Duration, leaf int, factor float64) Event {
	return Event{At: at, Kind: EventSLOScale, Leaf: leaf, Factor: factor}
}

// LoadScale schedules an offered-load multiplier change.
func LoadScale(at time.Duration, factor float64) Event {
	return Event{At: at, Kind: EventLoadScale, Leaf: AllLeaves, Factor: factor}
}

// --- Scenario ----------------------------------------------------------

// Scenario is a complete declarative experiment: a named load shape plus
// an event schedule over a fixed horizon.
type Scenario struct {
	Name     string
	Duration time.Duration
	Load     Shape
	Events   []Event
}

// FromTrace wraps a bare load trace as a scenario with no events — the
// compatibility path for callers that still plumb traces directly.
func FromTrace(name string, tr trace.Trace) Scenario {
	return Scenario{Name: name, Duration: tr.Duration(), Load: Replay(tr)}
}

// LoadAt evaluates the load shape, clamped to [0, 1].
func (s Scenario) LoadAt(t time.Duration) float64 {
	if s.Load == nil {
		return 0
	}
	v := s.Load.At(t)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Trace samples the scenario's load shape at the given cadence, for
// callers that want a plain trace (plotting, replay elsewhere).
func (s Scenario) Trace(step time.Duration) trace.Trace {
	if step <= 0 {
		step = time.Second
	}
	n := int(s.Duration/step) + 1
	tr := make(trace.Trace, 0, n)
	for i := 0; i < n; i++ {
		t := time.Duration(i) * step
		tr = append(tr, trace.Point{At: t, Load: s.LoadAt(t)})
	}
	return tr
}

// Validate reports the first structural problem with the scenario. A
// zero Duration is vacuous but well-defined (no epochs run), preserving
// the behaviour of replaying an empty trace.
func (s Scenario) Validate() error {
	if s.Duration < 0 {
		return errors.New("scenario: Duration must not be negative")
	}
	if s.Load == nil {
		return errors.New("scenario: Load shape missing")
	}
	for i, ev := range s.Events {
		if ev.At < 0 {
			return fmt.Errorf("scenario: event %d (%v) has negative time", i, ev.Kind)
		}
		switch ev.Kind {
		case EventBEArrive, EventBEDepart:
			if ev.Workload == "" {
				return fmt.Errorf("scenario: event %d (%v) missing workload name", i, ev.Kind)
			}
		case EventLeafDegrade:
			if ev.Factor < 1 {
				return fmt.Errorf("scenario: event %d (leaf-degrade) factor %v < 1", i, ev.Factor)
			}
		case EventSLOScale, EventLoadScale:
			if ev.Factor <= 0 {
				return fmt.Errorf("scenario: event %d (%v) factor %v must be positive", i, ev.Kind, ev.Factor)
			}
		default:
			return fmt.Errorf("scenario: event %d has unknown kind %d", i, int(ev.Kind))
		}
	}
	return nil
}

// Cursor returns an event cursor over the schedule, sorted by time with
// the original order preserved among simultaneous events.
func (s Scenario) Cursor() *Cursor {
	evs := make([]Event, len(s.Events))
	copy(evs, s.Events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return &Cursor{events: evs}
}

// Cursor walks an event schedule in time order.
type Cursor struct {
	events []Event
	next   int
}

// Due returns the events that fire at or before now and have not been
// returned yet. The returned slice aliases the cursor's storage; callers
// must consume it before the next call.
func (c *Cursor) Due(now time.Duration) []Event {
	start := c.next
	for c.next < len(c.events) && c.events[c.next].At <= now {
		c.next++
	}
	return c.events[start:c.next]
}

// Remaining returns the number of events not yet delivered.
func (c *Cursor) Remaining() int { return len(c.events) - c.next }

// Delivered returns the number of events already handed out by Due — the
// cursor position a checkpoint records.
func (c *Cursor) Delivered() int { return c.next }

// Skip discards the next n events without delivering them, fast-
// forwarding a fresh cursor to a checkpointed position. Skipping past
// the end of the schedule is clamped.
func (c *Cursor) Skip(n int) {
	c.next += n
	if c.next > len(c.events) {
		c.next = len(c.events)
	}
	if c.next < 0 {
		c.next = 0
	}
}
