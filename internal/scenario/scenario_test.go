package scenario

import (
	"testing"
	"time"

	"heracles/internal/trace"
)

func TestFlatAndSteps(t *testing.T) {
	if got := Flat(0.4).At(time.Hour); got != 0.4 {
		t.Fatalf("flat = %v", got)
	}
	s := Steps{
		{At: 0, Load: 0.2},
		{At: 10 * time.Minute, Load: 0.6},
		{At: 20 * time.Minute, Load: 0.3},
	}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 0.2},
		{5 * time.Minute, 0.2},
		{10 * time.Minute, 0.6},
		{15 * time.Minute, 0.6},
		{25 * time.Minute, 0.3},
	}
	for _, c := range cases {
		if got := s.At(c.at); got != c.want {
			t.Fatalf("steps at %v = %v, want %v", c.at, got, c.want)
		}
	}
	if got := (Steps{}).At(0); got != 0 {
		t.Fatalf("empty steps = %v", got)
	}
}

func TestRamp(t *testing.T) {
	r := Ramp{From: 0.2, To: 0.8, Start: time.Minute, End: 2 * time.Minute}
	if got := r.At(0); got != 0.2 {
		t.Fatalf("before ramp = %v", got)
	}
	if got := r.At(3 * time.Minute); got != 0.8 {
		t.Fatalf("after ramp = %v", got)
	}
	mid := r.At(90 * time.Second)
	if mid < 0.49 || mid > 0.51 {
		t.Fatalf("midpoint = %v, want 0.5", mid)
	}
	// A degenerate window is an instant step to To at Start.
	step := Ramp{From: 0.3, To: 0.9, Start: time.Minute, End: time.Minute}
	if got := step.At(59 * time.Second); got != 0.3 {
		t.Fatalf("degenerate ramp before start = %v", got)
	}
	if got := step.At(time.Minute); got != 0.9 {
		t.Fatalf("degenerate ramp at start = %v", got)
	}
}

func TestFlashCrowdTrapezoid(t *testing.T) {
	f := FlashCrowd{
		Start: 10 * time.Minute,
		Rise:  time.Minute, Hold: 2 * time.Minute, Fall: time.Minute,
		Amp: 0.3,
	}
	if got := f.At(9 * time.Minute); got != 0 {
		t.Fatalf("before spike = %v", got)
	}
	if got := f.At(10*time.Minute + 30*time.Second); got < 0.14 || got > 0.16 {
		t.Fatalf("mid-rise = %v, want 0.15", got)
	}
	if got := f.At(12 * time.Minute); got != 0.3 {
		t.Fatalf("plateau = %v", got)
	}
	if got := f.At(13*time.Minute + 30*time.Second); got < 0.14 || got > 0.16 {
		t.Fatalf("mid-fall = %v, want 0.15", got)
	}
	if got := f.At(15 * time.Minute); got != 0 {
		t.Fatalf("after spike = %v", got)
	}
}

func TestCombinators(t *testing.T) {
	base := Sum(Flat(0.5), FlashCrowd{Start: time.Minute, Rise: 0, Hold: time.Minute, Fall: 0, Amp: 0.4})
	if got := base.At(90 * time.Second); got != 0.9 {
		t.Fatalf("sum = %v", got)
	}
	if got := Scale(Flat(0.5), 0.5).At(0); got != 0.25 {
		t.Fatalf("scale = %v", got)
	}
	if got := Clamp(Flat(1.7), 0, 1).At(0); got != 1 {
		t.Fatalf("clamp high = %v", got)
	}
	if got := Clamp(Flat(-2), 0, 1).At(0); got != 0 {
		t.Fatalf("clamp low = %v", got)
	}
}

func TestReplayAndTraceRoundTrip(t *testing.T) {
	tr := trace.Constant(0.35, 2*time.Minute, time.Second)
	sc := FromTrace("flat", tr)
	if sc.Duration != tr.Duration() {
		t.Fatalf("duration %v != %v", sc.Duration, tr.Duration())
	}
	if got := sc.LoadAt(time.Minute); got != 0.35 {
		t.Fatalf("replay = %v", got)
	}
	out := sc.Trace(time.Second)
	if len(out) != len(tr) {
		t.Fatalf("resampled %d points, want %d", len(out), len(tr))
	}
	for i := range out {
		if out[i] != tr[i] {
			t.Fatalf("point %d: %+v != %+v", i, out[i], tr[i])
		}
	}
}

func TestLoadAtClamps(t *testing.T) {
	sc := Scenario{Duration: time.Minute, Load: Flat(1.8)}
	if got := sc.LoadAt(0); got != 1 {
		t.Fatalf("overload not clamped: %v", got)
	}
	sc.Load = Flat(-0.3)
	if got := sc.LoadAt(0); got != 0 {
		t.Fatalf("negative not clamped: %v", got)
	}
	if got := (Scenario{Duration: time.Minute}).LoadAt(0); got != 0 {
		t.Fatalf("nil shape = %v", got)
	}
}

func TestValidate(t *testing.T) {
	ok := Scenario{
		Name:     "ok",
		Duration: time.Hour,
		Load:     Flat(0.5),
		Events: []Event{
			BEArrive(time.Minute, AllLeaves, "brain"),
			BEDepart(2*time.Minute, 0, "brain"),
			Degrade(3*time.Minute, 1, 1.5),
			SLOScale(4*time.Minute, AllLeaves, 0.7),
			LoadScale(5*time.Minute, 1.2),
		},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}

	bad := []Scenario{
		{Duration: -time.Second, Load: Flat(0.5)},
		{Duration: time.Hour},
		{Duration: time.Hour, Load: Flat(0.5), Events: []Event{{At: -time.Second, Kind: EventLoadScale, Factor: 1}}},
		{Duration: time.Hour, Load: Flat(0.5), Events: []Event{BEArrive(0, AllLeaves, "")}},
		{Duration: time.Hour, Load: Flat(0.5), Events: []Event{Degrade(0, 0, 0.5)}},
		{Duration: time.Hour, Load: Flat(0.5), Events: []Event{SLOScale(0, 0, 0)}},
		{Duration: time.Hour, Load: Flat(0.5), Events: []Event{{Kind: EventKind(99)}}},
	}
	for i, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Fatalf("bad scenario %d accepted", i)
		}
	}
}

func TestCursorOrderAndDelivery(t *testing.T) {
	sc := Scenario{
		Duration: time.Hour,
		Load:     Flat(0.5),
		Events: []Event{
			LoadScale(10*time.Minute, 1.1),
			BEArrive(time.Minute, AllLeaves, "brain"),
			BEDepart(time.Minute, AllLeaves, "brain"), // same time: original order kept
			Degrade(30*time.Minute, 0, 2),
		},
	}
	cur := sc.Cursor()
	if got := cur.Due(0); len(got) != 0 {
		t.Fatalf("premature delivery: %v", got)
	}
	due := cur.Due(time.Minute)
	if len(due) != 2 || due[0].Kind != EventBEArrive || due[1].Kind != EventBEDepart {
		t.Fatalf("at 1m got %v", due)
	}
	// Already-delivered events never fire again.
	if got := cur.Due(time.Minute); len(got) != 0 {
		t.Fatalf("redelivery: %v", got)
	}
	due = cur.Due(time.Hour)
	if len(due) != 2 || due[0].Kind != EventLoadScale || due[1].Kind != EventLeafDegrade {
		t.Fatalf("tail delivery: %v", due)
	}
	if cur.Remaining() != 0 {
		t.Fatalf("remaining = %d", cur.Remaining())
	}
	// The cursor sorts a copy: the scenario's own order is untouched.
	if sc.Events[0].Kind != EventLoadScale {
		t.Fatal("cursor mutated the scenario's event order")
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := map[EventKind]string{
		EventBEArrive:    "be-arrive",
		EventBEDepart:    "be-depart",
		EventLeafDegrade: "leaf-degrade",
		EventSLOScale:    "slo-scale",
		EventLoadScale:   "load-scale",
		EventKind(42):    "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestDiurnalShapeDeterministic(t *testing.T) {
	cfg := trace.DiurnalConfig{Duration: time.Hour, Step: time.Minute, Seed: 3}
	a, b := Diurnal(cfg), Diurnal(cfg)
	for _, at := range []time.Duration{0, 10 * time.Minute, 59 * time.Minute} {
		if a.At(at) != b.At(at) {
			t.Fatalf("diurnal shape not deterministic at %v", at)
		}
	}
}
