package slo

import (
	"encoding/json"
	"math/rand"
	"testing"
	"time"
)

// TestBudgetSpendMonotone: pushing strictly more violations never spends
// less budget, regardless of where in the stream they land.
func TestBudgetSpendMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 2000 + rng.Intn(2000)
		bad := make([]bool, n)
		for i := range bad {
			bad[i] = rng.Float64() < 0.3
		}
		// more has the same stream plus extra violations flipped on.
		more := make([]bool, n)
		copy(more, bad)
		extra := 0
		for i := range more {
			if !more[i] && rng.Float64() < 0.2 {
				more[i] = true
				extra++
			}
		}
		a := NewTracker(Config{}, time.Second)
		b := NewTracker(Config{}, time.Second)
		for i := 0; i < n; i++ {
			a.Push(bad[i])
			b.Push(more[i])
			if b.BudgetSpent() < a.BudgetSpent() {
				t.Fatalf("trial %d epoch %d: budget spend not monotone: %v < %v",
					trial, i, b.BudgetSpent(), a.BudgetSpent())
			}
		}
		if extra > 0 && b.BudgetSpent() <= a.BudgetSpent() {
			t.Fatalf("trial %d: %d extra violations did not increase spend", trial, extra)
		}
	}
}

// TestWindowRollOffExact: a single violation leaves each window at
// exactly its sim-time boundary — one epoch early it still counts, at
// the boundary it is gone.
func TestWindowRollOffExact(t *testing.T) {
	epoch := time.Second
	tr := NewTracker(Config{}, epoch)
	tr.Push(true)
	for w := 0; w < NumWindows; w++ {
		if tr.counts[w] != 1 {
			t.Fatalf("window %s: violation not counted", WindowNames[w])
		}
	}
	winEpochs := make([]int, NumWindows)
	for w, d := range Windows {
		winEpochs[w] = int(d / epoch)
	}
	// Push good epochs up to just past the largest window, checking each
	// window's count drops exactly when the violation ages out.
	for i := 1; i <= winEpochs[NumWindows-1]; i++ {
		tr.Push(false)
		for w := 0; w < NumWindows; w++ {
			want := int64(0)
			if i < winEpochs[w] { // violation at epoch 0 still inside last win[w] epochs
				want = 1
			}
			if tr.counts[w] != want {
				t.Fatalf("epoch %d window %s: count=%d want %d", i+1, WindowNames[w], tr.counts[w], want)
			}
		}
	}
	if tr.Violations() != 1 {
		t.Fatalf("total violations = %d, want 1", tr.Violations())
	}
}

// TestWindowCountsMatchBruteForce cross-checks the incremental counts
// against a brute-force recount over a random stream, including after
// the ring wraps. Shrunk windows (1s epoch, but only a few thousand
// epochs) exercise the 5m and 1h windows fully.
func TestWindowCountsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := NewTracker(Config{}, time.Second)
	var hist []bool
	n := 2*tr.win[W5m] + 500
	for i := 0; i < n; i++ {
		bad := rng.Float64() < 0.4
		hist = append(hist, bad)
		tr.Push(bad)
		for w := 0; w < NumWindows; w++ {
			lo := len(hist) - tr.win[w]
			if lo < 0 {
				lo = 0
			}
			want := int64(0)
			for _, b := range hist[lo:] {
				if b {
					want++
				}
			}
			if tr.counts[w] != want {
				t.Fatalf("epoch %d window %s: count=%d want %d", i, WindowNames[w], tr.counts[w], want)
			}
		}
	}
}

// TestAlertHysteresis pins the multiwindow multi-burn-rate ordering
// under a step violation: the fast-burn page fires first (its 1h gate
// needs ~8.6min of a 1% budget), the slow-burn ticket fires later (3d
// gate, ~43min), and on recovery the page resolves first — both its
// windows drain within the hour while the ticket's 3d window holds the
// ticket firing for days of sim time. "Resolves in reverse" = last
// alert to fire is the last to resolve.
func TestAlertHysteresis(t *testing.T) {
	tr := NewTracker(Config{}, time.Second)
	pageAt, ticketAt := -1, -1
	i := 0
	for ; ticketAt < 0 && i < 10000; i++ {
		tr.Push(true)
		if pageAt < 0 && tr.Page() {
			pageAt = i
		}
		if ticketAt < 0 && tr.Ticket() {
			ticketAt = i
		}
	}
	if pageAt < 0 || ticketAt < 0 {
		t.Fatalf("alerts never fired: page=%d ticket=%d", pageAt, ticketAt)
	}
	if pageAt >= ticketAt {
		t.Fatalf("page fired at %d, ticket at %d; want page first", pageAt, ticketAt)
	}
	// Fast-burn gate: the 1h window must reach burn 14.4 on a 1% budget
	// => 14.4 * 36 = 518.4 violations, so firing at epoch 518 (0-based).
	if pageAt != 518 {
		t.Fatalf("page fired at epoch %d, want 518", pageAt)
	}
	// Slow-burn gate: 3d window at burn 1.0 => 2592 violations (one
	// more in practice: 259200*0.01 rounds a hair above 2592 in binary).
	if ticketAt != 2592 {
		t.Fatalf("ticket fired at epoch %d, want 2592", ticketAt)
	}

	// Recovery: all-good epochs from here. Page resolves once BOTH its
	// windows recover — the 1h count must fall below 259.2, so the page
	// holds until the bad hour has mostly aged out of the 1h window
	// (~56min after the violations stop). The ticket's 3d window keeps
	// every violation in sight for three days, so it resolves last.
	pageOff, ticketOff := -1, -1
	for j := 0; j < 300000 && (pageOff < 0 || ticketOff < 0); j++ {
		tr.Push(false)
		if pageOff < 0 && !tr.Page() {
			pageOff = j
		}
		if ticketOff < 0 && !tr.Ticket() {
			ticketOff = j
		}
	}
	if pageOff < 0 || ticketOff < 0 {
		t.Fatalf("alerts never resolved: page=%d ticket=%d", pageOff, ticketOff)
	}
	if pageOff >= ticketOff {
		t.Fatalf("page resolved at +%d, ticket at +%d; want page (last to fire... first to clear) first", pageOff, ticketOff)
	}
}

// TestNoFlapInsideHysteresisBand: once firing, a burn rate hovering
// between threshold/2 and threshold keeps the alert firing.
func TestNoFlapInsideHysteresisBand(t *testing.T) {
	tr := NewTracker(Config{}, time.Second)
	for i := 0; i < 600; i++ {
		tr.Push(true)
	}
	if !tr.Page() {
		t.Fatal("page not firing after 10min of violations")
	}
	// Alternate good/bad: 5m burn settles near 50 (count ~150/300),
	// far above the resolve bound of 7.2 — the page must stay up.
	for i := 0; i < 1200; i++ {
		tr.Push(i%2 == 0)
		if !tr.Page() {
			t.Fatalf("page resolved at alternating epoch %d with 5m burn %.1f", i, tr.Burn(W5m))
		}
	}
}

// TestStateRoundTrip: serialize mid-stream, restore, and verify the
// restored tracker produces bit-identical burn rates, alerts and counts
// for the rest of the stream.
func TestStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := Config{Objective: 0.995}
	a := NewTracker(cfg, time.Second)
	for i := 0; i < 4000; i++ {
		a.Push(rng.Float64() < 0.2)
	}
	blob, err := json.Marshal(a.State())
	if err != nil {
		t.Fatal(err)
	}
	var st TrackerState
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	b, err := RestoreTracker(cfg, time.Second, st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		bad := rng.Float64() < 0.5
		a.Push(bad)
		b.Push(bad)
		if a.Status() != b.Status() {
			t.Fatalf("epoch %d: restored tracker diverged:\n%+v\n%+v", i, a.Status(), b.Status())
		}
	}
}

// TestRestoreRejectsGarbage: oversized and ragged rings are refused.
func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := RestoreTracker(Config{}, time.Second, TrackerState{Ring: make([]byte, 3)}); err == nil {
		t.Fatal("ragged ring accepted")
	}
	huge := make([]byte, 8*(1+(259200+63)/64))
	if _, err := RestoreTracker(Config{}, time.Second, TrackerState{Ring: huge}); err == nil {
		t.Fatal("oversized ring accepted")
	}
	if _, err := RestoreTracker(Config{}, time.Second, TrackerState{Epochs: -1}); err == nil {
		t.Fatal("negative epochs accepted")
	}
}

// TestLazyRingGrowth: an idle tracker holds no ring at all, and a short
// history holds a short ring.
func TestLazyRingGrowth(t *testing.T) {
	tr := NewTracker(Config{}, time.Second)
	if tr.ring != nil {
		t.Fatal("fresh tracker allocated a ring")
	}
	for i := 0; i < 100; i++ {
		tr.Push(true)
	}
	if len(tr.ring) > 4 {
		t.Fatalf("100-epoch tracker holds %d words", len(tr.ring))
	}
}

func BenchmarkTrackerPush(b *testing.B) {
	tr := NewTracker(Config{}, time.Second)
	for i := 0; i < tr.capEpochs; i++ { // pre-grow: steady-state cost
		tr.Push(i%7 == 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Push(i&15 == 0)
	}
}
