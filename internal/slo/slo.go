// Package slo is the deterministic error-budget engine (DESIGN.md §15):
// it tracks per-epoch SLO violations in a packed bit ring, computes burn
// rates over multiple rolling sim-time windows (5m/1h/6h/3d), and drives
// Sloth/Google-SRE-style multiwindow multi-burn-rate alerts — a fast-burn
// page and a slow-burn ticket — as pure functions of the violation
// history. Everything is keyed to simulated epochs, never the wall clock,
// so alert sequences are bit-identical across repeats, worker counts,
// shards and migrations, and the full tracker state serializes into the
// engine checkpoint.
package slo

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Window indices into Windows, Tracker burn rates and Status.Burn.
const (
	W5m = iota
	W1h
	W6h
	W3d
	NumWindows
)

// Windows are the rolling sim-time windows burn rates are computed over.
// The largest window bounds the bit ring: at a 1s epoch the 3d window is
// 259200 bits ≈ 32KB fully grown, and the ring only grows as epochs are
// actually pushed, so parked instances pay nothing.
var Windows = [NumWindows]time.Duration{
	5 * time.Minute,
	time.Hour,
	6 * time.Hour,
	72 * time.Hour,
}

// WindowNames label the windows in metrics and API payloads.
var WindowNames = [NumWindows]string{"5m", "1h", "6h", "3d"}

// Multiwindow multi-burn-rate thresholds, after Google's SRE workbook
// (and Sloth's generated rules): the fast-burn page catches "2% of a 30d
// budget in one hour" (rate 14.4) and the slow-burn ticket catches
// "steady overspend" (rate 1 would exhaust the budget exactly at 30d).
// Both windows of a pair must exceed the threshold to fire, and both must
// recover below the hysteresis band to resolve: the short window makes
// firing prompt, the long window gives the latch memory, so one bad hour
// keeps the page up until the hour has actually drained from the budget.
const (
	FastBurn = 14.4
	SlowBurn = 1.0
	// resolveFactor is the hysteresis band: a firing alert resolves only
	// when every one of its windows burns below threshold*resolveFactor,
	// so an alert cannot flap while the burn rate hovers at the threshold
	// and a short lull inside a long violation does not clear it.
	resolveFactor = 0.5
	// budgetPeriod is the accounting period for BudgetSpent: the fraction
	// of a 30-day error budget consumed by the violations seen so far.
	budgetPeriod = 30 * 24 * time.Hour
)

// Alert names as they appear in transitions, SSE events and metrics.
const (
	AlertPage   = "page"
	AlertTicket = "ticket"
)

// Config enables SLO tracking on an engine. The zero Objective selects
// the default 99% availability target.
type Config struct {
	// Objective is the availability target in (0,1); the error budget is
	// 1-Objective. 0 selects 0.99.
	Objective float64 `json:"objective,omitempty"`
	// Admission couples alerts into BE admission: while a node's
	// fast-burn page fires, the node advertises BE-disallowed to the
	// fleet scheduler, throttling new best-effort dispatch until the
	// budget recovers.
	Admission bool `json:"admission,omitempty"`
}

// DefaultObjective is the availability target used when Config.Objective
// is unset.
const DefaultObjective = 0.99

func (c Config) objective() float64 {
	if c.Objective > 0 && c.Objective < 1 {
		return c.Objective
	}
	return DefaultObjective
}

// Transition is one alert edge: the named alert started or stopped
// firing at the given epoch. Node is the cluster-local node index, or -1
// for the cluster-wide tracker. Transitions are emitted in deterministic
// order (nodes ascending, cluster last; page before ticket per node).
type Transition struct {
	Epoch  int    `json:"epoch"`
	Node   int    `json:"node"`
	Alert  string `json:"alert"`
	Firing bool   `json:"firing"`
}

// Status is a tracker snapshot for APIs, metrics and reports.
type Status struct {
	Objective  float64 `json:"objective"`
	Epochs     int     `json:"epochs"`
	Violations int64   `json:"violations"`
	// BudgetSpent is the fraction of a 30-day error budget the
	// violations so far have consumed (1.0 = budget exhausted).
	BudgetSpent float64 `json:"budget_spent"`
	// Burn holds the current burn rate per window, Windows order.
	Burn [NumWindows]float64 `json:"burn"`
	// Page and Ticket report whether each alert is currently firing.
	Page   bool `json:"page"`
	Ticket bool `json:"ticket"`
}

// Tracker accumulates one violation bit per simulated epoch and keeps
// exact violation counts for every window incrementally: each Push reads
// the bit rolling out of each window before overwriting the slot the new
// bit lands in, so the counts are exact at sim-time boundaries at O(1)
// cost per epoch. Windows shorter than the history seen so far use their
// full length as the denominator (missing history counts as good — the
// standard SRE convention), which keeps a fresh tracker from paging on
// its first violation.
type Tracker struct {
	objective float64
	epoch     time.Duration
	win       [NumWindows]int // window lengths in epochs
	capEpochs int             // ring capacity = largest window
	ring      []uint64        // violation bits, grown geometrically
	n         int             // epochs pushed (mod nothing; slot = n % capEpochs)
	counts    [NumWindows]int64
	total     int64
	page      bool
	ticket    bool
}

// NewTracker returns an empty tracker for the given objective and epoch
// duration (the engine's sim-time step).
func NewTracker(cfg Config, epoch time.Duration) *Tracker {
	if epoch <= 0 {
		epoch = time.Second
	}
	t := &Tracker{objective: cfg.objective(), epoch: epoch}
	for w, d := range Windows {
		n := int(d / epoch)
		if n < 1 {
			n = 1
		}
		t.win[w] = n
	}
	t.capEpochs = t.win[NumWindows-1]
	return t
}

func (t *Tracker) bitAt(slot int) bool {
	word := slot >> 6
	if word >= len(t.ring) {
		return false
	}
	return t.ring[word]&(1<<(uint(slot)&63)) != 0
}

// Push records one epoch's outcome and re-evaluates both alerts.
func (t *Tracker) Push(bad bool) {
	slot := t.n % t.capEpochs
	// Read the bit rolling out of each window before the write: for the
	// largest window that bit lives in exactly the slot being
	// overwritten, which is why the ring never needs more than capEpochs
	// bits of history.
	for w := 0; w < NumWindows; w++ {
		if t.n >= t.win[w] && t.bitAt((t.n-t.win[w])%t.capEpochs) {
			t.counts[w]--
		}
	}
	word, mask := slot>>6, uint64(1)<<(uint(slot)&63)
	if word >= len(t.ring) {
		t.grow(word + 1)
	}
	if bad {
		t.ring[word] |= mask
		for w := 0; w < NumWindows; w++ {
			t.counts[w]++
		}
		t.total++
	} else {
		t.ring[word] &^= mask
	}
	t.n++

	if t.page {
		if t.Burn(W5m) < FastBurn*resolveFactor && t.Burn(W1h) < FastBurn*resolveFactor {
			t.page = false
		}
	} else if t.Burn(W1h) >= FastBurn && t.Burn(W5m) >= FastBurn {
		t.page = true
	}
	if t.ticket {
		if t.Burn(W6h) < SlowBurn*resolveFactor && t.Burn(W3d) < SlowBurn*resolveFactor {
			t.ticket = false
		}
	} else if t.Burn(W3d) >= SlowBurn && t.Burn(W6h) >= SlowBurn {
		t.ticket = true
	}
}

// grow extends the ring to at least words 64-bit words, geometrically up
// to the fixed capacity so a long-lived tracker settles at one
// allocation of capEpochs bits.
func (t *Tracker) grow(words int) {
	capWords := (t.capEpochs + 63) >> 6
	next := 2 * len(t.ring)
	if next < words {
		next = words
	}
	if next > capWords {
		next = capWords
	}
	ring := make([]uint64, next)
	copy(ring, t.ring)
	t.ring = ring
}

// Burn returns the current burn rate for window w: the violation
// fraction of the window divided by the error budget. Burn 1.0 sustained
// for 30 days spends exactly one monthly budget.
func (t *Tracker) Burn(w int) float64 {
	return float64(t.counts[w]) / (float64(t.win[w]) * (1 - t.objective))
}

// Page reports whether the fast-burn page alert is firing.
func (t *Tracker) Page() bool { return t.page }

// Ticket reports whether the slow-burn ticket alert is firing.
func (t *Tracker) Ticket() bool { return t.ticket }

// Epochs returns the number of epochs pushed.
func (t *Tracker) Epochs() int { return t.n }

// Violations returns the total violations ever pushed.
func (t *Tracker) Violations() int64 { return t.total }

// BudgetSpent returns the fraction of a 30-day error budget consumed by
// the violations pushed so far.
func (t *Tracker) BudgetSpent() float64 {
	budgetEpochs := float64(budgetPeriod/t.epoch) * (1 - t.objective)
	return float64(t.total) / budgetEpochs
}

// Status snapshots the tracker.
func (t *Tracker) Status() Status {
	st := Status{
		Objective:   t.objective,
		Epochs:      t.n,
		Violations:  t.total,
		BudgetSpent: t.BudgetSpent(),
		Page:        t.page,
		Ticket:      t.ticket,
	}
	for w := 0; w < NumWindows; w++ {
		st.Burn[w] = t.Burn(w)
	}
	return st
}

// TrackerState is a tracker's serialized form, embedded in engine
// checkpoints. The ring is stored as little-endian packed words; counts
// are stored rather than recomputed so restore is O(ring) copy.
type TrackerState struct {
	Epochs     int               `json:"epochs"`
	Violations int64             `json:"violations"`
	Counts     [NumWindows]int64 `json:"counts"`
	Ring       []byte            `json:"ring,omitempty"`
	Page       bool              `json:"page,omitempty"`
	Ticket     bool              `json:"ticket,omitempty"`
}

// State serializes the tracker.
func (t *Tracker) State() TrackerState {
	st := TrackerState{
		Epochs:     t.n,
		Violations: t.total,
		Counts:     t.counts,
		Page:       t.page,
		Ticket:     t.ticket,
	}
	if len(t.ring) > 0 {
		st.Ring = make([]byte, 8*len(t.ring))
		for i, w := range t.ring {
			binary.LittleEndian.PutUint64(st.Ring[8*i:], w)
		}
	}
	return st
}

// RestoreTracker rebuilds a tracker from its serialized state under the
// given config and epoch duration (which must match the snapshotting
// engine's — the engine checkpoint already pins both).
func RestoreTracker(cfg Config, epoch time.Duration, st TrackerState) (*Tracker, error) {
	t := NewTracker(cfg, epoch)
	if len(st.Ring)%8 != 0 {
		return nil, fmt.Errorf("slo: ring length %d is not a whole number of words", len(st.Ring))
	}
	capWords := (t.capEpochs + 63) >> 6
	if len(st.Ring)/8 > capWords {
		return nil, fmt.Errorf("slo: ring has %d words, capacity is %d", len(st.Ring)/8, capWords)
	}
	if st.Epochs < 0 || st.Violations < 0 {
		return nil, fmt.Errorf("slo: negative epoch or violation count")
	}
	if len(st.Ring) > 0 {
		t.ring = make([]uint64, len(st.Ring)/8)
		for i := range t.ring {
			t.ring[i] = binary.LittleEndian.Uint64(st.Ring[8*i:])
		}
	}
	t.n = st.Epochs
	t.total = st.Violations
	t.counts = st.Counts
	t.page = st.Page
	t.ticket = st.Ticket
	return t, nil
}
