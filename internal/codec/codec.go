// Package codec implements the hand-rolled little-endian binary
// primitives behind the engine's binary checkpoint format (DESIGN.md
// §16). It exists so the checkpoint hot paths — periodic snapshots,
// in-process shard migration, supervisor restart — pay fixed-width
// copies instead of reflection-driven JSON, while staying dependency-
// free and byte-deterministic: the same state always encodes to the
// same bytes.
//
// Writer appends to a caller-owned buffer (reuse it across encodes to
// amortise allocation); Reader consumes a byte slice with a sticky
// error and hard bounds checks, so truncated, oversized or otherwise
// malformed input always surfaces as an error, never a panic or an
// attempt to allocate unbounded memory.
package codec

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Writer serialises fixed-width little-endian values by appending to a
// buffer. The zero value is ready to use; NewWriter wraps an existing
// buffer (typically scratch from a previous encode, truncated to reuse
// its capacity).
type Writer struct {
	buf []byte
}

// NewWriter returns a writer appending to buf[len(buf):cap(buf)].
func NewWriter(buf []byte) *Writer { return &Writer{buf: buf} }

// Bytes returns the encoded buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool writes a bool as one byte (1/0).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U16 writes a little-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 writes a little-endian int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as an int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Duration writes a time.Duration as its int64 nanosecond count.
func (w *Writer) Duration(d time.Duration) { w.I64(int64(d)) }

// F64 writes a float64 as its IEEE-754 bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// String writes a uint32 length prefix followed by the raw bytes.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Bytes32 writes a uint32 length prefix followed by the raw bytes.
func (w *Writer) Bytes32(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// Floats writes a uint32 count followed by the elements as F64. A nil
// and an empty slice encode identically (count 0).
func (w *Writer) Floats(v []float64) {
	w.U32(uint32(len(v)))
	for _, f := range v {
		w.F64(f)
	}
}

// Ints writes a uint32 count followed by the elements as I64.
func (w *Writer) Ints(v []int) {
	w.U32(uint32(len(v)))
	for _, n := range v {
		w.Int(n)
	}
}

// Reserve32 appends a zero uint32 placeholder and returns its offset for
// a later Patch32 — the idiom for prefixes (lengths, checksums) whose
// value is only known after the bytes they describe have been written.
func (w *Writer) Reserve32() int {
	off := len(w.buf)
	w.U32(0)
	return off
}

// Patch32 overwrites a placeholder written by Reserve32.
func (w *Writer) Patch32(off int, v uint32) {
	binary.LittleEndian.PutUint32(w.buf[off:], v)
}

// Nest appends a nested encoding with a uint32 length prefix. fn must
// append its encoding to the buffer it is given and return the extended
// buffer — the signature of an AppendBinary-style encoder — so nesting
// costs no intermediate allocation.
func (w *Writer) Nest(fn func([]byte) []byte) {
	off := w.Reserve32()
	w.buf = fn(w.buf)
	binary.LittleEndian.PutUint32(w.buf[off:], uint32(len(w.buf)-off-4))
}

// Reader consumes a little-endian byte stream produced by Writer. The
// first malformed read latches Err and every subsequent read returns a
// zero value, so decoders can run straight-line and check the error
// once at the end. Reads never panic on malformed input.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader wraps data for reading.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the sticky decode error, nil while the stream is healthy.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

// Offset returns the number of bytes consumed so far.
func (r *Reader) Offset() int { return r.off }

// failf latches the first error with the current offset for context.
func (r *Reader) failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("codec: offset %d: %s", r.off, fmt.Sprintf(format, args...))
	}
}

// take returns the next n bytes as a view, or nil after latching an
// error when fewer remain.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.data)-r.off {
		r.failf("need %d bytes, have %d", n, len(r.data)-r.off)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte, rejecting values other than 0 and 1 (a strict
// decode catches corruption early instead of laundering it into false).
func (r *Reader) Bool() bool {
	v := r.U8()
	if v > 1 {
		r.failf("bool byte %d", v)
		return false
	}
	return v == 1
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int64 into an int.
func (r *Reader) Int() int { return int(r.I64()) }

// Duration reads an int64 nanosecond count.
func (r *Reader) Duration() time.Duration { return time.Duration(r.I64()) }

// F64 reads an IEEE-754 float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Count reads a uint32 element count and validates it against the bytes
// actually remaining: each element occupies at least elemSize bytes, so
// any count claiming more data than exists is corruption — rejected
// here, before a decoder sizes an allocation from it. elemSize must be
// at least 1.
func (r *Reader) Count(elemSize int) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if n > r.Remaining()/elemSize {
		r.failf("count %d exceeds remaining %d bytes at %d bytes/element", n, r.Remaining(), elemSize)
		return 0
	}
	return n
}

// String reads a uint32-prefixed string.
func (r *Reader) String() string {
	n := r.Count(1)
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Bytes32 reads a uint32-prefixed byte slice as a view into the input
// (no copy); callers that retain it past the input's lifetime must copy.
func (r *Reader) Bytes32() []byte {
	n := r.Count(1)
	return r.take(n)
}

// Floats reads a uint32-prefixed float64 slice, nil when empty.
func (r *Reader) Floats() []float64 {
	n := r.Count(8)
	if n == 0 || r.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	return out
}

// FloatsInto decodes a uint32-prefixed float64 slice into backing,
// returning the capacity-clamped subslice and the grown backing — the
// packed-clone idiom machine snapshots use, one allocation for a whole
// telemetry ring instead of one per entry. Returns nil when empty.
func (r *Reader) FloatsInto(backing []float64) ([]float64, []float64) {
	n := r.Count(8)
	if n == 0 || r.err != nil {
		return nil, backing
	}
	start := len(backing)
	for i := 0; i < n; i++ {
		backing = append(backing, r.F64())
	}
	return backing[start : start+n : start+n], backing
}

// Ints reads a uint32-prefixed int slice, nil when empty.
func (r *Reader) Ints() []int {
	n := r.Count(8)
	if n == 0 || r.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.Int()
	}
	return out
}

// Expect consumes the rest of the stream: it errors unless exactly zero
// bytes remain and no earlier read failed. Top-level decoders call it so
// trailing garbage is corruption, not silently ignored padding.
func (r *Reader) Expect() error {
	if r.err != nil {
		return r.err
	}
	if rem := r.Remaining(); rem != 0 {
		return fmt.Errorf("codec: %d trailing bytes after decode", rem)
	}
	return nil
}
