package codec

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter(nil)
	w.U8(7)
	w.Bool(true)
	w.Bool(false)
	w.U16(0xbeef)
	w.U32(0xdeadbeef)
	w.U64(0x0123456789abcdef)
	w.I64(-42)
	w.Int(-7)
	w.Duration(90 * time.Second)
	w.F64(math.Pi)
	w.F64(math.Inf(-1))
	w.String("hello, checkpoint")
	w.String("")
	w.Bytes32([]byte{1, 2, 3})
	w.Floats([]float64{1.5, -2.5, 0})
	w.Floats(nil)
	w.Ints([]int{-1, 0, 1 << 40})

	r := NewReader(w.Bytes())
	if v := r.U8(); v != 7 {
		t.Fatalf("U8 = %d", v)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round trip")
	}
	if v := r.U16(); v != 0xbeef {
		t.Fatalf("U16 = %#x", v)
	}
	if v := r.U32(); v != 0xdeadbeef {
		t.Fatalf("U32 = %#x", v)
	}
	if v := r.U64(); v != 0x0123456789abcdef {
		t.Fatalf("U64 = %#x", v)
	}
	if v := r.I64(); v != -42 {
		t.Fatalf("I64 = %d", v)
	}
	if v := r.Int(); v != -7 {
		t.Fatalf("Int = %d", v)
	}
	if v := r.Duration(); v != 90*time.Second {
		t.Fatalf("Duration = %v", v)
	}
	if v := r.F64(); v != math.Pi {
		t.Fatalf("F64 = %v", v)
	}
	if v := r.F64(); !math.IsInf(v, -1) {
		t.Fatalf("F64 inf = %v", v)
	}
	if v := r.String(); v != "hello, checkpoint" {
		t.Fatalf("String = %q", v)
	}
	if v := r.String(); v != "" {
		t.Fatalf("empty String = %q", v)
	}
	if b := r.Bytes32(); string(b) != "\x01\x02\x03" {
		t.Fatalf("Bytes32 = %v", b)
	}
	f := r.Floats()
	if len(f) != 3 || f[0] != 1.5 || f[1] != -2.5 || f[2] != 0 {
		t.Fatalf("Floats = %v", f)
	}
	if f := r.Floats(); f != nil {
		t.Fatalf("empty Floats = %v", f)
	}
	n := r.Ints()
	if len(n) != 3 || n[0] != -1 || n[2] != 1<<40 {
		t.Fatalf("Ints = %v", n)
	}
	if err := r.Expect(); err != nil {
		t.Fatalf("Expect: %v", err)
	}
}

func TestTruncationSticks(t *testing.T) {
	w := NewWriter(nil)
	w.U64(1)
	w.String("abc")
	data := w.Bytes()
	for cut := 0; cut < len(data); cut++ {
		r := NewReader(data[:cut])
		_ = r.U64()
		_ = r.String()
		if err := r.Expect(); err == nil {
			t.Fatalf("truncation at %d of %d not detected", cut, len(data))
		}
		// Reads after the error stay safe and zero-valued.
		if v := r.U64(); v != 0 {
			t.Fatalf("post-error U64 = %d", v)
		}
	}
}

func TestCountRejectsOversizedClaims(t *testing.T) {
	w := NewWriter(nil)
	w.U32(1 << 30) // claims a billion elements with no data behind it
	r := NewReader(w.Bytes())
	if f := r.Floats(); f != nil {
		t.Fatalf("Floats on oversized count = %v", f)
	}
	if r.Err() == nil {
		t.Fatal("oversized count did not error")
	}
}

func TestBoolRejectsGarbage(t *testing.T) {
	r := NewReader([]byte{2})
	r.Bool()
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "bool byte") {
		t.Fatalf("Bool(2) error = %v", r.Err())
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	w := NewWriter(nil)
	w.U8(1)
	w.U8(2)
	r := NewReader(w.Bytes())
	r.U8()
	if err := r.Expect(); err == nil {
		t.Fatal("trailing byte not rejected")
	}
}

func TestFloatsIntoPacks(t *testing.T) {
	w := NewWriter(nil)
	w.Floats([]float64{1, 2})
	w.Floats(nil)
	w.Floats([]float64{3})
	r := NewReader(w.Bytes())
	backing := make([]float64, 0, 3)
	a, backing := r.FloatsInto(backing)
	b, backing := r.FloatsInto(backing)
	c, backing := r.FloatsInto(backing)
	if err := r.Expect(); err != nil {
		t.Fatalf("Expect: %v", err)
	}
	if len(a) != 2 || a[0] != 1 || a[1] != 2 || b != nil || len(c) != 1 || c[0] != 3 {
		t.Fatalf("FloatsInto = %v %v %v", a, b, c)
	}
	if len(backing) != 3 {
		t.Fatalf("backing len = %d", len(backing))
	}
	// Capacity clamping: growing one subslice must not bleed into the next.
	a = append(a, 99)
	if c[0] != 3 {
		t.Fatalf("append through subslice corrupted neighbour: %v", c)
	}
}

func TestWriterBufferReuse(t *testing.T) {
	w := NewWriter(make([]byte, 0, 64))
	w.U64(1)
	first := w.Bytes()
	w2 := NewWriter(first[:0])
	w2.U64(2)
	second := w2.Bytes()
	if &first[0] != &second[0] {
		t.Fatal("reused buffer reallocated")
	}
}
