package isolation

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// WayMask is a CAT cache-way bitmask. Intel CAT requires masks to be
// contiguous runs of set bits; resctrl rejects anything else.
type WayMask uint64

// NewWayMask returns a mask of n contiguous ways starting at way lo.
func NewWayMask(lo, n int) (WayMask, error) {
	if lo < 0 || n <= 0 || lo+n > 64 {
		return 0, fmt.Errorf("isolation: invalid way range [%d, %d)", lo, lo+n)
	}
	var m uint64
	if n == 64 {
		m = ^uint64(0)
	} else {
		m = (uint64(1)<<uint(n) - 1) << uint(lo)
	}
	return WayMask(m), nil
}

// Ways returns the number of ways in the mask.
func (m WayMask) Ways() int { return bits.OnesCount64(uint64(m)) }

// Low returns the index of the lowest set way, or -1 for an empty mask.
func (m WayMask) Low() int {
	if m == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(m))
}

// Contiguous reports whether the set bits form one contiguous run, the
// validity requirement of Intel CAT.
func (m WayMask) Contiguous() bool {
	if m == 0 {
		return false
	}
	v := uint64(m) >> uint(bits.TrailingZeros64(uint64(m)))
	return v&(v+1) == 0
}

// Overlaps reports whether two masks share any way.
func (m WayMask) Overlaps(o WayMask) bool { return m&o != 0 }

// String formats the mask as lowercase hex without leading zeros, the
// format resctrl schemata files use (e.g. "fffff", "3", "ff000").
func (m WayMask) String() string {
	return strconv.FormatUint(uint64(m), 16)
}

// ParseWayMask parses a resctrl-style hex mask.
func ParseWayMask(s string) (WayMask, error) {
	s = strings.TrimSpace(strings.TrimPrefix(strings.ToLower(s), "0x"))
	if s == "" {
		return 0, fmt.Errorf("isolation: empty way mask")
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("isolation: bad way mask %q: %v", s, err)
	}
	return WayMask(v), nil
}

// SchemataLine formats an L3 CAT schemata line for resctrl, one mask per
// cache domain (socket): "L3:0=ff000;1=ff000".
func SchemataLine(perSocket []WayMask) string {
	var b strings.Builder
	b.WriteString("L3:")
	for i, m := range perSocket {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%d=%s", i, m)
	}
	return b.String()
}

// ParseSchemataLine parses an "L3:0=mask;1=mask" line into per-socket
// masks. Sockets may appear in any order; the result is indexed by socket
// id.
func ParseSchemataLine(line string) ([]WayMask, error) {
	line = strings.TrimSpace(line)
	rest, ok := strings.CutPrefix(line, "L3:")
	if !ok {
		return nil, fmt.Errorf("isolation: schemata line %q does not start with L3:", line)
	}
	parts := strings.Split(rest, ";")
	byID := make(map[int]WayMask, len(parts))
	maxID := -1
	for _, p := range parts {
		idStr, maskStr, ok := strings.Cut(strings.TrimSpace(p), "=")
		if !ok {
			return nil, fmt.Errorf("isolation: bad schemata entry %q", p)
		}
		id, err := strconv.Atoi(strings.TrimSpace(idStr))
		if err != nil || id < 0 {
			return nil, fmt.Errorf("isolation: bad cache domain id %q", idStr)
		}
		m, err := ParseWayMask(maskStr)
		if err != nil {
			return nil, err
		}
		byID[id] = m
		if id > maxID {
			maxID = id
		}
	}
	out := make([]WayMask, maxID+1)
	for id, m := range byID {
		out[id] = m
	}
	return out, nil
}

// FreqKHz converts a GHz frequency to the integer kHz representation used
// by sysfs cpufreq scaling_max_freq files.
func FreqKHz(ghz float64) int { return int(ghz*1e6 + 0.5) }

// KHzToGHz converts a cpufreq kHz value back to GHz.
func KHzToGHz(khz int) float64 { return float64(khz) / 1e6 }

// HTBRate formats a bandwidth in GB/s as the bit-rate string tc accepts
// (e.g. "8000mbit").
func HTBRate(gbs float64) string {
	mbit := gbs * 8 * 1000
	return fmt.Sprintf("%.0fmbit", mbit)
}

// ParseHTBRate parses a tc rate string in mbit/gbit back to GB/s.
func ParseHTBRate(s string) (float64, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	switch {
	case strings.HasSuffix(s, "gbit"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "gbit"), 64)
		if err != nil {
			return 0, fmt.Errorf("isolation: bad rate %q: %v", s, err)
		}
		return v / 8, nil
	case strings.HasSuffix(s, "mbit"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "mbit"), 64)
		if err != nil {
			return 0, fmt.Errorf("isolation: bad rate %q: %v", s, err)
		}
		return v / 8000, nil
	case strings.HasSuffix(s, "kbit"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "kbit"), 64)
		if err != nil {
			return 0, fmt.Errorf("isolation: bad rate %q: %v", s, err)
		}
		return v / 8e6, nil
	default:
		return 0, fmt.Errorf("isolation: rate %q missing unit", s)
	}
}
