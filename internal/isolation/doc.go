// Package isolation defines the typed isolation settings Heracles
// programs — CPU sets, CAT way masks, DVFS frequency caps, and HTB
// rates — together with parsers and formatters for the exact kernel
// interfaces (cgroup cpuset lists, resctrl schemata hex masks, cpufreq
// kHz values, tc rate strings).
//
// These types are the shared vocabulary between the controller's
// decisions and the two actuation backends: the simulated machine
// consumes them directly, and internal/actuate serialises them into the
// file formats a real kernel would read, so a decision stream recorded
// against the simulator can be replayed against /sys paths unchanged.
package isolation
