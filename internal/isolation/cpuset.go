package isolation

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// CPUSet is a set of logical CPU ids.
type CPUSet map[int]struct{}

// NewCPUSet returns a set holding the given CPUs.
func NewCPUSet(cpus ...int) CPUSet {
	s := make(CPUSet, len(cpus))
	for _, c := range cpus {
		s[c] = struct{}{}
	}
	return s
}

// Add inserts a CPU into the set.
func (s CPUSet) Add(cpu int) { s[cpu] = struct{}{} }

// Remove deletes a CPU from the set.
func (s CPUSet) Remove(cpu int) { delete(s, cpu) }

// Contains reports membership.
func (s CPUSet) Contains(cpu int) bool {
	_, ok := s[cpu]
	return ok
}

// Len returns the set size.
func (s CPUSet) Len() int { return len(s) }

// Sorted returns the CPU ids in ascending order.
func (s CPUSet) Sorted() []int {
	out := make([]int, 0, len(s))
	for c := range s {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// Equal reports whether two sets hold the same CPUs.
func (s CPUSet) Equal(o CPUSet) bool {
	if len(s) != len(o) {
		return false
	}
	for c := range s {
		if !o.Contains(c) {
			return false
		}
	}
	return true
}

// Intersects reports whether the sets share any CPU.
func (s CPUSet) Intersects(o CPUSet) bool {
	small, big := s, o
	if len(big) < len(small) {
		small, big = big, small
	}
	for c := range small {
		if big.Contains(c) {
			return true
		}
	}
	return false
}

// String formats the set as a kernel cpulist ("0-3,8,10-11"), the format
// cgroup v1 cpuset.cpus and v2 cpuset.cpus files use. An empty set formats
// as the empty string.
func (s CPUSet) String() string {
	ids := s.Sorted()
	if len(ids) == 0 {
		return ""
	}
	var b strings.Builder
	i := 0
	for i < len(ids) {
		j := i
		for j+1 < len(ids) && ids[j+1] == ids[j]+1 {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if i == j {
			fmt.Fprintf(&b, "%d", ids[i])
		} else {
			fmt.Fprintf(&b, "%d-%d", ids[i], ids[j])
		}
		i = j + 1
	}
	return b.String()
}

// ParseCPUSet parses a kernel cpulist. The empty string parses to an empty
// set.
func ParseCPUSet(list string) (CPUSet, error) {
	s := NewCPUSet()
	list = strings.TrimSpace(list)
	if list == "" {
		return s, nil
	}
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("isolation: empty range in cpulist %q", list)
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err := strconv.Atoi(lo)
			if err != nil {
				return nil, fmt.Errorf("isolation: bad cpulist range start %q: %v", lo, err)
			}
			b, err := strconv.Atoi(hi)
			if err != nil {
				return nil, fmt.Errorf("isolation: bad cpulist range end %q: %v", hi, err)
			}
			if a < 0 || b < a {
				return nil, fmt.Errorf("isolation: invalid cpulist range %q", part)
			}
			for c := a; c <= b; c++ {
				s.Add(c)
			}
			continue
		}
		c, err := strconv.Atoi(part)
		if err != nil || c < 0 {
			return nil, fmt.Errorf("isolation: bad cpu id %q", part)
		}
		s.Add(c)
	}
	return s, nil
}

// RangeCPUSet returns the set {lo..hi} inclusive.
func RangeCPUSet(lo, hi int) CPUSet {
	s := NewCPUSet()
	for c := lo; c <= hi; c++ {
		s.Add(c)
	}
	return s
}
