package isolation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCPUSetString(t *testing.T) {
	cases := []struct {
		cpus []int
		want string
	}{
		{nil, ""},
		{[]int{3}, "3"},
		{[]int{0, 1, 2, 3}, "0-3"},
		{[]int{0, 1, 2, 8, 10, 11}, "0-2,8,10-11"},
		{[]int{5, 3, 4}, "3-5"},
	}
	for _, c := range cases {
		if got := NewCPUSet(c.cpus...).String(); got != c.want {
			t.Fatalf("%v -> %q, want %q", c.cpus, got, c.want)
		}
	}
}

func TestParseCPUSet(t *testing.T) {
	s, err := ParseCPUSet("0-2,8,10-11")
	if err != nil {
		t.Fatal(err)
	}
	want := NewCPUSet(0, 1, 2, 8, 10, 11)
	if !s.Equal(want) {
		t.Fatalf("parsed %v", s.Sorted())
	}
	if empty, err := ParseCPUSet("  "); err != nil || empty.Len() != 0 {
		t.Fatalf("empty parse: %v %v", empty, err)
	}
}

func TestParseCPUSetErrors(t *testing.T) {
	for _, bad := range []string{"a", "1-", "-3", "3-1", "1,,2", "1-2-3"} {
		if _, err := ParseCPUSet(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestCPUSetRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(ids []uint8) bool {
		s := NewCPUSet()
		for _, id := range ids {
			s.Add(int(id))
		}
		parsed, err := ParseCPUSet(s.String())
		return err == nil && parsed.Equal(s)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCPUSetOps(t *testing.T) {
	s := RangeCPUSet(0, 3)
	if s.Len() != 4 || !s.Contains(2) {
		t.Fatal("range set wrong")
	}
	s.Remove(2)
	if s.Contains(2) {
		t.Fatal("remove failed")
	}
	if !s.Intersects(NewCPUSet(3)) || s.Intersects(NewCPUSet(9)) {
		t.Fatal("intersects wrong")
	}
}

func TestNewWayMask(t *testing.T) {
	m, err := NewWayMask(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m != 0x3c {
		t.Fatalf("mask = %x", uint64(m))
	}
	if m.Ways() != 4 || m.Low() != 2 {
		t.Fatalf("ways=%d low=%d", m.Ways(), m.Low())
	}
	if !m.Contiguous() {
		t.Fatal("contiguous mask reported non-contiguous")
	}
}

func TestNewWayMaskErrors(t *testing.T) {
	for _, c := range []struct{ lo, n int }{{-1, 4}, {0, 0}, {60, 10}} {
		if _, err := NewWayMask(c.lo, c.n); err == nil {
			t.Fatalf("accepted lo=%d n=%d", c.lo, c.n)
		}
	}
}

func TestWayMaskContiguity(t *testing.T) {
	if WayMask(0b1010).Contiguous() {
		t.Fatal("holey mask reported contiguous")
	}
	if WayMask(0).Contiguous() {
		t.Fatal("empty mask reported contiguous")
	}
	if !WayMask(0b1).Contiguous() || !WayMask(0xff00).Contiguous() {
		t.Fatal("contiguous masks rejected")
	}
}

func TestWayMaskOverlaps(t *testing.T) {
	a, _ := NewWayMask(0, 4)
	b, _ := NewWayMask(4, 4)
	c, _ := NewWayMask(2, 4)
	if a.Overlaps(b) {
		t.Fatal("disjoint masks overlap")
	}
	if !a.Overlaps(c) {
		t.Fatal("overlapping masks reported disjoint")
	}
}

func TestWayMaskHexFormat(t *testing.T) {
	m, _ := NewWayMask(0, 20)
	if m.String() != "fffff" {
		t.Fatalf("full 20-way mask = %q, want fffff", m.String())
	}
	parsed, err := ParseWayMask("FFFFF")
	if err != nil || parsed != m {
		t.Fatalf("parse: %v %v", parsed, err)
	}
	if _, err := ParseWayMask("zz"); err == nil {
		t.Fatal("accepted invalid hex")
	}
	if _, err := ParseWayMask(""); err == nil {
		t.Fatal("accepted empty mask")
	}
}

func TestSchemataRoundTrip(t *testing.T) {
	lc, _ := NewWayMask(2, 18)
	line := SchemataLine([]WayMask{lc, lc})
	if line != "L3:0=ffffc;1=ffffc" {
		t.Fatalf("schemata = %q", line)
	}
	masks, err := ParseSchemataLine(line)
	if err != nil || len(masks) != 2 || masks[0] != lc || masks[1] != lc {
		t.Fatalf("parsed %v, %v", masks, err)
	}
}

func TestParseSchemataOutOfOrder(t *testing.T) {
	masks, err := ParseSchemataLine("L3:1=3;0=ff")
	if err != nil {
		t.Fatal(err)
	}
	if masks[0] != 0xff || masks[1] != 0x3 {
		t.Fatalf("masks = %v", masks)
	}
}

func TestParseSchemataErrors(t *testing.T) {
	for _, bad := range []string{"L2:0=f", "L3:0", "L3:x=f", "L3:0=zz"} {
		if _, err := ParseSchemataLine(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestFreqKHz(t *testing.T) {
	if got := FreqKHz(2.3); got != 2300000 {
		t.Fatalf("FreqKHz(2.3) = %d", got)
	}
	if got := KHzToGHz(1200000); got != 1.2 {
		t.Fatalf("KHzToGHz = %v", got)
	}
}

func TestHTBRateRoundTrip(t *testing.T) {
	s := HTBRate(1.25) // 10 gbit
	if s != "10000mbit" {
		t.Fatalf("rate = %q", s)
	}
	back, err := ParseHTBRate(s)
	if err != nil || math.Abs(back-1.25) > 1e-9 {
		t.Fatalf("round trip = %v, %v", back, err)
	}
	if v, err := ParseHTBRate("8gbit"); err != nil || v != 1.0 {
		t.Fatalf("gbit parse = %v, %v", v, err)
	}
	if v, err := ParseHTBRate("8000kbit"); err != nil || math.Abs(v-0.001) > 1e-9 {
		t.Fatalf("kbit parse = %v, %v", v, err)
	}
	if _, err := ParseHTBRate("10"); err == nil {
		t.Fatal("accepted unitless rate")
	}
}

func TestWayMaskRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(lo, n uint8) bool {
		l, c := int(lo%60), int(n%5)+1
		if l+c > 64 {
			return true
		}
		m, err := NewWayMask(l, c)
		if err != nil {
			return false
		}
		back, err := ParseWayMask(m.String())
		return err == nil && back == m && back.Contiguous() && back.Ways() == c && back.Low() == l
	}, nil); err != nil {
		t.Fatal(err)
	}
}
