package stats

import (
	"math"
	"sort"
)

// Quantile returns the q-quantile (0 <= q <= 1) of values using linear
// interpolation between closest ranks. It returns NaN for an empty input.
// The input slice is not modified.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted computes the interpolated q-quantile of an ascending slice.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Window collects samples over a bounded window and answers quantile
// queries over the retained samples. When the capacity is exceeded the
// oldest samples are discarded (sliding window), which matches how the
// Heracles controller computes tail latency over its polling period.
type Window struct {
	cap    int
	buf    []float64
	next   int
	filled bool
}

// NewWindow returns a window holding at most capacity samples.
// A capacity of zero or less defaults to 1.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		capacity = 1
	}
	return &Window{cap: capacity, buf: make([]float64, 0, capacity)}
}

// Add appends a sample, evicting the oldest if the window is full.
func (w *Window) Add(v float64) {
	if len(w.buf) < w.cap {
		w.buf = append(w.buf, v)
		return
	}
	w.buf[w.next] = v
	w.next = (w.next + 1) % w.cap
	w.filled = true
}

// Len reports the number of retained samples.
func (w *Window) Len() int { return len(w.buf) }

// Reset drops all samples.
func (w *Window) Reset() {
	w.buf = w.buf[:0]
	w.next = 0
	w.filled = false
}

// Quantile returns the q-quantile of the retained samples, or NaN if empty.
func (w *Window) Quantile(q float64) float64 {
	return Quantile(w.buf, q)
}

// Mean returns the mean of the retained samples, or NaN if empty.
func (w *Window) Mean() float64 {
	if len(w.buf) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range w.buf {
		sum += v
	}
	return sum / float64(len(w.buf))
}

// Max returns the maximum retained sample, or NaN if empty.
func (w *Window) Max() float64 {
	if len(w.buf) == 0 {
		return math.NaN()
	}
	m := w.buf[0]
	for _, v := range w.buf[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
