// Package stats provides the small statistical toolkit used throughout
// the Heracles reproduction: exact windowed quantiles, log-bucketed
// histograms, exponentially weighted moving averages, and online
// summaries.
//
// The latency engines use it to turn per-epoch service distributions
// into the tail quantiles the controller defends, and the experiment
// layer uses it for the windowed worst-case accounting the paper's
// figures report (e.g. the max-over-30-second-windows latency of §5.3).
package stats
