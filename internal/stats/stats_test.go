package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestQuantileEmpty(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("quantile of empty input should be NaN")
	}
}

func TestQuantileSingle(t *testing.T) {
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := Quantile([]float64{7}, q); got != 7 {
			t.Fatalf("q=%v: got %v", q, got)
		}
	}
}

func TestQuantileExactRanks(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(v, c.q); got != c.want {
			t.Fatalf("q=%v: got %v want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileInterpolates(t *testing.T) {
	v := []float64{0, 10}
	if got := Quantile(v, 0.5); got != 5 {
		t.Fatalf("got %v want 5", got)
	}
}

func TestQuantileClampsRange(t *testing.T) {
	v := []float64{1, 2, 3}
	if got := Quantile(v, -1); got != 1 {
		t.Fatalf("q<0: got %v", got)
	}
	if got := Quantile(v, 2); got != 3 {
		t.Fatalf("q>1: got %v", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	v := []float64{3, 1, 2}
	Quantile(v, 0.5)
	if v[0] != 3 || v[1] != 1 || v[2] != 2 {
		t.Fatalf("input mutated: %v", v)
	}
}

func TestQuantileOrderingProperty(t *testing.T) {
	if err := quick.Check(func(vals []float64, a, b float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		qa, qb := math.Mod(math.Abs(a), 1), math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(vals, qa) <= Quantile(vals, qb)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileBoundsProperty(t *testing.T) {
	if err := quick.Check(func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		q := Quantile(vals, 0.5)
		return q >= sorted[0] && q <= sorted[len(sorted)-1]
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWindowEvictsOldest(t *testing.T) {
	w := NewWindow(3)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		w.Add(v)
	}
	if w.Len() != 3 {
		t.Fatalf("len=%d", w.Len())
	}
	// Retained samples are {3,4,5}.
	if got := w.Quantile(0); got != 3 {
		t.Fatalf("min retained = %v, want 3", got)
	}
	if got := w.Max(); got != 5 {
		t.Fatalf("max = %v, want 5", got)
	}
}

func TestWindowMean(t *testing.T) {
	w := NewWindow(4)
	for _, v := range []float64{2, 4, 6} {
		w.Add(v)
	}
	if got := w.Mean(); got != 4 {
		t.Fatalf("mean=%v", got)
	}
}

func TestWindowReset(t *testing.T) {
	w := NewWindow(4)
	w.Add(1)
	w.Reset()
	if w.Len() != 0 || !math.IsNaN(w.Mean()) {
		t.Fatal("reset did not clear")
	}
}

func TestWindowZeroCapacityDefaultsToOne(t *testing.T) {
	w := NewWindow(0)
	w.Add(1)
	w.Add(2)
	if w.Len() != 1 || w.Max() != 2 {
		t.Fatalf("len=%d max=%v", w.Len(), w.Max())
	}
}

func TestHistogramQuantileApproximation(t *testing.T) {
	h := NewHistogram(1e-6, 1.1, 400)
	for i := 1; i <= 10000; i++ {
		h.Observe(float64(i) * 1e-5)
	}
	p99 := h.Quantile(0.99)
	want := 0.099
	if p99 < want*0.95 || p99 > want*1.15 {
		t.Fatalf("p99=%v, want within ~10%% of %v", p99, want)
	}
}

func TestHistogramMeanExact(t *testing.T) {
	h := NewHistogram(0.001, 2, 40)
	h.Observe(1)
	h.Observe(3)
	if got := h.Mean(); got != 2 {
		t.Fatalf("mean=%v", got)
	}
	if h.Count() != 2 {
		t.Fatalf("count=%d", h.Count())
	}
}

func TestHistogramUnderflow(t *testing.T) {
	h := NewHistogram(1, 2, 10)
	h.Observe(0.5)
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("underflow quantile = %v, want min", got)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(1, 2, 10)
	h.Observe(5)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestHistogramPanicsOnBadParams(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 2, 10) },
		func() { NewHistogram(1, 1, 10) },
		func() { NewHistogram(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic for invalid histogram params")
				}
			}()
			fn()
		}()
	}
}

func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(0.5)
	for i := 0; i < 40; i++ {
		e.Add(10)
	}
	if math.Abs(e.Value()-10) > 1e-9 {
		t.Fatalf("value=%v", e.Value())
	}
}

func TestEWMAFirstSample(t *testing.T) {
	e := NewEWMA(0.1)
	if e.Initialized() {
		t.Fatal("initialized before any sample")
	}
	if got := e.Add(5); got != 5 {
		t.Fatalf("first sample = %v", got)
	}
}

func TestEWMAInvalidAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for alpha=0")
		}
	}()
	NewEWMA(0)
}

func TestSummary(t *testing.T) {
	var s Summary
	if !math.IsNaN(s.Mean()) {
		t.Fatal("empty summary mean should be NaN")
	}
	for _, v := range []float64{3, 1, 2} {
		s.Add(v)
	}
	if s.N != 3 || s.Min != 1 || s.Max() != 3 || s.Mean() != 2 {
		t.Fatalf("summary = %+v", s)
	}
}
