package stats

import (
	"fmt"
	"math"
)

// Histogram is a log-bucketed histogram suitable for latency data spanning
// several orders of magnitude (microseconds to seconds). Bucket boundaries
// grow geometrically from Min by a factor of Growth per bucket.
type Histogram struct {
	min     float64
	growth  float64
	logG    float64
	counts  []uint64
	under   uint64
	total   uint64
	sum     float64
	maxSeen float64
}

// NewHistogram returns a histogram with nbuckets geometric buckets starting
// at min and growing by growth per bucket. growth must exceed 1.
func NewHistogram(min, growth float64, nbuckets int) *Histogram {
	if min <= 0 {
		panic("stats: histogram min must be positive")
	}
	if growth <= 1 {
		panic("stats: histogram growth must exceed 1")
	}
	if nbuckets <= 0 {
		panic("stats: histogram needs at least one bucket")
	}
	return &Histogram{
		min:    min,
		growth: growth,
		logG:   math.Log(growth),
		counts: make([]uint64, nbuckets),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.total++
	h.sum += v
	if v > h.maxSeen {
		h.maxSeen = v
	}
	if v < h.min {
		h.under++
		return
	}
	idx := int(math.Log(v/h.min) / h.logG)
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
}

// Count reports the number of observed samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean reports the mean of observed samples (exact, not bucketed).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.total)
}

// Max reports the largest observed sample.
func (h *Histogram) Max() float64 { return h.maxSeen }

// Quantile returns an estimate of the q-quantile using the upper edge of
// the bucket containing the target rank. This overestimates slightly, which
// is the conservative direction for SLO checking.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	cum := h.under
	if cum >= target {
		return h.min
	}
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			upper := h.min * math.Pow(h.growth, float64(i+1))
			if upper > h.maxSeen && h.maxSeen > 0 {
				return h.maxSeen
			}
			return upper
		}
	}
	return h.maxSeen
}

// Reset clears all recorded samples.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.under, h.total = 0, 0
	h.sum, h.maxSeen = 0, 0
}

// String summarises the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("histogram{n=%d mean=%.4g p99=%.4g max=%.4g}",
		h.total, h.Mean(), h.Quantile(0.99), h.maxSeen)
}
