package stats

import "math"

// EWMA is an exponentially weighted moving average. The zero value is not
// usable; construct with NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1]. Larger
// alpha weighs recent samples more heavily.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha must be in (0, 1]")
	}
	return &EWMA{alpha: alpha}
}

// Add folds in a new sample and returns the updated average.
func (e *EWMA) Add(v float64) float64 {
	if !e.init {
		e.value = v
		e.init = true
		return v
	}
	e.value = e.alpha*v + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average, or NaN before any sample.
func (e *EWMA) Value() float64 {
	if !e.init {
		return math.NaN()
	}
	return e.value
}

// Initialized reports whether at least one sample has been added.
func (e *EWMA) Initialized() bool { return e.init }

// Summary accumulates count, mean, min and max online.
type Summary struct {
	N    int
	Sum  float64
	Min  float64
	MaxV float64
}

// Add folds in a sample.
func (s *Summary) Add(v float64) {
	if s.N == 0 {
		s.Min, s.MaxV = v, v
	} else {
		if v < s.Min {
			s.Min = v
		}
		if v > s.MaxV {
			s.MaxV = v
		}
	}
	s.N++
	s.Sum += v
}

// Mean returns the running mean, or NaN if empty.
func (s *Summary) Mean() float64 {
	if s.N == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.N)
}

// Max returns the running maximum, or NaN if empty.
func (s *Summary) Max() float64 {
	if s.N == 0 {
		return math.NaN()
	}
	return s.MaxV
}
