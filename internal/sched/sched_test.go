package sched

import (
	"reflect"
	"testing"
	"time"

	"heracles/internal/sim"
)

// driveSynthetic runs a scheduler against a synthetic fleet whose
// BE-allowed bits and slack wobble deterministically with (seed, tick),
// with progress crediting one core-second per demand core per tick.
// Returns the report and every dispatch action's target node paired with
// that node's advertised BEAllowed bit.
func driveSynthetic(t *testing.T, cfg Config, seed uint64, nodes, ticks int) Report {
	t.Helper()
	s := New(cfg)
	for tick := 0; tick < ticks; tick++ {
		now := time.Duration(tick) * time.Second
		states := make([]NodeState, nodes)
		for n := range states {
			r := sim.DeriveRNG(seed, uint64(tick*nodes+n))
			states[n] = NodeState{
				ID:         n,
				BEAllowed:  r.Float64() > 0.3,
				Slack:      r.Float64() * 0.5,
				EMU:        0.4 + r.Float64()*0.5,
				Load:       r.Float64() * 0.8,
				MaxBECores: 8,
			}
		}
		actions := s.Tick(now, states, func(j *Job) float64 {
			return j.CPUSec + float64(j.Spec.Demand)
		})
		for _, a := range actions {
			if a.Kind != ActionDispatch {
				continue
			}
			for _, st := range states {
				if st.ID == a.Node && !st.BEAllowed {
					t.Fatalf("tick %d: job %d dispatched to node %d whose controller has BE disabled", tick, a.Job, a.Node)
				}
			}
		}
	}
	return s.Report()
}

func testJobs(n int) []JobSpec {
	return SyntheticJobs(n, 5*time.Minute, 7, []string{"brain", "streetview"})
}

// TestTickDeterminism: same seed and inputs must reproduce the placement
// log bit-for-bit, for every built-in policy; a different seed must move
// the random baseline.
func TestTickDeterminism(t *testing.T) {
	for _, name := range PolicyNames() {
		pol, err := PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Policy: pol, Jobs: testJobs(24), Seed: 42, EvictGrace: 5 * time.Second}
		a := driveSynthetic(t, cfg, 9, 6, 240)
		b := driveSynthetic(t, cfg, 9, 6, 240)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: identical runs diverged", name)
		}
		if len(a.Decisions) == 0 {
			t.Fatalf("%s: empty placement log", name)
		}
	}

	cfg := Config{Policy: Random{}, Jobs: testJobs(24), Seed: 42, EvictGrace: 5 * time.Second}
	a := driveSynthetic(t, cfg, 9, 6, 240)
	cfg.Seed = 43
	b := driveSynthetic(t, cfg, 9, 6, 240)
	if reflect.DeepEqual(a.Decisions, b.Decisions) {
		t.Fatal("random policy ignores the seed")
	}
}

// TestNoDispatchToDisallowedNode is the invariant at unit level: across
// policies and seeds (driveSynthetic fails the test on violation), and
// explicitly when every node is disabled.
func TestNoDispatchToDisallowedNode(t *testing.T) {
	for _, name := range PolicyNames() {
		pol, _ := PolicyByName(name)
		for seed := uint64(0); seed < 4; seed++ {
			driveSynthetic(t, Config{Policy: pol, Jobs: testJobs(16), Seed: seed, EvictGrace: time.Second}, seed, 5, 120)
		}
		s := New(Config{Policy: pol, Jobs: testJobs(8)})
		nodes := []NodeState{{ID: 0, MaxBECores: 8}, {ID: 1, MaxBECores: 8}}
		actions := s.Tick(10*time.Minute, nodes, func(j *Job) float64 { return 0 })
		if len(actions) != 0 {
			t.Fatalf("%s: dispatched onto an all-disabled fleet: %+v", name, actions)
		}
	}
}

// TestEvictionBackoffAndRetryBudget walks one job through the eviction
// lifecycle: grace, exponential backoff, wasted-CPU accounting, terminal
// failure once the budget is spent.
func TestEvictionBackoffAndRetryBudget(t *testing.T) {
	spec := JobSpec{Name: "j", Workload: "brain", Demand: 2, Work: time.Hour, Retries: 1}
	s := New(Config{Jobs: []JobSpec{spec}, Backoff: 10 * time.Second, EvictGrace: 5 * time.Second})

	allowed := []NodeState{{ID: 3, BEAllowed: true, Slack: 0.3, MaxBECores: 8}}
	disallowed := []NodeState{{ID: 3, BEAllowed: false, Slack: 0.3, MaxBECores: 8}}
	progress := func(j *Job) float64 { return 40 }

	acts := s.Tick(0, allowed, progress)
	if len(acts) != 1 || acts[0].Kind != ActionDispatch || acts[0].Node != 3 {
		t.Fatalf("first tick = %+v, want dispatch to node 3", acts)
	}

	// Disabled below the grace: no eviction yet.
	if acts = s.Tick(2*time.Second, disallowed, progress); len(acts) != 0 {
		t.Fatalf("evicted before the grace: %+v", acts)
	}
	// Past the grace: evicted, 40 cpu-s wasted, requeued with backoff.
	acts = s.Tick(7*time.Second, disallowed, progress)
	if len(acts) != 1 || acts[0].Kind != ActionEvict {
		t.Fatalf("post-grace tick = %+v, want evict", acts)
	}
	j, _ := s.Job(1)
	if j.State != JobPending || j.WastedCPUSec != 40 {
		t.Fatalf("after evict: state=%v wasted=%v", j.State, j.WastedCPUSec)
	}
	if got := s.Accounting().WastedCPUSec; got != 40 {
		t.Fatalf("accounting wasted = %v", got)
	}

	// Still backing off at +5s (backoff 10s from eviction at 7s).
	if acts = s.Tick(12*time.Second, allowed, progress); len(acts) != 0 {
		t.Fatalf("dispatched during backoff: %+v", acts)
	}
	// Redispatch once the backoff expires; the wait is charged as queue
	// delay.
	acts = s.Tick(20*time.Second, allowed, progress)
	if len(acts) != 1 || acts[0].Kind != ActionDispatch {
		t.Fatalf("redispatch = %+v", acts)
	}

	// Second eviction exhausts the budget (Retries = 1).
	s.Tick(21*time.Second, disallowed, progress)
	acts = s.Tick(40*time.Second, disallowed, progress)
	if len(acts) != 1 || acts[0].Kind != ActionFail {
		t.Fatalf("budget exhaustion = %+v, want fail", acts)
	}
	j, _ = s.Job(1)
	if j.State != JobFailed || j.WastedCPUSec != 80 {
		t.Fatalf("after fail: state=%v wasted=%v", j.State, j.WastedCPUSec)
	}
	a := s.Accounting()
	if a.Evictions != 2 || a.Failed != 1 || a.GoodCPUSec != 0 {
		t.Fatalf("accounting = %+v", a)
	}
}

// TestCompletionBanksGoodput: a job that reaches its Work completes and
// its CPU time lands in GoodCPUSec.
func TestCompletionBanksGoodput(t *testing.T) {
	spec := JobSpec{Name: "j", Workload: "brain", Work: 30 * time.Second}
	s := New(Config{Jobs: []JobSpec{spec}})
	nodes := []NodeState{{ID: 0, BEAllowed: true, Slack: 0.4, MaxBECores: 8}}
	s.Tick(0, nodes, func(j *Job) float64 { return 0 })
	acts := s.Tick(time.Second, nodes, func(j *Job) float64 { return 31 })
	if len(acts) != 1 || acts[0].Kind != ActionComplete {
		t.Fatalf("completion = %+v", acts)
	}
	a := s.Accounting()
	if a.Completed != 1 || a.GoodCPUSec != 31 || a.WastedCPUSec != 0 {
		t.Fatalf("accounting = %+v", a)
	}
	if a.GoodputFrac() != 1 {
		t.Fatalf("goodput frac = %v", a.GoodputFrac())
	}
}

// TestPriorityAndCapacity: higher priority dispatches first, and a full
// node admits no further demand.
func TestPriorityAndCapacity(t *testing.T) {
	jobs := []JobSpec{
		{Name: "lo", Workload: "brain", Demand: 4, Work: time.Hour, Priority: 0},
		{Name: "hi", Workload: "brain", Demand: 4, Work: time.Hour, Priority: 5},
		{Name: "mid", Workload: "brain", Demand: 4, Work: time.Hour, Priority: 2},
	}
	s := New(Config{Jobs: jobs})
	nodes := []NodeState{{ID: 0, BEAllowed: true, Slack: 0.4, MaxBECores: 8}}
	acts := s.Tick(0, nodes, func(j *Job) float64 { return 0 })
	if len(acts) != 2 {
		t.Fatalf("dispatches = %+v, want exactly two (8 cores / demand 4)", acts)
	}
	if acts[0].Job != 2 || acts[1].Job != 3 {
		t.Fatalf("dispatch order = %+v, want hi (job 2) then mid (job 3)", acts)
	}
	if s.QueueDepth() != 1 {
		t.Fatalf("queue depth = %d, want 1 (lo waiting)", s.QueueDepth())
	}
}

// TestCancelRunningJobCountsWaste: cancellation is terminal and the
// discarded CPU time is charged as waste.
func TestCancelRunningJobCountsWaste(t *testing.T) {
	s := New(Config{Jobs: []JobSpec{{Name: "j", Workload: "brain", Work: time.Hour}}})
	nodes := []NodeState{{ID: 0, BEAllowed: true, Slack: 0.4, MaxBECores: 8}}
	s.Tick(0, nodes, func(j *Job) float64 { return 0 })
	if !s.Cancel(1, 5*time.Second, 12) {
		t.Fatal("cancel refused")
	}
	j, _ := s.Job(1)
	if j.State != JobCancelled || j.WastedCPUSec != 12 {
		t.Fatalf("after cancel: %+v", j)
	}
	if s.Cancel(1, 6*time.Second, 0) {
		t.Fatal("cancel of a terminal job succeeded")
	}
	a := s.Accounting()
	if a.Cancelled != 1 || a.WastedCPUSec != 12 {
		t.Fatalf("accounting = %+v", a)
	}
}

// TestAbortRefundsAttempt: an executor-refused dispatch does not charge
// the retry budget; the dispatch counter stays monotonic (Prometheus
// counters must never decrease) with the refusal counted separately.
func TestAbortRefundsAttempt(t *testing.T) {
	s := New(Config{Jobs: []JobSpec{{Name: "j", Workload: "brain", Work: time.Hour}}, Backoff: 5 * time.Second})
	nodes := []NodeState{{ID: 0, BEAllowed: true, Slack: 0.4, MaxBECores: 8}}
	s.Tick(0, nodes, func(j *Job) float64 { return 0 })
	s.Abort(1, 0)
	j, _ := s.Job(1)
	if j.State != JobPending || j.Attempts != 0 {
		t.Fatalf("after abort: %+v", j)
	}
	if a := s.Accounting(); a.Dispatches != 1 || a.Aborted != 1 {
		t.Fatalf("accounting after abort = %+v", a)
	}
}

// TestBackoffShiftNeverOverflows: huge retry budgets must not shift the
// backoff past the duration range (a negative backoff would abolish
// backoff entirely).
func TestBackoffShiftNeverOverflows(t *testing.T) {
	spec := JobSpec{Name: "j", Workload: "brain", Work: time.Hour, Retries: 1 << 20}
	s := New(Config{Jobs: []JobSpec{spec}, Backoff: 30 * time.Second, EvictGrace: time.Second})
	allowed := []NodeState{{ID: 0, BEAllowed: true, Slack: 0.3, MaxBECores: 8}}
	disallowed := []NodeState{{ID: 0, MaxBECores: 8}}
	progress := func(j *Job) float64 { return 0 }
	now := time.Duration(0)
	for i := 0; i < 80; i++ { // far past the 63-bit shift horizon
		now += 10 * time.Minute
		s.Tick(now, allowed, progress) // redispatch
		now += 10 * time.Minute
		s.Tick(now, disallowed, progress) // grace clock starts
		now += 10 * time.Minute
		s.Tick(now, disallowed, progress) // evicted past the grace
	}
	j, _ := s.Job(1)
	if j.ReadyAt < now || j.ReadyAt > now+8*30*time.Second {
		t.Fatalf("backoff escaped its cap: ReadyAt=%v now=%v attempts=%d", j.ReadyAt, now, j.Attempts)
	}
	if j.Attempts < 70 {
		t.Fatalf("fixture did not reach high attempt counts: %d", j.Attempts)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := PolicyByName(name)
		if err != nil || p.Name() != name {
			t.Fatalf("PolicyByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestSyntheticJobsDeterministic(t *testing.T) {
	a := SyntheticJobs(32, 30*time.Minute, 11, []string{"brain", "streetview"})
	b := SyntheticJobs(32, 30*time.Minute, 11, []string{"brain", "streetview"})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("SyntheticJobs not deterministic")
	}
	c := SyntheticJobs(32, 30*time.Minute, 12, []string{"brain", "streetview"})
	if reflect.DeepEqual(a, c) {
		t.Fatal("SyntheticJobs ignores the seed")
	}
	for i, s := range a {
		if s.Work <= 0 || s.Demand < 1 || s.Submit < 0 || s.Submit > 30*time.Minute {
			t.Fatalf("job %d out of range: %+v", i, s)
		}
		if i > 0 && a[i-1].Submit > s.Submit {
			t.Fatalf("jobs not in submission order at %d", i)
		}
	}
}
