package sched

import (
	"fmt"
	"sort"
	"time"

	"heracles/internal/sim"
)

// JobSpec describes one best-effort job before submission.
type JobSpec struct {
	// Name is a display label; ids are assigned by the scheduler.
	Name string
	// Workload is the calibrated BE workload the job runs ("brain",
	// "streetview", ...). The executor resolves it; unknown names are the
	// executor's error, not the scheduler's.
	Workload string
	// Demand is the number of cores the job asks for — an admission
	// weight: a node is eligible only while the summed demand of its
	// running jobs plus this one fits within its BE core ceiling. Values
	// below 1 are treated as 1.
	Demand int
	// Work is the CPU time the job needs: busy BE core-seconds accrued on
	// whatever allocation the machine's controller grants. A job with
	// Work = 10m on a single granted core runs ten simulated minutes.
	Work time.Duration
	// Priority orders dispatch: higher dispatches first; ties break by
	// submission order.
	Priority int
	// Retries is how many times an evicted job may re-queue before it is
	// failed. Work lost to an eviction is not carried over — a retry
	// starts from zero, which is exactly why evictions are waste.
	Retries int
	// Submit is when the job enters the queue (scheduler time). Batch
	// runs pre-load specs with staggered Submit times; live layers submit
	// with Submit = now.
	Submit time.Duration
}

// JobState is a job's lifecycle phase.
type JobState int

const (
	// JobPending jobs are queued (or backing off after an eviction).
	JobPending JobState = iota
	// JobRunning jobs are placed on a node and accruing CPU time.
	JobRunning
	// JobCompleted jobs reached their required work.
	JobCompleted
	// JobFailed jobs exhausted their retry budget.
	JobFailed
	// JobCancelled jobs were cancelled by the caller.
	JobCancelled
)

// String names the state.
func (s JobState) String() string {
	switch s {
	case JobPending:
		return "pending"
	case JobRunning:
		return "running"
	case JobCompleted:
		return "completed"
	case JobFailed:
		return "failed"
	case JobCancelled:
		return "cancelled"
	default:
		return "unknown"
	}
}

// Job is one submitted job and its full dispatch history. The scheduler
// hands out copies; all mutation happens inside the scheduler.
type Job struct {
	ID   int
	Spec JobSpec

	State JobState
	// Node is the machine the job currently runs on, or -1.
	Node int
	// Attempts counts dispatches so far (1 on the first placement).
	Attempts int

	SubmittedAt time.Duration
	// ReadyAt is when the job (re-)entered the dispatchable queue: the
	// submission time, or the end of the post-eviction backoff.
	ReadyAt time.Duration
	// StartedAt is the dispatch time of the current (or last) attempt.
	StartedAt time.Duration
	// FinishedAt is when the job reached a terminal state.
	FinishedAt time.Duration

	// CPUSec is the busy core-seconds accrued by the current attempt.
	CPUSec float64
	// WastedCPUSec accumulates the CPU time lost across evicted attempts.
	WastedCPUSec float64
}

// SyntheticJobs generates a deterministic batch of n best-effort jobs for
// fleet experiments: submissions spread over the first 70% of the
// horizon, CPU demand of one to four cores, one to five minutes of
// required CPU work, three priority classes and a retry budget of three.
// Each job derives from (seed, index), so the batch is identical across
// runs and platforms. Jobs are returned in submission order.
func SyntheticJobs(n int, horizon time.Duration, seed uint64, workloads []string) []JobSpec {
	if n <= 0 || len(workloads) == 0 {
		return nil
	}
	specs := make([]JobSpec, n)
	for i := range specs {
		rng := sim.DeriveRNG(seed, uint64(i))
		wl := workloads[rng.Intn(len(workloads))]
		specs[i] = JobSpec{
			Name:     fmt.Sprintf("%s-%d", wl, i),
			Workload: wl,
			Demand:   1 + rng.Intn(4),
			Work:     time.Duration((60 + rng.Float64()*240) * float64(time.Second)),
			Priority: rng.Intn(3),
			Retries:  3,
			Submit:   time.Duration(rng.Float64() * 0.7 * float64(horizon)),
		}
	}
	sort.SliceStable(specs, func(a, b int) bool { return specs[a].Submit < specs[b].Submit })
	return specs
}
