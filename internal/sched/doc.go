// Package sched is the fleet-wide best-effort job scheduler: the piece
// Heracles (§5.3, "future work") leaves to the cluster layer. Each
// machine's controller advertises spare capacity upward — latency slack,
// EMU, whether BE execution is currently allowed — and the scheduler
// consumes that telemetry every epoch to decide where best-effort jobs
// run.
//
// The scheduler owns a job model (CPU-work demand, core demand, priority,
// retry budget) and a deterministic dispatch loop. Each Tick it:
//
//  1. advances running jobs from executor-reported progress (busy BE
//     core-seconds accrued on the machine), completing those that reached
//     their required work;
//  2. evicts jobs from machines whose controller has disabled BE (an SLO
//     emergency, a load spike, a cooldown) once a short grace expires,
//     re-queueing them with exponential backoff until the retry budget
//     runs out;
//  3. dispatches queued jobs — priority order, submission order among
//     equals — onto eligible machines under a pluggable placement Policy
//     (slack-greedy, bin-pack, spread, or the random baseline).
//
// Eligibility (controller allows BE, core capacity available) is enforced
// centrally, before the policy sees candidates, so no policy can dispatch
// onto a machine whose controller has BE disabled. All tie-breaking is by
// node/job id and any randomness draws from sim.DeriveRNG(seed, tick)
// streams, so a run's placement log is bit-identical across repeats and
// worker counts.
//
// Accounting separates goodput from waste: CPU-seconds of completed jobs
// versus CPU-seconds thrown away by evictions, plus queueing delay — the
// quantities that let an EMU gain be attributed to placement quality.
// cluster.RunScenario embeds the loop per epoch, fleet.RunPolicies runs
// paired policy-vs-policy comparisons, and internal/serve drives it live
// over the instance pool (job submit/inspect/cancel routes, scheduler
// decisions on the SSE stream, queue/goodput/eviction metrics).
package sched
