package sched

import (
	"fmt"
	"time"
)

// State is the scheduler's complete serializable state: every job with
// its dispatch history, the per-node disable clocks, the lifetime
// accounting and the recent placement log. The placement policy travels
// by name and is re-resolved on restore, so only built-in policies (see
// PolicyNames) round-trip; the deterministic per-tick RNG streams derive
// from RNGSeed and Tick, both captured here, so a restored scheduler's
// decisions are bit-identical to an uninterrupted run's.
type State struct {
	Policy     string        `json:"policy"`
	Backoff    time.Duration `json:"backoff_ns"`
	EvictGrace time.Duration `json:"evict_grace_ns"`
	RNGSeed    uint64        `json:"rng_seed"`
	Tick       uint64        `json:"tick"`

	Jobs          []Job                 `json:"jobs,omitempty"`
	DisabledSince map[int]time.Duration `json:"disabled_since,omitempty"`
	Accounting    Accounting            `json:"accounting"`
	Log           []Decision            `json:"log,omitempty"` // oldest first
}

// Snapshot captures the scheduler's state. Safe to call between Ticks.
func (s *Scheduler) Snapshot() State {
	st := State{
		Policy:     s.policy.Name(),
		Backoff:    s.cfg.Backoff,
		EvictGrace: s.cfg.EvictGrace,
		RNGSeed:    s.rngSeed,
		Tick:       s.tick,
		Accounting: s.acct,
		Log:        s.Decisions(),
	}
	st.Jobs = s.Jobs()
	if len(s.disabledSince) > 0 {
		st.DisabledSince = make(map[int]time.Duration, len(s.disabledSince))
		for k, v := range s.disabledSince {
			st.DisabledSince[k] = v
		}
	}
	return st
}

// RestoreScheduler rebuilds a scheduler from a snapshot. The decision
// observer (OnDecision) is not part of the state; reattach it after
// restoring.
func RestoreScheduler(st State) (*Scheduler, error) {
	policy, err := PolicyByName(st.Policy)
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		cfg:           Config{Policy: policy, Backoff: st.Backoff, EvictGrace: st.EvictGrace},
		policy:        policy,
		rngSeed:       st.RNGSeed,
		tick:          st.Tick,
		disabledSince: make(map[int]time.Duration, len(st.DisabledSince)),
		acct:          st.Accounting,
	}
	if s.cfg.Backoff <= 0 {
		s.cfg.Backoff = 30 * time.Second
	}
	for k, v := range st.DisabledSince {
		s.disabledSince[k] = v
	}
	for i := range st.Jobs {
		j := st.Jobs[i]
		if j.ID != i+1 {
			return nil, fmt.Errorf("sched: snapshot job %d has id %d (ids must be dense, submission-ordered)", i, j.ID)
		}
		s.jobs = append(s.jobs, &j)
	}
	if n := len(st.Log); n > 0 {
		if n > decisionCap {
			st.Log = st.Log[n-decisionCap:]
		}
		s.log = append([]Decision(nil), st.Log...)
		s.logHead = 0
	}
	return s, nil
}
