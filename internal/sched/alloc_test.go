package sched

import (
	"testing"
	"time"
)

// TestTickDoesNotAllocateQuiescent pins the scheduler's scratch reuse:
// once every job is placed and the fleet is stable, a Tick — node sort,
// view build, progress scan — touches only the scheduler's own scratch
// slices and allocates nothing. Dispatch, eviction and completion paths
// still allocate (their Decision details are data-dependent), which is
// why the pin runs against a quiescent fleet.
func TestTickDoesNotAllocateQuiescent(t *testing.T) {
	jobs := make([]JobSpec, 48)
	for i := range jobs {
		jobs[i] = JobSpec{
			Name: "j", Workload: "brain", Demand: 1 + i%3,
			// Effectively infinite work: the jobs dispatch once and then
			// run forever, so steady-state ticks only scan them.
			Work: 1e6 * time.Second, Retries: 1,
		}
	}
	s := New(Config{Policy: SlackGreedy{}, Jobs: jobs, EvictGrace: time.Second})
	nodes := make([]NodeState, 16)
	for n := range nodes {
		nodes[n] = NodeState{ID: n, BEAllowed: true, Slack: 0.3, MaxBECores: 24}
	}
	progress := func(j *Job) float64 { return j.CPUSec + 1 }
	for i := 0; i < 64; i++ {
		s.Tick(time.Duration(i)*time.Second, nodes, progress)
	}
	tick := 64
	if avg := testing.AllocsPerRun(100, func() {
		s.Tick(time.Duration(tick)*time.Second, nodes, progress)
		tick++
	}); avg != 0 {
		t.Fatalf("quiescent Tick allocates %.1f allocs/op, want 0", avg)
	}
}
