package sched

import (
	"fmt"

	"heracles/internal/sim"
)

// NodeState is one machine's slack/EMU telemetry as the scheduler sees it
// at a tick — the per-epoch capacity advertisement each Heracles
// controller sends upward.
type NodeState struct {
	// ID identifies the machine; it must be stable across ticks.
	ID int
	// BEAllowed reports whether the machine's controller currently
	// permits best-effort execution. The scheduler never dispatches to a
	// node with BEAllowed false, and evicts from one after a grace.
	BEAllowed bool
	// AdmitHold throttles new placements without touching running jobs:
	// the error-budget engine raises it while the node's fast-burn alert
	// fires (DESIGN.md §15). Unlike !BEAllowed it never evicts — work
	// already placed runs on under the controller's own enablement; the
	// node just stops accepting more until the budget recovers.
	AdmitHold bool
	// Slack is the latency slack (SLO - tail)/SLO of the last epoch.
	Slack float64
	// EMU is the machine's effective utilisation of the last epoch.
	EMU float64
	// Load is the LC offered load fraction.
	Load float64
	// MaxBECores caps the summed core demand of jobs placed on the node.
	MaxBECores int
}

// NodeView augments a NodeState with the scheduler's own bookkeeping; it
// is what policies choose among. Every view handed to a policy is already
// eligible for the job being placed.
type NodeView struct {
	NodeState
	// RunningJobs is the number of scheduler-placed jobs on the node.
	RunningJobs int
	// CommittedCores is the summed core demand of those jobs.
	CommittedCores int
}

// Policy picks a node for one job among eligible candidates. Place
// returns an index into nodes, or -1 to leave the job queued. nodes is
// never empty, is sorted by node id, and contains only eligible machines
// (controller allows BE, demand fits) — eligibility is the scheduler's
// job, placement quality the policy's. Implementations must be
// deterministic given (job, nodes, rng).
type Policy interface {
	Name() string
	Place(job *Job, nodes []NodeView, rng *sim.RNG) int
}

// SlackGreedy places each job on the eligible node with the most latency
// slack — the machine whose controller is furthest from its SLO and so
// least likely to park or evict the job. Ties break by node id.
type SlackGreedy struct{}

// Name implements Policy.
func (SlackGreedy) Name() string { return "slack-greedy" }

// Place implements Policy.
func (SlackGreedy) Place(_ *Job, nodes []NodeView, _ *sim.RNG) int {
	best := 0
	for i := 1; i < len(nodes); i++ {
		if nodes[i].Slack > nodes[best].Slack {
			best = i
		}
	}
	return best
}

// BinPack consolidates: it places each job on the eligible node with the
// most committed BE cores (filling machines up before opening new ones),
// ties broken by node id. Dense packing maximises how many machines stay
// BE-free but concentrates eviction risk.
type BinPack struct{}

// Name implements Policy.
func (BinPack) Name() string { return "bin-pack" }

// Place implements Policy.
func (BinPack) Place(_ *Job, nodes []NodeView, _ *sim.RNG) int {
	best := 0
	for i := 1; i < len(nodes); i++ {
		if nodes[i].CommittedCores > nodes[best].CommittedCores {
			best = i
		}
	}
	return best
}

// Spread balances: it places each job on the eligible node with the
// fewest committed BE cores (then fewest running jobs, then lowest id).
type Spread struct{}

// Name implements Policy.
func (Spread) Name() string { return "spread" }

// Place implements Policy.
func (Spread) Place(_ *Job, nodes []NodeView, _ *sim.RNG) int {
	best := 0
	for i := 1; i < len(nodes); i++ {
		if nodes[i].CommittedCores < nodes[best].CommittedCores ||
			(nodes[i].CommittedCores == nodes[best].CommittedCores &&
				nodes[i].RunningJobs < nodes[best].RunningJobs) {
			best = i
		}
	}
	return best
}

// Random is the baseline: a uniform choice among eligible nodes, blind to
// slack. It measures how much placement quality (as opposed to admission
// control) contributes to goodput.
type Random struct{}

// Name implements Policy.
func (Random) Name() string { return "random" }

// Place implements Policy.
func (Random) Place(_ *Job, nodes []NodeView, rng *sim.RNG) int {
	return rng.Intn(len(nodes))
}

// PolicyNames lists the built-in placement policies.
func PolicyNames() []string {
	return []string{"slack-greedy", "bin-pack", "spread", "random"}
}

// PolicyByName resolves a built-in policy.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "slack-greedy":
		return SlackGreedy{}, nil
	case "bin-pack":
		return BinPack{}, nil
	case "spread":
		return Spread{}, nil
	case "random":
		return Random{}, nil
	}
	return nil, fmt.Errorf("sched: unknown policy %q (want one of %v)", name, PolicyNames())
}
