package sched

import (
	"testing"
	"time"
)

// TestKillEvictsThroughRetryBudget: Kill force-evicts a running job via
// the normal evict path — wasted CPU time is booked, the job requeues
// while it has retry budget and fails once the budget is spent — and is
// a no-op on jobs that are not running.
func TestKillEvictsThroughRetryBudget(t *testing.T) {
	s := New(Config{Policy: SlackGreedy{}})
	id := s.Submit(JobSpec{Workload: "brain", Demand: 1, Work: 100 * time.Second, Retries: 1})
	node := []NodeState{{ID: 1, BEAllowed: true, Slack: 0.3, EMU: 0.5, MaxBECores: 8}}
	progress := func(j *Job) float64 { return j.CPUSec }

	acts := s.Tick(0, node, progress)
	if len(acts) != 1 || acts[0].Kind != ActionDispatch {
		t.Fatalf("first tick actions = %+v, want one dispatch", acts)
	}

	acts = s.Kill(id, 10*time.Second, 7.5, "injected fault")
	if len(acts) != 1 || acts[0].Kind != ActionEvict {
		t.Fatalf("Kill actions = %+v, want one evict", acts)
	}
	j, _ := s.Job(id)
	if j.State != JobPending {
		t.Fatalf("job state after first kill = %v, want pending (retry budget remains)", j.State)
	}
	if j.WastedCPUSec != 7.5 {
		t.Fatalf("job wasted CPU = %v, want 7.5 (the accrued time Kill was told about)", j.WastedCPUSec)
	}
	a := s.Accounting()
	if a.WastedCPUSec != 7.5 || a.Evictions != 1 {
		t.Fatalf("accounting after kill = wasted %v evictions %d, want 7.5 and 1", a.WastedCPUSec, a.Evictions)
	}

	// Killing a job that is not running does nothing.
	if acts := s.Kill(id, 11*time.Second, 3, "again"); acts != nil {
		t.Fatalf("Kill on a pending job returned %+v, want nil", acts)
	}
	if acts := s.Kill(999, 11*time.Second, 3, "bogus"); acts != nil {
		t.Fatalf("Kill on an unknown id returned %+v, want nil", acts)
	}

	// Redispatch after the evict backoff, then kill again: the retry
	// budget is spent, the job fails.
	acts = s.Tick(2*time.Minute, node, progress)
	if len(acts) != 1 || acts[0].Kind != ActionDispatch {
		t.Fatalf("redispatch actions = %+v, want one dispatch", acts)
	}
	acts = s.Kill(id, 3*time.Minute, 2.5, "injected fault")
	if len(acts) != 1 || acts[0].Kind != ActionFail {
		t.Fatalf("second kill actions = %+v, want one fail", acts)
	}
	j, _ = s.Job(id)
	if j.State != JobFailed {
		t.Fatalf("job state after budget spent = %v, want failed", j.State)
	}
	a = s.Accounting()
	if a.WastedCPUSec != 10 || a.Failed != 1 {
		t.Fatalf("final accounting = wasted %v failed %d, want 10 and 1", a.WastedCPUSec, a.Failed)
	}
}
