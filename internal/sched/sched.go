package sched

import (
	"cmp"
	"fmt"
	"slices"
	"time"

	"heracles/internal/sim"
)

// Config configures a scheduler.
type Config struct {
	// Policy is the placement policy (default SlackGreedy).
	Policy Policy
	// Jobs are pre-loaded at construction with their Spec.Submit times —
	// the batch path used by cluster and fleet runs. Live layers submit
	// through Submit instead (or additionally).
	Jobs []JobSpec
	// Seed roots the deterministic choice streams; each tick draws from
	// sim.DeriveRNG(seed', tick), with seed' decorrelated from Seed so a
	// scheduler sharing a simulation's seed never correlates with its
	// other (seed, epoch) streams.
	Seed uint64
	// Backoff is the re-queue delay after the first eviction; it doubles
	// per subsequent attempt, capped at 8x (default 30s).
	Backoff time.Duration
	// EvictGrace is how long a node's controller may keep BE disabled
	// before the scheduler evicts the jobs parked there (default 15s, one
	// top-level controller poll). A shorter grace converts transient
	// disables into churn; a longer one leaves work parked through real
	// emergencies.
	EvictGrace time.Duration
}

// ActionKind enumerates the executor-visible scheduler actions.
type ActionKind int

const (
	// ActionDispatch starts the job's workload on the node.
	ActionDispatch ActionKind = iota
	// ActionEvict stops the job on the node; the job re-queues.
	ActionEvict
	// ActionComplete stops the job on the node as finished work.
	ActionComplete
	// ActionFail stops the job on the node; its retry budget is spent.
	ActionFail
)

// String names the action kind.
func (k ActionKind) String() string {
	switch k {
	case ActionDispatch:
		return "dispatch"
	case ActionEvict:
		return "evict"
	case ActionComplete:
		return "complete"
	case ActionFail:
		return "fail"
	default:
		return "unknown"
	}
}

// Action is one executor instruction returned by Tick. For
// ActionDispatch the executor starts Workload on Node and must call
// Abort if it cannot; for every other kind it stops the job's task on
// Node (CompleteBE for ActionComplete, RemoveBE otherwise).
type Action struct {
	Kind     ActionKind
	Job      int
	Node     int
	Workload string
}

// Decision is one entry of the placement log — the artefact the
// determinism tests compare bit-for-bit.
type Decision struct {
	At     time.Duration
	Kind   ActionKind
	Job    int
	Node   int
	Detail string
}

// decisionCap bounds the in-memory placement log; long-lived servers keep
// the accounting exact while the log keeps only the most recent window.
const decisionCap = 16384

// Accounting aggregates the scheduler's lifetime counters. GoodCPUSec vs
// WastedCPUSec is the goodput split: CPU time banked by completed jobs
// against CPU time thrown away by evictions and cancellations.
type Accounting struct {
	Submitted  int
	Dispatches int
	Completed  int
	Evictions  int
	Failed     int
	Cancelled  int
	// Aborted counts dispatches the executor refused (the target's
	// controller flipped between snapshot and apply). Such attempts stay
	// in Dispatches — counters only ever grow — and the job re-queues
	// with no retry budget charged.
	Aborted int

	GoodCPUSec   float64
	WastedCPUSec float64

	// QueueDelaySum accumulates, over every dispatch, how long the job
	// had been dispatchable (submitted or post-backoff) before placement.
	QueueDelaySum time.Duration

	// QueueDepth/Running are the depths observed at the last tick;
	// MaxQueueDepth is the lifetime high-water mark.
	QueueDepth    int
	Running       int
	MaxQueueDepth int
}

// MeanQueueDelay is the average dispatchable-to-dispatched wait.
func (a Accounting) MeanQueueDelay() time.Duration {
	if a.Dispatches == 0 {
		return 0
	}
	return a.QueueDelaySum / time.Duration(a.Dispatches)
}

// GoodputFrac is completed CPU time over all consumed CPU time.
func (a Accounting) GoodputFrac() float64 {
	total := a.GoodCPUSec + a.WastedCPUSec
	if total <= 0 {
		return 0
	}
	return a.GoodCPUSec / total
}

// Report is a finished run's scheduler artefact.
type Report struct {
	Policy     string
	Accounting Accounting
	Decisions  []Decision
}

// Scheduler is the fleet-wide dispatch loop. It is deliberately
// single-threaded: the cluster simulator ticks it between epochs and the
// live control plane serialises access behind its driver — determinism
// comes from that single ownership plus the (seed, tick) RNG streams.
type Scheduler struct {
	cfg     Config
	policy  Policy
	rngSeed uint64
	tick    uint64

	jobs []*Job // by ID; ID = index+1

	// disabledSince tracks, per node, when the controller last flipped BE
	// off — the clock the eviction grace runs on.
	disabledSince map[int]time.Duration

	acct Accounting
	// log is a ring of the most recent decisionCap decisions: logHead is
	// the physical index of the oldest entry once the ring has filled
	// (mirroring the machine's telemetry ring), so recording stays O(1)
	// on long-lived servers.
	log     []Decision
	logHead int

	// onDecision, when set, observes every placement-log entry as it is
	// recorded (the live layer forwards them to SSE subscribers).
	onDecision func(Decision)

	// Tick scratch, reused across ticks so a steady-state tick allocates
	// nothing: the sorted node copy, the per-tick id index, the policy
	// views, the dispatchable queue, the per-job eligibility filter, and
	// the action buffer Tick returns (valid until the next Tick or Kill).
	rng        sim.RNG
	scrSorted  []NodeState
	scrByID    map[int]NodeState
	scrViews   []NodeView
	scrPending []*Job
	scrElig    []NodeView
	scrActions []Action
}

// New builds a scheduler and pre-loads cfg.Jobs. Specs must name a
// workload and a positive Work; violations panic — job composition is
// programmer (or validated-API) input, not runtime data.
func New(cfg Config) *Scheduler {
	if cfg.Policy == nil {
		cfg.Policy = SlackGreedy{}
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 30 * time.Second
	}
	if cfg.EvictGrace < 0 {
		cfg.EvictGrace = 0
	} else if cfg.EvictGrace == 0 {
		cfg.EvictGrace = 15 * time.Second
	}
	s := &Scheduler{
		cfg:    cfg,
		policy: cfg.Policy,
		// Decorrelate from the owning simulation's other (Seed, index)
		// streams (cluster root sampling derives from the same seed).
		rngSeed:       sim.DeriveRNG(cfg.Seed, 0x5ced).Uint64(),
		disabledSince: make(map[int]time.Duration),
	}
	for _, spec := range cfg.Jobs {
		s.Submit(spec)
	}
	return s
}

// Policy returns the placement policy name.
func (s *Scheduler) Policy() string { return s.policy.Name() }

// Submit enqueues one job at spec.Submit and returns its id.
func (s *Scheduler) Submit(spec JobSpec) int {
	if spec.Workload == "" {
		panic("sched: job spec missing workload name")
	}
	if spec.Work <= 0 {
		panic(fmt.Sprintf("sched: job %q has non-positive work %v", spec.Name, spec.Work))
	}
	if spec.Demand < 1 {
		spec.Demand = 1
	}
	j := &Job{
		ID:          len(s.jobs) + 1,
		Spec:        spec,
		State:       JobPending,
		Node:        -1,
		SubmittedAt: spec.Submit,
		ReadyAt:     spec.Submit,
	}
	s.jobs = append(s.jobs, j)
	s.acct.Submitted++
	return j.ID
}

// Job returns a snapshot copy of the job with the given id.
func (s *Scheduler) Job(id int) (Job, bool) {
	if id < 1 || id > len(s.jobs) {
		return Job{}, false
	}
	return *s.jobs[id-1], true
}

// Jobs returns snapshot copies of every job, in submission order.
func (s *Scheduler) Jobs() []Job {
	out := make([]Job, len(s.jobs))
	for i, j := range s.jobs {
		out[i] = *j
	}
	return out
}

// QueueDepth is the number of submitted-and-waiting jobs as of the last
// tick (including jobs backing off).
func (s *Scheduler) QueueDepth() int { return s.acct.QueueDepth }

// Running is the number of placed jobs as of the last tick.
func (s *Scheduler) Running() int { return s.acct.Running }

// Accounting returns the lifetime counters.
func (s *Scheduler) Accounting() Accounting { return s.acct }

// Decisions returns a copy of the placement log (most recent decisionCap
// entries), oldest first.
func (s *Scheduler) Decisions() []Decision {
	out := make([]Decision, len(s.log))
	n := copy(out, s.log[s.logHead:])
	copy(out[n:], s.log[:s.logHead])
	return out
}

// Report bundles the policy name, accounting and placement log.
func (s *Scheduler) Report() Report {
	return Report{Policy: s.policy.Name(), Accounting: s.acct, Decisions: s.Decisions()}
}

// OnDecision installs a placement-log observer, invoked synchronously
// from Tick/Cancel/Abort.
func (s *Scheduler) OnDecision(fn func(Decision)) { s.onDecision = fn }

// Cancel marks a job cancelled. If it was running, the caller must stop
// its task and pass the accrued CPU time, which is counted as wasted.
// Returns false if the job is unknown or already terminal.
func (s *Scheduler) Cancel(id int, now time.Duration, accrued float64) bool {
	if id < 1 || id > len(s.jobs) {
		return false
	}
	j := s.jobs[id-1]
	if j.State != JobPending && j.State != JobRunning {
		return false
	}
	node := j.Node
	if j.State == JobRunning {
		j.WastedCPUSec += accrued
		s.acct.WastedCPUSec += accrued
	}
	j.State = JobCancelled
	j.Node = -1
	j.FinishedAt = now
	s.acct.Cancelled++
	s.record(Decision{At: now, Kind: ActionEvict, Job: id, Node: node,
		Detail: fmt.Sprintf("cancelled (%.0f cpu-s discarded)", accrued)})
	return true
}

// Kill force-evicts a running job — the fault layer's BE-kill and the
// crash paths use it when a task dies out from under the scheduler. The
// accrued CPU time (the caller reads it before the task is destroyed) is
// charged as wasted and the job goes through the normal eviction path:
// retry budget is consumed exactly like a controller-driven eviction,
// failing the job when the budget is spent. Returns the executor actions
// to apply, or nil if the job is not running.
func (s *Scheduler) Kill(id int, now time.Duration, accrued float64, reason string) []Action {
	if id < 1 || id > len(s.jobs) {
		return nil
	}
	j := s.jobs[id-1]
	if j.State != JobRunning {
		return nil
	}
	j.CPUSec = accrued
	var actions []Action
	s.evict(j, now, reason, &actions)
	return actions
}

// Abort returns a job the executor failed to start (the node refused the
// dispatch) to the queue without charging its retry budget.
func (s *Scheduler) Abort(id int, now time.Duration) {
	if id < 1 || id > len(s.jobs) {
		return
	}
	j := s.jobs[id-1]
	if j.State != JobRunning {
		return
	}
	node := j.Node
	j.State = JobPending
	j.Node = -1
	j.Attempts--
	j.CPUSec = 0
	j.ReadyAt = now + s.cfg.Backoff
	s.acct.Aborted++
	s.record(Decision{At: now, Kind: ActionEvict, Job: id, Node: node,
		Detail: "dispatch aborted by executor, requeued"})
}

// Tick runs one scheduling epoch at time now against the given node
// snapshots. progress reports a running job's accrued busy core-seconds
// (executors read the machine task's counter; return job.CPUSec if the
// node is gone). The returned actions must be applied by the executor in
// order, and are backed by scratch the scheduler reuses: the slice is
// valid only until the next Tick or Kill call (copy to retain). Tick is
// deterministic given the scheduler's history and its inputs.
func (s *Scheduler) Tick(now time.Duration, nodes []NodeState, progress func(*Job) float64) []Action {
	// The per-tick choice stream is reseeded in place — same stream as
	// the DeriveRNG it replaced, without the per-tick allocation.
	s.rng.Reseed(s.rngSeed, s.tick)
	rng := &s.rng
	s.tick++

	sorted := append(s.scrSorted[:0], nodes...)
	s.scrSorted = sorted
	// Node ids are unique, so the unstable sort is deterministic.
	slices.SortFunc(sorted, func(a, b NodeState) int { return cmp.Compare(a.ID, b.ID) })
	if s.scrByID == nil {
		s.scrByID = make(map[int]NodeState, len(sorted))
	} else {
		clear(s.scrByID)
	}
	byID := s.scrByID
	for _, n := range sorted {
		byID[n.ID] = n
		if n.BEAllowed {
			delete(s.disabledSince, n.ID)
		} else if _, seen := s.disabledSince[n.ID]; !seen {
			s.disabledSince[n.ID] = now
		}
	}

	actions := s.scrActions[:0]

	// 1. Running jobs, in id order: progress, completion, eviction.
	for _, j := range s.jobs {
		if j.State != JobRunning {
			continue
		}
		node, present := byID[j.Node]
		if present {
			j.CPUSec = progress(j)
		}
		switch {
		case present && j.CPUSec >= j.Spec.Work.Seconds():
			s.acct.GoodCPUSec += j.CPUSec
			s.acct.Completed++
			j.State = JobCompleted
			j.FinishedAt = now
			actions = append(actions, Action{Kind: ActionComplete, Job: j.ID, Node: j.Node, Workload: j.Spec.Workload})
			s.record(Decision{At: now, Kind: ActionComplete, Job: j.ID, Node: j.Node,
				Detail: fmt.Sprintf("%.0f cpu-s in %d attempt(s)", j.CPUSec, j.Attempts)})
			j.Node = -1

		case !present || s.disabledTooLong(node.ID, now):
			reason := "node gone"
			if present {
				reason = fmt.Sprintf("controller disabled BE for >%v", s.cfg.EvictGrace)
			}
			s.evict(j, now, reason, &actions)
		}
	}

	// 2. Dispatch, priority order then submission order.
	views := s.nodeViews(sorted)
	pending := s.dispatchable(now)
	for _, j := range pending {
		eligible := s.eligibleFor(j, views)
		if len(eligible) == 0 {
			continue
		}
		pick := s.policy.Place(j, eligible, rng)
		if pick < 0 || pick >= len(eligible) {
			continue
		}
		chosen := eligible[pick]
		// Update bookkeeping through the backing views so later jobs in
		// this tick see the commitment.
		for vi := range views {
			if views[vi].ID == chosen.ID {
				views[vi].RunningJobs++
				views[vi].CommittedCores += j.Spec.Demand
			}
		}
		wait := now - j.ReadyAt
		if wait < 0 {
			wait = 0
		}
		s.acct.Dispatches++
		s.acct.QueueDelaySum += wait
		j.State = JobRunning
		j.Node = chosen.ID
		j.Attempts++
		j.StartedAt = now
		j.CPUSec = 0
		actions = append(actions, Action{Kind: ActionDispatch, Job: j.ID, Node: chosen.ID, Workload: j.Spec.Workload})
		s.record(Decision{At: now, Kind: ActionDispatch, Job: j.ID, Node: chosen.ID,
			Detail: fmt.Sprintf("%s attempt %d, slack=%.3f, waited %v", j.Spec.Workload, j.Attempts, chosen.Slack, wait)})
	}

	// 3. Depth accounting.
	depth, running := 0, 0
	for _, j := range s.jobs {
		switch j.State {
		case JobPending:
			if j.SubmittedAt <= now {
				depth++
			}
		case JobRunning:
			running++
		}
	}
	s.acct.QueueDepth = depth
	s.acct.Running = running
	if depth > s.acct.MaxQueueDepth {
		s.acct.MaxQueueDepth = depth
	}
	s.scrActions = actions // keep any growth for the next tick
	return actions
}

// disabledTooLong reports whether the node's controller has had BE
// disabled past the eviction grace.
func (s *Scheduler) disabledTooLong(node int, now time.Duration) bool {
	since, off := s.disabledSince[node]
	return off && now-since >= s.cfg.EvictGrace
}

// evict re-queues (or fails) a running job, discarding its accrued work.
func (s *Scheduler) evict(j *Job, now time.Duration, reason string, actions *[]Action) {
	node := j.Node
	j.WastedCPUSec += j.CPUSec
	s.acct.WastedCPUSec += j.CPUSec
	s.acct.Evictions++
	wasted := j.CPUSec
	j.CPUSec = 0
	j.Node = -1
	if j.Attempts > j.Spec.Retries {
		j.State = JobFailed
		j.FinishedAt = now
		s.acct.Failed++
		*actions = append(*actions, Action{Kind: ActionFail, Job: j.ID, Node: node, Workload: j.Spec.Workload})
		s.record(Decision{At: now, Kind: ActionFail, Job: j.ID, Node: node,
			Detail: fmt.Sprintf("%s; retry budget %d spent, %.0f cpu-s discarded", reason, j.Spec.Retries, wasted)})
		return
	}
	// Cap the exponent before shifting: the cap is 8x, so any shift
	// beyond 3 is equivalent — and an unclamped shift overflows the
	// duration for jobs with large retry budgets, which would come out
	// negative and abolish backoff entirely.
	shift := j.Attempts - 1
	if shift > 3 {
		shift = 3
	}
	backoff := s.cfg.Backoff << uint(shift)
	j.State = JobPending
	j.ReadyAt = now + backoff
	*actions = append(*actions, Action{Kind: ActionEvict, Job: j.ID, Node: node, Workload: j.Spec.Workload})
	s.record(Decision{At: now, Kind: ActionEvict, Job: j.ID, Node: node,
		Detail: fmt.Sprintf("%s; %.0f cpu-s discarded, retry in %v", reason, wasted, backoff)})
}

// nodeViews joins the node snapshots with the scheduler's running-job
// bookkeeping. The returned slice is tick scratch.
func (s *Scheduler) nodeViews(sorted []NodeState) []NodeView {
	views := s.scrViews[:0]
	for _, n := range sorted {
		views = append(views, NodeView{NodeState: n})
	}
	s.scrViews = views
	for _, j := range s.jobs {
		if j.State != JobRunning {
			continue
		}
		for vi := range views {
			if views[vi].ID == j.Node {
				views[vi].RunningJobs++
				views[vi].CommittedCores += j.Spec.Demand
			}
		}
	}
	return views
}

// dispatchable returns the queued jobs ready at now, highest priority
// first, submission order among equals. The returned slice is tick
// scratch.
func (s *Scheduler) dispatchable(now time.Duration) []*Job {
	out := s.scrPending[:0]
	for _, j := range s.jobs {
		if j.State == JobPending && j.SubmittedAt <= now && j.ReadyAt <= now {
			out = append(out, j)
		}
	}
	s.scrPending = out
	slices.SortStableFunc(out, func(a, b *Job) int {
		return cmp.Compare(b.Spec.Priority, a.Spec.Priority)
	})
	return out
}

// eligibleFor filters views down to machines that may accept the job:
// the controller allows BE, no burn-rate admission hold is up, and the
// summed core demand fits. This runs before any policy sees candidates,
// so the no-dispatch-while-disabled invariant holds for every policy,
// including future ones. The returned slice is tick scratch, overwritten
// by the next eligibleFor call; policies receive it for the duration of
// one Place call only.
func (s *Scheduler) eligibleFor(j *Job, views []NodeView) []NodeView {
	out := s.scrElig[:0]
	for _, v := range views {
		if !v.BEAllowed || v.AdmitHold {
			continue
		}
		if v.CommittedCores+j.Spec.Demand > v.MaxBECores {
			continue
		}
		out = append(out, v)
	}
	s.scrElig = out
	return out
}

// record appends to the bounded placement log (overwriting the oldest
// entry once full) and notifies the observer.
func (s *Scheduler) record(d Decision) {
	if len(s.log) < decisionCap {
		s.log = append(s.log, d)
	} else {
		s.log[s.logHead] = d
		s.logHead = (s.logHead + 1) % decisionCap
	}
	if s.onDecision != nil {
		s.onDecision(d)
	}
}
