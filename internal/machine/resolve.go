package machine

import (
	"time"

	"heracles/internal/cache"
	"heracles/internal/hw"
	"heracles/internal/lat"
	"heracles/internal/mem"
	"heracles/internal/netlink"
	"heracles/internal/workload"
)

// cacheLineBytes is the unit of DRAM traffic per LLC miss.
const cacheLineBytes = 64

// minLCActivity keeps LC cores counted as active for frequency resolution
// even at very low utilisation (they wake for every request).
const minLCActivity = 0.08

// htSiblingActivity is the power-activity contribution of a task running
// on the sibling hyperthread of an already-active core.
const htSiblingActivity = 0.6

// htCoreEfficiency is the relative work rate of a task confined to sibling
// hyperthreads of busy cores.
const htCoreEfficiency = 0.35

// rampPressureStart is the socket power fraction (of TDP) beyond which the
// power-ramp tail penalty starts to apply.
const rampPressureStart = 0.85

// sigmaLoadFactor scales the growth of service-time variability with
// per-core utilisation. Real serving tails are dominated by service-time
// stragglers well before queueing saturates, so the factor is large: the
// SLO is reached around 65-75% per-core occupancy, where sensitivity to
// service-time perturbations is roughly linear rather than cliff-like.
const sigmaLoadFactor = 1.6

// netOverloadPenalty converts unmet egress demand (fractional shortfall)
// into transmit-queue delay: a queue that receives 10% more than it drains
// builds up tens of milliseconds within a control epoch.
const netOverloadPenalty = 0.02 // seconds per unit shortfall

// netOverloadCap bounds the modelled transmit-queue delay.
const netOverloadCap = 1.0 // seconds

// rampFreqWindow is the frequency deficit (GHz below guaranteed) at which
// the power-ramp penalty reaches full strength.
const rampFreqWindow = 0.4

// Step resolves one epoch and returns its telemetry. The slices inside the
// returned Telemetry are owned by the machine's history ring and remain
// valid for the ring's depth (600 epochs); copy them to retain longer.
func (m *Machine) Step() Telemetry {
	cfg := m.cfg
	tc := cfg.TotalCores()
	dt := m.epoch
	sc := &m.scratch

	// Claim the ring slot this epoch will occupy, reusing its slices.
	slot := m.claimSlot()
	*slot = Telemetry{
		Time:           m.clock.Now() + dt,
		SocketPowerW:   zeroFloats(slot.SocketPowerW, cfg.Sockets),
		PerCoreDRAMGBs: zeroFloats(slot.PerCoreDRAMGBs, tc),
		DRAMSocketUtil: zeroFloats(slot.DRAMSocketUtil, cfg.Sockets),
	}
	tel := slot

	// --- 1. LC offered load and concurrency estimate -------------------
	var lambda float64
	var k int
	sPrev := m.lastService
	if m.lc != nil {
		lambda = m.lc.Load * m.lc.WL.PeakQPS
		k = len(m.lc.Cores)
		if m.lc.OSShared {
			k = tc
		}
		if sPrev <= 0 {
			sPrev = m.lc.WL.Spec.BaseService().Seconds()
		}
	}
	lcUtil := 0.0
	if k > 0 && sPrev > 0 {
		lcUtil = clamp01(lambda * sPrev / float64(k))
	}
	// The outstanding-request estimate (which scales per-request cache
	// footprints) uses the base service time, not the inflated one:
	// inflation feeding footprint feeding miss ratio feeding inflation
	// would be an unstable positive feedback loop with no real-world
	// counterpart at this timescale.
	outstanding := 0.0
	if m.lc != nil {
		outstanding = lambda * m.lc.WL.Spec.BaseService().Seconds()
	}

	// --- 2. Per-core activity and DVFS caps -----------------------------
	act := zeroFloats(sc.act, tc)
	caps := zeroFloats(sc.caps, tc)
	lcCoreSet := sc.lcCoreSet
	for c := range lcCoreSet {
		lcCoreSet[c] = false
	}
	if m.lc != nil && lambda > 0 {
		a := m.lc.WL.Spec.Activity * maxf(lcUtil, minLCActivity)
		if m.lc.OSShared {
			for c := 0; c < tc; c++ {
				act[c] += a
				lcCoreSet[c] = true
			}
		} else {
			for _, c := range m.lc.Cores {
				act[c] += a
				lcCoreSet[c] = true
			}
		}
	}
	for _, be := range m.bes {
		if !be.Enabled {
			continue
		}
		switch be.Placement {
		case workload.PlaceDedicated:
			for _, c := range be.Cores {
				act[c] += be.WL.Spec.Activity
				if be.FreqCapGHz > 0 {
					caps[c] = be.FreqCapGHz
				}
			}
		case workload.PlaceHTSibling:
			if m.lc != nil {
				for _, c := range m.lc.Cores {
					act[c] += htSiblingActivity * be.WL.Spec.Activity
				}
			}
		case workload.PlaceOSShared:
			for c := 0; c < tc; c++ {
				act[c] += be.WL.Spec.Activity * (1 - lcUtil)
			}
		}
	}

	// --- 3. Frequency/power resolution per socket -----------------------
	coreFreq := zeroFloats(sc.coreFreq, tc)
	var totalPower float64
	for s := 0; s < cfg.Sockets; s++ {
		loads := sc.loads
		for i := 0; i < cfg.CoresPerSocket; i++ {
			c := s*cfg.CoresPerSocket + i
			loads[i] = hw.CoreLoad{Activity: act[c], CapGHz: caps[c]}
		}
		res := cfg.ResolveFrequenciesInto(sc.freqs, loads)
		for i := 0; i < cfg.CoresPerSocket; i++ {
			coreFreq[s*cfg.CoresPerSocket+i] = res.FreqGHz[i]
		}
		tel.SocketPowerW[s] = res.PowerWatts
		totalPower += res.PowerWatts
		if f := res.PowerWatts / cfg.TDPWatts; f > tel.MaxSocketPower {
			tel.MaxSocketPower = f
		}
	}
	tel.PowerFracTDP = totalPower / cfg.TotalTDPWatts()

	lcFreq := 0.0
	lcFreqN := 0
	for c := 0; c < tc; c++ {
		if lcCoreSet[c] && coreFreq[c] > 0 {
			if lcFreq == 0 || coreFreq[c] < lcFreq {
				lcFreq = coreFreq[c]
			}
			lcFreqN++
		}
	}
	if lcFreqN == 0 {
		lcFreq = cfg.TurboLimitGHz(1) // idle LC would wake into max turbo
	}
	tel.LCFreqGHz = lcFreq
	lcFreqRel := lcFreq / cfg.NominalGHz

	var beFreqSum float64
	var beFreqN int
	for _, be := range m.bes {
		if !be.Enabled || be.Placement != workload.PlaceDedicated {
			continue
		}
		for _, c := range be.Cores {
			if coreFreq[c] > 0 {
				beFreqSum += coreFreq[c]
				beFreqN++
			}
		}
	}
	if beFreqN > 0 {
		tel.BEFreqGHz = beFreqSum / float64(beFreqN)
	}

	// --- 4. LLC occupancy per socket ------------------------------------
	// Demand order per socket: index 0 is the LC task, then BE tasks in
	// installation order.
	solver := cache.Solver{WayMB: cfg.WayMB(), Ways: cfg.LLCWays}
	nTasks := 1 + len(m.bes)
	m.ensureScratch(nTasks)
	missRate := zeroFloats(sc.missRate, nTasks) // misses/s per task, all sockets
	accRate := zeroFloats(sc.accRate, nTasks)   // accesses/s per task
	missBySocket := sc.missBySocket
	var lcRefMiss, lcRefAcc float64

	lcMask := cache.FullMask(cfg.LLCWays)
	if m.lc != nil && m.lc.Ways > 0 {
		lcMask = cache.MaskOfWays(cfg.LLCWays-m.lc.Ways, m.lc.Ways)
	}
	loadScale := 1.0
	if m.lc != nil && m.lc.WL.Spec.RefOutstanding > 0 {
		loadScale = maxf(outstanding/m.lc.WL.Spec.RefOutstanding, 0.05)
	}

	for s := 0; s < cfg.Sockets; s++ {
		missBySocket[s] = zeroFloats(missBySocket[s], nTasks)
		demands := sc.demands[:0]
		idx := sc.demandIdx[:0]

		if m.lc != nil && lambda > 0 {
			share := socketShare(cfg, m.lc.Cores, m.lc.OSShared, s, k)
			if share > 0 {
				demands = append(demands, cache.Demand{
					AccessRate: lambda * m.lc.WL.Spec.AccessesPerReq * share,
					Components: m.lc.WL.Spec.CacheComponents,
					WayMask:    lcMask,
					LoadScale:  loadScale,
				})
				idx = append(idx, 0)
			}
		}
		for bi, be := range m.bes {
			if !be.Enabled || be.WL.Spec.AccessRatePerCore <= 0 {
				continue
			}
			var n float64
			switch be.Placement {
			case workload.PlaceDedicated:
				n = float64(coresOnSocket(cfg, be.Cores, s))
			case workload.PlaceHTSibling:
				if m.lc != nil {
					n = float64(coresOnSocket(cfg, m.lc.Cores, s)) * htCoreEfficiency
				}
			case workload.PlaceOSShared:
				n = float64(cfg.CoresPerSocket) * (1 - lcUtil)
			}
			if n <= 0 {
				continue
			}
			mask := cache.FullMask(cfg.LLCWays)
			if be.Ways > 0 {
				mask = cache.MaskOfWays(0, be.Ways)
			}
			demands = append(demands, cache.Demand{
				AccessRate: be.WL.Spec.AccessRatePerCore * n,
				Components: be.WL.Spec.CacheComponents,
				WayMask:    mask,
			})
			idx = append(idx, 1+bi)
		}
		sc.demands, sc.demandIdx = demands, idx
		if len(demands) == 0 {
			continue
		}
		shares := solver.ResolveScratch(&sc.cacheSc, demands)
		for i, sh := range shares {
			missRate[idx[i]] += sh.MissRate
			accRate[idx[i]] += demands[i].AccessRate
			missBySocket[s][idx[i]] = sh.MissRate
		}

		// Reference solve: the LC task alone with the whole cache, same
		// load. The ratio of actual to reference miss ratio isolates the
		// interference-induced part of the memory stall.
		if m.lc != nil && lambda > 0 {
			share := socketShare(cfg, m.lc.Cores, m.lc.OSShared, s, k)
			if share > 0 {
				sc.refDemand[0] = cache.Demand{
					AccessRate: lambda * m.lc.WL.Spec.AccessesPerReq * share,
					Components: m.lc.WL.Spec.CacheComponents,
					WayMask:    cache.FullMask(cfg.LLCWays),
					LoadScale:  loadScale,
				}
				ref := solver.ResolveScratch(&sc.cacheSc, sc.refDemand[:])
				lcRefMiss += ref[0].MissRate
				lcRefAcc += lambda * m.lc.WL.Spec.AccessesPerReq * share
			}
		}
	}

	// --- 5. DRAM bandwidth per socket ------------------------------------
	dramInfl := zeroFloats(sc.dramInfl, cfg.Sockets)
	achievedBW := zeroFloats(sc.achievedBW, nTasks)
	demandBW := zeroFloats(sc.demandBW, nTasks)
	var lcInflNum, lcInflDen float64
	for s := 0; s < cfg.Sockets; s++ {
		demands := zeroFloats(sc.memDemands, nTasks)
		for t := 0; t < nTasks; t++ {
			demands[t] = missBySocket[s][t] * cacheLineBytes / 1e9
		}
		res := mem.ResolveInto(sc.memAchieved, cfg.DRAMGBs, demands)
		dramInfl[s] = res.Inflation
		for t := 0; t < nTasks; t++ {
			achievedBW[t] += res.AchievedGBs[t]
			demandBW[t] += demands[t]
		}
		tel.DRAMSocketUtil[s] = res.Utilisation
		tel.DRAMTotalGBs += res.TotalGBs
		tel.DRAMDemandGBs += res.DemandGBs
		// LC inflation is weighted by where its misses go.
		lcInflNum += demands[0] * res.Inflation
		lcInflDen += demands[0]
	}
	tel.DRAMUtil = tel.DRAMTotalGBs / cfg.TotalDRAMGBs()
	lcDramInfl := 1.0
	if lcInflDen > 0 {
		lcDramInfl = lcInflNum / lcInflDen
	} else if m.lc != nil {
		// No LC misses this epoch; it still observes the busiest socket
		// it has cores on.
		for s := 0; s < cfg.Sockets; s++ {
			if coresOnSocket(cfg, m.lc.Cores, s) > 0 && dramInfl[s] > lcDramInfl {
				lcDramInfl = dramInfl[s]
			}
		}
	}
	tel.LCDRAMGBs = achievedBW[0]
	for t := 1; t < nTasks; t++ {
		tel.BEDRAMGBs += achievedBW[t]
	}

	// Per-core bandwidth counters: a task's achieved bandwidth spread
	// evenly over its cores (the NUMA-local traffic counters of §4.3).
	if m.lc != nil && len(m.lc.Cores) > 0 {
		per := achievedBW[0] / float64(len(m.lc.Cores))
		for _, c := range m.lc.Cores {
			tel.PerCoreDRAMGBs[c] += per
		}
	}
	for bi, be := range m.bes {
		if !be.Enabled || len(be.Cores) == 0 {
			continue
		}
		per := achievedBW[1+bi] / float64(len(be.Cores))
		for _, c := range be.Cores {
			tel.PerCoreDRAMGBs[c] += per
		}
	}

	// --- 6. Network egress ------------------------------------------------
	link := cfg.LinkGBs()
	var lcNetDemand float64
	lcFlows := 1
	if m.lc != nil {
		lcNetDemand = lambda * m.lc.WL.Spec.BytesPerReq / 1e9
		if m.lc.WL.Spec.Flows > 0 {
			lcFlows = m.lc.WL.Spec.Flows
		}
	}
	var beNetDemand float64
	beFlows := 0
	for _, be := range m.bes {
		if !be.Enabled {
			continue
		}
		beNetDemand += be.WL.Spec.NetDemandGBs
		beFlows += be.WL.Spec.NetFlows
	}
	sc.netClasses[0] = netlink.Class{DemandGBs: lcNetDemand, Flows: lcFlows}
	sc.netClasses[1] = netlink.Class{DemandGBs: beNetDemand, Flows: beFlows, CeilGBs: m.beNetCeilGBs}
	netRes := netlink.ResolveInto(sc.netAchieved[:], &sc.netSc, link, sc.netClasses[:])
	tel.LCTxGBs = netRes.AchievedGBs[0]
	tel.BETxGBs = netRes.AchievedGBs[1]
	tel.LinkUtil = netRes.Utilisation
	lcNetInfl := netlink.Inflation(lcNetDemand, netRes.AchievedGBs[0], netRes.Utilisation)

	// --- 7. LC service parameters and latency ----------------------------
	var es lat.EpochStats
	if m.lc != nil && lambda > 0 {
		spec := m.lc.WL.Spec

		htFactor := 1.0
		osShared := m.lc.OSShared
		for _, be := range m.bes {
			if !be.Enabled {
				continue
			}
			if be.Placement == workload.PlaceHTSibling {
				htFactor += be.WL.Spec.HTPenalty
			}
			if be.Placement == workload.PlaceOSShared {
				osShared = true
				htFactor += 0.05 // incidental same-thread interference
			}
		}

		cpu := spec.CPUTime.Seconds() / lcFreqRel * htFactor

		missRatio := 0.0
		if accRate[0] > 0 {
			missRatio = missRate[0] / accRate[0]
		}
		refRatio := missRatio
		if lcRefAcc > 0 {
			refRatio = lcRefMiss / lcRefAcc
		}
		memScale := 1.0
		if refRatio > 0 {
			memScale = missRatio / refRatio
		}
		memT := spec.MemTime.Seconds() * memScale * lcDramInfl

		// Per-leaf degradation (scenario events): a slow server does every
		// unit of request work more slowly, so both components inflate.
		if m.degrade > 1 {
			cpu *= m.degrade
			memT *= m.degrade
		}

		netT := 0.0
		if spec.BytesPerReq > 0 {
			netT = spec.BytesPerReq / 1e9 / link * lcNetInfl
			// Starved egress builds an unbounded transmit queue; model a
			// steep finite delay proportional to the shortfall (§3.3:
			// memkeyval "is completely overrun by the many small 'mice'
			// flows of the antagonist").
			if ach := netRes.AchievedGBs[0]; lcNetDemand > ach && ach > 0 {
				buildup := netOverloadPenalty * (lcNetDemand/ach - 1) * 10
				if buildup > netOverloadCap {
					buildup = netOverloadCap
				}
				netT += buildup
			}
		}

		// Power-ramp tail penalty: package near TDP while LC cores are
		// mostly idle AND running below their guaranteed frequency (§3.3,
		// power interference at low utilisation; §4.3, the power
		// subcontroller's twin conditions). The penalty grows with the
		// frequency deficit, so shifting power back to the LC cores (per-
		// core DVFS on the BE cores) relieves it smoothly. It never fires
		// when the workload runs alone because the frequency stays at or
		// above the guaranteed level.
		ramp := 0.0
		if g := m.lc.WL.GuaranteedGHz; g > 0 && lcFreq < g {
			pressure := clamp01((tel.MaxSocketPower - rampPressureStart) / (1 - rampPressureStart))
			deficit := clamp01((g - lcFreq) / rampFreqWindow)
			if pressure > 0 && deficit > 0 {
				ramp = spec.RampPenalty.Seconds() * pressure * deficit * (1 - lcUtil)
			}
		}
		// CFS scheduling-delay tail in the OS-shared configuration: delays
		// grow with load as runnable BE threads collide with LC request
		// processing more often.
		osAdd := 0.0
		if osShared {
			for _, be := range m.bes {
				if be.Enabled && be.Placement == workload.PlaceOSShared {
					osAdd = spec.OSSharedPenalty.Seconds() * (0.4 + 1.2*m.lc.Load)
					break
				}
			}
		}

		// Service-time variability grows with per-core utilisation: bursty
		// arrivals, interrupts and scheduling jitter make tails degrade
		// well before saturation on real servers (this also gives the
		// controller a gradual slack signal rather than a cliff).
		rhoEst := clamp01(lambda * (cpu + memT) / float64(k))
		sigmaEff := spec.Sigma * (1 + sigmaLoadFactor*rhoEst)

		params := lat.ServiceParams{
			Mean:     time.Duration((cpu + memT) * float64(time.Second)),
			Sigma:    sigmaEff,
			NetTime:  time.Duration(netT * float64(time.Second)),
			TailAdd:  time.Duration((ramp + osAdd) * float64(time.Second)),
			TailProb: 0.2,
		}
		es = m.engine.Epoch(params, lambda, k, dt)
		m.lastService = cpu + memT
		tel.TailLatency = es.Quantile(spec.SLOQuantile)
	}
	tel.Lat = es
	if m.lc != nil {
		tel.LCLoad = m.lc.Load
		tel.LCCores = len(m.lc.Cores)
		tel.LCWays = m.lc.Ways
		if m.lc.WL.PeakQPS > 0 {
			tel.LCServed = es.ServedQPS / m.lc.WL.PeakQPS
		}
	}

	// --- 8. BE throughput -------------------------------------------------
	dtSec := dt.Seconds()
	var busyBECores float64
	for bi, be := range m.bes {
		be.LastRate, be.LastNorm = 0, 0
		if !be.Enabled {
			continue
		}
		spec := be.WL.Spec
		ti := 1 + bi

		if spec.NetworkBound {
			// Useful output is egress bandwidth; share the BE class
			// proportionally to demand.
			rate := 0.0
			if beNetDemand > 0 {
				rate = tel.BETxGBs * spec.NetDemandGBs / beNetDemand
			}
			be.LastRate = rate
			if be.WL.AloneRate > 0 {
				be.LastNorm = rate / be.WL.AloneRate
			}
			if len(be.Cores) > 0 {
				busyBECores += float64(len(be.Cores))
				be.CPUSec += float64(len(be.Cores)) * dtSec
			}
			tel.BERateNorm += be.LastNorm
			continue
		}

		var eqCores, freqRel float64
		switch be.Placement {
		case workload.PlaceDedicated:
			eqCores = float64(len(be.Cores))
			var fsum float64
			for _, c := range be.Cores {
				fsum += coreFreq[c]
			}
			if eqCores > 0 {
				freqRel = fsum / eqCores / cfg.NominalGHz
			}
			busyBECores += eqCores
		case workload.PlaceHTSibling:
			if m.lc != nil {
				eqCores = float64(len(m.lc.Cores)) * htCoreEfficiency
			}
			freqRel = lcFreqRel
		case workload.PlaceOSShared:
			eqCores = float64(tc) * (1 - lcUtil) * 0.9
			freqRel = 1
			busyBECores += eqCores
		}
		// Busy core-seconds accrue for any occupied cores, even when the
		// achieved rate rounds to zero — occupancy, not usefulness, is what
		// the eviction-waste accounting measures.
		be.CPUSec += eqCores * dtSec
		if eqCores <= 0 || freqRel <= 0 {
			continue
		}

		hit := 0.0
		if accRate[ti] > 0 {
			hit = 1 - missRate[ti]/accRate[ti]
		}
		be.LastHit = hit
		// Cache-size effect: more misses per unit of work than when
		// running alone slows the memory-bound fraction proportionally.
		// Bandwidth saturation is applied separately as a throughput cap,
		// not compounded into the stall (a throughput-bound streamer's
		// rate is simply its achieved bandwidth).
		refHit := be.WL.AloneHit
		stall := 1.0
		if refHit > 0 && refHit < 1 && hit < 1 {
			stall = (1 - hit) / (1 - refHit)
		}
		rate := eqCores * freqRel / (spec.CPUFrac + spec.MemFrac*stall)
		if demandBW[ti] > 0 && achievedBW[ti] < demandBW[ti] {
			rate *= achievedBW[ti] / demandBW[ti]
		}
		be.LastRate = rate
		if be.WL.AloneRate > 0 {
			be.LastNorm = rate / be.WL.AloneRate
		}
		tel.BERateNorm += be.LastNorm
	}

	// --- 9. Utilisation accounting ---------------------------------------
	lcBusy := float64(k) * es.Utilisation
	tel.CPUUtil = clamp01((lcBusy + busyBECores) / float64(tc))
	tel.BEEnabled = m.BEEnabled()
	tel.BEGoodCPUSec = m.beGoodCPUSec
	tel.BELostCPUSec = m.beLostCPUSec
	tel.BECores = m.BECoreCount()
	tel.BEWays = m.BEWayCount()
	tel.BEFreqCap = m.BEFreqCap()
	tel.EMU = nanToZero(minf(tel.LCServed, m.Load())) + tel.BERateNorm
	if m.lc != nil && lambda > 0 && tel.LCServed <= 0 {
		tel.EMU = tel.BERateNorm
	}

	m.clock.Advance(dt)
	m.tel = *tel
	return *tel
}

// claimSlot returns the ring slot the next epoch should fill, advancing the
// ring. Slot slices are reused in place once the ring has filled.
func (m *Machine) claimSlot() *Telemetry {
	if m.recentN < m.recentMax {
		if m.recentN == len(m.recent) {
			m.recent = append(m.recent, Telemetry{})
		}
		slot := &m.recent[m.recentN]
		m.recentN++
		return slot
	}
	slot := &m.recent[m.head]
	m.head = (m.head + 1) % m.recentMax
	return slot
}

// zeroFloats returns buf resized to n (growing only when capacity is
// insufficient) with every element zeroed.
func zeroFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// RunFor advances the machine by d, stepping epoch by epoch, and returns
// the telemetry of the final epoch.
func (m *Machine) RunFor(d time.Duration) Telemetry {
	steps := int(d / m.epoch)
	if steps < 1 {
		steps = 1
	}
	var t Telemetry
	for i := 0; i < steps; i++ {
		t = m.Step()
	}
	return t
}

// socketShare returns the fraction of the LC task's work executing on
// socket s.
func socketShare(cfg hw.Config, cores []int, osShared bool, s, k int) float64 {
	if osShared {
		return 1 / float64(cfg.Sockets)
	}
	if k <= 0 {
		return 0
	}
	return float64(coresOnSocket(cfg, cores, s)) / float64(k)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
