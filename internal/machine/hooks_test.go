package machine

import (
	"testing"

	"heracles/internal/hw"
	"heracles/internal/workload"
)

func TestSetDegradeInflatesServiceTime(t *testing.T) {
	cfg := hw.DefaultConfig()
	wl := CalibrateLC(cfg, SpecOf(workload.Websearch()))

	run := func(factor float64) float64 {
		m := New(cfg)
		m.SetLC(wl)
		m.SetLoad(0.4)
		m.SetDegrade(factor)
		var tail float64
		for i := 0; i < 8; i++ {
			tail = m.Step().TailLatency.Seconds()
		}
		return tail
	}

	healthy := run(1)
	slow := run(1.5)
	slower := run(2.0)
	if slow <= healthy {
		t.Fatalf("degrade 1.5x did not slow the LC task: %v vs %v", slow, healthy)
	}
	if slower <= slow {
		t.Fatalf("degrade not monotone: %v (2.0x) vs %v (1.5x)", slower, slow)
	}
	// Factors at or below 1 clear the degradation.
	m := New(cfg)
	m.SetDegrade(1.7)
	m.SetDegrade(0.5)
	if m.Degrade() != 1 {
		t.Fatalf("degrade not cleared: %v", m.Degrade())
	}
}

func TestRemoveBEReturnsCoresToLC(t *testing.T) {
	cfg := hw.DefaultConfig()
	lc := CalibrateLC(cfg, SpecOf(workload.Websearch()))
	brain := CalibrateBE(cfg, workload.Brain())
	sview := CalibrateBE(cfg, workload.Streetview())

	m := New(cfg)
	m.SetLC(lc)
	a := m.AddBE(brain, workload.PlaceDedicated)
	b := m.AddBE(sview, workload.PlaceDedicated)
	m.Partition(8)
	if got := m.BECoreCount(); got != 8 {
		t.Fatalf("BE cores = %d, want 8", got)
	}

	aCores := len(a.Cores)
	m.RemoveBE(a)
	if len(m.BEs()) != 1 || m.BEs()[0] != b {
		t.Fatalf("RemoveBE left %d tasks", len(m.BEs()))
	}
	if got := m.BECoreCount(); got != 8-aCores {
		t.Fatalf("BE cores after removal = %d, want %d", got, 8-aCores)
	}
	// Redistribute: the survivor gets the remaining grant, LC the rest.
	m.Partition(m.BECoreCount())
	total := cfg.TotalCores()
	if got := len(m.LC().Cores) + len(b.Cores); got != total {
		t.Fatalf("cores leaked: LC %d + BE %d != %d", len(m.LC().Cores), len(b.Cores), total)
	}

	// Removing a task that is not installed is a no-op.
	m.RemoveBE(a)
	if len(m.BEs()) != 1 {
		t.Fatal("double remove corrupted the task list")
	}
}
