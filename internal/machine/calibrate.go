package machine

import (
	"fmt"
	"time"

	"heracles/internal/hw"
	"heracles/internal/workload"
)

// CalibrateLC turns an LC spec into a calibrated workload instance on the
// given hardware:
//
//   - SLO: SLOMultiplier times the unloaded tail latency, matching the
//     slack structure Figure 4 of the paper implies (unloaded websearch and
//     ml_cluster run at ~40% slack, memkeyval at ~80%).
//   - PeakQPS: the largest arrival rate whose tail latency still meets the
//     SLO when the workload owns the whole machine ("100% load" in every
//     figure of the paper).
//   - GuaranteedGHz: the frequency the workload sustains alone at peak
//     load, which the power subcontroller defends (Algorithm 3).
//
// Calibration uses the deterministic analytic engine regardless of the
// engine the caller will use for experiments.
func CalibrateLC(cfg hw.Config, spec LCSpecSource) *workload.LC {
	s := spec.LCSpec()
	wl := &workload.LC{Spec: s}

	probe := func(qps float64, wl *workload.LC) (time.Duration, Telemetry) {
		m := New(cfg)
		m.SetLC(wl)
		if wl.PeakQPS > 0 {
			m.SetLoad(qps / wl.PeakQPS)
		}
		var t Telemetry
		// A handful of epochs lets the concurrency estimate settle.
		for i := 0; i < 6; i++ {
			t = m.Step()
		}
		return t.TailLatency, t
	}

	// Unloaded tail latency: probe at a small fraction of the rough
	// capacity k/S.
	k := float64(cfg.TotalCores())
	base := s.BaseService().Seconds()
	roughCap := k / base
	wl.PeakQPS = roughCap // temporary so SetLoad has a denominator
	unloaded, _ := probe(0.02*roughCap, wl)
	wl.SLO = time.Duration(float64(unloaded) * s.SLOMultiplier)

	// Peak QPS: bisect the largest load meeting the SLO.
	lo, hi := 0.02*roughCap, 1.2*roughCap
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		tail, _ := probe(mid, wl)
		if tail <= wl.SLO {
			lo = mid
		} else {
			hi = mid
		}
	}
	wl.PeakQPS = lo

	_, t := probe(lo, wl)
	wl.GuaranteedGHz = t.LCFreqGHz
	// The guaranteed frequency is the all-core sustained operating point;
	// clamp near nominal so transient turbo headroom at calibration time
	// does not become an unsatisfiable guarantee under colocation.
	if max := cfg.NominalGHz + 0.1; wl.GuaranteedGHz > max {
		wl.GuaranteedGHz = max
	}
	return wl
}

// LCSpecSource lets CalibrateLC accept either a bare spec or anything that
// can produce one.
type LCSpecSource interface{ LCSpec() workload.LCSpec }

// LCSpec implements LCSpecSource for workload.LCSpec itself via the
// SpecOf adapter.
type specAdapter struct{ s workload.LCSpec }

func (a specAdapter) LCSpec() workload.LCSpec { return a.s }

// SpecOf adapts a workload.LCSpec to the LCSpecSource interface.
func SpecOf(s workload.LCSpec) LCSpecSource { return specAdapter{s} }

// CalibrateBE measures a BE spec running alone on the machine (all cores,
// full cache, no frequency caps, no HTB ceiling) and returns the
// calibrated instance whose AloneRate normalises EMU accounting.
func CalibrateBE(cfg hw.Config, spec workload.BESpec) *workload.BE {
	wl := &workload.BE{Spec: spec}
	m := New(cfg)
	be := m.AddBE(wl, workload.PlaceDedicated)
	be.Cores = coreRange(0, cfg.TotalCores())
	for i := 0; i < 4; i++ {
		m.Step()
	}
	wl.AloneRate = be.LastRate
	wl.AloneHit = be.LastHit
	if wl.AloneRate <= 0 {
		panic(fmt.Sprintf("machine: BE %q calibrated to zero alone-rate", spec.Name))
	}
	return wl
}
