package machine

import (
	"fmt"
	"time"

	"heracles/internal/hw"
	"heracles/internal/sim"
	"heracles/internal/workload"
)

// Snapshot is the machine's complete serializable state: every field a
// restored machine needs to continue a run bit-identically to one that
// was never interrupted. Workloads travel by name — calibrated LC/BE
// objects are environment, not state, and the restoring side resolves
// them against its own catalogue (the same convention scenario events
// use). The telemetry ring travels oldest-first so the controller's
// windowed TailLatency polls see exactly the history they would have.
//
// Snapshots assume the default analytic latency engine, which is
// stateless; a machine built with machine.WithEngine(lat.NewDES(...))
// carries queue state the snapshot does not capture.
type Snapshot struct {
	HW    hw.Config     `json:"hw"`
	Epoch time.Duration `json:"epoch_ns"`
	Now   time.Duration `json:"now_ns"`

	LC  *LCSnapshot  `json:"lc,omitempty"`
	BEs []BESnapshot `json:"bes,omitempty"`

	BENetCeilGBs float64 `json:"be_net_ceil_gbs,omitempty"`
	SLOScale     float64 `json:"slo_scale,omitempty"`
	Degrade      float64 `json:"degrade,omitempty"`
	BEGoodCPUSec float64 `json:"be_good_cpu_s,omitempty"`
	BELostCPUSec float64 `json:"be_lost_cpu_s,omitempty"`
	LastService  float64 `json:"last_service_s,omitempty"`

	Recent []Telemetry `json:"recent,omitempty"`
}

// LCSnapshot is the serialized latency-critical task.
type LCSnapshot struct {
	Workload string  `json:"workload"`
	Load     float64 `json:"load"`
	Cores    []int   `json:"cores"`
	Ways     int     `json:"ways,omitempty"`
	OSShared bool    `json:"os_shared,omitempty"`
}

// BESnapshot is one serialized best-effort task.
type BESnapshot struct {
	Workload   string                 `json:"workload"`
	Placement  workload.PlacementKind `json:"placement"`
	Enabled    bool                   `json:"enabled"`
	Cores      []int                  `json:"cores,omitempty"`
	Ways       int                    `json:"ways,omitempty"`
	FreqCapGHz float64                `json:"freq_cap_ghz,omitempty"`
	LastRate   float64                `json:"last_rate,omitempty"`
	LastNorm   float64                `json:"last_norm,omitempty"`
	LastHit    float64                `json:"last_hit,omitempty"`
	CPUSec     float64                `json:"cpu_s,omitempty"`
}

// Snapshot captures the machine's state. Every slice is deep-copied, so
// the snapshot stays valid while the machine continues to step (the ring
// reuses its slots in place).
func (m *Machine) Snapshot() Snapshot {
	s := Snapshot{
		HW:           m.cfg,
		Epoch:        m.epoch,
		Now:          m.clock.Now(),
		BENetCeilGBs: m.beNetCeilGBs,
		SLOScale:     m.sloScale,
		Degrade:      m.degrade,
		BEGoodCPUSec: m.beGoodCPUSec,
		BELostCPUSec: m.beLostCPUSec,
		LastService:  m.lastService,
	}
	if m.lc != nil {
		s.LC = &LCSnapshot{
			Workload: m.lc.WL.Spec.Name,
			Load:     m.lc.Load,
			Cores:    append([]int(nil), m.lc.Cores...),
			Ways:     m.lc.Ways,
			OSShared: m.lc.OSShared,
		}
	}
	for _, be := range m.bes {
		s.BEs = append(s.BEs, BESnapshot{
			Workload:   be.WL.Spec.Name,
			Placement:  be.Placement,
			Enabled:    be.Enabled,
			Cores:      append([]int(nil), be.Cores...),
			Ways:       be.Ways,
			FreqCapGHz: be.FreqCapGHz,
			LastRate:   be.LastRate,
			LastNorm:   be.LastNorm,
			LastHit:    be.LastHit,
			CPUSec:     be.CPUSec,
		})
	}
	s.Recent = make([]Telemetry, m.recentN)
	backing := make([]float64, 0, m.recentFloats())
	for j := 0; j < m.recentN; j++ {
		s.Recent[j], backing = cloneTelemetryPacked(m.telAt(j), backing)
	}
	return s
}

// recentFloats sums the inner float-slice lengths across the telemetry
// ring, sizing the packed clone's single backing array.
func (m *Machine) recentFloats() int {
	total := 0
	for j := 0; j < m.recentN; j++ {
		t := m.telAt(j)
		total += len(t.SocketPowerW) + len(t.DRAMSocketUtil) + len(t.PerCoreDRAMGBs)
	}
	return total
}

// cloneTelemetryPacked deep-copies one ring entry, carving the inner
// float slices out of a shared backing array instead of allocating three
// slices per entry — a 600-entry ring would otherwise cost ~1800
// allocations per snapshot (and again per restore). backing must have
// been sized by recentFloats (or equivalent) so the appends never grow.
func cloneTelemetryPacked(t *Telemetry, backing []float64) (Telemetry, []float64) {
	out := *t
	out.SocketPowerW, backing = packFloats(t.SocketPowerW, backing)
	out.DRAMSocketUtil, backing = packFloats(t.DRAMSocketUtil, backing)
	out.PerCoreDRAMGBs, backing = packFloats(t.PerCoreDRAMGBs, backing)
	return out, backing
}

// packFloats appends src to backing and returns the capacity-clamped
// subslice holding the copy (nil for an empty src, matching the old
// per-entry clone's JSON shape). The three-index slice keeps a later
// in-place resize of one entry from bleeding into its neighbours.
func packFloats(src, backing []float64) ([]float64, []float64) {
	if len(src) == 0 {
		return nil, backing
	}
	n := len(backing)
	backing = append(backing, src...)
	return backing[n : n+len(src) : n+len(src)], backing
}

// RestoreMachine rebuilds a machine from a snapshot. lcByName and
// beByName resolve the snapshot's workload names against the caller's
// calibrated catalogue; a resolver returning nil for a referenced name is
// an error. The restored machine steps bit-identically to the one the
// snapshot was taken from.
func RestoreMachine(s Snapshot, lcByName func(string) *workload.LC, beByName func(string) *workload.BE, opts ...Option) (*Machine, error) {
	if err := s.HW.Validate(); err != nil {
		return nil, fmt.Errorf("machine: snapshot hardware config: %w", err)
	}
	epoch := s.Epoch
	if epoch <= 0 {
		epoch = time.Second
	}
	m := New(s.HW, append([]Option{WithEpoch(epoch)}, opts...)...)
	m.clock = sim.NewClock(s.Now)

	if s.LC != nil {
		var wl *workload.LC
		if lcByName != nil {
			wl = lcByName(s.LC.Workload)
		}
		if wl == nil {
			return nil, fmt.Errorf("machine: snapshot references unknown LC workload %q", s.LC.Workload)
		}
		lc := m.SetLC(wl)
		lc.Load = s.LC.Load
		lc.Cores = append([]int(nil), s.LC.Cores...)
		lc.Ways = s.LC.Ways
		lc.OSShared = s.LC.OSShared
	}
	for _, bs := range s.BEs {
		var wl *workload.BE
		if beByName != nil {
			wl = beByName(bs.Workload)
		}
		if wl == nil {
			return nil, fmt.Errorf("machine: snapshot references unknown BE workload %q", bs.Workload)
		}
		be := m.AddBE(wl, bs.Placement)
		be.Enabled = bs.Enabled
		be.Cores = append([]int(nil), bs.Cores...)
		be.Ways = bs.Ways
		be.FreqCapGHz = bs.FreqCapGHz
		be.LastRate = bs.LastRate
		be.LastNorm = bs.LastNorm
		be.LastHit = bs.LastHit
		be.CPUSec = bs.CPUSec
	}

	m.beNetCeilGBs = s.BENetCeilGBs
	m.sloScale = s.SLOScale
	m.degrade = s.Degrade
	m.beGoodCPUSec = s.BEGoodCPUSec
	m.beLostCPUSec = s.BELostCPUSec
	m.lastService = s.LastService

	// Rebuild the telemetry ring oldest-first with head 0: logically
	// identical to the source ring for every telAt/TailLatency read, and
	// claimSlot keeps the same reuse behaviour once it wraps.
	if n := len(s.Recent); n > 0 {
		if n > m.recentMax {
			s.Recent = s.Recent[n-m.recentMax:]
			n = m.recentMax
		}
		total := 0
		for j := range s.Recent {
			t := &s.Recent[j]
			total += len(t.SocketPowerW) + len(t.DRAMSocketUtil) + len(t.PerCoreDRAMGBs)
		}
		m.recent = make([]Telemetry, n)
		backing := make([]float64, 0, total)
		for j := range s.Recent {
			m.recent[j], backing = cloneTelemetryPacked(&s.Recent[j], backing)
		}
		m.recentN = n
		m.head = 0
		m.tel = m.recent[n-1]
	}
	return m, nil
}
