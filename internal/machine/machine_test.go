package machine

import (
	"sync"
	"testing"
	"time"

	"heracles/internal/hw"
	"heracles/internal/workload"
)

// Calibration is relatively expensive; share calibrated workloads across
// tests in this package.
var (
	calOnce sync.Once
	calLC   map[string]*workload.LC
	calBE   map[string]*workload.BE
)

func calibrated(t *testing.T) (map[string]*workload.LC, map[string]*workload.BE) {
	t.Helper()
	calOnce.Do(func() {
		cfg := hw.DefaultConfig()
		calLC = map[string]*workload.LC{}
		calBE = map[string]*workload.BE{}
		for _, s := range workload.LCSpecs() {
			calLC[s.Name] = CalibrateLC(cfg, SpecOf(s))
		}
		for _, s := range workload.BESpecs() {
			calBE[s.Name] = CalibrateBE(cfg, s)
		}
	})
	return calLC, calBE
}

func TestCalibrationInvariants(t *testing.T) {
	lcs, _ := calibrated(t)
	for name, wl := range lcs {
		if wl.SLO <= 0 {
			t.Fatalf("%s: SLO %v", name, wl.SLO)
		}
		if wl.PeakQPS <= 0 {
			t.Fatalf("%s: peak %v", name, wl.PeakQPS)
		}
		cfg := hw.DefaultConfig()
		if wl.GuaranteedGHz < cfg.MinGHz || wl.GuaranteedGHz > cfg.MaxTurboGHz {
			t.Fatalf("%s: guaranteed %v", name, wl.GuaranteedGHz)
		}
	}
}

func TestCalibrationMatchesPaperScales(t *testing.T) {
	lcs, _ := calibrated(t)
	// §3.1: websearch/ml_cluster SLOs are tens of milliseconds; memkeyval
	// is a few hundred microseconds with peak throughput in the hundreds
	// of thousands of QPS.
	ws := lcs["websearch"]
	if ws.SLO < 10*time.Millisecond || ws.SLO > 100*time.Millisecond {
		t.Fatalf("websearch SLO %v", ws.SLO)
	}
	mk := lcs["memkeyval"]
	if mk.SLO < 100*time.Microsecond || mk.SLO > time.Millisecond {
		t.Fatalf("memkeyval SLO %v", mk.SLO)
	}
	if mk.PeakQPS < 1e5 {
		t.Fatalf("memkeyval peak %v, want hundreds of thousands", mk.PeakQPS)
	}
}

func TestPeakLoadMeetsSLO(t *testing.T) {
	lcs, _ := calibrated(t)
	for name, wl := range lcs {
		m := New(hw.DefaultConfig())
		m.SetLC(wl)
		m.SetLoad(1.0)
		var tel Telemetry
		for i := 0; i < 8; i++ {
			tel = m.Step()
		}
		if tel.TailLatency > time.Duration(float64(wl.SLO)*1.1) {
			t.Fatalf("%s violates SLO at calibrated peak: %v > %v", name, tel.TailLatency, wl.SLO)
		}
	}
}

func TestBaselineLatencyMonotoneInLoad(t *testing.T) {
	lcs, _ := calibrated(t)
	wl := lcs["websearch"]
	prev := time.Duration(0)
	for _, load := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		m := New(hw.DefaultConfig())
		m.SetLC(wl)
		m.SetLoad(load)
		var tel Telemetry
		for i := 0; i < 10; i++ {
			tel = m.Step()
		}
		if tel.TailLatency < prev-time.Millisecond {
			t.Fatalf("latency not monotone at load %v: %v < %v", load, tel.TailLatency, prev)
		}
		prev = tel.TailLatency
	}
}

func TestWebsearchDRAMFraction(t *testing.T) {
	// §3.1: websearch uses ~40% of DRAM bandwidth at 100% load.
	lcs, _ := calibrated(t)
	m := New(hw.DefaultConfig())
	m.SetLC(lcs["websearch"])
	m.SetLoad(1.0)
	var tel Telemetry
	for i := 0; i < 8; i++ {
		tel = m.Step()
	}
	if tel.DRAMUtil < 0.30 || tel.DRAMUtil > 0.55 {
		t.Fatalf("websearch DRAM at peak = %.0f%%, want ~40%%", 100*tel.DRAMUtil)
	}
}

func TestMemkeyvalNetworkLimitedAtPeak(t *testing.T) {
	// §3.1: memkeyval is network bandwidth limited at peak load.
	lcs, _ := calibrated(t)
	m := New(hw.DefaultConfig())
	m.SetLC(lcs["memkeyval"])
	m.SetLoad(1.0)
	var tel Telemetry
	for i := 0; i < 8; i++ {
		tel = m.Step()
	}
	if tel.LinkUtil < 0.85 {
		t.Fatalf("memkeyval link at peak = %.0f%%, want near saturation", 100*tel.LinkUtil)
	}
	if tel.DRAMUtil > 0.3 {
		t.Fatalf("memkeyval DRAM at peak = %.0f%%, want ~20%%", 100*tel.DRAMUtil)
	}
}

func TestPartitionBalancesSockets(t *testing.T) {
	lcs, bes := calibrated(t)
	m := New(hw.DefaultConfig())
	m.SetLC(lcs["websearch"])
	m.AddBE(bes["brain"], workload.PlaceDedicated)
	m.Partition(10)
	be := m.BEs()[0]
	if len(be.Cores) != 10 {
		t.Fatalf("BE core count = %d", len(be.Cores))
	}
	s0, s1 := coresOnSocket(m.Config(), be.Cores, 0), coresOnSocket(m.Config(), be.Cores, 1)
	if s0 != 5 || s1 != 5 {
		t.Fatalf("BE cores per socket = %d/%d, want balanced", s0, s1)
	}
	// LC and BE never overlap.
	lcSet := map[int]bool{}
	for _, c := range m.LC().Cores {
		lcSet[c] = true
	}
	for _, c := range be.Cores {
		if lcSet[c] {
			t.Fatalf("core %d owned by both LC and BE", c)
		}
	}
	if len(m.LC().Cores)+len(be.Cores) != m.Config().TotalCores() {
		t.Fatal("cores lost in partition")
	}
}

func TestPinLCInterleavesSockets(t *testing.T) {
	lcs, _ := calibrated(t)
	m := New(hw.DefaultConfig())
	m.SetLC(lcs["websearch"])
	m.PinLC(6)
	s0 := coresOnSocket(m.Config(), m.LC().Cores, 0)
	s1 := coresOnSocket(m.Config(), m.LC().Cores, 1)
	if s0 != 3 || s1 != 3 {
		t.Fatalf("pinned LC cores per socket = %d/%d", s0, s1)
	}
}

func TestPartitionWays(t *testing.T) {
	lcs, bes := calibrated(t)
	m := New(hw.DefaultConfig())
	m.SetLC(lcs["websearch"])
	m.AddBE(bes["brain"], workload.PlaceDedicated)
	m.PartitionWays(4)
	if m.LC().Ways != 16 || m.BEs()[0].Ways != 4 {
		t.Fatalf("ways split = %d/%d", m.LC().Ways, m.BEs()[0].Ways)
	}
	m.PartitionWays(0)
	if m.LC().Ways != 0 {
		t.Fatal("zero BE ways should restore full sharing")
	}
	// Never allow BE to take every way.
	m.PartitionWays(99)
	if m.BEs()[0].Ways >= m.Config().LLCWays {
		t.Fatalf("BE took all ways: %d", m.BEs()[0].Ways)
	}
}

func TestColocationRaisesEMU(t *testing.T) {
	lcs, bes := calibrated(t)
	m := New(hw.DefaultConfig())
	m.SetLC(lcs["websearch"])
	m.AddBE(bes["brain"], workload.PlaceDedicated)
	m.SetLoad(0.3)
	m.Partition(12)
	m.PartitionWays(2)
	var tel Telemetry
	for i := 0; i < 10; i++ {
		tel = m.Step()
	}
	if tel.EMU < 0.4 {
		t.Fatalf("EMU with 12 BE cores = %v, want well above the 0.3 load", tel.EMU)
	}
	if tel.BERateNorm <= 0 || tel.BERateNorm > 1 {
		t.Fatalf("BE normalised rate = %v", tel.BERateNorm)
	}
}

func TestDisableBEStopsWork(t *testing.T) {
	lcs, bes := calibrated(t)
	m := New(hw.DefaultConfig())
	m.SetLC(lcs["websearch"])
	m.AddBE(bes["brain"], workload.PlaceDedicated)
	m.SetLoad(0.3)
	m.Partition(12)
	m.Step()
	m.DisableBE()
	tel := m.Step()
	if tel.BERateNorm != 0 {
		t.Fatalf("disabled BE still produced %v", tel.BERateNorm)
	}
	if m.BEEnabled() {
		t.Fatal("BEEnabled after disable")
	}
	m.EnableBE()
	if !m.BEEnabled() {
		t.Fatal("enable failed")
	}
}

func TestTailLatencyWindowAverages(t *testing.T) {
	lcs, _ := calibrated(t)
	m := New(hw.DefaultConfig())
	m.SetLC(lcs["websearch"])
	m.SetLoad(0.5)
	if _, ok := m.TailLatency(15 * time.Second); ok {
		t.Fatal("tail latency available before any epoch")
	}
	for i := 0; i < 5; i++ {
		m.Step()
	}
	tail, ok := m.TailLatency(15 * time.Second)
	if !ok || tail <= 0 {
		t.Fatalf("tail = %v ok=%v", tail, ok)
	}
}

func TestSLOScale(t *testing.T) {
	lcs, _ := calibrated(t)
	m := New(hw.DefaultConfig())
	m.SetLC(lcs["websearch"])
	base := m.SLO()
	m.SetSLOScale(0.8)
	if got := m.SLO(); got != time.Duration(float64(base)*0.8) {
		t.Fatalf("scaled SLO = %v", got)
	}
}

func TestFreqCapActuators(t *testing.T) {
	lcs, bes := calibrated(t)
	m := New(hw.DefaultConfig())
	m.SetLC(lcs["websearch"])
	m.AddBE(bes["cpu_pwr"], workload.PlaceDedicated)
	m.Partition(8)
	if m.BEFreqCap() != 0 {
		t.Fatal("initial cap should be 0 (uncapped)")
	}
	m.LowerBEFreq()
	want := m.Config().MaxTurboGHz - 0.1
	if got := m.BEFreqCap(); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("cap after first lower = %v, want %v", got, want)
	}
	m.RaiseBEFreq()
	if m.BEFreqCap() != 0 {
		t.Fatalf("cap after raise to top = %v, want uncapped", m.BEFreqCap())
	}
	// Lowering far never goes below MinGHz.
	for i := 0; i < 100; i++ {
		m.LowerBEFreq()
	}
	if m.BEFreqCap() < m.Config().MinGHz {
		t.Fatalf("cap below MinGHz: %v", m.BEFreqCap())
	}
}

func TestFreqCapRaisesLCFrequencyUnderPowerVirus(t *testing.T) {
	lcs, bes := calibrated(t)
	run := func(cap float64) float64 {
		m := New(hw.DefaultConfig())
		m.SetLC(lcs["websearch"])
		m.AddBE(bes["cpu_pwr"], workload.PlaceDedicated)
		m.SetLoad(0.3)
		m.Partition(24)
		if cap > 0 {
			m.SetBEFreqCap(cap)
		}
		var tel Telemetry
		for i := 0; i < 6; i++ {
			tel = m.Step()
		}
		return tel.LCFreqGHz
	}
	uncapped := run(0)
	capped := run(1.4)
	if capped <= uncapped {
		t.Fatalf("capping the power virus should raise LC frequency: %v -> %v", uncapped, capped)
	}
}

func TestHTBCeilProtectsLCNetwork(t *testing.T) {
	lcs, bes := calibrated(t)
	run := func(ceil float64) Telemetry {
		m := New(hw.DefaultConfig())
		m.SetLC(lcs["memkeyval"])
		m.AddBE(bes["iperf"], workload.PlaceDedicated)
		m.SetLoad(0.6)
		m.Partition(1)
		if ceil > 0 {
			m.SetBENetCeil(ceil)
		}
		var tel Telemetry
		for i := 0; i < 6; i++ {
			tel = m.Step()
		}
		return tel
	}
	open := run(0)
	shaped := run(0.2)
	if shaped.TailLatency >= open.TailLatency {
		t.Fatalf("HTB ceil did not protect the LC tail: %v vs %v", shaped.TailLatency, open.TailLatency)
	}
	if shaped.BETxGBs > 0.2+1e-9 {
		t.Fatalf("BE exceeded ceil: %v", shaped.BETxGBs)
	}
}

func TestPerCoreDRAMCountersSumToTotal(t *testing.T) {
	lcs, bes := calibrated(t)
	m := New(hw.DefaultConfig())
	m.SetLC(lcs["websearch"])
	m.AddBE(bes["streetview"], workload.PlaceDedicated)
	m.SetLoad(0.5)
	m.Partition(10)
	tel := m.Step()
	var sum float64
	for _, v := range tel.PerCoreDRAMGBs {
		sum += v
	}
	diff := sum - tel.DRAMTotalGBs
	if diff < -0.5 || diff > 0.5 {
		t.Fatalf("per-core counters sum %v vs total %v", sum, tel.DRAMTotalGBs)
	}
}

func TestDeterminism(t *testing.T) {
	lcs, bes := calibrated(t)
	run := func() Telemetry {
		m := New(hw.DefaultConfig())
		m.SetLC(lcs["ml_cluster"])
		m.AddBE(bes["brain"], workload.PlaceDedicated)
		m.SetLoad(0.45)
		m.Partition(14)
		var tel Telemetry
		for i := 0; i < 12; i++ {
			tel = m.Step()
		}
		return tel
	}
	a, b := run(), run()
	if a.TailLatency != b.TailLatency || a.EMU != b.EMU || a.DRAMTotalGBs != b.DRAMTotalGBs {
		t.Fatal("machine resolution is not deterministic")
	}
}

func TestOSSharedColocationViolates(t *testing.T) {
	// The §3.3 result that motivates Heracles: OS-only isolation cannot
	// colocate brain with any LC workload.
	lcs, bes := calibrated(t)
	m := New(hw.DefaultConfig())
	lc := m.SetLC(lcs["websearch"])
	lc.OSShared = true
	m.AddBE(bes["brain"], workload.PlaceOSShared)
	m.SetLoad(0.5)
	var tel Telemetry
	for i := 0; i < 8; i++ {
		tel = m.Step()
	}
	if tel.TailLatency <= lcs["websearch"].SLO {
		t.Fatalf("OS-shared brain colocation should violate the SLO, tail=%v", tel.TailLatency)
	}
}

func TestHTSiblingInterferenceAtHighLoad(t *testing.T) {
	lcs, _ := calibrated(t)
	spin := CalibrateBE(hw.DefaultConfig(), workload.Spinloop())
	m := New(hw.DefaultConfig())
	m.SetLC(lcs["websearch"])
	m.AddBE(spin, workload.PlaceHTSibling)
	m.SetLoad(0.95)
	var tel Telemetry
	for i := 0; i < 8; i++ {
		tel = m.Step()
	}
	if tel.TailLatency <= lcs["websearch"].SLO {
		t.Fatalf("hyperthread antagonist at 95%% load should violate, tail=%v vs SLO %v",
			tel.TailLatency, lcs["websearch"].SLO)
	}
}

func TestRunForAndClock(t *testing.T) {
	lcs, _ := calibrated(t)
	m := New(hw.DefaultConfig())
	m.SetLC(lcs["websearch"])
	m.SetLoad(0.2)
	m.RunFor(5 * time.Second)
	if m.Clock().Now() != 5*time.Second {
		t.Fatalf("clock = %v", m.Clock().Now())
	}
	if len(m.Recent(100)) != 5 {
		t.Fatalf("recent epochs = %d", len(m.Recent(100)))
	}
	m.ResetStats()
	if len(m.Recent(100)) != 0 {
		t.Fatal("reset did not clear history")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid hw config")
		}
	}()
	New(hw.Config{})
}
