package machine

import (
	"math"
	"testing"
	"time"

	"heracles/internal/hw"
	"heracles/internal/workload"
)

// TestBETaskAccruesCPUSeconds pins the scheduler's progress currency: a
// dedicated BE task accrues busy core-seconds equal to cores x time while
// enabled, and nothing while parked.
func TestBETaskAccruesCPUSeconds(t *testing.T) {
	lcs, bes := calibrated(t)
	m := New(hw.DefaultConfig())
	m.SetLC(lcs["websearch"])
	m.SetLoad(0.3)
	be := m.AddBE(bes["brain"], workload.PlaceDedicated)
	m.Partition(4)

	m.RunFor(10 * time.Second)
	want := 4.0 * 10
	if math.Abs(be.CPUSec-want) > 1e-9 {
		t.Fatalf("CPUSec after 10s on 4 cores = %v, want %v", be.CPUSec, want)
	}

	// Parked tasks accrue nothing.
	m.DisableBE()
	m.RunFor(5 * time.Second)
	if math.Abs(be.CPUSec-want) > 1e-9 {
		t.Fatalf("CPUSec grew while parked: %v", be.CPUSec)
	}

	// Re-enabled tasks resume from where they stopped.
	m.EnableBE()
	m.RunFor(5 * time.Second)
	want += 4.0 * 5
	if math.Abs(be.CPUSec-want) > 1e-9 {
		t.Fatalf("CPUSec after unpark = %v, want %v", be.CPUSec, want)
	}
}

// TestBECPUSecDisposition pins the completed-vs-evicted split on
// telemetry: CompleteBE banks the accrued time as goodput, RemoveBE as
// lost work, and RemoveBEs (the experiment reset) accounts nothing.
func TestBECPUSecDisposition(t *testing.T) {
	lcs, bes := calibrated(t)
	m := New(hw.DefaultConfig())
	m.SetLC(lcs["websearch"])
	m.SetLoad(0.3)
	good := m.AddBE(bes["brain"], workload.PlaceDedicated)
	lost := m.AddBE(bes["streetview"], workload.PlaceDedicated)
	m.Partition(4) // two cores each

	m.RunFor(8 * time.Second)
	goodCPU, lostCPU := good.CPUSec, lost.CPUSec
	if goodCPU <= 0 || lostCPU <= 0 {
		t.Fatalf("no accrual: %v / %v", goodCPU, lostCPU)
	}

	m.CompleteBE(good)
	m.RemoveBE(lost)
	tel := m.Step()
	if math.Abs(tel.BEGoodCPUSec-goodCPU) > 1e-9 {
		t.Fatalf("BEGoodCPUSec = %v, want %v", tel.BEGoodCPUSec, goodCPU)
	}
	if math.Abs(tel.BELostCPUSec-lostCPU) > 1e-9 {
		t.Fatalf("BELostCPUSec = %v, want %v", tel.BELostCPUSec, lostCPU)
	}

	// Detaching an already-removed task must not double-count.
	m.RemoveBE(lost)
	tel = m.Step()
	if math.Abs(tel.BELostCPUSec-lostCPU) > 1e-9 {
		t.Fatalf("double-counted eviction: %v", tel.BELostCPUSec)
	}

	// Wholesale reset accounts nothing.
	extra := m.AddBE(bes["brain"], workload.PlaceDedicated)
	m.Partition(2)
	m.RunFor(3 * time.Second)
	if extra.CPUSec <= 0 {
		t.Fatal("extra task accrued nothing")
	}
	m.RemoveBEs()
	tel = m.Step()
	if math.Abs(tel.BEGoodCPUSec-goodCPU) > 1e-9 || math.Abs(tel.BELostCPUSec-lostCPU) > 1e-9 {
		t.Fatalf("RemoveBEs changed disposition counters: good %v lost %v",
			tel.BEGoodCPUSec, tel.BELostCPUSec)
	}
}
