package machine

import (
	"math"
	"time"

	"heracles/internal/lat"
	"heracles/internal/workload"
)

// Telemetry is the full set of counters produced by one resolved epoch.
// It contains everything the Heracles controller monitors (tail latency,
// load, DRAM bandwidth, RAPL-style power, core frequencies, link
// bandwidth) plus the accounting the experiments report (EMU, utilisation
// percentages).
type Telemetry struct {
	Time time.Duration // simulated time at the end of the epoch

	// Latency-critical workload.
	Lat         lat.EpochStats
	TailLatency time.Duration // at the workload's SLO quantile
	LCLoad      float64       // offered load fraction
	LCServed    float64       // served QPS / peak QPS
	LCCores     int
	LCWays      int
	LCFreqGHz   float64 // minimum frequency across LC cores
	LCDRAMGBs   float64
	LCTxGBs     float64

	// Best-effort tasks (aggregate).
	BEEnabled  bool
	BECores    int
	BEWays     int
	BEFreqCap  float64
	BEDRAMGBs  float64
	BETxGBs    float64
	BERateNorm float64 // sum of per-task normalised rates
	BEFreqGHz  float64 // mean achieved frequency across BE cores
	// Cumulative CPU time (busy core-seconds) of retired BE tasks, split
	// by disposition: BEGoodCPUSec accrued via CompleteBE (finished jobs),
	// BELostCPUSec via RemoveBE (evicted or departed before completion).
	// The fleet scheduler's goodput accounting reads these as its single
	// source of truth.
	BEGoodCPUSec float64
	BELostCPUSec float64

	// Shared resources.
	SocketPowerW   []float64
	PowerFracTDP   float64 // total power / total TDP
	MaxSocketPower float64 // max over sockets of power/TDP
	CPUUtil        float64 // busy cores / total cores
	DRAMTotalGBs   float64 // achieved, all sockets
	DRAMDemandGBs  float64
	DRAMUtil       float64   // achieved / peak, all sockets
	DRAMSocketUtil []float64 // achieved / peak per socket (controller registers)
	PerCoreDRAMGBs []float64
	LinkUtil       float64 // egress

	// Effective machine utilisation (§5.1): LC throughput + BE throughput,
	// both normalised to running alone.
	EMU float64
}

// Last returns the telemetry of the most recent epoch.
func (m *Machine) Last() Telemetry { return m.tel }

// Recent returns up to n most recent epoch telemetries, oldest first. The
// returned slice is freshly allocated but its inner slices alias the
// history ring.
func (m *Machine) Recent(n int) []Telemetry {
	if n > m.recentN {
		n = m.recentN
	}
	if n == 0 {
		return nil
	}
	out := make([]Telemetry, n)
	for j := 0; j < n; j++ {
		out[j] = *m.telAt(m.recentN - n + j)
	}
	return out
}

// telAt returns epoch j of the history ring, j=0 oldest.
func (m *Machine) telAt(j int) *Telemetry {
	if m.recentN < m.recentMax {
		return &m.recent[j]
	}
	return &m.recent[(m.head+j)%m.recentMax]
}

// TailLatency returns the LC tail latency averaged over the epochs within
// the trailing window — the controller's 15-second poll (paper §4.3,
// "polls the tail latency and load of the LC workload every 15 seconds...
// sufficient queries to calculate statistically meaningful tail
// latencies"). The boolean is false if no epoch has completed yet.
func (m *Machine) TailLatency(window time.Duration) (time.Duration, bool) {
	if m.recentN == 0 {
		return 0, false
	}
	cutoff := m.clock.Now() - window
	var sum float64
	var n int
	for j := m.recentN - 1; j >= 0; j-- {
		t := m.telAt(j)
		if t.Time <= cutoff {
			break
		}
		sum += t.TailLatency.Seconds()
		n++
	}
	if n == 0 {
		return m.telAt(m.recentN - 1).TailLatency, true
	}
	return time.Duration(sum / float64(n) * float64(time.Second)), true
}

// Load returns the LC offered load fraction (the controller's load poll).
func (m *Machine) Load() float64 {
	if m.lc == nil {
		return 0
	}
	return m.lc.Load
}

// SLO returns the LC workload's latency target as seen by the controller,
// scaled by any SLO scale installed with SetSLOScale.
func (m *Machine) SLO() time.Duration {
	if m.lc == nil {
		return 0
	}
	if m.sloScale > 0 {
		return time.Duration(float64(m.lc.WL.SLO) * m.sloScale)
	}
	return m.lc.WL.SLO
}

// SetSLOScale tightens (scale < 1) or relaxes the latency target the
// controller defends, without changing experiment accounting. The cluster
// experiment of §5.3 uses this: each leaf runs "a uniform 99%-ile latency
// target set such that the latency at the root satisfies the SLO".
func (m *Machine) SetSLOScale(scale float64) { m.sloScale = scale }

// GuaranteedGHz returns the LC workload's guaranteed frequency, measured
// at calibration time when it runs alone at full load (§4.3).
func (m *Machine) GuaranteedGHz() float64 {
	if m.lc == nil {
		return 0
	}
	return m.lc.WL.GuaranteedGHz
}

// --- Controller-facing monitors and actuators -------------------------

// BECoreCount returns the number of cores currently granted to dedicated
// BE tasks.
func (m *Machine) BECoreCount() int {
	seen := m.scratch.isBE
	for c := range seen {
		seen[c] = false
	}
	n := 0
	for _, be := range m.bes {
		if be.Placement != workload.PlaceDedicated {
			continue
		}
		for _, c := range be.Cores {
			if c < len(seen) && !seen[c] {
				seen[c] = true
				n++
			}
		}
	}
	return n
}

// SetBECores grows or shrinks the dedicated BE core allocation to n,
// reassigning the remaining cores to the LC task (Heracles reassigns cores
// between the LC and BE jobs one at a time, §4.3).
func (m *Machine) SetBECores(n int) { m.Partition(n) }

// MaxBECores is the largest BE core allocation the machine permits; the
// LC task always keeps at least one core.
func (m *Machine) MaxBECores() int { return m.cfg.TotalCores() - 1 }

// BEWayCount returns the LLC ways currently granted to BE tasks.
func (m *Machine) BEWayCount() int {
	for _, be := range m.bes {
		return be.Ways
	}
	return 0
}

// SetBEWays resizes the BE cache partition (CAT reprogramming, §4.1).
func (m *Machine) SetBEWays(n int) { m.PartitionWays(n) }

// TotalWays returns the number of LLC ways per socket.
func (m *Machine) TotalWays() int { return m.cfg.LLCWays }

// DRAMPeakGBs returns the machine's peak streaming DRAM bandwidth.
func (m *Machine) DRAMPeakGBs() float64 { return m.cfg.TotalDRAMGBs() }

// DRAMTotalGBs returns the last epoch's achieved DRAM bandwidth (the
// "registers that track bandwidth usage" of §4.3).
func (m *Machine) DRAMTotalGBs() float64 { return m.tel.DRAMTotalGBs }

// DRAMMaxSocketFrac returns the utilisation of the busiest memory
// controller (achieved/peak of the hottest socket). The paper's
// controller reads per-controller bandwidth registers; a single saturated
// socket hurts any task with memory there even when machine-total
// bandwidth looks moderate.
func (m *Machine) DRAMMaxSocketFrac() float64 {
	var max float64
	for _, u := range m.tel.DRAMSocketUtil {
		if u > max {
			max = u
		}
	}
	return max
}

// BEDRAMCounterGBs estimates BE DRAM bandwidth by summing the per-core
// bandwidth counters over the BE cores, the same hardware-counter
// estimate Heracles uses (§4.3).
func (m *Machine) BEDRAMCounterGBs() float64 {
	var sum float64
	for _, be := range m.bes {
		if be.Placement != workload.PlaceDedicated || !be.Enabled {
			continue
		}
		for _, c := range be.Cores {
			if c < len(m.tel.PerCoreDRAMGBs) {
				sum += m.tel.PerCoreDRAMGBs[c]
			}
		}
	}
	return sum
}

// MaxSocketPowerFrac returns the highest socket power as a fraction of its
// TDP (the RAPL reading of Algorithm 3).
func (m *Machine) MaxSocketPowerFrac() float64 { return m.tel.MaxSocketPower }

// LCFreqGHz returns the minimum operating frequency across LC cores.
func (m *Machine) LCFreqGHz() float64 { return m.tel.LCFreqGHz }

// LowerBEFreq lowers the BE DVFS cap by one 100 MHz step.
func (m *Machine) LowerBEFreq() {
	cur := m.BEFreqCap()
	if cur == 0 {
		cur = m.cfg.MaxTurboGHz
	}
	next := cur - 0.1
	if next < m.cfg.MinGHz {
		next = m.cfg.MinGHz
	}
	m.SetBEFreqCap(next)
}

// RaiseBEFreq raises the BE DVFS cap by one 100 MHz step; at the top the
// cap is removed entirely.
func (m *Machine) RaiseBEFreq() {
	cur := m.BEFreqCap()
	if cur == 0 {
		return
	}
	next := cur + 0.1
	if next >= m.cfg.MaxTurboGHz {
		m.SetBEFreqCap(0)
		return
	}
	m.SetBEFreqCap(next)
}

// LCTxGBs returns the LC workload's egress bandwidth last epoch.
func (m *Machine) LCTxGBs() float64 { return m.tel.LCTxGBs }

// LinkGBs returns the NIC line rate in GB/s.
func (m *Machine) LinkGBs() float64 { return m.cfg.LinkGBs() }

// SetBETxCeil installs the aggregate HTB ceiling for BE egress traffic.
func (m *Machine) SetBETxCeil(gbs float64) { m.SetBENetCeil(gbs) }

// BERate returns the aggregate normalised BE work rate (for the
// controller's BeBenefit check and for EMU accounting).
func (m *Machine) BERate() float64 { return m.tel.BERateNorm }

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func nanToZero(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
