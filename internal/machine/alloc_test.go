package machine

import (
	"testing"
	"time"

	"heracles/internal/hw"
	"heracles/internal/workload"
)

// TestStepSteadyStateAllocFree pins the property the artefact pipeline's
// throughput depends on: once the telemetry ring has filled, Machine.Step
// performs zero heap allocations per epoch.
func TestStepSteadyStateAllocFree(t *testing.T) {
	lcs, bes := calibrated(t)
	m := New(hw.DefaultConfig())
	m.SetLC(lcs["websearch"])
	m.AddBE(bes["brain"], workload.PlaceDedicated)
	m.SetLoad(0.5)
	m.Partition(12)
	// Prime scratch buffers and fill the history ring.
	for i := 0; i < 620; i++ {
		m.Step()
	}
	if avg := testing.AllocsPerRun(200, func() { m.Step() }); avg != 0 {
		t.Fatalf("steady-state Step allocates %.1f objects per epoch, want 0", avg)
	}
}

// TestStepAllocFreeAfterActuation verifies the controller's actuators
// (repartitioning cores/ways, DVFS and HTB changes) do not re-introduce
// steady-state allocations.
func TestStepAllocFreeAfterActuation(t *testing.T) {
	lcs, bes := calibrated(t)
	m := New(hw.DefaultConfig())
	m.SetLC(lcs["websearch"])
	m.AddBE(bes["streetview"], workload.PlaceDedicated)
	m.SetLoad(0.6)
	for i := 0; i < 620; i++ {
		m.Step()
	}
	if avg := testing.AllocsPerRun(100, func() {
		m.SetBECores(8)
		m.SetBEWays(4)
		m.SetBEFreqCap(2.0)
		m.SetBETxCeil(0.5)
		m.Step()
	}); avg != 0 {
		t.Fatalf("Step with actuation allocates %.1f objects per epoch, want 0", avg)
	}
}

// TestTelemetryRingWraps exercises the ring past its capacity and checks
// the windowed controller poll still sees the newest epochs.
func TestTelemetryRingWraps(t *testing.T) {
	lcs, _ := calibrated(t)
	m := New(hw.DefaultConfig())
	m.SetLC(lcs["websearch"])
	m.SetLoad(0.3)
	for i := 0; i < 700; i++ { // past recentMax=600
		m.Step()
	}
	if got := len(m.Recent(1000)); got != 600 {
		t.Fatalf("ring holds %d epochs, want 600", got)
	}
	rec := m.Recent(3)
	for i := 1; i < len(rec); i++ {
		if rec[i].Time <= rec[i-1].Time {
			t.Fatalf("ring order broken: %v then %v", rec[i-1].Time, rec[i].Time)
		}
	}
	if rec[len(rec)-1].Time != m.Clock().Now() {
		t.Fatalf("newest ring entry at %v, clock at %v", rec[len(rec)-1].Time, m.Clock().Now())
	}
	tail, ok := m.TailLatency(15 * time.Second)
	if !ok || tail <= 0 {
		t.Fatalf("windowed tail after wrap = %v, %v", tail, ok)
	}
	m.ResetStats()
	if len(m.Recent(10)) != 0 {
		t.Fatal("reset did not clear wrapped ring")
	}
	// Refill after reset reuses the ring slots.
	m.Step()
	if len(m.Recent(10)) != 1 {
		t.Fatal("ring refill after reset broken")
	}
}
