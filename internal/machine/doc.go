// Package machine assembles the modelled server: hardware (cores,
// hyperthreads, way-partitioned LLC, DRAM controllers, power/turbo,
// NIC), one latency-critical task, and any number of best-effort tasks.
// Each call to Step resolves one control epoch — frequencies under the
// power budget, cache occupancy, DRAM bandwidth shares, network shares,
// the LC workload's inflated service parameters and resulting tail
// latency, and every telemetry counter the Heracles controller reads.
//
// The Machine satisfies the controller's Env interface directly, so the
// same control logic that drives filesystem actuators on real hardware
// drives the simulation. Steady-state stepping is allocation-free:
// per-machine scratch buffers and a fixed telemetry ring keep the hot
// path at zero allocs/op, which is what lets the cluster, fleet and
// control-plane layers run hundreds of machines concurrently.
//
// A Machine is single-threaded by contract — exactly one goroutine may
// call Step and the mutating actuators. Fan-out layers give each machine
// its own goroutine (or worker-pool slot) and communicate through
// telemetry snapshots, which preserves bit-identical determinism at any
// concurrency.
//
// Calibration (CalibrateLC, CalibrateBE) measures each workload running
// alone on a configuration — peak QPS at the SLO, guaranteed frequency,
// alone-rate — and stamps the results into the workload values the rest
// of the system shares.
package machine
