package machine

import (
	"fmt"
	"time"

	"heracles/internal/cache"
	"heracles/internal/hw"
	"heracles/internal/lat"
	"heracles/internal/netlink"
	"heracles/internal/sim"
	"heracles/internal/workload"
)

// LCTask is the latency-critical task hosted on the machine.
type LCTask struct {
	WL   *workload.LC
	Load float64 // offered load as a fraction of calibrated peak QPS

	Cores []int // physical core ids owned by the task
	Ways  int   // LLC ways owned (top ways of each socket); 0 = share all

	// OSShared marks the §3.3 OS-isolation-only experiment where the LC
	// task floats across every core under CFS instead of being pinned.
	OSShared bool
}

// BETask is one best-effort task or antagonist on the machine.
type BETask struct {
	WL        *workload.BE
	Placement workload.PlacementKind
	Enabled   bool

	Cores      []int   // physical core ids (dedicated placement only)
	Ways       int     // LLC ways (bottom ways of each socket); 0 = share all
	FreqCapGHz float64 // per-core DVFS cap; 0 = uncapped

	// LastRate is the work rate of the previous epoch; LastNorm is the
	// same normalised to the calibrated alone-rate (EMU contribution).
	// LastHit is the cache hit ratio observed in the previous epoch.
	LastRate float64
	LastNorm float64
	LastHit  float64

	// CPUSec is the cumulative busy CPU time (core-seconds) this task has
	// accrued while enabled — the currency of the scheduler's goodput
	// accounting. It survives controller park/unpark cycles; it is lost
	// (counted as evicted) when the task is removed before CompleteBE.
	CPUSec float64
}

// Machine is the simulated server.
type Machine struct {
	cfg    hw.Config
	engine lat.Engine
	clock  *sim.Clock
	epoch  time.Duration

	lc  *LCTask
	bes []*BETask

	beNetCeilGBs float64 // HTB ceiling over all BE traffic; 0 = uncapped
	sloScale     float64 // controller-visible SLO scale; 0 or 1 = unscaled
	degrade      float64 // LC service-time degradation factor; 0 or 1 = none

	// Cumulative BE CPU-time disposition (busy core-seconds of retired
	// tasks): beGoodCPUSec accrues on CompleteBE, beLostCPUSec on RemoveBE
	// (a task that departs or is evicted before completing loses its
	// work). RemoveBEs is a wholesale experiment reset and accounts
	// nothing.
	beGoodCPUSec float64
	beLostCPUSec float64

	lastService float64 // previous epoch mean LC service time (seconds)
	tel         Telemetry
	// recent is a ring of recent epochs for controller polling: entries
	// occupy logical order oldest-first starting at head. Slots (and the
	// slices inside them) are reused once the ring is full, which is what
	// makes steady-state stepping allocation-free.
	recent    []Telemetry
	recentN   int // valid entries
	head      int // physical index of the oldest entry
	recentMax int

	scratch stepScratch
}

// stepScratch holds every buffer Step needs so that steady-state stepping
// performs no heap allocations. Buffers sized by topology are allocated in
// New; buffers sized by task count grow on demand in ensureScratch.
type stepScratch struct {
	act       []float64     // per-core power activity
	caps      []float64     // per-core DVFS caps
	coreFreq  []float64     // resolved per-core frequency
	lcCoreSet []bool        // cores owned by the LC task
	isBE      []bool        // reused by Partition/PinLC/BECoreCount
	loads     []hw.CoreLoad // one socket's frequency-resolution input
	freqs     []float64     // one socket's frequency-resolution output
	taken     []int         // per-socket core-picking cursor
	beCores   []int         // Partition's interleaved BE core list
	dedicated []*BETask     // Partition's dedicated-task list

	missRate     []float64   // per task, all sockets
	accRate      []float64   // per task
	missBySocket [][]float64 // per socket, per task
	dramInfl     []float64   // per socket
	achievedBW   []float64   // per task
	demandBW     []float64   // per task
	memDemands   []float64   // one socket's DRAM demand vector
	memAchieved  []float64   // one socket's DRAM result buffer

	demands   []cache.Demand // one socket's cache demands
	demandIdx []int          // task index per demand
	refDemand [1]cache.Demand
	cacheSc   cache.Scratch

	netClasses  [2]netlink.Class
	netAchieved [2]float64
	netSc       netlink.Scratch
}

// ensureScratch sizes the task-count-dependent buffers for nTasks tasks.
func (m *Machine) ensureScratch(nTasks int) {
	sc := &m.scratch
	if cap(sc.missRate) >= nTasks {
		return
	}
	sc.missRate = make([]float64, nTasks)
	sc.accRate = make([]float64, nTasks)
	sc.achievedBW = make([]float64, nTasks)
	sc.demandBW = make([]float64, nTasks)
	sc.memDemands = make([]float64, nTasks)
	sc.memAchieved = make([]float64, nTasks)
	sc.demands = make([]cache.Demand, 0, nTasks)
	sc.demandIdx = make([]int, 0, nTasks)
	for s := range sc.missBySocket {
		sc.missBySocket[s] = make([]float64, nTasks)
	}
}

// Option configures a Machine.
type Option func(*Machine)

// WithEngine selects the latency engine (default: lat.Analytic).
func WithEngine(e lat.Engine) Option { return func(m *Machine) { m.engine = e } }

// WithEpoch sets the resolution epoch (default: 1s).
func WithEpoch(d time.Duration) Option { return func(m *Machine) { m.epoch = d } }

// New returns a machine with the given hardware config.
func New(cfg hw.Config, opts ...Option) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("machine: invalid config: %v", err))
	}
	m := &Machine{
		cfg:       cfg,
		engine:    lat.Analytic{},
		clock:     sim.NewClock(0),
		epoch:     time.Second,
		recentMax: 600,
	}
	tc := cfg.TotalCores()
	m.scratch = stepScratch{
		act:          make([]float64, tc),
		caps:         make([]float64, tc),
		coreFreq:     make([]float64, tc),
		lcCoreSet:    make([]bool, tc),
		isBE:         make([]bool, tc),
		loads:        make([]hw.CoreLoad, cfg.CoresPerSocket),
		freqs:        make([]float64, cfg.CoresPerSocket),
		taken:        make([]int, cfg.Sockets),
		dramInfl:     make([]float64, cfg.Sockets),
		missBySocket: make([][]float64, cfg.Sockets),
	}
	m.ensureScratch(2)
	for _, o := range opts {
		o(m)
	}
	return m
}

// Config returns the hardware configuration.
func (m *Machine) Config() hw.Config { return m.cfg }

// Clock returns the machine's simulated clock.
func (m *Machine) Clock() *sim.Clock { return m.clock }

// Epoch returns the resolution epoch.
func (m *Machine) Epoch() time.Duration { return m.epoch }

// SetLC installs the latency-critical task with all cores and ways.
func (m *Machine) SetLC(wl *workload.LC) *LCTask {
	m.lc = &LCTask{WL: wl, Cores: coreRange(0, m.cfg.TotalCores())}
	m.lastService = wl.Spec.BaseService().Seconds()
	return m.lc
}

// LC returns the installed LC task, or nil.
func (m *Machine) LC() *LCTask { return m.lc }

// AddBE installs a best-effort task with no cores; callers place it with
// Partition, PinLC or by setting Cores directly.
func (m *Machine) AddBE(wl *workload.BE, placement workload.PlacementKind) *BETask {
	be := &BETask{WL: wl, Placement: placement, Enabled: true}
	m.bes = append(m.bes, be)
	return be
}

// BEs returns the installed BE tasks.
func (m *Machine) BEs() []*BETask { return m.bes }

// RemoveBE detaches one BE task, counting its accrued CPU time as
// evicted (work lost before completion). The departed task's cores stay
// unassigned until the next Partition/SetBECores call; callers that want
// them redistributed immediately should follow up with
// Partition(BECoreCount()).
func (m *Machine) RemoveBE(be *BETask) {
	if m.detachBE(be) {
		m.beLostCPUSec += be.CPUSec
	}
}

// CompleteBE detaches one BE task whose job finished, counting its
// accrued CPU time as completed work. The fleet scheduler retires jobs
// through this so goodput and wasted BE CPU-seconds are separable in
// telemetry.
func (m *Machine) CompleteBE(be *BETask) {
	if m.detachBE(be) {
		m.beGoodCPUSec += be.CPUSec
	}
}

// detachBE splices the task out of the live list, reporting whether it
// was installed.
func (m *Machine) detachBE(be *BETask) bool {
	for i, b := range m.bes {
		if b == be {
			m.bes = append(m.bes[:i], m.bes[i+1:]...)
			return true
		}
	}
	return false
}

// RemoveBEs detaches all BE tasks and restores all cores and ways to LC.
func (m *Machine) RemoveBEs() {
	m.bes = nil
	if m.lc != nil {
		m.lc.Cores = coreRange(0, m.cfg.TotalCores())
		m.lc.Ways = 0
	}
	m.beNetCeilGBs = 0
}

// SetLoad sets the LC offered load as a fraction of peak QPS.
func (m *Machine) SetLoad(load float64) {
	if m.lc == nil {
		return
	}
	if load < 0 {
		load = 0
	}
	m.lc.Load = load
}

// Partition splits cores Heracles-style: dedicated BE tasks receive nBE
// cores taken from the top of each socket alternately (so BE memory
// traffic spreads across both memory controllers, as happens with
// abundant single-socket BE tasks), and the LC task owns the rest. The LC
// workload spans sockets for cores and memory (§4.3).
func (m *Machine) Partition(nBE int) {
	tc := m.cfg.TotalCores()
	cps := m.cfg.CoresPerSocket
	if nBE < 0 {
		nBE = 0
	}
	if nBE > tc-1 {
		nBE = tc - 1
	}
	// Pick BE cores from the top of each socket, round-robin over sockets.
	beCores := m.scratch.beCores[:0]
	taken := m.scratch.taken
	for s := range taken {
		taken[s] = 0
	}
	for len(beCores) < nBE {
		for s := 0; s < m.cfg.Sockets && len(beCores) < nBE; s++ {
			if taken[s] >= cps {
				continue
			}
			taken[s]++
			beCores = append(beCores, s*cps+cps-taken[s])
		}
	}
	m.scratch.beCores = beCores
	isBE := m.scratch.isBE
	for c := range isBE {
		isBE[c] = false
	}
	for _, c := range beCores {
		isBE[c] = true
	}
	if m.lc != nil {
		m.lc.Cores = m.lc.Cores[:0]
		for c := 0; c < tc; c++ {
			if !isBE[c] {
				m.lc.Cores = append(m.lc.Cores, c)
			}
		}
	}
	dedicated := m.scratch.dedicated[:0]
	for _, be := range m.bes {
		if be.Placement == workload.PlaceDedicated {
			dedicated = append(dedicated, be)
		}
	}
	m.scratch.dedicated = dedicated
	if len(dedicated) == 0 {
		return
	}
	for i, be := range dedicated {
		be.Cores = be.Cores[:0]
		for j := i; j < len(beCores); j += len(dedicated) {
			be.Cores = append(be.Cores, beCores[j])
		}
	}
}

// PinLC pins the LC task to exactly n cores (the characterisation setup of
// §3.2: "pinning the LC workload to enough cores to satisfy its SLO at the
// specific load"). Dedicated BE tasks receive all remaining cores. Both
// allocations interleave sockets, matching the paper's use of numactl to
// ensure the antagonist and the LC task share sockets and "all memory
// channels are stressed".
func (m *Machine) PinLC(n int) {
	tc := m.cfg.TotalCores()
	cps := m.cfg.CoresPerSocket
	if n < 1 {
		n = 1
	}
	if n > tc {
		n = tc
	}
	lcCores := make([]int, 0, n)
	taken := m.scratch.taken
	for s := range taken {
		taken[s] = 0
	}
	for len(lcCores) < n {
		for s := 0; s < m.cfg.Sockets && len(lcCores) < n; s++ {
			if taken[s] >= cps {
				continue
			}
			lcCores = append(lcCores, s*cps+taken[s])
			taken[s]++
		}
	}
	isLC := m.scratch.isBE // reused scratch; semantics here are "is LC"
	for c := range isLC {
		isLC[c] = false
	}
	for _, c := range lcCores {
		isLC[c] = true
	}
	rest := make([]int, 0, tc-n)
	for c := 0; c < tc; c++ {
		if !isLC[c] {
			rest = append(rest, c)
		}
	}
	if m.lc != nil {
		m.lc.Cores = lcCores
	}
	for _, be := range m.bes {
		if be.Placement == workload.PlaceDedicated {
			be.Cores = rest
		}
	}
}

// PartitionWays gives the BE tasks the bottom beWays LLC ways and the LC
// task the rest, on every socket (how Heracles programs CAT: one partition
// for the LC workload, a second for all BE tasks, §4.1).
func (m *Machine) PartitionWays(beWays int) {
	w := m.cfg.LLCWays
	if beWays < 0 {
		beWays = 0
	}
	if beWays > w-1 {
		beWays = w - 1
	}
	if m.lc != nil {
		if beWays == 0 {
			m.lc.Ways = 0
		} else {
			m.lc.Ways = w - beWays
		}
	}
	for _, be := range m.bes {
		be.Ways = beWays
	}
}

// SetDegrade installs a service-time degradation factor for the LC task:
// every request's compute and memory time is multiplied by f, modelling a
// slow leaf (thermal throttling, a failing disk behind the shard, an
// overloaded neighbour VM). f <= 1 restores full speed.
func (m *Machine) SetDegrade(f float64) {
	if f <= 1 {
		f = 0
	}
	m.degrade = f
}

// Degrade returns the current LC degradation factor (1 when none).
func (m *Machine) Degrade() float64 {
	if m.degrade == 0 {
		return 1
	}
	return m.degrade
}

// SetBENetCeil sets the HTB ceiling for aggregate BE egress traffic.
func (m *Machine) SetBENetCeil(gbs float64) {
	if gbs < 0 {
		gbs = 0
	}
	m.beNetCeilGBs = gbs
}

// BENetCeil returns the current aggregate BE egress ceiling (0 = uncapped).
func (m *Machine) BENetCeil() float64 { return m.beNetCeilGBs }

// SetBEFreqCap applies a DVFS cap to all BE cores.
func (m *Machine) SetBEFreqCap(ghz float64) {
	for _, be := range m.bes {
		be.FreqCapGHz = ghz
	}
}

// BEFreqCap returns the DVFS cap of the first BE task (they share caps
// when set through SetBEFreqCap), or 0 if none is installed.
func (m *Machine) BEFreqCap() float64 {
	for _, be := range m.bes {
		return be.FreqCapGHz
	}
	return 0
}

// EnableBE / DisableBE toggle execution of all BE tasks.
func (m *Machine) EnableBE() {
	for _, be := range m.bes {
		be.Enabled = true
	}
}

// DisableBE suspends all BE tasks.
func (m *Machine) DisableBE() {
	for _, be := range m.bes {
		be.Enabled = false
		be.LastRate, be.LastNorm = 0, 0
	}
}

// BEEnabled reports whether any BE task is currently enabled.
func (m *Machine) BEEnabled() bool {
	for _, be := range m.bes {
		if be.Enabled {
			return true
		}
	}
	return false
}

// ResetStats clears telemetry history and queue state between experiment
// points.
func (m *Machine) ResetStats() {
	m.recentN, m.head = 0, 0
	m.engine.Reset()
	if m.lc != nil {
		m.lastService = m.lc.WL.Spec.BaseService().Seconds()
	}
}

func coreRange(lo, hi int) []int {
	if hi <= lo {
		return nil
	}
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

func coresOnSocket(cfg hw.Config, cores []int, socket int) int {
	n := 0
	for _, c := range cores {
		if c/cfg.CoresPerSocket == socket {
			n++
		}
	}
	return n
}
