// Package queue implements the queueing-theory primitives the analytic
// latency engine is built on: Erlang-C waiting probability for M/M/k
// systems, wait-time tail quantiles, and an M/G/k variability correction.
//
// These formulas are what produce the sharp tail-latency inflection near
// saturation that Heracles' design insight (§4.2 of the paper) relies
// on: "interference is problematic only when a shared resource becomes
// saturated ... tail latency degrades extremely rapidly" past that
// point. internal/lat wraps them into a full epoch evaluator;
// internal/cluster reuses the fan-out mathematics for its root
// latency-combining.
package queue
