package queue

import (
	"math"
	"testing"
	"testing/quick"
)

func TestErlangCKnownValues(t *testing.T) {
	// M/M/1: C(1, rho) = rho.
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		if got := ErlangC(1, rho); math.Abs(got-rho) > 1e-9 {
			t.Fatalf("C(1,%v) = %v, want %v", rho, got, rho)
		}
	}
	// Classic table value: k=2, a=1 -> C = 1/3.
	if got := ErlangC(2, 1); math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("C(2,1) = %v, want 1/3", got)
	}
}

func TestErlangCEdges(t *testing.T) {
	if got := ErlangC(4, 0); got != 0 {
		t.Fatalf("C(4,0)=%v", got)
	}
	if got := ErlangC(4, 4); got != 1 {
		t.Fatalf("C at saturation = %v, want 1", got)
	}
	if got := ErlangC(0, 1); got != 1 {
		t.Fatalf("C with no servers = %v", got)
	}
}

func TestErlangCMonotoneInLoad(t *testing.T) {
	prev := -1.0
	for a := 0.1; a < 8; a += 0.1 {
		c := ErlangC(8, a)
		if c < prev {
			t.Fatalf("ErlangC not monotone at a=%v", a)
		}
		prev = c
	}
}

func TestErlangCBoundedProperty(t *testing.T) {
	if err := quick.Check(func(k uint8, a float64) bool {
		kk := int(k%64) + 1
		aa := math.Abs(math.Mod(a, float64(kk)))
		c := ErlangC(kk, aa)
		return c >= 0 && c <= 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanWaitMM1(t *testing.T) {
	// M/M/1: Wq = rho*S/(1-rho).
	rho, s := 0.5, 2.0
	want := rho * s / (1 - rho)
	if got := MeanWait(1, rho, s); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Wq = %v, want %v", got, want)
	}
}

func TestMeanWaitSaturation(t *testing.T) {
	if !math.IsInf(MeanWait(4, 1.0, 1), 1) {
		t.Fatal("wait at saturation should be +Inf")
	}
	if got := MeanWait(4, 0, 1); got != 0 {
		t.Fatalf("wait at zero load = %v", got)
	}
}

func TestWaitQuantileZeroWhenNoWaiting(t *testing.T) {
	// With tiny load, P(wait) < 1% and the 99th percentile wait is 0.
	if got := WaitQuantile(16, 0.05, 1, 0.99); got != 0 {
		t.Fatalf("wait q99 at 5%% load = %v, want 0", got)
	}
}

func TestWaitQuantileMonotoneInRho(t *testing.T) {
	prev := -1.0
	for rho := 0.5; rho < 0.99; rho += 0.01 {
		w := WaitQuantile(4, rho, 1, 0.99)
		if w < prev {
			t.Fatalf("wait quantile not monotone at rho=%v", rho)
		}
		prev = w
	}
}

func TestWaitQuantileMonotoneInQ(t *testing.T) {
	prev := -1.0
	for q := 0.5; q < 0.999; q += 0.01 {
		w := WaitQuantile(4, 0.9, 1, q)
		if w < prev {
			t.Fatalf("wait quantile not monotone at q=%v", q)
		}
		prev = w
	}
}

func TestWaitQuantileSaturation(t *testing.T) {
	if !math.IsInf(WaitQuantile(4, 1, 1, 0.99), 1) {
		t.Fatal("q at saturation should be +Inf")
	}
}

func TestMGkWaitScale(t *testing.T) {
	if got := MGkWaitScale(1, 1); got != 1 {
		t.Fatalf("M/M scale = %v", got)
	}
	if got := MGkWaitScale(1, 0); got != 0.5 {
		t.Fatalf("deterministic service scale = %v", got)
	}
	if got := MGkWaitScale(-1, -1); got != 0 {
		t.Fatalf("negative CVs should clamp: %v", got)
	}
}

func TestLogNormalCS2(t *testing.T) {
	if got := LogNormalCS2(0); got != 0 {
		t.Fatalf("CS2(0) = %v", got)
	}
	want := math.Exp(0.25) - 1
	if got := LogNormalCS2(0.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CS2(0.5) = %v, want %v", got, want)
	}
}

func TestNormQuantileKnownValues(t *testing.T) {
	cases := []struct{ q, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.99, 2.326348},
		{0.025, -1.959964},
	}
	for _, c := range cases {
		if got := NormQuantile(c.q); math.Abs(got-c.want) > 1e-4 {
			t.Fatalf("NormQuantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsInf(NormQuantile(0), -1) || !math.IsInf(NormQuantile(1), 1) {
		t.Fatal("edges should be infinite")
	}
}

func TestLogNormalQuantileMedianAndMean(t *testing.T) {
	mean, sigma := 4.0, 0.7
	med := LogNormalQuantile(mean, sigma, 0.5)
	want := mean * math.Exp(-sigma*sigma/2)
	if math.Abs(med-want) > 1e-9 {
		t.Fatalf("median = %v, want %v", med, want)
	}
	if LogNormalQuantile(0, sigma, 0.5) != 0 {
		t.Fatal("zero mean should give zero")
	}
}

func TestSaturationInflationShape(t *testing.T) {
	if got := SaturationInflation(0, 0.12, 4); got != 1 {
		t.Fatalf("g(0) = %v", got)
	}
	low := SaturationInflation(0.5, 0.12, 4)
	high := SaturationInflation(0.95, 0.12, 4)
	if low > 1.05 {
		t.Fatalf("g(0.5) = %v, want near 1", low)
	}
	if high < 2 {
		t.Fatalf("g(0.95) = %v, want >2", high)
	}
	// Clamped beyond 0.995 so it stays finite.
	if g := SaturationInflation(5, 0.12, 4); math.IsInf(g, 0) || g < high {
		t.Fatalf("clamped g = %v", g)
	}
}

func TestSaturationInflationMonotone(t *testing.T) {
	prev := 0.0
	for rho := 0.0; rho <= 1.2; rho += 0.01 {
		g := SaturationInflation(rho, 0.1, 4)
		if g < prev {
			t.Fatalf("inflation not monotone at rho=%v", rho)
		}
		prev = g
	}
}
