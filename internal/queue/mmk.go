package queue

import "math"

// ErlangC returns the probability that an arriving job must wait in an
// M/M/k queue with k servers and offered load a = lambda * meanService
// (in units of servers, i.e. utilisation rho = a/k). It returns 1 when the
// system is at or beyond saturation, and 0 for a <= 0.
//
// The computation uses the standard numerically stable recurrence on the
// Erlang-B blocking probability:
//
//	B(0, a) = 1;  B(j, a) = a*B(j-1, a) / (j + a*B(j-1, a))
//	C(k, a) = k*B / (k - a*(1-B))
func ErlangC(k int, a float64) float64 {
	if k <= 0 {
		return 1
	}
	if a <= 0 {
		return 0
	}
	if a >= float64(k) {
		return 1
	}
	b := 1.0
	for j := 1; j <= k; j++ {
		b = a * b / (float64(j) + a*b)
	}
	c := float64(k) * b / (float64(k) - a*(1-b))
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

// MeanWait returns the mean waiting time (excluding service) of an M/M/k
// queue with the given number of servers, utilisation rho = lambda*S/k and
// mean service time s. It returns +Inf at or beyond saturation.
func MeanWait(k int, rho, s float64) float64 {
	if rho >= 1 {
		return math.Inf(1)
	}
	if rho <= 0 {
		return 0
	}
	a := rho * float64(k)
	pw := ErlangC(k, a)
	return pw * s / (float64(k) * (1 - rho))
}

// WaitQuantile returns the q-quantile of the waiting time of an M/M/k
// queue. The conditional wait (given that a job waits) is exponential with
// rate k*(1-rho)/s, so:
//
//	P(W > t) = Pw * exp(-k*(1-rho)*t/s)
//	q-quantile: t = s/(k*(1-rho)) * ln(Pw/(1-q))   when Pw > 1-q, else 0.
//
// It returns +Inf at or beyond saturation.
func WaitQuantile(k int, rho, s, q float64) float64 {
	if rho >= 1 {
		return math.Inf(1)
	}
	if rho <= 0 || k <= 0 || s <= 0 {
		return 0
	}
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return math.Inf(1)
	}
	a := rho * float64(k)
	pw := ErlangC(k, a)
	tail := 1 - q
	if pw <= tail {
		return 0
	}
	return s / (float64(k) * (1 - rho)) * math.Log(pw/tail)
}

// MGkWaitScale returns the Allen-Cunneen scaling factor (Ca^2 + Cs^2)/2
// that converts M/M/k waiting time into an M/G/k approximation, where ca2
// and cs2 are the squared coefficients of variation of inter-arrival and
// service times. Poisson arrivals have ca2 = 1.
func MGkWaitScale(ca2, cs2 float64) float64 {
	if ca2 < 0 {
		ca2 = 0
	}
	if cs2 < 0 {
		cs2 = 0
	}
	return (ca2 + cs2) / 2
}

// LogNormalCS2 returns the squared coefficient of variation of a lognormal
// distribution whose underlying normal has standard deviation sigma:
// CV^2 = exp(sigma^2) - 1.
func LogNormalCS2(sigma float64) float64 {
	return math.Exp(sigma*sigma) - 1
}

// LogNormalQuantile returns the q-quantile of a lognormal distribution with
// the given mean (of the distribution itself) and log-space standard
// deviation sigma.
func LogNormalQuantile(mean, sigma, q float64) float64 {
	if mean <= 0 {
		return 0
	}
	mu := math.Log(mean) - sigma*sigma/2
	return math.Exp(mu + sigma*NormQuantile(q))
}

// NormQuantile returns the q-quantile of the standard normal distribution
// using the Beasley-Springer-Moro rational approximation (accurate to about
// 1e-9 over (0, 1)).
func NormQuantile(q float64) float64 {
	if q <= 0 {
		return math.Inf(-1)
	}
	if q >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the central and tail regions.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
	const plow = 0.02425
	switch {
	case q < plow:
		u := math.Sqrt(-2 * math.Log(q))
		return (((((c[0]*u+c[1])*u+c[2])*u+c[3])*u+c[4])*u + c[5]) /
			((((d[0]*u+d[1])*u+d[2])*u+d[3])*u + 1)
	case q > 1-plow:
		u := math.Sqrt(-2 * math.Log(1-q))
		return -(((((c[0]*u+c[1])*u+c[2])*u+c[3])*u+c[4])*u + c[5]) /
			((((d[0]*u+d[1])*u+d[2])*u+d[3])*u + 1)
	default:
		u := q - 0.5
		t := u * u
		return (((((a[0]*t+a[1])*t+a[2])*t+a[3])*t+a[4])*t + a[5]) * u /
			(((((b[0]*t+b[1])*t+b[2])*t+b[3])*t+b[4])*t + 1)
	}
}

// SaturationInflation returns the service-time inflation factor applied to
// a resource running at utilisation rho of its capacity. It is ~1 at low
// utilisation and grows hyperbolically near saturation:
//
//	g(rho) = 1 + coeff * rho^power / (1 - rho)
//
// rho is clamped to [0, cap] with cap slightly below 1 so the factor stays
// finite; callers model overload (demand > capacity) separately by scaling
// achieved throughput.
func SaturationInflation(rho, coeff, power float64) float64 {
	if rho <= 0 {
		return 1
	}
	const clamp = 0.995
	if rho > clamp {
		rho = clamp
	}
	return 1 + coeff*math.Pow(rho, power)/(1-rho)
}
