package tco

// Params are the cost-model inputs.
type Params struct {
	ServerCost    float64 // capital cost per server ($)
	PUE           float64 // power usage effectiveness
	PeakWatts     float64 // per-server peak power draw
	IdleFrac      float64 // idle power as a fraction of peak
	DollarsPerKWh float64
	Servers       int
	LifetimeYears float64
}

// Barroso returns the paper's parameters.
func Barroso() Params {
	return Params{
		ServerCost:    2000,
		PUE:           2.0,
		PeakWatts:     500,
		IdleFrac:      0.5,
		DollarsPerKWh: 0.10,
		Servers:       10000,
		LifetimeYears: 3,
	}
}

// PowerWatts returns one server's power draw at the given utilisation
// under the linear power model P(u) = Pidle + (Ppeak - Pidle) * u.
func (p Params) PowerWatts(util float64) float64 {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	idle := p.IdleFrac * p.PeakWatts
	return idle + (p.PeakWatts-idle)*util
}

// EnergyCost returns the lifetime electricity cost of one server at the
// given average utilisation, including PUE overhead.
func (p Params) EnergyCost(util float64) float64 {
	kw := p.PowerWatts(util) / 1000 * p.PUE
	hours := p.LifetimeYears * 365 * 24
	return kw * hours * p.DollarsPerKWh
}

// TCO returns the lifetime total cost of one server at the given average
// utilisation.
func (p Params) TCO(util float64) float64 {
	return p.ServerCost + p.EnergyCost(util)
}

// ClusterTCO returns the lifetime cost of the whole cluster.
func (p Params) ClusterTCO(util float64) float64 {
	return p.TCO(util) * float64(p.Servers)
}

// ThroughputPerTCOGain returns the relative improvement in throughput per
// TCO dollar when average utilisation rises from baseUtil to newUtil with
// throughput proportional to utilisation (EMU). This reproduces the §5.3
// claims: raising 75% to 90% yields ~15%, raising 20% to 90% yields
// several-fold gains.
func (p Params) ThroughputPerTCOGain(baseUtil, newUtil float64) float64 {
	if baseUtil <= 0 {
		return 0
	}
	throughputRatio := newUtil / baseUtil
	tcoRatio := p.TCO(newUtil) / p.TCO(baseUtil)
	return throughputRatio/tcoRatio - 1
}

// EnergyEfficiencyFrac is the fraction of the gap between the actual power
// curve and perfect proportionality that a realistic power-management
// controller recovers (race-to-idle, sleep states); perfect recovery is
// unattainable because latency-critical workloads cannot tolerate deep
// sleep at moderate load (§5.3's comparison controller achieves ~3% at 75%
// utilisation and under 7% at 20%).
const EnergyEfficiencyFrac = 0.30

// EnergyProportionalityGain returns the throughput/TCO improvement
// achievable by an energy-proportionality controller alone at the same
// utilisation — the comparison of §5.3.
func (p Params) EnergyProportionalityGain(util float64) float64 {
	base := p.TCO(util)
	perfect := p.ServerCost + p.PeakWatts*util/1000*p.PUE*
		p.LifetimeYears*365*24*p.DollarsPerKWh
	saved := (base - perfect) * EnergyEfficiencyFrac
	return base/(base-saved) - 1
}

// Comparison is the §5.3 analysis at one starting utilisation.
type Comparison struct {
	BaseUtil     float64
	TargetUtil   float64
	HeraclesGain float64 // throughput/TCO gain from colocation
	EnergyGain   float64 // gain from energy proportionality alone
}

// Analyze reproduces the paper's two scenarios (75%→90% and 20%→90%).
func Analyze(p Params) []Comparison {
	out := make([]Comparison, 0, 2)
	for _, base := range []float64{0.75, 0.20} {
		out = append(out, Comparison{
			BaseUtil:     base,
			TargetUtil:   0.90,
			HeraclesGain: p.ThroughputPerTCOGain(base, 0.90),
			EnergyGain:   p.EnergyProportionalityGain(base),
		})
	}
	return out
}
