// Package tco implements the total-cost-of-ownership analysis of §5.3,
// using the TCO calculator parameters of Barroso et al.'s case study of
// a datacenter with low per-server cost: $2000 servers with a PUE of
// 2.0, a peak power draw of 500 W, electricity at $0.10/kWh, and a
// cluster of 10,000 servers.
//
// Analyze reproduces the paper's scenarios — the throughput/TCO gain
// from raising utilisation with Heracles versus an
// energy-proportionality controller — and internal/fleet prices whole
// fleet runs through the same model, converting simulated EMU lift into
// dollars.
package tco
