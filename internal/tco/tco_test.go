package tco

import (
	"math"
	"testing"
)

func TestPowerModel(t *testing.T) {
	p := Barroso()
	if got := p.PowerWatts(0); got != 250 {
		t.Fatalf("idle power = %v", got)
	}
	if got := p.PowerWatts(1); got != 500 {
		t.Fatalf("peak power = %v", got)
	}
	if got := p.PowerWatts(0.5); got != 375 {
		t.Fatalf("mid power = %v", got)
	}
	// Clamped.
	if p.PowerWatts(-1) != 250 || p.PowerWatts(2) != 500 {
		t.Fatal("clamping broken")
	}
}

func TestTCOComposition(t *testing.T) {
	p := Barroso()
	if p.TCO(0.5) != p.ServerCost+p.EnergyCost(0.5) {
		t.Fatal("TCO != capex + energy")
	}
	if p.ClusterTCO(0.5) != p.TCO(0.5)*10000 {
		t.Fatal("cluster TCO")
	}
	// TCO grows with utilisation (more energy), but sublinearly.
	if p.TCO(0.9) <= p.TCO(0.2) {
		t.Fatal("TCO should grow with utilisation")
	}
	if p.TCO(0.9)/p.TCO(0.2) > 1.5 {
		t.Fatal("TCO growth should be modest (capex dominates)")
	}
}

func TestHeraclesGainMatchesPaper(t *testing.T) {
	p := Barroso()
	// §5.3: raising a 75%-utilised cluster to 90% yields ~15%
	// throughput/TCO.
	gain := p.ThroughputPerTCOGain(0.75, 0.90)
	if gain < 0.10 || gain > 0.20 {
		t.Fatalf("75%%->90%% gain = %.1f%%, paper reports 15%%", 100*gain)
	}
	// §5.3: raising a 20%-utilised cluster yields a ~3x improvement
	// (306% in the paper).
	gain = p.ThroughputPerTCOGain(0.20, 0.90)
	if gain < 2.0 || gain > 3.5 {
		t.Fatalf("20%%->90%% gain = %.0f%%, paper reports 306%%", 100*gain)
	}
}

func TestEnergyProportionalityGainSmall(t *testing.T) {
	p := Barroso()
	// §5.3: an energy-proportionality controller achieves roughly 3% at
	// 75% utilisation and under 7-10% at 20%.
	at75 := p.EnergyProportionalityGain(0.75)
	if at75 < 0.005 || at75 > 0.06 {
		t.Fatalf("energy gain at 75%% = %.1f%%, paper ~3%%", 100*at75)
	}
	at20 := p.EnergyProportionalityGain(0.20)
	if at20 < 0.03 || at20 > 0.12 {
		t.Fatalf("energy gain at 20%% = %.1f%%, paper <7%%", 100*at20)
	}
	if at20 <= at75 {
		t.Fatal("energy proportionality helps more at lower utilisation")
	}
}

func TestHeraclesBeatsEnergyProportionality(t *testing.T) {
	// The paper's conclusion: as long as useful BE work exists, colocation
	// beats power management at every starting utilisation.
	for _, c := range Analyze(Barroso()) {
		if c.HeraclesGain <= c.EnergyGain {
			t.Fatalf("at %.0f%% util heracles %+.1f%% <= energy %+.1f%%",
				100*c.BaseUtil, 100*c.HeraclesGain, 100*c.EnergyGain)
		}
	}
}

func TestAnalyzeScenarios(t *testing.T) {
	cs := Analyze(Barroso())
	if len(cs) != 2 {
		t.Fatalf("scenarios = %d", len(cs))
	}
	if cs[0].BaseUtil != 0.75 || cs[1].BaseUtil != 0.20 {
		t.Fatal("scenario utilisations")
	}
	for _, c := range cs {
		if c.TargetUtil != 0.90 {
			t.Fatal("target utilisation")
		}
	}
}

func TestZeroBaseUtil(t *testing.T) {
	if got := Barroso().ThroughputPerTCOGain(0, 0.9); got != 0 {
		t.Fatalf("zero base gain = %v", got)
	}
}

func TestEnergyCostScalesWithPUE(t *testing.T) {
	a := Barroso()
	b := Barroso()
	b.PUE = 1.0
	ra := a.EnergyCost(0.5)
	rb := b.EnergyCost(0.5)
	if math.Abs(ra/rb-2.0) > 1e-9 {
		t.Fatalf("PUE scaling: %v vs %v", ra, rb)
	}
}
