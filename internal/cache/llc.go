package cache

import "math"

// Component is one piece of a workload's cache working set, for example a
// hot instruction+data set, a per-request data set, or a streaming region.
type Component struct {
	Name        string
	AccessFrac  float64 // fraction of the task's LLC accesses that touch this component
	FootprintMB float64 // size of the component's working set
	HitMax      float64 // hit ratio achieved when the component fits entirely
	Theta       float64 // concavity of the hit curve; 1 = linear, <1 = front-loaded benefit
	// ScalesWithLoad marks per-request working sets whose effective
	// footprint grows with the number of outstanding requests
	// (paper §3.1: ml_cluster's per-request cache pressure).
	ScalesWithLoad bool
	// Scan marks cyclic streaming access patterns, which thrash under
	// LRU: a line is evicted just before its reuse unless the whole
	// footprint fits, so the hit ratio is a near-step function of
	// occupancy rather than a smooth curve.
	Scan bool
}

// HitRatio returns the component's hit ratio when granted occ MB of cache,
// given an effective footprint of footprint MB.
func (c Component) HitRatio(occ, footprint float64) float64 {
	if footprint <= 0 || c.HitMax <= 0 {
		return 0
	}
	frac := occ / footprint
	if frac >= 1 {
		return c.HitMax
	}
	if frac <= 0 {
		return 0
	}
	if c.Scan {
		// LRU thrashing: almost no reuse survives until the scan nearly
		// fits; ramp over the last 10% to keep the solver stable.
		const knee = 0.9
		if frac <= knee {
			return 0
		}
		return c.HitMax * (frac - knee) / (1 - knee)
	}
	theta := c.Theta
	if theta <= 0 {
		theta = 1
	}
	return c.HitMax * math.Pow(frac, theta)
}

// Demand describes one task's cache behaviour on one socket for the solver.
type Demand struct {
	AccessRate float64     // LLC accesses per second on this socket
	Components []Component // working-set decomposition
	WayMask    uint64      // CAT ways this task may allocate into (bit i = way i)
	// LoadScale multiplies the footprint of ScalesWithLoad components;
	// callers set it to the current number of outstanding requests
	// relative to the component's reference concurrency.
	LoadScale float64
}

// Share is the solver's result for one demand.
type Share struct {
	OccupancyMB float64 // cache space held at the fixed point
	HitRatio    float64 // overall hit ratio across components
	MissRate    float64 // misses per second (DRAM traffic source)
}

// Solver resolves shared-cache occupancy for a set of demands.
type Solver struct {
	WayMB      float64 // capacity of one way in MB
	Ways       int     // number of ways
	Iterations int     // fixed-point iterations; 0 selects the default
	Damping    float64 // 0 selects the default of 0.5
	// RecencyDiscount weighs hits against misses in occupancy pressure;
	// 0 selects the default of 0.5 (a hit renews an existing line, a miss
	// inserts a new one and is twice as effective at claiming space).
	RecencyDiscount float64
}

type compState struct {
	demand    int // index into demands
	comp      Component
	rate      float64 // accesses/s to this component
	footprint float64 // effective footprint (after load scaling)
	mask      uint64
	occ       float64
	pressure  float64
}

// region is a maximal set of ways with an identical sharer set.
type region struct {
	capacity float64
	comps    []int // indices into comps
}

// Scratch holds the solver's working state so repeated Resolve calls on a
// hot path perform no heap allocations. A zero Scratch is ready to use;
// buffers grow to the high-water mark on first use and are reused after.
// The Share slice returned by ResolveScratch aliases the scratch and is
// valid until the next call with the same Scratch.
type Scratch struct {
	comps   []compState
	regions []region
	next    []float64
	active  []int
	out     []Share
}

// Resolve computes the fixed point of occupancy and miss rates. It is the
// allocating convenience form of ResolveScratch; hot paths should hold a
// Scratch and call ResolveScratch instead.
func (s Solver) Resolve(demands []Demand) []Share {
	var sc Scratch
	shares := s.ResolveScratch(&sc, demands)
	out := make([]Share, len(shares))
	copy(out, shares)
	return out
}

// ResolveScratch computes the fixed point of occupancy and miss rates using
// sc's buffers. The returned slice is owned by sc.
func (s Solver) ResolveScratch(sc *Scratch, demands []Demand) []Share {
	iters := s.Iterations
	if iters <= 0 {
		iters = 20
	}
	damp := s.Damping
	if damp <= 0 || damp > 1 {
		damp = 0.5
	}
	recency := s.RecencyDiscount
	if recency <= 0 || recency > 1 {
		recency = 0.5
	}

	comps := sc.comps[:0]
	for di, d := range demands {
		scale := d.LoadScale
		if scale <= 0 {
			scale = 1
		}
		for _, c := range d.Components {
			if c.AccessFrac <= 0 {
				continue
			}
			fp := c.FootprintMB
			if c.ScalesWithLoad {
				fp *= scale
			}
			comps = append(comps, compState{
				demand:    di,
				comp:      c,
				rate:      d.AccessRate * c.AccessFrac,
				footprint: fp,
				mask:      d.WayMask,
			})
		}
	}
	sc.comps = comps

	// Group ways into regions by sharer set. The handful of CAT partitions
	// in play yields very few distinct sharer sets, so a linear scan over
	// the regions found so far beats building a map.
	regions := sc.regions[:0]
	for w := 0; w < s.Ways; w++ {
		bit := uint64(1) << uint(w)
		matched := false
		for ri := range regions {
			r := &regions[ri]
			if sameSharers(comps, r.comps, bit) {
				r.capacity += s.WayMB
				matched = true
				break
			}
		}
		if matched {
			continue
		}
		var rcomps []int
		if n := len(regions); n < cap(regions) {
			// Reclaim the member slice of a previously grown region slot.
			rcomps = regions[:n+1][n].comps[:0]
		}
		for i := range comps {
			if comps[i].mask&bit != 0 {
				rcomps = append(rcomps, i)
			}
		}
		if len(rcomps) == 0 {
			continue
		}
		regions = append(regions, region{capacity: s.WayMB, comps: rcomps})
	}
	sc.regions = regions

	// Initial guess: even split of each region.
	for ri := range regions {
		r := &regions[ri]
		per := r.capacity / float64(len(r.comps))
		for _, ci := range r.comps {
			comps[ci].occ += per
		}
	}
	for i := range comps {
		if comps[i].occ > comps[i].footprint {
			comps[i].occ = comps[i].footprint
		}
	}

	const pressureFloor = 1e-9
	sc.next = growFloats(sc.next, len(comps))
	next := sc.next
	for it := 0; it < iters; it++ {
		for i := range comps {
			c := &comps[i]
			h := c.comp.HitRatio(c.occ, c.footprint)
			// Recency pressure: misses insert new lines; hits renew
			// existing ones at a discount.
			c.pressure = c.rate*((1-h)+recency*h) + pressureFloor
		}
		for i := range next {
			next[i] = 0
		}
		for ri := range regions {
			sc.active = waterFill(comps, &regions[ri], next, sc.active)
		}
		for i := range comps {
			c := &comps[i]
			n := next[i]
			if n > c.footprint {
				n = c.footprint
			}
			c.occ = damp*c.occ + (1-damp)*n
		}
	}

	if cap(sc.out) < len(demands) {
		sc.out = make([]Share, len(demands))
	}
	out := sc.out[:len(demands)]
	for i := range out {
		out[i] = Share{}
	}
	for i := range comps {
		c := &comps[i]
		h := c.comp.HitRatio(c.occ, c.footprint)
		sh := &out[c.demand]
		sh.OccupancyMB += c.occ
		sh.HitRatio += h * c.comp.AccessFrac
		sh.MissRate += c.rate * (1 - h)
	}
	return out
}

// sameSharers reports whether the way selected by bit is shared by exactly
// the components listed in members.
func sameSharers(comps []compState, members []int, bit uint64) bool {
	n := 0
	for i := range comps {
		if comps[i].mask&bit != 0 {
			if n >= len(members) || members[n] != i {
				return false
			}
			n++
		}
	}
	return n == len(members)
}

func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// waterFill divides a region's capacity among its components in proportion
// to pressure, capping each component at its footprint and redistributing
// the excess to the remaining components. The returned slice is the scratch
// buffer (possibly grown) handed back for reuse.
func waterFill(comps []compState, r *region, next []float64, scratch []int) []int {
	remaining := r.capacity
	if cap(scratch) < len(r.comps) {
		scratch = make([]int, len(r.comps))
	}
	active := scratch[:len(r.comps)]
	copy(active, r.comps)
	// The allocation already granted in other regions counts against the
	// footprint cap.
	for rounds := 0; rounds < len(r.comps)+1 && remaining > 1e-12 && len(active) > 0; rounds++ {
		var total float64
		for _, ci := range active {
			total += comps[ci].pressure
		}
		if total <= 0 {
			break
		}
		// Survivors of this round are compacted to the front of active.
		keep := 0
		allocated := 0.0
		for _, ci := range active {
			share := remaining * comps[ci].pressure / total
			room := comps[ci].footprint - next[ci]
			if room <= 0 {
				continue
			}
			if share >= room {
				next[ci] += room
				allocated += room
			} else {
				next[ci] += share
				allocated += share
				active[keep] = ci
				keep++
			}
		}
		remaining -= allocated
		if keep == len(active) {
			// Nobody hit a cap; the region is fully distributed.
			break
		}
		active = active[:keep]
	}
	return scratch
}

// MaskOfWays returns a contiguous way mask of n ways starting at way lo.
func MaskOfWays(lo, n int) uint64 {
	if n <= 0 {
		return 0
	}
	if n >= 64 {
		n = 64
	}
	var m uint64
	if n == 64 {
		m = ^uint64(0)
	} else {
		m = (uint64(1) << uint(n)) - 1
	}
	return m << uint(lo)
}

// FullMask returns a mask covering all ways of the solver.
func FullMask(ways int) uint64 { return MaskOfWays(0, ways) }
