// Package cache models a way-partitioned last-level cache: per-workload
// miss-ratio curves built from working-set components, and a fixed-point
// occupancy solver that divides cache capacity among the tasks allowed
// to allocate into each way.
//
// Occupancy is driven by recency pressure — how often a component's
// lines are touched — with a discount for hits (a line that hits is
// renewed in place, while a miss inserts a new line). Capacity a
// component cannot use (its footprint is smaller than its share) is
// redistributed to the other sharers by water-filling. This captures the
// behaviours the paper's characterisation (§3.3) depends on: streaming
// antagonists with large footprints evict the small-but-hot working sets
// of latency-critical workloads, antagonists sized below their partition
// stay contained, and CAT way-partitioning confines each task's
// insertions to its own ways.
//
// The solver's outputs (per-task hit ratios and miss bandwidth) feed the
// machine model's service-time inflation and DRAM demand; ResolveScratch
// is the allocation-free variant the steady-state stepping hot path
// uses.
package cache
