package cache

import (
	"math"
	"testing"
	"testing/quick"
)

func solver() Solver { return Solver{WayMB: 2.25, Ways: 20} }

func TestHitRatioCurve(t *testing.T) {
	c := Component{FootprintMB: 10, HitMax: 0.9, Theta: 1}
	if got := c.HitRatio(10, 10); got != 0.9 {
		t.Fatalf("full fit hit = %v", got)
	}
	if got := c.HitRatio(20, 10); got != 0.9 {
		t.Fatalf("over-provisioned hit = %v", got)
	}
	if got := c.HitRatio(5, 10); math.Abs(got-0.45) > 1e-12 {
		t.Fatalf("half fit linear hit = %v", got)
	}
	if got := c.HitRatio(0, 10); got != 0 {
		t.Fatalf("no cache hit = %v", got)
	}
}

func TestHitRatioConcave(t *testing.T) {
	c := Component{FootprintMB: 10, HitMax: 1, Theta: 0.5}
	// Theta < 1: front-loaded benefit, h(half) > half of h(full).
	if got := c.HitRatio(5, 10); got <= 0.5 {
		t.Fatalf("theta=0.5 at half occupancy = %v, want > 0.5", got)
	}
}

func TestHitRatioScanThrashes(t *testing.T) {
	c := Component{FootprintMB: 40, HitMax: 0.98, Scan: true}
	if got := c.HitRatio(20, 40); got != 0 {
		t.Fatalf("scan at half occupancy should thrash, got %v", got)
	}
	if got := c.HitRatio(40, 40); got != 0.98 {
		t.Fatalf("fitting scan hit = %v", got)
	}
	if got := c.HitRatio(38, 40); got <= 0 || got >= 0.98 {
		t.Fatalf("knee region should interpolate, got %v", got)
	}
}

func TestHitRatioMonotoneProperty(t *testing.T) {
	if err := quick.Check(func(fp, a, b uint16, theta uint8) bool {
		c := Component{
			FootprintMB: float64(fp%200) + 1,
			HitMax:      0.95,
			Theta:       float64(theta%30)/10 + 0.1,
		}
		x, y := float64(a%250), float64(b%250)
		if x > y {
			x, y = y, x
		}
		return c.HitRatio(x, c.FootprintMB) <= c.HitRatio(y, c.FootprintMB)+1e-12
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResolveSingleDemandGetsFootprint(t *testing.T) {
	s := solver()
	shares := s.Resolve([]Demand{{
		AccessRate: 1e8,
		Components: []Component{{AccessFrac: 1, FootprintMB: 10, HitMax: 0.95, Theta: 1}},
		WayMask:    FullMask(20),
	}})
	if math.Abs(shares[0].OccupancyMB-10) > 0.2 {
		t.Fatalf("occupancy = %v, want ~10 (footprint)", shares[0].OccupancyMB)
	}
	if shares[0].HitRatio < 0.9 {
		t.Fatalf("hit = %v, want ~0.95", shares[0].HitRatio)
	}
}

func TestResolveCapacityConservation(t *testing.T) {
	s := solver()
	demands := []Demand{
		{AccessRate: 1e9, Components: []Component{{AccessFrac: 1, FootprintMB: 100, HitMax: 0.5, Theta: 1}}, WayMask: FullMask(20)},
		{AccessRate: 2e9, Components: []Component{{AccessFrac: 1, FootprintMB: 200, HitMax: 0.5, Theta: 1}}, WayMask: FullMask(20)},
	}
	shares := s.Resolve(demands)
	total := shares[0].OccupancyMB + shares[1].OccupancyMB
	if total > 45.01 {
		t.Fatalf("occupancy %v exceeds capacity 45", total)
	}
	if total < 44 {
		t.Fatalf("oversubscribed cache underfilled: %v", total)
	}
}

func TestResolveFootprintCapAndRedistribution(t *testing.T) {
	s := solver()
	// A small, hot task plus a big-footprint task: the small task gets its
	// footprint and the rest flows to the big one.
	demands := []Demand{
		{AccessRate: 5e9, Components: []Component{{AccessFrac: 1, FootprintMB: 5, HitMax: 0.99, Theta: 1}}, WayMask: FullMask(20)},
		{AccessRate: 1e8, Components: []Component{{AccessFrac: 1, FootprintMB: 500, HitMax: 0.4, Theta: 1}}, WayMask: FullMask(20)},
	}
	shares := s.Resolve(demands)
	if shares[0].OccupancyMB > 5.01 {
		t.Fatalf("capped task exceeded footprint: %v", shares[0].OccupancyMB)
	}
	if shares[1].OccupancyMB < 35 {
		t.Fatalf("freed capacity not redistributed: big task got %v", shares[1].OccupancyMB)
	}
}

func TestResolvePartitionIsolation(t *testing.T) {
	s := solver()
	// Disjoint CAT masks: the streaming task cannot evict the hot task.
	demands := []Demand{
		{AccessRate: 1e8, Components: []Component{{AccessFrac: 1, FootprintMB: 8, HitMax: 0.99, Theta: 1}}, WayMask: MaskOfWays(10, 10)},
		{AccessRate: 5e9, Components: []Component{{AccessFrac: 1, FootprintMB: 100, HitMax: 0.9, Scan: true}}, WayMask: MaskOfWays(0, 10)},
	}
	shares := s.Resolve(demands)
	if shares[0].OccupancyMB < 7.9 {
		t.Fatalf("partitioned hot task evicted: %v MB", shares[0].OccupancyMB)
	}
	if shares[1].OccupancyMB > 22.51 {
		t.Fatalf("stream escaped its partition: %v MB", shares[1].OccupancyMB)
	}
}

func TestResolveBigStreamEvictsHotSet(t *testing.T) {
	s := solver()
	// Shared cache: an intense nearly-cache-sized scan squeezes a
	// low-rate hot working set (the §3.3 LLC (big) behaviour).
	demands := []Demand{
		{AccessRate: 1.2e8, Components: []Component{{AccessFrac: 1, FootprintMB: 8, HitMax: 0.99, Theta: 0.6}}, WayMask: FullMask(20)},
		{AccessRate: 4e9, Components: []Component{{AccessFrac: 1, FootprintMB: 42, HitMax: 0.98, Scan: true}}, WayMask: FullMask(20)},
	}
	shares := s.Resolve(demands)
	if shares[0].OccupancyMB > 6 {
		t.Fatalf("hot set survived with %v MB against intense scan", shares[0].OccupancyMB)
	}
	if shares[1].OccupancyMB > 42.01 {
		t.Fatalf("scan exceeded its footprint: %v", shares[1].OccupancyMB)
	}
}

func TestResolveBigStreamThrashesAgainstActiveCompetitor(t *testing.T) {
	s := solver()
	// When the competitor's access rate is comparable, the near-cache-
	// sized scan cannot hold its whole footprint and thrashes — this is
	// what turns the LLC (big) antagonist into a DRAM antagonist (§3.3).
	demands := []Demand{
		{AccessRate: 2e9, Components: []Component{{AccessFrac: 1, FootprintMB: 8, HitMax: 0.99, Theta: 0.6}}, WayMask: FullMask(20)},
		{AccessRate: 4e9, Components: []Component{{AccessFrac: 1, FootprintMB: 42, HitMax: 0.98, Scan: true}}, WayMask: FullMask(20)},
	}
	shares := s.Resolve(demands)
	if shares[1].HitRatio > 0.5 {
		t.Fatalf("scan should thrash against an active competitor, hit=%v", shares[1].HitRatio)
	}
	if shares[1].MissRate < 1e9 {
		t.Fatalf("thrashing scan should miss heavily, missRate=%v", shares[1].MissRate)
	}
}

func TestResolveSmallStreamContained(t *testing.T) {
	s := solver()
	// A stream that fits (11 MB of 45) caches itself and leaves the hot
	// set alone (LLC (small) row of Figure 1 for websearch).
	demands := []Demand{
		{AccessRate: 1.2e8, Components: []Component{{AccessFrac: 1, FootprintMB: 8, HitMax: 0.99, Theta: 0.6}}, WayMask: FullMask(20)},
		{AccessRate: 4e9, Components: []Component{{AccessFrac: 1, FootprintMB: 11, HitMax: 0.98, Scan: true}}, WayMask: FullMask(20)},
	}
	shares := s.Resolve(demands)
	if shares[0].OccupancyMB < 7.5 {
		t.Fatalf("hot set lost space to a fitting stream: %v MB", shares[0].OccupancyMB)
	}
	if shares[1].HitRatio < 0.9 {
		t.Fatalf("fitting stream should hit, got %v", shares[1].HitRatio)
	}
}

func TestLoadScaleGrowsFootprint(t *testing.T) {
	s := solver()
	demand := Demand{
		AccessRate: 1e9,
		Components: []Component{{AccessFrac: 1, FootprintMB: 30, HitMax: 0.97, Theta: 1, ScalesWithLoad: true}},
		WayMask:    FullMask(20),
	}
	demand.LoadScale = 1
	low := s.Resolve([]Demand{demand})[0]
	demand.LoadScale = 3
	high := s.Resolve([]Demand{demand})[0]
	if high.HitRatio >= low.HitRatio {
		t.Fatalf("3x footprint should lower hit ratio: %v -> %v", low.HitRatio, high.HitRatio)
	}
}

func TestMaskHelpers(t *testing.T) {
	if MaskOfWays(0, 4) != 0xf {
		t.Fatalf("MaskOfWays(0,4) = %x", MaskOfWays(0, 4))
	}
	if MaskOfWays(4, 4) != 0xf0 {
		t.Fatalf("MaskOfWays(4,4) = %x", MaskOfWays(4, 4))
	}
	if MaskOfWays(0, 0) != 0 {
		t.Fatal("empty mask should be 0")
	}
	if MaskOfWays(0, 64) != ^uint64(0) {
		t.Fatal("64-way mask should be all ones")
	}
	if FullMask(20) != (1<<20)-1 {
		t.Fatalf("FullMask(20) = %x", FullMask(20))
	}
}

func TestResolveEmptyDemands(t *testing.T) {
	s := solver()
	if got := s.Resolve(nil); len(got) != 0 {
		t.Fatalf("resolve(nil) = %v", got)
	}
	// A demand with zero access-frac components resolves to zero shares.
	shares := s.Resolve([]Demand{{AccessRate: 1e9, WayMask: FullMask(20)}})
	if shares[0].OccupancyMB != 0 {
		t.Fatalf("componentless demand got %v MB", shares[0].OccupancyMB)
	}
}

func TestResolveMissRateNonNegativeProperty(t *testing.T) {
	s := solver()
	if err := quick.Check(func(rate uint32, fp uint16) bool {
		shares := s.Resolve([]Demand{{
			AccessRate: float64(rate),
			Components: []Component{{AccessFrac: 1, FootprintMB: float64(fp%500) + 1, HitMax: 0.9, Theta: 1}},
			WayMask:    FullMask(20),
		}})
		return shares[0].MissRate >= 0 && shares[0].MissRate <= float64(rate)+1
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
