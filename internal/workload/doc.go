// Package workload defines the demand models for the paper's workloads:
// the three latency-critical (LC) services characterised in §3.1
// (websearch, ml_cluster, memkeyval) and the best-effort (BE) jobs and
// antagonist microbenchmarks from §3.2/§5.1 (stream-LLC, stream-DRAM,
// cpu_pwr, iperf, brain, streetview, and the spinloop HyperThread
// antagonist).
//
// An LC workload is modelled as a service-time decomposition (compute +
// memory-stall + network serialisation) whose components are inflated by
// the machine model according to resource contention, plus a cache
// working-set decomposition that drives both the miss-ratio curve and
// the DRAM bandwidth demand. A BE workload is modelled as a per-core
// demand vector plus a throughput model normalised against running
// alone.
//
// Specs here are uncalibrated descriptions; internal/machine calibrates
// them against a hardware configuration (peak QPS, SLO, guaranteed
// frequency, alone-rate) and internal/experiment caches the calibrated
// results. LCByName and BEByName are the catalogue every higher layer —
// CLIs, scenarios, the control-plane API — resolves workload names
// through.
package workload
