package workload

import "heracles/internal/cache"

// PlacementKind describes how a BE task or antagonist is placed relative
// to the LC workload during an experiment.
type PlacementKind int

const (
	// PlaceDedicated pins the task to its own physical cores (what
	// Heracles enforces, and what the LLC/DRAM/power antagonists use in
	// the characterisation of §3.2).
	PlaceDedicated PlacementKind = iota
	// PlaceHTSibling pins the task onto the sibling hyperthreads of the
	// LC workload's cores (the HyperThread antagonist of §3.2).
	PlaceHTSibling
	// PlaceOSShared lets the task float across all cores under CFS with
	// low shares and no other isolation (the "brain" rows of Figure 1).
	PlaceOSShared
)

// String returns the placement name.
func (p PlacementKind) String() string {
	switch p {
	case PlaceDedicated:
		return "dedicated"
	case PlaceHTSibling:
		return "ht-sibling"
	case PlaceOSShared:
		return "os-shared"
	default:
		return "unknown"
	}
}

// BESpec describes a best-effort task or antagonist microbenchmark.
type BESpec struct {
	Name string

	// Work model: one unit of work costs CPUFrac of pure compute and
	// MemFrac of memory stalls (at the reference miss ratio). The machine
	// model inflates the memory portion by cache and bandwidth
	// contention, and divides by the relative core frequency.
	CPUFrac float64
	MemFrac float64

	// Cache and memory behaviour.
	AccessRatePerCore float64 // LLC accesses per second per core at nominal frequency
	CacheComponents   []cache.Component

	// Power.
	Activity float64 // per-core activity factor (power virus > 1)

	// Network.
	NetDemandGBs float64 // total egress demand; 0 for none
	NetFlows     int     // TCP flow count (mice flows for iperf)

	// HTPenalty is the fractional increase in the co-runner's compute
	// time when this task runs on the sibling hyperthread of a core.
	HTPenalty float64

	// NetworkBound marks tasks whose useful throughput is their achieved
	// egress bandwidth rather than core work (iperf).
	NetworkBound bool
}

// BE is a calibrated best-effort workload instance.
type BE struct {
	Spec BESpec
	// AloneRate is the task's work rate running alone on the reference
	// machine (all cores, full LLC, no caps), used to normalise EMU.
	AloneRate float64
	// AloneHit is the cache hit ratio running alone, the reference point
	// for the memory-stall inflation in the throughput model.
	AloneHit float64
}

// streamComponents returns the cache working set of a streaming
// microbenchmark over an array of the given size.
func streamComponents(arrayMB float64) []cache.Component {
	return []cache.Component{
		// A cyclic streaming pass has no temporal reuse until the array
		// fits in the cache, at which point nearly everything hits.
		{Name: "stream", AccessFrac: 1, FootprintMB: arrayMB, HitMax: 0.98, Scan: true},
	}
}

// StreamLLC returns the LLC streaming benchmark sized to about half the
// LLC — identical to the "LLC (med)" antagonist of §3.2 and the
// "stream-LLC" BE task of §5.1.
func StreamLLC() BESpec {
	return BESpec{
		Name:              "stream-LLC",
		CPUFrac:           0.25,
		MemFrac:           0.75,
		AccessRatePerCore: 125e6,
		CacheComponents:   streamComponents(22),
		Activity:          0.85,
		HTPenalty:         0.45,
	}
}

// LLCSmall returns the quarter-LLC streaming antagonist ("LLC (small)").
func LLCSmall() BESpec {
	s := StreamLLC()
	s.Name = "LLC (small)"
	s.CacheComponents = streamComponents(11)
	return s
}

// LLCMedium returns the half-LLC streaming antagonist ("LLC (med)").
func LLCMedium() BESpec {
	s := StreamLLC()
	s.Name = "LLC (med)"
	return s
}

// LLCBig returns the streaming antagonist sized to almost the whole LLC
// ("LLC (big)"). Because it barely fits, it both evicts the LC hot working
// set and spills significant traffic to DRAM.
func LLCBig() BESpec {
	s := StreamLLC()
	s.Name = "LLC (big)"
	s.CacheComponents = streamComponents(42)
	return s
}

// StreamDRAM returns the DRAM streaming benchmark over an array far larger
// than the LLC ("DRAM" antagonist, "stream-DRAM" BE task). Per-core demand
// is ~8 GB/s, so a handful of cores saturate a socket's channels.
func StreamDRAM() BESpec {
	return BESpec{
		Name:              "stream-DRAM",
		CPUFrac:           0.1,
		MemFrac:           0.9,
		AccessRatePerCore: 125e6,
		CacheComponents:   streamComponents(4096),
		Activity:          0.75,
		HTPenalty:         0.5,
	}
}

// CPUPower returns the CPU power virus (§3.2): it stresses every unit of
// the core, drawing maximum power, and is pure compute.
func CPUPower() BESpec {
	return BESpec{
		Name:              "cpu_pwr",
		CPUFrac:           1.0,
		MemFrac:           0.0,
		AccessRatePerCore: 1e6,
		CacheComponents: []cache.Component{
			{Name: "regs", AccessFrac: 1, FootprintMB: 0.5, HitMax: 0.999, Theta: 0.5},
		},
		Activity:  1.35,
		HTPenalty: 0.55,
	}
}

// Spinloop returns the minimal HyperThread antagonist of §3.2: a tight
// register-only spinloop that establishes a lower bound on hyperthread
// interference.
func Spinloop() BESpec {
	return BESpec{
		Name:              "spinloop",
		CPUFrac:           1.0,
		MemFrac:           0.0,
		AccessRatePerCore: 0,
		Activity:          0.45,
		HTPenalty:         0.12,
	}
}

// Iperf returns the network streaming antagonist (§3.2): many low-bandwidth
// "mice" flows that saturate transmit bandwidth and cannot be tamed by TCP
// congestion control alone.
func Iperf() BESpec {
	return BESpec{
		Name:              "iperf",
		CPUFrac:           1.0,
		MemFrac:           0.0,
		AccessRatePerCore: 1e6,
		Activity:          0.5,
		NetDemandGBs:      1.25, // fills a 10 Gb link
		NetFlows:          100,
		HTPenalty:         0.25,
		NetworkBound:      true,
	}
}

// Brain returns the production deep-learning BE workload (§5.1):
// computationally intensive, sensitive to LLC size, high DRAM bandwidth.
func Brain() BESpec {
	return BESpec{
		Name:              "brain",
		CPUFrac:           0.55,
		MemFrac:           0.45,
		AccessRatePerCore: 60e6,
		CacheComponents: []cache.Component{
			{Name: "weights", AccessFrac: 0.7, FootprintMB: 28, HitMax: 0.95, Theta: 0.8},
			{Name: "activations", AccessFrac: 0.3, FootprintMB: 512, HitMax: 0.2, Theta: 1.0},
		},
		Activity:  1.15,
		HTPenalty: 0.5,
	}
}

// Streetview returns the production image-stitching BE workload (§5.1):
// highly demanding on the DRAM subsystem, moderate compute.
func Streetview() BESpec {
	return BESpec{
		Name:              "streetview",
		CPUFrac:           0.2,
		MemFrac:           0.8,
		AccessRatePerCore: 110e6,
		CacheComponents: []cache.Component{
			{Name: "tiles", AccessFrac: 1, FootprintMB: 2048, HitMax: 0.15, Theta: 1.0},
		},
		Activity:  0.8,
		HTPenalty: 0.5,
	}
}

// Filler returns a neutral compute companion used only by the
// characterisation harness: it occupies the non-LC cores with typical
// activity so that "enough cores to satisfy the SLO" is sized under
// realistic (non-turbo) frequency conditions, without generating cache,
// memory or network interference of its own.
func Filler() BESpec {
	return BESpec{
		Name:              "filler",
		CPUFrac:           1.0,
		MemFrac:           0.0,
		AccessRatePerCore: 0,
		Activity:          0.7,
		HTPenalty:         0,
	}
}

// BESpecs returns the production BE workloads used in the evaluation
// (§5.1), excluding the synthetic antagonists.
func BESpecs() []BESpec {
	return []BESpec{StreamLLC(), StreamDRAM(), CPUPower(), Iperf(), Brain(), Streetview()}
}

// Antagonists returns the §3.2 characterisation microbenchmarks in the
// order of Figure 1's rows (brain is appended by the harness with
// OS-shared placement).
func Antagonists() []BESpec {
	return []BESpec{LLCSmall(), LLCMedium(), LLCBig(), StreamDRAM(), Spinloop(), CPUPower(), Iperf()}
}

// BEByName returns the BE spec with the given name among both the
// evaluation workloads and the antagonists, or false.
func BEByName(name string) (BESpec, bool) {
	for _, s := range BESpecs() {
		if s.Name == name {
			return s, true
		}
	}
	for _, s := range Antagonists() {
		if s.Name == name {
			return s, true
		}
	}
	return BESpec{}, false
}
