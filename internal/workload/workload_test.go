package workload

import (
	"testing"
	"time"
)

func TestLCSpecsComplete(t *testing.T) {
	specs := LCSpecs()
	if len(specs) != 3 {
		t.Fatalf("want 3 LC workloads, got %d", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		names[s.Name] = true
		if s.SLOQuantile < 0.9 || s.SLOQuantile > 0.999 {
			t.Fatalf("%s: quantile %v", s.Name, s.SLOQuantile)
		}
		if s.SLOMultiplier <= 1 {
			t.Fatalf("%s: SLO multiplier %v", s.Name, s.SLOMultiplier)
		}
		if s.BaseService() <= 0 {
			t.Fatalf("%s: base service %v", s.Name, s.BaseService())
		}
		if s.AccessesPerReq <= 0 || len(s.CacheComponents) == 0 {
			t.Fatalf("%s: cache model missing", s.Name)
		}
		var frac float64
		for _, c := range s.CacheComponents {
			frac += c.AccessFrac
		}
		if frac < 0.99 || frac > 1.01 {
			t.Fatalf("%s: access fractions sum to %v", s.Name, frac)
		}
	}
	for _, want := range []string{"websearch", "ml_cluster", "memkeyval"} {
		if !names[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestLCQuantiles(t *testing.T) {
	// §3.1: websearch and memkeyval have 99%-ile SLOs, ml_cluster 95%-ile.
	if Websearch().SLOQuantile != 0.99 {
		t.Fatal("websearch quantile")
	}
	if MLCluster().SLOQuantile != 0.95 {
		t.Fatal("ml_cluster quantile")
	}
	if Memkeyval().SLOQuantile != 0.99 {
		t.Fatal("memkeyval quantile")
	}
}

func TestMemkeyvalIsFast(t *testing.T) {
	// §3.1: memkeyval processes requests orders of magnitude faster than
	// websearch and is network-intensive.
	mk, ws := Memkeyval(), Websearch()
	if mk.BaseService() > ws.BaseService()/50 {
		t.Fatalf("memkeyval service %v vs websearch %v", mk.BaseService(), ws.BaseService())
	}
	if mk.BytesPerReq <= 0 {
		t.Fatal("memkeyval must have network demand")
	}
}

func TestMLClusterHasLoadScalingFootprint(t *testing.T) {
	// §3.1: ml_cluster's per-request working set scales with outstanding
	// requests.
	found := false
	for _, c := range MLCluster().CacheComponents {
		if c.ScalesWithLoad {
			found = true
		}
	}
	if !found {
		t.Fatal("ml_cluster needs a ScalesWithLoad component")
	}
}

func TestLCByName(t *testing.T) {
	if _, ok := LCByName("websearch"); !ok {
		t.Fatal("websearch not found")
	}
	if _, ok := LCByName("nope"); ok {
		t.Fatal("phantom workload found")
	}
}

func TestBESpecsComplete(t *testing.T) {
	specs := BESpecs()
	if len(specs) != 6 {
		t.Fatalf("want 6 BE workloads, got %d", len(specs))
	}
	for _, s := range specs {
		if s.CPUFrac+s.MemFrac <= 0 {
			t.Fatalf("%s: empty work model", s.Name)
		}
		if s.Activity <= 0 {
			t.Fatalf("%s: activity %v", s.Name, s.Activity)
		}
	}
}

func TestAntagonistsMatchFigure1Rows(t *testing.T) {
	ants := Antagonists()
	wantNames := []string{"LLC (small)", "LLC (med)", "LLC (big)", "stream-DRAM", "spinloop", "cpu_pwr", "iperf"}
	if len(ants) != len(wantNames) {
		t.Fatalf("antagonist count %d", len(ants))
	}
	for i, want := range wantNames {
		if ants[i].Name != want {
			t.Fatalf("antagonist %d = %s, want %s", i, ants[i].Name, want)
		}
	}
}

func TestLLCAntagonistSizes(t *testing.T) {
	// §3.2: arrays sized to a quarter, half, and almost all of the 45 MB LLC.
	small := LLCSmall().CacheComponents[0].FootprintMB
	med := LLCMedium().CacheComponents[0].FootprintMB
	big := LLCBig().CacheComponents[0].FootprintMB
	if !(small < med && med < big) {
		t.Fatalf("sizes not ordered: %v %v %v", small, med, big)
	}
	if small > 45.0/3 || big < 45*0.8 {
		t.Fatalf("sizes off: small=%v big=%v", small, big)
	}
}

func TestPowerVirusProfile(t *testing.T) {
	// §3.2: the power virus stresses all core components — activity above
	// every other workload, pure compute.
	pv := CPUPower()
	if pv.Activity <= 1.2 {
		t.Fatalf("power virus activity %v", pv.Activity)
	}
	if pv.MemFrac != 0 {
		t.Fatal("power virus should be compute-only")
	}
}

func TestIperfProfile(t *testing.T) {
	// §3.2: many low-bandwidth mice flows saturating the link.
	ip := Iperf()
	if !ip.NetworkBound || ip.NetFlows < 50 || ip.NetDemandGBs < 1 {
		t.Fatalf("iperf profile: %+v", ip)
	}
}

func TestStreetviewIsDRAMBound(t *testing.T) {
	sv := Streetview()
	if sv.MemFrac < 0.5 {
		t.Fatalf("streetview MemFrac %v", sv.MemFrac)
	}
}

func TestBEByName(t *testing.T) {
	for _, name := range []string{"brain", "streetview", "LLC (big)", "spinloop"} {
		if _, ok := BEByName(name); !ok {
			t.Fatalf("%s not found", name)
		}
	}
	if _, ok := BEByName("nope"); ok {
		t.Fatal("phantom BE found")
	}
}

func TestPlacementString(t *testing.T) {
	if PlaceDedicated.String() != "dedicated" ||
		PlaceHTSibling.String() != "ht-sibling" ||
		PlaceOSShared.String() != "os-shared" {
		t.Fatal("placement names")
	}
	if PlacementKind(99).String() != "unknown" {
		t.Fatal("unknown placement name")
	}
}

func TestFillerIsNeutral(t *testing.T) {
	f := Filler()
	if f.AccessRatePerCore != 0 || f.NetDemandGBs != 0 || f.HTPenalty != 0 {
		t.Fatalf("filler must not interfere: %+v", f)
	}
}

func TestBaseService(t *testing.T) {
	s := LCSpec{CPUTime: 3 * time.Millisecond, MemTime: time.Millisecond}
	if s.BaseService() != 4*time.Millisecond {
		t.Fatalf("base service %v", s.BaseService())
	}
}
