package workload

import (
	"time"

	"heracles/internal/cache"
)

// LCSpec describes a latency-critical workload before calibration.
// Durations are at nominal frequency with the full LLC and an idle memory
// system; the machine model scales them by contention factors.
type LCSpec struct {
	Name string

	// SLOQuantile is the tail percentile the SLO is defined on
	// (0.99 for websearch and memkeyval, 0.95 for ml_cluster).
	SLOQuantile float64
	// SLOMultiplier sets the SLO as a multiple of the unloaded tail
	// latency; calibration computes SLO = SLOMultiplier * p(q) at 5% load
	// on the reference machine. Figure 4 of the paper implies ~2.5x for
	// websearch/ml_cluster and ~5x for memkeyval (whose unloaded latency
	// is a tiny fraction of its SLO).
	SLOMultiplier float64

	// Service-time decomposition per request.
	CPUTime time.Duration // pure compute at nominal GHz
	MemTime time.Duration // memory stalls with full LLC, idle DRAM
	Sigma   float64       // lognormal sigma of the service-time distribution

	// Cache and memory behaviour.
	AccessesPerReq  float64           // LLC accesses per request
	CacheComponents []cache.Component // working-set decomposition
	RefOutstanding  float64           // concurrency at which ScalesWithLoad footprints are specified

	// Network.
	BytesPerReq float64 // egress bytes per response
	Flows       int     // TCP flows used by the service

	// Power.
	Activity float64 // per-core power activity factor while processing

	// RampPenalty scales the additive tail-latency penalty that appears
	// when the package is power-saturated while the LC cores are mostly
	// idle (active-idle exit plus frequency ramp; paper §3.3 "power
	// interference has significant impact at lower utilization").
	RampPenalty time.Duration

	// OSSharedPenalty is the scheduling-delay tail added when the
	// workload shares cores with a BE task under plain CFS (the "brain"
	// rows of Figure 1).
	OSSharedPenalty time.Duration
}

// LC is a calibrated latency-critical workload instance.
type LC struct {
	Spec LCSpec

	// Calibrated on the reference machine (see machine.CalibrateLC).
	SLO           time.Duration // tail-latency target
	PeakQPS       float64       // 100% load; max QPS meeting the SLO alone
	GuaranteedGHz float64       // frequency when running alone at full load
}

// BaseService returns the mean service time with no contention.
func (s LCSpec) BaseService() time.Duration { return s.CPUTime + s.MemTime }

// Websearch returns the model of the query-serving leaf of a production
// web search service (§3.1): compute-intensive scoring over a DRAM-resident
// index shard, ~40% of DRAM bandwidth at peak, a small but hot
// instruction+data working set, negligible network demand, 99%-ile SLO in
// the tens of milliseconds.
func Websearch() LCSpec {
	return LCSpec{
		Name:          "websearch",
		SLOQuantile:   0.99,
		SLOMultiplier: 2.6,
		CPUTime:       7500 * time.Microsecond,
		MemTime:       2500 * time.Microsecond,
		Sigma:         0.45,
		// ~672K LLC accesses/request; with the component mix below the
		// full-LLC miss ratio is ~1/3, giving ~14 MB of DRAM traffic per
		// request and ~40% of the machine's bandwidth at peak load.
		AccessesPerReq: 672e3,
		CacheComponents: []cache.Component{
			{Name: "hot", AccessFrac: 0.67, FootprintMB: 8, HitMax: 0.99, Theta: 0.6},
			{Name: "index", AccessFrac: 0.33, FootprintMB: 512, HitMax: 0.30, Theta: 1.0},
		},
		RefOutstanding:  32,
		BytesPerReq:     6 * 1024,
		Flows:           64,
		Activity:        1.0,
		RampPenalty:     22 * time.Millisecond,
		OSSharedPenalty: 90 * time.Millisecond,
	}
}

// MLCluster returns the model of the real-time text clustering service
// (§3.1): slightly less compute-intensive than websearch, more DRAM
// bandwidth (~60% at peak) with super-linear growth versus load because
// each outstanding request adds a small cache footprint, 95%-ile SLO in
// the tens of milliseconds, no network demand to speak of.
func MLCluster() LCSpec {
	return LCSpec{
		Name:           "ml_cluster",
		SLOQuantile:    0.95,
		SLOMultiplier:  2.3,
		CPUTime:        4200 * time.Microsecond,
		MemTime:        1800 * time.Microsecond,
		Sigma:          0.40,
		AccessesPerReq: 440e3,
		CacheComponents: []cache.Component{
			// Per-request working set: small per request, but it scales
			// with the number of outstanding requests, which is what
			// spills to DRAM at load (§3.1) — near peak the aggregate
			// footprint approaches the full LLC and misses grow
			// super-linearly.
			{Name: "per-request", AccessFrac: 0.55, FootprintMB: 29, HitMax: 0.97, Theta: 0.7, ScalesWithLoad: true},
			{Name: "model", AccessFrac: 0.45, FootprintMB: 360, HitMax: 0.32, Theta: 1.0},
		},
		RefOutstanding:  24,
		BytesPerReq:     2 * 1024,
		Flows:           48,
		Activity:        0.85,
		RampPenalty:     4 * time.Millisecond,
		OSSharedPenalty: 35 * time.Millisecond,
	}
}

// Memkeyval returns the model of the in-memory key-value store (§3.1):
// very little processing per request, hundreds of thousands of requests
// per second at peak, 99%-ile SLO of a few hundred microseconds, network
// bandwidth limited at peak, low DRAM bandwidth (~20% at peak), and both a
// static instruction working set and a per-request data working set.
func Memkeyval() LCSpec {
	return LCSpec{
		Name:           "memkeyval",
		SLOQuantile:    0.99,
		SLOMultiplier:  5.0,
		CPUTime:        34 * time.Microsecond,
		MemTime:        6 * time.Microsecond,
		Sigma:          0.55,
		AccessesPerReq: 3500,
		CacheComponents: []cache.Component{
			{Name: "instructions", AccessFrac: 0.45, FootprintMB: 4, HitMax: 0.995, Theta: 0.5},
			{Name: "per-request", AccessFrac: 0.55, FootprintMB: 10, HitMax: 0.80, Theta: 0.9, ScalesWithLoad: true},
		},
		RefOutstanding:  16,
		BytesPerReq:     1350,
		Flows:           64,
		Activity:        1.05,
		RampPenalty:     1200 * time.Microsecond,
		OSSharedPenalty: 2500 * time.Microsecond,
	}
}

// LCSpecs returns the three latency-critical workload models in the order
// the paper presents them.
func LCSpecs() []LCSpec {
	return []LCSpec{Websearch(), MLCluster(), Memkeyval()}
}

// LCByName returns the LC spec with the given name, or false.
func LCByName(name string) (LCSpec, bool) {
	for _, s := range LCSpecs() {
		if s.Name == name {
			return s, true
		}
	}
	return LCSpec{}, false
}
