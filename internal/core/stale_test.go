package core

import (
	"testing"
	"time"
)

// TestStaleTelemetryLatch walks the graceful-degradation path: fresh
// telemetry keeps StaleOK, a gap past StaleGrace latches growth off
// (cautious), past StaleEmergency BE is disabled outright, and the first
// fresh poll clears the latch.
func TestStaleTelemetryLatch(t *testing.T) {
	f := newFakeEnv()
	c := newTestController(f)
	cfg := DefaultConfig()
	poll := cfg.PollInterval

	c.Step(0)
	if c.TelemetryState() != StaleOK {
		t.Fatalf("state after fresh poll = %v, want StaleOK", c.TelemetryState())
	}
	if !f.beEnabled {
		t.Fatal("BE not enabled under fresh telemetry at low load")
	}

	// The latency monitor goes dark.
	f.tailOK = false
	c.Step(poll)
	if st := c.TelemetryState(); st != StaleOK {
		t.Fatalf("state one poll into the blackout = %v, want StaleOK (within grace)", st)
	}
	c.Step(2 * poll) // age = StaleGrace (2x poll by default)
	if st := c.TelemetryState(); st != StaleCautious {
		t.Fatalf("state at grace = %v, want StaleCautious", st)
	}
	if !f.beEnabled {
		t.Fatal("cautious latch should not disable BE yet")
	}
	c.Step(4 * poll) // age = StaleEmergency (4x poll by default)
	if st := c.TelemetryState(); st != StaleEmergency {
		t.Fatalf("state at emergency threshold = %v, want StaleEmergency", st)
	}
	if f.beEnabled {
		t.Fatal("emergency latch must disable BE")
	}

	// Data returns: the next poll clears the latch.
	f.tailOK = true
	c.Step(5 * poll)
	if st := c.TelemetryState(); st != StaleOK {
		t.Fatalf("state after telemetry returned = %v, want StaleOK", st)
	}

	// The latch state and freshness stamp survive snapshot/restore.
	f.tailOK = false
	c.Step(9 * poll) // age 4x poll from the 5x-poll refresh: emergency again
	if c.TelemetryState() != StaleEmergency {
		t.Fatalf("state before snapshot = %v, want StaleEmergency", c.TelemetryState())
	}
	st := c.Snapshot()
	c2 := newTestController(newFakeEnv())
	c2.Restore(st)
	if c2.TelemetryState() != StaleEmergency {
		t.Fatalf("restored state = %v, want StaleEmergency", c2.TelemetryState())
	}
}

// TestStaleTrackingDisabledWithoutPollInterval: with no poll interval
// configured the freshness window defaults to zero and the latch never
// engages, preserving behaviour for bare-config callers.
func TestStaleTrackingDisabledWithoutPollInterval(t *testing.T) {
	f := newFakeEnv()
	cfg := DefaultConfig()
	cfg.PollInterval = 0
	c := New(f, nil, cfg)
	c.Step(0)
	f.tailOK = false
	for i := 1; i <= 10; i++ {
		c.Step(time.Duration(i) * time.Minute)
	}
	if st := c.TelemetryState(); st != StaleOK {
		t.Fatalf("state with freshness tracking disabled = %v, want StaleOK", st)
	}
}
