package core

import (
	"sync"
	"time"
)

// Env is everything the controller monitors and actuates. The simulated
// machine satisfies it directly.
type Env interface {
	// Latency-critical workload monitors.
	TailLatency(window time.Duration) (time.Duration, bool)
	Load() float64
	SLO() time.Duration
	GuaranteedGHz() float64

	// BE lifecycle and benefit monitor.
	EnableBE()
	DisableBE()
	BEEnabled() bool
	BERate() float64

	// Core allocation (cgroups cpuset).
	BECoreCount() int
	SetBECores(n int)
	MaxBECores() int

	// LLC allocation (Intel CAT).
	BEWayCount() int
	SetBEWays(n int)
	TotalWays() int

	// DRAM bandwidth monitors (performance counters). DRAMMaxSocketFrac
	// is the utilisation of the busiest memory controller; a single
	// saturated socket is as dangerous as machine-wide saturation (§4.3
	// reads per-controller registers).
	DRAMTotalGBs() float64
	DRAMMaxSocketFrac() float64
	BEDRAMCounterGBs() float64
	DRAMPeakGBs() float64

	// Power monitors and per-core DVFS.
	MaxSocketPowerFrac() float64
	LCFreqGHz() float64
	LowerBEFreq()
	RaiseBEFreq()

	// Network monitors and HTB egress limits.
	LCTxGBs() float64
	LinkGBs() float64
	SetBETxCeil(gbs float64)
}

// DRAMModel is the offline model of the LC workload's DRAM bandwidth as a
// function of load and allocation (§4.2: current hardware cannot attribute
// bandwidth per core, so Heracles carries this one piece of offline
// information; §4.3 uses it as LcBwModel()).
type DRAMModel interface {
	LCDemandGBs(load float64, lcCores, lcWays int) float64
}

// DRAMModelFunc adapts a function to the DRAMModel interface.
type DRAMModelFunc func(load float64, lcCores, lcWays int) float64

// LCDemandGBs implements DRAMModel.
func (f DRAMModelFunc) LCDemandGBs(load float64, lcCores, lcWays int) float64 {
	return f(load, lcCores, lcWays)
}

// Config carries the controller's tunables; the defaults are the constants
// of Algorithms 1-4.
type Config struct {
	PollInterval      time.Duration // top-level poll (15 s)
	CorePollInterval  time.Duration // core & memory subcontroller (2 s)
	PowerPollInterval time.Duration // power subcontroller (2 s)
	NetPollInterval   time.Duration // network subcontroller (1 s)

	LoadDisable float64       // disable BE above this LC load (0.85)
	LoadEnable  float64       // re-enable BE below this LC load (0.80)
	SlackGrow   float64       // BE may grow only above this slack (0.10)
	SlackPanic  float64       // shrink BE cores below this slack (0.05)
	Cooldown    time.Duration // BE off after an SLO violation (5 min)

	DRAMLimitFrac float64 // DRAM saturation threshold (0.90 of peak)
	PowerLimit    float64 // socket power threshold (0.90 of TDP)

	NetLinkHeadroom float64 // 0.05 of link rate
	NetLCHeadroom   float64 // 0.10 of LC bandwidth

	InitialBECores   int     // BE cores granted on enable (1)
	InitialWaysFrac  float64 // BE LLC fraction on enable (0.10)
	KeepBECores      int     // cores BE keeps after a slack panic (2)
	BenefitThreshold float64 // min relative BE rate gain to keep growing cache

	// Stale-telemetry degradation: when the latency monitor stops
	// returning data (a blackout, a wedged collector), the controller
	// must not keep steering on its last belief. After StaleGrace
	// without telemetry it latches cautious (growth disallowed); after
	// StaleEmergency it disables BE outright until data returns. Zero
	// selects 2x and 4x PollInterval respectively.
	StaleGrace     time.Duration
	StaleEmergency time.Duration
}

// DefaultConfig returns the constants used in the paper.
func DefaultConfig() Config {
	return Config{
		PollInterval:      15 * time.Second,
		CorePollInterval:  2 * time.Second,
		PowerPollInterval: 2 * time.Second,
		NetPollInterval:   time.Second,
		LoadDisable:       0.85,
		LoadEnable:        0.80,
		SlackGrow:         0.10,
		SlackPanic:        0.05,
		Cooldown:          5 * time.Minute,
		DRAMLimitFrac:     0.90,
		PowerLimit:        0.90,
		NetLinkHeadroom:   0.05,
		NetLCHeadroom:     0.10,
		InitialBECores:    1,
		InitialWaysFrac:   0.10,
		KeepBECores:       2,
		BenefitThreshold:  0.01,
	}
}

// StaleState is the telemetry-freshness latch of the graceful-degradation
// path: StaleOK while data flows, StaleCautious after StaleGrace without
// it (growth disallowed), StaleEmergency after StaleEmergency (BE
// disabled until telemetry returns).
type StaleState int

const (
	// StaleOK means telemetry is fresh.
	StaleOK StaleState = iota
	// StaleCautious latches growth off while telemetry is missing.
	StaleCautious
	// StaleEmergency has disabled BE for want of telemetry.
	StaleEmergency
)

// String names the latch.
func (s StaleState) String() string {
	switch s {
	case StaleCautious:
		return "cautious"
	case StaleEmergency:
		return "emergency"
	default:
		return "ok"
	}
}

// GrowState is the core & memory subcontroller's gradient-descent phase.
type GrowState int

const (
	// GrowLLC grows the BE cache partition one way at a time.
	GrowLLC GrowState = iota
	// GrowCores reassigns cores from the LC job to BE tasks.
	GrowCores
)

// String names the phase.
func (s GrowState) String() string {
	if s == GrowLLC {
		return "GROW_LLC"
	}
	return "GROW_CORES"
}

// Event records one controller decision for observability and tests.
type Event struct {
	At     time.Duration
	Loop   string // "top", "core", "power", "net"
	Action string
	Detail string
}

// Controller is the Heracles controller instance for one server.
type Controller struct {
	cfg   Config
	env   Env
	model DRAMModel

	// Top-level state.
	enabled      bool
	growAllowed  bool
	cooldownTill time.Duration
	slack        float64
	latency      time.Duration

	// Telemetry-freshness latch (graceful degradation under blackouts).
	lastTelemetry time.Duration
	staleState    StaleState

	// Core & memory subcontroller state.
	state        GrowState
	lastBW       float64
	bwDerivative float64
	pendingWays  int           // ways before the last cache growth, for rollback
	pendingCheck bool          // a cache growth awaits its derivative check
	rateBefore   float64       // BE rate before the last cache growth
	lastGrow     time.Duration // time of the last core growth (for damping)
	coreHold     coreHoldKind  // last emitted hold-cores reason (edge-triggered trace)

	// Scheduling.
	nextTop, nextCore, nextPower, nextNet time.Duration

	// Decision trace. The mutex makes subscription safe for concurrent
	// consumers: the control plane attaches handlers and snapshots the
	// event log from HTTP goroutines while Step runs in the instance's
	// driver goroutine.
	traceMu sync.Mutex
	events  []Event
	traces  []func(Event)
}

// New returns a controller bound to env. model may be nil, in which case
// the controller treats LC bandwidth as total minus the BE counters (what
// §4.2 says becomes possible once per-core DRAM accounting exists).
func New(env Env, model DRAMModel, cfg Config) *Controller {
	if cfg.StaleGrace <= 0 {
		cfg.StaleGrace = 2 * cfg.PollInterval
	}
	if cfg.StaleEmergency <= 0 {
		cfg.StaleEmergency = 4 * cfg.PollInterval
	}
	c := &Controller{cfg: cfg, env: env, model: model, enabled: false}
	return c
}

// OnEvent installs a decision-trace callback. Handlers accumulate: every
// installed callback sees every subsequent event, so multiple consumers
// (a log writer, an SSE hub, a metrics counter) can subscribe to the same
// controller. OnEvent may be called concurrently with Step; the handler
// itself is invoked from the goroutine driving Step.
func (c *Controller) OnEvent(fn func(Event)) {
	c.traceMu.Lock()
	c.traces = append(c.traces, fn)
	c.traceMu.Unlock()
}

// Events returns a snapshot copy of the recorded decision trace. It is
// safe to call while another goroutine drives Step.
func (c *Controller) Events() []Event {
	c.traceMu.Lock()
	defer c.traceMu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// Slack returns the most recent latency slack (SLO - latency)/SLO.
func (c *Controller) Slack() float64 { return c.slack }

// State returns the core & memory subcontroller phase.
func (c *Controller) State() GrowState { return c.state }

// BEEnabled reports whether the controller currently allows BE execution.
func (c *Controller) BEEnabled() bool { return c.enabled }

// TelemetryState returns the stale-telemetry latch.
func (c *Controller) TelemetryState() StaleState { return c.staleState }

func (c *Controller) emit(at time.Duration, loop, action, detail string) {
	e := Event{At: at, Loop: loop, Action: action, Detail: detail}
	c.traceMu.Lock()
	if len(c.events) < 4096 {
		c.events = append(c.events, e)
	}
	// Snapshot the handler list head under the lock; handlers are only
	// ever appended, so iterating the snapshot outside the lock is safe
	// and keeps handler code free to call back into the controller.
	traces := c.traces
	c.traceMu.Unlock()
	for _, fn := range traces {
		fn(e)
	}
}

// Step runs every control loop that is due at simulated time now. Callers
// invoke it once per machine epoch.
func (c *Controller) Step(now time.Duration) {
	if now >= c.nextTop {
		c.topLevel(now)
		c.nextTop = now + c.cfg.PollInterval
	}
	if now >= c.nextCore {
		c.coreMemory(now)
		c.nextCore = now + c.cfg.CorePollInterval
	}
	if now >= c.nextPower {
		c.power(now)
		c.nextPower = now + c.cfg.PowerPollInterval
	}
	if now >= c.nextNet {
		c.network(now)
		c.nextNet = now + c.cfg.NetPollInterval
	}
}
