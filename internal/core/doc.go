// Package core implements the Heracles controller — the paper's primary
// contribution (§4): a real-time feedback controller that coordinates
// four hardware and software isolation mechanisms so that a
// latency-critical (LC) workload meets its SLO while best-effort (BE)
// tasks consume every spare resource.
//
// The controller is organised exactly as Figure 2 of the paper: a
// top-level controller (Algorithm 1) polls tail latency and load and
// enables/disables/limits BE growth; three subcontrollers — core &
// memory (Algorithm 2), power (Algorithm 3) and network (Algorithm 4) —
// each keep one shared resource away from saturation.
//
// The controller is written against the Env interface so it can drive
// either the simulated machine (internal/machine) or filesystem
// actuators (internal/actuate) on real hardware. Every decision is
// emitted as an Event; subscription is safe for concurrent consumers
// (multiple OnEvent handlers, snapshotting Events while Step runs),
// which is what lets the control plane stream decisions to SSE clients
// and count actuations for /metrics while the instance's driver
// goroutine advances the loop.
package core
