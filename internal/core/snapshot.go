package core

import "time"

// ControllerState is the controller's complete serializable state: the
// top-level enablement latches, the core & memory subcontroller's
// gradient-descent phase, and the per-loop poll deadlines. A controller
// restored from this state makes exactly the decisions the original
// would have made. The decision trace (Events) is observability, not
// simulation state, and is not part of the snapshot.
type ControllerState struct {
	Enabled      bool          `json:"enabled"`
	GrowAllowed  bool          `json:"grow_allowed"`
	CooldownTill time.Duration `json:"cooldown_till_ns"`
	Slack        float64       `json:"slack"`
	Latency      time.Duration `json:"latency_ns"`

	// Telemetry-freshness latch. Omitted (zero) in checkpoints taken
	// before the stale-telemetry path existed, which restores as "fresh
	// at t=0" — conservative, and corrected at the first poll.
	LastTelemetry time.Duration `json:"last_telemetry_ns,omitempty"`
	StaleState    StaleState    `json:"stale_state,omitempty"`

	State        GrowState     `json:"state"`
	LastBW       float64       `json:"last_bw"`
	BWDerivative float64       `json:"bw_derivative"`
	PendingWays  int           `json:"pending_ways"`
	PendingCheck bool          `json:"pending_check"`
	RateBefore   float64       `json:"rate_before"`
	LastGrow     time.Duration `json:"last_grow_ns"`

	NextTop   time.Duration `json:"next_top_ns"`
	NextCore  time.Duration `json:"next_core_ns"`
	NextPower time.Duration `json:"next_power_ns"`
	NextNet   time.Duration `json:"next_net_ns"`
}

// Snapshot captures the controller's state. Safe to call between Steps.
func (c *Controller) Snapshot() ControllerState {
	return ControllerState{
		Enabled:       c.enabled,
		GrowAllowed:   c.growAllowed,
		CooldownTill:  c.cooldownTill,
		Slack:         c.slack,
		Latency:       c.latency,
		LastTelemetry: c.lastTelemetry,
		StaleState:    c.staleState,
		State:         c.state,
		LastBW:        c.lastBW,
		BWDerivative:  c.bwDerivative,
		PendingWays:   c.pendingWays,
		PendingCheck:  c.pendingCheck,
		RateBefore:    c.rateBefore,
		LastGrow:      c.lastGrow,
		NextTop:       c.nextTop,
		NextCore:      c.nextCore,
		NextPower:     c.nextPower,
		NextNet:       c.nextNet,
	}
}

// Restore overwrites the controller's state with a snapshot, leaving the
// decision trace and its subscribers untouched. The environment (the
// machine) must itself have been restored to the matching state; the
// controller only carries its own latches and deadlines.
func (c *Controller) Restore(st ControllerState) {
	c.enabled = st.Enabled
	c.growAllowed = st.GrowAllowed
	c.cooldownTill = st.CooldownTill
	c.slack = st.Slack
	c.latency = st.Latency
	c.lastTelemetry = st.LastTelemetry
	c.staleState = st.StaleState
	c.state = st.State
	c.lastBW = st.LastBW
	c.bwDerivative = st.BWDerivative
	c.pendingWays = st.PendingWays
	c.pendingCheck = st.PendingCheck
	c.rateBefore = st.RateBefore
	c.lastGrow = st.LastGrow
	c.nextTop = st.NextTop
	c.nextCore = st.NextCore
	c.nextPower = st.NextPower
	c.nextNet = st.NextNet
}
