package core

import (
	"testing"
	"time"
)

// fakeEnv is a scriptable controller environment for unit-testing the
// control algorithms in isolation from the machine model.
type fakeEnv struct {
	tail       time.Duration
	tailOK     bool
	load       float64
	slo        time.Duration
	guaranteed float64

	beEnabled bool
	beRate    float64

	beCores, maxBECores int
	beWays, totalWays   int

	dramTotal, beDRAM, dramPeak float64
	maxSocketFrac               float64

	powerFrac, lcFreq float64
	freqCap           float64

	lcTx, link float64
	txCeil     float64

	lowered, raised int
}

func newFakeEnv() *fakeEnv {
	return &fakeEnv{
		tail: 20 * time.Millisecond, tailOK: true,
		load: 0.4, slo: 50 * time.Millisecond, guaranteed: 2.4,
		maxBECores: 35, totalWays: 20,
		dramTotal: 30, beDRAM: 10, dramPeak: 120,
		powerFrac: 0.7, lcFreq: 2.7,
		lcTx: 0.1, link: 1.25,
	}
}

func (f *fakeEnv) TailLatency(time.Duration) (time.Duration, bool) { return f.tail, f.tailOK }
func (f *fakeEnv) Load() float64                                   { return f.load }
func (f *fakeEnv) SLO() time.Duration                              { return f.slo }
func (f *fakeEnv) GuaranteedGHz() float64                          { return f.guaranteed }
func (f *fakeEnv) EnableBE()                                       { f.beEnabled = true }
func (f *fakeEnv) DisableBE()                                      { f.beEnabled = false }
func (f *fakeEnv) BEEnabled() bool                                 { return f.beEnabled }
func (f *fakeEnv) BERate() float64                                 { return f.beRate }
func (f *fakeEnv) BECoreCount() int                                { return f.beCores }
func (f *fakeEnv) SetBECores(n int)                                { f.beCores = n }
func (f *fakeEnv) MaxBECores() int                                 { return f.maxBECores }
func (f *fakeEnv) BEWayCount() int                                 { return f.beWays }
func (f *fakeEnv) SetBEWays(n int)                                 { f.beWays = n }
func (f *fakeEnv) TotalWays() int                                  { return f.totalWays }
func (f *fakeEnv) DRAMTotalGBs() float64                           { return f.dramTotal }
func (f *fakeEnv) DRAMMaxSocketFrac() float64 {
	if f.maxSocketFrac > 0 {
		return f.maxSocketFrac
	}
	return f.dramTotal / f.dramPeak
}
func (f *fakeEnv) BEDRAMCounterGBs() float64   { return f.beDRAM }
func (f *fakeEnv) DRAMPeakGBs() float64        { return f.dramPeak }
func (f *fakeEnv) MaxSocketPowerFrac() float64 { return f.powerFrac }
func (f *fakeEnv) LCFreqGHz() float64          { return f.lcFreq }
func (f *fakeEnv) LowerBEFreq()                { f.lowered++ }
func (f *fakeEnv) RaiseBEFreq()                { f.raised++ }
func (f *fakeEnv) LCTxGBs() float64            { return f.lcTx }
func (f *fakeEnv) LinkGBs() float64            { return f.link }
func (f *fakeEnv) SetBETxCeil(g float64)       { f.txCeil = g }

var _ Env = (*fakeEnv)(nil)

func newTestController(f *fakeEnv) *Controller {
	return New(f, nil, DefaultConfig())
}

func TestTopLevelEnablesBEAtLowLoad(t *testing.T) {
	f := newFakeEnv()
	c := newTestController(f)
	c.Step(0)
	if !f.beEnabled {
		t.Fatal("BE not enabled at low load with ample slack")
	}
	if f.beCores != 1 {
		t.Fatalf("initial BE cores = %d, want 1", f.beCores)
	}
	// Enabled with 10% of 20 ways = 2; the core loop, which also runs on
	// this step, may already have tried the first cache-growth step.
	if f.beWays != 2 && f.beWays != 3 {
		t.Fatalf("initial BE ways = %d, want 2 (or 3 after first growth)", f.beWays)
	}
	if c.State() != GrowLLC {
		t.Fatalf("initial state = %v, want GROW_LLC", c.State())
	}
	// The enable event records the paper's initial allocation.
	var enable *Event
	for i := range c.Events() {
		if c.Events()[i].Action == "enable-be" {
			enable = &c.Events()[i]
			break
		}
	}
	if enable == nil || enable.Detail != "cores=1 ways=2" {
		t.Fatalf("enable event = %+v", enable)
	}
}

func TestTopLevelDisablesBEOnSLOViolation(t *testing.T) {
	f := newFakeEnv()
	c := newTestController(f)
	c.Step(0)
	f.tail = 60 * time.Millisecond // above the 50ms SLO
	c.Step(15 * time.Second)
	if f.beEnabled {
		t.Fatal("BE still enabled after SLO violation")
	}
	if f.beCores != 0 || f.beWays != 0 {
		t.Fatalf("resources not returned: cores=%d ways=%d", f.beCores, f.beWays)
	}
}

func TestTopLevelCooldownAfterViolation(t *testing.T) {
	f := newFakeEnv()
	c := newTestController(f)
	c.Step(0)
	f.tail = 60 * time.Millisecond
	c.Step(15 * time.Second) // violation -> cooldown for 5 minutes
	f.tail = 20 * time.Millisecond
	c.Step(30 * time.Second)
	if f.beEnabled {
		t.Fatal("BE re-enabled during cooldown")
	}
	// After the cooldown expires BE execution resumes.
	c.Step(15*time.Second + 5*time.Minute + time.Second)
	if !f.beEnabled {
		t.Fatal("BE not re-enabled after cooldown")
	}
}

func TestTopLevelDisablesBEAtHighLoad(t *testing.T) {
	f := newFakeEnv()
	c := newTestController(f)
	c.Step(0)
	f.load = 0.9
	c.Step(15 * time.Second)
	if f.beEnabled {
		t.Fatal("BE enabled above the 85% load threshold")
	}
}

func TestTopLevelLoadHysteresis(t *testing.T) {
	f := newFakeEnv()
	c := newTestController(f)
	c.Step(0)
	f.load = 0.9
	c.Step(15 * time.Second) // disabled
	f.load = 0.82            // inside [0.80, 0.85): hysteresis, stay off
	c.Step(30 * time.Second)
	if f.beEnabled {
		t.Fatal("BE re-enabled inside the hysteresis band")
	}
	f.load = 0.78 // below 0.80: enable again
	c.Step(45 * time.Second)
	if !f.beEnabled {
		t.Fatal("BE not re-enabled below the 80% threshold")
	}
}

func TestTopLevelPanicShrinksBECores(t *testing.T) {
	f := newFakeEnv()
	c := newTestController(f)
	c.Step(0)
	f.beCores = 20
	f.tail = 49 * time.Millisecond // slack 2% < 5%
	c.Step(15 * time.Second)
	if f.beCores != 2 {
		t.Fatalf("BE cores after panic = %d, want 2 (be_cores.Remove(size-2))", f.beCores)
	}
}

func TestTopLevelDisallowsGrowthOnThinSlack(t *testing.T) {
	f := newFakeEnv()
	c := newTestController(f)
	c.Step(0)
	f.tail = 46 * time.Millisecond // slack 8%: no growth, no panic
	f.beCores = 10
	c.Step(15 * time.Second)
	if f.beCores != 10 {
		t.Fatalf("cores changed on thin slack: %d", f.beCores)
	}
	before := f.beCores
	c.Step(16 * time.Second) // core loop runs; growth must be disallowed
	if f.beCores > before {
		t.Fatal("BE grew despite slack < 10%")
	}
}

func TestCoreLoopRemovesCoresOnDRAMSaturation(t *testing.T) {
	f := newFakeEnv()
	c := newTestController(f)
	c.Step(0)
	f.beCores = 10
	f.beDRAM = 40
	f.dramTotal = 115 // above 0.9 * 120 = 108
	c.Step(2 * time.Second)
	// overage = 7, per-core = 4 -> remove ceil(7/4) = 2 cores.
	if f.beCores != 8 {
		t.Fatalf("BE cores after saturation = %d, want 8", f.beCores)
	}
}

func TestCoreLoopGrowsCoresWithSlack(t *testing.T) {
	f := newFakeEnv()
	c := newTestController(f)
	c.Step(0) // enables BE (1 core) and grows ways 2->3, pending check
	// The unchanged bandwidth makes the pending check roll back (the
	// derivative is not negative) and switch to GROW_CORES.
	c.Step(2 * time.Second)
	if c.State() != GrowCores {
		t.Fatalf("state = %v, want GROW_CORES", c.State())
	}
	f.beDRAM = 5
	f.dramTotal = 20
	cores := f.beCores
	c.Step(4 * time.Second)
	if f.beCores != cores+1 {
		t.Fatalf("cores = %d, want %d", f.beCores, cores+1)
	}
}

func TestCoreLoopCacheRollbackOnBWIncrease(t *testing.T) {
	f := newFakeEnv()
	f.beRate = 1.0
	c := newTestController(f)
	c.Step(0) // enables BE, grows ways 2->3, pending check
	if f.beWays != 3 {
		t.Fatalf("ways = %d, want 3", f.beWays)
	}
	f.dramTotal = 40 // bandwidth went UP after growing the cache
	c.Step(2 * time.Second)
	if f.beWays != 2 {
		t.Fatalf("ways after rollback = %d, want 2", f.beWays)
	}
	if c.State() != GrowCores {
		t.Fatalf("state after rollback = %v", c.State())
	}
}

func TestCoreLoopCacheKeptWhenBWFallsAndBEBenefits(t *testing.T) {
	f := newFakeEnv()
	f.beRate = 1.0
	c := newTestController(f)
	c.Step(0)               // grows ways 2 -> 3, pending check
	f.dramTotal = 25        // bandwidth fell after the cache growth
	f.beRate = 1.2          // and the BE task benefited
	c.Step(2 * time.Second) // check passes; descent continues to ways 4
	if f.beWays < 3 {
		t.Fatalf("beneficial cache growth rolled back: ways=%d", f.beWays)
	}
	if c.State() != GrowLLC {
		t.Fatalf("state = %v, want GROW_LLC to continue", c.State())
	}
}

func TestPowerLoopShiftsPowerToLC(t *testing.T) {
	f := newFakeEnv()
	c := newTestController(f)
	c.Step(0)
	f.powerFrac = 0.95
	f.lcFreq = 2.2 // below guaranteed 2.4
	c.Step(2 * time.Second)
	if f.lowered == 0 {
		t.Fatal("power loop did not lower BE frequency")
	}
}

func TestPowerLoopRestoresBEFrequency(t *testing.T) {
	f := newFakeEnv()
	c := newTestController(f)
	c.Step(0)
	f.powerFrac = 0.7
	f.lcFreq = 2.7
	c.Step(2 * time.Second)
	if f.raised == 0 {
		t.Fatal("power loop did not raise BE frequency with headroom")
	}
}

func TestPowerLoopAvoidsActiveIdleConfusion(t *testing.T) {
	// Both conditions must hold to lower frequency: power high AND
	// frequency low (§4.3). Low frequency alone (active-idle) must not
	// trigger it.
	f := newFakeEnv()
	c := newTestController(f)
	c.Step(0)
	f.lowered, f.raised = 0, 0
	f.powerFrac = 0.5
	f.lcFreq = 1.5
	c.Step(2 * time.Second)
	if f.lowered != 0 {
		t.Fatal("lowered BE frequency without power pressure")
	}
	if f.raised != 0 {
		t.Fatal("raised BE frequency while LC below guaranteed")
	}
}

func TestNetworkLoopSetsHTBCeil(t *testing.T) {
	f := newFakeEnv()
	c := newTestController(f)
	c.Step(0)
	c.Step(time.Second)
	// ceil = link - lc - max(0.05*link, 0.10*lc)
	want := 1.25 - 0.1 - 0.0625
	if f.txCeil < want-1e-9 || f.txCeil > want+1e-9 {
		t.Fatalf("ceil = %v, want %v", f.txCeil, want)
	}
}

func TestNetworkLoopLCHeadroomDominates(t *testing.T) {
	f := newFakeEnv()
	f.lcTx = 1.0 // 10% of LC bandwidth > 5% of link
	c := newTestController(f)
	c.Step(0)
	c.Step(time.Second)
	want := 1.25 - 1.0 - 0.1
	if f.txCeil < want-1e-9 || f.txCeil > want+1e-9 {
		t.Fatalf("ceil = %v, want %v", f.txCeil, want)
	}
}

func TestNetworkLoopFloorsAtSmallPositive(t *testing.T) {
	f := newFakeEnv()
	f.lcTx = 1.3 // LC demand exceeds the link
	c := newTestController(f)
	c.Step(0)
	c.Step(time.Second)
	if f.txCeil <= 0 || f.txCeil > 0.01 {
		t.Fatalf("ceil = %v, want tiny positive", f.txCeil)
	}
}

func TestControllerNoActionWithoutTelemetry(t *testing.T) {
	f := newFakeEnv()
	f.tailOK = false
	c := newTestController(f)
	c.Step(0)
	if f.beEnabled {
		t.Fatal("controller acted without telemetry")
	}
}

func TestGrowthHeldNearDRAMLimit(t *testing.T) {
	f := newFakeEnv()
	c := newTestController(f)
	c.Step(0)
	// Force GROW_CORES.
	f.beDRAM = 80
	f.dramTotal = 95
	c.Step(2 * time.Second)
	// Total bandwidth close enough to the limit that adding 1.5x one
	// core's bandwidth would crowd it.
	f.beCores = 10
	f.beDRAM = 60
	f.dramTotal = 100 // 100 + 1.5*6 = 109 > 108
	cores := f.beCores
	c.Step(10 * time.Second)
	if f.beCores > cores {
		t.Fatal("grew cores into the DRAM saturation margin")
	}
}

func TestEventsRecorded(t *testing.T) {
	f := newFakeEnv()
	c := newTestController(f)
	var seen []Event
	c.OnEvent(func(e Event) { seen = append(seen, e) })
	c.Step(0)
	if len(seen) == 0 || len(c.Events()) == 0 {
		t.Fatal("no events recorded")
	}
	if seen[0].Loop != "top" || seen[0].Action != "enable-be" {
		t.Fatalf("first event = %+v", seen[0])
	}
}

func TestGrowStateString(t *testing.T) {
	if GrowLLC.String() != "GROW_LLC" || GrowCores.String() != "GROW_CORES" {
		t.Fatal("state names")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.PollInterval != 15*time.Second {
		t.Fatal("top-level poll must be 15s (Algorithm 1)")
	}
	if c.CorePollInterval != 2*time.Second || c.PowerPollInterval != 2*time.Second {
		t.Fatal("subcontroller cycles must be 2s (Algorithms 2-3)")
	}
	if c.NetPollInterval != time.Second {
		t.Fatal("network cycle must be 1s (Algorithm 4)")
	}
	if c.LoadDisable != 0.85 || c.LoadEnable != 0.80 {
		t.Fatal("load hysteresis thresholds")
	}
	if c.SlackGrow != 0.10 || c.SlackPanic != 0.05 {
		t.Fatal("slack thresholds")
	}
	if c.Cooldown != 5*time.Minute {
		t.Fatal("cooldown")
	}
	if c.DRAMLimitFrac != 0.90 || c.PowerLimit != 0.90 {
		t.Fatal("saturation limits")
	}
	if c.NetLinkHeadroom != 0.05 || c.NetLCHeadroom != 0.10 {
		t.Fatal("network headroom")
	}
}
