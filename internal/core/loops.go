package core

import (
	"fmt"
	"math"
	"time"
)

// topLevel is Algorithm 1: poll tail latency and load every 15 seconds,
// disable BE execution on SLO violations (with a cooldown) and at high
// load (with hysteresis), and otherwise use latency slack to steer the
// subcontrollers.
func (c *Controller) topLevel(now time.Duration) {
	slo := c.env.SLO()
	latency, ok := c.env.TailLatency(c.cfg.PollInterval)
	if slo <= 0 {
		return
	}
	if !ok {
		c.staleTelemetry(now)
		return
	}
	c.lastTelemetry = now
	if c.staleState != StaleOK {
		c.staleState = StaleOK
		c.emit(now, "top", "telemetry-restored", "latency monitor back, resuming normal control")
	}
	load := c.env.Load()
	slack := (slo.Seconds() - latency.Seconds()) / slo.Seconds()
	c.slack = slack
	c.latency = latency

	switch {
	case slack < 0:
		// SLO violation: give everything back to the LC workload and stay
		// out for a while (§4.3: "We give all resources to the latency
		// critical workload for a while (e.g., 5 minutes) before
		// attempting colocation again").
		c.disable(now)
		c.cooldownTill = now + c.cfg.Cooldown
		c.emit(now, "top", "disable-be", fmt.Sprintf("slack=%.3f<0, cooldown until %v", slack, c.cooldownTill))

	case load > c.cfg.LoadDisable:
		c.disable(now)
		c.emit(now, "top", "disable-be", fmt.Sprintf("load=%.2f>%.2f", load, c.cfg.LoadDisable))

	case load < c.cfg.LoadEnable:
		if now < c.cooldownTill {
			c.emit(now, "top", "cooldown", fmt.Sprintf("%v remaining", c.cooldownTill-now))
			break
		}
		if !c.enabled {
			c.enable(now)
		}
		c.steerGrowth(now, slack)

	default:
		// Hysteresis band [LoadEnable, LoadDisable]: keep the current BE
		// enablement, still steer growth by slack.
		if c.enabled {
			c.steerGrowth(now, slack)
		}
	}
}

// staleTelemetry is the graceful-degradation path: the latency monitor
// returned no data, so the controller must not steer on its last belief.
// A short gap is tolerated (the monitor needs a window of epochs); past
// StaleGrace growth latches off, and past StaleEmergency BE is disabled
// outright — flying blind, the safe state is the LC workload alone. The
// latch clears when topLevel next sees fresh data.
func (c *Controller) staleTelemetry(now time.Duration) {
	if c.cfg.StaleGrace <= 0 {
		return // freshness tracking disabled (no poll interval configured)
	}
	age := now - c.lastTelemetry
	switch {
	case age >= c.cfg.StaleEmergency:
		if c.staleState != StaleEmergency {
			c.staleState = StaleEmergency
			c.disable(now)
			c.emit(now, "top", "stale-emergency", fmt.Sprintf("no telemetry for %v, BE disabled", age))
		}
	case age >= c.cfg.StaleGrace:
		if c.staleState == StaleOK {
			c.staleState = StaleCautious
			c.growAllowed = false
			c.emit(now, "top", "stale-cautious", fmt.Sprintf("no telemetry for %v, growth disallowed", age))
		}
	}
}

// steerGrowth applies the slack thresholds of Algorithm 1: below 10% slack
// growth is disallowed; below 5% cores are taken from BE tasks
// (be_cores.Remove(be_cores.Size()-2) keeps two BE cores).
func (c *Controller) steerGrowth(now time.Duration, slack float64) {
	switch {
	case slack < c.cfg.SlackPanic:
		c.growAllowed = false
		n := c.env.BECoreCount()
		if n > c.cfg.KeepBECores {
			c.env.SetBECores(c.cfg.KeepBECores)
			c.emit(now, "top", "shrink-be-cores", fmt.Sprintf("slack=%.3f<%.2f, %d->%d cores",
				slack, c.cfg.SlackPanic, n, c.cfg.KeepBECores))
		}
	case slack < c.cfg.SlackGrow:
		c.growAllowed = false
		c.emit(now, "top", "disallow-growth", fmt.Sprintf("slack=%.3f<%.2f", slack, c.cfg.SlackGrow))
	default:
		c.growAllowed = true
	}
}

// enable starts BE execution from the initial allocation of Algorithm 2:
// one core and ~10% of the LLC, in the GROW_LLC phase.
func (c *Controller) enable(now time.Duration) {
	c.enabled = true
	c.env.EnableBE()
	c.env.SetBECores(c.cfg.InitialBECores)
	ways := int(math.Round(c.cfg.InitialWaysFrac * float64(c.env.TotalWays())))
	if ways < 1 {
		ways = 1
	}
	c.env.SetBEWays(ways)
	c.state = GrowLLC
	c.pendingCheck = false
	c.lastBW = 0
	c.bwDerivative = 0
	c.emit(now, "top", "enable-be", fmt.Sprintf("cores=%d ways=%d", c.cfg.InitialBECores, ways))
}

// disable halts BE execution and returns all resources to the LC task.
func (c *Controller) disable(now time.Duration) {
	if !c.enabled && c.env.BECoreCount() == 0 {
		return
	}
	c.enabled = false
	c.growAllowed = false
	c.env.DisableBE()
	c.env.SetBECores(0)
	c.env.SetBEWays(0)
	c.env.SetBETxCeil(0.001)
	c.pendingCheck = false
}

// canGrowBE gates the gradient descent: BE must be enabled and the
// top-level controller must have allowed growth.
func (c *Controller) canGrowBE() bool {
	return c.enabled && c.growAllowed
}

// beBwPerCore estimates the DRAM bandwidth each BE core consumes, from the
// per-core hardware counters (§4.3).
func (c *Controller) beBwPerCore() float64 {
	n := c.env.BECoreCount()
	bw := c.env.BEDRAMCounterGBs()
	if n <= 0 || bw <= 0 {
		// No BE cores yet: assume a conservative single-stream estimate so
		// the predicted-bandwidth guard still works.
		return 2.0
	}
	return bw / float64(n)
}

// lcBwModel evaluates the offline DRAM model at the current operating
// point; without a model it falls back to counter subtraction.
func (c *Controller) lcBwModel() float64 {
	lcCores := c.env.MaxBECores() + 1 - c.env.BECoreCount()
	lcWays := c.env.TotalWays() - c.env.BEWayCount()
	if c.model != nil {
		return c.model.LCDemandGBs(c.env.Load(), lcCores, lcWays)
	}
	lc := c.env.DRAMTotalGBs() - c.env.BEDRAMCounterGBs()
	if lc < 0 {
		lc = 0
	}
	return lc
}

// coreMemory is Algorithm 2: avoid DRAM bandwidth saturation first, then
// run a gradient descent in the cores x LLC-ways plane, alternating
// GROW_LLC and GROW_CORES phases.
func (c *Controller) coreMemory(now time.Duration) {
	limit := c.cfg.DRAMLimitFrac * c.env.DRAMPeakGBs()
	// Effective bandwidth: a saturated individual memory controller is
	// scaled up to look like machine-wide saturation, since BE tasks are
	// often pinned to one socket (numactl, §4.3) and can flood it while
	// machine-total bandwidth still looks moderate.
	totalBW := c.env.DRAMTotalGBs()
	if socketEq := c.env.DRAMMaxSocketFrac() * c.env.DRAMPeakGBs(); socketEq > totalBW {
		totalBW = socketEq
	}
	c.bwDerivative = totalBW - c.lastBW
	c.lastBW = totalBW

	// Refresh the slack estimate between top-level polls so the gradient
	// descent reacts to its own recent reallocations; the shorter window
	// trades statistical stability for responsiveness, which is the right
	// trade while actively moving resources.
	if slo := c.env.SLO(); slo > 0 {
		if lat, ok := c.env.TailLatency(2 * c.cfg.CorePollInterval); ok {
			c.slack = (slo.Seconds() - lat.Seconds()) / slo.Seconds()
		}
	}

	if !c.env.BEEnabled() {
		return
	}

	// Saturation guard: remove as many BE cores as needed (§4.3: "the
	// subcontroller removes as many cores as needed from BE tasks").
	if totalBW > limit {
		overage := totalBW - limit
		per := c.beBwPerCore()
		drop := int(math.Ceil(overage / per))
		n := c.env.BECoreCount()
		target := n - drop
		if target < 0 {
			target = 0
		}
		if target < n {
			c.env.SetBECores(target)
			c.emit(now, "core", "dram-saturation", fmt.Sprintf("bw=%.1f>%.1fGB/s, cores %d->%d", totalBW, limit, n, target))
		}
		c.pendingCheck = false
		return
	}

	// Finish a pending cache-growth check: if the LC task lost its slack
	// margin, or growing the BE cache did not reduce total DRAM
	// bandwidth, roll back and switch phases; if the BE job did not
	// benefit, just switch phases. (§4.3: "Its LLC allocation is
	// increased as long as the LC workload meets its SLO, bandwidth
	// saturation is avoided, and the BE task benefits.")
	if c.pendingCheck {
		c.pendingCheck = false
		switch {
		case c.slack < c.cfg.SlackPanic:
			c.env.SetBEWays(c.pendingWays)
			c.state = GrowCores
			c.emit(now, "core", "rollback-llc", fmt.Sprintf("slack=%.3f<%.2f, ways->%d", c.slack, c.cfg.SlackPanic, c.pendingWays))
		case c.bwDerivative >= 0:
			c.env.SetBEWays(c.pendingWays)
			c.state = GrowCores
			c.emit(now, "core", "rollback-llc", fmt.Sprintf("bw_derivative=%.2f>=0, ways->%d", c.bwDerivative, c.pendingWays))
		case c.env.BERate() < c.rateBefore*(1+c.cfg.BenefitThreshold):
			c.state = GrowCores
			c.emit(now, "core", "no-be-benefit", fmt.Sprintf("rate %.3f -> %.3f", c.rateBefore, c.env.BERate()))
		}
	}

	if !c.canGrowBE() {
		return
	}

	switch c.state {
	case GrowLLC:
		predicted := c.lcBwModel() + c.env.BEDRAMCounterGBs() + c.bwDerivative
		if predicted > limit {
			c.state = GrowCores
			c.emit(now, "core", "phase", fmt.Sprintf("predicted bw %.1f>%.1f, -> GROW_CORES", predicted, limit))
			return
		}
		ways := c.env.BEWayCount()
		if ways >= c.env.TotalWays()-1 {
			c.state = GrowCores
			return
		}
		if c.slack <= c.cfg.SlackGrow {
			return
		}
		c.pendingWays = ways
		c.rateBefore = c.env.BERate()
		c.env.SetBEWays(ways + 1)
		c.pendingCheck = true
		c.emit(now, "core", "grow-llc", fmt.Sprintf("ways %d->%d", ways, ways+1))

	case GrowCores:
		needed := c.lcBwModel() + c.env.BEDRAMCounterGBs() + c.beBwPerCore()
		if needed > limit {
			c.state = GrowLLC
			c.emit(now, "core", "phase", fmt.Sprintf("needed bw %.1f>%.1f, -> GROW_LLC", needed, limit))
			return
		}
		if c.slack > c.cfg.SlackGrow {
			n := c.env.BECoreCount()
			if n < c.env.MaxBECores() && c.coreMovePredictedSafe(now) && c.growthDue(now) {
				c.env.SetBECores(n + 1)
				c.lastGrow = now
				c.emit(now, "core", "grow-cores", fmt.Sprintf("cores %d->%d", n, n+1))
			}
		}
	}
}

// growthDue damps the gradient-descent step rate as slack shrinks, so the
// 15-second latency feedback loop can catch up before the next move. Far
// from the SLO the descent runs at full speed (one core per cycle); close
// to it, steps slow down by up to 6x.
func (c *Controller) growthDue(now time.Duration) bool {
	interval := c.cfg.CorePollInterval
	switch {
	case c.slack > 3.5*c.cfg.SlackGrow:
		// full speed
	case c.slack > 2*c.cfg.SlackGrow:
		interval *= 3
	default:
		interval *= 6
	}
	// Near the power ceiling every added core shifts frequency budgets;
	// slow down so the 100 MHz-per-cycle power loop keeps pace.
	if c.env.MaxSocketPowerFrac() > c.cfg.PowerLimit && interval < 3*c.cfg.CorePollInterval {
		interval = 3 * c.cfg.CorePollInterval
	}
	return now-c.lastGrow >= interval
}

// coreMovePredictedSafe estimates whether taking one more core from the LC
// workload would push it into an SLO violation, implementing §4.3's
// "during gradient descent, the subcontroller must avoid trying suboptimal
// allocations that will ... trigger a signal from the top-level controller
// to disable BE tasks. Heracles estimates whether it is close to an SLO
// violation for the LC task based on the amount of latency slack."
//
// The estimate assumes tail latency scales at worst quadratically with the
// per-core load increase caused by shrinking the LC core pool from k to
// k-1; the move is allowed only if the predicted slack stays above the
// panic threshold.
func (c *Controller) coreMovePredictedSafe(now time.Duration) bool {
	k := c.env.MaxBECores() + 1 - c.env.BECoreCount()
	if k <= 2 {
		return false
	}
	total := c.env.MaxBECores() + 1
	// Queueing guard: the LC workload needs roughly load*totalCores busy
	// cores; never shrink its pool to the point where per-core occupancy
	// would exceed ~92%, which is where tail latency detaches from the
	// slack signal's time constant.
	if rhoHat := c.env.Load() * float64(total) / float64(k-1); rhoHat > 0.92 {
		if c.holdEdge(holdOccupancy) {
			c.emit(now, "core", "hold-cores", fmt.Sprintf("predicted occupancy %.2f>0.92 at lcCores=%d", rhoHat, k-1))
		}
		return false
	}
	// Power guard: while the package is power-saturated AND the LC cores
	// have already lost their guaranteed frequency, adding BE cores races
	// against the power subcontroller's 100 MHz steps; let the power loop
	// restore the frequency first. (Power saturation alone is fine — the
	// chip simply runs everyone a little slower.)
	if c.env.MaxSocketPowerFrac() > c.cfg.PowerLimit && c.env.LCFreqGHz() < c.env.GuaranteedGHz() {
		if c.holdEdge(holdPower) {
			c.emit(now, "core", "hold-cores", fmt.Sprintf("power %.2f>%.2f and lcFreq %.2f<%.2f, waiting for power loop",
				c.env.MaxSocketPowerFrac(), c.cfg.PowerLimit, c.env.LCFreqGHz(), c.env.GuaranteedGHz()))
		}
		return false
	}
	// DRAM guard: adding a BE core adds roughly one core's worth of
	// bandwidth, and the queueing-delay inflation near the limit feeds
	// straight into the LC service time. Keep a 1.5x per-core margin
	// below the saturation threshold, judging by the busiest socket.
	effBW := c.env.DRAMTotalGBs()
	if socketEq := c.env.DRAMMaxSocketFrac() * c.env.DRAMPeakGBs(); socketEq > effBW {
		effBW = socketEq
	}
	if per := c.beBwPerCore(); effBW+1.5*per > c.cfg.DRAMLimitFrac*c.env.DRAMPeakGBs() {
		if c.holdEdge(holdDRAM) {
			c.emit(now, "core", "hold-cores", fmt.Sprintf("bw %.1f+1.5*%.1f would crowd the DRAM limit", effBW, per))
		}
		return false
	}
	latFrac := 1 - c.slack // latency as fraction of SLO
	scale := float64(k) / float64(k-1)
	predicted := 1 - latFrac*scale*scale
	if predicted < c.cfg.SlackPanic {
		if c.holdEdge(holdSlack) {
			c.emit(now, "core", "hold-cores", fmt.Sprintf("predicted slack %.3f<%.2f at lcCores=%d", predicted, c.cfg.SlackPanic, k-1))
		}
		return false
	}
	c.coreHold = holdNone
	return true
}

// coreHoldKind names the guard that last refused a core move, so the
// hold-cores trace fires on transitions rather than every poll — a
// steady hold would otherwise format an identical event per epoch, the
// single largest steady-state allocation in the engine's step loop.
type coreHoldKind uint8

const (
	holdNone coreHoldKind = iota
	holdOccupancy
	holdPower
	holdDRAM
	holdSlack
)

// holdEdge records the active hold reason and reports whether it just
// changed (i.e. the event is worth emitting). Pure observability state:
// it steers no decision and is deliberately absent from ControllerState.
func (c *Controller) holdEdge(k coreHoldKind) bool {
	if c.coreHold == k {
		return false
	}
	c.coreHold = k
	return true
}

// power is Algorithm 3: when the package runs close to TDP and the LC
// cores fall below their guaranteed frequency, shift power to them by
// lowering the BE cores' DVFS; restore BE frequency when there is
// headroom.
func (c *Controller) power(now time.Duration) {
	if !c.env.BEEnabled() {
		return
	}
	pw := c.env.MaxSocketPowerFrac()
	lsFreq := c.env.LCFreqGHz()
	guaranteed := c.env.GuaranteedGHz()
	switch {
	case pw > c.cfg.PowerLimit && lsFreq < guaranteed:
		c.env.LowerBEFreq()
		c.emit(now, "power", "lower-be-freq", fmt.Sprintf("power=%.2f lcFreq=%.2f<%.2f", pw, lsFreq, guaranteed))
	case pw <= c.cfg.PowerLimit && lsFreq >= guaranteed:
		c.env.RaiseBEFreq()
	}
}

// network is Algorithm 4: reserve the LC workload's current egress
// bandwidth plus headroom, and give the rest to BE traffic via the HTB
// ceiling.
func (c *Controller) network(now time.Duration) {
	if !c.env.BEEnabled() {
		return
	}
	link := c.env.LinkGBs()
	lcBW := c.env.LCTxGBs()
	head := math.Max(c.cfg.NetLinkHeadroom*link, c.cfg.NetLCHeadroom*lcBW)
	beBW := link - lcBW - head
	if beBW < 0.001 {
		beBW = 0.001
	}
	c.env.SetBETxCeil(beBW)
}
