package core

import (
	"testing"
	"time"

	"heracles/internal/sim"
)

// checkedEnv wraps fakeEnv with invariant assertions on every actuation,
// so randomized telemetry streams can hammer the controller while the
// safety properties of Algorithms 1-4 are checked at each call site:
//
//   - BE allocations never grow during a latency emergency, and never
//     beyond the initial grant without real slack;
//   - core, way and HTB actuations stay within hardware bounds;
//   - the power loop follows its twin conditions exactly.
type checkedEnv struct {
	*fakeEnv
	t   *testing.T
	cfg Config

	minGHz, maxGHz float64

	// topPolled is set when the top-level loop reads tail latency this
	// step (its window equals PollInterval, the subcontrollers use 2x the
	// core poll), so the driver can assert the emergency response.
	topPolled bool
}

func (c *checkedEnv) envSlack() float64 {
	return (c.slo.Seconds() - c.tail.Seconds()) / c.slo.Seconds()
}

func (c *checkedEnv) TailLatency(window time.Duration) (time.Duration, bool) {
	if window == c.cfg.PollInterval {
		c.topPolled = true
	}
	return c.fakeEnv.TailLatency(window)
}

func (c *checkedEnv) SetBECores(n int) {
	c.t.Helper()
	if n < 0 || n > c.maxBECores {
		c.t.Errorf("SetBECores(%d) outside [0, %d]", n, c.maxBECores)
	}
	if n > c.beCores {
		slack := c.envSlack()
		if slack < 0 {
			c.t.Errorf("BE cores grew %d->%d during a latency emergency (slack %.3f)",
				c.beCores, n, slack)
		}
		if c.beCores >= 1 && slack <= c.cfg.SlackGrow-1e-12 {
			c.t.Errorf("BE cores grew %d->%d without slack (%.3f <= %.2f)",
				c.beCores, n, slack, c.cfg.SlackGrow)
		}
		if c.beCores == 0 && c.load > c.cfg.LoadDisable {
			c.t.Errorf("BE enabled at load %.2f > %.2f", c.load, c.cfg.LoadDisable)
		}
	}
	c.fakeEnv.SetBECores(n)
}

func (c *checkedEnv) SetBEWays(n int) {
	c.t.Helper()
	if n < 0 || n > c.totalWays-1 {
		c.t.Errorf("SetBEWays(%d) outside [0, %d]", n, c.totalWays-1)
	}
	if c.beEnabled && c.beWays >= 1 && n > c.beWays {
		if slack := c.envSlack(); slack <= c.cfg.SlackGrow-1e-12 {
			c.t.Errorf("BE ways grew %d->%d without slack (%.3f <= %.2f)",
				c.beWays, n, slack, c.cfg.SlackGrow)
		}
	}
	c.fakeEnv.SetBEWays(n)
}

func (c *checkedEnv) SetBETxCeil(g float64) {
	c.t.Helper()
	if g <= 0 {
		c.t.Errorf("SetBETxCeil(%v) not positive", g)
	}
	if g > c.link {
		c.t.Errorf("SetBETxCeil(%v) beyond the %v GB/s link", g, c.link)
	}
	c.fakeEnv.SetBETxCeil(g)
}

// LowerBEFreq/RaiseBEFreq mimic the machine's 100 MHz stepping within
// [MinGHz, MaxTurboGHz] (0 = uncapped) and assert the Algorithm 3
// conditions under which the controller may call them.
func (c *checkedEnv) LowerBEFreq() {
	c.t.Helper()
	if !(c.powerFrac > c.cfg.PowerLimit && c.lcFreq < c.guaranteed) {
		c.t.Errorf("LowerBEFreq without both power (%.2f) and frequency (%.2f/%.2f) pressure",
			c.powerFrac, c.lcFreq, c.guaranteed)
	}
	cur := c.freqCap
	if cur == 0 {
		cur = c.maxGHz
	}
	next := cur - 0.1
	if next < c.minGHz {
		next = c.minGHz
	}
	c.freqCap = next
	if c.freqCap < c.minGHz-1e-9 || c.freqCap > c.maxGHz+1e-9 {
		c.t.Errorf("BE freq cap %v outside [%v, %v]", c.freqCap, c.minGHz, c.maxGHz)
	}
	c.lowered++
}

func (c *checkedEnv) RaiseBEFreq() {
	c.t.Helper()
	if !(c.powerFrac <= c.cfg.PowerLimit && c.lcFreq >= c.guaranteed) {
		c.t.Errorf("RaiseBEFreq under pressure (power %.2f, lcFreq %.2f/%.2f)",
			c.powerFrac, c.lcFreq, c.guaranteed)
	}
	if c.freqCap == 0 {
		c.raised++
		return
	}
	next := c.freqCap + 0.1
	if next >= c.maxGHz {
		next = 0 // cap removed
	}
	c.freqCap = next
	c.raised++
}

// randomTelemetry advances the fake environment one second: a load random
// walk, latency coupled to load and BE pressure with occasional injected
// emergencies, and DRAM/power/network counters consistent with the
// current allocation.
func randomTelemetry(f *fakeEnv, rng *sim.RNG) {
	f.load += rng.Norm(0, 0.03)
	if f.load < 0.05 {
		f.load = 0.05
	}
	if f.load > 0.95 {
		f.load = 0.95
	}
	frac := 0.25 + 0.55*f.load + 0.015*float64(f.beCores)
	frac *= 0.9 + 0.2*rng.Float64()
	if rng.Float64() < 0.02 {
		frac = 1.05 + 0.5*rng.Float64() // latency emergency
	}
	f.tail = time.Duration(frac * float64(f.slo))

	f.beDRAM = float64(f.beCores) * (1.2 + 0.8*rng.Float64())
	f.dramTotal = 15 + 40*f.load + f.beDRAM
	if f.dramTotal > f.dramPeak {
		f.dramTotal = f.dramPeak
	}
	f.maxSocketFrac = f.dramTotal / f.dramPeak * (1 + 0.4*rng.Float64())
	if f.maxSocketFrac > 1 {
		f.maxSocketFrac = 1
	}
	f.powerFrac = 0.45 + 0.45*f.load + 0.015*float64(f.beCores) + 0.05*rng.Float64()
	if f.powerFrac > 1 {
		f.powerFrac = 1
	}
	f.lcFreq = 3.4 - 1.8*f.powerFrac + rng.Norm(0, 0.05)
	if f.lcFreq < 1.2 {
		f.lcFreq = 1.2
	}
	if f.lcFreq > 3.6 {
		f.lcFreq = 3.6
	}
	f.beRate = float64(f.beCores) * (0.02 + 0.01*rng.Float64())
	f.lcTx = 0.3 * f.load * f.link
}

// TestControllerInvariantsUnderRandomTelemetry drives the controller
// through many independent randomized telemetry streams, asserting the
// state machine's safety properties at every actuation (see checkedEnv).
func TestControllerInvariantsUnderRandomTelemetry(t *testing.T) {
	const (
		seeds   = 25
		seconds = 1200
	)
	cfg := DefaultConfig()
	for seed := uint64(0); seed < seeds; seed++ {
		rng := sim.NewRNG(seed<<32 + 0x5eed)
		env := &checkedEnv{
			fakeEnv: newFakeEnv(),
			t:       t, cfg: cfg,
			minGHz: 1.2, maxGHz: 3.6,
		}
		ctl := New(env, nil, cfg)
		sawEmergencyPoll := false
		for sec := 0; sec < seconds; sec++ {
			randomTelemetry(env.fakeEnv, rng)
			env.topPolled = false
			ctl.Step(time.Duration(sec) * time.Second)
			if env.topPolled && env.tail > env.slo {
				sawEmergencyPoll = true
				if env.beEnabled {
					t.Fatalf("seed %d, t=%ds: BE still enabled after the top loop observed tail %v > SLO %v",
						seed, sec, env.tail, env.slo)
				}
			}
			if t.Failed() {
				t.Fatalf("seed %d, t=%ds: invariant violated (see errors above)", seed, sec)
			}
		}
		if !sawEmergencyPoll && seed == 0 {
			t.Error("random stream never presented an emergency to a top-level poll; weaken the injection odds")
		}
	}
}

// TestDisabledBEEventuallyReenabled is the liveness half: after an
// emergency parks every BE task, restored slack plus an expired cooldown
// must bring them back.
func TestDisabledBEEventuallyReenabled(t *testing.T) {
	cfg := DefaultConfig()
	f := newFakeEnv()
	ctl := New(f, nil, cfg)
	now := time.Duration(0)
	step := func(d time.Duration, upto time.Duration) {
		for end := now + upto; now < end; now += d {
			ctl.Step(now)
		}
	}

	// Healthy start: ample slack at moderate load enables BE.
	f.tail, f.load = 20*time.Millisecond, 0.4
	step(time.Second, 40*time.Second)
	if !f.beEnabled || f.beCores == 0 {
		t.Fatalf("BE not enabled under good conditions (enabled=%v cores=%d)", f.beEnabled, f.beCores)
	}

	// Emergency: the next top poll must disable and hold a cooldown.
	f.tail = time.Duration(1.2 * float64(f.slo))
	step(time.Second, 16*time.Second)
	if f.beEnabled {
		t.Fatal("BE still enabled after an SLO violation")
	}
	violatedAt := now

	// Slack returns immediately, but the cooldown keeps BE parked...
	f.tail = 20 * time.Millisecond
	step(time.Second, cfg.Cooldown-30*time.Second)
	if f.beEnabled {
		t.Fatalf("BE re-enabled %v after the violation, inside the %v cooldown", now-violatedAt, cfg.Cooldown)
	}

	// ...and once it expires, BE execution resumes.
	step(time.Second, 31*time.Second+2*cfg.PollInterval)
	if !f.beEnabled {
		t.Fatalf("BE never re-enabled: %v after the violation with full slack", now-violatedAt)
	}
	if f.beCores < 1 || f.beWays < 1 {
		t.Fatalf("re-enable granted no resources: cores=%d ways=%d", f.beCores, f.beWays)
	}
}
