package chash

import (
	"fmt"
	"testing"
)

// keys returns n synthetic instance ids, the key population every
// property below is measured over.
func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("i%d", i+1)
	}
	return out
}

func placements(t *Table, ks []string) map[string]string {
	out := make(map[string]string, len(ks))
	for _, k := range ks {
		out[k] = t.Place(k)
	}
	return out
}

// TestPlacementDeterministic pins that placement is a pure function of
// (seed, membership): two independently built tables agree on every
// key, and a different seed produces a genuinely different placement.
func TestPlacementDeterministic(t *testing.T) {
	ks := keys(4096)
	a := New(42, "s0", "s1", "s2", "s3")
	b := New(42, "s0", "s1", "s2", "s3")
	for _, k := range ks {
		if a.Place(k) != b.Place(k) {
			t.Fatalf("placement of %q differs between identical tables", k)
		}
	}
	c := New(43, "s0", "s1", "s2", "s3")
	diff := 0
	for _, k := range ks {
		if a.Place(k) != c.Place(k) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatalf("seed change moved no keys; the seed is not feeding the hash")
	}
}

// TestPlacementOrderFree pins that member order does not affect
// placement: a table is its member set, not its member list.
func TestPlacementOrderFree(t *testing.T) {
	ks := keys(2048)
	a := New(7, "s0", "s1", "s2", "s3")
	b := New(7, "s3", "s1", "s0", "s2")
	for _, k := range ks {
		if a.Place(k) != b.Place(k) {
			t.Fatalf("placement of %q depends on member order: %q vs %q", k, a.Place(k), b.Place(k))
		}
	}
}

// TestPlacementBalanced bounds the load skew: over a large key
// population each member owns its fair share within 20%.
func TestPlacementBalanced(t *testing.T) {
	const n = 20000
	members := []string{"s0", "s1", "s2", "s3", "s4"}
	tab := New(1, members...)
	load := make(map[string]int)
	for _, k := range keys(n) {
		load[tab.Place(k)]++
	}
	fair := n / len(members)
	for _, m := range members {
		if load[m] < fair*8/10 || load[m] > fair*12/10 {
			t.Fatalf("member %s owns %d keys, fair share %d +-20%%: %v", m, load[m], fair, load)
		}
	}
}

// TestJoinMovesBoundedAndMinimal is the rebuild property the sharded
// registry and the federation router rely on: adding a member moves at
// most ceil(N/members)+slack keys, and every moved key lands on the new
// member — no key shuffles between surviving members.
func TestJoinMovesBoundedAndMinimal(t *testing.T) {
	const n = 10000
	ks := keys(n)
	for seed := uint64(0); seed < 5; seed++ {
		old := New(seed, "s0", "s1", "s2", "s3")
		grown := old.Add("s4")
		before, after := placements(old, ks), placements(grown, ks)
		moved := 0
		for _, k := range ks {
			if before[k] == after[k] {
				continue
			}
			moved++
			if after[k] != "s4" {
				t.Fatalf("seed %d: key %q moved %s -> %s, not to the joining member", seed, k, before[k], after[k])
			}
		}
		// Expected movement is N/5 = 2000; 3 sigma of Binomial(10000, 1/5)
		// is ~120, so ceil(N/members)+slack with a 10% slack band is a
		// comfortable deterministic bound for these pinned seeds.
		bound := (n+grown.Len()-1)/grown.Len() + n/10
		if moved > bound {
			t.Fatalf("seed %d: join moved %d keys, bound %d", seed, moved, bound)
		}
		if moved == 0 {
			t.Fatalf("seed %d: join moved no keys", seed)
		}
	}
}

// TestLeaveMovesExactlyTheLostKeys pins the drain property: removing a
// member relocates exactly the keys it owned and nothing else.
func TestLeaveMovesExactlyTheLostKeys(t *testing.T) {
	const n = 10000
	ks := keys(n)
	old := New(9, "s0", "s1", "s2", "s3")
	shrunk := old.Remove("s2")
	before, after := placements(old, ks), placements(shrunk, ks)
	for _, k := range ks {
		if before[k] == "s2" {
			if after[k] == "s2" {
				t.Fatalf("key %q still placed on the removed member", k)
			}
			continue
		}
		if before[k] != after[k] {
			t.Fatalf("key %q moved %s -> %s although its member survived", k, before[k], after[k])
		}
	}
}

// TestAddRemoveIdentity covers the no-op edges: re-adding a present
// member and removing an absent one return the same table.
func TestAddRemoveIdentity(t *testing.T) {
	tab := New(3, "a", "b")
	if tab.Add("a") != tab {
		t.Fatalf("Add of a present member rebuilt the table")
	}
	if tab.Remove("zzz") != tab {
		t.Fatalf("Remove of an absent member rebuilt the table")
	}
	if got := tab.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
}
