// Package chash implements seeded rendezvous (highest-random-weight)
// hashing: the placement function behind the sharded registry's
// instance→shard map and the federation router's instance→member map.
//
// Rendezvous hashing scores every (key, member) pair with a mixed hash
// and places the key on the highest-scoring member. Placement is
// deterministic for a fixed seed and membership, and minimal under
// membership change: removing a member moves exactly the keys it owned,
// and adding one moves only the keys the newcomer now wins — in
// expectation N/M of N keys over M members, never a full reshuffle.
package chash

import "fmt"

// Table is an immutable-membership rendezvous hash table. The zero
// value is unusable; build one with New. Methods are safe for
// concurrent use because the table never mutates — membership changes
// produce a new table via Add/Remove.
type Table struct {
	seed    uint64
	members []string
	hashes  []uint64 // precomputed member-name hashes, parallel to members
}

// New builds a table over the given members. Member order does not
// affect placement (scores are order-free); duplicate members are
// collapsed. Panics on an empty member list: a placement table with
// nowhere to place is programmer error.
func New(seed uint64, members ...string) *Table {
	if len(members) == 0 {
		panic("chash: empty member list")
	}
	t := &Table{seed: seed}
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if seen[m] {
			continue
		}
		seen[m] = true
		t.members = append(t.members, m)
		t.hashes = append(t.hashes, strhash(m))
	}
	return t
}

// Seed returns the table's seed.
func (t *Table) Seed() uint64 { return t.seed }

// Members returns the membership in insertion order. The caller must
// not mutate the returned slice.
func (t *Table) Members() []string { return t.members }

// Len returns the member count.
func (t *Table) Len() int { return len(t.members) }

// Place returns the member that owns key: the highest-scoring member,
// with the earliest member winning score ties so placement is total.
func (t *Table) Place(key string) string {
	return t.members[t.PlaceIndex(key)]
}

// PlaceIndex is Place returning the member's index instead of its name.
func (t *Table) PlaceIndex(key string) int {
	kh := strhash(key) ^ t.seed
	best, bestScore := 0, uint64(0)
	for i, mh := range t.hashes {
		if s := mix(kh ^ mh); i == 0 || s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// Add returns a new table with member appended (or the receiver if it
// is already present).
func (t *Table) Add(member string) *Table {
	for _, m := range t.members {
		if m == member {
			return t
		}
	}
	return New(t.seed, append(append([]string{}, t.members...), member)...)
}

// Remove returns a new table without member. Panics if the removal
// would empty the table; returns the receiver if member is unknown.
func (t *Table) Remove(member string) *Table {
	kept := make([]string, 0, len(t.members))
	for _, m := range t.members {
		if m != member {
			kept = append(kept, m)
		}
	}
	if len(kept) == len(t.members) {
		return t
	}
	if len(kept) == 0 {
		panic(fmt.Sprintf("chash: removing %q empties the table", member))
	}
	return New(t.seed, kept...)
}

// strhash is FNV-1a over the string bytes.
func strhash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// mix is the splitmix64 finalizer: it spreads the xor-combined key and
// member hashes so per-pair scores behave as independent uniforms,
// which is what makes rendezvous placement balanced.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
