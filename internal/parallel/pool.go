package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the pool size used when a caller passes workers <= 0:
// GOMAXPROCS, the number of truly concurrent simulation loops the runtime
// will schedule.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// clampWorkers resolves a caller-supplied worker count: non-positive means
// DefaultWorkers, and there is never a reason to run more workers than
// items.
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 selects DefaultWorkers) and returns when all calls have
// finished. Items are claimed in index order from a shared counter, so a
// single worker degenerates to the plain sequential loop. fn must confine
// its writes to per-index state.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the results in index order: out[i] = fn(i) regardless of
// completion order, so fan-out never reorders a sweep's points.
func Map[T any](workers, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	ForEach(workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// Pool is a persistent worker pool for callers that fan out the same shape
// of work many times in a row (the cluster simulator steps its leaves once
// per trace epoch, tens of thousands of epochs per run). Workers are
// spawned once and parked between rounds, so a round costs one descriptor
// allocation instead of a fresh set of goroutines. Items are claimed from
// an atomic counter; as with ForEach, fn must confine writes to per-index
// state, and a one-worker pool degenerates to the sequential loop.
type Pool struct {
	workers int
	rounds  chan *poolRound
	// spare recycles round descriptors between ForEach calls so a
	// steady-state round allocates nothing. sync.Pool keeps concurrent
	// ForEach calls on the same Pool safe.
	spare sync.Pool
}

type poolRound struct {
	fn   func(int)
	size int
	next atomic.Int64
	wg   sync.WaitGroup
}

// NewPool starts a pool of the given size (<= 0 selects DefaultWorkers).
// Callers must Close it to release the worker goroutines.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	p := &Pool{workers: workers, rounds: make(chan *poolRound, workers)}
	if workers == 1 {
		return p // sequential pool: no goroutines to park
	}
	for w := 0; w < workers; w++ {
		go func() {
			for r := range p.rounds {
				for {
					i := int(r.next.Add(1)) - 1
					if i >= r.size {
						break
					}
					r.fn(i)
				}
				r.wg.Done()
			}
		}()
	}
	return p
}

// ForEach runs fn(i) for every i in [0, n) on the pool's workers and
// returns when all calls have finished.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	r, _ := p.spare.Get().(*poolRound)
	if r == nil {
		r = new(poolRound)
	}
	r.fn = fn
	r.size = n
	r.next.Store(0)
	r.wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		p.rounds <- r
	}
	r.wg.Wait()
	r.fn = nil // drop the closure before parking the descriptor
	p.spare.Put(r)
}

// Close releases the pool's workers. The pool must not be used after.
func (p *Pool) Close() {
	if p.workers > 1 {
		close(p.rounds)
	}
}
