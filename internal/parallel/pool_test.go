package parallel

import (
	"sync/atomic"
	"testing"
)

func TestMapOrderPreserved(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		got := Map(workers, 100, func(i int) int { return i * i })
		if len(got) != 100 {
			t.Fatalf("workers=%d: len = %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	const n = 257
	var counts [n]int32
	ForEach(8, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	ForEach(4, 0, func(int) { t.Fatal("fn called for n=0") })
	ran := false
	ForEach(4, 1, func(i int) {
		if i != 0 {
			t.Fatalf("i = %d", i)
		}
		ran = true
	})
	if !ran {
		t.Fatal("fn not called for n=1")
	}
}

func TestSequentialFallbackIsInCallerGoroutine(t *testing.T) {
	// workers=1 must not spawn goroutines: fn can then use non-atomic
	// state, which the determinism tests of the experiment layer rely on.
	order := make([]int, 0, 10)
	ForEach(1, 10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order broken: %v", order)
		}
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers = %d", DefaultWorkers())
	}
}

func TestPoolReusableAcrossRounds(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		var total atomic.Int64
		const rounds, n = 50, 37
		for r := 0; r < rounds; r++ {
			var counts [n]int32
			p.ForEach(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d round %d: index %d ran %d times", workers, r, i, c)
				}
			}
			total.Add(int64(n))
		}
		p.Close()
		if total.Load() != rounds*n {
			t.Fatalf("workers=%d: total = %d", workers, total.Load())
		}
	}
}

func TestPoolEmptyRound(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	p.ForEach(0, func(int) { t.Fatal("fn called for n=0") })
}
