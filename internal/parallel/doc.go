// Package parallel provides the bounded, order-preserving fan-out/fan-in
// primitives used by every layer that runs independent simulations
// concurrently: load sweeps, characterisation grids, cluster leaves,
// fleet instances, and the control plane's instance pool.
//
// ForEach and Map run n items on up to GOMAXPROCS workers with results
// landing at their original index; Pool is the persistent variant for
// callers that fan out the same shape of work many times in a row (the
// cluster simulator steps its leaves once per trace epoch, tens of
// thousands of epochs per run). Determinism is preserved by
// construction — each item writes only its own slot and any randomness
// is derived per item from (seed, index) rather than shared mutable RNG
// state — so a run with one worker is byte-identical to a run with many.
package parallel
