// Package netlink models the server's NIC egress path: TCP-fair sharing
// by flow count (so many best-effort "mice" flows overwhelm a
// latency-critical service's flows, §3.2 of the paper), hierarchical
// token bucket (HTB) ceilings for traffic classes, and the
// transmit-queueing latency inflation the latency-critical workload
// observes near saturation.
//
// The machine model resolves the link once per epoch; the controller's
// network subcontroller (Algorithm 4) reads the achieved bandwidths and
// programs the BE ceiling through the same interface the real system
// would drive with tc. ResolveInto is the allocation-free variant used
// by the stepping hot path.
package netlink
