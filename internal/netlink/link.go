package netlink

import "heracles/internal/queue"

// Class describes one traffic class (one task's flow aggregate).
type Class struct {
	DemandGBs float64 // offered egress bandwidth
	Flows     int     // number of TCP flows; weight for fair sharing
	CeilGBs   float64 // HTB ceiling; 0 or negative = uncapped
}

// Result describes the resolved egress bandwidth allocation.
type Result struct {
	AchievedGBs []float64 // per class, input order
	TotalGBs    float64
	Utilisation float64 // total achieved / link rate
}

// InflationCoeff and InflationPower shape the egress queueing delay factor.
const (
	InflationCoeff = 0.05
	InflationPower = 6.0
	// StarvationPenalty controls the latency blow-up when a class's
	// achieved bandwidth falls short of its demand: the transmit queue
	// grows without bound, so even a small shortfall is catastrophic for
	// tail latency.
	StarvationPenalty = 60.0
)

// Scratch holds ResolveInto's working buffers so hot callers allocate
// nothing. The zero value is ready to use.
type Scratch struct {
	limit  []float64
	active []bool
}

// Resolve performs weighted max-min fair sharing (water filling) of the
// link among the classes. Each class's weight is its flow count, mirroring
// per-flow TCP fairness; a class never receives more than
// min(demand, ceil).
func Resolve(linkGBs float64, classes []Class) Result {
	var sc Scratch
	return ResolveInto(make([]float64, len(classes)), &sc, linkGBs, classes)
}

// ResolveInto is Resolve writing achieved bandwidths into dst (capacity >=
// len(classes)) and working out of sc's buffers. The Result aliases dst.
func ResolveInto(dst []float64, sc *Scratch, linkGBs float64, classes []Class) Result {
	dst = dst[:len(classes)]
	for i := range dst {
		dst[i] = 0
	}
	res := Result{AchievedGBs: dst}
	if linkGBs <= 0 {
		return res
	}
	if cap(sc.limit) < len(classes) {
		sc.limit = make([]float64, len(classes))
		sc.active = make([]bool, len(classes))
	}
	limit := sc.limit[:len(classes)]
	active := sc.active[:len(classes)]
	for i, c := range classes {
		l := c.DemandGBs
		if l < 0 {
			l = 0
		}
		if c.CeilGBs > 0 && c.CeilGBs < l {
			l = c.CeilGBs
		}
		limit[i] = l
		active[i] = l > 0
	}
	remaining := linkGBs
	for iter := 0; iter < len(classes)+1; iter++ {
		var weight float64
		for i, c := range classes {
			if active[i] {
				w := float64(c.Flows)
				if w <= 0 {
					w = 1
				}
				weight += w
			}
		}
		if weight == 0 || remaining <= 0 {
			break
		}
		progress := false
		// First pass: classes whose fair share exceeds their limit are
		// frozen at the limit.
		for i, c := range classes {
			if !active[i] {
				continue
			}
			w := float64(c.Flows)
			if w <= 0 {
				w = 1
			}
			fair := remaining * w / weight
			if fair >= limit[i] {
				res.AchievedGBs[i] = limit[i]
				remaining -= limit[i]
				active[i] = false
				progress = true
			}
		}
		if !progress {
			// Everyone is constrained by the link: give fair shares.
			for i, c := range classes {
				if !active[i] {
					continue
				}
				w := float64(c.Flows)
				if w <= 0 {
					w = 1
				}
				res.AchievedGBs[i] = remaining * w / weight
				active[i] = false
			}
			remaining = 0
			break
		}
	}
	for _, a := range res.AchievedGBs {
		res.TotalGBs += a
	}
	res.Utilisation = res.TotalGBs / linkGBs
	if res.Utilisation > 1 {
		res.Utilisation = 1
	}
	return res
}

// Inflation returns the transmit latency multiplier for a class that
// demanded demand GB/s and achieved achieved GB/s on a link running at the
// given utilisation. Starvation (achieved < demand) dominates; otherwise a
// mild queueing term applies near link saturation.
func Inflation(demand, achieved, utilisation float64) float64 {
	g := queue.SaturationInflation(utilisation, InflationCoeff, InflationPower)
	if demand > 0 && achieved > 0 && achieved < demand {
		shortfall := demand/achieved - 1
		g *= 1 + StarvationPenalty*shortfall
	} else if demand > 0 && achieved == 0 {
		g *= 1 + StarvationPenalty*10
	}
	return g
}
