package netlink

import (
	"math"
	"testing"
	"testing/quick"
)

func TestResolveUnderCapacity(t *testing.T) {
	res := Resolve(1.25, []Class{
		{DemandGBs: 0.2, Flows: 10},
		{DemandGBs: 0.3, Flows: 5},
	})
	if res.AchievedGBs[0] != 0.2 || res.AchievedGBs[1] != 0.3 {
		t.Fatalf("achieved = %v", res.AchievedGBs)
	}
	if math.Abs(res.TotalGBs-0.5) > 1e-9 {
		t.Fatalf("total = %v", res.TotalGBs)
	}
}

func TestResolveFairShareByFlowCount(t *testing.T) {
	// Saturated link: shares split by flow count (per-flow TCP fairness,
	// which is how many mice flows strangle a service, §3.2).
	res := Resolve(1.25, []Class{
		{DemandGBs: 1.25, Flows: 100}, // iperf mice
		{DemandGBs: 1.25, Flows: 25},  // LC flows
	})
	ratio := res.AchievedGBs[0] / res.AchievedGBs[1]
	if math.Abs(ratio-4) > 0.01 {
		t.Fatalf("share ratio = %v, want 4 (100:25 flows)", ratio)
	}
	if math.Abs(res.TotalGBs-1.25) > 1e-9 {
		t.Fatalf("saturated total = %v", res.TotalGBs)
	}
}

func TestResolveHTBCeilEnforced(t *testing.T) {
	res := Resolve(1.25, []Class{
		{DemandGBs: 1.25, Flows: 100, CeilGBs: 0.2}, // BE with HTB ceiling
		{DemandGBs: 0.9, Flows: 25},                 // LC unrestricted
	})
	if res.AchievedGBs[0] > 0.2+1e-9 {
		t.Fatalf("ceil violated: %v", res.AchievedGBs[0])
	}
	if res.AchievedGBs[1] < 0.9-1e-9 {
		t.Fatalf("LC starved despite ceiling: %v", res.AchievedGBs[1])
	}
}

func TestResolveExcessRedistributed(t *testing.T) {
	// One class is capped; the freed bandwidth goes to the other.
	res := Resolve(1.0, []Class{
		{DemandGBs: 1.0, Flows: 50, CeilGBs: 0.1},
		{DemandGBs: 1.0, Flows: 50},
	})
	if math.Abs(res.AchievedGBs[1]-0.9) > 1e-9 {
		t.Fatalf("uncapped class got %v, want 0.9", res.AchievedGBs[1])
	}
}

func TestResolveZeroLink(t *testing.T) {
	res := Resolve(0, []Class{{DemandGBs: 1, Flows: 1}})
	if res.AchievedGBs[0] != 0 {
		t.Fatalf("achieved on zero link = %v", res.AchievedGBs)
	}
}

func TestResolveDefaultsFlowWeight(t *testing.T) {
	res := Resolve(1.0, []Class{
		{DemandGBs: 1.0, Flows: 0}, // zero flows weighs as 1
		{DemandGBs: 1.0, Flows: 1},
	})
	if math.Abs(res.AchievedGBs[0]-res.AchievedGBs[1]) > 1e-9 {
		t.Fatalf("defaulted weight shares unequal: %v", res.AchievedGBs)
	}
}

func TestInflationStarvation(t *testing.T) {
	mild := Inflation(0.5, 0.5, 0.5)
	starved := Inflation(0.6, 0.5, 0.99)
	if mild > 1.2 {
		t.Fatalf("satisfied demand inflation = %v", mild)
	}
	if starved < 5 {
		t.Fatalf("starved inflation = %v, want large", starved)
	}
	if zero := Inflation(0.5, 0, 1); zero < starved {
		t.Fatalf("fully starved inflation %v should exceed partial %v", zero, starved)
	}
}

func TestResolveConservationProperty(t *testing.T) {
	if err := quick.Check(func(d1, d2 uint8, f1, f2 uint8, ceil uint8) bool {
		classes := []Class{
			{DemandGBs: float64(d1) / 100, Flows: int(f1), CeilGBs: float64(ceil) / 200},
			{DemandGBs: float64(d2) / 100, Flows: int(f2)},
		}
		res := Resolve(1.25, classes)
		var sum float64
		for i, a := range res.AchievedGBs {
			lim := classes[i].DemandGBs
			if classes[i].CeilGBs > 0 && classes[i].CeilGBs < lim {
				lim = classes[i].CeilGBs
			}
			if a < -1e-9 || a > lim+1e-9 {
				return false
			}
			sum += a
		}
		return sum <= 1.25+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}
