package trace

import (
	"math"
	"time"

	"heracles/internal/sim"
)

// Point is one epoch of a load trace.
type Point struct {
	At   time.Duration
	Load float64 // fraction of peak
}

// Trace is a time-ordered sequence of load points.
type Trace []Point

// At returns the load at time t by stepping (piecewise-constant) through
// the trace. Before the first point it returns the first load; after the
// last, the last.
func (tr Trace) At(t time.Duration) float64 {
	if len(tr) == 0 {
		return 0
	}
	if t <= tr[0].At {
		return tr[0].Load
	}
	lo, hi := 0, len(tr)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if tr[mid].At <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return tr[lo].Load
}

// Duration returns the time of the last point.
func (tr Trace) Duration() time.Duration {
	if len(tr) == 0 {
		return 0
	}
	return tr[len(tr)-1].At
}

// DiurnalConfig parameterises the synthetic diurnal trace.
type DiurnalConfig struct {
	Duration time.Duration // total trace length (default 12 h)
	Step     time.Duration // epoch between points (default 1 min)
	MinLoad  float64       // trough load (default 0.20)
	MaxLoad  float64       // crest load (default 0.90)
	Noise    float64       // relative short-term noise (default 0.03)
	Spikes   int           // number of short traffic spikes (default 3)
	Seed     uint64
}

func (c DiurnalConfig) withDefaults() DiurnalConfig {
	if c.Duration == 0 {
		c.Duration = 12 * time.Hour
	}
	if c.Step == 0 {
		c.Step = time.Minute
	}
	if c.MinLoad == 0 {
		c.MinLoad = 0.20
	}
	if c.MaxLoad == 0 {
		c.MaxLoad = 0.85
	}
	if c.Noise == 0 {
		c.Noise = 0.03
	}
	if c.Spikes == 0 {
		c.Spikes = 3
	}
	return c
}

// Diurnal synthesises a half-day diurnal load curve: a smooth rise from
// the overnight trough toward the daily crest and partway back, with
// small noise and a few short spikes, spanning loads between MinLoad and
// MaxLoad like the trace in §5.3 ("the websearch load varies between 20%
// and 90% in this trace").
func Diurnal(cfg DiurnalConfig) Trace {
	cfg = cfg.withDefaults()
	rng := sim.NewRNG(cfg.Seed + 0x9e3779b9)
	n := int(cfg.Duration/cfg.Step) + 1
	tr := make(Trace, 0, n)

	type spike struct {
		at    float64 // fraction of duration
		width float64
		amp   float64
	}
	spikes := make([]spike, cfg.Spikes)
	for i := range spikes {
		spikes[i] = spike{
			at:    0.1 + 0.8*rng.Float64(),
			width: 0.004 + 0.01*rng.Float64(),
			amp:   0.02 + 0.05*rng.Float64(),
		}
	}

	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n-1)
		// Half of a daily sine: trough -> crest -> partway down.
		phase := -math.Pi/2 + frac*1.4*math.Pi
		base := cfg.MinLoad + (cfg.MaxLoad-cfg.MinLoad)*(0.5+0.5*math.Sin(phase))
		load := base + rng.Norm(0, cfg.Noise*base)
		for _, s := range spikes {
			d := (frac - s.at) / s.width
			load += s.amp * math.Exp(-d*d)
		}
		if load < 0.02 {
			load = 0.02
		}
		if load > 1 {
			load = 1
		}
		tr = append(tr, Point{At: time.Duration(i) * cfg.Step, Load: load})
	}
	return tr
}

// Constant returns a flat trace at the given load.
func Constant(load float64, duration, step time.Duration) Trace {
	n := int(duration/step) + 1
	tr := make(Trace, 0, n)
	for i := 0; i < n; i++ {
		tr = append(tr, Point{At: time.Duration(i) * step, Load: load})
	}
	return tr
}
