// Package trace generates the request-load traces the experiments
// replay: the 12-hour diurnal load trace of the cluster evaluation
// (§5.3, "an anonymized, 12-hour request trace that captures the part of
// the daily diurnal pattern when websearch is not fully loaded") and
// synthetic anonymised request streams.
//
// A Trace is plain time-ordered data with piecewise-constant lookup;
// internal/scenario wraps traces as composable load shapes, which is how
// the cluster, fleet and control-plane layers consume them.
package trace
