package trace

import (
	"testing"
	"time"
)

func TestDiurnalBounds(t *testing.T) {
	tr := Diurnal(DiurnalConfig{Duration: time.Hour, Step: time.Second, Seed: 1})
	if len(tr) == 0 {
		t.Fatal("empty trace")
	}
	for _, p := range tr {
		if p.Load < 0.02 || p.Load > 1 {
			t.Fatalf("load %v out of bounds at %v", p.Load, p.At)
		}
	}
}

func TestDiurnalCoversRange(t *testing.T) {
	tr := Diurnal(DiurnalConfig{Duration: 12 * time.Hour, Step: time.Minute, Seed: 3})
	lo, hi := 2.0, 0.0
	for _, p := range tr {
		if p.Load < lo {
			lo = p.Load
		}
		if p.Load > hi {
			hi = p.Load
		}
	}
	// §5.3: load varies between ~20% and ~90%.
	if lo > 0.30 {
		t.Fatalf("trough %v, want near 0.2", lo)
	}
	if hi < 0.75 {
		t.Fatalf("crest %v, want near 0.85", hi)
	}
}

func TestDiurnalDeterministicPerSeed(t *testing.T) {
	a := Diurnal(DiurnalConfig{Duration: time.Hour, Step: time.Minute, Seed: 7})
	b := Diurnal(DiurnalConfig{Duration: time.Hour, Step: time.Minute, Seed: 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
	c := Diurnal(DiurnalConfig{Duration: time.Hour, Step: time.Minute, Seed: 8})
	same := true
	for i := range a {
		if a[i].Load != c[i].Load {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestTraceAt(t *testing.T) {
	tr := Trace{
		{At: 0, Load: 0.1},
		{At: time.Minute, Load: 0.5},
		{At: 2 * time.Minute, Load: 0.9},
	}
	if tr.At(-time.Second) != 0.1 {
		t.Fatal("before start")
	}
	if tr.At(30*time.Second) != 0.1 {
		t.Fatal("piecewise-constant step")
	}
	if tr.At(time.Minute) != 0.5 {
		t.Fatal("exact point")
	}
	if tr.At(90*time.Second) != 0.5 {
		t.Fatal("between points")
	}
	if tr.At(time.Hour) != 0.9 {
		t.Fatal("after end")
	}
	if tr.Duration() != 2*time.Minute {
		t.Fatal("duration")
	}
}

func TestTraceAtEmpty(t *testing.T) {
	var tr Trace
	if tr.At(0) != 0 || tr.Duration() != 0 {
		t.Fatal("empty trace behaviour")
	}
}

func TestConstantTrace(t *testing.T) {
	tr := Constant(0.4, time.Minute, time.Second)
	if len(tr) != 61 {
		t.Fatalf("points = %d", len(tr))
	}
	for _, p := range tr {
		if p.Load != 0.4 {
			t.Fatal("constant trace varies")
		}
	}
}
