package serve

import (
	"errors"
	"fmt"
	"time"

	"heracles/internal/engine"
	"heracles/internal/fault"
	"heracles/internal/machine"
	"heracles/internal/scenario"
	"heracles/internal/sim"
)

// ErrCrashed is returned by mutation calls against an instance whose
// driver has crashed and is restarting from its last checkpoint.
var ErrCrashed = errors.New("serve: instance crashed, restart in progress")

// ErrQuarantined is returned by mutation calls against an instance the
// supervisor has given up restarting (the circuit breaker opened after
// repeated consecutive crashes). Delete the instance or restore its
// checkpoint into a fresh one.
var ErrQuarantined = errors.New("serve: instance quarantined after repeated crashes")

// Supervisor health states reported by GET /api/v1/instances/{id}/health.
const (
	// HealthHealthy: no crash since the last stability window.
	HealthHealthy = "healthy"
	// HealthDegraded: restarted after a crash, not yet stable again.
	HealthDegraded = "degraded"
	// HealthQuarantined: the circuit breaker opened; the driver is parked
	// and every mutation fails with ErrQuarantined.
	HealthQuarantined = "quarantined"
)

// supervisorConfig tunes an instance's crash supervision; the server
// builds one per instance from its Config.
type supervisorConfig struct {
	backoff   time.Duration   // base restart delay, doubled per consecutive crash
	maxConsec int             // quarantine when consecutive crashes exceed this
	ckptEvery int             // epochs between restart-checkpoint refreshes
	stable    int             // crash-free epochs that clear the degraded state
	onCrash   func(*Instance) // crash callback (fleet scheduler eviction)
}

func (c supervisorConfig) withDefaults() supervisorConfig {
	if c.backoff <= 0 {
		c.backoff = 250 * time.Millisecond
	}
	if c.maxConsec <= 0 {
		c.maxConsec = 5
	}
	if c.ckptEvery <= 0 {
		c.ckptEvery = 30
	}
	if c.stable <= 0 {
		c.stable = 120
	}
	return c
}

// HealthStatus is the wire form of GET /api/v1/instances/{id}/health.
type HealthStatus struct {
	ID    string `json:"id"`
	State string `json:"state"` // healthy | degraded | quarantined
	// Crashes counts driver crashes over the instance's lifetime;
	// Restarts counts successful restarts from checkpoint.
	Crashes  int `json:"crashes"`
	Restarts int `json:"restarts"`
	// ConsecutiveCrashes is the circuit breaker's position: it grows with
	// each crash, resets after a stability window, and opens the breaker
	// (quarantine) past the configured limit.
	ConsecutiveCrashes int    `json:"consecutive_crashes"`
	LastError          string `json:"last_error,omitempty"`
	LastCrashEpoch     uint64 `json:"last_crash_epoch,omitempty"`
	// FaultsInjected counts faults applied to this instance — engine
	// faults and driver panics — via API injection or fault schedules.
	FaultsInjected int64 `json:"faults_injected"`
}

// Health reports the supervisor's view of the instance. Safe to call
// from any goroutine, in any health state.
func (i *Instance) Health() HealthStatus {
	i.mu.Lock()
	defer i.mu.Unlock()
	return HealthStatus{
		ID:                 i.id,
		State:              i.healthState,
		Crashes:            i.crashes,
		Restarts:           i.restarts,
		ConsecutiveCrashes: i.consec,
		LastError:          i.lastErr,
		LastCrashEpoch:     i.lastCrashEpoch,
		FaultsInjected:     i.faultsInjected,
	}
}

// FaultDriverPanic is the serve-layer fault kind: the next epoch step
// panics inside the driver worker, exercising the supervisor's
// recover/restart path rather than the engine's simulated fault model.
const FaultDriverPanic = "driver-panic"

// FaultRequest is the JSON body of POST /api/v1/instances/{id}/faults.
type FaultRequest struct {
	// Kind is a fault.Kind wire name (leaf-crash, telemetry-blackout,
	// slow-machine, actuation-fail, be-kill) or "driver-panic".
	Kind string `json:"kind"`
	// DurationS bounds window faults in simulated seconds (defaults:
	// leaf-crash 30, telemetry-blackout 60, slow-machine 60,
	// actuation-fail 30).
	DurationS float64 `json:"duration_s,omitempty"`
	// Factor is the slow-machine service-time inflation (default 1.5).
	Factor float64 `json:"factor,omitempty"`
	// Workload narrows be-kill to one workload name; empty kills every
	// BE task.
	Workload string `json:"workload,omitempty"`
}

// check validates the request without touching the instance.
func (r FaultRequest) check() error {
	if r.Kind == FaultDriverPanic {
		return nil
	}
	if _, ok := fault.KindByName(r.Kind); !ok {
		return fmt.Errorf("unknown fault kind %q", r.Kind)
	}
	if r.DurationS < 0 {
		return fmt.Errorf("duration_s %v must not be negative", r.DurationS)
	}
	if r.Factor != 0 && r.Factor < 1 {
		return fmt.Errorf("slow-machine factor %v must be >= 1", r.Factor)
	}
	return nil
}

// fault renders the request as an engine fault with the defaults filled
// in. Only valid after check, for kinds other than driver-panic.
func (r FaultRequest) fault() fault.Fault {
	k, _ := fault.KindByName(r.Kind)
	f := fault.Fault{Kind: k, Workload: r.Workload}
	dur := func(def time.Duration) time.Duration {
		if r.DurationS > 0 {
			return time.Duration(r.DurationS * float64(time.Second))
		}
		return def
	}
	switch k {
	case fault.LeafCrash:
		f.Duration = dur(30 * time.Second)
	case fault.TelemetryBlackout:
		f.Duration = dur(60 * time.Second)
	case fault.SlowMachine:
		f.Duration = dur(60 * time.Second)
		f.Factor = r.Factor
		if f.Factor < 1 {
			f.Factor = 1.5
		}
	case fault.ActuationFail:
		f.Duration = dur(30 * time.Second)
	}
	return f
}

// InjectFault applies one fault to the instance at the next epoch
// boundary: driver-panic arms the supervisor-level crash, every other
// kind is handed to the engine's injection hook.
func (i *Instance) InjectFault(req FaultRequest) error {
	if err := req.check(); err != nil {
		return err
	}
	if req.Kind == FaultDriverPanic {
		return i.Do(func() error {
			i.panicNext = true
			i.mu.Lock()
			i.faultsInjected++
			i.mu.Unlock()
			return nil
		})
	}
	f := req.fault()
	return i.Do(func() error { return i.eng.InjectFault(f) })
}

// fnvHash derives the instance's supervisor RNG seed from its id
// (FNV-1a), so restart jitter is deterministic per instance but
// uncorrelated across the fleet.
func fnvHash(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// crashErr is the error Do returns while the instance is not serving:
// quarantine wins over the transient crashed state.
func (i *Instance) crashErr() error {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.healthState == HealthQuarantined {
		return ErrQuarantined
	}
	return ErrCrashed
}

// crashInfo carries one booked crash from the panic site (stepMu held)
// to finishCrash (stepMu released). The split matters: publishing and
// the fleet-scheduler eviction callback must not run under stepMu, or
// they would deadlock against a dispatch tick that holds the scheduler
// lock while calling Do on this instance.
type crashInfo struct {
	msg        string
	quarantine string        // non-empty: the breaker opened; the reason
	delay      time.Duration // else: backoff before the restart slice
}

// guard runs fn, converting a panic into a booked crash. The caller
// holds stepMu and must hand a non-nil result to finishCrash after
// releasing it.
func (i *Instance) guard(fn func()) (crash *crashInfo) {
	defer func() {
		if v := recover(); v != nil {
			crash = i.bookCrash(v)
		}
	}()
	fn()
	return nil
}

// bookCrash records a driver panic under i.mu — health transition,
// counters, circuit-breaker verdict — and computes the restart backoff.
// From here until the restart slice rebuilds the engine, Do fails fast
// with ErrCrashed and step slices park, so the crashed machine is
// frozen. stepMu is held.
func (i *Instance) bookCrash(v any) *crashInfo {
	msg := fmt.Sprint(v)
	ci := &crashInfo{msg: msg}
	i.mu.Lock()
	i.crashed = true
	i.crashes++
	i.consec++
	i.lastErr = msg
	i.lastCrashEpoch = i.status.Epoch
	if i.healthState == HealthHealthy {
		i.healthState = HealthDegraded
	}
	i.status.State = StateCrashed
	consec, crashes := i.consec, i.crashes
	if consec > i.sup.maxConsec {
		i.healthState = HealthQuarantined
		i.status.State = StateQuarantined
		ci.quarantine = fmt.Sprintf("%d consecutive crashes exceed the limit of %d", consec, i.sup.maxConsec)
	}
	i.notifyLocked()
	i.mu.Unlock()

	if ci.quarantine == "" {
		shift := min(consec-1, 4)
		if shift < 0 {
			shift = 0
		}
		delay := i.sup.backoff << uint(shift)
		// Jitter from the instance's own derived stream: deterministic per
		// (instance, crash count) yet uncorrelated across instances, so a
		// correlated fleet-wide crash does not restart in lockstep.
		delay += time.Duration(sim.DeriveRNG(i.supSeed, uint64(crashes)).Float64() * 0.5 * float64(delay))
		ci.delay = delay
	}
	return ci
}

// finishCrash completes a booked crash with no locks held: it announces
// the crash, lets the fleet scheduler evict the dead machine's jobs —
// all before any restart, so the scheduler sees a consistent world in
// which the instance's tasks are dead — then either schedules the
// restart slice after the jittered backoff or announces quarantine.
// The backoff is a heap entry, not a timer: deleting the instance
// mid-backoff removes the entry, so churn leaks nothing. Runs in
// whichever goroutine hit the panic — a driver worker or an HTTP Do
// caller.
func (i *Instance) finishCrash(ci *crashInfo) {
	i.publishLifecycle("crashed", ci.msg)
	if i.sup.onCrash != nil {
		i.sup.onCrash(i)
	}
	if ci.quarantine != "" {
		i.publishLifecycle("quarantined", ci.quarantine)
		return
	}
	i.mu.Lock()
	i.pendingRestart = true
	i.mu.Unlock()
	i.sched.schedule(i.entry, time.Now().Add(ci.delay))
}

// quarantine opens the circuit breaker: the instance stays inspectable
// (status, health, stream) but every mutation fails until it is deleted.
// A quarantined instance holds no heap entry — parking is free.
func (i *Instance) quarantine(reason string) {
	i.mu.Lock()
	i.healthState = HealthQuarantined
	i.status.State = StateQuarantined
	i.notifyLocked()
	i.mu.Unlock()
	i.publishLifecycle("quarantined", reason)
}

// rebuildFromCheckpoint swaps in a fresh engine restored from the last
// restart checkpoint. Runs in a driver worker's restart slice under
// stepMu, with no concurrent mutation traffic (the crash gate fails Do
// callers fast).
func (i *Instance) rebuildFromCheckpoint() error {
	if len(i.lastCP) == 0 {
		return errors.New("no checkpoint to restart from")
	}
	cp, err := DecodeCheckpointFile(i.lastCP)
	if err != nil {
		return fmt.Errorf("decode restart checkpoint: %w", err)
	}
	if cp.Engine == nil {
		return errors.New("no checkpoint to restart from")
	}
	var sc *scenario.Scenario
	if cp.Scenario != nil {
		built, err := cp.Scenario.Build()
		if err != nil {
			return fmt.Errorf("rebuild scenario: %w", err)
		}
		i.warmScenarioWorkloads(built)
		sc = &built
	}
	rs := time.Now()
	eng, err := engine.Restore(engineConfig(i.lab, i.lcName), cp.Engine, sc)
	if err != nil {
		return fmt.Errorf("restore: %w", err)
	}
	restoreHist.Observe(time.Since(rs))
	// The fleet scheduler's jobs died with the crash (finishCrash evicted
	// them); resurrect the machine without their tasks or the restarted
	// engine would silently double-run requeued work.
	pruneFleetTasks(eng, cp)

	old := i.eng
	i.eng = eng
	i.m = eng.Machine(0)
	i.ctl = eng.Controller(0)
	old.Close()

	i.ctl.OnEvent(i.onControllerEvent)
	if i.trace != nil {
		i.ctl.OnEvent(i.trace)
	}
	if cp.Scenario != nil {
		spec := *cp.Scenario
		i.scenarioSpec = &spec
	} else {
		i.scenarioSpec = nil
	}
	i.doneRunning = i.maxEpochs > 0 && eng.Epoch() >= i.maxEpochs
	i.epochsSinceRestart = 0
	i.panicNext = false

	up := i.epochUpdate(i.m.Last(), eng.Epoch())
	i.mu.Lock()
	i.crashed = false
	i.restarts++
	i.status.State = StateRunning
	if i.doneRunning {
		i.status.State = StateDone
	}
	i.status.Epoch = eng.Epoch()
	i.status.Scenario = eng.ScenarioName()
	i.status.Last = up
	i.status.BEs = beNames(i.m)
	i.notifyLocked()
	i.mu.Unlock()
	i.publishLifecycle("restored", fmt.Sprintf("restarted from checkpoint at epoch %d after crash", eng.Epoch()))
	return nil
}

// pruneFleetTasks removes the BE tasks a checkpoint marked as
// fleet-scheduler-owned from a freshly restored engine: their jobs live
// with the origin scheduler, which has already evicted and requeued
// them.
func pruneFleetTasks(eng *engine.Engine, cp *InstanceCheckpoint) {
	if len(cp.FleetTasks) == 0 {
		return
	}
	m := eng.Machine(0)
	bes := m.BEs()
	var dead []*machine.BETask
	for _, idx := range cp.FleetTasks {
		if idx >= 0 && idx < len(bes) {
			dead = append(dead, bes[idx])
		}
	}
	for _, be := range dead {
		m.RemoveBE(be)
	}
	if len(dead) > 0 {
		m.Partition(m.BECoreCount())
	}
}

// markStable closes the circuit-breaker window: after enough crash-free
// epochs the consecutive-crash counter resets and a degraded instance
// reads healthy again. stepMu is held.
func (i *Instance) markStable() {
	if i.epochsSinceRestart < i.sup.stable {
		return
	}
	i.mu.Lock()
	if i.consec != 0 || i.healthState == HealthDegraded {
		i.consec = 0
		if i.healthState == HealthDegraded {
			i.healthState = HealthHealthy
		}
		i.notifyLocked()
	}
	i.mu.Unlock()
}
