package serve

import (
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"heracles/internal/experiment"
	"heracles/internal/machine"
	"heracles/internal/slo"
)

// testLab is shared by every test in the package so workload calibration
// and DRAM-model profiling run once.
var testLab = experiment.DefaultLab()

func testServer(t *testing.T) *Server {
	t.Helper()
	s := New(Config{Lab: testLab})
	t.Cleanup(s.Close)
	return s
}

func TestHubFanOutAndDrop(t *testing.T) {
	h := NewHub()
	a := h.Subscribe(2)
	b := h.Subscribe(2)
	for i := 0; i < 3; i++ {
		h.Publish(Message{Event: "epoch", ID: uint64(i + 1)})
	}
	// Each subscriber holds 2 of the 3 messages; one drop per subscriber.
	if got := h.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	if m := <-a.Ch(); m.ID != 1 {
		t.Fatalf("first message id = %d, want 1", m.ID)
	}
	b.Close()
	// A closed subscriber still drains its buffer, then reports closed.
	n := 0
	for range b.Ch() {
		n++
	}
	if n != 2 {
		t.Fatalf("closed subscriber drained %d messages, want 2", n)
	}
	h.Close()
	// Hub close closes the remaining subscriber after its buffer drains.
	for range a.Ch() {
	}
	// Subscribing after close yields an already-closed channel.
	c := h.Subscribe(1)
	if _, open := <-c.Ch(); open {
		t.Fatal("subscribe after close returned an open channel")
	}
}

func TestRegistryOrderAndRemove(t *testing.T) {
	s := testServer(t)
	var ids []string
	for i := 0; i < 3; i++ {
		inst, err := s.CreateInstance(InstanceSpec{Speed: SpeedMax, MaxEpochs: 1})
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		ids = append(ids, inst.ID())
	}
	sts := s.Registry().Statuses()
	if len(sts) != 3 {
		t.Fatalf("Statuses len = %d, want 3", len(sts))
	}
	for i, st := range sts {
		if st.ID != ids[i] {
			t.Fatalf("Statuses[%d].ID = %s, want %s (creation order)", i, st.ID, ids[i])
		}
	}
	inst, _, ok := s.Registry().Remove(ids[1])
	if !ok {
		t.Fatal("Remove of live instance failed")
	}
	inst.Stop()
	if got := s.Registry().Len(); got != 2 {
		t.Fatalf("Len after remove = %d, want 2", got)
	}
	if _, ok := s.Registry().Get(ids[1]); ok {
		t.Fatal("removed instance still resolvable")
	}
}

// TestInstanceCapExactUnderConcurrentCreates races many creates against
// a small cap: the reservation protocol must never overshoot it.
func TestInstanceCapExactUnderConcurrentCreates(t *testing.T) {
	s := New(Config{Lab: testLab, MaxInstances: 3})
	t.Cleanup(s.Close)
	const attempts = 12
	var created atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < attempts; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.CreateInstance(InstanceSpec{Speed: SpeedMax, MaxEpochs: 1}); err == nil {
				created.Add(1)
			}
		}()
	}
	wg.Wait()
	if created.Load() != 3 || s.Registry().Len() != 3 {
		t.Fatalf("created %d instances (pool %d), want exactly 3", created.Load(), s.Registry().Len())
	}
}

func TestValidateSpecRejections(t *testing.T) {
	cases := []struct {
		name string
		spec InstanceSpec
		want string
	}{
		{"bad lc", InstanceSpec{LC: "nosuch"}, "unknown LC workload"},
		{"bad be", InstanceSpec{BEs: []BEAttachment{{Workload: "nosuch"}}}, "unknown BE workload"},
		{"bad placement", InstanceSpec{BEs: []BEAttachment{{Workload: "brain", Placement: "floaty"}}}, "unknown placement"},
		{"bad load", InstanceSpec{Load: 1.5}, "outside [0, 1]"},
		{"bad slo", InstanceSpec{SLOScale: -0.5}, "must not be negative"},
		{"bad speed", InstanceSpec{Speed: -7}, "invalid"},
		{"bad epochs", InstanceSpec{MaxEpochs: -1}, "must not be negative"},
	}
	for _, tc := range cases {
		err := validateSpec(tc.spec)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
	if err := validateSpec(InstanceSpec{}); err != nil {
		t.Errorf("zero spec rejected: %v", err)
	}
}

func TestScenarioSpecBuild(t *testing.T) {
	good := ScenarioSpec{
		Name:      "mix",
		DurationS: 120,
		Load: &ShapeSpec{
			Kind: "sum",
			Terms: []ShapeSpec{
				{Kind: "flat", Value: 0.3},
				{Kind: "flashcrowd", StartS: 60, RiseS: 10, HoldS: 10, FallS: 10, Amp: 0.4},
			},
			Clamp: &ClampSpec{Lo: 0, Hi: 0.85},
		},
		Events: []EventSpec{
			{AtS: 30, Kind: "be-arrive", Workload: "brain"},
			{AtS: 60, Kind: "slo-scale", Factor: 0.8},
			{AtS: 90, Kind: "be-depart", Workload: "brain"},
		},
	}
	sc, err := good.Build()
	if err != nil {
		t.Fatalf("good spec: %v", err)
	}
	if sc.Duration != 2*time.Minute || len(sc.Events) != 3 {
		t.Fatalf("built scenario = %v duration, %d events", sc.Duration, len(sc.Events))
	}
	if load := sc.LoadAt(75 * time.Second); load <= 0.3 {
		t.Fatalf("flash crowd missing: load(75s) = %v", load)
	}

	bad := []ScenarioSpec{
		{DurationS: 0, Load: &ShapeSpec{Kind: "flat", Value: 0.3}},
		{DurationS: 60, Load: nil},
		{DurationS: 60, Load: &ShapeSpec{Kind: "wavy"}},
		{DurationS: 60, Load: &ShapeSpec{Kind: "steps"}},
		{DurationS: 60, Load: &ShapeSpec{Kind: "flat", Value: 0.3},
			Events: []EventSpec{{AtS: 10, Kind: "be-arrive", Workload: "nosuch"}}},
		{DurationS: 60, Load: &ShapeSpec{Kind: "flat", Value: 0.3},
			Events: []EventSpec{{AtS: 10, Kind: "explode"}}},
	}
	for i, sp := range bad {
		if _, err := sp.Build(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestRoutesUniqueAndDocumentedInTable(t *testing.T) {
	rs := Routes()
	if len(rs) == 0 {
		t.Fatal("no routes registered")
	}
	seen := map[string]bool{}
	for _, r := range rs {
		if seen[r] {
			t.Errorf("duplicate route %q", r)
		}
		seen[r] = true
	}
	for _, rt := range routeTable {
		if rt.Doc == "" {
			t.Errorf("route %s %s has no doc string", rt.Method, rt.Pattern)
		}
	}
}

// telPoint is the scalar slice of one epoch compared by the checkpoint
// test. (Batch-vs-live determinism itself is pinned at the engine level,
// in internal/engine, which every instance's scheduler slices advance.)
type telPoint struct {
	tail    time.Duration
	emu     float64
	load    float64
	beCores int
	beWays  int
	dram    float64
	power   float64
}

func pointOf(tel machine.Telemetry) telPoint {
	return telPoint{
		tail:    tel.TailLatency,
		emu:     tel.EMU,
		load:    tel.LCLoad,
		beCores: tel.BECores,
		beWays:  tel.BEWays,
		dram:    tel.DRAMUtil,
		power:   tel.PowerFracTDP,
	}
}

// runToPark creates a free-running instance that parks at maxEpochs,
// recording every epoch's telemetry, and waits for it to finish.
func runToPark(t *testing.T, s *Server, spec InstanceSpec, maxEpochs int) (*Instance, []telPoint) {
	t.Helper()
	var trace []telPoint
	done := make(chan struct{})
	var once sync.Once
	spec.Speed = SpeedMax
	spec.MaxEpochs = maxEpochs
	prevHook := spec.EpochHook
	spec.EpochHook = func(m *machine.Machine, tel machine.Telemetry) {
		if prevHook != nil {
			prevHook(m, tel)
		}
		trace = append(trace, pointOf(tel))
		if len(trace) == maxEpochs-prestepped(spec) {
			once.Do(func() { close(done) })
		}
	}
	inst, err := s.CreateInstance(spec)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("instance %s resolved %d epochs, want %d", inst.ID(), len(trace), maxEpochs)
	}
	return inst, trace
}

// prestepped returns how many epochs a spec's instance starts at (its
// checkpoint's epoch when restoring, 0 otherwise).
func prestepped(spec InstanceSpec) int {
	if spec.Restore != nil {
		return int(spec.Restore.Engine.Epoch)
	}
	return 0
}

// TestCheckpointRestoreContinuesBitIdentical is the live layer's
// checkpoint round-trip: run an instance to epoch k, checkpoint it over
// the JSON wire form, restore into a fresh instance (as a migration
// would), run the remainder, and require telemetry bit-identical to an
// instance that ran the full horizon uninterrupted — scenario cursor,
// controller latches and telemetry ring all restored mid-flight.
func TestCheckpointRestoreContinuesBitIdentical(t *testing.T) {
	s := testServer(t)
	const k, total = 120, 240
	scSpec := &ScenarioSpec{
		Name:      "det",
		DurationS: 200,
		Load: &ShapeSpec{Kind: "sum", Terms: []ShapeSpec{
			{Kind: "flat", Value: 0.35},
			{Kind: "flashcrowd", StartS: 80, RiseS: 20, HoldS: 20, FallS: 20, Amp: 0.5},
		}},
		Events: []EventSpec{
			{AtS: 40, Kind: "be-arrive", Workload: "streetview"},
			{AtS: 100, Kind: "slo-scale", Factor: 0.7},
			{AtS: 160, Kind: "be-depart", Workload: "streetview"},
		},
	}
	spec := InstanceSpec{
		BEs:      []BEAttachment{{Workload: "brain"}},
		Load:     0.35,
		Scenario: scSpec,
	}

	// The uninterrupted reference.
	_, want := runToPark(t, s, spec, total)

	// Interrupted run: park at k, checkpoint, restore, run the rest.
	instA, prefix := runToPark(t, s, spec, k)
	for i := range prefix {
		if prefix[i] != want[i] {
			t.Fatalf("prefix diverged at epoch %d before the checkpoint", i)
		}
	}
	cp, err := instA.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	wire, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var decoded InstanceCheckpoint
	if err := json.Unmarshal(wire, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Engine.Epoch != k {
		t.Fatalf("checkpoint records epoch %d, want %d", decoded.Engine.Epoch, k)
	}
	if decoded.Scenario == nil {
		t.Fatal("checkpoint lost the active scenario spec")
	}

	instB, rest := runToPark(t, s, InstanceSpec{Restore: &decoded}, total)
	if st := instB.Status(); st.LC != "websearch" || st.Epoch != total {
		t.Fatalf("restored instance status: %+v", st)
	}
	if len(rest) != total-k {
		t.Fatalf("restored run resolved %d epochs, want %d", len(rest), total-k)
	}
	for i := range rest {
		if rest[i] != want[k+i] {
			t.Fatalf("restored run diverged at epoch %d (%d after restore):\n%+v\nvs\n%+v",
				k+i, i, want[k+i], rest[i])
		}
	}
}

// TestConcurrentInstancesDoNotPerturbEachOther runs the same spec on
// several concurrent free-running instances and requires bit-identical
// telemetry: engines are per-instance, but the lab, registry and hub
// plumbing are shared, and none of it may leak into the simulation
// (the docs/API.md determinism contract promises this "for any number
// of concurrent instances").
func TestConcurrentInstancesDoNotPerturbEachOther(t *testing.T) {
	s := testServer(t)
	const n = 3
	const epochs = 200
	spec := InstanceSpec{
		BEs:   []BEAttachment{{Workload: "brain"}},
		Load:  0.35,
		Speed: SpeedMax,
		Scenario: &ScenarioSpec{
			Name: "det", DurationS: 180,
			Load: &ShapeSpec{Kind: "ramp", From: 0.3, To: 0.7, EndS: 150},
			Events: []EventSpec{
				{AtS: 60, Kind: "be-arrive", Workload: "streetview"},
				{AtS: 120, Kind: "slo-scale", Factor: 0.8},
			},
		},
	}

	traces := make([][]telPoint, n)
	dones := make([]chan struct{}, n)
	for k := 0; k < n; k++ {
		k := k
		dones[k] = make(chan struct{})
		var once sync.Once
		sp := spec
		sp.MaxEpochs = epochs
		sp.EpochHook = func(_ *machine.Machine, tel machine.Telemetry) {
			traces[k] = append(traces[k], pointOf(tel))
			if len(traces[k]) == epochs {
				once.Do(func() { close(dones[k]) })
			}
		}
		if _, err := s.CreateInstance(sp); err != nil {
			t.Fatalf("create %d: %v", k, err)
		}
	}
	for k := 0; k < n; k++ {
		select {
		case <-dones[k]:
		case <-time.After(30 * time.Second):
			t.Fatalf("instance %d resolved %d/%d epochs", k, len(traces[k]), epochs)
		}
	}
	for k := 1; k < n; k++ {
		for e := 0; e < epochs; e++ {
			if traces[k][e] != traces[0][e] {
				t.Fatalf("instance %d diverges from instance 0 at epoch %d:\n%+v\nvs\n%+v",
					k, e, traces[k][e], traces[0][e])
			}
		}
	}
}

// TestCompactCheckpointRestore: a compact-generation instance restores
// onto the compact lab (the checkpoint carries the hardware generation).
func TestCompactCheckpointRestore(t *testing.T) {
	s := testServer(t)
	inst, trace := runToPark(t, s, InstanceSpec{Load: 0.3, Compact: true}, 30)
	cp, err := inst.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Compact {
		t.Fatal("checkpoint lost the hardware generation")
	}
	restored, rest := runToPark(t, s, InstanceSpec{Restore: cp}, 60)
	if st := restored.Status(); !st.Compact || st.Epoch != 60 {
		t.Fatalf("restored compact instance status: %+v", st)
	}
	_, full := runToPark(t, s, InstanceSpec{Load: 0.3, Compact: true}, 60)
	for i := range rest {
		if rest[i] != full[len(trace)+i] {
			t.Fatalf("compact restore diverged at epoch %d", len(trace)+i)
		}
	}
}

// TestRestoreSpecValidation: restore conflicts with the state-bearing
// spec fields, and broken checkpoints are rejected at create time.
func TestRestoreSpecValidation(t *testing.T) {
	s := testServer(t)
	inst, err := s.CreateInstance(InstanceSpec{Speed: SpeedMax, MaxEpochs: 5, Load: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	awaitInstance(t, inst, "instance parked", func() bool {
		return inst.Status().State == StateDone
	})
	cp, err := inst.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	if err := validateSpec(InstanceSpec{Restore: cp, LC: "websearch"}); err == nil {
		t.Error("restore+lc accepted")
	}
	if err := validateSpec(InstanceSpec{Restore: cp, Load: 0.5}); err == nil {
		t.Error("restore+load accepted")
	}
	if err := validateSpec(InstanceSpec{Restore: cp, Compact: true}); err == nil {
		t.Error("restore+compact accepted")
	}
	bad := *cp
	bad.Version = 42
	if err := validateSpec(InstanceSpec{Restore: &bad}); err == nil {
		t.Error("bad version accepted")
	}
	noEngine := *cp
	noEngine.Engine = nil
	if err := validateSpec(InstanceSpec{Restore: &noEngine}); err == nil {
		t.Error("missing engine state accepted")
	}
	if err := validateSpec(InstanceSpec{Restore: cp}); err != nil {
		t.Errorf("valid checkpoint rejected: %v", err)
	}
}

// TestInstanceDoneParksAndStillServes checks MaxEpochs semantics: the
// simulation stops, the instance stays inspectable and mutable, and the
// status reports done.
func TestInstanceDoneParksAndStillServes(t *testing.T) {
	s := testServer(t)
	inst, err := s.CreateInstance(InstanceSpec{Speed: SpeedMax, MaxEpochs: 50, Load: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	awaitInstance(t, inst, "instance done", func() bool {
		return inst.Status().State == StateDone
	})
	st := inst.Status()
	if st.Epoch != 50 {
		t.Fatalf("epoch = %d, want exactly 50", st.Epoch)
	}
	// Mutations still apply (no deadlock against a parked loop).
	if err := inst.SetLoad(0.7); err != nil {
		t.Fatalf("SetLoad on done instance: %v", err)
	}
	if st2 := inst.Status(); st2.Epoch != 50 {
		t.Fatalf("done instance stepped after SetLoad: epoch %d", st2.Epoch)
	}
}

func TestDoAfterStopReturnsErrStopped(t *testing.T) {
	s := testServer(t)
	inst, err := s.CreateInstance(InstanceSpec{Speed: SpeedMax, MaxEpochs: 5})
	if err != nil {
		t.Fatal(err)
	}
	inst.Stop()
	if err := inst.SetLoad(0.5); err != ErrStopped {
		t.Fatalf("SetLoad after Stop = %v, want ErrStopped", err)
	}
}

// TestMetricNamesMatchRenderers keeps MetricNames — the registry the
// docs check reads — in lockstep with what WriteMetrics,
// WriteSchedMetrics, WriteEpochSchedMetrics, WriteShardMetrics and
// WriteProcessMetrics actually emit.
func TestMetricNamesMatchRenderers(t *testing.T) {
	var b strings.Builder
	WriteMetrics(&b, []Status{{
		ID: "i1", State: StateRunning, Epoch: 3,
		Health: HealthDegraded, Restarts: 1, FaultsInjected: 2,
		Actions: []ActionCount{{Loop: "top", Action: "ENABLE_BE", Count: 1}},
		SLO:     &slo.Status{Objective: 0.99, Epochs: 3, Page: true},
	}})
	WriteSchedMetrics(&b, SchedulerStatus{Policy: "slack-greedy", TickPanics: 1})
	WriteEpochSchedMetrics(&b, EpochSchedStatus{Drivers: 2, QueueDepth: 1, Slices: 3, Epochs: 9})
	WriteShardMetrics(&b, []ShardStatus{{Shard: 0, Instances: 1}}, 2)
	WriteProcessMetrics(&b)

	rendered := map[string]bool{}
	for _, line := range strings.Split(b.String(), "\n") {
		if f := strings.Fields(line); len(f) == 4 && f[1] == "TYPE" {
			rendered[f[2]] = true
		}
	}
	declared := map[string]bool{}
	for _, name := range MetricNames() {
		if declared[name] {
			t.Errorf("MetricNames lists %q twice", name)
		}
		declared[name] = true
		if !rendered[name] {
			t.Errorf("MetricNames lists %q but the renderers never emit it", name)
		}
	}
	for name := range rendered {
		if !declared[name] {
			t.Errorf("renderers emit %q but MetricNames does not list it", name)
		}
	}
}

func TestWriteMetricsRendersAllFamilies(t *testing.T) {
	var b strings.Builder
	sts := []Status{{
		ID: "i1", State: StateRunning, Epoch: 12,
		Last: EpochUpdate{Load: 0.4, EMU: 0.6, SLOMs: 12, TailMs: 9, Slack: 0.25},
		Actions: []ActionCount{
			{Loop: "top", Action: "ENABLE_BE", Count: 2},
		},
	}}
	WriteMetrics(&b, sts)
	out := b.String()
	for _, want := range []string{
		"heracles_instances 1",
		`heracles_instance_emu{instance="i1"} 0.6`,
		`heracles_instance_slo_slack{instance="i1"} 0.25`,
		`heracles_instance_epochs_total{instance="i1"} 12`,
		`heracles_controller_actions_total{instance="i1",loop="top",action="ENABLE_BE"} 2`,
		"heracles_fleet_emu_mean 0.6",
		"heracles_fleet_slo_slack_min 0.25",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
