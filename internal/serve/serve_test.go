package serve

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"heracles/internal/experiment"
	"heracles/internal/machine"
)

// testLab is shared by every test in the package so workload calibration
// and DRAM-model profiling run once.
var testLab = experiment.DefaultLab()

func testServer(t *testing.T) *Server {
	t.Helper()
	s := New(Config{Lab: testLab})
	t.Cleanup(s.Close)
	return s
}

func TestHubFanOutAndDrop(t *testing.T) {
	h := NewHub()
	a := h.Subscribe(2)
	b := h.Subscribe(2)
	for i := 0; i < 3; i++ {
		h.Publish(Message{Event: "epoch", ID: uint64(i + 1)})
	}
	// Each subscriber holds 2 of the 3 messages; one drop per subscriber.
	if got := h.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	if m := <-a.Ch(); m.ID != 1 {
		t.Fatalf("first message id = %d, want 1", m.ID)
	}
	b.Close()
	// A closed subscriber still drains its buffer, then reports closed.
	n := 0
	for range b.Ch() {
		n++
	}
	if n != 2 {
		t.Fatalf("closed subscriber drained %d messages, want 2", n)
	}
	h.Close()
	// Hub close closes the remaining subscriber after its buffer drains.
	for range a.Ch() {
	}
	// Subscribing after close yields an already-closed channel.
	c := h.Subscribe(1)
	if _, open := <-c.Ch(); open {
		t.Fatal("subscribe after close returned an open channel")
	}
}

func TestRegistryOrderAndRemove(t *testing.T) {
	s := testServer(t)
	var ids []string
	for i := 0; i < 3; i++ {
		inst, err := s.CreateInstance(InstanceSpec{Speed: SpeedMax, MaxEpochs: 1})
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		ids = append(ids, inst.ID())
	}
	sts := s.Registry().Statuses()
	if len(sts) != 3 {
		t.Fatalf("Statuses len = %d, want 3", len(sts))
	}
	for i, st := range sts {
		if st.ID != ids[i] {
			t.Fatalf("Statuses[%d].ID = %s, want %s (creation order)", i, st.ID, ids[i])
		}
	}
	inst, ok := s.Registry().Remove(ids[1])
	if !ok {
		t.Fatal("Remove of live instance failed")
	}
	inst.Stop()
	if got := s.Registry().Len(); got != 2 {
		t.Fatalf("Len after remove = %d, want 2", got)
	}
	if _, ok := s.Registry().Get(ids[1]); ok {
		t.Fatal("removed instance still resolvable")
	}
}

// TestInstanceCapExactUnderConcurrentCreates races many creates against
// a small cap: the reservation protocol must never overshoot it.
func TestInstanceCapExactUnderConcurrentCreates(t *testing.T) {
	s := New(Config{Lab: testLab, MaxInstances: 3})
	t.Cleanup(s.Close)
	const attempts = 12
	var created atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < attempts; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.CreateInstance(InstanceSpec{Speed: SpeedMax, MaxEpochs: 1}); err == nil {
				created.Add(1)
			}
		}()
	}
	wg.Wait()
	if created.Load() != 3 || s.Registry().Len() != 3 {
		t.Fatalf("created %d instances (pool %d), want exactly 3", created.Load(), s.Registry().Len())
	}
}

func TestValidateSpecRejections(t *testing.T) {
	cases := []struct {
		name string
		spec InstanceSpec
		want string
	}{
		{"bad lc", InstanceSpec{LC: "nosuch"}, "unknown LC workload"},
		{"bad be", InstanceSpec{BEs: []BEAttachment{{Workload: "nosuch"}}}, "unknown BE workload"},
		{"bad placement", InstanceSpec{BEs: []BEAttachment{{Workload: "brain", Placement: "floaty"}}}, "unknown placement"},
		{"bad load", InstanceSpec{Load: 1.5}, "outside [0, 1]"},
		{"bad slo", InstanceSpec{SLOScale: -0.5}, "must not be negative"},
		{"bad speed", InstanceSpec{Speed: -7}, "invalid"},
		{"bad epochs", InstanceSpec{MaxEpochs: -1}, "must not be negative"},
	}
	for _, tc := range cases {
		err := validateSpec(tc.spec)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
	if err := validateSpec(InstanceSpec{}); err != nil {
		t.Errorf("zero spec rejected: %v", err)
	}
}

func TestScenarioSpecBuild(t *testing.T) {
	good := ScenarioSpec{
		Name:      "mix",
		DurationS: 120,
		Load: &ShapeSpec{
			Kind: "sum",
			Terms: []ShapeSpec{
				{Kind: "flat", Value: 0.3},
				{Kind: "flashcrowd", StartS: 60, RiseS: 10, HoldS: 10, FallS: 10, Amp: 0.4},
			},
			Clamp: &ClampSpec{Lo: 0, Hi: 0.85},
		},
		Events: []EventSpec{
			{AtS: 30, Kind: "be-arrive", Workload: "brain"},
			{AtS: 60, Kind: "slo-scale", Factor: 0.8},
			{AtS: 90, Kind: "be-depart", Workload: "brain"},
		},
	}
	sc, err := good.Build()
	if err != nil {
		t.Fatalf("good spec: %v", err)
	}
	if sc.Duration != 2*time.Minute || len(sc.Events) != 3 {
		t.Fatalf("built scenario = %v duration, %d events", sc.Duration, len(sc.Events))
	}
	if load := sc.LoadAt(75 * time.Second); load <= 0.3 {
		t.Fatalf("flash crowd missing: load(75s) = %v", load)
	}

	bad := []ScenarioSpec{
		{DurationS: 0, Load: &ShapeSpec{Kind: "flat", Value: 0.3}},
		{DurationS: 60, Load: nil},
		{DurationS: 60, Load: &ShapeSpec{Kind: "wavy"}},
		{DurationS: 60, Load: &ShapeSpec{Kind: "steps"}},
		{DurationS: 60, Load: &ShapeSpec{Kind: "flat", Value: 0.3},
			Events: []EventSpec{{AtS: 10, Kind: "be-arrive", Workload: "nosuch"}}},
		{DurationS: 60, Load: &ShapeSpec{Kind: "flat", Value: 0.3},
			Events: []EventSpec{{AtS: 10, Kind: "explode"}}},
	}
	for i, sp := range bad {
		if _, err := sp.Build(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestRoutesUniqueAndDocumentedInTable(t *testing.T) {
	rs := Routes()
	if len(rs) == 0 {
		t.Fatal("no routes registered")
	}
	seen := map[string]bool{}
	for _, r := range rs {
		if seen[r] {
			t.Errorf("duplicate route %q", r)
		}
		seen[r] = true
	}
	for _, rt := range routeTable {
		if rt.Doc == "" {
			t.Errorf("route %s %s has no doc string", rt.Method, rt.Pattern)
		}
	}
}

// telPoint is the scalar slice of one epoch compared by the determinism
// test.
type telPoint struct {
	tail    time.Duration
	emu     float64
	load    float64
	beCores int
	beWays  int
	dram    float64
	power   float64
}

// TestInstanceFanOutDeterminism runs the same scenario-driven spec on
// several concurrent free-running instances and requires bit-identical
// telemetry: the control plane must not perturb the simulation path.
func TestInstanceFanOutDeterminism(t *testing.T) {
	s := testServer(t)
	const n = 4
	const epochs = 240

	scSpec := &ScenarioSpec{
		Name:      "det",
		DurationS: 200,
		Load: &ShapeSpec{Kind: "sum", Terms: []ShapeSpec{
			{Kind: "flat", Value: 0.35},
			{Kind: "flashcrowd", StartS: 80, RiseS: 20, HoldS: 20, FallS: 20, Amp: 0.5},
		}},
		Events: []EventSpec{
			{AtS: 40, Kind: "be-arrive", Workload: "streetview"},
			{AtS: 120, Kind: "slo-scale", Factor: 0.7},
			{AtS: 160, Kind: "be-depart", Workload: "streetview"},
		},
	}

	traces := make([][]telPoint, n)
	dones := make([]chan struct{}, n)
	for k := 0; k < n; k++ {
		k := k
		dones[k] = make(chan struct{})
		var once sync.Once
		spec := InstanceSpec{
			BEs:       []BEAttachment{{Workload: "brain"}},
			Load:      0.35,
			Speed:     SpeedMax,
			MaxEpochs: epochs,
			Scenario:  scSpec,
			EpochHook: func(_ *machine.Machine, tel machine.Telemetry) {
				traces[k] = append(traces[k], telPoint{
					tail:    tel.TailLatency,
					emu:     tel.EMU,
					load:    tel.LCLoad,
					beCores: tel.BECores,
					beWays:  tel.BEWays,
					dram:    tel.DRAMUtil,
					power:   tel.PowerFracTDP,
				})
				if len(traces[k]) == epochs {
					once.Do(func() { close(dones[k]) })
				}
			},
		}
		if _, err := s.CreateInstance(spec); err != nil {
			t.Fatalf("create %d: %v", k, err)
		}
	}
	for k := 0; k < n; k++ {
		select {
		case <-dones[k]:
		case <-time.After(30 * time.Second):
			t.Fatalf("instance %d did not finish %d epochs", k, epochs)
		}
	}
	for k := 1; k < n; k++ {
		if len(traces[k]) < epochs {
			t.Fatalf("instance %d recorded %d epochs", k, len(traces[k]))
		}
		for e := 0; e < epochs; e++ {
			if traces[k][e] != traces[0][e] {
				t.Fatalf("instance %d diverges from instance 0 at epoch %d:\n%+v\nvs\n%+v",
					k, e, traces[k][e], traces[0][e])
			}
		}
	}
}

// TestInstanceDoneParksAndStillServes checks MaxEpochs semantics: the
// simulation stops, the instance stays inspectable and mutable, and the
// status reports done.
func TestInstanceDoneParksAndStillServes(t *testing.T) {
	s := testServer(t)
	inst, err := s.CreateInstance(InstanceSpec{Speed: SpeedMax, MaxEpochs: 50, Load: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for inst.Status().State != StateDone {
		if time.Now().After(deadline) {
			t.Fatal("instance never reached done")
		}
		time.Sleep(time.Millisecond)
	}
	st := inst.Status()
	if st.Epoch != 50 {
		t.Fatalf("epoch = %d, want exactly 50", st.Epoch)
	}
	// Mutations still apply (no deadlock against a parked loop).
	if err := inst.SetLoad(0.7); err != nil {
		t.Fatalf("SetLoad on done instance: %v", err)
	}
	if st2 := inst.Status(); st2.Epoch != 50 {
		t.Fatalf("done instance stepped after SetLoad: epoch %d", st2.Epoch)
	}
}

func TestDoAfterStopReturnsErrStopped(t *testing.T) {
	s := testServer(t)
	inst, err := s.CreateInstance(InstanceSpec{Speed: SpeedMax, MaxEpochs: 5})
	if err != nil {
		t.Fatal(err)
	}
	inst.Stop()
	if err := inst.SetLoad(0.5); err != ErrStopped {
		t.Fatalf("SetLoad after Stop = %v, want ErrStopped", err)
	}
}

func TestWriteMetricsRendersAllFamilies(t *testing.T) {
	var b strings.Builder
	sts := []Status{{
		ID: "i1", State: StateRunning, Epoch: 12,
		Last: EpochUpdate{Load: 0.4, EMU: 0.6, SLOMs: 12, TailMs: 9, Slack: 0.25},
		Actions: []ActionCount{
			{Loop: "top", Action: "ENABLE_BE", Count: 2},
		},
	}}
	WriteMetrics(&b, sts)
	out := b.String()
	for _, want := range []string{
		"heracles_instances 1",
		`heracles_instance_emu{instance="i1"} 0.6`,
		`heracles_instance_slo_slack{instance="i1"} 0.25`,
		`heracles_instance_epochs_total{instance="i1"} 12`,
		`heracles_controller_actions_total{instance="i1",loop="top",action="ENABLE_BE"} 2`,
		"heracles_fleet_emu_mean 0.6",
		"heracles_fleet_slo_slack_min 0.25",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
