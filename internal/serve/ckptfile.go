package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
)

// Checkpoint files on disk are wrapped in an integrity envelope: a
// version, a CRC32-C checksum of the payload, and the serialized
// InstanceCheckpoint itself. A daemon that crashed mid-write (or a disk
// that flipped bits) must never feed a half-written snapshot into a
// restore — a corrupt file is refused with a clear error and the caller
// falls back to the previous good generation, which the writer rotates
// to "<path>.1" before each replacement.

// CheckpointFileVersion is the envelope format version.
const CheckpointFileVersion = 1

// crcTable is the Castagnoli polynomial, the CRC32-C used by filesystems
// and storage protocols for exactly this job.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// checkpointEnvelope is the on-disk frame around a checkpoint payload.
type checkpointEnvelope struct {
	Version  int             `json:"envelope_version"`
	Checksum string          `json:"checksum"` // "crc32c:%08x" over Payload
	Payload  json.RawMessage `json:"payload"`
}

// payloadChecksum hashes the compact (whitespace-free) form of the
// payload: MarshalIndent reflows embedded RawMessage bytes, so the CRC
// must not depend on formatting — only on content.
func payloadChecksum(payload []byte) (string, error) {
	var compact bytes.Buffer
	if err := json.Compact(&compact, payload); err != nil {
		return "", fmt.Errorf("checkpoint payload is not valid JSON: %v", err)
	}
	return fmt.Sprintf("crc32c:%08x", crc32.Checksum(compact.Bytes(), crcTable)), nil
}

// EncodeCheckpointFile serializes a checkpoint into its enveloped file
// form.
func EncodeCheckpointFile(cp *InstanceCheckpoint) ([]byte, error) {
	payload, err := json.Marshal(cp)
	if err != nil {
		return nil, err
	}
	sum, err := payloadChecksum(payload)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(checkpointEnvelope{
		Version:  CheckpointFileVersion,
		Checksum: sum,
		Payload:  payload,
	}, "", " ")
}

// DecodeCheckpointFile parses an enveloped checkpoint file, verifying
// the checksum before the payload is trusted. The format is auto-
// detected: files opening with the binary magic decode through the
// binary envelope (ckptbinary.go), everything else through the JSON one.
// Legacy files written before the envelope existed — a bare
// InstanceCheckpoint object, which decodes with a nil Payload — are
// accepted as-is, so old checkpoint directories stay restorable.
func DecodeCheckpointFile(data []byte) (*InstanceCheckpoint, error) {
	if IsBinaryCheckpointFile(data) {
		return decodeCheckpointFileBinary(data)
	}
	var env checkpointEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("checkpoint file corrupt or truncated: %v", err)
	}
	payload := []byte(env.Payload)
	if env.Payload == nil {
		// Legacy bare checkpoint: no envelope, no checksum to verify.
		payload = data
	} else {
		if env.Version != CheckpointFileVersion {
			return nil, fmt.Errorf("checkpoint file envelope version %d, this build reads version %d", env.Version, CheckpointFileVersion)
		}
		got, sumErr := payloadChecksum(payload)
		if sumErr != nil {
			return nil, fmt.Errorf("checkpoint file corrupt: %v", sumErr)
		}
		if got != env.Checksum {
			return nil, fmt.Errorf("checkpoint file checksum mismatch: header %s, payload %s — file is corrupt", env.Checksum, got)
		}
	}
	var cp InstanceCheckpoint
	if err := json.Unmarshal(payload, &cp); err != nil {
		return nil, fmt.Errorf("checkpoint payload corrupt: %v", err)
	}
	return &cp, nil
}

// WriteCheckpointFile atomically replaces path with a JSON-enveloped
// snapshot; WriteCheckpointFileBinary is the binary-envelope twin.
func WriteCheckpointFile(path string, cp *InstanceCheckpoint) error {
	data, err := EncodeCheckpointFile(cp)
	if err != nil {
		return err
	}
	return writeCheckpointBytes(path, data)
}

// WriteCheckpointFileBinary atomically replaces path with a binary-
// enveloped snapshot. Readers auto-detect the format, so the two writers
// are interchangeable per file.
func WriteCheckpointFileBinary(path string, cp *InstanceCheckpoint) error {
	data, err := EncodeCheckpointFileBinary(cp)
	if err != nil {
		return err
	}
	return writeCheckpointBytes(path, data)
}

// writeCheckpointBytes lands the encoded snapshot atomically: a temp
// file first (rename is atomic, a crash mid-write never clobbers the
// live file), with the previous generation rotated to "<path>.1" so one
// corrupted write still leaves a valid snapshot to fall back to.
func writeCheckpointBytes(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, path+".1"); err != nil {
			return err
		}
	}
	return os.Rename(tmp, path)
}

// ReadCheckpointFile reads and verifies one enveloped checkpoint file.
func ReadCheckpointFile(path string) (*InstanceCheckpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeCheckpointFile(data)
}

// ReadCheckpointFallback reads path, and when it is missing or fails
// verification falls back to the rotated previous generation
// "<path>.1". It returns the path actually restored; when both
// generations are unusable the primary's error is returned (the
// fallback's is folded into it).
func ReadCheckpointFallback(path string) (*InstanceCheckpoint, string, error) {
	cp, err := ReadCheckpointFile(path)
	if err == nil {
		return cp, path, nil
	}
	prev := path + ".1"
	cp2, err2 := ReadCheckpointFile(prev)
	if err2 == nil {
		return cp2, prev, nil
	}
	if os.IsNotExist(err2) {
		return nil, "", err
	}
	return nil, "", fmt.Errorf("%v (fallback %s: %v)", err, prev, err2)
}
