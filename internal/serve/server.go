package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"heracles/internal/experiment"
	"heracles/internal/fault"
	"heracles/internal/hw"
	"heracles/internal/sched"
	"heracles/internal/workload"
)

// Config configures a control-plane server.
type Config struct {
	// Lab supplies calibrated workloads and the reference hardware; nil
	// selects experiment.DefaultLab(). All instances on the reference
	// generation share it, so each workload calibrates at most once.
	Lab *experiment.Lab
	// CompactLab backs instances created with "compact": true; nil builds
	// a lab on hw.CompactConfig() on first use.
	CompactLab *experiment.Lab
	// DefaultSpeed is the tick rate for instances that do not set one:
	// simulated seconds per wall-clock second. 0 selects 1 (real time);
	// SpeedMax (-1) free-runs.
	DefaultSpeed float64
	// MaxInstances caps the pool (0 selects 64); creates beyond the cap
	// fail with 503.
	MaxInstances int
	// Workers bounds status-snapshot and shutdown fan-out over the
	// instance pool (0 selects GOMAXPROCS).
	Workers int
	// Drivers is the total epoch-scheduler worker budget — the number of
	// goroutines stepping instance epochs concurrently (the daemon's
	// -drivers knob), divided across shards with a floor of one worker
	// each. 0 selects GOMAXPROCS.
	Drivers int
	// Shards splits the control plane into that many isolated domains —
	// each with its own epoch-scheduler heap and worker pool, lifecycle
	// SSE hub and fleet job scheduler — behind a consistent-hash
	// instance→shard map, with work-stealing between the shard pools
	// (the daemon's -shards knob). 0 selects 1 (unsharded).
	Shards int

	// SchedPolicy names the fleet scheduler's placement policy
	// (slack-greedy, bin-pack, spread, random; default "slack-greedy").
	// The scheduler dispatches jobs submitted via POST /api/v1/jobs over
	// the live instance pool.
	SchedPolicy string
	// SchedInterval is the dispatch loop's wall-clock cadence (default
	// 1s; tests shorten it).
	SchedInterval time.Duration
	// SchedSeed seeds the scheduler's deterministic choice streams.
	SchedSeed uint64

	// RestartBackoff is the supervisor's base restart delay after a
	// driver crash; it doubles per consecutive crash (capped at 16x) with
	// up to 50% deterministic jitter. 0 selects 250ms.
	RestartBackoff time.Duration
	// MaxCrashRestarts is the circuit breaker: an instance exceeding this
	// many consecutive crashes is quarantined instead of restarted. 0
	// selects 5; the counter clears after StableEpochs clean epochs.
	MaxCrashRestarts int
	// CheckpointEpochs is how often (in epochs) the supervisor refreshes
	// each instance's in-memory restart checkpoint. 0 selects 30.
	CheckpointEpochs int
	// StableEpochs is how many crash-free epochs return a degraded
	// instance to healthy and reset its consecutive-crash count. 0
	// selects 120.
	StableEpochs int
}

// Server owns the instance pool and the HTTP API over it.
type Server struct {
	cfg    Config
	lab    *experiment.Lab
	reg    *Registry
	mux    *http.ServeMux
	scheds []*schedDriver // one fleet driver per registry shard
	jobRR  atomic.Uint64  // round-robin cursor for job submission

	compactOnce sync.Once
	compactLab  *experiment.Lab
}

// New builds a server and its route table. Unknown scheduler policy
// names panic: server configuration is programmer input.
func New(cfg Config) *Server {
	if cfg.Lab == nil {
		cfg.Lab = experiment.DefaultLab()
	}
	if cfg.DefaultSpeed == 0 {
		cfg.DefaultSpeed = 1
	}
	if cfg.MaxInstances == 0 {
		cfg.MaxInstances = 64
	}
	if cfg.SchedPolicy == "" {
		cfg.SchedPolicy = "slack-greedy"
	}
	if cfg.SchedInterval <= 0 {
		cfg.SchedInterval = time.Second
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	policy, err := sched.PolicyByName(cfg.SchedPolicy)
	if err != nil {
		panic("serve: " + err.Error())
	}
	s := &Server{
		cfg:        cfg,
		lab:        cfg.Lab,
		reg:        NewRegistry(cfg.Workers, cfg.Drivers, cfg.Shards),
		compactLab: cfg.CompactLab,
	}
	s.mux = http.NewServeMux()
	for _, rt := range routeTable {
		rt := rt
		s.mux.HandleFunc(rt.Method+" "+rt.Pattern, func(w http.ResponseWriter, r *http.Request) {
			rt.handler(s, w, r)
		})
	}
	for _, sh := range s.reg.shards {
		s.scheds = append(s.scheds, newSchedDriver(s, sh, cfg.Shards, policy, cfg.SchedSeed, cfg.SchedInterval))
	}
	return s
}

// Handler returns the HTTP handler serving every route in Routes.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the instance pool (the daemon bootstraps through it).
func (s *Server) Registry() *Registry { return s.reg }

// CreateInstance validates the spec, builds the instance and registers
// it on its consistent-hash home shard — the programmatic equivalent of
// POST /api/v1/instances.
func (s *Server) CreateInstance(spec InstanceSpec) (*Instance, error) {
	return s.createInstance(spec, -1, "")
}

// createInstance builds an instance on an explicit shard (the
// migrate-in path) or, with shardIdx < 0, on the id's consistent-hash
// home.
func (s *Server) createInstance(spec InstanceSpec, shardIdx int, detail string) (*Instance, error) {
	if err := validateSpec(spec); err != nil {
		return nil, err
	}
	id, ok := s.reg.Reserve(s.cfg.MaxInstances)
	if !ok {
		return nil, errTooMany
	}
	if shardIdx < 0 {
		shardIdx = s.reg.PlaceShard(id)
	}
	sh := s.reg.shards[shardIdx]
	speed := spec.Speed
	compact := spec.Compact
	if spec.Restore != nil {
		// The checkpoint knows its own hardware generation and tick
		// rate; validateSpec has already rejected conflicting fields.
		compact = spec.Restore.Compact
		if speed == 0 {
			speed = spec.Restore.Speed
		}
	}
	if speed == 0 {
		speed = s.cfg.DefaultSpeed
	}
	driver := s.scheds[shardIdx]
	sup := supervisorConfig{
		backoff:   s.cfg.RestartBackoff,
		maxConsec: s.cfg.MaxCrashRestarts,
		ckptEvery: s.cfg.CheckpointEpochs,
		stable:    s.cfg.StableEpochs,
		// A crash kills the fleet scheduler's tasks with the machine:
		// evict their jobs (requeuing against the retry budget) before
		// the instance restarts from its checkpoint. The shard — and so
		// its driver — is fixed for the instance's lifetime.
		onCrash: func(in *Instance) { driver.evictCrashed(in) },
	}
	inst, err := newInstance(id, spec, s.labFor(compact), speed, sup, sh.sched)
	if err != nil {
		s.reg.Unreserve()
		return nil, err
	}
	if detail == "" {
		s.reg.Put(inst)
	} else {
		s.reg.PutShard(inst, shardIdx, detail)
	}
	return inst, nil
}

// Close stops every shard's dispatch loop, then every instance. The
// order matters: the drivers hold task references into live instances,
// so they must quiesce before the pool tears down. Safe to call more
// than once.
func (s *Server) Close() {
	for _, d := range s.scheds {
		d.stop()
	}
	s.reg.Close()
}

// labFor resolves the lab for a hardware generation, building the
// compact-generation lab on first use.
func (s *Server) labFor(compact bool) *experiment.Lab {
	if !compact {
		return s.lab
	}
	s.compactOnce.Do(func() {
		if s.compactLab == nil {
			s.compactLab = experiment.NewLab(hw.CompactConfig())
		}
	})
	return s.compactLab
}

var errTooMany = errors.New("serve: instance cap reached")

// validateSpec rejects a create request with unknown workload names or
// out-of-range numbers before any simulation state is built.
func validateSpec(spec InstanceSpec) error {
	if spec.Restore != nil {
		if spec.LC != "" || len(spec.BEs) > 0 || spec.Load != 0 || spec.SLOScale != 0 || spec.Scenario != nil || spec.Compact {
			return fmt.Errorf("restore conflicts with lc/bes/load/slo_scale/scenario/compact: that state comes from the checkpoint")
		}
		if err := validateCheckpoint(spec.Restore); err != nil {
			return fmt.Errorf("restore: %w", err)
		}
	}
	if spec.LC != "" {
		if _, ok := workload.LCByName(spec.LC); !ok {
			return fmt.Errorf("unknown LC workload %q", spec.LC)
		}
	}
	for _, att := range spec.BEs {
		if err := checkBEName(att.Workload); err != nil {
			return err
		}
		if _, err := placementByName(att.Placement); err != nil {
			return err
		}
	}
	if spec.Load < 0 || spec.Load > 1 {
		return fmt.Errorf("load %v outside [0, 1]", spec.Load)
	}
	if spec.SLOScale < 0 {
		return fmt.Errorf("slo_scale %v must not be negative", spec.SLOScale)
	}
	if spec.Speed < 0 && spec.Speed != SpeedMax {
		return fmt.Errorf("speed %v invalid (positive, 0 for server default, or -1 for max)", spec.Speed)
	}
	if spec.MaxEpochs < 0 {
		return fmt.Errorf("max_epochs %v must not be negative", spec.MaxEpochs)
	}
	return nil
}

// Route is one registered API endpoint; the docs checker cross-references
// this table against docs/API.md.
type Route struct {
	Method  string
	Pattern string
	Doc     string

	handler func(*Server, http.ResponseWriter, *http.Request)
}

// routeTable is the single source of truth for the HTTP surface: the mux
// is built from it and Routes exposes it for documentation enforcement.
var routeTable = []Route{
	{"GET", "/healthz", "liveness probe: status and instance count", (*Server).handleHealthz},
	{"GET", "/metrics", "Prometheus exposition across all instances", (*Server).handleMetrics},
	{"GET", "/api/v1/instances", "list instance statuses", (*Server).handleList},
	{"POST", "/api/v1/instances", "create an instance from an InstanceSpec", (*Server).handleCreate},
	{"GET", "/api/v1/instances/{id}", "inspect one instance", (*Server).handleGet},
	{"DELETE", "/api/v1/instances/{id}", "stop and remove an instance", (*Server).handleDelete},
	{"PUT", "/api/v1/instances/{id}/load", "change the offered LC load target", (*Server).handleSetLoad},
	{"PUT", "/api/v1/instances/{id}/slo", "change the controller-visible SLO scale", (*Server).handleSetSLO},
	{"PUT", "/api/v1/instances/{id}/degrade", "inject or clear LC service degradation", (*Server).handleDegrade},
	{"POST", "/api/v1/instances/{id}/bes", "attach a best-effort task", (*Server).handleAttachBE},
	{"DELETE", "/api/v1/instances/{id}/bes/{workload}", "detach best-effort tasks by workload name", (*Server).handleDetachBE},
	{"POST", "/api/v1/instances/{id}/scenario", "drive the instance by a declarative scenario", (*Server).handleScenario},
	{"POST", "/api/v1/instances/{id}/checkpoint", "snapshot the instance's full simulation state for restore or migration", (*Server).handleCheckpoint},
	{"POST", "/api/v1/instances/{id}/migrate", "checkpoint, ship and restore the instance onto another shard or a peer daemon mid-run", (*Server).handleMigrate},
	{"GET", "/api/v1/instances/{id}/health", "supervisor health: crash and restart counters, circuit-breaker state", (*Server).handleInstanceHealth},
	{"POST", "/api/v1/instances/{id}/faults", "inject a fault: leaf-crash, telemetry-blackout, slow-machine, actuation-fail, be-kill or driver-panic", (*Server).handleFaultInject},
	{"GET", "/api/v1/instances/{id}/slo", "error-budget status: objective, budget spent, burn rates per window, firing alerts", (*Server).handleSLO},
	{"GET", "/api/v1/instances/{id}/trace", "recent epoch span timings from the instance's trace ring", (*Server).handleTrace},
	{"GET", "/api/v1/instances/{id}/stream", "SSE stream of epoch telemetry, controller and scheduler events", (*Server).handleStream},
	{"GET", "/api/v1/shards", "per-shard instance counts, epoch-scheduler and fleet-scheduler accounting", (*Server).handleShards},
	{"GET", "/api/v1/shards/{shard}/stream", "SSE stream of one shard's lifecycle events: creations, deletions, migrations", (*Server).handleShardStream},
	{"GET", "/api/v1/scheduler", "fleet scheduler status and goodput accounting", (*Server).handleSchedStatus},
	{"GET", "/api/v1/jobs", "list best-effort jobs", (*Server).handleJobsList},
	{"POST", "/api/v1/jobs", "submit a best-effort job for fleet-wide dispatch", (*Server).handleJobSubmit},
	{"GET", "/api/v1/jobs/{id}", "inspect one job", (*Server).handleJobGet},
	{"DELETE", "/api/v1/jobs/{id}", "cancel a job, evicting it if running", (*Server).handleJobCancel},
}

// Routes lists every registered endpoint as "METHOD PATTERN" strings, in
// registration order.
func Routes() []string {
	out := make([]string, len(routeTable))
	for i, rt := range routeTable {
		out[i] = rt.Method + " " + rt.Pattern
	}
	return out
}

// --- Handler plumbing --------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func apiError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// Body limits on mutating routes: a misbehaving client must not be able
// to stream an unbounded request into memory. Ordinary mutation bodies
// are tiny; instance creation may carry a full restore checkpoint, so it
// gets a larger allowance.
const (
	defaultBodyLimit = 1 << 20  // 1 MiB
	restoreBodyLimit = 64 << 20 // 64 MiB: InstanceSpec.Restore checkpoints
)

// decodeBody strictly decodes a JSON request body into v, capped at the
// default body limit.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	return decodeBodyLimit(w, r, v, defaultBodyLimit)
}

// decodeBodyLimit is decodeBody with an explicit size cap; an oversized
// body answers 413 and closes the connection.
func decodeBodyLimit(w http.ResponseWriter, r *http.Request, v any, limit int64) bool {
	body := http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			apiError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
			return false
		}
		apiError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// instance resolves {id} or writes a 404.
func (s *Server) instance(w http.ResponseWriter, r *http.Request) (*Instance, bool) {
	id := r.PathValue("id")
	inst, ok := s.reg.Get(id)
	if !ok {
		apiError(w, http.StatusNotFound, "no instance %q", id)
	}
	return inst, ok
}

// doErr maps an instance mutation error onto an HTTP response.
func doErr(w http.ResponseWriter, err error) bool {
	switch {
	case err == nil:
		return true
	case errors.Is(err, ErrStopped):
		apiError(w, http.StatusConflict, "instance stopped")
	case errors.Is(err, ErrQuarantined):
		apiError(w, http.StatusConflict, "instance quarantined after repeated crashes")
	case errors.Is(err, ErrCrashed):
		apiError(w, http.StatusServiceUnavailable, "instance crashed, restart in progress")
	default:
		apiError(w, http.StatusBadRequest, "%v", err)
	}
	return false
}

// --- Handlers ----------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":          "ok",
		"instances":       s.reg.Len(),
		"shards":          s.reg.ShardCount(),
		"migrations":      s.reg.Migrations(),
		"epoch_scheduler": s.reg.SchedStatus(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// Render into a buffer and emit families in sorted name order, so the
	// exposition is deterministic regardless of renderer sequence.
	var buf bytes.Buffer
	WriteMetrics(&buf, s.reg.Statuses())
	WriteSchedMetrics(&buf, s.SchedStatus())
	WriteEpochSchedMetrics(&buf, s.reg.SchedStatus())
	WriteShardMetrics(&buf, s.reg.ShardStatuses(), s.reg.Migrations())
	WriteProcessMetrics(&buf)
	io.WriteString(w, SortFamilies(buf.String()))
}

// ShardStatuses snapshots every shard with its fleet-scheduler
// accounting attached.
func (s *Server) ShardStatuses() []ShardStatus {
	sts := s.reg.ShardStatuses()
	for i := range sts {
		st := s.scheds[i].Status()
		sts[i].Sched = &st
	}
	return sts
}

func (s *Server) handleShards(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"shards":     s.ShardStatuses(),
		"migrations": s.reg.Migrations(),
	})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	sts := s.reg.Statuses()
	writeJSON(w, http.StatusOK, map[string]any{"instances": sts})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec InstanceSpec
	if !decodeBodyLimit(w, r, &spec, restoreBodyLimit) {
		return
	}
	inst, err := s.CreateInstance(spec)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errTooMany) {
			code = http.StatusServiceUnavailable
		}
		apiError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, inst.Status())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instance(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, inst.Status())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	inst, shardIdx, ok := s.reg.Remove(id)
	if !ok {
		apiError(w, http.StatusNotFound, "no instance %q", id)
		return
	}
	s.reg.shards[shardIdx].publish("deleted", id, "")
	inst.publishLifecycle("deleted", "")
	inst.Stop()
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (s *Server) handleSetLoad(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instance(w, r)
	if !ok {
		return
	}
	var body struct {
		Load float64 `json:"load"`
	}
	if !decodeBody(w, r, &body) {
		return
	}
	if body.Load < 0 || body.Load > 1 {
		apiError(w, http.StatusBadRequest, "load %v outside [0, 1]", body.Load)
		return
	}
	if !doErr(w, inst.SetLoad(body.Load)) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"load": body.Load})
}

func (s *Server) handleSetSLO(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instance(w, r)
	if !ok {
		return
	}
	var body struct {
		Scale float64 `json:"scale"`
	}
	if !decodeBody(w, r, &body) {
		return
	}
	if body.Scale <= 0 {
		apiError(w, http.StatusBadRequest, "scale %v must be positive", body.Scale)
		return
	}
	slo, err := inst.SetSLOScale(body.Scale)
	if !doErr(w, err) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{
		"slo_scale": body.Scale,
		"slo_ms":    1e3 * slo.Seconds(),
	})
}

func (s *Server) handleDegrade(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instance(w, r)
	if !ok {
		return
	}
	var body struct {
		Factor float64 `json:"factor"`
	}
	if !decodeBody(w, r, &body) {
		return
	}
	if body.Factor < 0 {
		apiError(w, http.StatusBadRequest, "factor %v must not be negative", body.Factor)
		return
	}
	if !doErr(w, inst.SetDegrade(body.Factor)) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"factor": body.Factor})
}

func (s *Server) handleAttachBE(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instance(w, r)
	if !ok {
		return
	}
	var att BEAttachment
	if !decodeBody(w, r, &att) {
		return
	}
	if err := checkBEName(att.Workload); err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !doErr(w, inst.AttachBE(att)) {
		return
	}
	writeJSON(w, http.StatusCreated, inst.Status())
}

func (s *Server) handleDetachBE(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instance(w, r)
	if !ok {
		return
	}
	name := r.PathValue("workload")
	n, err := inst.DetachBE(name)
	if !doErr(w, err) {
		return
	}
	if n == 0 {
		apiError(w, http.StatusNotFound, "no BE task running workload %q", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": n, "workload": name})
}

func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instance(w, r)
	if !ok {
		return
	}
	var spec ScenarioSpec
	if !decodeBody(w, r, &spec) {
		return
	}
	sc, err := spec.Build()
	if err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !doErr(w, inst.InstallScenario(sc, &spec)) {
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"scenario":   sc.Name,
		"duration_s": sc.Duration.Seconds(),
		"events":     len(sc.Events),
	})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instance(w, r)
	if !ok {
		return
	}
	cp, err := inst.Checkpoint()
	if !doErr(w, err) {
		return
	}
	writeJSON(w, http.StatusOK, cp)
}

func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instance(w, r)
	if !ok {
		return
	}
	st, enabled, err := inst.SLOStatus()
	if !doErr(w, err) {
		return
	}
	if !enabled {
		apiError(w, http.StatusNotFound, "instance %q runs without the error-budget engine", inst.ID())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instance(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"spans": inst.TraceSpans()})
}

func (s *Server) handleInstanceHealth(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instance(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, inst.Health())
}

func (s *Server) handleFaultInject(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instance(w, r)
	if !ok {
		return
	}
	var req FaultRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := req.check(); err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Faults that kill BE tasks must go through the fleet scheduler's
	// bookkeeping first, so the affected jobs evict (charging their retry
	// budget) instead of lingering as running against dead tasks.
	killed := 0
	if d := s.schedFor(inst); d != nil {
		switch req.Kind {
		case fault.LeafCrash.String():
			killed = d.killJobsOn(inst, "", "killed by injected fault")
		case fault.BEKill.String():
			killed = d.killJobsOn(inst, req.Workload, "killed by injected fault")
		}
	}
	if !doErr(w, inst.InjectFault(req)) {
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"kind": req.Kind, "jobs_killed": killed})
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instance(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		apiError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	sub := inst.Subscribe(256)
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": stream %s\n\n", inst.ID())
	fl.Flush()

	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case msg, open := <-sub.Ch():
			if !open {
				// Instance stopped: a final comment lets clients
				// distinguish shutdown from a broken connection.
				fmt.Fprint(w, ": stream closed\n\n")
				fl.Flush()
				return
			}
			fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", msg.Event, msg.ID, msg.Data)
			fl.Flush()
		}
	}
}

// handleShardStream serves one shard's lifecycle SSE feed: instance
// creations, deletions and migrations in and out of the shard.
func (s *Server) handleShardStream(w http.ResponseWriter, r *http.Request) {
	idx, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil {
		apiError(w, http.StatusNotFound, "no shard %q", r.PathValue("shard"))
		return
	}
	hub, ok := s.reg.ShardHub(idx)
	if !ok {
		apiError(w, http.StatusNotFound, "no shard %d (server has %d)", idx, s.reg.ShardCount())
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		apiError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	sub := hub.Subscribe(256)
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": shard %d stream\n\n", idx)
	fl.Flush()

	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case msg, open := <-sub.Ch():
			if !open {
				fmt.Fprint(w, ": stream closed\n\n")
				fl.Flush()
				return
			}
			fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", msg.Event, msg.ID, msg.Data)
			fl.Flush()
		}
	}
}
