package serve

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"heracles/internal/sched"
)

// injectRetry keeps re-submitting a fault until the instance accepts it —
// injections race with crash/restart windows, during which mutations fail
// fast with ErrCrashed. Between attempts it waits on the instance's
// change notification, grabbed before each attempt so a restart landing
// mid-attempt still wakes the retry.
func injectRetry(t *testing.T, inst *Instance, req FaultRequest) {
	t.Helper()
	deadline := time.NewTimer(20 * time.Second)
	defer deadline.Stop()
	for {
		ch := inst.changed()
		err := inst.InjectFault(req)
		if err == nil {
			return
		}
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("inject %s on %s: %v", req.Kind, inst.ID(), err)
		}
		select {
		case <-ch:
		case <-deadline.C:
			t.Fatalf("inject %s on %s: still crashed after 20s: %v", req.Kind, inst.ID(), err)
		}
	}
}

// TestChaosSoak is the robustness acceptance test: a live control plane
// absorbs a sustained barrage of injected faults — driver panics,
// simulated leaf crashes, telemetry blackouts, slow machines — while the
// fleet scheduler keeps dispatching jobs. The server must survive, every
// crashed instance must restart from its checkpoint and keep advancing,
// and the scheduler's goodput accounting must stay consistent: no BE
// CPU-seconds lost or double-counted across all the evictions.
func TestChaosSoak(t *testing.T) {
	s := New(Config{
		Lab:              testLab,
		SchedInterval:    5 * time.Millisecond,
		SchedSeed:        7,
		RestartBackoff:   time.Millisecond,
		MaxCrashRestarts: 1000,
		CheckpointEpochs: 5,
		StableEpochs:     5,
	})
	t.Cleanup(s.Close)

	var insts []*Instance
	for i := 0; i < 2; i++ {
		inst, err := s.CreateInstance(InstanceSpec{Speed: SpeedMax, BEs: []BEAttachment{{Workload: "brain"}}})
		if err != nil {
			t.Fatalf("create instance %d: %v", i, err)
		}
		insts = append(insts, inst)
	}

	// Jobs big enough that they cannot finish during the soak — at
	// SpeedMax a small job completes in milliseconds of wall time, and a
	// kill can only evict a job that is still running. Large retry
	// budgets keep them alive through repeated kills.
	retries := 1000
	for i := 0; i < 6; i++ {
		s.scheds[0].Submit(JobSubmission{Workload: "streetview", WorkS: 1e9, Retries: &retries})
	}

	// 24 faults >= the 20 the acceptance criterion demands; each block of
	// four kinds alternates target instances so both crash repeatedly.
	const rounds = 24
	for k := 0; k < rounds; k++ {
		inst := insts[(k/4)%len(insts)]
		switch k % 4 {
		case 0:
			injectRetry(t, inst, FaultRequest{Kind: FaultDriverPanic})
		case 1:
			injectRetry(t, inst, FaultRequest{Kind: "telemetry-blackout", DurationS: 0.5})
		case 2:
			// Mirror the HTTP handler: evict fleet jobs through the
			// scheduler before the simulated crash destroys their tasks.
			s.scheds[0].killJobsOn(inst, "", "killed by injected fault")
			injectRetry(t, inst, FaultRequest{Kind: "leaf-crash", DurationS: 0.5})
		case 3:
			injectRetry(t, inst, FaultRequest{Kind: "slow-machine", DurationS: 0.5, Factor: 1.5})
		}
		time.Sleep(3 * time.Millisecond)
	}

	// Every instance recovers: running, out of quarantine, having
	// restarted from checkpoint at least once (each took >= 3 panics).
	for _, inst := range insts {
		inst := inst
		awaitInstance(t, inst, "recovery", func() bool {
			st, h := inst.Status(), inst.Health()
			return st.State == StateRunning && h.State != HealthQuarantined && h.Restarts >= 1
		})
		h := inst.Health()
		if h.Crashes < 3 {
			t.Errorf("instance %s recorded %d crashes, want >= 3 (one per driver-panic block)", inst.ID(), h.Crashes)
		}
		if h.FaultsInjected < 9 {
			t.Errorf("instance %s counted %d faults, want >= 9 (12 rounds targeted it)", inst.ID(), h.FaultsInjected)
		}
		// The restarted simulation keeps advancing.
		e0 := inst.Status().Epoch
		awaitInstance(t, inst, "advancing after restart", func() bool {
			return inst.Status().Epoch > e0
		})
	}

	// A couple of small jobs complete on the recovered fleet so the
	// good-CPU side of the conservation check has something to count.
	var smallIDs []int
	for i := 0; i < 2; i++ {
		js := s.scheds[0].Submit(JobSubmission{Workload: "brain", WorkS: 5, Retries: &retries})
		smallIDs = append(smallIDs, js.ID)
	}
	awaitTicks(t, s.scheds[0], "small jobs completing on the recovered fleet", func(int64) bool {
		for _, id := range smallIDs {
			j, ok := s.scheds[0].Job(id)
			if !ok || j.State != sched.JobCompleted.String() {
				return false
			}
		}
		return true
	})

	// Goodput conservation: the scheduler's global tallies must equal the
	// per-job sums — CPU-seconds neither vanish nor double-count across
	// all the crash evictions and fault kills.
	st := s.scheds[0].Status()
	var good, wasted float64
	for _, j := range s.scheds[0].Jobs() {
		if j.State == sched.JobCompleted.String() {
			good += j.CPUSec
		}
		wasted += j.WastedS
	}
	if math.Abs(st.GoodCPUSec-good) > 1e-6 {
		t.Errorf("goodput tally %v != per-job completed sum %v", st.GoodCPUSec, good)
	}
	if math.Abs(st.WastedCPUSec-wasted) > 1e-6 {
		t.Errorf("wasted tally %v != per-job wasted sum %v", st.WastedCPUSec, wasted)
	}
	if st.Evictions == 0 {
		t.Error("chaos run evicted no jobs; the kills exercised nothing")
	}
	if st.TickPanics != 0 {
		t.Errorf("dispatch loop recovered %d tick panics (last: %s); ticks should survive crashes without panicking",
			st.TickPanics, st.LastTickPanic)
	}

	// The control plane as a whole still serves.
	if got := len(s.Registry().Statuses()); got != 2 {
		t.Fatalf("registry lists %d instances after the soak, want 2", got)
	}
}

// TestDriverPanicRestartsFromCheckpoint pins the single-crash path: the
// supervisor recovers the panic, restarts from the last checkpoint (not
// epoch zero), publishes the lifecycle transitions, and the health state
// walks degraded -> healthy after the stability window.
func TestDriverPanicRestartsFromCheckpoint(t *testing.T) {
	s := New(Config{
		Lab:              testLab,
		RestartBackoff:   time.Millisecond,
		CheckpointEpochs: 5,
		StableEpochs:     10,
	})
	t.Cleanup(s.Close)
	inst, err := s.CreateInstance(InstanceSpec{Speed: SpeedMax})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	// At SpeedMax the per-epoch telemetry floods any subscriber buffer
	// within milliseconds, so the lifecycle transitions must be drained
	// continuously or the hub drops them.
	sub := inst.Subscribe(4096)
	defer sub.Close()
	lifecycle := make(chan string, 16)
	go func() {
		for m := range sub.Ch() {
			if m.Event != "lifecycle" {
				continue
			}
			var lu LifecycleUpdate
			if json.Unmarshal(m.Data, &lu) != nil {
				continue
			}
			if lu.State == StateCrashed || strings.HasPrefix(lu.Detail, "restarted from checkpoint") {
				lifecycle <- lu.State
			}
		}
	}()

	// Let it advance past a few checkpoint refreshes, then crash it.
	awaitInstance(t, inst, "warmup epochs", func() bool { return inst.Status().Epoch >= 12 })
	injectRetry(t, inst, FaultRequest{Kind: FaultDriverPanic})

	awaitInstance(t, inst, "restart", func() bool { return inst.Health().Restarts == 1 })
	h := inst.Health()
	// At SpeedMax the stability window may already have elapsed and reset
	// the consecutive-crash counter, so only the cumulative count is
	// asserted here.
	if h.Crashes != 1 {
		t.Fatalf("health after crash = %+v, want exactly 1 crash", h)
	}
	if !strings.Contains(h.LastError, "injected driver panic") {
		t.Fatalf("health last_error = %q, want the panic message", h.LastError)
	}

	// Restarted from a checkpoint, not from scratch: the resumed epoch is
	// at least the last refresh cadence below the crash epoch.
	if ep := inst.Status().Epoch; ep == 0 {
		t.Fatal("restart resumed at epoch 0; the checkpoint was not used")
	}

	// Degraded now, healthy after the stability window.
	awaitInstance(t, inst, "healthy after stability window", func() bool {
		h := inst.Health()
		return h.State == HealthHealthy && h.ConsecutiveCrashes == 0
	})

	// The stream saw the crash and the restore, in order.
	var events []string
	deadline := time.After(5 * time.Second)
	for len(events) < 2 {
		select {
		case st := <-lifecycle:
			events = append(events, st)
		case <-deadline:
			t.Fatalf("lifecycle events seen before timeout: %v (want crashed then restored)", events)
		}
	}
	if events[0] != StateCrashed {
		t.Fatalf("lifecycle order = %v, want the crash first", events)
	}
}

// TestQuarantineAfterRepeatedCrashes opens the circuit breaker: with
// MaxCrashRestarts 1 and an unreachable stability window, the second
// crash quarantines the instance; mutations fail with ErrQuarantined
// while status and health stay readable.
func TestQuarantineAfterRepeatedCrashes(t *testing.T) {
	s := New(Config{
		Lab:              testLab,
		RestartBackoff:   time.Millisecond,
		MaxCrashRestarts: 1,
		StableEpochs:     1 << 30,
	})
	t.Cleanup(s.Close)
	inst, err := s.CreateInstance(InstanceSpec{Speed: SpeedMax})
	if err != nil {
		t.Fatalf("create: %v", err)
	}

	injectRetry(t, inst, FaultRequest{Kind: FaultDriverPanic})
	awaitInstance(t, inst, "first restart", func() bool { return inst.Health().Restarts == 1 })
	injectRetry(t, inst, FaultRequest{Kind: FaultDriverPanic})
	awaitInstance(t, inst, "quarantine", func() bool { return inst.Health().State == HealthQuarantined })

	if st := inst.Status(); st.State != StateQuarantined {
		t.Fatalf("status state = %q, want %q", st.State, StateQuarantined)
	}
	if err := inst.Do(func() error { return nil }); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("Do on quarantined instance = %v, want ErrQuarantined", err)
	}
	if err := inst.InjectFault(FaultRequest{Kind: "telemetry-blackout"}); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("InjectFault on quarantined instance = %v, want ErrQuarantined", err)
	}
	h := inst.Health()
	if h.Crashes != 2 || h.Restarts != 1 {
		t.Fatalf("health = %+v, want 2 crashes and 1 restart", h)
	}
}

// TestFaultAndHealthRoutes exercises the HTTP surface: health reporting,
// fault injection (valid, invalid, defaulted), and the request body
// limit on mutating routes.
func TestFaultAndHealthRoutes(t *testing.T) {
	s := New(Config{Lab: testLab})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	client := ts.Client()

	body := doReq(t, client, "POST", ts.URL+"/api/v1/instances",
		jsonBody(t, InstanceSpec{Speed: SpeedMax}), 201)
	var created Status
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatalf("create response: %v; body %s", err, body)
	}
	id := created.ID

	hb := doReq(t, client, "GET", ts.URL+"/api/v1/instances/"+id+"/health", nil, 200)
	if !strings.Contains(string(hb), `"state": "healthy"`) {
		t.Fatalf("health body = %s, want healthy state", hb)
	}
	doReq(t, client, "GET", ts.URL+"/api/v1/instances/nosuch/health", nil, 404)

	fb := doReq(t, client, "POST", ts.URL+"/api/v1/instances/"+id+"/faults",
		jsonBody(t, FaultRequest{Kind: "telemetry-blackout", DurationS: 1}), 202)
	if !strings.Contains(string(fb), `"kind": "telemetry-blackout"`) {
		t.Fatalf("fault response = %s", fb)
	}
	doReq(t, client, "POST", ts.URL+"/api/v1/instances/"+id+"/faults",
		jsonBody(t, FaultRequest{Kind: "meteor-strike"}), 400)
	doReq(t, client, "POST", ts.URL+"/api/v1/instances/"+id+"/faults",
		jsonBody(t, FaultRequest{Kind: "slow-machine", Factor: 0.5}), 400)

	// The injected fault shows up in the health counters.
	live, ok := s.Registry().Get(id)
	if !ok {
		t.Fatalf("instance %s not in registry", id)
	}
	awaitInstance(t, live, "fault counted in health", func() bool {
		return live.Health().FaultsInjected >= 1
	})
	hb = doReq(t, client, "GET", ts.URL+"/api/v1/instances/"+id+"/health", nil, 200)
	if !strings.Contains(string(hb), `"faults_injected": 1`) {
		t.Fatalf("health body = %s, want faults_injected 1", hb)
	}

	// Oversized mutating bodies are rejected with 413 before decoding.
	huge := strings.NewReader(`{"workload":"` + strings.Repeat("x", defaultBodyLimit+1024) + `"}`)
	req, err := http.NewRequest("POST", ts.URL+"/api/v1/jobs", huge)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("oversized request: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d, want 413", resp.StatusCode)
	}
}
