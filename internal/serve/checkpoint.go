package serve

import (
	"fmt"
	"time"

	"heracles/internal/engine"
	"heracles/internal/workload"
)

// InstanceCheckpoint is the wire form of one instance's full simulation
// state: the engine checkpoint (machine, controller, scenario cursor,
// epoch index) plus the instance-level metadata needed to rebuild it —
// the LC workload and hardware generation to resolve calibrations
// against, and the active scenario's JSON spec so the restoring side can
// reconstruct the load shape the engine checkpoint only references by
// name. POST /api/v1/instances/{id}/checkpoint produces one; passing it
// as InstanceSpec.Restore on create consumes it, on the same server
// (pause/fast-forward) or a different one (migration).
//
// Tasks dispatched by the fleet job scheduler are captured as plain
// machine state and indexed by FleetTasks; a restore prunes them. Their
// jobs stay with the origin server's scheduler — which evicts and
// requeues them when the origin instance crashes or disappears — so
// keeping the tasks alive would silently double-run the same work.
type InstanceCheckpoint struct {
	Version   int           `json:"version"`
	Name      string        `json:"name,omitempty"`
	LC        string        `json:"lc"`
	Compact   bool          `json:"compact,omitempty"`
	Speed     float64       `json:"speed,omitempty"`
	MaxEpochs int           `json:"max_epochs,omitempty"`
	Scenario  *ScenarioSpec `json:"scenario,omitempty"`

	// FleetTasks indexes the machine's BE task list at snapshot time,
	// marking tasks owned by the fleet job scheduler.
	FleetTasks []int `json:"fleet_tasks,omitempty"`

	Engine *engine.Checkpoint `json:"engine"`
}

// Checkpoint snapshots the instance between epochs — the mailbox
// serialises it with the simulation, so the snapshot is a consistent
// epoch boundary. The instance keeps running; pause it by restoring the
// checkpoint into a fresh instance and deleting this one.
func (i *Instance) Checkpoint() (*InstanceCheckpoint, error) {
	var cp *InstanceCheckpoint
	err := i.Do(func() error {
		cp = i.buildCheckpoint()
		return nil
	})
	return cp, err
}

// buildCheckpoint assembles the checkpoint; stepMu must be held (the
// supervisor also calls it directly, on its restart-checkpoint cadence).
func (i *Instance) buildCheckpoint() *InstanceCheckpoint {
	start := time.Now()
	defer func() { checkpointHist.Observe(time.Since(start)) }()
	var spec *ScenarioSpec
	if i.scenarioSpec != nil {
		s := *i.scenarioSpec
		spec = &s
	}
	cp := &InstanceCheckpoint{
		Version:   engine.CheckpointVersion,
		Name:      i.name,
		LC:        i.lcName,
		Compact:   i.compact,
		Speed:     i.speed,
		MaxEpochs: int(i.maxEpochs),
		Scenario:  spec,
		Engine:    i.eng.Snapshot(),
	}
	for idx, be := range i.m.BEs() {
		if i.eng.OwnedBE(be) {
			cp.FleetTasks = append(cp.FleetTasks, idx)
		}
	}
	return cp
}

// refreshRestartCheckpoint re-snapshots the instance into the
// supervisor's retained restart checkpoint, encoding straight into the
// previous generation's buffer so the steady-state refresh reuses one
// allocation. On an encode failure the previous good checkpoint is kept
// — a stale restart point beats none. stepMu must be held.
func (i *Instance) refreshRestartCheckpoint() {
	data, err := AppendCheckpointFileBinary(i.lastCP[:0], i.buildCheckpoint())
	if err == nil {
		i.lastCP = data
	}
}

// validateCheckpoint rejects a restore request whose checkpoint is
// structurally unusable before any simulation state is built: version
// mismatches, missing engine state, unknown workload names (which would
// otherwise panic inside the calibration catalogue), or a scenario
// recorded in the engine without its JSON spec alongside.
func validateCheckpoint(cp *InstanceCheckpoint) error {
	if cp.Version != engine.CheckpointVersion {
		return fmt.Errorf("checkpoint version %d, this server reads version %d", cp.Version, engine.CheckpointVersion)
	}
	if cp.Engine == nil {
		return fmt.Errorf("checkpoint missing engine state")
	}
	if len(cp.Engine.Machines) != 1 {
		return fmt.Errorf("instance checkpoint carries %d machines, want 1", len(cp.Engine.Machines))
	}
	if _, ok := workload.LCByName(cp.LC); !ok {
		return fmt.Errorf("unknown LC workload %q", cp.LC)
	}
	m := cp.Engine.Machines[0]
	if m.LC == nil {
		return fmt.Errorf("checkpoint machine has no LC task")
	}
	if m.LC.Workload != cp.LC {
		return fmt.Errorf("checkpoint LC %q does not match machine LC %q", cp.LC, m.LC.Workload)
	}
	for _, be := range m.BEs {
		if err := checkBEName(be.Workload); err != nil {
			return err
		}
	}
	for _, idx := range cp.FleetTasks {
		if idx < 0 || idx >= len(m.BEs) {
			return fmt.Errorf("checkpoint fleet task index %d outside the machine's %d BE tasks", idx, len(m.BEs))
		}
	}
	if cp.Engine.Sched != nil {
		for _, j := range cp.Engine.Sched.Jobs {
			if err := checkBEName(j.Spec.Workload); err != nil {
				return err
			}
		}
	}
	if cp.Engine.Scenario != nil && cp.Scenario == nil {
		return fmt.Errorf("checkpoint has an active scenario (%q) but no scenario spec to rebuild it", cp.Engine.Scenario.Name)
	}
	return nil
}
