package serve

import (
	"bytes"
	"strings"
	"testing"

	"heracles/internal/engine"
	"heracles/internal/experiment"
)

// fullCkpt builds a checkpoint with every optional section populated —
// a real engine snapshot (telemetry ring, controller, scenario cursor),
// a scenario spec — so the binary envelope tests cover the whole payload
// surface, not just the scalar header. The migration spec's flash crowd
// and BE arrive/depart events give the state some texture.
func fullCkpt(t *testing.T) *InstanceCheckpoint {
	t.Helper()
	srv := New(Config{Lab: experiment.DefaultLab()})
	defer srv.Close()
	inst, err := srv.CreateInstance(migrationSpec(SpeedMax))
	if err != nil {
		t.Fatal(err)
	}
	awaitInstance(t, inst, "run complete", func() bool {
		return inst.Status().State == StateDone
	})
	cp, err := inst.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// TestBinaryCheckpointFileRoundTrip pins the binary envelope against the
// JSON one: both must decode back to the same checkpoint value (compared
// through the JSON payload encoding), and DecodeCheckpointFile must
// auto-detect each format from its bytes.
func TestBinaryCheckpointFileRoundTrip(t *testing.T) {
	cp := fullCkpt(t)

	bin, err := EncodeCheckpointFileBinary(cp)
	if err != nil {
		t.Fatalf("encode binary: %v", err)
	}
	if !IsBinaryCheckpointFile(bin) {
		t.Fatal("binary envelope not detected by its magic")
	}
	if again, _ := EncodeCheckpointFileBinary(cp); !bytes.Equal(bin, again) {
		t.Fatal("binary envelope encoding is not deterministic")
	}
	jsn, err := EncodeCheckpointFile(cp)
	if err != nil {
		t.Fatalf("encode json: %v", err)
	}
	if IsBinaryCheckpointFile(jsn) {
		t.Fatal("JSON envelope misdetected as binary")
	}

	fromBin, err := DecodeCheckpointFile(bin)
	if err != nil {
		t.Fatalf("decode binary: %v", err)
	}
	fromJSON, err := DecodeCheckpointFile(jsn)
	if err != nil {
		t.Fatalf("decode json: %v", err)
	}
	a, err := EncodeCheckpointFile(fromBin)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeCheckpointFile(fromJSON)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("binary and JSON envelopes decoded to different checkpoint values")
	}
	if fromBin.Engine == nil || fromBin.Engine.Epoch != cp.Engine.Epoch {
		t.Fatalf("binary decode engine epoch = %+v, want %d", fromBin.Engine, cp.Engine.Epoch)
	}
}

// TestBinaryCheckpointFileRejectsCorruption covers the binary envelope's
// refusal surface: bit flips, truncation at every depth, version skew —
// always an error, never a panic or a silently wrong checkpoint.
func TestBinaryCheckpointFileRejectsCorruption(t *testing.T) {
	cp := testCkpt(7)
	cp.Engine = &engine.Checkpoint{Version: engine.CheckpointVersion, Epoch: 3}
	data, err := EncodeCheckpointFileBinary(cp)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}

	// Any single payload bit flip must trip the CRC.
	for _, off := range []int{binaryFileHeaderLen, len(data) / 2, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0xff
		if _, err := DecodeCheckpointFile(bad); err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("flip at %d: decode = %v, want checksum mismatch", off, err)
		}
	}

	// Envelope version skew is refused by name.
	skew := append([]byte(nil), data...)
	skew[4], skew[5] = 0xff, 0xff
	if _, err := DecodeCheckpointFile(skew); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version skew decode = %v, want version error", err)
	}

	// Truncation anywhere errors (prefixes shorter than the header
	// included).
	for cut := 4; cut < len(data); cut += 5 {
		if _, err := DecodeCheckpointFile(data[:cut]); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", cut, len(data))
		}
	}
}

// TestBinaryCheckpointFileRotationAndFallback runs the write/rotate/
// fallback protocol through the binary writer: same guarantees as the
// JSON path, on .ckpt files.
func TestBinaryCheckpointFileRotationAndFallback(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/i1.ckpt"

	if err := WriteCheckpointFileBinary(path, testCkpt(1)); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if err := WriteCheckpointFileBinary(path, testCkpt(2)); err != nil {
		t.Fatalf("write 2: %v", err)
	}
	cp, src, err := ReadCheckpointFallback(path)
	if err != nil || src != path || cp.MaxEpochs != 2 {
		t.Fatalf("fallback read = %+v from %q (%v), want gen 2 from primary", cp, src, err)
	}
	prev, err := ReadCheckpointFile(path + ".1")
	if err != nil || prev.MaxEpochs != 1 {
		t.Fatalf("rotated read = %+v (%v), want gen 1", prev, err)
	}
}
