package serve

import (
	"fmt"
	"time"

	"heracles/internal/scenario"
	"heracles/internal/trace"
	"heracles/internal/workload"
)

// ScenarioSpec is the JSON encoding of a declarative scenario: a composed
// load shape plus a schedule of timed events, evaluated against one live
// instance. Durations travel as seconds so payloads stay unit-explicit.
type ScenarioSpec struct {
	Name      string      `json:"name,omitempty"`
	DurationS float64     `json:"duration_s"`
	Load      *ShapeSpec  `json:"load"`
	Events    []EventSpec `json:"events,omitempty"`
}

// ShapeSpec is the JSON encoding of one load shape. Kind selects the
// shape; the other fields parameterise it:
//
//	flat       — Value
//	steps      — Levels (ascending AtS)
//	ramp       — From, To, StartS, EndS
//	diurnal    — MinLoad, MaxLoad, Seed (period = scenario duration)
//	flashcrowd — StartS, RiseS, HoldS, FallS, Amp (additive; use in a sum)
//	sum        — Terms, added pointwise
//
// An optional Clamp bounds the composed shape; the engine's epoch loop
// additionally clamps offered load to [0, 1].
type ShapeSpec struct {
	Kind string `json:"kind"`

	Value float64 `json:"value,omitempty"` // flat

	Levels []LevelSpec `json:"levels,omitempty"` // steps

	From   float64 `json:"from,omitempty"` // ramp
	To     float64 `json:"to,omitempty"`
	StartS float64 `json:"start_s,omitempty"` // ramp, flashcrowd
	EndS   float64 `json:"end_s,omitempty"`

	MinLoad float64 `json:"min_load,omitempty"` // diurnal
	MaxLoad float64 `json:"max_load,omitempty"`
	Seed    uint64  `json:"seed,omitempty"`

	RiseS float64 `json:"rise_s,omitempty"` // flashcrowd
	HoldS float64 `json:"hold_s,omitempty"`
	FallS float64 `json:"fall_s,omitempty"`
	Amp   float64 `json:"amp,omitempty"`

	Terms []ShapeSpec `json:"terms,omitempty"` // sum

	Clamp *ClampSpec `json:"clamp,omitempty"`
}

// LevelSpec is one plateau of a steps shape.
type LevelSpec struct {
	AtS  float64 `json:"at_s"`
	Load float64 `json:"load"`
}

// ClampSpec bounds a shape to [Lo, Hi].
type ClampSpec struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// EventSpec is the JSON encoding of one timed action. Kind names match
// scenario.EventKind strings: "be-arrive", "be-depart", "leaf-degrade",
// "slo-scale", "load-scale". Events always target the instance's single
// machine, so no leaf index travels over the wire.
type EventSpec struct {
	AtS      float64 `json:"at_s"`
	Kind     string  `json:"kind"`
	Workload string  `json:"workload,omitempty"`
	Factor   float64 `json:"factor,omitempty"`
}

func seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// buildShape converts a ShapeSpec into a scenario.Shape. dur is the
// scenario horizon, which parameterises the diurnal generator.
func (sp *ShapeSpec) buildShape(dur time.Duration) (scenario.Shape, error) {
	var shape scenario.Shape
	switch sp.Kind {
	case "flat":
		shape = scenario.Flat(sp.Value)
	case "steps":
		if len(sp.Levels) == 0 {
			return nil, fmt.Errorf("steps shape needs at least one level")
		}
		st := make(scenario.Steps, len(sp.Levels))
		for i, lv := range sp.Levels {
			st[i] = scenario.Level{At: seconds(lv.AtS), Load: lv.Load}
			if i > 0 && st[i].At < st[i-1].At {
				return nil, fmt.Errorf("steps levels must be in ascending time order")
			}
		}
		shape = st
	case "ramp":
		shape = scenario.Ramp{
			From: sp.From, To: sp.To,
			Start: seconds(sp.StartS), End: seconds(sp.EndS),
		}
	case "diurnal":
		shape = scenario.Diurnal(trace.DiurnalConfig{
			Duration: dur, Step: time.Second,
			MinLoad: sp.MinLoad, MaxLoad: sp.MaxLoad, Seed: sp.Seed,
		})
	case "flashcrowd":
		shape = scenario.FlashCrowd{
			Start: seconds(sp.StartS),
			Rise:  seconds(sp.RiseS), Hold: seconds(sp.HoldS), Fall: seconds(sp.FallS),
			Amp: sp.Amp,
		}
	case "sum":
		if len(sp.Terms) == 0 {
			return nil, fmt.Errorf("sum shape needs at least one term")
		}
		terms := make([]scenario.Shape, len(sp.Terms))
		for i := range sp.Terms {
			t, err := sp.Terms[i].buildShape(dur)
			if err != nil {
				return nil, fmt.Errorf("sum term %d: %w", i, err)
			}
			terms[i] = t
		}
		shape = scenario.Sum(terms...)
	default:
		return nil, fmt.Errorf("unknown shape kind %q (want flat, steps, ramp, diurnal, flashcrowd or sum)", sp.Kind)
	}
	if sp.Clamp != nil {
		if sp.Clamp.Hi < sp.Clamp.Lo {
			return nil, fmt.Errorf("clamp hi %v below lo %v", sp.Clamp.Hi, sp.Clamp.Lo)
		}
		shape = scenario.Clamp(shape, sp.Clamp.Lo, sp.Clamp.Hi)
	}
	return shape, nil
}

// eventKindByName maps wire names to scenario event kinds.
func eventKindByName(name string) (scenario.EventKind, bool) {
	for _, k := range []scenario.EventKind{
		scenario.EventBEArrive, scenario.EventBEDepart,
		scenario.EventLeafDegrade, scenario.EventSLOScale,
		scenario.EventLoadScale,
	} {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// Build converts the spec into a validated scenario. BE workload names in
// arrival/departure events are checked against the workload catalogue up
// front, so a bad request fails at install time rather than mid-run.
func (sp *ScenarioSpec) Build() (scenario.Scenario, error) {
	if sp.DurationS <= 0 {
		return scenario.Scenario{}, fmt.Errorf("duration_s must be positive")
	}
	if sp.Load == nil {
		return scenario.Scenario{}, fmt.Errorf("load shape missing")
	}
	dur := seconds(sp.DurationS)
	shape, err := sp.Load.buildShape(dur)
	if err != nil {
		return scenario.Scenario{}, fmt.Errorf("load: %w", err)
	}
	sc := scenario.Scenario{
		Name:     sp.Name,
		Duration: dur,
		Load:     shape,
	}
	for i, ev := range sp.Events {
		kind, ok := eventKindByName(ev.Kind)
		if !ok {
			return scenario.Scenario{}, fmt.Errorf("event %d: unknown kind %q", i, ev.Kind)
		}
		if kind == scenario.EventBEArrive || kind == scenario.EventBEDepart {
			if err := checkBEName(ev.Workload); err != nil {
				return scenario.Scenario{}, fmt.Errorf("event %d: %w", i, err)
			}
		}
		sc.Events = append(sc.Events, scenario.Event{
			At:       seconds(ev.AtS),
			Kind:     kind,
			Leaf:     scenario.AllLeaves,
			Workload: ev.Workload,
			Factor:   ev.Factor,
		})
	}
	if err := sc.Validate(); err != nil {
		return scenario.Scenario{}, err
	}
	return sc, nil
}

// checkBEName verifies a best-effort workload name resolves in the
// catalogue (or is the synthetic filler used by the experiments).
func checkBEName(name string) error {
	if name == "filler" {
		return nil
	}
	if _, ok := workload.BEByName(name); !ok {
		return fmt.Errorf("unknown BE workload %q", name)
	}
	return nil
}
