package serve

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"heracles/internal/slo"
)

func TestHistogramBucketsAndRender(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Nanosecond) // <= 1µs: bucket 0
	h.Observe(1 * time.Microsecond)  // boundary: still bucket 0
	h.Observe(2 * time.Microsecond)  // bucket 1
	h.Observe(3 * time.Microsecond)  // bucket 2 (le 4µs)
	h.Observe(-time.Second)          // clamped to 0: bucket 0
	h.Observe(time.Hour)             // beyond 2^23µs: +Inf
	if got := h.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	var b strings.Builder
	h.Write(&b, "x_seconds", "test family.")
	out := b.String()
	for _, want := range []string{
		"# TYPE x_seconds histogram",
		`x_seconds_bucket{le="1e-06"} 3`,
		`x_seconds_bucket{le="2e-06"} 4`,
		`x_seconds_bucket{le="4e-06"} 5`,
		`x_seconds_bucket{le="+Inf"} 6`,
		"x_seconds_count 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered histogram missing %q:\n%s", want, out)
		}
	}
}

func TestSortFamiliesOrdersByName(t *testing.T) {
	in := "# HELP b_total b.\n# TYPE b_total counter\nb_total 1\n" +
		"# HELP a_gauge a.\n# TYPE a_gauge gauge\na_gauge{x=\"1\"} 2\n"
	got := SortFamilies(in)
	want := "# HELP a_gauge a.\n# TYPE a_gauge gauge\na_gauge{x=\"1\"} 2\n" +
		"# HELP b_total b.\n# TYPE b_total counter\nb_total 1\n"
	if got != want {
		t.Fatalf("SortFamilies:\n%s\nwant:\n%s", got, want)
	}
}

// familyOrder extracts the family names of an exposition in emission
// order.
func familyOrder(text string) []string {
	var names []string
	for _, line := range strings.Split(text, "\n") {
		if f := strings.Fields(line); len(f) >= 3 && f[1] == "HELP" {
			names = append(names, f[2])
		}
	}
	return names
}

// TestE2ESLOBudgetTraceAndStream drives one instance into a fast-burn
// page and checks every SLO surface: the slo SSE event with its alert
// transitions, GET /slo, GET /trace, the heracles_slo_* metric families
// and the sorted family order of the /metrics exposition.
func TestE2ESLOBudgetTraceAndStream(t *testing.T) {
	s := New(Config{Lab: testLab})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	body := doReq(t, client, "POST", ts.URL+"/api/v1/instances",
		jsonBody(t, InstanceSpec{LC: "websearch", Load: 0.8, Speed: 2000}), 201)
	var created Status
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	id := created.ID
	if created.SLO == nil || created.SLO.Objective != slo.DefaultObjective {
		t.Fatalf("created status carries no SLO snapshot: %+v", created.SLO)
	}

	// The budget engine is always attached; a fresh instance reports a
	// clean budget.
	body = doReq(t, client, "GET", ts.URL+"/api/v1/instances/"+id+"/slo", nil, 200)
	var st slo.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Objective != slo.DefaultObjective || st.Page || st.Ticket {
		t.Fatalf("fresh budget status = %+v", st)
	}
	doReq(t, client, "GET", ts.URL+"/api/v1/instances/nosuch/slo", nil, 404)

	// Subscribe before forcing violations so the page-fire transition
	// cannot slip past the stream.
	resp, err := client.Get(ts.URL + "/api/v1/instances/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sse := newSSEReader(resp.Body)

	// Heavy service degradation pushes the tail far past the workload SLO,
	// making every subsequent epoch a violation; the fast-burn page needs
	// the 1h window up too, so it fires once ~519 violating epochs
	// accumulate.
	doReq(t, client, "PUT", ts.URL+"/api/v1/instances/"+id+"/degrade",
		jsonBody(t, map[string]float64{"factor": 3}), 200)

	deadline := time.Now().Add(60 * time.Second)
	var up SLOUpdate
	for {
		ev, err := sse.Next()
		if err != nil {
			t.Fatalf("stream ended before an slo event: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("no slo event within the deadline")
		}
		if ev.Event != "slo" {
			continue
		}
		if err := json.Unmarshal(ev.Data, &up); err != nil {
			t.Fatalf("slo payload: %v; %s", err, ev.Data)
		}
		break
	}
	if up.Instance != id || len(up.Transitions) == 0 {
		t.Fatalf("slo event = %+v", up)
	}
	tr := up.Transitions[0]
	if tr.Alert != slo.AlertPage || !tr.Firing {
		t.Fatalf("first transition = %+v, want page fire", tr)
	}
	if !up.Status.Page || up.Status.Violations == 0 || up.Status.BudgetSpent <= 0 {
		t.Fatalf("slo event status = %+v", up.Status)
	}

	// GET /slo agrees with the stream.
	body = doReq(t, client, "GET", ts.URL+"/api/v1/instances/"+id+"/slo", nil, 200)
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Page || st.Violations == 0 || st.Burn[slo.W5m] < slo.FastBurn {
		t.Fatalf("budget status after page = %+v", st)
	}

	// The trace ring holds recent epoch spans, oldest first, bounded.
	body = doReq(t, client, "GET", ts.URL+"/api/v1/instances/"+id+"/trace", nil, 200)
	var trace struct {
		Spans []SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal(body, &trace); err != nil {
		t.Fatal(err)
	}
	if len(trace.Spans) == 0 || len(trace.Spans) > traceRingCap {
		t.Fatalf("trace returned %d spans, want 1..%d", len(trace.Spans), traceRingCap)
	}
	for i := 1; i < len(trace.Spans); i++ {
		if trace.Spans[i].Epoch != trace.Spans[i-1].Epoch+1 {
			t.Fatalf("trace spans not consecutive: %d after %d",
				trace.Spans[i].Epoch, trace.Spans[i-1].Epoch)
		}
	}
	doReq(t, client, "GET", ts.URL+"/api/v1/instances/nosuch/trace", nil, 404)

	// /metrics: SLO families present, families sorted, histograms live.
	mbody := string(doReq(t, client, "GET", ts.URL+"/metrics", nil, 200))
	for _, want := range []string{
		`heracles_slo_burn_rate{instance="` + id + `",window="5m"}`,
		`heracles_slo_alert_firing{instance="` + id + `",alert="page"} 1`,
		`heracles_slo_violations_total{instance="` + id + `"}`,
		"heracles_fleet_slo_pages_firing 1",
		"heracles_epoch_slice_duration_seconds_count",
		"heracles_mailbox_command_duration_seconds_count",
	} {
		if !strings.Contains(mbody, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	names := familyOrder(mbody)
	if len(names) < 40 {
		t.Fatalf("only %d families rendered", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Errorf("families out of order: %q before %q", names[i-1], names[i])
		}
	}

	doReq(t, client, "DELETE", ts.URL+"/api/v1/instances/"+id, nil, 200)
}
