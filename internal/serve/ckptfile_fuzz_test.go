package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzDecodeCheckpointFile hammers the checkpoint envelope decoder and
// the ReadCheckpointFallback path with arbitrary bytes: truncated,
// bit-flipped and CRC-mismatched inputs must come back as errors —
// never a panic, and never a trusted payload that fails verification.
// A valid rotated ".1" generation sits next to every fuzzed primary, so
// the fallback must always recover regardless of how mangled the
// primary is.
func FuzzDecodeCheckpointFile(f *testing.F) {
	// A genuine envelope from a live instance seeds the structure-aware
	// mutations.
	srv := New(Config{Lab: testLab})
	defer srv.Close()
	inst, err := srv.CreateInstance(InstanceSpec{Speed: SpeedMax, MaxEpochs: 3})
	if err != nil {
		f.Fatalf("create: %v", err)
	}
	awaitInstance(f, inst, "seed instance done", func() bool {
		return inst.Status().State == StateDone
	})
	cp, err := inst.Checkpoint()
	if err != nil {
		f.Fatalf("checkpoint: %v", err)
	}
	valid, err := EncodeCheckpointFile(cp)
	if err != nil {
		f.Fatalf("encode: %v", err)
	}

	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-payload
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40 // bit flip inside the payload
	f.Add(flipped)
	// Intact payload under a stale checksum header.
	f.Add(bytes.Replace(valid, []byte(`"crc32c:`), []byte(`"crc32c:0`), 1))
	// Legacy bare checkpoint, pre-envelope.
	f.Add([]byte(`{"version":1,"lc":"websearch","engine":null}`))
	f.Add([]byte(`{"envelope_version":1,"checksum":"crc32c:00000000","payload":{}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))

	// The binary envelope's failure surface: truncations, payload bit
	// flips (CRC mismatch), envelope version skew, oversized length
	// claims deep in the nested engine encoding.
	validBin, err := EncodeCheckpointFileBinary(cp)
	if err != nil {
		f.Fatalf("encode binary: %v", err)
	}
	f.Add(validBin)
	f.Add(validBin[:4])              // bare magic
	f.Add(validBin[:len(validBin)/2]) // truncated mid-payload
	binFlipped := append([]byte(nil), validBin...)
	binFlipped[len(binFlipped)/2] ^= 0x40
	f.Add(binFlipped)
	binSkew := append([]byte(nil), validBin...)
	binSkew[4], binSkew[5] = 0xff, 0xff
	f.Add(binSkew)
	// Inflate a length prefix deep in the payload; the CRC is left stale
	// too, so this doubles as a checksum-mismatch seed for mutation.
	binBomb := append([]byte(nil), validBin...)
	for i := binaryFileHeaderLen; i+4 <= len(binBomb); i++ {
		if binBomb[i] == 0 && binBomb[i+1] == 0 && binBomb[i+2] == 0 && binBomb[i+3] == 0 {
			binBomb[i], binBomb[i+1], binBomb[i+2], binBomb[i+3] = 0xff, 0xff, 0xff, 0x7f
			break
		}
	}
	f.Add(binBomb)

	dir := f.TempDir()
	prev := filepath.Join(dir, "ckpt.json.1")
	if err := os.WriteFile(prev, valid, 0o644); err != nil {
		f.Fatal(err)
	}
	primary := strings.TrimSuffix(prev, ".1")

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := DecodeCheckpointFile(data)
		if err == nil {
			// Decoded payloads may still be semantically invalid; the
			// validator must reject them with an error, not a panic.
			_ = validateCheckpoint(cp)
		} else if cp != nil {
			t.Fatalf("decode returned both a checkpoint and error %v", err)
		}

		if err := os.WriteFile(primary, data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, used, err := ReadCheckpointFallback(primary)
		if err != nil {
			t.Fatalf("fallback generation is valid, yet restore failed: %v", err)
		}
		if got == nil {
			t.Fatal("nil checkpoint without error")
		}
		if used != primary && used != prev {
			t.Fatalf("restored from unexpected path %q", used)
		}
	})
}
