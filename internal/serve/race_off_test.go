//go:build !race

package serve

// raceEnabled scales the churn and capacity tests down when the race
// detector multiplies their memory and CPU cost.
const raceEnabled = false
