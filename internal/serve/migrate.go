package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Migration (DESIGN.md §14): checkpoint/restore is the migration
// primitive. POST /api/v1/instances/{id}/migrate detaches the instance
// from the registry, evicts its fleet jobs back onto the origin
// scheduler, snapshots it between epochs, and restores the snapshot
// into a fresh instance — on another shard of this server, or on a peer
// daemon over its create API. The engine is deterministic and
// wall-clock-free, so the restored instance's telemetry is bit-identical
// to a run that never moved; epochs the origin stepped after the
// snapshot are simply re-run, identically, by the restored copy.

// MigrateRequest is the JSON body of POST /api/v1/instances/{id}/migrate:
// exactly one of Shard (in-process cross-shard migration) or Peer (the
// base URL of another heraclesd, cross-process migration) must be set.
type MigrateRequest struct {
	Shard *int   `json:"shard,omitempty"`
	Peer  string `json:"peer,omitempty"`
}

// MigrateResult reports a completed migration. To is the restored
// instance's id — freshly assigned by the target shard or peer; the
// origin id is gone.
type MigrateResult struct {
	From      string `json:"from"`
	FromShard int    `json:"from_shard"`
	To        string `json:"to"`
	ToShard   int    `json:"to_shard"`
	Peer      string `json:"peer,omitempty"`
	// Epoch is the snapshot epoch the restored instance continues from.
	Epoch uint64 `json:"epoch"`
}

// errMigrateGone: the instance left the registry between resolution and
// detach (a concurrent delete or migration won).
var errMigrateGone = errors.New("serve: instance already removed")

// peerError marks a migration failure caused by the peer daemon rather
// than this server; the handler maps it to 502 and the origin instance
// has already been reinstated, untouched.
type peerError struct{ err error }

func (e *peerError) Error() string { return e.err.Error() }
func (e *peerError) Unwrap() error { return e.err }

// migrateClient ships checkpoints to peer daemons. Restore bodies can
// reach tens of MiB, so the timeout is generous.
var migrateClient = &http.Client{Timeout: 120 * time.Second}

// detach removes the instance from the registry and evicts its fleet
// jobs back onto the origin shard's scheduler (checkpoints prune
// fleet-owned tasks, so keeping the jobs running would double-run them).
// Returns the origin shard.
func (s *Server) detach(id string) (*Instance, int, error) {
	inst, from, ok := s.reg.Remove(id)
	if !ok {
		return nil, 0, errMigrateGone
	}
	s.scheds[from].killJobsOn(inst, "", "instance migrating")
	return inst, from, nil
}

// MigrateToShard moves the instance onto another shard of this server:
// snapshot, restore into a fresh instance on the target shard's pool,
// stop the origin. In-process migration carries the instance's epoch
// hook and trace along, so an embedded daemon's mirroring survives the
// move. On any failure the origin instance is reinstated untouched.
func (s *Server) MigrateToShard(id string, target int) (*MigrateResult, error) {
	if target < 0 || target >= s.reg.ShardCount() {
		return nil, fmt.Errorf("no shard %d (server has %d)", target, s.reg.ShardCount())
	}
	start := time.Now()
	inst, from, err := s.detach(id)
	if err != nil {
		return nil, err
	}
	cp, err := inst.Checkpoint()
	if err != nil {
		s.reg.readd(inst, from)
		return nil, err
	}
	// Cross-shard moves travel through the binary wire format — what
	// restores is the serialized artifact, exactly as in a cross-process
	// migration, so the in-process fast path can never drift from the
	// on-disk one.
	wire, err := EncodeCheckpointFileBinary(cp)
	if err != nil {
		s.reg.readd(inst, from)
		return nil, fmt.Errorf("encode checkpoint: %w", err)
	}
	restored, err := DecodeCheckpointFile(wire)
	if err != nil {
		s.reg.readd(inst, from)
		return nil, fmt.Errorf("decode checkpoint: %w", err)
	}
	spec := InstanceSpec{Restore: restored, EpochHook: inst.epochHook, Trace: inst.trace}
	fresh, err := s.createInstance(spec, target, "from "+id)
	if err != nil {
		s.reg.readd(inst, from)
		return nil, err
	}
	detail := fmt.Sprintf("to %s on shard %d", fresh.ID(), target)
	s.reg.shards[from].publish("migrate-out", id, detail)
	inst.publishLifecycle("migrated", detail)
	inst.Stop()
	s.reg.noteMigration()
	migrateHist.Observe(time.Since(start))
	return &MigrateResult{
		From: id, FromShard: from,
		To: fresh.ID(), ToShard: target,
		Epoch: cp.Engine.Epoch,
	}, nil
}

// MigrateToPeer moves the instance onto another daemon: snapshot, POST
// the restore spec to the peer's create route, stop the origin on
// success. Epoch hooks and traces are in-process callbacks and do not
// cross the wire. On any failure — peer unreachable, create rejected —
// the origin instance is reinstated untouched and the error reports the
// peer's verdict.
func (s *Server) MigrateToPeer(id, peer string) (*MigrateResult, error) {
	start := time.Now()
	inst, from, err := s.detach(id)
	if err != nil {
		return nil, err
	}
	cp, err := inst.Checkpoint()
	if err != nil {
		s.reg.readd(inst, from)
		return nil, err
	}
	body, err := json.Marshal(InstanceSpec{Restore: cp})
	if err != nil {
		s.reg.readd(inst, from)
		return nil, fmt.Errorf("encode checkpoint: %w", err)
	}
	url := strings.TrimSuffix(peer, "/") + "/api/v1/instances"
	resp, err := migrateClient.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		s.reg.readd(inst, from)
		return nil, &peerError{fmt.Errorf("peer create failed: %w", err)}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		s.reg.readd(inst, from)
		return nil, &peerError{fmt.Errorf("peer refused the restore: %s: %s", resp.Status, strings.TrimSpace(string(msg)))}
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		// The peer accepted and now runs the copy; stopping the origin is
		// still the only safe continuation (two live copies would race
		// their side effects), even though the new id is unknown.
		st.ID = "unknown"
	}
	detail := fmt.Sprintf("to %s on peer %s", st.ID, peer)
	s.reg.shards[from].publish("migrate-out", id, detail)
	inst.publishLifecycle("migrated", detail)
	inst.Stop()
	s.reg.noteMigration()
	migrateHist.Observe(time.Since(start))
	return &MigrateResult{
		From: id, FromShard: from,
		To: st.ID, ToShard: st.Shard, Peer: peer,
		Epoch: cp.Engine.Epoch,
	}, nil
}

func (s *Server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instance(w, r)
	if !ok {
		return
	}
	var req MigrateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if (req.Shard == nil) == (req.Peer == "") {
		apiError(w, http.StatusBadRequest, "exactly one of shard or peer must be set")
		return
	}
	var res *MigrateResult
	var err error
	if req.Shard != nil {
		res, err = s.MigrateToShard(inst.ID(), *req.Shard)
	} else {
		res, err = s.MigrateToPeer(inst.ID(), req.Peer)
	}
	var pe *peerError
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, res)
	case errors.Is(err, errMigrateGone):
		apiError(w, http.StatusNotFound, "no instance %q", inst.ID())
	case errors.As(err, &pe):
		apiError(w, http.StatusBadGateway, "%v", err)
	default:
		doErr(w, err)
	}
}
