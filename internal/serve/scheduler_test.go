package serve

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"heracles/internal/engine"
)

// awaitInstance blocks until cond holds, waking on the instance's
// change notification instead of sleep-polling. The notification channel
// is grabbed before cond is evaluated so a change landing between the
// check and the wait cannot be missed.
func awaitInstance(t testing.TB, inst *Instance, what string, cond func() bool) {
	t.Helper()
	deadline := time.NewTimer(30 * time.Second)
	defer deadline.Stop()
	for {
		ch := inst.changed()
		if cond() {
			return
		}
		select {
		case <-ch:
		case <-deadline.C:
			t.Fatalf("timed out waiting for %s on %s", what, inst.ID())
		}
	}
}

// awaitTicks blocks until cond holds for the dispatch loop's tick count,
// waking once per fleet-scheduler tick.
func awaitTicks(t *testing.T, d *schedDriver, what string, cond func(ticks int64) bool) {
	t.Helper()
	deadline := time.NewTimer(30 * time.Second)
	defer deadline.Stop()
	for {
		n, ch := d.tickWait()
		if cond(n) {
			return
		}
		select {
		case <-ch:
		case <-deadline.C:
			t.Fatalf("timed out waiting for %s (at tick %d)", what, n)
		}
	}
}

// taskFunc adapts a closure to the scheduler's epochTask interface.
type taskFunc func() (time.Time, bool)

func (f taskFunc) runSlice() (time.Time, bool) { return f() }

// TestEpochSchedulerOrdering: same-due entries run in schedule order
// (seq is the heap tie-break), through a single driver.
func TestEpochSchedulerOrdering(t *testing.T) {
	pool := newEpochScheduler(1)
	defer pool.stop()
	ran := make(chan int, 3)
	due := time.Now().Add(-time.Millisecond)
	for k := 0; k < 3; k++ {
		k := k
		e := pool.newEntry(taskFunc(func() (time.Time, bool) {
			ran <- k
			return time.Time{}, false
		}))
		pool.schedule(e, due)
	}
	for want := 0; want < 3; want++ {
		select {
		case got := <-ran:
			if got != want {
				t.Fatalf("slice order: got task %d, want %d", got, want)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("task %d never ran", want)
		}
	}
}

// TestEpochSchedulerRemoveIsTerminal: a removed entry leaves the heap,
// and a later schedule of the same entry is a no-op — the cancellation
// that keeps deleted instances from being resurrected by an in-flight
// crash recovery.
func TestEpochSchedulerRemoveIsTerminal(t *testing.T) {
	pool := newEpochScheduler(1)
	defer pool.stop()
	e := pool.newEntry(taskFunc(func() (time.Time, bool) {
		t.Error("cancelled entry ran")
		return time.Time{}, false
	}))
	pool.schedule(e, time.Now().Add(time.Hour))
	if got := pool.depth(); got != 1 {
		t.Fatalf("depth after schedule = %d, want 1", got)
	}
	pool.remove(e)
	if got := pool.depth(); got != 0 {
		t.Fatalf("depth after remove = %d, want 0", got)
	}
	pool.remove(e) // idempotent
	pool.schedule(e, time.Now())
	if got := pool.depth(); got != 0 {
		t.Fatalf("cancelled entry re-entered the heap (depth %d)", got)
	}
}

// TestEpochSchedulerRescheduleMovesEntry: scheduling an already-queued
// entry moves it in place rather than duplicating it.
func TestEpochSchedulerRescheduleMovesEntry(t *testing.T) {
	pool := newEpochScheduler(1)
	ran := make(chan struct{}, 1)
	e := pool.newEntry(taskFunc(func() (time.Time, bool) {
		ran <- struct{}{}
		return time.Time{}, false
	}))
	pool.schedule(e, time.Now().Add(time.Hour))
	pool.schedule(e, time.Now()) // pull it forward
	select {
	case <-ran:
	case <-time.After(10 * time.Second):
		t.Fatal("rescheduled entry never ran")
	}
	pool.stop()
	st := pool.status()
	if st.QueueDepth != 0 || st.Slices != 1 {
		t.Fatalf("status after one slice = %+v, want empty queue and 1 slice", st)
	}
}

// TestEpochSchedulerStatus: the exported snapshot reports pool size,
// queue depth and head lag.
func TestEpochSchedulerStatus(t *testing.T) {
	pool := newEpochScheduler(2)
	pool.stop() // freeze the pool so queued entries stay put
	park := taskFunc(func() (time.Time, bool) { return time.Time{}, false })
	pool.schedule(pool.newEntry(park), time.Now().Add(time.Hour))
	pool.schedule(pool.newEntry(park), time.Now().Add(2*time.Hour))
	st := pool.status()
	if st.Drivers != 2 || st.QueueDepth != 2 {
		t.Fatalf("status = %+v, want 2 drivers, 2 queued", st)
	}
	if st.LagSeconds != 0 {
		t.Fatalf("future-due head reports lag %v, want 0", st.LagSeconds)
	}
	pool.schedule(pool.newEntry(park), time.Now().Add(-3*time.Second))
	if st = pool.status(); st.LagSeconds < 2.9 {
		t.Fatalf("overdue head reports lag %v, want >= ~3s", st.LagSeconds)
	}
}

// TestCadenceStretchAndTighten: an unobserved healthy paced instance
// stretches its tick (batching epochs); attaching a stream subscriber
// snaps it back to every-epoch cadence.
func TestCadenceStretchAndTighten(t *testing.T) {
	s := testServer(t)
	inst, err := s.CreateInstance(InstanceSpec{Speed: 1e7, Load: 0.3})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	stretchOf := func() int {
		var st int
		if err := inst.Do(func() error { st = inst.stretch; return nil }); err != nil {
			t.Fatalf("Do: %v", err)
		}
		return st
	}
	awaitInstance(t, inst, "cadence stretch > 1", func() bool { return stretchOf() > 1 })
	sub := inst.Subscribe(64)
	defer sub.Close()
	awaitInstance(t, inst, "cadence back to 1 under observation", func() bool { return stretchOf() == 1 })
}

// TestSchedulerTelemetryMatchesSequentialDriver pins the refactor's
// invariant: the shared scheduler's batched slices produce telemetry
// bit-identical to the pre-refactor per-goroutine driver, which stepped
// the engine exactly one epoch per tick in a dedicated loop. The
// reference below IS that old driver, reduced to its essence: a
// sequential Step loop over the same engine configuration.
func TestSchedulerTelemetryMatchesSequentialDriver(t *testing.T) {
	const epochs = 60
	spec := InstanceSpec{Load: 0.45, BEs: []BEAttachment{{Workload: "brain"}}}

	pk, err := placementByName("")
	if err != nil {
		t.Fatalf("default placement: %v", err)
	}
	cfg := engineConfig(testLab, "websearch")
	cfg.Load = spec.Load
	cfg.InitialBEs = func(int) []engine.BEAttach {
		return []engine.BEAttach{{WL: testLab.BE("brain"), Placement: pk}}
	}
	eng := engine.New(cfg)
	defer eng.Close()
	want := make([]telPoint, 0, epochs)
	for k := 0; k < epochs; k++ {
		er := eng.Step()
		want = append(want, pointOf(er.Tel[0]))
	}

	// Free-running instance: slices step freeRunBatch epochs at a time.
	s := testServer(t)
	freeInst, got := runToPark(t, s, spec, epochs)
	if len(got) != epochs {
		t.Fatalf("instance resolved %d epochs, want %d", len(got), epochs)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("epoch %d diverged from the sequential driver:\n got  %+v\n want %+v", k+1, got[k], want[k])
		}
	}

	// Paced instance with no hook and no subscriber: the cadence policy
	// stretches it, so epochs advance in multi-epoch batches. Its final
	// state must still match the free-runner's (same code path renders
	// both EpochUpdates), hence the sequential reference's.
	paced := spec
	paced.Speed = 1e7
	paced.MaxEpochs = epochs
	pacedInst, err := s.CreateInstance(paced)
	if err != nil {
		t.Fatalf("create paced: %v", err)
	}
	awaitInstance(t, pacedInst, "paced instance done", func() bool {
		return pacedInst.Status().State == StateDone
	})
	a, b := freeInst.Status().Last, pacedInst.Status().Last
	a.Instance, b.Instance = "", ""
	if a != b {
		t.Fatalf("paced final epoch diverged from free-run:\n got  %+v\n want %+v", b, a)
	}
}

// TestRegistryChurnNoLeaks churns instances through create / crash /
// migrate / delete concurrently across a 4-shard registry and asserts
// the process returns to baseline: goroutine count, heap, and every
// shard's scheduler queue all drain. This is the regression test for
// the mid-backoff restart-timer leak — an instance deleted while
// backing off must take its pending restart entry with it — and, with
// shards, for migration leaving no orphan entry on either side's heap.
func TestRegistryChurnNoLeaks(t *testing.T) {
	if testing.Short() {
		t.Skip("churn soak skipped in -short")
	}
	n := 1200
	if raceEnabled {
		n = 240
	}
	const shards = 4
	s := New(Config{Lab: testLab, Shards: shards, MaxInstances: n + 8, RestartBackoff: time.Hour})
	t.Cleanup(s.Close)

	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	baseGoros := runtime.NumGoroutine()

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < n/workers; k++ {
				var spec InstanceSpec
				mode := (w + k) % 4
				switch mode {
				case 0: // free-run to done, then delete a parked instance
					spec = InstanceSpec{Speed: SpeedMax, MaxEpochs: 3}
				case 1: // paced, deleted while waiting for its first epoch
					spec = InstanceSpec{Speed: 1}
				case 2: // crashed, deleted mid-backoff (1h away)
					spec = InstanceSpec{Speed: SpeedMax}
				case 3: // migrated across shards mid-run, then deleted
					spec = InstanceSpec{Speed: 1}
				}
				inst, err := s.CreateInstance(spec)
				if err != nil {
					t.Errorf("create: %v", err)
					return
				}
				if mode == 2 {
					if err := inst.InjectFault(FaultRequest{Kind: FaultDriverPanic}); err == nil {
						awaitInstance(t, inst, "crash booked", func() bool {
							return inst.Health().Crashes >= 1
						})
					}
				}
				if mode == 3 {
					from, _ := s.Registry().HomeShard(inst.ID())
					res, err := s.MigrateToShard(inst.ID(), (from+1+k%(shards-1))%shards)
					if err != nil {
						// A concurrent worker cannot hold this id, so the only
						// acceptable loss is the instance finishing; paced
						// instances never finish here.
						t.Errorf("migrate: %v", err)
						return
					}
					next, ok := s.Registry().Get(res.To)
					if !ok {
						t.Errorf("migrated instance %s not in registry", res.To)
						return
					}
					inst = next
				}
				s.Registry().Remove(inst.ID())
				inst.Stop()
			}
		}(w)
	}
	wg.Wait()

	if got := s.Registry().Len(); got != 0 {
		t.Fatalf("registry holds %d instances after churn, want 0", got)
	}
	// Only each shard's fleet dispatch entry may remain queued: every
	// instance entry — including both sides of every migration — must
	// have left its heap.
	for _, sh := range s.Registry().shards {
		if got := sh.sched.depth(); got > 1 {
			t.Fatalf("shard %d heap holds %d entries after churn, want <= 1", sh.idx, got)
		}
	}
	// Goroutine and heap convergence: the runtime exposes no event to
	// wait on here, so poll the counters with a bounded deadline.
	deadline := time.Now().Add(30 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseGoros+8 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines %d, want <= baseline %d+8\n%s",
				runtime.NumGoroutine(), baseGoros, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > base.HeapAlloc+128<<20 {
		t.Fatalf("heap grew from %dMB to %dMB across churn",
			base.HeapAlloc>>20, after.HeapAlloc>>20)
	}
}

// TestHundredThousandInstancesOneProcess is the scale acceptance test:
// 100k live instances in one process, each costing one heap entry and no
// goroutine, with bounded per-instance memory — while a handful of
// active instances still advance promptly through the same pool.
func TestHundredThousandInstancesOneProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short")
	}
	n := 100_000
	if raceEnabled {
		n = 4_000
	}
	reg := NewRegistry(0, 2, 1)
	defer reg.Close()

	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	baseGoros := runtime.NumGoroutine()

	// Speed ~0 gives a wall-clock interval of days: every instance parks
	// in the heap, due far in the future.
	spec := InstanceSpec{}
	for k := 0; k < n; k++ {
		id, ok := reg.Reserve(n + 8)
		if !ok {
			t.Fatalf("reserve %d refused", k)
		}
		inst, err := newInstance(id, spec, testLab, 1e-6, supervisorConfig{}, reg.shards[0].sched)
		if err != nil {
			t.Fatalf("instance %d: %v", k, err)
		}
		reg.Put(inst)
	}
	if got := reg.Len(); got != n {
		t.Fatalf("registry len = %d, want %d", got, n)
	}
	if got := reg.shards[0].sched.depth(); got != n {
		t.Fatalf("scheduler heap holds %d entries, want %d", got, n)
	}
	if got := runtime.NumGoroutine(); got > baseGoros+4 {
		t.Fatalf("%d goroutines for %d instances (baseline %d): instances must not own goroutines", got, n, baseGoros)
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	per := (after.HeapAlloc - base.HeapAlloc) / uint64(n)
	t.Logf("%d instances: %d MB heap, %d bytes/instance, %d goroutines",
		n, (after.HeapAlloc-base.HeapAlloc)>>20, per, runtime.NumGoroutine())
	if per > 64<<10 {
		t.Fatalf("per-instance heap = %d bytes, want <= 64KB", per)
	}

	// Active instances dispatch promptly out of the big heap.
	fast := make([]*Instance, 0, 8)
	for k := 0; k < 8; k++ {
		id, ok := reg.Reserve(n + 8)
		if !ok {
			t.Fatalf("reserve fast %d refused", k)
		}
		inst, err := newInstance(id, InstanceSpec{MaxEpochs: 30}, testLab, SpeedMax, supervisorConfig{}, reg.shards[0].sched)
		if err != nil {
			t.Fatalf("fast instance %d: %v", k, err)
		}
		reg.Put(inst)
		fast = append(fast, inst)
	}
	for k, inst := range fast {
		awaitInstance(t, inst, fmt.Sprintf("fast instance %d done", k), func() bool {
			return inst.Status().State == StateDone
		})
	}

	reg.Close()
	if got := reg.shards[0].sched.depth(); got != 0 {
		t.Fatalf("scheduler heap holds %d entries after Close, want 0", got)
	}
}
