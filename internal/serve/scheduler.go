package serve

import (
	"container/heap"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// The shared epoch scheduler (DESIGN.md §13): one min-heap of due times
// and one bounded worker pool drive every live instance, the crash
// restarts and the fleet dispatch loop. Nothing in the control plane
// owns a per-instance goroutine or timer any more — an idle, parked or
// backing-off instance costs exactly one heap entry (or none), which is
// what lets a single registry hold 100k+ live instances.

// epochTask is one unit of work the shared epoch scheduler dispatches:
// an instance's next batch of epochs, its pending crash restart, or the
// fleet dispatcher's tick. runSlice executes the due work and returns
// the next wall-clock due time; ok=false parks the task — a parked task
// holds no timer, no goroutine and no heap entry until something
// schedules its entry again.
type epochTask interface {
	runSlice() (next time.Time, ok bool)
}

// schedEntry is one task's position in the epoch heap. An entry is
// single-owner and lives as long as its task; it is out of the heap
// (index -1) while dispatched to a worker or parked. home is the pool
// whose heap the entry lives in: a shed slice may execute on a peer
// pool's worker, but the entry's queue state (due, index, cancelled)
// always belongs to — and is locked through — its home pool.
type schedEntry struct {
	task  epochTask
	home  *epochScheduler
	due   time.Time
	seq   uint64 // FIFO tie-break for equal due times (free-runner round-robin)
	index int    // heap position; -1 while dispatched or parked
	// cancelled is terminal: set by remove when the owner stops, it makes
	// any concurrent or future schedule a no-op, so an in-flight slice
	// cannot resurrect a deleted instance's entry.
	cancelled bool
}

// entryHeap orders entries by due time, then by scheduling sequence so
// equal-due entries (free-runners requeueing at "now") run round-robin.
type entryHeap []*schedEntry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(a, b int) bool {
	if !h[a].due.Equal(h[b].due) {
		return h[a].due.Before(h[b].due)
	}
	return h[a].seq < h[b].seq
}
func (h entryHeap) Swap(a, b int) {
	h[a], h[b] = h[b], h[a]
	h[a].index = a
	h[b].index = b
}
func (h *entryHeap) Push(x any) {
	e := x.(*schedEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// epochScheduler is the shared driver pool: a dispatcher goroutine pops
// due entries off the heap and hands them to `drivers` workers, each of
// which runs one slice and requeues the entry at the time the task asks
// for. Each registry shard owns exactly one; sibling shards' pools are
// wired as peers for work-stealing (see shed).
type epochScheduler struct {
	drivers int

	// peers are the sibling shards' pools, wired once by the registry
	// before any traffic and immutable afterwards. When every local
	// worker is busy, the dispatcher sheds a due entry to the first peer
	// with an idle worker instead of queueing behind the hot shard.
	peers []*epochScheduler

	mu  sync.Mutex
	h   entryHeap
	seq uint64

	wake  chan struct{} // kicks the dispatcher when the earliest due changes
	work  chan *schedEntry
	stopc chan struct{}
	once  sync.Once
	wg    sync.WaitGroup

	slices atomic.Int64 // slices dispatched to workers
	epochs atomic.Int64 // simulated epochs advanced by workers
	shed   atomic.Int64 // due slices handed to a peer pool's worker
	stolen atomic.Int64 // foreign slices this pool's workers executed
}

// defaultDrivers is the worker budget a pool gets when none is
// configured.
func defaultDrivers() int { return runtime.GOMAXPROCS(0) }

// newEpochScheduler starts a scheduler with the given worker count
// (0 selects GOMAXPROCS).
func newEpochScheduler(drivers int) *epochScheduler {
	if drivers <= 0 {
		drivers = runtime.GOMAXPROCS(0)
	}
	s := &epochScheduler{
		drivers: drivers,
		wake:    make(chan struct{}, 1),
		work:    make(chan *schedEntry),
		stopc:   make(chan struct{}),
	}
	s.wg.Add(1 + drivers)
	go s.dispatch()
	for k := 0; k < drivers; k++ {
		go s.worker()
	}
	return s
}

// newEntry binds a task to an unscheduled heap entry homed on this pool.
func (s *epochScheduler) newEntry(task epochTask) *schedEntry {
	return &schedEntry{task: task, home: s, index: -1}
}

// schedule (re)queues e at due on its home pool: a queued entry moves, a
// parked one is pushed, a cancelled one is ignored. Routing through the
// home keeps the call correct from a peer worker that just ran a stolen
// slice — the entry re-enters its own shard's heap, never the thief's.
func (s *epochScheduler) schedule(e *schedEntry, due time.Time) {
	h := e.home
	h.mu.Lock()
	if e.cancelled {
		h.mu.Unlock()
		return
	}
	e.due = due
	if e.index >= 0 {
		heap.Fix(&h.h, e.index)
	} else {
		e.seq = h.seq
		h.seq++
		heap.Push(&h.h, e)
	}
	h.mu.Unlock()
	select {
	case h.wake <- struct{}{}:
	default:
	}
}

// remove cancels e permanently: it leaves its home heap if queued, and
// an in-flight dispatch of it becomes a no-op. Removal is final (the
// owner is stopping), which is what drains mid-backoff restart entries
// when an instance is deleted during its backoff window.
func (s *epochScheduler) remove(e *schedEntry) {
	h := e.home
	h.mu.Lock()
	e.cancelled = true
	if e.index >= 0 {
		heap.Remove(&h.h, e.index)
	}
	h.mu.Unlock()
}

// dispatch owns the single timer armed for the earliest due entry; a
// schedule call that changes the front of the heap kicks it awake early.
func (s *epochScheduler) dispatch() {
	defer s.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		s.mu.Lock()
		var e *schedEntry
		wait := time.Duration(-1)
		if len(s.h) > 0 {
			if d := time.Until(s.h[0].due); d <= 0 {
				e = heap.Pop(&s.h).(*schedEntry)
			} else {
				wait = d
			}
		}
		s.mu.Unlock()

		if e != nil {
			// Hand the due slice to an idle local worker if one is
			// waiting; otherwise try to shed it to a peer pool with an
			// idle worker (work-stealing for a hot shard); otherwise
			// block on the local pool like before.
			select {
			case s.work <- e:
			default:
				if !s.shedToPeer(e) {
					select {
					case s.work <- e:
					case <-s.stopc:
						return
					}
				}
			}
			continue
		}
		if wait < 0 { // empty heap: sleep until something is scheduled
			select {
			case <-s.wake:
			case <-s.stopc:
				return
			}
			continue
		}
		timer.Reset(wait)
		select {
		case <-timer.C:
		case <-s.wake:
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		case <-s.stopc:
			return
		}
	}
}

// shedToPeer offers a due entry to the first peer pool with an idle
// worker. The work channels are unbuffered, so a successful send means a
// peer worker takes the slice right now — shedding never queues work
// behind another shard, it only uses spare capacity that already exists.
func (s *epochScheduler) shedToPeer(e *schedEntry) bool {
	for _, p := range s.peers {
		select {
		case p.work <- e:
			s.shed.Add(1)
			return true
		default:
		}
	}
	return false
}

// worker runs dispatched slices — local or stolen from a peer's
// dispatcher — and requeues live tasks on their home heap at the due
// time they return.
func (s *epochScheduler) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopc:
			return
		case e := <-s.work:
			h := e.home
			h.mu.Lock()
			dead := e.cancelled
			h.mu.Unlock()
			if dead {
				continue
			}
			if h != s {
				s.stolen.Add(1)
			}
			sliceStart := time.Now()
			next, ok := e.task.runSlice()
			epochSliceHist.Observe(time.Since(sliceStart))
			s.slices.Add(1)
			if ok {
				s.schedule(e, next)
			}
			// A saturating task (a free-runner requeueing at `now`) turns
			// the dispatcher→worker channel handoff into a ping-pong that
			// rides the runtime's runnext fast path and can starve every
			// other runnable goroutine on a single-P box. One yield per
			// slice bounds that unfairness at no measurable cost.
			runtime.Gosched()
		}
	}
}

// stop shuts the pool down and waits for the dispatcher and every worker
// to exit; an in-flight slice completes first. Safe to call more than
// once.
func (s *epochScheduler) stop() {
	s.once.Do(func() { close(s.stopc) })
	s.wg.Wait()
}

// depth returns the number of queued entries.
func (s *epochScheduler) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.h)
}

// lag reports how far the earliest due entry is behind the wall clock —
// the pool's overload signal.
func (s *epochScheduler) lag() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.h) == 0 {
		return 0
	}
	if d := time.Since(s.h[0].due); d > 0 {
		return d
	}
	return 0
}

// EpochSchedStatus is the shared epoch scheduler's health snapshot,
// reported by GET /healthz and the heracles_epoch_sched_* metric
// families.
type EpochSchedStatus struct {
	// Drivers is the worker pool size (the -drivers knob).
	Drivers int `json:"drivers"`
	// QueueDepth is the number of entries queued in the epoch heap.
	QueueDepth int `json:"queue_depth"`
	// Slices counts dispatches to workers; Epochs counts simulated
	// epochs those slices advanced.
	Slices int64 `json:"slices"`
	Epochs int64 `json:"epochs"`
	// Shed counts due slices this pool handed to an idle peer worker
	// because every local worker was busy; Stolen counts foreign slices
	// this pool's workers executed for hot peers.
	Shed   int64 `json:"shed"`
	Stolen int64 `json:"stolen"`
	// LagSeconds is how far the earliest due entry trails the wall clock.
	LagSeconds float64 `json:"lag_seconds"`
}

// merge folds another pool's snapshot into s (counters sum, lag takes
// the worst shard) — the aggregate view /healthz and /metrics report for
// a sharded registry.
func (st EpochSchedStatus) merge(o EpochSchedStatus) EpochSchedStatus {
	st.Drivers += o.Drivers
	st.QueueDepth += o.QueueDepth
	st.Slices += o.Slices
	st.Epochs += o.Epochs
	st.Shed += o.Shed
	st.Stolen += o.Stolen
	if o.LagSeconds > st.LagSeconds {
		st.LagSeconds = o.LagSeconds
	}
	return st
}

func (s *epochScheduler) status() EpochSchedStatus {
	return EpochSchedStatus{
		Drivers:    s.drivers,
		QueueDepth: s.depth(),
		Slices:     s.slices.Load(),
		Epochs:     s.epochs.Load(),
		Shed:       s.shed.Load(),
		Stolen:     s.stolen.Load(),
		LagSeconds: s.lag().Seconds(),
	}
}

// benchTask is ScheduleBench's no-op task: it requeues immediately until
// the shared slice budget runs out, then parks.
type benchTask struct {
	left *atomic.Int64
	wg   *sync.WaitGroup
}

func (t *benchTask) runSlice() (time.Time, bool) {
	if t.left.Add(-1) >= 0 {
		return time.Now(), true
	}
	t.wg.Done()
	return time.Time{}, false
}

// ScheduleBench exists for cmd/benchbaseline's InstanceSchedule entry:
// it measures the pure per-slice scheduling overhead — one heap push,
// one dispatcher pop, one worker dispatch and one requeue — with no
// engine work attached. It drives `tasks` no-op tasks through a fresh
// pool of `drivers` workers until `slices` total slices have run.
func ScheduleBench(drivers, tasks, slices int) {
	s := newEpochScheduler(drivers)
	defer s.stop()
	var left atomic.Int64
	left.Store(int64(slices))
	var wg sync.WaitGroup
	wg.Add(tasks)
	now := time.Now()
	for k := 0; k < tasks; k++ {
		s.schedule(s.newEntry(&benchTask{left: &left, wg: &wg}), now)
	}
	wg.Wait()
}
