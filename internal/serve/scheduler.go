package serve

import (
	"container/heap"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// The shared epoch scheduler (DESIGN.md §13): one min-heap of due times
// and one bounded worker pool drive every live instance, the crash
// restarts and the fleet dispatch loop. Nothing in the control plane
// owns a per-instance goroutine or timer any more — an idle, parked or
// backing-off instance costs exactly one heap entry (or none), which is
// what lets a single registry hold 100k+ live instances.

// epochTask is one unit of work the shared epoch scheduler dispatches:
// an instance's next batch of epochs, its pending crash restart, or the
// fleet dispatcher's tick. runSlice executes the due work and returns
// the next wall-clock due time; ok=false parks the task — a parked task
// holds no timer, no goroutine and no heap entry until something
// schedules its entry again.
type epochTask interface {
	runSlice() (next time.Time, ok bool)
}

// schedEntry is one task's position in the epoch heap. An entry is
// single-owner and lives as long as its task; it is out of the heap
// (index -1) while dispatched to a worker or parked.
type schedEntry struct {
	task  epochTask
	due   time.Time
	seq   uint64 // FIFO tie-break for equal due times (free-runner round-robin)
	index int    // heap position; -1 while dispatched or parked
	// cancelled is terminal: set by remove when the owner stops, it makes
	// any concurrent or future schedule a no-op, so an in-flight slice
	// cannot resurrect a deleted instance's entry.
	cancelled bool
}

// entryHeap orders entries by due time, then by scheduling sequence so
// equal-due entries (free-runners requeueing at "now") run round-robin.
type entryHeap []*schedEntry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(a, b int) bool {
	if !h[a].due.Equal(h[b].due) {
		return h[a].due.Before(h[b].due)
	}
	return h[a].seq < h[b].seq
}
func (h entryHeap) Swap(a, b int) {
	h[a], h[b] = h[b], h[a]
	h[a].index = a
	h[b].index = b
}
func (h *entryHeap) Push(x any) {
	e := x.(*schedEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// epochScheduler is the shared driver pool: a dispatcher goroutine pops
// due entries off the heap and hands them to `drivers` workers, each of
// which runs one slice and requeues the entry at the time the task asks
// for. The Registry owns exactly one.
type epochScheduler struct {
	drivers int

	mu  sync.Mutex
	h   entryHeap
	seq uint64

	wake  chan struct{} // kicks the dispatcher when the earliest due changes
	work  chan *schedEntry
	stopc chan struct{}
	once  sync.Once
	wg    sync.WaitGroup

	slices atomic.Int64 // slices dispatched to workers
	epochs atomic.Int64 // simulated epochs advanced by workers
}

// newEpochScheduler starts a scheduler with the given worker count
// (0 selects GOMAXPROCS).
func newEpochScheduler(drivers int) *epochScheduler {
	if drivers <= 0 {
		drivers = runtime.GOMAXPROCS(0)
	}
	s := &epochScheduler{
		drivers: drivers,
		wake:    make(chan struct{}, 1),
		work:    make(chan *schedEntry),
		stopc:   make(chan struct{}),
	}
	s.wg.Add(1 + drivers)
	go s.dispatch()
	for k := 0; k < drivers; k++ {
		go s.worker()
	}
	return s
}

// newEntry binds a task to an unscheduled heap entry.
func (s *epochScheduler) newEntry(task epochTask) *schedEntry {
	return &schedEntry{task: task, index: -1}
}

// schedule (re)queues e at due: a queued entry moves, a parked one is
// pushed, a cancelled one is ignored.
func (s *epochScheduler) schedule(e *schedEntry, due time.Time) {
	s.mu.Lock()
	if e.cancelled {
		s.mu.Unlock()
		return
	}
	e.due = due
	if e.index >= 0 {
		heap.Fix(&s.h, e.index)
	} else {
		e.seq = s.seq
		s.seq++
		heap.Push(&s.h, e)
	}
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// remove cancels e permanently: it leaves the heap if queued, and an
// in-flight dispatch of it becomes a no-op. Removal is final (the owner
// is stopping), which is what drains mid-backoff restart entries when an
// instance is deleted during its backoff window.
func (s *epochScheduler) remove(e *schedEntry) {
	s.mu.Lock()
	e.cancelled = true
	if e.index >= 0 {
		heap.Remove(&s.h, e.index)
	}
	s.mu.Unlock()
}

// dispatch owns the single timer armed for the earliest due entry; a
// schedule call that changes the front of the heap kicks it awake early.
func (s *epochScheduler) dispatch() {
	defer s.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		s.mu.Lock()
		var e *schedEntry
		wait := time.Duration(-1)
		if len(s.h) > 0 {
			if d := time.Until(s.h[0].due); d <= 0 {
				e = heap.Pop(&s.h).(*schedEntry)
			} else {
				wait = d
			}
		}
		s.mu.Unlock()

		if e != nil {
			select {
			case s.work <- e:
			case <-s.stopc:
				return
			}
			continue
		}
		if wait < 0 { // empty heap: sleep until something is scheduled
			select {
			case <-s.wake:
			case <-s.stopc:
				return
			}
			continue
		}
		timer.Reset(wait)
		select {
		case <-timer.C:
		case <-s.wake:
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		case <-s.stopc:
			return
		}
	}
}

// worker runs dispatched slices and requeues live tasks at the due time
// they return.
func (s *epochScheduler) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopc:
			return
		case e := <-s.work:
			s.mu.Lock()
			dead := e.cancelled
			s.mu.Unlock()
			if dead {
				continue
			}
			next, ok := e.task.runSlice()
			s.slices.Add(1)
			if ok {
				s.schedule(e, next)
			}
			// A saturating task (a free-runner requeueing at `now`) turns
			// the dispatcher→worker channel handoff into a ping-pong that
			// rides the runtime's runnext fast path and can starve every
			// other runnable goroutine on a single-P box. One yield per
			// slice bounds that unfairness at no measurable cost.
			runtime.Gosched()
		}
	}
}

// stop shuts the pool down and waits for the dispatcher and every worker
// to exit; an in-flight slice completes first. Safe to call more than
// once.
func (s *epochScheduler) stop() {
	s.once.Do(func() { close(s.stopc) })
	s.wg.Wait()
}

// depth returns the number of queued entries.
func (s *epochScheduler) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.h)
}

// lag reports how far the earliest due entry is behind the wall clock —
// the pool's overload signal.
func (s *epochScheduler) lag() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.h) == 0 {
		return 0
	}
	if d := time.Since(s.h[0].due); d > 0 {
		return d
	}
	return 0
}

// EpochSchedStatus is the shared epoch scheduler's health snapshot,
// reported by GET /healthz and the heracles_epoch_sched_* metric
// families.
type EpochSchedStatus struct {
	// Drivers is the worker pool size (the -drivers knob).
	Drivers int `json:"drivers"`
	// QueueDepth is the number of entries queued in the epoch heap.
	QueueDepth int `json:"queue_depth"`
	// Slices counts dispatches to workers; Epochs counts simulated
	// epochs those slices advanced.
	Slices int64 `json:"slices"`
	Epochs int64 `json:"epochs"`
	// LagSeconds is how far the earliest due entry trails the wall clock.
	LagSeconds float64 `json:"lag_seconds"`
}

func (s *epochScheduler) status() EpochSchedStatus {
	return EpochSchedStatus{
		Drivers:    s.drivers,
		QueueDepth: s.depth(),
		Slices:     s.slices.Load(),
		Epochs:     s.epochs.Load(),
		LagSeconds: s.lag().Seconds(),
	}
}

// benchTask is ScheduleBench's no-op task: it requeues immediately until
// the shared slice budget runs out, then parks.
type benchTask struct {
	left *atomic.Int64
	wg   *sync.WaitGroup
}

func (t *benchTask) runSlice() (time.Time, bool) {
	if t.left.Add(-1) >= 0 {
		return time.Now(), true
	}
	t.wg.Done()
	return time.Time{}, false
}

// ScheduleBench exists for cmd/benchbaseline's InstanceSchedule entry:
// it measures the pure per-slice scheduling overhead — one heap push,
// one dispatcher pop, one worker dispatch and one requeue — with no
// engine work attached. It drives `tasks` no-op tasks through a fresh
// pool of `drivers` workers until `slices` total slices have run.
func ScheduleBench(drivers, tasks, slices int) {
	s := newEpochScheduler(drivers)
	defer s.stop()
	var left atomic.Int64
	left.Store(int64(slices))
	var wg sync.WaitGroup
	wg.Add(tasks)
	now := time.Now()
	for k := 0; k < tasks; k++ {
		s.schedule(s.newEntry(&benchTask{left: &left, wg: &wg}), now)
	}
	wg.Wait()
}
