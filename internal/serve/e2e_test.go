package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	Event string
	ID    string
	Data  []byte
}

// sseReader incrementally parses an SSE byte stream.
type sseReader struct {
	sc *bufio.Scanner
}

func newSSEReader(r io.Reader) *sseReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	return &sseReader{sc: sc}
}

// Next returns the next event, skipping comments.
func (r *sseReader) Next() (sseEvent, error) {
	var ev sseEvent
	for r.sc.Scan() {
		line := r.sc.Text()
		switch {
		case line == "":
			if ev.Event != "" || len(ev.Data) > 0 {
				return ev, nil
			}
		case strings.HasPrefix(line, ":"): // comment
		case strings.HasPrefix(line, "event: "):
			ev.Event = line[len("event: "):]
		case strings.HasPrefix(line, "id: "):
			ev.ID = line[len("id: "):]
		case strings.HasPrefix(line, "data: "):
			ev.Data = append(ev.Data, line[len("data: "):]...)
		}
	}
	if err := r.sc.Err(); err != nil {
		return ev, err
	}
	return ev, io.EOF
}

func jsonBody(t *testing.T, v any) *bytes.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

func doReq(t *testing.T, client *http.Client, method, url string, body io.Reader, wantCode int) []byte {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s: status %d, want %d; body: %s", method, url, resp.StatusCode, wantCode, out)
	}
	return out
}

// TestE2ELifecycleSSEAndMetrics is the acceptance flow: create an
// instance over HTTP, stream at least ten SSE epochs, change the SLO via
// PUT mid-flight, observe the changed SLO in the stream, scrape non-empty
// Prometheus /metrics, then delete the instance.
func TestE2ELifecycleSSEAndMetrics(t *testing.T) {
	s := New(Config{Lab: testLab})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	// Health before anything exists.
	if body := doReq(t, client, "GET", ts.URL+"/healthz", nil, 200); !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("healthz: %s", body)
	}

	// Create an instance: websearch + brain at 40%% load, ~2000 simulated
	// seconds per wall second so ten epochs arrive in milliseconds.
	spec := InstanceSpec{
		Name: "edge-leaf",
		LC:   "websearch",
		BEs:  []BEAttachment{{Workload: "brain"}},
		Load: 0.4,

		Speed: 2000,
	}
	body := doReq(t, client, "POST", ts.URL+"/api/v1/instances", jsonBody(t, spec), 201)
	var created Status
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatalf("create response: %v; body %s", err, body)
	}
	if created.ID == "" || created.LC != "websearch" || created.State != StateRunning {
		t.Fatalf("created status = %+v", created)
	}
	id := created.ID
	baseSLO := created.Last.SLOMs
	if baseSLO <= 0 {
		t.Fatalf("created instance has no SLO: %+v", created.Last)
	}

	// List and inspect.
	body = doReq(t, client, "GET", ts.URL+"/api/v1/instances", nil, 200)
	if !bytes.Contains(body, []byte(id)) {
		t.Fatalf("instance list missing %s: %s", id, body)
	}
	doReq(t, client, "GET", ts.URL+"/api/v1/instances/"+id, nil, 200)
	doReq(t, client, "GET", ts.URL+"/api/v1/instances/nosuch", nil, 404)

	// Attach the SSE stream.
	resp, err := client.Get(ts.URL + "/api/v1/instances/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	sse := newSSEReader(resp.Body)

	// Stream at least ten epoch events at the original SLO.
	var epochs int
	var lastUpdate EpochUpdate
	for epochs < 10 {
		ev, err := sse.Next()
		if err != nil {
			t.Fatalf("stream ended after %d epochs: %v", epochs, err)
		}
		if ev.Event != "epoch" {
			continue
		}
		if err := json.Unmarshal(ev.Data, &lastUpdate); err != nil {
			t.Fatalf("epoch payload: %v; %s", err, ev.Data)
		}
		if lastUpdate.Instance != id {
			t.Fatalf("epoch for wrong instance: %+v", lastUpdate)
		}
		epochs++
	}
	if lastUpdate.SLOMs != baseSLO {
		t.Fatalf("pre-change SLO drifted: %v vs %v", lastUpdate.SLOMs, baseSLO)
	}

	// Tighten the SLO mid-flight and watch the change reach telemetry.
	body = doReq(t, client, "PUT", ts.URL+"/api/v1/instances/"+id+"/slo",
		jsonBody(t, map[string]float64{"scale": 0.5}), 200)
	var sloResp map[string]float64
	if err := json.Unmarshal(body, &sloResp); err != nil {
		t.Fatal(err)
	}
	wantSLO := sloResp["slo_ms"]
	if wantSLO >= baseSLO || wantSLO <= 0 {
		t.Fatalf("PUT slo returned slo_ms %v (base %v)", wantSLO, baseSLO)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		ev, err := sse.Next()
		if err != nil {
			t.Fatalf("stream ended waiting for SLO change: %v", err)
		}
		if ev.Event != "epoch" {
			continue
		}
		var up EpochUpdate
		if err := json.Unmarshal(ev.Data, &up); err != nil {
			t.Fatal(err)
		}
		if up.SLOMs == wantSLO {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("SLO change never appeared in stream: last %v, want %v", up.SLOMs, wantSLO)
		}
	}

	// Change the load target too; watch it land.
	doReq(t, client, "PUT", ts.URL+"/api/v1/instances/"+id+"/load",
		jsonBody(t, map[string]float64{"load": 0.7}), 200)
	for {
		ev, err := sse.Next()
		if err != nil {
			t.Fatalf("stream ended waiting for load change: %v", err)
		}
		if ev.Event != "epoch" {
			continue
		}
		var up EpochUpdate
		if err := json.Unmarshal(ev.Data, &up); err != nil {
			t.Fatal(err)
		}
		if up.Load == 0.7 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("load change never appeared in stream")
		}
	}

	// Scrape Prometheus metrics: non-empty, carries our instance.
	mresp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != 200 || len(mbody) == 0 {
		t.Fatalf("metrics: status %d, %d bytes", mresp.StatusCode, len(mbody))
	}
	for _, want := range []string{
		"heracles_instances 1",
		fmt.Sprintf("heracles_instance_emu{instance=%q}", id),
		fmt.Sprintf("heracles_instance_slo_slack{instance=%q}", id),
		fmt.Sprintf("heracles_instance_epochs_total{instance=%q}", id),
		"heracles_fleet_emu_mean",
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Attach + detach a second BE task.
	doReq(t, client, "POST", ts.URL+"/api/v1/instances/"+id+"/bes",
		jsonBody(t, BEAttachment{Workload: "streetview"}), 201)
	doReq(t, client, "DELETE", ts.URL+"/api/v1/instances/"+id+"/bes/streetview", nil, 200)
	doReq(t, client, "DELETE", ts.URL+"/api/v1/instances/"+id+"/bes/streetview", nil, 404)

	// Degradation injection.
	doReq(t, client, "PUT", ts.URL+"/api/v1/instances/"+id+"/degrade",
		jsonBody(t, map[string]float64{"factor": 1.3}), 200)
	doReq(t, client, "PUT", ts.URL+"/api/v1/instances/"+id+"/degrade",
		jsonBody(t, map[string]float64{"factor": 1}), 200)

	// Install a declarative scenario over the API.
	doReq(t, client, "POST", ts.URL+"/api/v1/instances/"+id+"/scenario",
		jsonBody(t, ScenarioSpec{
			Name:      "steps",
			DurationS: 30,
			Load: &ShapeSpec{Kind: "steps", Levels: []LevelSpec{
				{AtS: 0, Load: 0.3}, {AtS: 15, Load: 0.6},
			}},
			Events: []EventSpec{{AtS: 10, Kind: "slo-scale", Factor: 0.9}},
		}), 202)

	// Delete; the instance disappears from the pool and /metrics.
	doReq(t, client, "DELETE", ts.URL+"/api/v1/instances/"+id, nil, 200)
	doReq(t, client, "GET", ts.URL+"/api/v1/instances/"+id, nil, 404)
	mbody = doReq(t, client, "GET", ts.URL+"/metrics", nil, 200)
	if !strings.Contains(string(mbody), "heracles_instances 0") {
		t.Fatalf("metrics after delete: %s", mbody)
	}
}

// TestE2EBadRequests covers input validation across endpoints.
func TestE2EBadRequests(t *testing.T) {
	s := New(Config{Lab: testLab, MaxInstances: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	// Malformed body, unknown fields, unknown workloads.
	doReq(t, client, "POST", ts.URL+"/api/v1/instances", strings.NewReader("{nope"), 400)
	doReq(t, client, "POST", ts.URL+"/api/v1/instances", strings.NewReader(`{"bogus_field":1}`), 400)
	doReq(t, client, "POST", ts.URL+"/api/v1/instances", jsonBody(t, InstanceSpec{LC: "nosuch"}), 400)
	doReq(t, client, "POST", ts.URL+"/api/v1/instances", jsonBody(t, InstanceSpec{Load: 2}), 400)

	// Instance cap.
	body := doReq(t, client, "POST", ts.URL+"/api/v1/instances",
		jsonBody(t, InstanceSpec{Speed: 2000}), 201)
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	doReq(t, client, "POST", ts.URL+"/api/v1/instances", jsonBody(t, InstanceSpec{}), 503)

	// Mutations with bad payloads.
	base := ts.URL + "/api/v1/instances/" + st.ID
	doReq(t, client, "PUT", base+"/load", jsonBody(t, map[string]float64{"load": -1}), 400)
	doReq(t, client, "PUT", base+"/slo", jsonBody(t, map[string]float64{"scale": 0}), 400)
	doReq(t, client, "PUT", base+"/degrade", jsonBody(t, map[string]float64{"factor": -2}), 400)
	doReq(t, client, "POST", base+"/bes", jsonBody(t, BEAttachment{Workload: "nosuch"}), 400)
	doReq(t, client, "POST", base+"/scenario", jsonBody(t, ScenarioSpec{DurationS: -1}), 400)

	// Unknown instance for every instance-scoped route.
	doReq(t, client, "PUT", ts.URL+"/api/v1/instances/zz/load", jsonBody(t, map[string]float64{"load": 0.5}), 404)
	doReq(t, client, "DELETE", ts.URL+"/api/v1/instances/zz", nil, 404)
	doReq(t, client, "GET", ts.URL+"/api/v1/instances/zz/stream", nil, 404)
}

// TestE2EConcurrentClients hammers one live instance from many goroutines
// — status reads, load writes, metric scrapes, SSE subscribe/close churn —
// while the simulation advances. Run under -race this is the control
// plane's data-race certification.
func TestE2EConcurrentClients(t *testing.T) {
	s := New(Config{Lab: testLab})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	body := doReq(t, client, "POST", ts.URL+"/api/v1/instances",
		jsonBody(t, InstanceSpec{BEs: []BEAttachment{{Workload: "brain"}}, Load: 0.4, Speed: 2000}), 201)
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	base := ts.URL + "/api/v1/instances/" + st.ID

	stop := make(chan struct{})
	var wg sync.WaitGroup
	worker := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					fn()
				}
			}
		}()
	}

	for k := 0; k < 4; k++ {
		worker(func() {
			resp, err := client.Get(base)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		})
	}
	loads := []float64{0.2, 0.5, 0.8}
	for k := 0; k < 2; k++ {
		k := k
		worker(func() {
			req, _ := http.NewRequest("PUT", base+"/load",
				jsonBody(t, map[string]float64{"load": loads[k%len(loads)]}))
			resp, err := client.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		})
	}
	for k := 0; k < 2; k++ {
		worker(func() {
			resp, err := client.Get(ts.URL + "/metrics")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		})
	}
	for k := 0; k < 2; k++ {
		worker(func() {
			resp, err := client.Get(base + "/stream")
			if err != nil {
				return
			}
			sse := newSSEReader(resp.Body)
			for j := 0; j < 3; j++ {
				if _, err := sse.Next(); err != nil {
					break
				}
			}
			resp.Body.Close()
		})
	}
	worker(func() {
		req, _ := http.NewRequest("POST", base+"/bes", jsonBody(t, BEAttachment{Workload: "streetview"}))
		if resp, err := client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		req, _ = http.NewRequest("DELETE", base+"/bes/streetview", nil)
		if resp, err := client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The instance survived and kept stepping.
	final := doReq(t, client, "GET", base, nil, 200)
	var fs Status
	if err := json.Unmarshal(final, &fs); err != nil {
		t.Fatal(err)
	}
	if fs.Epoch == 0 || fs.State != StateRunning {
		t.Fatalf("instance after hammering: %+v", fs)
	}
	doReq(t, client, "DELETE", base, nil, 200)
}

// TestE2ECheckpointAndRestore drives the pause/migrate flow over HTTP:
// snapshot a live instance with POST .../checkpoint, create a new
// instance from the returned document via the create route's "restore"
// field, and watch the restored simulation continue past the snapshot
// epoch with the same workload.
func TestE2ECheckpointAndRestore(t *testing.T) {
	s := New(Config{Lab: testLab})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	body := doReq(t, client, "POST", ts.URL+"/api/v1/instances",
		jsonBody(t, InstanceSpec{
			BEs: []BEAttachment{{Workload: "brain"}}, Load: 0.4, Speed: SpeedMax, MaxEpochs: 80,
		}), 201)
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	// Wait for the park so the checkpoint epoch is deterministic.
	live, ok := s.Registry().Get(st.ID)
	if !ok {
		t.Fatalf("instance %s not in registry", st.ID)
	}
	awaitInstance(t, live, "instance parked", func() bool {
		return live.Status().State == StateDone
	})

	body = doReq(t, client, "POST", ts.URL+"/api/v1/instances/"+st.ID+"/checkpoint", nil, 200)
	var cp InstanceCheckpoint
	if err := json.Unmarshal(body, &cp); err != nil {
		t.Fatalf("checkpoint payload: %v; %s", err, body)
	}
	if cp.Engine == nil || cp.Engine.Epoch != 80 || cp.LC != "websearch" {
		t.Fatalf("checkpoint = version %d, epoch %v, lc %q", cp.Version, cp.Engine, cp.LC)
	}
	doReq(t, client, "POST", ts.URL+"/api/v1/instances/nosuch/checkpoint", nil, 404)

	// Restore conflicts with state-bearing fields.
	doReq(t, client, "POST", ts.URL+"/api/v1/instances",
		jsonBody(t, map[string]any{"restore": cp, "lc": "websearch"}), 400)

	// Restore into a fresh instance (the migration path), extending the
	// horizon so it runs on past the snapshot.
	body = doReq(t, client, "POST", ts.URL+"/api/v1/instances",
		jsonBody(t, map[string]any{"restore": cp, "max_epochs": 160, "speed": float64(SpeedMax)}), 201)
	var restored Status
	if err := json.Unmarshal(body, &restored); err != nil {
		t.Fatal(err)
	}
	if restored.ID == st.ID || restored.LC != "websearch" || restored.Epoch < 80 {
		t.Fatalf("restored status = %+v", restored)
	}
	liveRestored, ok := s.Registry().Get(restored.ID)
	if !ok {
		t.Fatalf("restored instance %s not in registry", restored.ID)
	}
	awaitInstance(t, liveRestored, "restored instance done", func() bool {
		return liveRestored.Status().State == StateDone
	})
	body = doReq(t, client, "GET", ts.URL+"/api/v1/instances/"+restored.ID, nil, 200)
	restored = Status{}
	if err := json.Unmarshal(body, &restored); err != nil {
		t.Fatal(err)
	}
	if restored.Epoch != 160 {
		t.Fatalf("restored instance parked at epoch %d, want 160", restored.Epoch)
	}
	if len(restored.BEs) == 0 || restored.BEs[0] != "brain" {
		t.Fatalf("restored instance lost its BE tasks: %+v", restored.BEs)
	}
}

// TestE2EScenarioDrivesTelemetry installs a scenario at creation and
// checks the load shape actually drives the machine.
func TestE2EScenarioDrivesTelemetry(t *testing.T) {
	s := New(Config{Lab: testLab})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	spec := InstanceSpec{
		Load:  0.1,
		Speed: SpeedMax,

		MaxEpochs: 130,
		Scenario: &ScenarioSpec{
			Name:      "ramp",
			DurationS: 120,
			Load:      &ShapeSpec{Kind: "ramp", From: 0.2, To: 0.8, StartS: 0, EndS: 100},
		},
	}
	body := doReq(t, client, "POST", ts.URL+"/api/v1/instances", jsonBody(t, spec), 201)
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	id := st.ID
	live, ok := s.Registry().Get(id)
	if !ok {
		t.Fatalf("instance %s not in registry", id)
	}
	awaitInstance(t, live, "scenario instance done", func() bool {
		return live.Status().State == StateDone
	})
	body = doReq(t, client, "GET", ts.URL+"/api/v1/instances/"+id, nil, 200)
	st = Status{} // omitempty fields must not survive the earlier decode
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	// After the ramp the offered load sits at the ramp's To value.
	if st.Last.Load < 0.75 || st.Last.Load > 0.85 {
		t.Fatalf("final load %v, want ~0.8 from ramp", st.Last.Load)
	}
	if st.Scenario != "" {
		t.Fatalf("scenario still active after completion: %+v", st)
	}
}
