// Package serve is the Heracles control plane: a long-lived service that
// owns a pool of live simulated machines — each with its own Heracles
// controller, advanced on a real-time, accelerated or free-running tick
// by one shared epoch scheduler — and exposes them over HTTP.
//
// The surface has three parts:
//
//   - REST endpoints (/api/v1/instances...) to create, list, inspect and
//     delete machine instances, change load targets and SLOs mid-flight,
//     attach and remove best-effort tasks, inject service degradation,
//     drive an instance by a declarative scenario (carried as JSON), and
//     checkpoint/restore an instance's full simulation state (pause,
//     fast-forward, or migrate it to another registry).
//   - A Server-Sent-Events stream per instance delivering per-epoch
//     telemetry, controller decisions and lifecycle transitions.
//   - A Prometheus-format /metrics endpoint aggregating EMU, tail
//     latency and SLO slack, resource allocations and controller
//     actuation counts across every live instance, plus the epoch
//     scheduler's own pool health.
//
// Instances do not own goroutines or timers. The registry runs a single
// event-driven epoch scheduler (DESIGN.md §13): a min-heap of next-due
// wall-clock epochs and a bounded worker pool that pops due instances
// and advances each one's engine.Engine — the same canonical epoch loop
// the batch cluster and fleet runs drive (see internal/engine and
// DESIGN.md §9, §11). Every API mutation is a closure run through
// Instance.Do under the instance's mailbox lock, between engine Steps.
// Driver cadence never reaches the engine, so a served instance replays
// bit-identically to a batch run with the same spec and command
// sequence, for any number of concurrent instances and clients — which
// is also why the scheduler may batch a stretched instance's epochs
// without changing its telemetry.
//
// cmd/heraclesd is the thin daemon over this package; the route table in
// server.go is the single source of truth for the HTTP surface and is
// cross-checked against docs/API.md by cmd/docscheck.
package serve
