// Package serve is the Heracles control plane: a long-lived service that
// owns a pool of live simulated machines — each with its own Heracles
// controller, advanced by a dedicated driver goroutine on a real-time,
// accelerated or free-running tick — and exposes them over HTTP.
//
// The surface has three parts:
//
//   - REST endpoints (/api/v1/instances...) to create, list, inspect and
//     delete machine instances, change load targets and SLOs mid-flight,
//     attach and remove best-effort tasks, inject service degradation,
//     and drive an instance by a declarative scenario (the same
//     load-shape + timed-event language the cluster and fleet simulators
//     interpret, carried as JSON).
//   - A Server-Sent-Events stream per instance delivering per-epoch
//     telemetry, controller decisions and lifecycle transitions.
//   - A Prometheus-format /metrics endpoint aggregating EMU, tail
//     latency and SLO slack, resource allocations and controller
//     actuation counts across every live instance.
//
// Determinism is preserved by construction: each instance's machine and
// controller are touched only by its driver goroutine, and every API
// mutation is a closure enqueued through Instance.Do and applied between
// epochs. The tick loop feeds the exact Machine.Step path the offline
// experiments use, so a served instance replays bit-identically to a
// batch run with the same spec and command sequence, for any number of
// concurrent instances and clients.
//
// cmd/heraclesd is the thin daemon over this package; the route table in
// server.go is the single source of truth for the HTTP surface and is
// cross-checked against docs/API.md by cmd/docscheck.
package serve
