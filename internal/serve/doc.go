// Package serve is the Heracles control plane: a long-lived service that
// owns a pool of live simulated machines — each with its own Heracles
// controller, advanced by a dedicated driver goroutine on a real-time,
// accelerated or free-running tick — and exposes them over HTTP.
//
// The surface has three parts:
//
//   - REST endpoints (/api/v1/instances...) to create, list, inspect and
//     delete machine instances, change load targets and SLOs mid-flight,
//     attach and remove best-effort tasks, inject service degradation,
//     drive an instance by a declarative scenario (carried as JSON), and
//     checkpoint/restore an instance's full simulation state (pause,
//     fast-forward, or migrate it to another registry).
//   - A Server-Sent-Events stream per instance delivering per-epoch
//     telemetry, controller decisions and lifecycle transitions.
//   - A Prometheus-format /metrics endpoint aggregating EMU, tail
//     latency and SLO slack, resource allocations and controller
//     actuation counts across every live instance.
//
// Determinism is true by construction: each instance's driver goroutine
// advances an engine.Engine — the same canonical epoch loop the batch
// cluster and fleet runs drive (see internal/engine and DESIGN.md §9,
// §11) — and every API mutation is a closure enqueued through
// Instance.Do and applied between engine Steps. There is no serve-side
// copy of the scenario or stepping logic, so a served instance replays
// bit-identically to a batch run with the same spec and command
// sequence, for any number of concurrent instances and clients.
//
// cmd/heraclesd is the thin daemon over this package; the route table in
// server.go is the single source of truth for the HTTP surface and is
// cross-checked against docs/API.md by cmd/docscheck.
package serve
