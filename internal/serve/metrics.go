package serve

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"heracles/internal/slo"
)

// Prometheus exposition: the control plane renders the text format by
// hand (the repository takes no dependencies), aggregating the same
// quantities the Heracles evaluation reports — EMU, tail latency and SLO
// slack, BE allocations, shared-resource utilisation — plus controller
// actuation counters, across every live instance.

// escapeLabel escapes a Prometheus label value.
var escapeLabel = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// metricFamily writes one HELP/TYPE header followed by a series per
// status.
func metricFamily(w io.Writer, name, typ, help string, sts []Status, value func(Status) float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, s := range sts {
		fmt.Fprintf(w, "%s{instance=\"%s\"} %s\n", name, escapeLabel.Replace(s.ID), fmtFloat(value(s)))
	}
}

// WriteMetrics renders the full exposition for the given instance
// snapshots.
func WriteMetrics(w io.Writer, sts []Status) {
	fmt.Fprint(w, "# HELP heracles_instances Number of live instances.\n# TYPE heracles_instances gauge\n")
	fmt.Fprintf(w, "heracles_instances %d\n", len(sts))

	metricFamily(w, "heracles_instance_up", "gauge",
		"1 while the instance simulation is advancing, 0 once done.", sts,
		func(s Status) float64 {
			if s.State == StateRunning {
				return 1
			}
			return 0
		})
	metricFamily(w, "heracles_instance_epochs_total", "counter",
		"Simulated epochs resolved.", sts,
		func(s Status) float64 { return float64(s.Epoch) })
	metricFamily(w, "heracles_instance_load", "gauge",
		"Offered LC load as a fraction of peak QPS.", sts,
		func(s Status) float64 { return s.Last.Load })
	metricFamily(w, "heracles_instance_slo_seconds", "gauge",
		"Controller-visible latency target.", sts,
		func(s Status) float64 { return s.Last.SLOMs / 1e3 })
	metricFamily(w, "heracles_instance_tail_latency_seconds", "gauge",
		"LC tail latency at the workload SLO quantile, last epoch.", sts,
		func(s Status) float64 { return s.Last.TailMs / 1e3 })
	metricFamily(w, "heracles_instance_p95_latency_seconds", "gauge",
		"LC 95th-percentile latency, last epoch.", sts,
		func(s Status) float64 { return s.Last.P95Ms / 1e3 })
	metricFamily(w, "heracles_instance_slo_slack", "gauge",
		"(SLO - tail latency) / SLO, last epoch; negative means violating.", sts,
		func(s Status) float64 { return s.Last.Slack })
	metricFamily(w, "heracles_instance_emu", "gauge",
		"Effective machine utilisation (LC + BE throughput, each normalised to running alone).", sts,
		func(s Status) float64 { return s.Last.EMU })
	metricFamily(w, "heracles_instance_be_enabled", "gauge",
		"1 while best-effort execution is enabled.", sts,
		func(s Status) float64 {
			if s.Last.BEEnabled {
				return 1
			}
			return 0
		})
	metricFamily(w, "heracles_instance_be_cores", "gauge",
		"Cores granted to best-effort tasks.", sts,
		func(s Status) float64 { return float64(s.Last.BECores) })
	metricFamily(w, "heracles_instance_be_ways", "gauge",
		"LLC ways granted to best-effort tasks.", sts,
		func(s Status) float64 { return float64(s.Last.BEWays) })
	metricFamily(w, "heracles_instance_dram_util", "gauge",
		"Achieved DRAM bandwidth over peak, all sockets.", sts,
		func(s Status) float64 { return s.Last.DRAMUtil })
	metricFamily(w, "heracles_instance_power_frac_tdp", "gauge",
		"Total package power over total TDP.", sts,
		func(s Status) float64 { return s.Last.PowerFracTDP })
	metricFamily(w, "heracles_instance_link_util", "gauge",
		"NIC egress utilisation.", sts,
		func(s Status) float64 { return s.Last.LinkUtil })
	metricFamily(w, "heracles_events_dropped_total", "counter",
		"Event-stream messages lost to full subscriber buffers.", sts,
		func(s Status) float64 { return float64(s.DroppedEvents) })
	metricFamily(w, "heracles_instance_health", "gauge",
		"Supervisor health: 0 healthy, 1 degraded (recent crash), 2 quarantined.", sts,
		func(s Status) float64 {
			switch s.Health {
			case HealthDegraded:
				return 1
			case HealthQuarantined:
				return 2
			default:
				return 0
			}
		})
	metricFamily(w, "heracles_instance_restarts_total", "counter",
		"Automatic restarts from the last checkpoint after a driver crash.", sts,
		func(s Status) float64 { return float64(s.Restarts) })
	metricFamily(w, "heracles_faults_injected_total", "counter",
		"Faults applied to the instance, injected via the API or a scenario schedule.", sts,
		func(s Status) float64 { return float64(s.FaultsInjected) })

	fmt.Fprint(w, "# HELP heracles_controller_actions_total Controller decisions by loop and action.\n# TYPE heracles_controller_actions_total counter\n")
	for _, s := range sts {
		for _, a := range s.Actions {
			fmt.Fprintf(w, "heracles_controller_actions_total{instance=\"%s\",loop=\"%s\",action=\"%s\"} %d\n",
				escapeLabel.Replace(s.ID), escapeLabel.Replace(a.Loop), escapeLabel.Replace(a.Action), a.Count)
		}
	}

	// Error-budget families (DESIGN.md §15). Headers always print so the
	// exposition shape is stable; series render per instance with the SLO
	// engine attached.
	sloFamily(w, "heracles_slo_objective", "gauge",
		"Availability objective the error budget is computed against.", sts,
		func(st *slo.Status) float64 { return st.Objective })
	sloFamily(w, "heracles_slo_violations_total", "counter",
		"Simulated epochs that violated the latency SLO.", sts,
		func(st *slo.Status) float64 { return float64(st.Violations) })
	sloFamily(w, "heracles_slo_budget_spent", "gauge",
		"Fraction of the 30-day error budget consumed (1 = exhausted).", sts,
		func(st *slo.Status) float64 { return st.BudgetSpent })
	fmt.Fprint(w, "# HELP heracles_slo_burn_rate Error-budget burn rate per rolling sim-time window (1 = spending exactly the budget).\n# TYPE heracles_slo_burn_rate gauge\n")
	for _, s := range sts {
		if s.SLO == nil {
			continue
		}
		for wi, name := range slo.WindowNames {
			fmt.Fprintf(w, "heracles_slo_burn_rate{instance=\"%s\",window=\"%s\"} %s\n",
				escapeLabel.Replace(s.ID), name, fmtFloat(s.SLO.Burn[wi]))
		}
	}
	fmt.Fprint(w, "# HELP heracles_slo_alert_firing 1 while the multiwindow burn-rate alert fires (fast-burn page, slow-burn ticket).\n# TYPE heracles_slo_alert_firing gauge\n")
	for _, s := range sts {
		if s.SLO == nil {
			continue
		}
		fmt.Fprintf(w, "heracles_slo_alert_firing{instance=\"%s\",alert=\"%s\"} %s\n",
			escapeLabel.Replace(s.ID), slo.AlertPage, boolVal(s.SLO.Page))
		fmt.Fprintf(w, "heracles_slo_alert_firing{instance=\"%s\",alert=\"%s\"} %s\n",
			escapeLabel.Replace(s.ID), slo.AlertTicket, boolVal(s.SLO.Ticket))
	}

	// Fleet-level aggregates over all live instances.
	var emuSum float64
	minSlack := 0.0
	maxBudget := 0.0
	pagesFiring := 0
	for j, s := range sts {
		emuSum += s.Last.EMU
		if j == 0 || s.Last.Slack < minSlack {
			minSlack = s.Last.Slack
		}
		if s.SLO != nil {
			if s.SLO.BudgetSpent > maxBudget {
				maxBudget = s.SLO.BudgetSpent
			}
			if s.SLO.Page {
				pagesFiring++
			}
		}
	}
	emuMean := 0.0
	if len(sts) > 0 {
		emuMean = emuSum / float64(len(sts))
	}
	fmt.Fprint(w, "# HELP heracles_fleet_emu_mean Mean EMU across live instances.\n# TYPE heracles_fleet_emu_mean gauge\n")
	fmt.Fprintf(w, "heracles_fleet_emu_mean %s\n", fmtFloat(emuMean))
	fmt.Fprint(w, "# HELP heracles_fleet_slo_slack_min Worst SLO slack across live instances.\n# TYPE heracles_fleet_slo_slack_min gauge\n")
	fmt.Fprintf(w, "heracles_fleet_slo_slack_min %s\n", fmtFloat(minSlack))
	fmt.Fprint(w, "# HELP heracles_fleet_slo_budget_spent_max Worst error-budget spend across live instances.\n# TYPE heracles_fleet_slo_budget_spent_max gauge\n")
	fmt.Fprintf(w, "heracles_fleet_slo_budget_spent_max %s\n", fmtFloat(maxBudget))
	fmt.Fprint(w, "# HELP heracles_fleet_slo_pages_firing Instances whose fast-burn page currently fires.\n# TYPE heracles_fleet_slo_pages_firing gauge\n")
	fmt.Fprintf(w, "heracles_fleet_slo_pages_firing %d\n", pagesFiring)
}

// sloFamily writes one per-instance error-budget series family, skipping
// instances without the SLO engine.
func sloFamily(w io.Writer, name, typ, help string, sts []Status, value func(*slo.Status) float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, s := range sts {
		if s.SLO == nil {
			continue
		}
		fmt.Fprintf(w, "%s{instance=\"%s\"} %s\n", name, escapeLabel.Replace(s.ID), fmtFloat(value(s.SLO)))
	}
}

func boolVal(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// schedScalar writes one unlabelled scheduler series.
func schedScalar(w io.Writer, name, typ, help, value string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n", name, help, name, typ, name, value)
}

// WriteSchedMetrics renders the fleet scheduler's exposition block:
// queue depth, dispatch/eviction/completion counters and the
// goodput-vs-wasted CPU split.
func WriteSchedMetrics(w io.Writer, st SchedulerStatus) {
	fmt.Fprintf(w, "# HELP heracles_sched_info Fleet scheduler placement policy.\n# TYPE heracles_sched_info gauge\nheracles_sched_info{policy=\"%s\"} 1\n",
		escapeLabel.Replace(st.Policy))
	schedScalar(w, "heracles_sched_queue_depth", "gauge",
		"Jobs submitted and waiting for placement.", strconv.Itoa(st.QueueDepth))
	schedScalar(w, "heracles_sched_running_jobs", "gauge",
		"Jobs currently placed on instances.", strconv.Itoa(st.Running))
	schedScalar(w, "heracles_sched_jobs_submitted_total", "counter",
		"Jobs ever submitted.", strconv.Itoa(st.Submitted))
	schedScalar(w, "heracles_sched_dispatches_total", "counter",
		"Job placements onto instances.", strconv.Itoa(st.Dispatches))
	schedScalar(w, "heracles_sched_jobs_completed_total", "counter",
		"Jobs that reached their required work.", strconv.Itoa(st.Completed))
	schedScalar(w, "heracles_sched_evictions_total", "counter",
		"Jobs evicted because a controller disabled BE.", strconv.Itoa(st.Evictions))
	schedScalar(w, "heracles_sched_jobs_failed_total", "counter",
		"Jobs that exhausted their retry budget.", strconv.Itoa(st.Failed))
	schedScalar(w, "heracles_sched_jobs_cancelled_total", "counter",
		"Jobs cancelled by the API.", strconv.Itoa(st.Cancelled))
	schedScalar(w, "heracles_sched_dispatch_aborts_total", "counter",
		"Dispatches refused by the target instance (controller flipped).", strconv.Itoa(st.Aborted))
	schedScalar(w, "heracles_sched_goodput_cpu_seconds_total", "counter",
		"BE CPU-seconds banked by completed jobs.", fmtFloat(st.GoodCPUSec))
	schedScalar(w, "heracles_sched_wasted_cpu_seconds_total", "counter",
		"BE CPU-seconds discarded by evictions and cancellations.", fmtFloat(st.WastedCPUSec))
	schedScalar(w, "heracles_sched_queue_delay_mean_seconds", "gauge",
		"Mean dispatchable-to-dispatched wait.", fmtFloat(st.MeanQueueDelayS))
	schedScalar(w, "heracles_sched_tick_panics_total", "counter",
		"Dispatch-loop ticks that panicked and were recovered.", strconv.Itoa(st.TickPanics))
}

// WriteEpochSchedMetrics renders the shared epoch scheduler's exposition
// block: pool size, heap depth, dispatch and epoch counters, and the
// overload lag signal.
func WriteEpochSchedMetrics(w io.Writer, st EpochSchedStatus) {
	schedScalar(w, "heracles_epoch_sched_drivers", "gauge",
		"Worker goroutines in the shared epoch-scheduler pool.", strconv.Itoa(st.Drivers))
	schedScalar(w, "heracles_epoch_sched_queue_depth", "gauge",
		"Entries queued in the epoch heap (scheduled instances plus pending restarts).", strconv.Itoa(st.QueueDepth))
	schedScalar(w, "heracles_epoch_sched_slices_total", "counter",
		"Slices dispatched to epoch workers.", strconv.FormatInt(st.Slices, 10))
	schedScalar(w, "heracles_epoch_sched_epochs_total", "counter",
		"Simulated epochs advanced by the pool, all instances.", strconv.FormatInt(st.Epochs, 10))
	schedScalar(w, "heracles_epoch_sched_lag_seconds", "gauge",
		"How far the earliest due entry trails the wall clock (pool overload signal).", fmtFloat(st.LagSeconds))
}

// shardGauge writes one per-shard-labelled series family.
func shardGauge(w io.Writer, name, typ, help string, sts []ShardStatus, value func(ShardStatus) string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, st := range sts {
		fmt.Fprintf(w, "%s{shard=\"%d\"} %s\n", name, st.Shard, value(st))
	}
}

// WriteShardMetrics renders the sharding exposition block: shard count,
// per-shard occupancy and queue depth, the work-stealing counters, and
// the migration total.
func WriteShardMetrics(w io.Writer, sts []ShardStatus, migrations int64) {
	schedScalar(w, "heracles_shards", "gauge",
		"Shards in this server's control plane.", strconv.Itoa(len(sts)))
	shardGauge(w, "heracles_shard_instances", "gauge",
		"Live instances homed on the shard.", sts,
		func(st ShardStatus) string { return strconv.Itoa(st.Instances) })
	shardGauge(w, "heracles_shard_queue_depth", "gauge",
		"Entries queued in the shard's epoch heap.", sts,
		func(st ShardStatus) string { return strconv.Itoa(st.EpochSched.QueueDepth) })
	shardGauge(w, "heracles_shard_sheds_total", "counter",
		"Slices this shard's dispatcher handed to an idle peer worker.", sts,
		func(st ShardStatus) string { return strconv.FormatInt(st.EpochSched.Shed, 10) })
	shardGauge(w, "heracles_shard_stolen_total", "counter",
		"Slices this shard's workers ran on behalf of other shards.", sts,
		func(st ShardStatus) string { return strconv.FormatInt(st.EpochSched.Stolen, 10) })
	schedScalar(w, "heracles_migrations_total", "counter",
		"Instances migrated off this server's shards (cross-shard or to a peer).", strconv.FormatInt(migrations, 10))
}

// MetricNames lists every metric family the exposition can emit (the
// /metrics handler sorts families by name before writing, so the order
// here is the renderers', not the wire's). The docs check uses it to
// keep docs/API.md complete, and a test keeps it in lockstep with the
// actual renderers.
func MetricNames() []string {
	names := []string{
		"heracles_instances",
		"heracles_instance_up",
		"heracles_instance_epochs_total",
		"heracles_instance_load",
		"heracles_instance_slo_seconds",
		"heracles_instance_tail_latency_seconds",
		"heracles_instance_p95_latency_seconds",
		"heracles_instance_slo_slack",
		"heracles_instance_emu",
		"heracles_instance_be_enabled",
		"heracles_instance_be_cores",
		"heracles_instance_be_ways",
		"heracles_instance_dram_util",
		"heracles_instance_power_frac_tdp",
		"heracles_instance_link_util",
		"heracles_events_dropped_total",
		"heracles_instance_health",
		"heracles_instance_restarts_total",
		"heracles_faults_injected_total",
		"heracles_controller_actions_total",
		"heracles_slo_objective",
		"heracles_slo_violations_total",
		"heracles_slo_budget_spent",
		"heracles_slo_burn_rate",
		"heracles_slo_alert_firing",
		"heracles_fleet_emu_mean",
		"heracles_fleet_slo_slack_min",
		"heracles_fleet_slo_budget_spent_max",
		"heracles_fleet_slo_pages_firing",
		"heracles_sched_info",
		"heracles_sched_queue_depth",
		"heracles_sched_running_jobs",
		"heracles_sched_jobs_submitted_total",
		"heracles_sched_dispatches_total",
		"heracles_sched_jobs_completed_total",
		"heracles_sched_evictions_total",
		"heracles_sched_jobs_failed_total",
		"heracles_sched_jobs_cancelled_total",
		"heracles_sched_dispatch_aborts_total",
		"heracles_sched_goodput_cpu_seconds_total",
		"heracles_sched_wasted_cpu_seconds_total",
		"heracles_sched_queue_delay_mean_seconds",
		"heracles_sched_tick_panics_total",
		"heracles_epoch_sched_drivers",
		"heracles_epoch_sched_queue_depth",
		"heracles_epoch_sched_slices_total",
		"heracles_epoch_sched_epochs_total",
		"heracles_epoch_sched_lag_seconds",
		"heracles_shards",
		"heracles_shard_instances",
		"heracles_shard_queue_depth",
		"heracles_shard_sheds_total",
		"heracles_shard_stolen_total",
		"heracles_migrations_total",
	}
	return append(names, processMetricNames()...)
}
