package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"heracles/internal/core"
	"heracles/internal/engine"
	"heracles/internal/experiment"
	"heracles/internal/machine"
	"heracles/internal/scenario"
	"heracles/internal/sched"
	"heracles/internal/slo"
	"heracles/internal/workload"
)

// ErrStopped is returned by mutation calls against an instance that has
// been stopped (deleted instance or server shutdown).
var ErrStopped = errors.New("serve: instance stopped")

// Instance states reported in Status.State.
const (
	StateRunning = "running"
	StateDone    = "done"
	// StateCrashed: the driver panicked; the supervisor is restarting it
	// from the last checkpoint.
	StateCrashed = "crashed"
	// StateQuarantined: the supervisor's circuit breaker opened after
	// repeated crashes; the instance is inspectable but frozen.
	StateQuarantined = "quarantined"
)

// SpeedMax requests free-running simulation: the scheduler advances
// epochs as fast as the machine model resolves them, with no wall-clock
// pacing.
const SpeedMax = -1

// Cadence policy of the shared epoch scheduler (DESIGN.md §13).
const (
	// stretchMax caps how far a healthy, unobserved instance stretches
	// its wakeup: up to stretchMax epochs run in one catch-up batch per
	// slice, so the epoch rate — and therefore telemetry — is unchanged
	// while wakeups get 8x cheaper.
	stretchMax = 8
	// freeRunBatch is how many epochs a free-running (SpeedMax) instance
	// steps per slice before requeueing, so free-runners round-robin the
	// worker pool instead of monopolising one driver.
	freeRunBatch = 64
	// cadenceSlackFloor: an instance whose SLO slack drops below this
	// snaps back to every-epoch ticks — a controller close to violating
	// must not be watched lazily.
	cadenceSlackFloor = 0.1
)

// BEAttachment names one best-effort task to run on an instance.
type BEAttachment struct {
	Workload string `json:"workload"`
	// Placement is "dedicated" (default), "ht-sibling" or "os-shared".
	Placement string `json:"placement,omitempty"`
}

// InstanceSpec configures a new live instance. The zero value of each
// field selects the documented default, so a minimal create request is
// just `{}`.
type InstanceSpec struct {
	Name string `json:"name,omitempty"` // display name; ids are assigned
	// LC is the latency-critical workload name (default "websearch").
	LC string `json:"lc,omitempty"`
	// BEs are the best-effort tasks installed at creation.
	BEs []BEAttachment `json:"bes,omitempty"`
	// Load is the initial offered LC load as a fraction of peak QPS.
	Load float64 `json:"load,omitempty"`
	// SLOScale tightens (< 1) or relaxes the controller-visible latency
	// target; 0 leaves the workload SLO unscaled.
	SLOScale float64 `json:"slo_scale,omitempty"`
	// Speed is the tick rate in simulated seconds per wall-clock second:
	// 1 is real time, 60 compresses a minute into a second, SpeedMax (-1)
	// free-runs. 0 selects the server default (or, when restoring from a
	// checkpoint, the checkpointed instance's speed).
	Speed float64 `json:"speed,omitempty"`
	// MaxEpochs stops the simulation after that many epochs (the
	// instance stays inspectable until deleted); 0 runs until deleted.
	MaxEpochs int `json:"max_epochs,omitempty"`
	// Compact places the instance on the single-socket efficiency
	// hardware generation instead of the reference dual-socket server.
	Compact bool `json:"compact,omitempty"`
	// Scenario, when set, drives the instance declaratively from epoch 0.
	Scenario *ScenarioSpec `json:"scenario,omitempty"`

	// Restore rebuilds the instance from a checkpoint taken with
	// POST /api/v1/instances/{id}/checkpoint: the simulation (machine,
	// controller, scenario position) continues bit-identically from the
	// snapshot, which is how instances pause/resume and migrate between
	// registries. LC, BEs, Load, SLOScale and Scenario must be unset —
	// that state comes from the checkpoint; Name, Speed and MaxEpochs
	// may override the checkpointed values.
	Restore *InstanceCheckpoint `json:"restore,omitempty"`

	// EpochHook, when set, runs in the driver worker after every
	// resolved epoch — the embedding daemon uses it to mirror actuations
	// into kernel-format files. An instance with a hook always ticks
	// every epoch (the cadence policy never stretches it). Not part of
	// the JSON API.
	EpochHook func(m *machine.Machine, tel machine.Telemetry) `json:"-"`
	// Trace, when set, receives every controller decision synchronously
	// (in addition to the SSE hub). Not part of the JSON API.
	Trace func(core.Event) `json:"-"`
}

// EpochUpdate is the per-epoch telemetry summary published on the event
// stream and embedded in Status.Last. Latencies travel in milliseconds,
// utilisations as fractions of 1.
type EpochUpdate struct {
	Instance     string  `json:"instance"`
	Epoch        uint64  `json:"epoch"`
	SimSeconds   float64 `json:"sim_seconds"`
	Load         float64 `json:"load"`
	TailMs       float64 `json:"tail_ms"`
	P95Ms        float64 `json:"p95_ms"`
	SLOMs        float64 `json:"slo_ms"`
	Slack        float64 `json:"slack"`
	EMU          float64 `json:"emu"`
	BEEnabled    bool    `json:"be_enabled"`
	BECores      int     `json:"be_cores"`
	BEWays       int     `json:"be_ways"`
	BEFreqCapGHz float64 `json:"be_freq_cap_ghz,omitempty"`
	// BEAllowed is the controller's verdict (distinct from BEEnabled,
	// which is task-level and false on a machine with no BE tasks): the
	// capacity advertisement the fleet scheduler keys dispatch on.
	BEAllowed bool `json:"be_allowed"`
	// Cumulative CPU time of retired BE tasks, split by disposition
	// (completed jobs vs evicted/departed work) — the machine-side
	// source of truth for goodput accounting.
	BEGoodCPUSec float64 `json:"be_good_cpu_s"`
	BELostCPUSec float64 `json:"be_lost_cpu_s"`
	DRAMUtil     float64 `json:"dram_util"`
	PowerFracTDP float64 `json:"power_frac_tdp"`
	LinkUtil     float64 `json:"link_util"`
}

// ControllerUpdate is one controller decision published on the event
// stream.
type ControllerUpdate struct {
	Instance  string  `json:"instance"`
	AtSeconds float64 `json:"at_seconds"`
	Loop      string  `json:"loop"`
	Action    string  `json:"action"`
	Detail    string  `json:"detail,omitempty"`
}

// LifecycleUpdate marks an instance state transition on the event stream:
// "scenario" (installed), "scenario-done", "restored" (created from a
// checkpoint, or restarted from one after a crash), "done" (MaxEpochs
// reached), "crashed" (driver panic), "quarantined" (circuit breaker
// opened) or "deleted".
type LifecycleUpdate struct {
	Instance string `json:"instance"`
	State    string `json:"state"`
	Detail   string `json:"detail,omitempty"`
}

// SLOUpdate is the payload of the "slo" SSE event, published whenever an
// alert fires or resolves: the edges of this epoch plus the tracker's
// status after them. Alert edges are pure functions of the violation
// history, so the event sequence is bit-identical across repeats,
// migrations and checkpoint/restore.
type SLOUpdate struct {
	Instance    string           `json:"instance"`
	Epoch       uint64           `json:"epoch"`
	Transitions []slo.Transition `json:"transitions"`
	Status      slo.Status       `json:"status"`
}

// SpanRecord is one epoch's phase timing breakdown, kept in a bounded
// per-instance ring served at GET /api/v1/instances/{id}/trace. All
// fields are wall-clock nanoseconds — operational telemetry outside the
// deterministic simulation state, never checkpointed.
type SpanRecord struct {
	Epoch      uint64  `json:"epoch"`
	SimSeconds float64 `json:"sim_seconds"`
	EventsNs   int64   `json:"events_ns"`
	SchedNs    int64   `json:"sched_ns"`
	NodesNs    int64   `json:"nodes_ns"`
	ReduceNs   int64   `json:"reduce_ns"`
	HookNs     int64   `json:"hook_ns,omitempty"`
	PublishNs  int64   `json:"publish_ns,omitempty"`
}

// traceRingCap bounds the span ring: the newest records win. 128 epochs
// of history costs at most ~8KB, and the ring only grows as epochs are
// actually stepped, so parked instances pay nothing.
const traceRingCap = 128

// ActionCount aggregates the controller decisions of one (loop, action)
// pair.
type ActionCount struct {
	Loop   string `json:"loop"`
	Action string `json:"action"`
	Count  int64  `json:"count"`
}

// Status is a point-in-time snapshot of one instance, safe to read while
// the simulation advances.
type Status struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	// Shard is the registry shard hosting the instance; fixed for the
	// instance's lifetime (migration restores into a fresh instance).
	Shard         int           `json:"shard"`
	LC            string        `json:"lc"`
	BEs           []string      `json:"bes"`
	Compact       bool          `json:"compact,omitempty"`
	State         string        `json:"state"`
	Speed         float64       `json:"speed"`
	Scenario      string        `json:"scenario,omitempty"`
	Epoch         uint64        `json:"epoch"`
	MaxEpochs     int           `json:"max_epochs,omitempty"`
	Last          EpochUpdate   `json:"last"`
	Actions       []ActionCount `json:"actions,omitempty"`
	DroppedEvents int64         `json:"dropped_events"`

	// SLO is the instance's error-budget snapshot: burn rates per
	// window, budget spent and the alert latches (DESIGN.md §15).
	SLO *slo.Status `json:"slo,omitempty"`

	// Supervisor health summary (see HealthStatus for the full view).
	Health         string `json:"health"`
	Crashes        int    `json:"crashes,omitempty"`
	Restarts       int    `json:"restarts,omitempty"`
	FaultsInjected int64  `json:"faults_injected,omitempty"`
}

type actionKey struct{ loop, action string }

// Instance is one live simulated machine with its Heracles controller,
// advanced by the registry's shared epoch scheduler (DESIGN.md §13): a
// worker pops the instance when its next epoch is due and steps an
// engine.Engine — the same canonical epoch loop the batch cluster runs
// drive — under stepMu, the instance's mailbox lock. All machine and
// controller mutation happens under stepMu (HTTP handlers run closures
// inline through Do), between engine Steps, so the live simulation is
// bit-identical to a batch run by construction. An instance owns no
// goroutine and no timer: parked states (done, quarantined, mid-backoff)
// cost at most one heap entry.
type Instance struct {
	id      string
	name    string
	lcName  string
	compact bool
	lab     *experiment.Lab

	eng *engine.Engine
	m   *machine.Machine
	ctl *core.Controller
	hub *Hub

	speed     float64
	interval  time.Duration // wall time per epoch; 0 = free-run
	maxEpochs uint64
	epochHook func(*machine.Machine, machine.Telemetry)

	sched *epochScheduler // the registry's shared pool
	entry *schedEntry     // this instance's single heap entry (step, restart)

	donec    chan struct{} // closed once Stop completes
	stopOnce sync.Once

	// Supervision wiring, fixed at construction.
	sup     supervisorConfig
	supSeed uint64
	trace   func(core.Event) // re-attached to the fresh controller on restart

	// stepMu is the mailbox: it serialises scheduler slices, Do closures
	// and Stop against the engine. Go's starvation-mode mutex handoff
	// keeps Do callers fair against a free-runner's batched slices.
	stepMu  sync.Mutex
	stopped bool // stepMu-guarded; terminal

	// stepMu-guarded driver state.
	doneRunning        bool
	scenarioSpec       *ScenarioSpec // JSON form of the active scenario, for checkpoints
	panicNext          bool          // armed by the driver-panic fault
	// lastCP is the supervisor's restart checkpoint in binary-envelope
	// form: flat bytes instead of a retained object graph, so parked
	// instances anchor one buffer each in the heap, and the buffer is
	// reused across refreshes.
	lastCP             []byte
	epochsSinceRestart int
	stretch            int       // current cadence stretch factor (1..stretchMax)
	batch              int       // epochs the next slice will step
	nextAt             time.Time // the due time the next slice was scheduled for
	recentFault        bool      // a fault applied in the last slice tightens cadence

	mu      sync.Mutex
	status  Status
	actions map[actionKey]int64
	// spans is the bounded epoch span-timing ring (mu-guarded): grown
	// lazily to traceRingCap, then overwritten oldest-first at spanHead.
	spans    []SpanRecord
	spanHead int
	// notec is the observable-change notification: closed and replaced
	// whenever status or health changes, so tests wait on events instead
	// of sleep-polling.
	notec chan struct{}

	// Supervisor health, mu-guarded. pendingRestart marks a scheduled
	// restart slice; crashed gates Do with ErrCrashed until the restart
	// rebuilds the engine.
	crashed        bool
	pendingRestart bool
	healthState    string
	crashes        int
	restarts       int
	consec         int
	lastErr        string
	lastCrashEpoch uint64
	faultsInjected int64
}

// engineConfig is the single-node engine configuration every instance
// (fresh or restored) runs on.
func engineConfig(lab *experiment.Lab, lcName string) engine.Config {
	return engine.Config{
		Nodes:    1,
		HW:       lab.Cfg,
		LC:       lab.LC(lcName),
		Heracles: true,
		Model:    lab.DRAMModel(lcName),
		LookupBE: lab.BE,
		Workers:  1,
		// Every live instance carries the error-budget tracker
		// (DESIGN.md §15), and its firing fast-burn page throttles fleet
		// dispatch onto the instance via the AdmitHold advertisement. The
		// tracker state travels in checkpoints, so burn rates and alert
		// latches survive restore and migration bit-identically.
		SLO: &slo.Config{Admission: true},
	}
}

// newInstance builds an instance and schedules its first slice on pool,
// the registry's shared epoch scheduler. The caller has validated the
// spec (workload names, placement names, numeric ranges, checkpoint
// contents) and resolved the lab for the requested hardware generation;
// speed is the resolved tick rate (SpeedMax for free-running), sup the
// crash-supervision tunables.
func newInstance(id string, spec InstanceSpec, lab *experiment.Lab, speed float64, sup supervisorConfig, pool *epochScheduler) (*Instance, error) {
	lcName := spec.LC
	if lcName == "" {
		lcName = "websearch"
	}
	maxEpochs := spec.MaxEpochs
	name := spec.Name
	compact := spec.Compact
	var restoredFrom string
	if cp := spec.Restore; cp != nil {
		lcName = cp.LC
		compact = cp.Compact
		if name == "" {
			name = cp.Name
		}
		if maxEpochs == 0 {
			maxEpochs = cp.MaxEpochs
		}
		restoredFrom = fmt.Sprintf("epoch %d", cp.Engine.Epoch)
	}
	i := &Instance{
		id:        id,
		name:      name,
		lcName:    lcName,
		compact:   compact,
		lab:       lab,
		hub:       NewHub(),
		speed:     speed,
		maxEpochs: uint64(max(maxEpochs, 0)),
		epochHook: spec.EpochHook,
		sched:     pool,
		donec:     make(chan struct{}),
		actions:   make(map[actionKey]int64),
		notec:     make(chan struct{}),

		sup:         sup.withDefaults(),
		supSeed:     fnvHash(id),
		trace:       spec.Trace,
		healthState: HealthHealthy,
		stretch:     1,
		batch:       1,
	}
	i.entry = pool.newEntry(i)

	if cp := spec.Restore; cp != nil {
		var sc *scenario.Scenario
		if cp.Scenario != nil {
			built, err := cp.Scenario.Build()
			if err != nil {
				return nil, fmt.Errorf("restore scenario: %w", err)
			}
			i.warmScenarioWorkloads(built)
			sc = &built
			spec2 := *cp.Scenario
			i.scenarioSpec = &spec2
		}
		rs := time.Now()
		eng, err := engine.Restore(engineConfig(lab, lcName), cp.Engine, sc)
		if err != nil {
			return nil, fmt.Errorf("restore: %w", err)
		}
		restoreHist.Observe(time.Since(rs))
		// Tasks the origin fleet scheduler owned do not survive a restore:
		// their jobs stay with (and were requeued by) that scheduler.
		pruneFleetTasks(eng, cp)
		i.eng = eng
	} else {
		cfg := engineConfig(lab, lcName)
		cfg.Load = spec.Load
		cfg.SLOScale = spec.SLOScale
		if len(spec.BEs) > 0 {
			atts := make([]engine.BEAttach, 0, len(spec.BEs))
			for _, att := range spec.BEs {
				pk, err := placementByName(att.Placement)
				if err != nil {
					return nil, err
				}
				atts = append(atts, engine.BEAttach{WL: lab.BE(att.Workload), Placement: pk})
			}
			cfg.InitialBEs = func(int) []engine.BEAttach { return atts }
		}
		i.eng = engine.New(cfg)
	}
	i.m = i.eng.Machine(0)
	i.ctl = i.eng.Controller(0)

	i.ctl.OnEvent(i.onControllerEvent)
	if spec.Trace != nil {
		i.ctl.OnEvent(spec.Trace)
	}

	if speed > 0 {
		i.interval = time.Duration(float64(i.m.Epoch()) / speed)
		if i.interval < 100*time.Microsecond {
			i.interval = 100 * time.Microsecond
		}
	}

	i.status = Status{
		ID:        id,
		Name:      name,
		LC:        lcName,
		Compact:   compact,
		State:     StateRunning,
		Speed:     speed,
		Epoch:     i.eng.Epoch(),
		MaxEpochs: maxEpochs,
		Scenario:  i.eng.ScenarioName(),
		Last:      EpochUpdate{Instance: id, SLOMs: 1e3 * i.m.SLO().Seconds(), Load: i.m.Load()},
	}
	i.status.BEs = beNames(i.m)
	if i.eng.SLOEnabled() {
		st := i.eng.SLONodeStatus(0)
		i.status.SLO = &st
	}
	if spec.Restore != nil {
		// Seed Last from the checkpointed telemetry so status is
		// meaningful before the first post-restore epoch resolves.
		i.status.Last = i.epochUpdate(i.m.Last(), i.eng.Epoch())
		if i.maxEpochs > 0 && i.eng.Epoch() >= i.maxEpochs {
			i.doneRunning = true
			i.status.State = StateDone
		}
	}

	if spec.Restore == nil && spec.Scenario != nil {
		sc, err := spec.Scenario.Build()
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		i.warmScenarioWorkloads(sc)
		i.installScenario(sc, spec.Scenario)
	}

	// Seed the supervisor's restart checkpoint before the first slice:
	// even a crash on the very first epoch has a state to restart from.
	i.status.Health = i.healthState
	i.refreshRestartCheckpoint()

	if restoredFrom != "" {
		i.publishLifecycle("restored", restoredFrom)
	}
	// Schedule the first slice: paced instances tick after one interval
	// (the old per-goroutine ticker's first-fire semantics), free-runners
	// are due immediately. A restored-as-done instance parks without ever
	// entering the heap.
	if !i.doneRunning {
		if i.interval > 0 {
			i.nextAt = time.Now().Add(i.interval)
			pool.schedule(i.entry, i.nextAt)
		} else {
			pool.schedule(i.entry, time.Now())
		}
	}
	return i, nil
}

// beNames lists the machine's BE task workload names.
func beNames(m *machine.Machine) []string {
	names := make([]string, 0, len(m.BEs()))
	for _, be := range m.BEs() {
		names = append(names, be.WL.Spec.Name)
	}
	return names
}

// placementByName parses a BE placement name.
func placementByName(name string) (workload.PlacementKind, error) {
	switch name {
	case "", workload.PlaceDedicated.String():
		return workload.PlaceDedicated, nil
	case workload.PlaceHTSibling.String():
		return workload.PlaceHTSibling, nil
	case workload.PlaceOSShared.String():
		return workload.PlaceOSShared, nil
	}
	return 0, fmt.Errorf("unknown placement %q (want dedicated, ht-sibling or os-shared)", name)
}

// ID returns the registry-assigned instance id.
func (i *Instance) ID() string { return i.id }

// setShard stamps the hosting shard into the status snapshot; the
// registry calls it once, when the instance enters a shard's map.
func (i *Instance) setShard(idx int) {
	i.mu.Lock()
	i.status.Shard = idx
	i.mu.Unlock()
}

// Subscribe attaches an event-stream consumer with the given buffer.
func (i *Instance) Subscribe(buf int) *Subscriber { return i.hub.Subscribe(buf) }

// Status returns a point-in-time snapshot.
func (i *Instance) Status() Status {
	i.mu.Lock()
	s := i.status
	s.BEs = append([]string(nil), i.status.BEs...)
	if i.status.SLO != nil {
		st := *i.status.SLO
		s.SLO = &st
	}
	s.Actions = sortedActions(i.actions)
	s.Health = i.healthState
	s.Crashes = i.crashes
	s.Restarts = i.restarts
	s.FaultsInjected = i.faultsInjected
	i.mu.Unlock()
	s.DroppedEvents = i.hub.Dropped()
	return s
}

func sortedActions(m map[actionKey]int64) []ActionCount {
	if len(m) == 0 {
		return nil
	}
	out := make([]ActionCount, 0, len(m))
	for k, n := range m {
		out = append(out, ActionCount{Loop: k.loop, Action: k.action, Count: n})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Loop != out[b].Loop {
			return out[a].Loop < out[b].Loop
		}
		return out[a].Action < out[b].Action
	})
	return out
}

// Stop removes the instance from the epoch heap — cancelling any queued
// step or mid-backoff restart slice — waits out an in-flight slice,
// closes the event hub and the engine. Safe to call more than once.
func (i *Instance) Stop() {
	i.stopOnce.Do(func() {
		i.sched.remove(i.entry)
		i.stepMu.Lock()
		i.stopped = true
		i.stepMu.Unlock()
		i.hub.Close()
		i.eng.Close()
		close(i.donec)
	})
	<-i.donec
}

// Do runs fn under the instance's mailbox lock, between engine Steps,
// and returns its error. This is the only mutation path: it serialises
// API writes with the simulation so telemetry seen before and after the
// call is causally consistent. Returns ErrStopped if the instance has
// been stopped, ErrCrashed while a crashed instance waits out its
// restart backoff, and ErrQuarantined once the circuit breaker has
// opened. A panicking closure books a supervisor crash, exactly like a
// panic inside an epoch step.
func (i *Instance) Do(fn func() error) error {
	start := time.Now()
	defer func() { mailboxHist.Observe(time.Since(start)) }()
	i.stepMu.Lock()
	if i.stopped {
		i.stepMu.Unlock()
		return ErrStopped
	}
	i.mu.Lock()
	blocked := i.crashed || i.healthState == HealthQuarantined
	i.mu.Unlock()
	if blocked {
		i.stepMu.Unlock()
		return i.crashErr()
	}
	var err error
	crash := i.guard(func() { err = fn() })
	i.stepMu.Unlock()
	if crash != nil {
		// Completed asynchronously: the fleet dispatch tick calls Do while
		// holding the scheduler lock, and finishCrash's eviction callback
		// needs that same lock — synchronous completion would self-deadlock.
		// The crash gate is already closed (bookCrash ran under stepMu), so
		// callers see ErrCrashed immediately either way.
		go i.finishCrash(crash)
		return fmt.Errorf("serve: instance %s driver panicked: %v", i.id, crash.msg)
	}
	return err
}

// changed returns a channel closed at the next observable state change
// (epoch resolved, health or lifecycle transition). Waiters re-check
// their predicate, then wait again — the event-driven replacement for
// sleep-polling in tests.
func (i *Instance) changed() <-chan struct{} {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.notec
}

// notifyLocked wakes changed waiters; i.mu is held.
func (i *Instance) notifyLocked() {
	close(i.notec)
	i.notec = make(chan struct{})
}

// SetLoad changes the offered LC load target mid-flight.
func (i *Instance) SetLoad(load float64) error {
	return i.Do(func() error {
		i.m.SetLoad(load)
		return nil
	})
}

// SetSLOScale changes the controller-visible latency target mid-flight
// and returns the new effective SLO.
func (i *Instance) SetSLOScale(scale float64) (time.Duration, error) {
	var slo time.Duration
	err := i.Do(func() error {
		i.m.SetSLOScale(scale)
		slo = i.m.SLO()
		return nil
	})
	return slo, err
}

// SetDegrade injects (factor > 1) or clears (factor <= 1) LC service-time
// degradation.
func (i *Instance) SetDegrade(factor float64) error {
	return i.Do(func() error {
		i.m.SetDegrade(factor)
		return nil
	})
}

// AttachBE adds a best-effort task mid-flight, mirroring a scenario
// be-arrive event: the task inherits the controller's current enablement
// and dedicated cores are re-partitioned. The workload is resolved (and,
// on first use, calibrated) in the caller's goroutine so a cold
// calibration never stalls the tick loop.
func (i *Instance) AttachBE(att BEAttachment) error {
	pk, err := placementByName(att.Placement)
	if err != nil {
		return err
	}
	wl := i.lab.BE(att.Workload)
	return i.Do(func() error {
		enabled := i.ctl.BEEnabled() || i.m.BEEnabled()
		task := i.m.AddBE(wl, pk)
		task.Enabled = enabled
		i.m.Partition(i.m.BECoreCount())
		i.refreshBEs()
		return nil
	})
}

// DetachBE removes every BE task running the named workload and returns
// how many were removed.
func (i *Instance) DetachBE(name string) (int, error) {
	var n int
	err := i.Do(func() error {
		n = i.removeBEByName(name)
		return nil
	})
	return n, err
}

// InstallScenario starts driving the instance by the scenario from the
// next epoch, replacing any active scenario. BE workloads referenced by
// arrival events are resolved (calibrating on first use) in the caller's
// goroutine, so a be-arrive firing mid-run never stalls the tick loop.
// spec, when non-nil, is the scenario's JSON form, persisted into
// checkpoints so a restored instance can rebuild the cursor.
func (i *Instance) InstallScenario(sc scenario.Scenario, spec *ScenarioSpec) error {
	i.warmScenarioWorkloads(sc)
	return i.Do(func() error {
		i.installScenario(sc, spec)
		return nil
	})
}

// warmScenarioWorkloads pre-calibrates every BE workload the scenario's
// arrival events reference.
func (i *Instance) warmScenarioWorkloads(sc scenario.Scenario) {
	for _, ev := range sc.Events {
		if ev.Kind == scenario.EventBEArrive {
			i.lab.BE(ev.Workload)
		}
	}
}

// installScenario runs under stepMu (or during construction, before the
// instance is scheduled).
func (i *Instance) installScenario(sc scenario.Scenario, spec *ScenarioSpec) {
	i.eng.InstallScenario(sc)
	if spec != nil {
		spec2 := *spec
		i.scenarioSpec = &spec2
	} else {
		i.scenarioSpec = nil
	}
	i.mu.Lock()
	i.status.Scenario = sc.Name
	i.notifyLocked()
	i.mu.Unlock()
	i.publishLifecycle("scenario", sc.Name)
}

// removeBEByName runs under stepMu. Scheduler-owned tasks are
// off-limits: jobs are cancelled through the job API, not detached by
// workload name.
func (i *Instance) removeBEByName(name string) int {
	var departing []*machine.BETask
	for _, be := range i.m.BEs() {
		if i.eng.OwnedBE(be) {
			continue
		}
		if be.WL.Spec.Name == name {
			departing = append(departing, be)
		}
	}
	for _, be := range departing {
		i.m.RemoveBE(be)
	}
	if len(departing) > 0 {
		i.m.Partition(i.m.BECoreCount())
		i.refreshBEs()
	}
	return len(departing)
}

// refreshBEs rebuilds the status BE name list; stepMu is held.
func (i *Instance) refreshBEs() {
	names := beNames(i.m)
	i.mu.Lock()
	i.status.BEs = names
	i.notifyLocked()
	i.mu.Unlock()
}

// onControllerEvent counts the decision and publishes it to subscribers.
// It runs inside the controller's Step — under stepMu, during an engine
// Step.
func (i *Instance) onControllerEvent(e core.Event) {
	i.mu.Lock()
	i.actions[actionKey{e.Loop, e.Action}]++
	i.mu.Unlock()
	if !i.hub.HasSubscribers() {
		return
	}
	data, err := json.Marshal(ControllerUpdate{
		Instance:  i.id,
		AtSeconds: e.At.Seconds(),
		Loop:      e.Loop,
		Action:    e.Action,
		Detail:    e.Detail,
	})
	if err != nil {
		return
	}
	i.hub.Publish(Message{Event: "controller", ID: i.eng.Epoch(), Data: data})
}

// publishLifecycle may be called with or without stepMu held (the
// "deleted" transition comes straight from an HTTP goroutine), so it
// reads the epoch from the mutex-guarded status snapshot, never from
// stepMu-guarded driver state.
func (i *Instance) publishLifecycle(state, detail string) {
	if !i.hub.HasSubscribers() {
		return
	}
	data, err := json.Marshal(LifecycleUpdate{Instance: i.id, State: state, Detail: detail})
	if err != nil {
		return
	}
	i.mu.Lock()
	ep := i.status.Epoch
	i.mu.Unlock()
	i.hub.Publish(Message{Event: "lifecycle", ID: ep, Data: data})
}

// runSlice is the shared epoch scheduler's entry point (epochTask): it
// advances the instance by one catch-up batch of epochs — or performs a
// pending crash restart — under the mailbox lock, then reports when the
// next slice is due. Returning ok=false parks the instance (stopped,
// done, crashed or quarantined): no heap entry, no timer, no goroutine.
func (i *Instance) runSlice() (time.Time, bool) {
	i.stepMu.Lock()
	if i.stopped {
		i.stepMu.Unlock()
		return time.Time{}, false
	}
	i.mu.Lock()
	restart := i.pendingRestart
	i.pendingRestart = false
	quarantined := i.healthState == HealthQuarantined
	crashed := i.crashed
	i.mu.Unlock()

	switch {
	case quarantined:
		i.stepMu.Unlock()
		return time.Time{}, false
	case restart:
		if err := i.rebuildFromCheckpoint(); err != nil {
			i.quarantine(fmt.Sprintf("restart failed: %v", err))
			i.stepMu.Unlock()
			return time.Time{}, false
		}
		// Resume ticking from the restored epoch on a fresh cadence; the
		// first post-restore epoch lands one interval out, exactly like a
		// fresh instance's first tick.
		i.stretch, i.batch = 1, 1
		if i.doneRunning {
			i.stepMu.Unlock()
			return time.Time{}, false
		}
		next := time.Now()
		if i.interval > 0 {
			next = next.Add(i.interval)
		}
		i.nextAt = next
		i.stepMu.Unlock()
		return next, true
	case crashed:
		// A stale step slice racing its own crash booking: the restart
		// slice owns the entry now.
		i.stepMu.Unlock()
		return time.Time{}, false
	case i.doneRunning:
		i.stepMu.Unlock()
		return time.Time{}, false
	}

	batch := i.batch
	i.recentFault = false
	stepped := 0
	crash := i.guard(func() {
		for k := 0; k < batch && !i.doneRunning; k++ {
			i.step()
			stepped++
		}
	})
	if stepped > 0 {
		i.sched.epochs.Add(int64(stepped))
	}
	if crash != nil {
		i.stepMu.Unlock()
		i.finishCrash(crash)
		return time.Time{}, false
	}
	if i.doneRunning {
		i.stepMu.Unlock()
		return time.Time{}, false
	}
	next := i.planNext()
	i.stepMu.Unlock()
	return next, true
}

// planNext picks the next due time and batch size; stepMu is held.
// Free-runners requeue immediately with a fixed batch so they
// round-robin the pool. Paced instances stretch their wakeup when
// healthy and unobserved: a stretched slice steps `stretch` epochs in
// one catch-up batch, so the epoch rate stays exactly 1/interval and
// telemetry is bit-identical to an every-epoch ticker — only the wakeup
// frequency drops.
func (i *Instance) planNext() time.Time {
	if i.interval <= 0 {
		i.batch = freeRunBatch
		return time.Now()
	}
	st := i.nextStretch()
	i.batch = st
	next := i.nextAt.Add(time.Duration(st) * i.interval)
	if now := time.Now(); next.Before(now) {
		// Lagging (the pool is overloaded): drop the deficit rather than
		// accumulate catch-up debt, like a stalled time.Ticker dropping
		// ticks.
		next = now
	}
	i.nextAt = next
	return next
}

// nextStretch updates the staleness-weighted cadence; stepMu is held.
// Anything that wants tight observation — a subscriber on the stream, an
// epoch hook, a controller out of its steady state, thin SLO slack, a
// recent fault or crash — snaps the stretch back to every-epoch ticks;
// otherwise it doubles per clean slice up to stretchMax.
func (i *Instance) nextStretch() int {
	tight := i.recentFault || i.epochHook != nil || i.hub.HasSubscribers()
	if !tight {
		i.mu.Lock()
		healthy := i.healthState == HealthHealthy
		slack := i.status.Last.Slack
		i.mu.Unlock()
		tight = !healthy || slack < cadenceSlackFloor
	}
	if !tight && i.ctl.TelemetryState() != core.StaleOK {
		tight = true
	}
	if tight {
		i.stretch = 1
	} else if i.stretch < stretchMax {
		i.stretch *= 2
		if i.stretch > stretchMax {
			i.stretch = stretchMax
		}
	}
	return i.stretch
}

// epochUpdate renders one epoch's telemetry as the wire summary.
func (i *Instance) epochUpdate(tel machine.Telemetry, epoch uint64) EpochUpdate {
	slo := i.m.SLO().Seconds()
	up := EpochUpdate{
		Instance:     i.id,
		Epoch:        epoch,
		SimSeconds:   i.m.Clock().Now().Seconds(),
		Load:         tel.LCLoad,
		TailMs:       1e3 * tel.TailLatency.Seconds(),
		P95Ms:        1e3 * tel.Lat.P95.Seconds(),
		SLOMs:        1e3 * slo,
		EMU:          tel.EMU,
		BEEnabled:    tel.BEEnabled,
		BECores:      tel.BECores,
		BEWays:       tel.BEWays,
		BEFreqCapGHz: tel.BEFreqCap,
		BEAllowed:    i.ctl.BEEnabled(),
		BEGoodCPUSec: tel.BEGoodCPUSec,
		BELostCPUSec: tel.BELostCPUSec,
		DRAMUtil:     tel.DRAMUtil,
		PowerFracTDP: tel.PowerFracTDP,
		LinkUtil:     tel.LinkUtil,
	}
	if slo > 0 {
		up.Slack = (slo - tel.TailLatency.Seconds()) / slo
	}
	return up
}

// step advances the engine by one epoch — scenario events, the offered
// load, Machine.Step and the controller all resolve inside engine.Step,
// in exactly the order the batch layers use — then publishes the status
// snapshot and the event stream. stepMu is held.
func (i *Instance) step() {
	if i.panicNext {
		i.panicNext = false
		panic(fmt.Sprintf("injected driver panic on %s", i.id))
	}
	er := i.eng.Step()
	tel := er.Tel[0]

	if er.ScenarioDone != "" {
		i.scenarioSpec = nil
		i.mu.Lock()
		i.status.Scenario = ""
		i.mu.Unlock()
		i.publishLifecycle("scenario-done", er.ScenarioDone)
	}
	if er.EventsApplied > 0 || er.FaultsApplied > 0 {
		i.refreshBEs()
	}

	if er.FaultsApplied > 0 {
		i.recentFault = true
	}

	up := i.epochUpdate(tel, er.Epoch)
	done := i.maxEpochs > 0 && er.Epoch >= i.maxEpochs
	var sloStatus slo.Status
	if i.eng.SLOEnabled() {
		sloStatus = i.eng.SLONodeStatus(0)
	}
	i.mu.Lock()
	i.status.Epoch = er.Epoch
	i.status.Last = up
	if i.eng.SLOEnabled() {
		st := sloStatus
		i.status.SLO = &st
	}
	i.faultsInjected += int64(er.FaultsApplied)
	if done {
		i.status.State = StateDone
	}
	i.notifyLocked()
	i.mu.Unlock()

	// Supervisor bookkeeping: refresh the restart checkpoint on its
	// cadence and close the stability window.
	i.epochsSinceRestart++
	if i.epochsSinceRestart%i.sup.ckptEvery == 0 {
		i.refreshRestartCheckpoint()
	}
	i.markStable()

	var hookNs, publishNs int64
	if i.epochHook != nil {
		hs := time.Now()
		i.epochHook(i.m, tel)
		hookNs = int64(time.Since(hs))
	}
	if i.hub.HasSubscribers() {
		ps := time.Now()
		if data, err := json.Marshal(up); err == nil {
			i.hub.Publish(Message{Event: "epoch", ID: er.Epoch, Data: data})
		}
		if len(er.SLOTransitions) > 0 {
			if data, err := json.Marshal(SLOUpdate{
				Instance:    i.id,
				Epoch:       er.Epoch,
				Transitions: er.SLOTransitions,
				Status:      sloStatus,
			}); err == nil {
				i.hub.Publish(Message{Event: "slo", ID: er.Epoch, Data: data})
			}
		}
		publishNs = int64(time.Since(ps))
	}

	i.recordSpan(SpanRecord{
		Epoch:      er.Epoch,
		SimSeconds: up.SimSeconds,
		EventsNs:   er.Spans.EventsNs,
		SchedNs:    er.Spans.SchedNs,
		NodesNs:    er.Spans.NodesNs,
		ReduceNs:   er.Spans.ReduceNs,
		HookNs:     hookNs,
		PublishNs:  publishNs,
	})

	if done {
		i.doneRunning = true
		i.publishLifecycle("done", fmt.Sprintf("max_epochs %d reached", i.maxEpochs))
	}
}

// recordSpan appends one epoch's phase timings to the bounded ring.
func (i *Instance) recordSpan(rec SpanRecord) {
	i.mu.Lock()
	if len(i.spans) < traceRingCap {
		i.spans = append(i.spans, rec)
	} else {
		i.spans[i.spanHead] = rec
		i.spanHead = (i.spanHead + 1) % traceRingCap
	}
	i.mu.Unlock()
}

// TraceSpans snapshots the span ring, oldest record first.
func (i *Instance) TraceSpans() []SpanRecord {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]SpanRecord, 0, len(i.spans))
	out = append(out, i.spans[i.spanHead:]...)
	out = append(out, i.spans[:i.spanHead]...)
	return out
}

// SLOStatus reads the error-budget tracker between epochs. The bool is
// false if the instance's engine runs without budget tracking (never the
// case for instances this package builds, but restored foreign state is
// validated, not trusted).
func (i *Instance) SLOStatus() (slo.Status, bool, error) {
	var st slo.Status
	enabled := false
	err := i.Do(func() error {
		if i.eng.SLOEnabled() {
			st = i.eng.SLONodeStatus(0)
			enabled = true
		}
		return nil
	})
	return st, enabled, err
}

// --- Fleet-scheduler hooks --------------------------------------------
//
// The control plane's job scheduler treats each instance as one node of
// the fleet. Every hook funnels through Do, so scheduler activity obeys
// the same between-epochs mutation contract as the rest of the API.

// schedProbe reads the node state the dispatch loop keys on — the same
// slack/EMU advertisement the engine's own scheduler tick uses.
func (i *Instance) schedProbe() (sched.NodeState, string, error) {
	var ns sched.NodeState
	err := i.Do(func() error {
		ns = i.eng.NodeState(0)
		return nil
	})
	i.mu.Lock()
	state := i.status.State
	i.mu.Unlock()
	return ns, state, err
}

// startSchedTask installs a scheduler-dispatched BE task. It re-checks
// the controller's enablement inside the mailbox — the live fleet's
// enforcement of the never-dispatch-while-disabled invariant, since the
// controller may have flipped between the snapshot and the apply — and
// returns an error (the driver aborts the dispatch) instead of parking
// the job on a machine that will not run it. The task is marked
// engine-owned so scripted depart events and name-based detaches cannot
// pull it out from under the scheduler.
func (i *Instance) startSchedTask(wlName string) (*machine.BETask, error) {
	wl := i.lab.BE(wlName) // calibrate outside the mailbox
	var task *machine.BETask
	err := i.Do(func() error {
		if !i.ctl.BEEnabled() {
			return fmt.Errorf("controller has BE disabled on %s", i.id)
		}
		task = i.m.AddBE(wl, workload.PlaceDedicated)
		task.Enabled = true
		i.eng.OwnBE(task)
		i.m.Partition(i.m.BECoreCount())
		i.refreshBEs()
		return nil
	})
	return task, err
}

// stopSchedTask retires a scheduler-owned task and returns its accrued
// CPU time: CompleteBE banks it as goodput, RemoveBE charges it as lost.
func (i *Instance) stopSchedTask(task *machine.BETask, completed bool) (float64, error) {
	var cpu float64
	err := i.Do(func() error {
		cpu = task.CPUSec
		if completed {
			i.m.CompleteBE(task)
		} else {
			i.m.RemoveBE(task)
		}
		i.eng.DisownBE(task)
		i.m.Partition(i.m.BECoreCount())
		i.refreshBEs()
		return nil
	})
	return cpu, err
}

// taskCPUSec reads a running task's accrued CPU time between epochs.
func (i *Instance) taskCPUSec(task *machine.BETask) (float64, error) {
	var cpu float64
	err := i.Do(func() error {
		cpu = task.CPUSec
		return nil
	})
	return cpu, err
}

// publishScheduler emits a scheduler decision on the instance's event
// stream. Called from the fleet dispatch tick; like the "deleted"
// lifecycle event, it reads the epoch from the mutex-guarded snapshot.
func (i *Instance) publishScheduler(up SchedulerUpdate) {
	if !i.hub.HasSubscribers() {
		return
	}
	data, err := json.Marshal(up)
	if err != nil {
		return
	}
	i.mu.Lock()
	ep := i.status.Epoch
	i.mu.Unlock()
	i.hub.Publish(Message{Event: "scheduler", ID: ep, Data: data})
}
