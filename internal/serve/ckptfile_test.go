package serve

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testCkpt(epoch int) *InstanceCheckpoint {
	return &InstanceCheckpoint{Version: 1, Name: "t", LC: "websearch", MaxEpochs: epoch}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	cp := testCkpt(42)
	data, err := EncodeCheckpointFile(cp)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeCheckpointFile(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.LC != cp.LC || got.MaxEpochs != cp.MaxEpochs || got.Name != cp.Name {
		t.Fatalf("roundtrip = %+v, want %+v", got, cp)
	}
}

func TestCheckpointFileRejectsCorruption(t *testing.T) {
	data, err := EncodeCheckpointFile(testCkpt(7))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	// Flip one payload byte without breaking the JSON framing: the
	// checkpoint's name "t" becomes "u". MarshalIndent may render the
	// pair with or without a space after the colon.
	bad := data
	for _, pair := range [][2]string{
		{`"name":"t"`, `"name":"u"`},
		{`"name": "t"`, `"name": "u"`},
	} {
		bad = bytes.Replace(data, []byte(pair[0]), []byte(pair[1]), 1)
		if !bytes.Equal(bad, data) {
			break
		}
	}
	if bytes.Equal(bad, data) {
		t.Fatalf("test premise broken: payload byte not flipped in %s", data)
	}
	if _, err := DecodeCheckpointFile(bad); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("decode of corrupted file = %v, want checksum mismatch", err)
	}
}

func TestCheckpointFileRejectsTruncation(t *testing.T) {
	data, err := EncodeCheckpointFile(testCkpt(7))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if _, err := DecodeCheckpointFile(data[:len(data)/2]); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("decode of truncated file = %v, want corrupt/truncated error", err)
	}
	if _, err := DecodeCheckpointFile(nil); err == nil {
		t.Fatal("decode of empty file succeeded")
	}
}

// Legacy bare-checkpoint files (written before the envelope existed)
// must stay restorable.
func TestCheckpointFileAcceptsLegacy(t *testing.T) {
	raw, err := json.Marshal(testCkpt(9))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := DecodeCheckpointFile(raw)
	if err != nil {
		t.Fatalf("decode legacy: %v", err)
	}
	if got.MaxEpochs != 9 {
		t.Fatalf("legacy decode MaxEpochs = %d, want 9", got.MaxEpochs)
	}
}

func TestCheckpointFileRotationAndFallback(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "i1.json")

	if err := WriteCheckpointFile(path, testCkpt(1)); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if err := WriteCheckpointFile(path, testCkpt(2)); err != nil {
		t.Fatalf("write 2: %v", err)
	}

	// Primary carries generation 2, the rotated file generation 1.
	cp, src, err := ReadCheckpointFallback(path)
	if err != nil || src != path || cp.MaxEpochs != 2 {
		t.Fatalf("fallback read = %+v from %q (%v), want gen 2 from primary", cp, src, err)
	}
	prev, err := ReadCheckpointFile(path + ".1")
	if err != nil || prev.MaxEpochs != 1 {
		t.Fatalf("rotated read = %+v (%v), want gen 1", prev, err)
	}

	// Corrupt the primary mid-file: the fallback restores generation 1.
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("corrupting primary: %v", err)
	}
	cp, src, err = ReadCheckpointFallback(path)
	if err != nil || src != path+".1" || cp.MaxEpochs != 1 {
		t.Fatalf("fallback after corruption = %+v from %q (%v), want gen 1 from rotated file", cp, src, err)
	}

	// Both generations corrupt: a clear error naming both.
	if err := os.WriteFile(path+".1", []byte("{half a json"), 0o644); err != nil {
		t.Fatalf("corrupting rotated: %v", err)
	}
	if _, _, err := ReadCheckpointFallback(path); err == nil || !strings.Contains(err.Error(), "fallback") {
		t.Fatalf("fallback with both corrupt = %v, want combined error", err)
	}

	// Missing primary with no rotated file: plain not-exist error.
	missing := filepath.Join(dir, "nope.json")
	if _, _, err := ReadCheckpointFallback(missing); !os.IsNotExist(err) {
		t.Fatalf("fallback on missing file = %v, want not-exist", err)
	}
}
