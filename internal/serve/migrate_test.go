package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// migrationSpec is a state-rich run: a flash crowd on top of flat load,
// a BE task arriving and departing, and an SLO tightening — so the
// engine state a migration must carry is far from trivial.
func migrationSpec(speed float64) InstanceSpec {
	return InstanceSpec{
		Load:      0.3,
		Speed:     speed,
		MaxEpochs: 130,
		Scenario: &ScenarioSpec{
			Name:      "migration-mix",
			DurationS: 120,
			Load: &ShapeSpec{
				Kind: "sum",
				Terms: []ShapeSpec{
					{Kind: "flat", Value: 0.3},
					{Kind: "flashcrowd", StartS: 60, RiseS: 10, HoldS: 10, FallS: 10, Amp: 0.4},
				},
				Clamp: &ClampSpec{Lo: 0, Hi: 0.85},
			},
			Events: []EventSpec{
				{AtS: 30, Kind: "be-arrive", Workload: "brain"},
				{AtS: 60, Kind: "slo-scale", Factor: 0.8},
				{AtS: 90, Kind: "be-depart", Workload: "brain"},
			},
		},
	}
}

// migrationPace runs an epoch every ~2ms of wall time: slow enough that
// the test migrates the instance mid-run, fast enough that 130 epochs
// finish in well under a second.
const migrationPace = 500

// finalEngineJSON waits for the instance to finish and returns its full
// engine checkpoint — telemetry rings, controller state, scenario
// cursor, BE scheduler accounting — as canonical JSON. Byte equality of
// this blob is the bit-identity pin.
func finalEngineJSON(t *testing.T, inst *Instance) []byte {
	t.Helper()
	awaitInstance(t, inst, "run complete", func() bool {
		return inst.Status().State == StateDone
	})
	cp, err := inst.Checkpoint()
	if err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	b, err := json.Marshal(cp.Engine)
	if err != nil {
		t.Fatalf("marshal engine state: %v", err)
	}
	return b
}

// referenceEngineJSON free-runs the migration spec to completion on an
// untouched single-shard server.
func referenceEngineJSON(t *testing.T) []byte {
	t.Helper()
	ref := New(Config{Lab: testLab})
	t.Cleanup(ref.Close)
	inst, err := ref.CreateInstance(migrationSpec(SpeedMax))
	if err != nil {
		t.Fatalf("reference create: %v", err)
	}
	return finalEngineJSON(t, inst)
}

// TestMigrateCrossShardBitIdentical migrates a paced instance across
// shards twice mid-run and pins its final engine state — telemetry and
// scheduler accounting included — bit-identical to a run that never
// moved. The engine is deterministic and wall-clock-free, so a correct
// checkpoint/restore migration must not perturb a single byte.
func TestMigrateCrossShardBitIdentical(t *testing.T) {
	want := referenceEngineJSON(t)

	s := New(Config{Lab: testLab, Shards: 4})
	t.Cleanup(s.Close)
	inst, err := s.CreateInstance(migrationSpec(migrationPace))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	cur := inst
	for hop, minEpoch := range []uint64{30, 80} {
		awaitInstance(t, cur, "mid-run epoch reached", func() bool {
			return cur.Status().Epoch >= minEpoch
		})
		from, ok := s.Registry().HomeShard(cur.ID())
		if !ok {
			t.Fatalf("hop %d: instance %s has no home shard", hop, cur.ID())
		}
		target := (from + 1) % s.Registry().ShardCount()
		res, err := s.MigrateToShard(cur.ID(), target)
		if err != nil {
			t.Fatalf("hop %d: migrate: %v", hop, err)
		}
		if res.FromShard != from || res.ToShard != target {
			t.Fatalf("hop %d: migrated %d -> %d, want %d -> %d", hop, res.FromShard, res.ToShard, from, target)
		}
		next, ok := s.Registry().Get(res.To)
		if !ok {
			t.Fatalf("hop %d: restored instance %s not in registry", hop, res.To)
		}
		if got := next.Status().Shard; got != target {
			t.Fatalf("hop %d: restored instance reports shard %d, want %d", hop, got, target)
		}
		if home, _ := s.Registry().HomeShard(res.To); home != target {
			t.Fatalf("hop %d: registry homes restored instance on %d, want %d", hop, home, target)
		}
		if _, ok := s.Registry().Get(res.From); ok {
			t.Fatalf("hop %d: origin instance %s still registered", hop, res.From)
		}
		cur = next
	}
	if got := s.Registry().Migrations(); got != 2 {
		t.Fatalf("migration counter = %d, want 2", got)
	}
	got := finalEngineJSON(t, cur)
	if !bytes.Equal(got, want) {
		t.Fatalf("cross-shard migration diverged from the unmigrated run:\n got  %d bytes %s\n want %d bytes %s",
			len(got), trimJSON(got), len(want), trimJSON(want))
	}
}

// TestMigrateCrossDaemonBitIdentical migrates a paced instance from one
// in-process daemon to a second over HTTP mid-run, then back again, and
// pins the final engine state bit-identical to a run that never moved.
func TestMigrateCrossDaemonBitIdentical(t *testing.T) {
	want := referenceEngineJSON(t)

	s1 := New(Config{Lab: testLab, Shards: 2})
	t.Cleanup(s1.Close)
	s2 := New(Config{Lab: testLab, Shards: 2})
	t.Cleanup(s2.Close)
	ts1 := httptest.NewServer(s1.Handler())
	t.Cleanup(ts1.Close)
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)

	inst, err := s1.CreateInstance(migrationSpec(migrationPace))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	awaitInstance(t, inst, "mid-run epoch reached", func() bool {
		return inst.Status().Epoch >= 30
	})
	res, err := s1.MigrateToPeer(inst.ID(), ts2.URL)
	if err != nil {
		t.Fatalf("migrate to peer: %v", err)
	}
	if res.Peer != ts2.URL {
		t.Fatalf("result peer = %q, want %q", res.Peer, ts2.URL)
	}
	if _, ok := s1.Registry().Get(res.From); ok {
		t.Fatalf("origin instance %s still registered on the source daemon", res.From)
	}
	hosted, ok := s2.Registry().Get(res.To)
	if !ok {
		t.Fatalf("restored instance %s not on the peer daemon", res.To)
	}

	// And back: the second hop starts from the restored copy's state, so
	// surviving it proves the shipped checkpoint was complete.
	awaitInstance(t, hosted, "mid-run epoch reached on peer", func() bool {
		return hosted.Status().Epoch >= 80
	})
	res, err = s2.MigrateToPeer(hosted.ID(), ts1.URL)
	if err != nil {
		t.Fatalf("migrate back: %v", err)
	}
	home, ok := s1.Registry().Get(res.To)
	if !ok {
		t.Fatalf("twice-migrated instance %s not back on the first daemon", res.To)
	}
	if s1.Registry().Migrations() != 1 || s2.Registry().Migrations() != 1 {
		t.Fatalf("migration counters = %d/%d, want 1/1",
			s1.Registry().Migrations(), s2.Registry().Migrations())
	}
	got := finalEngineJSON(t, home)
	if !bytes.Equal(got, want) {
		t.Fatalf("cross-daemon migration diverged from the unmigrated run:\n got  %d bytes %s\n want %d bytes %s",
			len(got), trimJSON(got), len(want), trimJSON(want))
	}
}

// trimJSON keeps failure output readable: engine checkpoints run to
// hundreds of KB.
func trimJSON(b []byte) string {
	const max = 512
	if len(b) <= max {
		return string(b)
	}
	return string(b[:max]) + "..."
}
