package serve

import (
	"fmt"
	"sync"

	"heracles/internal/parallel"
)

// Registry is the instance pool: it assigns ids, tracks live instances in
// creation order, owns the shared epoch scheduler that drives them, and
// fans snapshot and shutdown work out over the shared parallel worker
// primitive so a control plane with many instances snapshots and stops
// them concurrently.
type Registry struct {
	mu      sync.Mutex
	seq     int
	pending int // reserved ids whose instances are still being built
	insts   map[string]*Instance
	order   []string
	workers int
	sched   *epochScheduler
}

// NewRegistry returns an empty registry with a running epoch-scheduler
// pool. workers bounds snapshot and shutdown fan-out (0 selects
// parallel.DefaultWorkers); drivers is the epoch worker pool size (0
// selects GOMAXPROCS).
func NewRegistry(workers, drivers int) *Registry {
	return &Registry{
		insts:   make(map[string]*Instance),
		workers: workers,
		sched:   newEpochScheduler(drivers),
	}
}

// SchedStatus snapshots the shared epoch scheduler.
func (r *Registry) SchedStatus() EpochSchedStatus {
	return r.sched.status()
}

// Reserve claims the next instance id ("i1", "i2", ...) against the pool
// cap (maxN <= 0 means uncapped). Counting live plus in-flight
// reservations under one lock makes the cap exact even for concurrent
// creates, while keeping instance construction — which may calibrate
// workloads — outside the registry lock. A reservation ends with Put or
// Unreserve.
func (r *Registry) Reserve(maxN int) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if maxN > 0 && len(r.insts)+r.pending >= maxN {
		return "", false
	}
	r.pending++
	r.seq++
	return fmt.Sprintf("i%d", r.seq), true
}

// Unreserve releases a reservation whose instance failed to build.
func (r *Registry) Unreserve() {
	r.mu.Lock()
	r.pending--
	r.mu.Unlock()
}

// Put inserts a built instance, consuming its reservation.
func (r *Registry) Put(inst *Instance) {
	r.mu.Lock()
	r.pending--
	r.insts[inst.ID()] = inst
	r.order = append(r.order, inst.ID())
	r.mu.Unlock()
}

// Get returns the instance with the given id.
func (r *Registry) Get(id string) (*Instance, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	inst, ok := r.insts[id]
	return inst, ok
}

// Remove detaches the instance from the registry and returns it; the
// caller stops it. Returns false if the id is unknown.
func (r *Registry) Remove(id string) (*Instance, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	inst, ok := r.insts[id]
	if !ok {
		return nil, false
	}
	delete(r.insts, id)
	for j, oid := range r.order {
		if oid == id {
			r.order = append(r.order[:j], r.order[j+1:]...)
			break
		}
	}
	return inst, true
}

// Len returns the number of live instances.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.insts)
}

// listLocked snapshots the live instances in creation order; the caller
// holds r.mu.
func (r *Registry) listLocked() []*Instance {
	out := make([]*Instance, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.insts[id])
	}
	return out
}

// List returns the live instances in creation order.
func (r *Registry) List() []*Instance {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.listLocked()
}

// Statuses snapshots every instance concurrently, in creation order.
func (r *Registry) Statuses() []Status {
	insts := r.List()
	out := make([]Status, len(insts))
	parallel.ForEach(r.workers, len(insts), func(i int) {
		out[i] = insts[i].Status()
	})
	return out
}

// Close stops every instance concurrently, empties the registry and
// shuts the epoch-scheduler pool down. The pool stops last: Stop needs
// live workers to finish any in-flight slices it must wait out.
func (r *Registry) Close() {
	r.mu.Lock()
	insts := r.listLocked()
	r.insts = make(map[string]*Instance)
	r.order = nil
	r.mu.Unlock()
	parallel.ForEach(r.workers, len(insts), func(i int) {
		insts[i].Stop()
	})
	r.sched.stop()
}
