package serve

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"heracles/internal/chash"
	"heracles/internal/parallel"
)

// shardSeed seeds the registry's consistent-hash placement table. It is
// fixed so placement is a pure function of (instance id, shard count):
// two daemons configured alike place the same ids on the same shards,
// which is what makes placement reproducible across restarts and tests.
const shardSeed = 0x48657261636c6573 // "Heracles"

// shard is one isolated domain of the control plane: its own epoch
// scheduler (heap + worker pool), its own lifecycle SSE hub and its own
// slice of the instance map. Instances are pinned to a shard by the
// registry's consistent-hash table at creation; migration is the only
// way an instance's state moves between shards (as a new instance
// restored from a checkpoint). Shard pools are wired as peers, so a hot
// shard's due slices execute on an idle sibling's workers.
type shard struct {
	idx   int
	sched *epochScheduler
	hub   *Hub

	mu    sync.Mutex
	insts map[string]*Instance
	order []string
	seq   uint64 // lifecycle event ids on the shard hub
}

// ShardEvent is one shard-lifecycle message published on the shard's
// SSE hub (GET /api/v1/shards/{shard}/stream): instance arrivals,
// departures and migrations in and out of the shard.
type ShardEvent struct {
	Shard    int    `json:"shard"`
	Instance string `json:"instance"`
	Event    string `json:"event"` // created | deleted | migrate-in | migrate-out
	Detail   string `json:"detail,omitempty"`
}

// publish emits a shard-lifecycle event to the shard hub's subscribers.
func (sh *shard) publish(event, instID, detail string) {
	if !sh.hub.HasSubscribers() {
		return
	}
	data, err := json.Marshal(ShardEvent{Shard: sh.idx, Instance: instID, Event: event, Detail: detail})
	if err != nil {
		return
	}
	sh.mu.Lock()
	sh.seq++
	id := sh.seq
	sh.mu.Unlock()
	sh.hub.Publish(Message{Event: event, ID: id, Data: data})
}

// add installs a built instance into the shard's map.
func (sh *shard) add(inst *Instance) {
	sh.mu.Lock()
	sh.insts[inst.ID()] = inst
	sh.order = append(sh.order, inst.ID())
	sh.mu.Unlock()
}

// drop removes an instance from the shard's map.
func (sh *shard) drop(id string) {
	sh.mu.Lock()
	delete(sh.insts, id)
	for j, oid := range sh.order {
		if oid == id {
			sh.order = append(sh.order[:j], sh.order[j+1:]...)
			break
		}
	}
	sh.mu.Unlock()
}

// list snapshots the shard's instances in shard-arrival order — the
// per-shard fleet dispatcher ticks over exactly this set.
func (sh *shard) list() []*Instance {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([]*Instance, 0, len(sh.order))
	for _, id := range sh.order {
		out = append(out, sh.insts[id])
	}
	return out
}

func (sh *shard) size() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.insts)
}

// ShardStatus is one shard's health snapshot, reported by
// GET /api/v1/shards and the heracles_shard_* metric families.
type ShardStatus struct {
	Shard      int              `json:"shard"`
	Instances  int              `json:"instances"`
	EpochSched EpochSchedStatus `json:"epoch_scheduler"`
	// Sched is the shard's fleet job scheduler accounting; nil when the
	// snapshot comes from a bare registry (the server fills it in).
	Sched *SchedulerStatus `json:"sched,omitempty"`
}

// Registry is the instance pool: it assigns ids, tracks live instances
// in creation order, and owns the per-shard domains — epoch scheduler,
// lifecycle hub, instance map — behind a consistent-hash instance→shard
// table. Snapshot and shutdown work fans out over the shared parallel
// worker primitive so a control plane with many instances snapshots and
// stops them concurrently.
type Registry struct {
	mu      sync.Mutex
	seq     int
	pending int // reserved ids whose instances are still being built
	insts   map[string]*Instance
	order   []string
	homes   map[string]int // id → shard actually hosting it (migrations override the hash)
	workers int

	shards []*shard
	table  *chash.Table

	migrations atomic.Int64 // completed migrations out of or across this registry
}

// NewRegistry returns an empty registry with one running epoch-scheduler
// pool per shard. workers bounds snapshot and shutdown fan-out (0
// selects parallel.DefaultWorkers); drivers is the total epoch worker
// budget (0 selects GOMAXPROCS), divided across shards with a floor of
// one driver each; nshards <= 0 selects a single shard.
func NewRegistry(workers, drivers, nshards int) *Registry {
	if nshards <= 0 {
		nshards = 1
	}
	r := &Registry{
		insts:   make(map[string]*Instance),
		homes:   make(map[string]int),
		workers: workers,
	}
	members := make([]string, nshards)
	for i := 0; i < nshards; i++ {
		members[i] = fmt.Sprintf("s%d", i)
	}
	r.table = chash.New(shardSeed, members...)
	for i := 0; i < nshards; i++ {
		r.shards = append(r.shards, &shard{
			idx:   i,
			sched: newEpochScheduler(shardDrivers(drivers, i, nshards)),
			hub:   NewHub(),
			insts: make(map[string]*Instance),
		})
	}
	// Wire every pool's peers for work-stealing. The slices are built
	// before any instance exists, so the peer lists are immutable by the
	// time a dispatcher can read them.
	for i, sh := range r.shards {
		for j, other := range r.shards {
			if i != j {
				sh.sched.peers = append(sh.sched.peers, other.sched)
			}
		}
	}
	return r
}

// shardDrivers splits the total driver budget across shards: every
// shard gets at least one worker, and the remainder lands on the lowest
// shard indices.
func shardDrivers(total, idx, nshards int) int {
	if total <= 0 {
		total = 0 // newEpochScheduler resolves 0 to GOMAXPROCS per shard
	}
	if total == 0 {
		if nshards == 1 {
			return 0
		}
		// A multi-shard registry must not multiply the default budget by
		// the shard count: split GOMAXPROCS like an explicit total.
		total = defaultDrivers()
	}
	per := total / nshards
	if idx < total%nshards {
		per++
	}
	if per < 1 {
		per = 1
	}
	return per
}

// ShardCount returns the number of shards.
func (r *Registry) ShardCount() int { return len(r.shards) }

// HomeShard returns the shard currently hosting id.
func (r *Registry) HomeShard(id string) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx, ok := r.homes[id]
	return idx, ok
}

// PlaceShard returns the consistent-hash home for an id — where a fresh
// instance with that id lands. Migrated instances may live elsewhere;
// HomeShard reports actual placement.
func (r *Registry) PlaceShard(id string) int { return r.table.PlaceIndex(id) }

// SchedStatus aggregates the per-shard epoch schedulers: counters sum,
// lag reports the worst shard.
func (r *Registry) SchedStatus() EpochSchedStatus {
	var st EpochSchedStatus
	for i, sh := range r.shards {
		if i == 0 {
			st = sh.sched.status()
		} else {
			st = st.merge(sh.sched.status())
		}
	}
	return st
}

// ShardStatuses snapshots every shard.
func (r *Registry) ShardStatuses() []ShardStatus {
	out := make([]ShardStatus, len(r.shards))
	for i, sh := range r.shards {
		out[i] = ShardStatus{Shard: i, Instances: sh.size(), EpochSched: sh.sched.status()}
	}
	return out
}

// Migrations returns the number of completed migrations.
func (r *Registry) Migrations() int64 { return r.migrations.Load() }

// noteMigration counts a completed migration.
func (r *Registry) noteMigration() { r.migrations.Add(1) }

// queueDepth sums every shard's epoch-heap depth; tests use it to
// assert the pools drained back to baseline.
func (r *Registry) queueDepth() int {
	n := 0
	for _, sh := range r.shards {
		n += sh.sched.depth()
	}
	return n
}

// shardAt resolves a shard index.
func (r *Registry) shardAt(idx int) (*shard, bool) {
	if idx < 0 || idx >= len(r.shards) {
		return nil, false
	}
	return r.shards[idx], true
}

// ShardHub returns the shard's lifecycle SSE hub.
func (r *Registry) ShardHub(idx int) (*Hub, bool) {
	sh, ok := r.shardAt(idx)
	if !ok {
		return nil, false
	}
	return sh.hub, true
}

// Reserve claims the next instance id ("i1", "i2", ...) against the pool
// cap (maxN <= 0 means uncapped). Counting live plus in-flight
// reservations under one lock makes the cap exact even for concurrent
// creates, while keeping instance construction — which may calibrate
// workloads — outside the registry lock. A reservation ends with Put or
// Unreserve.
func (r *Registry) Reserve(maxN int) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if maxN > 0 && len(r.insts)+r.pending >= maxN {
		return "", false
	}
	r.pending++
	r.seq++
	return fmt.Sprintf("i%d", r.seq), true
}

// Unreserve releases a reservation whose instance failed to build.
func (r *Registry) Unreserve() {
	r.mu.Lock()
	r.pending--
	r.mu.Unlock()
}

// Put inserts a built instance on its consistent-hash home shard,
// consuming its reservation.
func (r *Registry) Put(inst *Instance) {
	r.put(inst, r.table.PlaceIndex(inst.ID()), true, "created", "")
}

// PutShard inserts a built instance on an explicit shard — the
// migrate-in path — consuming its reservation.
func (r *Registry) PutShard(inst *Instance, idx int, detail string) {
	r.put(inst, idx, true, "migrate-in", detail)
}

// readd reinstates a removed instance on its former shard after a
// failed peer migration; no reservation is consumed and the cap may
// transiently overshoot by the one returning instance.
func (r *Registry) readd(inst *Instance, idx int) {
	r.put(inst, idx, false, "migrate-return", "")
}

func (r *Registry) put(inst *Instance, idx int, reserved bool, event, detail string) {
	sh := r.shards[idx]
	inst.setShard(idx)
	r.mu.Lock()
	if reserved {
		r.pending--
	}
	r.insts[inst.ID()] = inst
	r.order = append(r.order, inst.ID())
	r.homes[inst.ID()] = idx
	r.mu.Unlock()
	sh.add(inst)
	sh.publish(event, inst.ID(), detail)
}

// Get returns the instance with the given id.
func (r *Registry) Get(id string) (*Instance, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	inst, ok := r.insts[id]
	return inst, ok
}

// Remove detaches the instance from the registry and returns it with
// the shard that hosted it; the caller stops it (or re-adds it if a
// peer migration falls through). Returns false if the id is unknown.
func (r *Registry) Remove(id string) (*Instance, int, bool) {
	r.mu.Lock()
	inst, ok := r.insts[id]
	if !ok {
		r.mu.Unlock()
		return nil, 0, false
	}
	idx := r.homes[id]
	delete(r.insts, id)
	delete(r.homes, id)
	for j, oid := range r.order {
		if oid == id {
			r.order = append(r.order[:j], r.order[j+1:]...)
			break
		}
	}
	r.mu.Unlock()
	r.shards[idx].drop(id)
	return inst, idx, true
}

// Len returns the number of live instances.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.insts)
}

// listLocked snapshots the live instances in creation order; the caller
// holds r.mu.
func (r *Registry) listLocked() []*Instance {
	out := make([]*Instance, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.insts[id])
	}
	return out
}

// List returns the live instances in creation order.
func (r *Registry) List() []*Instance {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.listLocked()
}

// Statuses snapshots every instance concurrently, in creation order.
func (r *Registry) Statuses() []Status {
	insts := r.List()
	out := make([]Status, len(insts))
	parallel.ForEach(r.workers, len(insts), func(i int) {
		out[i] = insts[i].Status()
	})
	return out
}

// Close stops every instance concurrently, empties the registry and
// shuts the per-shard epoch-scheduler pools down. The pools stop last:
// Stop needs live workers to finish any in-flight slices it must wait
// out — and they stop together, because a stopping shard's entries may
// be executing on a peer's workers.
func (r *Registry) Close() {
	r.mu.Lock()
	insts := r.listLocked()
	r.insts = make(map[string]*Instance)
	r.homes = make(map[string]int)
	r.order = nil
	r.mu.Unlock()
	for _, sh := range r.shards {
		sh.mu.Lock()
		sh.insts = make(map[string]*Instance)
		sh.order = nil
		sh.mu.Unlock()
	}
	parallel.ForEach(r.workers, len(insts), func(i int) {
		insts[i].Stop()
	})
	for _, sh := range r.shards {
		sh.sched.stop()
	}
	for _, sh := range r.shards {
		sh.hub.Close()
	}
}
