package serve

import (
	"encoding/json"
	"fmt"
	"hash/crc32"

	"heracles/internal/codec"
	"heracles/internal/engine"
)

// The binary checkpoint file format (DESIGN.md §16): the envelope the
// hot checkpoint paths use instead of the JSON one in ckptfile.go. Same
// guarantees — a version, a CRC32-C over the payload, refuse-don't-trust
// on any mismatch — but the payload is the binary InstanceCheckpoint
// encoding, which is several times faster and orders of magnitude
// lighter on allocation than reflection-driven JSON. Readers auto-detect
// the format by magic, so a checkpoint directory can mix generations
// freely and JSON stays fully supported as the interchange form.
//
// Layout: 4-byte magic "HRCF", uint16 envelope version, uint32 CRC32-C
// over everything after the header, then the payload:
//
//	i64 checkpoint version, string name, string lc, bool compact,
//	f64 speed, i64 max epochs,
//	presence byte + uint32-prefixed ScenarioSpec JSON,
//	uint32-prefixed fleet task indexes,
//	presence byte + uint32-prefixed engine binary checkpoint (HRCB).
//
// The scenario spec stays JSON inside the binary envelope deliberately:
// it is a small, schema-bearing operator artifact (the same bytes the
// create API accepts), not bulk state worth a hand-rolled layout.

// binaryFileMagic distinguishes binary checkpoint files from JSON ones
// (JSON always opens with '{' or whitespace).
var binaryFileMagic = [4]byte{'H', 'R', 'C', 'F'}

// BinaryCheckpointFileVersion is the binary envelope format version.
const BinaryCheckpointFileVersion = 1

// binaryFileHeaderLen: magic + u16 version + u32 CRC.
const binaryFileHeaderLen = 4 + 2 + 4

// IsBinaryCheckpointFile reports whether data begins with the binary
// checkpoint file magic.
func IsBinaryCheckpointFile(data []byte) bool {
	return len(data) >= 4 && [4]byte(data[:4]) == binaryFileMagic
}

// EncodeCheckpointFileBinary serialises a checkpoint into its binary
// enveloped file form.
func EncodeCheckpointFileBinary(cp *InstanceCheckpoint) ([]byte, error) {
	return AppendCheckpointFileBinary(nil, cp)
}

// AppendCheckpointFileBinary serialises a checkpoint into its binary
// enveloped file form, appending to buf (pass scratch from a previous
// encode to amortise allocation).
func AppendCheckpointFileBinary(buf []byte, cp *InstanceCheckpoint) ([]byte, error) {
	var scJSON []byte
	if cp.Scenario != nil {
		var err error
		if scJSON, err = json.Marshal(cp.Scenario); err != nil {
			return nil, fmt.Errorf("encode checkpoint scenario spec: %w", err)
		}
	}

	w := codec.NewWriter(buf)
	start := w.Len()
	w.U8(binaryFileMagic[0])
	w.U8(binaryFileMagic[1])
	w.U8(binaryFileMagic[2])
	w.U8(binaryFileMagic[3])
	w.U16(BinaryCheckpointFileVersion)
	crcOff := w.Reserve32()

	w.Int(cp.Version)
	w.String(cp.Name)
	w.String(cp.LC)
	w.Bool(cp.Compact)
	w.F64(cp.Speed)
	w.Int(cp.MaxEpochs)
	w.Bool(cp.Scenario != nil)
	if cp.Scenario != nil {
		w.Bytes32(scJSON)
	}
	w.Ints(cp.FleetTasks)
	w.Bool(cp.Engine != nil)
	if cp.Engine != nil {
		w.Nest(cp.Engine.AppendBinary)
	}

	out := w.Bytes()
	w.Patch32(crcOff, crc32.Checksum(out[start+binaryFileHeaderLen:], crcTable))
	return out, nil
}

// decodeCheckpointFileBinary parses a binary enveloped checkpoint,
// verifying version and checksum before the payload is trusted.
// DecodeCheckpointFile routes here on magic. Malformed input of any kind
// returns an error, never a panic.
func decodeCheckpointFileBinary(data []byte) (*InstanceCheckpoint, error) {
	if len(data) < binaryFileHeaderLen {
		return nil, fmt.Errorf("checkpoint file truncated: %d bytes, envelope header is %d", len(data), binaryFileHeaderLen)
	}
	r := codec.NewReader(data[4:])
	if v := r.U16(); v != BinaryCheckpointFileVersion {
		return nil, fmt.Errorf("checkpoint file envelope version %d, this build reads version %d", v, BinaryCheckpointFileVersion)
	}
	sum := r.U32()
	if got := crc32.Checksum(data[binaryFileHeaderLen:], crcTable); got != sum {
		return nil, fmt.Errorf("checkpoint file checksum mismatch: header crc32c:%08x, payload crc32c:%08x — file is corrupt", sum, got)
	}

	cp := &InstanceCheckpoint{
		Version:   r.Int(),
		Name:      r.String(),
		LC:        r.String(),
		Compact:   r.Bool(),
		Speed:     r.F64(),
		MaxEpochs: r.Int(),
	}
	if r.Bool() {
		spec := &ScenarioSpec{}
		if raw := r.Bytes32(); r.Err() == nil {
			if err := json.Unmarshal(raw, spec); err != nil {
				return nil, fmt.Errorf("checkpoint scenario spec corrupt: %v", err)
			}
		}
		cp.Scenario = spec
	}
	cp.FleetTasks = r.Ints()
	if r.Bool() {
		raw := r.Bytes32()
		if r.Err() != nil {
			return nil, fmt.Errorf("checkpoint payload corrupt: %v", r.Err())
		}
		eng, err := engine.DecodeCheckpointBinary(raw)
		if err != nil {
			return nil, fmt.Errorf("checkpoint engine state corrupt: %v", err)
		}
		cp.Engine = eng
	}
	if err := r.Expect(); err != nil {
		return nil, fmt.Errorf("checkpoint payload corrupt: %v", err)
	}
	return cp, nil
}
