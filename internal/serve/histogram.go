package serve

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Latency histograms for the control plane's own hot paths. The type is
// hand-rolled like the rest of the exposition (the repository takes no
// dependencies): lock-free atomic buckets on power-of-two microsecond
// bounds, rendered in the Prometheus histogram text format. Observations
// are wall-clock control-plane timings — they are operational telemetry,
// deliberately outside the deterministic simulation state, and never
// travel in checkpoints.

// histBuckets is the finite bucket count: upper bounds 1µs, 2µs, 4µs, …
// 2^23µs (~8.4s), plus the implicit +Inf bucket. Power-of-two bounds
// make bucket choice a single bit-length instruction.
const histBuckets = 24

// Histogram is a concurrency-safe Prometheus histogram. The zero value
// is ready to use; fed reuses the type for its proxy latencies.
type Histogram struct {
	counts [histBuckets + 1]atomic.Int64 // per-bucket (non-cumulative); last is +Inf
	sumNs  atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := uint64(d / time.Microsecond)
	idx := 0
	if us > 1 {
		idx = bits.Len64(us - 1) // first i with us <= 2^i
	}
	if idx > histBuckets {
		idx = histBuckets // +Inf
	}
	h.counts[idx].Add(1)
	h.sumNs.Add(int64(d))
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Write renders the family: cumulative _bucket series, _sum and _count.
func (h *Histogram) Write(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, fmtFloat(math.Ldexp(1e-6, i)), cum)
	}
	cum += h.counts[histBuckets].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, fmtFloat(float64(h.sumNs.Load())/1e9))
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}

// Process-wide histograms over the control plane's hot paths. They are
// package-level because they aggregate across every instance, shard and
// scheduler in the process — the per-instance breakdown lives in the
// /trace span ring instead.
var (
	epochSliceHist Histogram // one epoch-scheduler slice (runSlice)
	mailboxHist    Histogram // one Instance.Do mailbox command, queueing included
	checkpointHist Histogram // building one instance checkpoint
	restoreHist    Histogram // rebuilding an engine from a checkpoint
	migrateHist    Histogram // one completed migration, checkpoint to restored copy
)

// WriteProcessMetrics renders the control plane's own latency
// histograms — slice, mailbox, checkpoint/restore and migration timings
// for this process.
func WriteProcessMetrics(w io.Writer) {
	epochSliceHist.Write(w, "heracles_epoch_slice_duration_seconds",
		"Wall time of one epoch-scheduler slice (a catch-up batch of epochs or a restart).")
	mailboxHist.Write(w, "heracles_mailbox_command_duration_seconds",
		"Wall time of one instance mailbox command (Do), lock wait included.")
	checkpointHist.Write(w, "heracles_checkpoint_duration_seconds",
		"Wall time to build one instance checkpoint.")
	restoreHist.Write(w, "heracles_restore_duration_seconds",
		"Wall time to rebuild an engine from a checkpoint (create-with-restore, crash restart, migration).")
	migrateHist.Write(w, "heracles_migrate_duration_seconds",
		"Wall time of one completed migration, checkpoint through restored copy.")
}

// processMetricNames lists the families WriteProcessMetrics emits.
func processMetricNames() []string {
	return []string{
		"heracles_epoch_slice_duration_seconds",
		"heracles_mailbox_command_duration_seconds",
		"heracles_checkpoint_duration_seconds",
		"heracles_restore_duration_seconds",
		"heracles_migrate_duration_seconds",
	}
}

// SortFamilies reorders a rendered exposition so metric families appear
// in lexicographic name order, regardless of which renderer emitted them
// in which sequence — scrapes diff cleanly across server versions. Each
// family must begin with its "# HELP <name> …" line, which is how every
// renderer in this package and in fed writes them.
func SortFamilies(text string) string {
	chunks := strings.Split(text, "# HELP ")
	fams := make([]string, 0, len(chunks))
	for _, c := range chunks {
		if c != "" {
			fams = append(fams, "# HELP "+c)
		}
	}
	sort.Strings(fams)
	return strings.Join(fams, "")
}
