package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// waitForJobState re-reads the job route after each dispatch tick until
// the predicate holds, returning the final status. Job state only changes
// on dispatch ticks, so waiting on the tick notification replaces the
// old sleep-poll without missing a transition.
func waitForJobState(t *testing.T, s *Server, client *http.Client, url string, what string, ok func(JobStatus) bool) JobStatus {
	t.Helper()
	deadline := time.NewTimer(30 * time.Second)
	defer deadline.Stop()
	var st JobStatus
	for {
		_, ch := s.scheds[0].tickWait()
		body := doReq(t, client, "GET", url, nil, 200)
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("job status: %v; body %s", err, body)
		}
		if ok(st) {
			return st
		}
		select {
		case <-ch:
		case <-deadline.C:
			t.Fatalf("timed out waiting for %s; last: %+v", what, st)
		}
	}
}

// TestJobLifecycleOverHTTP is the scheduler's acceptance flow: submit a
// job against a free-running instance, watch it dispatch and complete,
// see the scheduler decisions on the SSE stream and the goodput counters
// in /metrics, and exercise cancel/404/validation paths.
func TestJobLifecycleOverHTTP(t *testing.T) {
	s := New(Config{Lab: testLab, SchedInterval: 10 * time.Millisecond, SchedSeed: 3})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	// A fast (but not free-running) machine at modest load: its
	// controller enables BE within the first simulated minute, which
	// passes in well under a wall second — while the epoch-event rate
	// stays low enough that the SSE subscriber never overflows and drops
	// the scheduler events this test asserts on.
	spec := InstanceSpec{Name: "node", LC: "websearch", Load: 0.3, Speed: 500}
	body := doReq(t, client, "POST", ts.URL+"/api/v1/instances", jsonBody(t, spec), 201)
	var inst Status
	if err := json.Unmarshal(body, &inst); err != nil {
		t.Fatalf("create: %v", err)
	}

	// Attach an SSE subscriber before any scheduling happens.
	req, err := http.NewRequest("GET", ts.URL+"/api/v1/instances/"+inst.ID+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Drain the stream from the start: a free-running instance floods
	// epoch events, and an unread stream would overflow the subscriber
	// buffer and drop the scheduler events this test waits for.
	sawScheduler := make(chan SchedulerUpdate, 16)
	go func() {
		r := newSSEReader(resp.Body)
		for {
			ev, err := r.Next()
			if err != nil {
				close(sawScheduler)
				return
			}
			if ev.Event != "scheduler" {
				continue
			}
			var up SchedulerUpdate
			if json.Unmarshal(ev.Data, &up) == nil {
				select {
				case sawScheduler <- up:
				default:
				}
			}
		}
	}()

	// Validation: bad submissions are rejected before the queue sees
	// them.
	doReq(t, client, "POST", ts.URL+"/api/v1/jobs",
		jsonBody(t, JobSubmission{Workload: "nope", WorkS: 10}), 400)
	doReq(t, client, "POST", ts.URL+"/api/v1/jobs",
		jsonBody(t, JobSubmission{Workload: "brain"}), 400)

	// Submit a small job: 20 busy core-seconds completes in wall
	// milliseconds on a free-running machine.
	body = doReq(t, client, "POST", ts.URL+"/api/v1/jobs",
		jsonBody(t, JobSubmission{Name: "batch-1", Workload: "brain", WorkS: 20}), 201)
	var job JobStatus
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatalf("submit: %v; body %s", err, body)
	}
	if job.ID != 1 || job.State != "pending" || job.Demand != 1 || job.Retries != 3 {
		t.Fatalf("submitted job = %+v", job)
	}

	done := waitForJobState(t, s, client, ts.URL+"/api/v1/jobs/1", "job 1 completed", func(j JobStatus) bool {
		return j.State == "completed"
	})
	if done.CPUSec < 20 || done.Attempts != 1 {
		t.Fatalf("completed job = %+v", done)
	}

	// The job list carries it, and the scheduler status banked goodput.
	body = doReq(t, client, "GET", ts.URL+"/api/v1/jobs", nil, 200)
	if !bytes.Contains(body, []byte(`"batch-1"`)) {
		t.Fatalf("job list missing the job: %s", body)
	}
	body = doReq(t, client, "GET", ts.URL+"/api/v1/scheduler", nil, 200)
	var st SchedulerStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Policy != "slack-greedy" || st.Completed < 1 || st.GoodCPUSec < 20 {
		t.Fatalf("scheduler status = %+v", st)
	}

	// Submit a long job and cancel it; terminal jobs refuse a second
	// cancel, unknown ids 404.
	doReq(t, client, "POST", ts.URL+"/api/v1/jobs",
		jsonBody(t, JobSubmission{Name: "doomed", Workload: "streetview", WorkS: 1e7}), 201)
	waitForJobState(t, s, client, ts.URL+"/api/v1/jobs/2", "job 2 queued or running", func(j JobStatus) bool {
		return j.State == "running" || j.State == "pending"
	})
	body = doReq(t, client, "DELETE", ts.URL+"/api/v1/jobs/2", nil, 200)
	var cancelled JobStatus
	if err := json.Unmarshal(body, &cancelled); err != nil {
		t.Fatal(err)
	}
	if cancelled.State != "cancelled" {
		t.Fatalf("cancel result = %+v", cancelled)
	}
	doReq(t, client, "DELETE", ts.URL+"/api/v1/jobs/2", nil, 409)
	doReq(t, client, "DELETE", ts.URL+"/api/v1/jobs/99", nil, 404)

	// Scheduler decisions reached the instance's SSE stream.
	select {
	case up, ok := <-sawScheduler:
		if !ok {
			t.Fatal("stream closed before any scheduler event")
		}
		if up.Instance != inst.ID || up.Job == 0 || up.Action == "" {
			t.Fatalf("scheduler SSE event = %+v", up)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("no scheduler event on the SSE stream")
	}

	// /metrics exposes the scheduler block.
	metrics := string(doReq(t, client, "GET", ts.URL+"/metrics", nil, 200))
	for _, want := range []string{
		"heracles_sched_queue_depth",
		"heracles_sched_goodput_cpu_seconds_total",
		"heracles_sched_evictions_total",
		`heracles_sched_info{policy="slack-greedy"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	// Telemetry carries the machine-side disposition counters and the
	// controller verdict field. The counters land on telemetry one epoch
	// after CompleteBE runs, so wait on the instance's change events.
	live, ok := s.Registry().Get(inst.ID)
	if !ok {
		t.Fatalf("instance %s vanished from the registry", inst.ID)
	}
	awaitInstance(t, live, "completed CPU time on telemetry", func() bool {
		return live.Status().Last.BEGoodCPUSec >= 20
	})
	var got Status
	body = doReq(t, client, "GET", ts.URL+"/api/v1/instances/"+inst.ID, nil, 200)
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Last.BEGoodCPUSec < 20 || !got.Last.BEAllowed {
		t.Fatalf("telemetry missing CPU time or controller verdict: %+v", got.Last)
	}
}

// TestSchedulerSkipsDisabledInstances pins the live half of the
// dispatch invariant: an instance at saturating load (its controller
// keeps BE disabled) never receives a job.
func TestSchedulerSkipsDisabledInstances(t *testing.T) {
	s := New(Config{Lab: testLab, SchedInterval: 5 * time.Millisecond})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	// Load 0.95 is far above the controller's 0.85 disable threshold:
	// BE stays parked forever.
	doReq(t, client, "POST", ts.URL+"/api/v1/instances",
		jsonBody(t, InstanceSpec{Name: "hot", LC: "websearch", Load: 0.95, Speed: SpeedMax}), 201)
	doReq(t, client, "POST", ts.URL+"/api/v1/jobs",
		jsonBody(t, JobSubmission{Name: "starved", Workload: "brain", WorkS: 5}), 201)

	// Give the dispatch loop plenty of ticks, then require the job is
	// still queued with zero attempts.
	start, _ := s.scheds[0].tickWait()
	awaitTicks(t, s.scheds[0], "20 dispatch ticks", func(n int64) bool { return n >= start+20 })
	body := doReq(t, client, "GET", ts.URL+"/api/v1/jobs/1", nil, 200)
	var job JobStatus
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if job.State != "pending" || job.Attempts != 0 {
		t.Fatalf("job dispatched onto a BE-disabled machine: %+v", job)
	}
}
