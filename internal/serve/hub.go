package serve

import (
	"sync"
	"sync/atomic"
)

// Message is one telemetry or control-plane event ready for delivery: the
// SSE event name, a monotonically increasing id (the epoch counter for
// epoch events), and the pre-marshalled JSON payload. Payloads are
// marshalled once by the publisher and shared read-only by every
// subscriber.
type Message struct {
	Event string // "epoch", "controller", "scheduler" or "lifecycle"
	ID    uint64
	Data  []byte
}

// Hub fans an instance's event stream out to any number of subscribers.
// Publishing never blocks the simulation loop: a subscriber whose buffer
// is full loses the message and the hub counts the drop, so one slow SSE
// client cannot stall the machine's tick or other clients.
type Hub struct {
	mu      sync.Mutex
	subs    map[*Subscriber]struct{}
	closed  bool
	dropped atomic.Int64
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{subs: make(map[*Subscriber]struct{})}
}

// Subscriber is one attached consumer. Messages arrive on Ch; the channel
// is closed when the subscriber is closed or the hub shuts down.
type Subscriber struct {
	hub  *Hub
	ch   chan Message
	once sync.Once
}

// Subscribe attaches a consumer with the given buffer capacity (minimum
// 1). On a closed hub the returned subscriber's channel is already
// closed, so stream handlers attached to a stopping instance terminate
// immediately instead of blocking.
func (h *Hub) Subscribe(buf int) *Subscriber {
	if buf < 1 {
		buf = 1
	}
	s := &Subscriber{hub: h, ch: make(chan Message, buf)}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		close(s.ch)
		return s
	}
	h.subs[s] = struct{}{}
	h.mu.Unlock()
	return s
}

// Ch returns the subscriber's delivery channel.
func (s *Subscriber) Ch() <-chan Message { return s.ch }

// Close detaches the subscriber and closes its channel. Safe to call more
// than once and safe to race with hub shutdown.
func (s *Subscriber) Close() {
	s.hub.mu.Lock()
	if _, ok := s.hub.subs[s]; ok {
		delete(s.hub.subs, s)
		s.once.Do(func() { close(s.ch) })
	}
	s.hub.mu.Unlock()
}

// Publish delivers msg to every subscriber that has buffer space and
// counts a drop for each that does not. It never blocks.
func (h *Hub) Publish(msg Message) {
	h.mu.Lock()
	for s := range h.subs {
		select {
		case s.ch <- msg:
		default:
			h.dropped.Add(1)
		}
	}
	h.mu.Unlock()
}

// HasSubscribers reports whether any consumer is attached, letting the
// publisher skip JSON marshalling on unobserved instances.
func (h *Hub) HasSubscribers() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs) > 0
}

// Dropped returns the number of messages lost to full subscriber buffers.
func (h *Hub) Dropped() int64 { return h.dropped.Load() }

// Close shuts the hub down: every subscriber channel is closed and later
// Subscribe calls return already-closed subscribers.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	for s := range h.subs {
		delete(h.subs, s)
		s.once.Do(func() { close(s.ch) })
	}
	h.mu.Unlock()
}
