package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"heracles/internal/machine"
	"heracles/internal/sched"
)

// JobSubmission is the JSON body of POST /api/v1/jobs.
type JobSubmission struct {
	Name string `json:"name,omitempty"`
	// Workload is the BE workload to run ("brain", "streetview", ...).
	Workload string `json:"workload"`
	// Demand is the requested core count (admission weight; default 1).
	Demand int `json:"demand,omitempty"`
	// WorkS is the required CPU time in busy BE core-seconds.
	WorkS float64 `json:"work_s"`
	// Priority orders dispatch (higher first).
	Priority int `json:"priority,omitempty"`
	// Retries is the re-queue budget after evictions (default 3).
	Retries *int `json:"retries,omitempty"`
}

// JobStatus is the wire form of one scheduler job.
type JobStatus struct {
	ID       int     `json:"id"`
	Name     string  `json:"name,omitempty"`
	Workload string  `json:"workload"`
	State    string  `json:"state"`
	Instance string  `json:"instance,omitempty"`
	Demand   int     `json:"demand"`
	WorkS    float64 `json:"work_s"`
	Priority int     `json:"priority,omitempty"`
	Retries  int     `json:"retries"`
	Attempts int     `json:"attempts"`
	CPUSec   float64 `json:"cpu_s"`
	WastedS  float64 `json:"wasted_cpu_s"`
}

// SchedulerStatus is the wire form of GET /api/v1/scheduler.
type SchedulerStatus struct {
	Policy          string  `json:"policy"`
	QueueDepth      int     `json:"queue_depth"`
	Running         int     `json:"running"`
	Submitted       int     `json:"submitted"`
	Dispatches      int     `json:"dispatches"`
	Completed       int     `json:"completed"`
	Evictions       int     `json:"evictions"`
	Failed          int     `json:"failed"`
	Cancelled       int     `json:"cancelled"`
	Aborted         int     `json:"aborted"`
	GoodCPUSec      float64 `json:"good_cpu_s"`
	WastedCPUSec    float64 `json:"wasted_cpu_s"`
	GoodputFrac     float64 `json:"goodput_frac"`
	MeanQueueDelayS float64 `json:"mean_queue_delay_s"`
	MaxQueueDepth   int     `json:"max_queue_depth"`
	TickPanics      int     `json:"tick_panics,omitempty"`
	LastTickPanic   string  `json:"last_tick_panic,omitempty"`
}

// SchedulerUpdate is one scheduler decision published on the affected
// instance's SSE stream as a "scheduler" event.
type SchedulerUpdate struct {
	Instance string  `json:"instance"`
	Job      int     `json:"job"`
	Name     string  `json:"name,omitempty"`
	Workload string  `json:"workload"`
	Action   string  `json:"action"` // dispatch | evict | complete | fail
	Attempt  int     `json:"attempt"`
	CPUSec   float64 `json:"cpu_s"`
	Detail   string  `json:"detail,omitempty"`
}

// taskRef binds a running job to its live BE task on an instance.
type taskRef struct {
	inst *Instance
	task *machine.BETask
}

// schedDriver owns the control plane's fleet scheduler: a wall-clock
// dispatch tick over the live instance pool, run as one task on the
// shared epoch scheduler rather than on its own goroutine. The
// sched.Scheduler core is single-threaded; every access (ticks and the
// job API) serialises on mu, and all machine mutation goes through each
// instance's command mailbox — the scheduler never touches a Machine
// directly, so instance determinism is preserved.
type schedDriver struct {
	srv      *Server
	interval time.Duration
	start    time.Time

	pool  *epochScheduler
	entry *schedEntry

	mu            sync.Mutex
	s             *sched.Scheduler
	tasks         map[int]*taskRef
	tickPanics    int
	lastTickPanic string
	stopped       bool
	ticks         int64         // completed dispatch ticks
	ticknote      chan struct{} // closed and replaced after every tick

	stopOnce sync.Once
}

func newSchedDriver(srv *Server, policy sched.Policy, seed uint64, interval time.Duration) *schedDriver {
	d := &schedDriver{
		srv:      srv,
		interval: interval,
		start:    time.Now(),
		pool:     srv.reg.sched,
		s: sched.New(sched.Config{
			Policy: policy,
			Seed:   seed,
			// Live time runs on the wall clock; the defaults (30s backoff,
			// 15s grace) are sized for simulated seconds, which the served
			// instances also tick in real time by default.
		}),
		tasks:    make(map[int]*taskRef),
		ticknote: make(chan struct{}),
	}
	d.entry = d.pool.newEntry(d)
	d.pool.schedule(d.entry, time.Now().Add(d.interval))
	return d
}

// now is the scheduler clock: wall time since the driver started.
func (d *schedDriver) now() time.Duration { return time.Since(d.start) }

// stop cancels the dispatch entry and joins any in-flight tick: once
// stopped is set under mu, the tick that may still hold mu has finished
// and no further one can start (the cancelled entry never redispatches).
func (d *schedDriver) stop() {
	d.stopOnce.Do(func() {
		d.pool.remove(d.entry)
		d.mu.Lock()
		d.stopped = true
		d.mu.Unlock()
	})
}

// runSlice is the fleet dispatcher's epoch-scheduler task: one dispatch
// tick, requeued every interval. The tick itself never stretches — job
// dispatch latency is user-visible — so this entry is the one fixed
// heartbeat in the heap.
func (d *schedDriver) runSlice() (time.Time, bool) {
	d.safeTick()
	d.noteTick()
	return time.Now().Add(d.interval), true
}

// noteTick wakes tickWait waiters; tests use it to await dispatch ticks
// without sleeping.
func (d *schedDriver) noteTick() {
	d.mu.Lock()
	d.ticks++
	close(d.ticknote)
	d.ticknote = make(chan struct{})
	d.mu.Unlock()
}

// tickWait returns the completed-tick count and a channel that closes
// when the next tick completes.
func (d *schedDriver) tickWait() (int64, <-chan struct{}) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ticks, d.ticknote
}

// safeTick isolates the dispatch loop from a panicking tick: the panic
// is recorded and the next interval's tick runs anyway. tick's deferred
// unlock releases d.mu on the way out, so the job API stays live.
func (d *schedDriver) safeTick() {
	defer func() {
		if v := recover(); v != nil {
			d.mu.Lock()
			d.tickPanics++
			d.lastTickPanic = fmt.Sprint(v)
			d.mu.Unlock()
		}
	}()
	d.tick()
}

// evictCrashed force-evicts every running job whose task lives on inst.
// Called by the supervisor (finishCrash, no instance locks held) before
// the restart slice rebuilds the engine: the tasks are about to vanish
// with the discarded machine, so the jobs go back through the normal
// evict path (charging their retry budget) with the CPU time accrued so
// far. The crashed machine is frozen — its crash gate fails every
// mutation — so reading the task counters directly is safe; no mailbox
// round-trip is possible or needed.
func (d *schedDriver) evictCrashed(inst *Instance) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var ids []int
	for id, ref := range d.tasks {
		if ref.inst == inst {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		ref := d.tasks[id]
		delete(d.tasks, id)
		j, _ := d.s.Job(id)
		acts := d.s.Kill(id, d.now(), ref.task.CPUSec, "instance driver crashed")
		for _, a := range acts {
			inst.publishScheduler(SchedulerUpdate{
				Instance: inst.ID(), Job: a.Job, Name: j.Spec.Name, Workload: j.Spec.Workload,
				Action: a.Kind.String(), Attempt: j.Attempts, CPUSec: ref.task.CPUSec,
				Detail: "instance crashed",
			})
		}
	}
}

// killJobsOn force-evicts running jobs on inst whose workload matches wl
// (all of them when wl is empty), stopping their tasks through the
// mailbox. Used by fault injection so a leaf-crash or be-kill consumes
// the affected jobs' retry budgets instead of leaving them running
// against tasks the fault is about to destroy. Returns the number of
// jobs evicted.
func (d *schedDriver) killJobsOn(inst *Instance, wl string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	var ids []int
	for id, ref := range d.tasks {
		if ref.inst == inst && (wl == "" || ref.task.WL.Spec.Name == wl) {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	killed := 0
	for _, id := range ids {
		ref := d.tasks[id]
		delete(d.tasks, id)
		cpu, err := ref.inst.stopSchedTask(ref.task, false)
		if err != nil {
			cpu = ref.task.CPUSec
		}
		j, _ := d.s.Job(id)
		acts := d.s.Kill(id, d.now(), cpu, "killed by injected fault")
		killed += len(acts)
		for _, a := range acts {
			inst.publishScheduler(SchedulerUpdate{
				Instance: inst.ID(), Job: a.Job, Name: j.Spec.Name, Workload: j.Spec.Workload,
				Action: a.Kind.String(), Attempt: j.Attempts, CPUSec: cpu,
				Detail: "killed by injected fault",
			})
		}
	}
	return killed
}

// instIndex parses the registry id ("i7") into the scheduler's stable
// integer node id.
func instIndex(id string) (int, bool) {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "i"))
	return n, err == nil && n > 0
}

// tick snapshots the pool, advances the scheduler and applies its
// actions. Probes and mutations run through instance mailboxes; an
// instance that stops mid-tick simply drops out of the snapshot and its
// jobs are evicted on the spot.
func (d *schedDriver) tick() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped {
		return
	}

	insts := d.srv.reg.List()
	nodes := make([]sched.NodeState, 0, len(insts))
	byID := make(map[int]*Instance, len(insts))
	for _, in := range insts {
		id, ok := instIndex(in.ID())
		if !ok {
			continue
		}
		ns, state, err := in.schedProbe()
		if err != nil || state != StateRunning {
			continue
		}
		ns.ID = id
		nodes = append(nodes, ns)
		byID[id] = in
	}

	actions := d.s.Tick(d.now(), nodes, func(j *sched.Job) float64 {
		ref := d.tasks[j.ID]
		if ref == nil {
			return j.CPUSec
		}
		cpu, err := ref.inst.taskCPUSec(ref.task)
		if err != nil {
			return j.CPUSec
		}
		return cpu
	})

	for _, a := range actions {
		job, _ := d.s.Job(a.Job)
		switch a.Kind {
		case sched.ActionDispatch:
			in := byID[a.Node]
			if in == nil {
				d.s.Abort(a.Job, d.now())
				continue
			}
			task, err := in.startSchedTask(a.Workload)
			if err != nil {
				// The controller flipped since the snapshot (or the
				// instance stopped): hand the job back without charging
				// its retry budget.
				d.s.Abort(a.Job, d.now())
				continue
			}
			d.tasks[a.Job] = &taskRef{inst: in, task: task}
			in.publishScheduler(SchedulerUpdate{
				Instance: in.ID(), Job: a.Job, Name: job.Spec.Name, Workload: a.Workload,
				Action: a.Kind.String(), Attempt: job.Attempts,
			})
		case sched.ActionEvict, sched.ActionFail, sched.ActionComplete:
			ref := d.tasks[a.Job]
			delete(d.tasks, a.Job)
			if ref == nil {
				continue
			}
			cpu, err := ref.inst.stopSchedTask(ref.task, a.Kind == sched.ActionComplete)
			if err != nil {
				continue // instance already gone; nothing to publish
			}
			ref.inst.publishScheduler(SchedulerUpdate{
				Instance: ref.inst.ID(), Job: a.Job, Name: job.Spec.Name, Workload: a.Workload,
				Action: a.Kind.String(), Attempt: job.Attempts, CPUSec: cpu,
			})
		}
	}
}

// Submit validates and enqueues a job.
func (d *schedDriver) Submit(sub JobSubmission) JobStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	retries := 3
	if sub.Retries != nil {
		retries = *sub.Retries
	}
	id := d.s.Submit(sched.JobSpec{
		Name:     sub.Name,
		Workload: sub.Workload,
		Demand:   sub.Demand,
		Work:     time.Duration(sub.WorkS * float64(time.Second)),
		Priority: sub.Priority,
		Retries:  retries,
		Submit:   d.now(),
	})
	j, _ := d.s.Job(id)
	return d.jobStatusLocked(j)
}

// Jobs lists every job.
func (d *schedDriver) Jobs() []JobStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	jobs := d.s.Jobs()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = d.jobStatusLocked(j)
	}
	return out
}

// Job returns one job.
func (d *schedDriver) Job(id int) (JobStatus, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.s.Job(id)
	if !ok {
		return JobStatus{}, false
	}
	return d.jobStatusLocked(j), true
}

// Cancel cancels a job, stopping its task if it is running. Returns
// (status, found, cancelled): a terminal job is found but not cancelled.
func (d *schedDriver) Cancel(id int) (JobStatus, bool, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.s.Job(id)
	if !ok {
		return JobStatus{}, false, false
	}
	var accrued float64
	ref := d.tasks[id]
	if j.State == sched.JobRunning && ref != nil {
		if cpu, err := ref.inst.stopSchedTask(ref.task, false); err == nil {
			accrued = cpu
			ref.inst.publishScheduler(SchedulerUpdate{
				Instance: ref.inst.ID(), Job: id, Name: j.Spec.Name, Workload: j.Spec.Workload,
				Action: "evict", Attempt: j.Attempts, CPUSec: cpu, Detail: "cancelled",
			})
		}
		delete(d.tasks, id)
	}
	cancelled := d.s.Cancel(id, d.now(), accrued)
	j, _ = d.s.Job(id)
	return d.jobStatusLocked(j), true, cancelled
}

// Status snapshots the scheduler for the API and /metrics.
func (d *schedDriver) Status() SchedulerStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	a := d.s.Accounting()
	return SchedulerStatus{
		Policy:          d.s.Policy(),
		QueueDepth:      a.QueueDepth,
		Running:         a.Running,
		Submitted:       a.Submitted,
		Dispatches:      a.Dispatches,
		Completed:       a.Completed,
		Evictions:       a.Evictions,
		Failed:          a.Failed,
		Cancelled:       a.Cancelled,
		Aborted:         a.Aborted,
		GoodCPUSec:      a.GoodCPUSec,
		WastedCPUSec:    a.WastedCPUSec,
		GoodputFrac:     a.GoodputFrac(),
		MeanQueueDelayS: a.MeanQueueDelay().Seconds(),
		MaxQueueDepth:   a.MaxQueueDepth,
		TickPanics:      d.tickPanics,
		LastTickPanic:   d.lastTickPanic,
	}
}

// jobStatusLocked renders a job snapshot; d.mu is held.
func (d *schedDriver) jobStatusLocked(j sched.Job) JobStatus {
	st := JobStatus{
		ID:       j.ID,
		Name:     j.Spec.Name,
		Workload: j.Spec.Workload,
		State:    j.State.String(),
		Demand:   j.Spec.Demand,
		WorkS:    j.Spec.Work.Seconds(),
		Priority: j.Spec.Priority,
		Retries:  j.Spec.Retries,
		Attempts: j.Attempts,
		CPUSec:   j.CPUSec,
		WastedS:  j.WastedCPUSec,
	}
	if j.State == sched.JobRunning {
		if ref := d.tasks[j.ID]; ref != nil {
			st.Instance = ref.inst.ID()
		}
	}
	return st
}

// --- Handlers ----------------------------------------------------------

func (s *Server) handleSchedStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.Status())
}

func (s *Server) handleJobsList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.sched.Jobs()})
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var sub JobSubmission
	if !decodeBody(w, r, &sub) {
		return
	}
	if err := checkBEName(sub.Workload); err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if sub.WorkS <= 0 {
		apiError(w, http.StatusBadRequest, "work_s %v must be positive", sub.WorkS)
		return
	}
	if sub.Demand < 0 || sub.Priority < 0 || (sub.Retries != nil && *sub.Retries < 0) {
		apiError(w, http.StatusBadRequest, "demand, priority and retries must not be negative")
		return
	}
	writeJSON(w, http.StatusCreated, s.sched.Submit(sub))
}

// jobID parses {id} or writes a 404.
func jobID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 1 {
		apiError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return 0, false
	}
	return id, true
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id, ok := jobID(w, r)
	if !ok {
		return
	}
	st, found := s.sched.Job(id)
	if !found {
		apiError(w, http.StatusNotFound, "no job %d", id)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id, ok := jobID(w, r)
	if !ok {
		return
	}
	st, found, cancelled := s.sched.Cancel(id)
	switch {
	case !found:
		apiError(w, http.StatusNotFound, "no job %d", id)
	case !cancelled:
		apiError(w, http.StatusConflict, "job %d already %s", id, st.State)
	default:
		writeJSON(w, http.StatusOK, st)
	}
}
