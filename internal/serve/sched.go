package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"heracles/internal/machine"
	"heracles/internal/sched"
)

// JobSubmission is the JSON body of POST /api/v1/jobs.
type JobSubmission struct {
	Name string `json:"name,omitempty"`
	// Workload is the BE workload to run ("brain", "streetview", ...).
	Workload string `json:"workload"`
	// Demand is the requested core count (admission weight; default 1).
	Demand int `json:"demand,omitempty"`
	// WorkS is the required CPU time in busy BE core-seconds.
	WorkS float64 `json:"work_s"`
	// Priority orders dispatch (higher first).
	Priority int `json:"priority,omitempty"`
	// Retries is the re-queue budget after evictions (default 3).
	Retries *int `json:"retries,omitempty"`
}

// JobStatus is the wire form of one scheduler job. IDs are global
// across the sharded control plane: each shard's fleet scheduler issues
// local ids 1, 2, ... and the wire id interleaves them as
// (local-1)*nshards + shard + 1, so ids stay dense, unique and stable
// while every shard schedules independently.
type JobStatus struct {
	ID       int     `json:"id"`
	Shard    int     `json:"shard"`
	Name     string  `json:"name,omitempty"`
	Workload string  `json:"workload"`
	State    string  `json:"state"`
	Instance string  `json:"instance,omitempty"`
	Demand   int     `json:"demand"`
	WorkS    float64 `json:"work_s"`
	Priority int     `json:"priority,omitempty"`
	Retries  int     `json:"retries"`
	Attempts int     `json:"attempts"`
	CPUSec   float64 `json:"cpu_s"`
	WastedS  float64 `json:"wasted_cpu_s"`
}

// SchedulerStatus is the wire form of GET /api/v1/scheduler. On a
// sharded server the top-level object is the aggregate across shards
// (counters sum, delay is dispatch-weighted) and Shards carries the
// per-shard accounting.
type SchedulerStatus struct {
	Policy          string  `json:"policy"`
	QueueDepth      int     `json:"queue_depth"`
	Running         int     `json:"running"`
	Submitted       int     `json:"submitted"`
	Dispatches      int     `json:"dispatches"`
	Completed       int     `json:"completed"`
	Evictions       int     `json:"evictions"`
	Failed          int     `json:"failed"`
	Cancelled       int     `json:"cancelled"`
	Aborted         int     `json:"aborted"`
	GoodCPUSec      float64 `json:"good_cpu_s"`
	WastedCPUSec    float64 `json:"wasted_cpu_s"`
	GoodputFrac     float64 `json:"goodput_frac"`
	MeanQueueDelayS float64 `json:"mean_queue_delay_s"`
	MaxQueueDepth   int     `json:"max_queue_depth"`
	TickPanics      int     `json:"tick_panics,omitempty"`
	LastTickPanic   string  `json:"last_tick_panic,omitempty"`

	// Shards holds the per-shard accounting on a sharded server; nil on
	// per-shard entries themselves and on single-shard servers' wire
	// output for backward compatibility.
	Shards []SchedulerStatus `json:"shards,omitempty"`
}

// MergeSchedulerStatuses folds per-shard (or per-member) scheduler
// accounting into one fleet view: counters and CPU ledgers sum, the
// goodput fraction is recomputed from the summed ledgers, and the mean
// queue delay is weighted by dispatch count. The federation router uses
// the same fold across member daemons.
func MergeSchedulerStatuses(parts []SchedulerStatus) SchedulerStatus {
	var out SchedulerStatus
	var delayWeight float64
	for i, p := range parts {
		if i == 0 {
			out.Policy = p.Policy
		}
		out.QueueDepth += p.QueueDepth
		out.Running += p.Running
		out.Submitted += p.Submitted
		out.Dispatches += p.Dispatches
		out.Completed += p.Completed
		out.Evictions += p.Evictions
		out.Failed += p.Failed
		out.Cancelled += p.Cancelled
		out.Aborted += p.Aborted
		out.GoodCPUSec += p.GoodCPUSec
		out.WastedCPUSec += p.WastedCPUSec
		out.MaxQueueDepth += p.MaxQueueDepth
		out.TickPanics += p.TickPanics
		if p.LastTickPanic != "" {
			out.LastTickPanic = p.LastTickPanic
		}
		delayWeight += float64(p.Dispatches)
		out.MeanQueueDelayS += p.MeanQueueDelayS * float64(p.Dispatches)
	}
	if delayWeight > 0 {
		out.MeanQueueDelayS /= delayWeight
	} else {
		out.MeanQueueDelayS = 0
	}
	if total := out.GoodCPUSec + out.WastedCPUSec; total > 0 {
		out.GoodputFrac = out.GoodCPUSec / total
	} else {
		out.GoodputFrac = 1
	}
	return out
}

// SchedulerUpdate is one scheduler decision published on the affected
// instance's SSE stream as a "scheduler" event.
type SchedulerUpdate struct {
	Instance string  `json:"instance"`
	Job      int     `json:"job"`
	Name     string  `json:"name,omitempty"`
	Workload string  `json:"workload"`
	Action   string  `json:"action"` // dispatch | evict | complete | fail
	Attempt  int     `json:"attempt"`
	CPUSec   float64 `json:"cpu_s"`
	Detail   string  `json:"detail,omitempty"`
}

// taskRef binds a running job to its live BE task on an instance.
type taskRef struct {
	inst *Instance
	task *machine.BETask
}

// schedDriver owns one shard's fleet scheduler: a wall-clock dispatch
// tick over the shard's live instances, run as one task on the shard's
// epoch scheduler rather than on its own goroutine. The sched.Scheduler
// core is single-threaded; every access (ticks and the job API)
// serialises on mu, and all machine mutation goes through each
// instance's command mailbox — the scheduler never touches a Machine
// directly, so instance determinism is preserved. The driver speaks
// local job ids internally and translates to the global interleaved ids
// (see JobStatus) at every wire boundary.
type schedDriver struct {
	srv      *Server
	shard    *shard
	idx      int // shard index
	n        int // shard count (global-id stride)
	interval time.Duration
	start    time.Time

	pool  *epochScheduler
	entry *schedEntry

	mu            sync.Mutex
	s             *sched.Scheduler
	tasks         map[int]*taskRef
	tickPanics    int
	lastTickPanic string
	stopped       bool
	ticks         int64         // completed dispatch ticks
	ticknote      chan struct{} // closed and replaced after every tick

	stopOnce sync.Once
}

func newSchedDriver(srv *Server, sh *shard, nshards int, policy sched.Policy, seed uint64, interval time.Duration) *schedDriver {
	d := &schedDriver{
		srv:      srv,
		shard:    sh,
		idx:      sh.idx,
		n:        nshards,
		interval: interval,
		start:    time.Now(),
		pool:     sh.sched,
		s: sched.New(sched.Config{
			Policy: policy,
			// Distinct deterministic choice streams per shard.
			Seed: seed + uint64(sh.idx),
			// Live time runs on the wall clock; the defaults (30s backoff,
			// 15s grace) are sized for simulated seconds, which the served
			// instances also tick in real time by default.
		}),
		tasks:    make(map[int]*taskRef),
		ticknote: make(chan struct{}),
	}
	d.entry = d.pool.newEntry(d)
	d.pool.schedule(d.entry, time.Now().Add(d.interval))
	return d
}

// now is the scheduler clock: wall time since the driver started.
func (d *schedDriver) now() time.Duration { return time.Since(d.start) }

// gid converts the shard-local job id to the global wire id.
func (d *schedDriver) gid(local int) int { return (local-1)*d.n + d.idx + 1 }

// splitJobID inverts gid: (shard, local) for a global wire id.
func splitJobID(gid, nshards int) (idx, local int) {
	return (gid - 1) % nshards, (gid-1)/nshards + 1
}

// stop cancels the dispatch entry and joins any in-flight tick: once
// stopped is set under mu, the tick that may still hold mu has finished
// and no further one can start (the cancelled entry never redispatches).
func (d *schedDriver) stop() {
	d.stopOnce.Do(func() {
		d.pool.remove(d.entry)
		d.mu.Lock()
		d.stopped = true
		d.mu.Unlock()
	})
}

// runSlice is the fleet dispatcher's epoch-scheduler task: one dispatch
// tick, requeued every interval. The tick itself never stretches — job
// dispatch latency is user-visible — so this entry is the one fixed
// heartbeat in the heap.
func (d *schedDriver) runSlice() (time.Time, bool) {
	d.safeTick()
	d.noteTick()
	return time.Now().Add(d.interval), true
}

// noteTick wakes tickWait waiters; tests use it to await dispatch ticks
// without sleeping.
func (d *schedDriver) noteTick() {
	d.mu.Lock()
	d.ticks++
	close(d.ticknote)
	d.ticknote = make(chan struct{})
	d.mu.Unlock()
}

// tickWait returns the completed-tick count and a channel that closes
// when the next tick completes.
func (d *schedDriver) tickWait() (int64, <-chan struct{}) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ticks, d.ticknote
}

// safeTick isolates the dispatch loop from a panicking tick: the panic
// is recorded and the next interval's tick runs anyway. tick's deferred
// unlock releases d.mu on the way out, so the job API stays live.
func (d *schedDriver) safeTick() {
	defer func() {
		if v := recover(); v != nil {
			d.mu.Lock()
			d.tickPanics++
			d.lastTickPanic = fmt.Sprint(v)
			d.mu.Unlock()
		}
	}()
	d.tick()
}

// evictCrashed force-evicts every running job whose task lives on inst.
// Called by the supervisor (finishCrash, no instance locks held) before
// the restart slice rebuilds the engine: the tasks are about to vanish
// with the discarded machine, so the jobs go back through the normal
// evict path (charging their retry budget) with the CPU time accrued so
// far. The crashed machine is frozen — its crash gate fails every
// mutation — so reading the task counters directly is safe; no mailbox
// round-trip is possible or needed.
func (d *schedDriver) evictCrashed(inst *Instance) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var ids []int
	for id, ref := range d.tasks {
		if ref.inst == inst {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		ref := d.tasks[id]
		delete(d.tasks, id)
		j, _ := d.s.Job(id)
		acts := d.s.Kill(id, d.now(), ref.task.CPUSec, "instance driver crashed")
		for _, a := range acts {
			inst.publishScheduler(SchedulerUpdate{
				Instance: inst.ID(), Job: d.gid(a.Job), Name: j.Spec.Name, Workload: j.Spec.Workload,
				Action: a.Kind.String(), Attempt: j.Attempts, CPUSec: ref.task.CPUSec,
				Detail: "instance crashed",
			})
		}
	}
}

// killJobsOn force-evicts running jobs on inst whose workload matches wl
// (all of them when wl is empty), stopping their tasks through the
// mailbox. Fault injection uses it so a leaf-crash or be-kill consumes
// the affected jobs' retry budgets instead of leaving them running
// against tasks the fault is about to destroy; migration uses it with
// its own reason so a departing instance's jobs requeue on the origin
// scheduler (checkpoints prune fleet tasks — the jobs never travel).
// Returns the number of jobs evicted.
func (d *schedDriver) killJobsOn(inst *Instance, wl, reason string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	var ids []int
	for id, ref := range d.tasks {
		if ref.inst == inst && (wl == "" || ref.task.WL.Spec.Name == wl) {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	killed := 0
	for _, id := range ids {
		ref := d.tasks[id]
		delete(d.tasks, id)
		cpu, err := ref.inst.stopSchedTask(ref.task, false)
		if err != nil {
			cpu = ref.task.CPUSec
		}
		j, _ := d.s.Job(id)
		acts := d.s.Kill(id, d.now(), cpu, reason)
		killed += len(acts)
		for _, a := range acts {
			inst.publishScheduler(SchedulerUpdate{
				Instance: inst.ID(), Job: d.gid(a.Job), Name: j.Spec.Name, Workload: j.Spec.Workload,
				Action: a.Kind.String(), Attempt: j.Attempts, CPUSec: cpu,
				Detail: reason,
			})
		}
	}
	return killed
}

// instIndex parses the registry id ("i7") into the scheduler's stable
// integer node id.
func instIndex(id string) (int, bool) {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "i"))
	return n, err == nil && n > 0
}

// tick snapshots the shard's instances, advances the scheduler and
// applies its actions. Probes and mutations run through instance
// mailboxes; an instance that stops mid-tick simply drops out of the
// snapshot and its jobs are evicted on the spot.
func (d *schedDriver) tick() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped {
		return
	}

	insts := d.shard.list()
	nodes := make([]sched.NodeState, 0, len(insts))
	byID := make(map[int]*Instance, len(insts))
	for _, in := range insts {
		id, ok := instIndex(in.ID())
		if !ok {
			continue
		}
		ns, state, err := in.schedProbe()
		if err != nil || state != StateRunning {
			continue
		}
		ns.ID = id
		nodes = append(nodes, ns)
		byID[id] = in
	}

	actions := d.s.Tick(d.now(), nodes, func(j *sched.Job) float64 {
		ref := d.tasks[j.ID]
		if ref == nil {
			return j.CPUSec
		}
		cpu, err := ref.inst.taskCPUSec(ref.task)
		if err != nil {
			return j.CPUSec
		}
		return cpu
	})

	for _, a := range actions {
		job, _ := d.s.Job(a.Job)
		switch a.Kind {
		case sched.ActionDispatch:
			in := byID[a.Node]
			if in == nil {
				d.s.Abort(a.Job, d.now())
				continue
			}
			task, err := in.startSchedTask(a.Workload)
			if err != nil {
				// The controller flipped since the snapshot (or the
				// instance stopped): hand the job back without charging
				// its retry budget.
				d.s.Abort(a.Job, d.now())
				continue
			}
			d.tasks[a.Job] = &taskRef{inst: in, task: task}
			in.publishScheduler(SchedulerUpdate{
				Instance: in.ID(), Job: d.gid(a.Job), Name: job.Spec.Name, Workload: a.Workload,
				Action: a.Kind.String(), Attempt: job.Attempts,
			})
		case sched.ActionEvict, sched.ActionFail, sched.ActionComplete:
			ref := d.tasks[a.Job]
			delete(d.tasks, a.Job)
			if ref == nil {
				continue
			}
			cpu, err := ref.inst.stopSchedTask(ref.task, a.Kind == sched.ActionComplete)
			if err != nil {
				continue // instance already gone; nothing to publish
			}
			ref.inst.publishScheduler(SchedulerUpdate{
				Instance: ref.inst.ID(), Job: d.gid(a.Job), Name: job.Spec.Name, Workload: a.Workload,
				Action: a.Kind.String(), Attempt: job.Attempts, CPUSec: cpu,
			})
		}
	}
}

// Submit validates and enqueues a job.
func (d *schedDriver) Submit(sub JobSubmission) JobStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	retries := 3
	if sub.Retries != nil {
		retries = *sub.Retries
	}
	id := d.s.Submit(sched.JobSpec{
		Name:     sub.Name,
		Workload: sub.Workload,
		Demand:   sub.Demand,
		Work:     time.Duration(sub.WorkS * float64(time.Second)),
		Priority: sub.Priority,
		Retries:  retries,
		Submit:   d.now(),
	})
	j, _ := d.s.Job(id)
	return d.jobStatusLocked(j)
}

// Jobs lists every job.
func (d *schedDriver) Jobs() []JobStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	jobs := d.s.Jobs()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = d.jobStatusLocked(j)
	}
	return out
}

// Job returns one job.
func (d *schedDriver) Job(id int) (JobStatus, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.s.Job(id)
	if !ok {
		return JobStatus{}, false
	}
	return d.jobStatusLocked(j), true
}

// Cancel cancels a job, stopping its task if it is running. Returns
// (status, found, cancelled): a terminal job is found but not cancelled.
func (d *schedDriver) Cancel(id int) (JobStatus, bool, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.s.Job(id)
	if !ok {
		return JobStatus{}, false, false
	}
	var accrued float64
	ref := d.tasks[id]
	if j.State == sched.JobRunning && ref != nil {
		if cpu, err := ref.inst.stopSchedTask(ref.task, false); err == nil {
			accrued = cpu
			ref.inst.publishScheduler(SchedulerUpdate{
				Instance: ref.inst.ID(), Job: d.gid(id), Name: j.Spec.Name, Workload: j.Spec.Workload,
				Action: "evict", Attempt: j.Attempts, CPUSec: cpu, Detail: "cancelled",
			})
		}
		delete(d.tasks, id)
	}
	cancelled := d.s.Cancel(id, d.now(), accrued)
	j, _ = d.s.Job(id)
	return d.jobStatusLocked(j), true, cancelled
}

// Status snapshots the scheduler for the API and /metrics.
func (d *schedDriver) Status() SchedulerStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	a := d.s.Accounting()
	return SchedulerStatus{
		Policy:          d.s.Policy(),
		QueueDepth:      a.QueueDepth,
		Running:         a.Running,
		Submitted:       a.Submitted,
		Dispatches:      a.Dispatches,
		Completed:       a.Completed,
		Evictions:       a.Evictions,
		Failed:          a.Failed,
		Cancelled:       a.Cancelled,
		Aborted:         a.Aborted,
		GoodCPUSec:      a.GoodCPUSec,
		WastedCPUSec:    a.WastedCPUSec,
		GoodputFrac:     a.GoodputFrac(),
		MeanQueueDelayS: a.MeanQueueDelay().Seconds(),
		MaxQueueDepth:   a.MaxQueueDepth,
		TickPanics:      d.tickPanics,
		LastTickPanic:   d.lastTickPanic,
	}
}

// jobStatusLocked renders a job snapshot with its global wire id; d.mu
// is held.
func (d *schedDriver) jobStatusLocked(j sched.Job) JobStatus {
	st := JobStatus{
		ID:       d.gid(j.ID),
		Shard:    d.idx,
		Name:     j.Spec.Name,
		Workload: j.Spec.Workload,
		State:    j.State.String(),
		Demand:   j.Spec.Demand,
		WorkS:    j.Spec.Work.Seconds(),
		Priority: j.Spec.Priority,
		Retries:  j.Spec.Retries,
		Attempts: j.Attempts,
		CPUSec:   j.CPUSec,
		WastedS:  j.WastedCPUSec,
	}
	if j.State == sched.JobRunning {
		if ref := d.tasks[j.ID]; ref != nil {
			st.Instance = ref.inst.ID()
		}
	}
	return st
}

// --- Server-level fan-out over the per-shard drivers -------------------

// schedFor resolves the fleet driver responsible for an instance (its
// hosting shard's); nil if the instance left the registry.
func (s *Server) schedFor(inst *Instance) *schedDriver {
	idx, ok := s.reg.HomeShard(inst.ID())
	if !ok {
		return nil
	}
	return s.scheds[idx]
}

// SubmitJob enqueues a job on the next shard's scheduler round-robin —
// deterministic in arrival order — and returns its global-id status.
func (s *Server) SubmitJob(sub JobSubmission) JobStatus {
	idx := int(s.jobRR.Add(1)-1) % len(s.scheds)
	return s.scheds[idx].Submit(sub)
}

// JobByID resolves a global job id across shards.
func (s *Server) JobByID(gid int) (JobStatus, bool) {
	if gid < 1 {
		return JobStatus{}, false
	}
	idx, local := splitJobID(gid, len(s.scheds))
	return s.scheds[idx].Job(local)
}

// CancelJob cancels a global job id across shards.
func (s *Server) CancelJob(gid int) (JobStatus, bool, bool) {
	if gid < 1 {
		return JobStatus{}, false, false
	}
	idx, local := splitJobID(gid, len(s.scheds))
	return s.scheds[idx].Cancel(local)
}

// Jobs lists every shard's jobs, merged in global-id order.
func (s *Server) Jobs() []JobStatus {
	var out []JobStatus
	for _, d := range s.scheds {
		out = append(out, d.Jobs()...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// SchedStatus aggregates the per-shard fleet schedulers; on a sharded
// server the per-shard accounting rides along in Shards.
func (s *Server) SchedStatus() SchedulerStatus {
	parts := make([]SchedulerStatus, len(s.scheds))
	for i, d := range s.scheds {
		parts[i] = d.Status()
	}
	if len(parts) == 1 {
		return parts[0]
	}
	agg := MergeSchedulerStatuses(parts)
	agg.Shards = parts
	return agg
}

// --- Handlers ----------------------------------------------------------

func (s *Server) handleSchedStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.SchedStatus())
}

func (s *Server) handleJobsList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var sub JobSubmission
	if !decodeBody(w, r, &sub) {
		return
	}
	if err := checkBEName(sub.Workload); err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if sub.WorkS <= 0 {
		apiError(w, http.StatusBadRequest, "work_s %v must be positive", sub.WorkS)
		return
	}
	if sub.Demand < 0 || sub.Priority < 0 || (sub.Retries != nil && *sub.Retries < 0) {
		apiError(w, http.StatusBadRequest, "demand, priority and retries must not be negative")
		return
	}
	writeJSON(w, http.StatusCreated, s.SubmitJob(sub))
}

// jobID parses {id} or writes a 404.
func jobID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 1 {
		apiError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return 0, false
	}
	return id, true
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id, ok := jobID(w, r)
	if !ok {
		return
	}
	st, found := s.JobByID(id)
	if !found {
		apiError(w, http.StatusNotFound, "no job %d", id)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id, ok := jobID(w, r)
	if !ok {
		return
	}
	st, found, cancelled := s.CancelJob(id)
	switch {
	case !found:
		apiError(w, http.StatusNotFound, "no job %d", id)
	case !cancelled:
		apiError(w, http.StatusConflict, "job %d already %s", id, st.State)
	default:
		writeJSON(w, http.StatusOK, st)
	}
}
