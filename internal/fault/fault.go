// Package fault is the deterministic fault layer: a typed model of the
// failures a Heracles deployment must absorb — leaf crashes, telemetry
// blackouts, slow machines, actuation that silently does not land, and
// best-effort task kills — plus a seeded schedule generator whose output
// is bit-identical for a given seed regardless of worker count or how
// many times it runs. Faults are plain serializable data: the engine
// applies them in its sequential per-epoch window (so batch cluster and
// fleet arms can run one schedule with and without Heracles and the
// comparison isolates the controller), carries their state inside its
// checkpoint, and accepts them live through the control-plane API.
package fault

import (
	"fmt"
	"sort"
	"time"

	"heracles/internal/sim"
)

// Kind enumerates the fault model.
type Kind int

const (
	// LeafCrash takes a node down for Duration: its machine serves
	// nothing, every BE task on it dies (scheduler jobs evict through the
	// normal retry-budget path), and the controller restarts cold when
	// the node returns.
	LeafCrash Kind = iota
	// TelemetryBlackout hides the latency monitor from the node's
	// controller for Duration: polls return no data, exercising the
	// stale-telemetry degradation latches. The machine itself keeps
	// serving.
	TelemetryBlackout
	// SlowMachine inflates the node's LC service time by Factor for
	// Duration — a degraded disk, a thermal throttle, a noisy neighbour
	// below the virtualisation line.
	SlowMachine
	// ActuationFail makes the controller's isolation actions silently
	// not land for Duration: the controller believes it moved cores,
	// ways, frequency or network ceilings, but the machine keeps its
	// allocation.
	ActuationFail
	// BEKill kills best-effort tasks on the node (all of them, or only
	// those running Workload): scheduler-owned jobs evict and consume
	// retry budget, unmanaged tasks are removed as lost work.
	BEKill
)

// String names the kind with the wire spelling used by the JSON API.
func (k Kind) String() string {
	switch k {
	case LeafCrash:
		return "leaf-crash"
	case TelemetryBlackout:
		return "telemetry-blackout"
	case SlowMachine:
		return "slow-machine"
	case ActuationFail:
		return "actuation-fail"
	case BEKill:
		return "be-kill"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// KindByName parses the wire spelling.
func KindByName(name string) (Kind, bool) {
	for _, k := range []Kind{LeafCrash, TelemetryBlackout, SlowMachine, ActuationFail, BEKill} {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// AllNodes targets a fault at every node of the fleet.
const AllNodes = -1

// Fault is one scheduled failure. At is simulated time relative to the
// engine's start; Node selects the target (AllNodes hits the whole
// fleet). Duration bounds the window kinds; Factor is the SlowMachine
// inflation; Workload narrows a BEKill ("" kills every BE task).
type Fault struct {
	At       time.Duration `json:"at_ns"`
	Kind     Kind          `json:"kind"`
	Node     int           `json:"node"`
	Duration time.Duration `json:"duration_ns,omitempty"`
	Factor   float64       `json:"factor,omitempty"`
	Workload string        `json:"workload,omitempty"`
}

// Validate checks the fault against a fleet of the given size (nodes <= 0
// skips the upper bound, for callers that validate before sizing).
func (f Fault) Validate(nodes int) error {
	if f.At < 0 {
		return fmt.Errorf("fault: negative time %v", f.At)
	}
	if f.Node != AllNodes && (f.Node < 0 || (nodes > 0 && f.Node >= nodes)) {
		return fmt.Errorf("fault: %s targets node %d of a %d-node fleet", f.Kind, f.Node, nodes)
	}
	switch f.Kind {
	case LeafCrash, TelemetryBlackout, ActuationFail:
		if f.Duration <= 0 {
			return fmt.Errorf("fault: %s needs a positive duration", f.Kind)
		}
	case SlowMachine:
		if f.Duration <= 0 {
			return fmt.Errorf("fault: %s needs a positive duration", f.Kind)
		}
		if f.Factor < 1 {
			return fmt.Errorf("fault: %s factor %.2f must be >= 1", f.Kind, f.Factor)
		}
	case BEKill:
		// Workload is optional; an instantaneous fault has no duration.
	default:
		return fmt.Errorf("fault: unknown kind %d", int(f.Kind))
	}
	return nil
}

// Plan is a complete fault schedule, sorted by time.
type Plan struct {
	Seed   uint64  `json:"seed"`
	Faults []Fault `json:"faults"`
}

// GenConfig parameterises Generate. Zero counts draw no faults of that
// kind; zero means/factors select the documented defaults.
type GenConfig struct {
	Seed    uint64
	Nodes   int           // fleet size faults target (>= 1)
	Horizon time.Duration // fault times are uniform over [0, Horizon)

	Crashes        int // LeafCrash count
	Blackouts      int // TelemetryBlackout count
	Slowdowns      int // SlowMachine count
	ActuationFails int // ActuationFail count
	BEKills        int // BEKill count

	MeanOutage    time.Duration // mean LeafCrash duration (default 30s)
	MeanBlackout  time.Duration // mean TelemetryBlackout duration (default 45s)
	MeanSlowdown  time.Duration // mean SlowMachine duration (default 60s)
	MeanActFail   time.Duration // mean ActuationFail duration (default 30s)
	MaxSlowFactor float64       // SlowMachine factor is uniform in [1.2, MaxSlowFactor] (default 2.5)
}

// Generate draws a fault schedule. Every fault i draws from its own
// sim.DeriveRNG(Seed, i) stream, so the schedule depends only on the
// config — never on evaluation order or worker count — and two runs with
// the same seed replay the identical failure history.
func Generate(cfg GenConfig) Plan {
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	if cfg.MeanOutage <= 0 {
		cfg.MeanOutage = 30 * time.Second
	}
	if cfg.MeanBlackout <= 0 {
		cfg.MeanBlackout = 45 * time.Second
	}
	if cfg.MeanSlowdown <= 0 {
		cfg.MeanSlowdown = 60 * time.Second
	}
	if cfg.MeanActFail <= 0 {
		cfg.MeanActFail = 30 * time.Second
	}
	if cfg.MaxSlowFactor < 1.2 {
		cfg.MaxSlowFactor = 2.5
	}

	var faults []Fault
	idx := uint64(0)
	draw := func(count int, mk func(rng *sim.RNG) Fault) {
		for k := 0; k < count; k++ {
			rng := sim.DeriveRNG(cfg.Seed, idx)
			idx++
			faults = append(faults, mk(rng))
		}
	}
	at := func(rng *sim.RNG) time.Duration {
		return time.Duration(rng.Float64() * float64(cfg.Horizon))
	}
	dur := func(rng *sim.RNG, mean time.Duration) time.Duration {
		d := time.Duration(rng.Exp(mean.Seconds()) * float64(time.Second))
		if d < 2*time.Second {
			d = 2 * time.Second
		}
		return d
	}

	draw(cfg.Crashes, func(rng *sim.RNG) Fault {
		return Fault{At: at(rng), Kind: LeafCrash, Node: rng.Intn(cfg.Nodes), Duration: dur(rng, cfg.MeanOutage)}
	})
	draw(cfg.Blackouts, func(rng *sim.RNG) Fault {
		return Fault{At: at(rng), Kind: TelemetryBlackout, Node: rng.Intn(cfg.Nodes), Duration: dur(rng, cfg.MeanBlackout)}
	})
	draw(cfg.Slowdowns, func(rng *sim.RNG) Fault {
		return Fault{
			At: at(rng), Kind: SlowMachine, Node: rng.Intn(cfg.Nodes),
			Duration: dur(rng, cfg.MeanSlowdown),
			Factor:   1.2 + rng.Float64()*(cfg.MaxSlowFactor-1.2),
		}
	})
	draw(cfg.ActuationFails, func(rng *sim.RNG) Fault {
		return Fault{At: at(rng), Kind: ActuationFail, Node: rng.Intn(cfg.Nodes), Duration: dur(rng, cfg.MeanActFail)}
	})
	draw(cfg.BEKills, func(rng *sim.RNG) Fault {
		return Fault{At: at(rng), Kind: BEKill, Node: rng.Intn(cfg.Nodes)}
	})

	// Stable by time: faults of the same instant keep their generation
	// order, which is fixed by kind then index.
	sort.SliceStable(faults, func(a, b int) bool { return faults[a].At < faults[b].At })
	return Plan{Seed: cfg.Seed, Faults: faults}
}
