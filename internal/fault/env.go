package fault

import (
	"time"

	"heracles/internal/core"
)

// Env interposes the active fault windows between a controller and its
// machine. It embeds the real environment and overrides only what the
// faults distort: a telemetry blackout makes the latency monitor return
// no data, and an actuation failure swallows every isolation action
// while the monitors keep reading the machine's true (unchanged) state —
// exactly the asymmetry that makes silent actuation loss dangerous.
//
// The wrapper is driven from the engine's sequential window and read
// from the controller's Step, both in the stepping goroutine; it needs
// no locking.
type Env struct {
	core.Env
	blackout bool
	actFail  bool
	dropped  int
}

// Wrap builds a fault-injectable view of inner with no faults active.
func Wrap(inner core.Env) *Env { return &Env{Env: inner} }

// SetBlackout toggles the telemetry blackout window.
func (e *Env) SetBlackout(on bool) { e.blackout = on }

// BlackoutActive reports whether a blackout is in effect.
func (e *Env) BlackoutActive() bool { return e.blackout }

// SetActuationFail toggles the actuation-failure window.
func (e *Env) SetActuationFail(on bool) { e.actFail = on }

// ActuationFailActive reports whether actuation is being dropped.
func (e *Env) ActuationFailActive() bool { return e.actFail }

// DroppedActuations counts the isolation actions swallowed so far.
func (e *Env) DroppedActuations() int { return e.dropped }

// TailLatency returns no data during a blackout.
func (e *Env) TailLatency(window time.Duration) (time.Duration, bool) {
	if e.blackout {
		return 0, false
	}
	return e.Env.TailLatency(window)
}

// drop records a swallowed actuation while the failure window is open.
func (e *Env) drop() bool {
	if e.actFail {
		e.dropped++
		return true
	}
	return false
}

// EnableBE is dropped during an actuation failure.
func (e *Env) EnableBE() {
	if e.drop() {
		return
	}
	e.Env.EnableBE()
}

// DisableBE is dropped during an actuation failure.
func (e *Env) DisableBE() {
	if e.drop() {
		return
	}
	e.Env.DisableBE()
}

// SetBECores is dropped during an actuation failure.
func (e *Env) SetBECores(n int) {
	if e.drop() {
		return
	}
	e.Env.SetBECores(n)
}

// SetBEWays is dropped during an actuation failure.
func (e *Env) SetBEWays(n int) {
	if e.drop() {
		return
	}
	e.Env.SetBEWays(n)
}

// LowerBEFreq is dropped during an actuation failure.
func (e *Env) LowerBEFreq() {
	if e.drop() {
		return
	}
	e.Env.LowerBEFreq()
}

// RaiseBEFreq is dropped during an actuation failure.
func (e *Env) RaiseBEFreq() {
	if e.drop() {
		return
	}
	e.Env.RaiseBEFreq()
}

// SetBETxCeil is dropped during an actuation failure.
func (e *Env) SetBETxCeil(gbs float64) {
	if e.drop() {
		return
	}
	e.Env.SetBETxCeil(gbs)
}
