package fault

import (
	"reflect"
	"testing"
	"time"
)

func genCfg(seed uint64) GenConfig {
	return GenConfig{
		Seed: seed, Nodes: 8, Horizon: time.Hour,
		Crashes: 5, Blackouts: 4, Slowdowns: 3, ActuationFails: 2, BEKills: 2,
	}
}

// TestGenerateDeterministic pins the schedule generator's contract: the
// plan is a pure function of the config, so two calls with one seed are
// bit-identical and a different seed moves the schedule.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(genCfg(42))
	b := Generate(genCfg(42))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%+v\nvs\n%+v", a, b)
	}
	if want := 5 + 4 + 3 + 2 + 2; len(a.Faults) != want {
		t.Fatalf("plan has %d faults, want %d", len(a.Faults), want)
	}
	c := Generate(genCfg(43))
	if reflect.DeepEqual(a.Faults, c.Faults) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestGenerateSortedAndValid: the plan is sorted by time and every fault
// passes validation against the fleet it was drawn for.
func TestGenerateSortedAndValid(t *testing.T) {
	cfg := genCfg(7)
	plan := Generate(cfg)
	for i, f := range plan.Faults {
		if i > 0 && f.At < plan.Faults[i-1].At {
			t.Fatalf("fault %d at %v precedes fault %d at %v", i, f.At, i-1, plan.Faults[i-1].At)
		}
		if err := f.Validate(cfg.Nodes); err != nil {
			t.Fatalf("generated fault %d invalid: %v", i, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		f    Fault
	}{
		{"negative time", Fault{At: -time.Second, Kind: LeafCrash, Duration: time.Second}},
		{"node out of range", Fault{Kind: LeafCrash, Node: 8, Duration: time.Second}},
		{"negative node", Fault{Kind: LeafCrash, Node: -2, Duration: time.Second}},
		{"crash without duration", Fault{Kind: LeafCrash, Node: 0}},
		{"blackout without duration", Fault{Kind: TelemetryBlackout, Node: 0}},
		{"slow factor below one", Fault{Kind: SlowMachine, Node: 0, Duration: time.Second, Factor: 0.5}},
		{"unknown kind", Fault{Kind: Kind(99), Node: 0}},
	}
	for _, c := range cases {
		if err := c.f.Validate(8); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.f)
		}
	}
	ok := []Fault{
		{Kind: LeafCrash, Node: AllNodes, Duration: time.Second},
		{Kind: BEKill, Node: 3, Workload: "brain"},
		{Kind: SlowMachine, Node: 7, Duration: time.Minute, Factor: 2},
	}
	for _, f := range ok {
		if err := f.Validate(8); err != nil {
			t.Errorf("Validate rejected valid fault %+v: %v", f, err)
		}
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for _, k := range []Kind{LeafCrash, TelemetryBlackout, SlowMachine, ActuationFail, BEKill} {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := KindByName("meteor-strike"); ok {
		t.Error("KindByName accepted an unknown name")
	}
}
