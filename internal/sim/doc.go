// Package sim provides the deterministic simulation kernel used by the
// Heracles reproduction: a virtual clock, a seedable splitmix/xoshiro
// pseudo-random number generator, and a binary-heap event queue.
//
// Everything in this repository that depends on time or randomness goes
// through this package so that experiments are reproducible bit-for-bit
// for a fixed seed. DeriveRNG(seed, stream) is the key primitive for
// parallelism: fan-out layers (experiment sweeps, cluster leaves, fleet
// instances, the control plane's instance pool) give each unit of work
// its own derived stream instead of sharing mutable generator state, so
// any worker count produces identical results.
package sim
