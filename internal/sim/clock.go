package sim

import (
	"fmt"
	"time"
)

// Clock is a virtual clock. The zero value starts at time zero.
type Clock struct {
	now time.Duration
}

// NewClock returns a clock positioned at start.
func NewClock(start time.Duration) *Clock {
	return &Clock{now: start}
}

// Now returns the current simulated time as an offset from the simulation
// epoch.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. Advance panics if d is negative:
// simulated time never runs backwards.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: Advance by negative duration %v", d))
	}
	c.now += d
}

// AdvanceTo moves the clock to the absolute simulated time t. It panics if t
// is in the past.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t < c.now {
		panic(fmt.Sprintf("sim: AdvanceTo %v before current time %v", t, c.now))
	}
	c.now = t
}

// Seconds reports the current time in seconds as a float64, which is the
// unit most of the resource models work in.
func (c *Clock) Seconds() float64 { return c.now.Seconds() }
