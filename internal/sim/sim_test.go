package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock at %v", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock(0)
	c.Advance(3 * time.Second)
	c.Advance(2 * time.Second)
	if got := c.Now(); got != 5*time.Second {
		t.Fatalf("Now=%v, want 5s", got)
	}
	if got := c.Seconds(); got != 5 {
		t.Fatalf("Seconds=%v, want 5", got)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative advance")
		}
	}()
	NewClock(0).Advance(-time.Second)
}

func TestClockAdvanceToPastPanics(t *testing.T) {
	c := NewClock(10 * time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on AdvanceTo in the past")
		}
	}()
	c.AdvanceTo(time.Second)
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) produced only %d distinct values", len(seen))
	}
}

func TestRNGIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(2.5)
	}
	mean := sum / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Fatalf("Exp mean %.3f, want ~2.5", mean)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Norm(3, 2)
		sum += v
		sumsq += (v - 3) * (v - 3)
	}
	mean, sd := sum/n, math.Sqrt(sumsq/n)
	if math.Abs(mean-3) > 0.03 {
		t.Fatalf("Norm mean %.3f, want ~3", mean)
	}
	if math.Abs(sd-2) > 0.03 {
		t.Fatalf("Norm stddev %.3f, want ~2", sd)
	}
}

func TestRNGLogNormalMean(t *testing.T) {
	r := NewRNG(17)
	const n = 400000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.LogNormal(5, 0.6)
	}
	mean := sum / n
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("LogNormal mean %.3f, want ~5", mean)
	}
}

func TestRNGLogNormalPositive(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			if r.LogNormal(1, 0.5) <= 0 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEngineOrdersEvents(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(3*time.Second, func() { order = append(order, 3) })
	e.At(1*time.Second, func() { order = append(order, 1) })
	e.At(2*time.Second, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Clock.Now() != 3*time.Second {
		t.Fatalf("clock at %v after run", e.Clock.Now())
	}
}

func TestEngineFIFOAtEqualTimes(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events reordered: %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(time.Second, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Cancelling twice is a no-op.
	e.Cancel(ev)
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []int
	e.At(1*time.Second, func() { fired = append(fired, 1) })
	e.At(5*time.Second, func() { fired = append(fired, 5) })
	e.RunUntil(3 * time.Second)
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v, want [1]", fired)
	}
	if e.Clock.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", e.Clock.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineScheduleInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Clock.Advance(time.Minute)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic scheduling in the past")
		}
	}()
	e.At(time.Second, func() {})
}

func TestEngineAfter(t *testing.T) {
	e := NewEngine()
	e.Clock.Advance(time.Minute)
	fired := time.Duration(0)
	e.After(5*time.Second, func() { fired = e.Clock.Now() })
	e.Run()
	if fired != time.Minute+5*time.Second {
		t.Fatalf("After fired at %v", fired)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(99)
	child := parent.Split()
	if parent.Uint64() == child.Uint64() {
		t.Fatal("split stream mirrors parent")
	}
}

func TestDeriveRNGStreamsIndependentAndStable(t *testing.T) {
	// Same (seed, index) -> identical stream.
	a, b := DeriveRNG(7, 3), DeriveRNG(7, 3)
	for i := 0; i < 8; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("derived stream not reproducible")
		}
	}
	// Adjacent indices and adjacent seeds diverge immediately.
	if DeriveRNG(7, 3).Uint64() == DeriveRNG(7, 4).Uint64() {
		t.Fatal("adjacent indices share a stream")
	}
	if DeriveRNG(7, 3).Uint64() == DeriveRNG(8, 3).Uint64() {
		t.Fatal("adjacent seeds share a stream")
	}
}
