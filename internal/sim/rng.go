package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator based
// on the splitmix64 mixing function. It is not cryptographically secure; it
// exists so that simulations are reproducible across platforms without
// depending on math/rand's global state.
type RNG struct {
	state uint64
	// spare holds a cached normal variate from the Box-Muller transform.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed sample with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	// Guard against log(0).
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(1-u)
}

// Norm returns a normally distributed sample with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Norm(mean, stddev float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mean + stddev*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return mean + stddev*u*m
}

// LogNormal returns a log-normally distributed sample such that the result
// has the given mean and the underlying normal has standard deviation sigma.
// This parameterisation (mean of the distribution, not of the log) is the
// one used by the workload service-time models.
func (r *RNG) LogNormal(mean, sigma float64) float64 {
	if mean <= 0 {
		return 0
	}
	// If X = exp(N(mu, sigma)) then E[X] = exp(mu + sigma^2/2).
	mu := math.Log(mean) - sigma*sigma/2
	return math.Exp(r.Norm(mu, sigma))
}

// Split derives an independent generator from the current one. The derived
// stream is deterministic given the parent's state.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// deriveState mixes (seed, index) into a generator state. Two rounds of
// the splitmix64 finaliser decorrelate nearby pairs before they become a
// state.
func deriveState(seed, index uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(index+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveRNG returns an independent generator for item index of the
// simulation seeded with seed. Unlike Split, the derived stream depends
// only on (seed, index) — never on how many values other items consumed —
// so concurrent load points or cluster epochs draw identical samples
// whether they run on one worker or many.
func DeriveRNG(seed, index uint64) *RNG {
	return NewRNG(deriveState(seed, index))
}

// Reseed resets r in place to the exact stream DeriveRNG(seed, index)
// would return, without allocating. Hot loops that derive a fresh stream
// every epoch keep one RNG value and reseed it instead.
func (r *RNG) Reseed(seed, index uint64) {
	r.state = deriveState(seed, index)
	r.spare = 0
	r.hasSpare = false
}
