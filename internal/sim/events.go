package sim

import (
	"container/heap"
	"time"
)

// Event is a callback scheduled at an absolute simulated time.
type Event struct {
	At time.Duration
	Fn func()

	seq   uint64 // tie-breaker for deterministic FIFO ordering at equal times
	index int    // heap bookkeeping; -1 when not queued
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine couples a clock with an event queue and runs events in
// deterministic timestamp order (FIFO among equal timestamps).
type Engine struct {
	Clock *Clock
	queue eventHeap
	seq   uint64
}

// NewEngine returns an engine whose clock starts at zero.
func NewEngine() *Engine {
	return &Engine{Clock: NewClock(0)}
}

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past panics. It returns the event, which can be passed to Cancel.
func (e *Engine) At(t time.Duration, fn func()) *Event {
	if t < e.Clock.Now() {
		panic("sim: scheduling event in the past")
	}
	e.seq++
	ev := &Event{At: t, Fn: fn, seq: e.seq}
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current simulated time.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	return e.At(e.Clock.Now()+d, fn)
}

// Cancel removes a pending event from the queue. Cancelling an event that
// already ran (or was already cancelled) is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 || ev.index >= len(e.queue) || e.queue[ev.index] != ev {
		return
	}
	heap.Remove(&e.queue, ev.index)
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Step runs the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event ran.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.Clock.AdvanceTo(ev.At)
	ev.Fn()
	return true
}

// RunUntil executes events until the queue is empty or the next event lies
// beyond t, then advances the clock to exactly t.
func (e *Engine) RunUntil(t time.Duration) {
	for len(e.queue) > 0 && e.queue[0].At <= t {
		e.Step()
	}
	if t > e.Clock.Now() {
		e.Clock.AdvanceTo(t)
	}
}

// Run drains the event queue completely.
func (e *Engine) Run() {
	for e.Step() {
	}
}
