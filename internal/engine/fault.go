package engine

import (
	"fmt"
	"sort"
	"time"

	"heracles/internal/core"
	"heracles/internal/fault"
	"heracles/internal/machine"
)

// buildNode assembles one node around a (new or restored) machine. On
// Heracles nodes the controller is bound to a fault environment wrapping
// the machine, so blackout and actuation-failure windows interpose
// between the controller and its server without the machine or the
// controller knowing.
func buildNode(m *machine.Machine, cfg *Config) *node {
	n := &node{m: m}
	if cfg.Heracles {
		n.fenv = fault.Wrap(m)
		n.ctl = core.New(n.fenv, cfg.Model, core.DefaultConfig())
	}
	return n
}

// installFaults validates and installs a fault schedule, sorted stably
// by fire time. Invalid entries panic: fault plans are programmer (or
// pre-validated API) input, exactly like scenario events.
func (e *Engine) installFaults(fs []fault.Fault) {
	if len(fs) == 0 {
		return
	}
	sorted := append([]fault.Fault(nil), fs...)
	for i, f := range sorted {
		if err := f.Validate(len(e.nodes)); err != nil {
			panic(fmt.Sprintf("engine: fault %d: %v", i, err))
		}
	}
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].At < sorted[b].At })
	e.faults = sorted
}

// nodeFault tracks one node's active fault windows as absolute deadlines
// in simulated time; a window is active while its deadline is in the
// future.
type nodeFault struct {
	downUntil     time.Duration
	blackoutUntil time.Duration
	actFailUntil  time.Duration
	slowUntil     time.Duration
}

// InjectFault queues one fault for application at the start of the next
// Step (its At field is ignored — live injection means "now"). This is
// the control plane's injection hook; call it from the stepping
// goroutine's context like any other mutation.
func (e *Engine) InjectFault(f fault.Fault) error {
	if err := f.Validate(len(e.nodes)); err != nil {
		return err
	}
	e.pendingFaults = append(e.pendingFaults, f)
	return nil
}

// FaultsApplied returns the number of faults applied over the engine's
// lifetime (restored engines continue the count).
func (e *Engine) FaultsApplied() int { return e.faultCount }

// NodeDown reports whether node i is inside a crash outage window.
func (e *Engine) NodeDown(i int) bool {
	return e.nf != nil && e.nf[i].downUntil > e.t
}

// ensureNF allocates the per-node window table on first fault use, so
// fault-free engines pay nothing.
func (e *Engine) ensureNF() {
	if e.nf == nil {
		e.nf = make([]nodeFault, len(e.nodes))
	}
}

// stepFaults runs in Step's sequential window at epoch-start time t:
// expire windows that have elapsed, then fire scheduled faults due at t
// and any live-injected ones. Returns how many faults fired.
func (e *Engine) stepFaults(t time.Duration) int {
	if e.nf == nil && e.faultNext >= len(e.faults) && len(e.pendingFaults) == 0 {
		return 0
	}
	e.ensureNF()
	for i := range e.nf {
		e.expireWindows(i, t)
	}
	n := 0
	for e.faultNext < len(e.faults) && e.faults[e.faultNext].At <= t {
		e.applyFault(e.faults[e.faultNext], t)
		e.faultNext++
		n++
	}
	for _, f := range e.pendingFaults {
		e.applyFault(f, t)
		n++
	}
	e.pendingFaults = e.pendingFaults[:0]
	return n
}

// expireWindows closes node i's fault windows whose deadline has passed.
func (e *Engine) expireWindows(i int, t time.Duration) {
	nf := &e.nf[i]
	n := e.nodes[i]
	if nf.downUntil > 0 && nf.downUntil <= t {
		nf.downUntil = 0 // the node restarts: machine state was reset at crash time
	}
	if nf.blackoutUntil > 0 && nf.blackoutUntil <= t {
		nf.blackoutUntil = 0
		if n.fenv != nil {
			n.fenv.SetBlackout(false)
		}
	}
	if nf.actFailUntil > 0 && nf.actFailUntil <= t {
		nf.actFailUntil = 0
		if n.fenv != nil {
			n.fenv.SetActuationFail(false)
		}
	}
	if nf.slowUntil > 0 && nf.slowUntil <= t {
		nf.slowUntil = 0
		n.m.SetDegrade(1)
	}
}

// applyFault applies one fault to its target nodes at time t.
func (e *Engine) applyFault(f fault.Fault, t time.Duration) {
	e.faultCount++
	for i, n := range e.nodes {
		if f.Node != fault.AllNodes && f.Node != i {
			continue
		}
		switch f.Kind {
		case fault.LeafCrash:
			e.crashNode(i, t, t+f.Duration)
		case fault.TelemetryBlackout:
			if until := t + f.Duration; until > e.nf[i].blackoutUntil {
				e.nf[i].blackoutUntil = until
			}
			if n.fenv != nil {
				n.fenv.SetBlackout(true)
			}
		case fault.SlowMachine:
			if until := t + f.Duration; until > e.nf[i].slowUntil {
				e.nf[i].slowUntil = until
			}
			n.m.SetDegrade(f.Factor)
		case fault.ActuationFail:
			if until := t + f.Duration; until > e.nf[i].actFailUntil {
				e.nf[i].actFailUntil = until
			}
			if n.fenv != nil {
				n.fenv.SetActuationFail(true)
			}
		case fault.BEKill:
			e.killBE(i, f.Workload, t)
		}
	}
}

// crashNode takes node i down until the given deadline. Everything on
// the machine dies with it: the engine scheduler's jobs evict through
// the normal retry-budget path (Kill), remaining BE tasks are removed as
// lost work, and the controller restarts cold — when the outage ends the
// node comes back like a freshly booted server, clock still aligned with
// the fleet.
func (e *Engine) crashNode(i int, now, until time.Duration) {
	n := e.nodes[i]
	if until > e.nf[i].downUntil {
		e.nf[i].downUntil = until
	}
	e.killSchedJobs(i, "", now, "leaf crashed")
	for _, be := range append([]*machine.BETask(nil), n.m.BEs()...) {
		n.m.RemoveBE(be)
		delete(e.schedOwned, be)
	}
	n.m.Partition(0)
	n.m.SetDegrade(1)
	n.m.ResetStats()
	e.nf[i].blackoutUntil, e.nf[i].actFailUntil, e.nf[i].slowUntil = 0, 0, 0
	if n.fenv != nil {
		n.fenv.SetBlackout(false)
		n.fenv.SetActuationFail(false)
	}
	if n.ctl != nil {
		// Cold controller: zero latches, with the stale-telemetry clock
		// starting at the crash so the empty post-restart telemetry ring
		// does not read as an instant emergency.
		n.ctl.Restore(core.ControllerState{LastTelemetry: now})
	}
}

// killBE kills node i's best-effort tasks (all, or only those running
// wl). Scheduler-owned jobs evict with retry-budget consumption;
// unmanaged tasks are removed as lost work. Tasks owned by an external
// scheduler are left alone — their owner must kill them through its own
// bookkeeping (the live control plane's fault route does exactly that).
func (e *Engine) killBE(i int, wl string, now time.Duration) {
	n := e.nodes[i]
	e.killSchedJobs(i, wl, now, "task killed by fault")
	var dead []*machine.BETask
	for _, be := range n.m.BEs() {
		if e.OwnedBE(be) {
			continue
		}
		if wl == "" || be.WL.Spec.Name == wl {
			dead = append(dead, be)
		}
	}
	for _, be := range dead {
		n.m.RemoveBE(be)
	}
	if len(dead) > 0 {
		n.m.Partition(n.m.BECoreCount())
	}
}

// killSchedJobs force-evicts the engine scheduler's jobs running on node
// i (narrowed to workload wl when non-empty), in job-id order so the
// eviction sequence is deterministic.
func (e *Engine) killSchedJobs(i int, wl string, now time.Duration, reason string) {
	if e.schd == nil {
		return
	}
	var ids []int
	for id, st := range e.schedTasks {
		if st.node == i && (wl == "" || st.task.WL.Spec.Name == wl) {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		st := e.schedTasks[id]
		for _, a := range e.schd.Kill(id, now, st.task.CPUSec, reason) {
			e.applySchedAction(a)
		}
	}
}
