// Package engine owns the canonical Heracles epoch loop — the one place
// in the repository where simulated machines, their controllers, the
// best-effort job scheduler and a declarative scenario advance together.
//
// One Step resolves one epoch for every node, in a fixed order: due
// scenario events apply sequentially (so mutation order never depends on
// worker scheduling), the job scheduler ticks against the previous
// epoch's advertised slack, the offered load is evaluated from the
// scenario's shape, every machine steps (concurrently when Workers > 1,
// each writing only its own slot) and its controller runs, and the
// epoch's statistics reduce in node order so float accumulation is
// identical for any worker count.
//
// Both execution styles the paper contrasts are thin drivers over this
// loop: internal/cluster replays scenarios batch-style (a for loop over
// Step), and internal/serve advances the same Engine from a driver
// goroutine under a command mailbox, applying API writes between epochs.
// Batch-vs-live equivalence is therefore true by construction; the
// engine-level determinism test pins it.
//
// Snapshot serializes the complete simulation state — machines,
// controllers, scheduler, scenario cursor position and the epoch index
// that roots the per-epoch RNG streams — into a versioned Checkpoint,
// and Restore rebuilds an Engine that continues bit-identically to an
// uninterrupted run. Checkpoints power cluster resume-from-checkpoint,
// the control plane's pause/migrate routes and heraclesd's crash
// recovery. See DESIGN.md §11 for the architecture and the checkpoint
// format/versioning rules.
package engine
