package engine_test

import (
	"bytes"
	"testing"
	"time"

	"heracles/internal/engine"
)

// TestBinaryCheckpointRoundTrip is the binary codec's equivalent of
// TestCheckpointRoundTrip: snapshot a fully loaded engine (controllers,
// scheduler, scenario, faults and SLO budget all live), push the
// checkpoint through the binary wire format, restore, and require the
// continuation to be bit-identical to an uninterrupted run. It also
// pins that the binary-decoded checkpoint is value-identical to the
// original by comparing JSON re-encodings — the two codecs must be
// interchangeable views of the same state.
func TestBinaryCheckpointRoundTrip(t *testing.T) {
	const epochs = 480
	sc := testScenario(epochs * time.Second)

	ref := engine.New(clusterConfig(1, testJobs(8)))
	ref.InstallScenario(sc)
	want := runStats(ref, epochs)
	ref.Close()

	for _, k := range []int{60, 240, 419} {
		pre := engine.New(clusterConfig(1, testJobs(8)))
		pre.InstallScenario(sc)
		runStats(pre, k)
		cp := pre.Snapshot()
		pre.Close()

		data := cp.EncodeBinary()
		if !engine.IsBinaryCheckpoint(data) {
			t.Fatalf("k=%d: encoded checkpoint not detected as binary", k)
		}
		if again := cp.EncodeBinary(); !bytes.Equal(data, again) {
			t.Fatalf("k=%d: binary encoding is not deterministic", k)
		}
		decoded, err := engine.DecodeCheckpointBinary(data)
		if err != nil {
			t.Fatalf("k=%d: decode: %v", k, err)
		}
		if decoded.Epoch != uint64(k) {
			t.Fatalf("k=%d: checkpoint records epoch %d", k, decoded.Epoch)
		}

		// The binary round trip must preserve the checkpoint value exactly:
		// its JSON form equals the original's byte for byte.
		var orig, rt bytes.Buffer
		if err := cp.Encode(&orig); err != nil {
			t.Fatalf("k=%d: JSON encode original: %v", k, err)
		}
		if err := decoded.Encode(&rt); err != nil {
			t.Fatalf("k=%d: JSON encode round-tripped: %v", k, err)
		}
		if !bytes.Equal(orig.Bytes(), rt.Bytes()) {
			t.Fatalf("k=%d: binary round trip changed the checkpoint value (JSON forms differ)", k)
		}

		res, err := engine.Restore(clusterConfig(1, testJobs(8)), decoded, &sc)
		if err != nil {
			t.Fatalf("k=%d: restore: %v", k, err)
		}
		got := runStats(res, epochs-k)
		res.Close()
		for i := range got {
			if got[i] != want[k+i] {
				t.Fatalf("k=%d: binary-restored run diverged at epoch %d (%d after restore):\n%+v\nvs\n%+v",
					k, k+i, i, want[k+i], got[i])
			}
		}
	}
}

// TestBinaryCheckpointRejectsMalformed covers the decoder's failure
// surface: every malformation must come back as an error, never a panic.
func TestBinaryCheckpointRejectsMalformed(t *testing.T) {
	e := engine.New(clusterConfig(1, testJobs(4)))
	e.InstallScenario(testScenario(200 * time.Second))
	runStats(e, 20)
	data := e.Snapshot().EncodeBinary()
	e.Close()

	if _, err := engine.DecodeCheckpointBinary([]byte(`{"version":1}`)); err == nil {
		t.Fatal("JSON input accepted as binary")
	}
	if _, err := engine.DecodeCheckpointBinary(nil); err == nil {
		t.Fatal("empty input accepted")
	}

	// Version skew: flip the u16 layout version after the magic.
	skew := append([]byte(nil), data...)
	skew[4], skew[5] = 0xff, 0xff
	if _, err := engine.DecodeCheckpointBinary(skew); err == nil {
		t.Fatal("layout version skew accepted")
	}

	// Truncation at every prefix length must error, not panic. Step by a
	// prime so the loop stays cheap while still hitting unaligned cuts.
	for cut := 0; cut < len(data); cut += 7 {
		if _, err := engine.DecodeCheckpointBinary(data[:cut]); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", cut, len(data))
		}
	}

	// Trailing garbage is corruption.
	if _, err := engine.DecodeCheckpointBinary(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}

	// An oversized length claim must be rejected before it sizes an
	// allocation: inflate the machine-count u32 that follows the fixed
	// header fields.
	bomb := append([]byte(nil), data...)
	// Walk to the machine-count u32 the same way the decoder does:
	// 4 magic + 2 version + 7×8 fixed fields, then the scenario section.
	off := 4 + 2 + 7*8
	if bomb[off] == 1 { // scenario present: u32 name len + name + 3×8
		nameLen := int(uint32(bomb[off+1]) | uint32(bomb[off+2])<<8 | uint32(bomb[off+3])<<16 | uint32(bomb[off+4])<<24)
		off += 1 + 4 + nameLen + 3*8
	} else {
		off++
	}
	bomb[off], bomb[off+1], bomb[off+2], bomb[off+3] = 0xff, 0xff, 0xff, 0x7f
	if _, err := engine.DecodeCheckpointBinary(bomb); err == nil {
		t.Fatal("oversized machine count accepted")
	}
}

// TestBinaryEncodeBufferReuse pins the zero-steady-state-allocation
// property of AppendBinary: once the scratch buffer has grown to size,
// re-encoding into it allocates nothing.
func TestBinaryEncodeBufferReuse(t *testing.T) {
	e := engine.New(clusterConfig(1, testJobs(4)))
	e.InstallScenario(testScenario(200 * time.Second))
	runStats(e, 30)
	cp := e.Snapshot()
	e.Close()

	buf := cp.AppendBinary(nil)
	want := append([]byte(nil), buf...)
	if avg := testing.AllocsPerRun(50, func() {
		buf = cp.AppendBinary(buf[:0])
	}); avg != 0 {
		t.Fatalf("AppendBinary into warm buffer allocates %.1f/op, want 0", avg)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("reused-buffer encode produced different bytes")
	}
}
