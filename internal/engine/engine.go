package engine

import (
	"fmt"
	"math"
	"time"

	"heracles/internal/core"
	"heracles/internal/fault"
	"heracles/internal/hw"
	"heracles/internal/lat"
	"heracles/internal/machine"
	"heracles/internal/parallel"
	"heracles/internal/scenario"
	"heracles/internal/sched"
	"heracles/internal/sim"
	"heracles/internal/slo"
	"heracles/internal/workload"
)

// BEAttach names one construction-time best-effort task for a node.
type BEAttach struct {
	WL        *workload.BE
	Placement workload.PlacementKind
}

// Config describes an engine: the node fleet, the workloads, and which
// optional subsystems (root fan-out sampling, dynamic leaf targets, the
// job scheduler) participate in the loop.
type Config struct {
	// Nodes is the number of simulated machines (default 1). The cluster
	// layer runs one engine with many nodes; the live layer runs one
	// engine per instance with a single node.
	Nodes int
	HW    hw.Config
	// LC is the calibrated latency-critical workload every node serves.
	LC *workload.LC
	// Heracles attaches a controller to every node; false models the
	// no-colocation baseline (BE scenario events are ignored).
	Heracles bool
	// Model is the shared offline DRAM model (nil falls back to counter
	// subtraction, see core.New).
	Model core.DRAMModel
	// LookupBE resolves BE workload names referenced by scenario events
	// and scheduler jobs. Unknown names panic inside the resolver or here:
	// composition is programmer (or pre-validated API) input.
	LookupBE func(name string) *workload.BE
	// InitialBEs returns the construction-time BE tasks of a node (nil for
	// none). Ignored when restoring from a checkpoint.
	InitialBEs func(node int) []BEAttach
	// Load is the initial offered LC load (scenario shapes override it
	// every epoch while active).
	Load float64
	// SLOScale tightens the controller-visible latency target of every
	// node (0 = unscaled) — the per-leaf target fraction of §5.3.
	SLOScale float64

	// RootSamples, when positive, enables the cluster root: an SLO is
	// calibrated at construction (root mean fan-out latency at 95% load)
	// and every epoch samples the root's fan-out latency with that many
	// draws from the (Seed, epoch) RNG stream.
	RootSamples int
	Seed        uint64

	// DynamicTargets enables the centralized root controller that
	// converts root-level slack into per-node SLO-scale adjustments every
	// AdjustPeriod (default 30s). Requires RootSamples > 0.
	DynamicTargets bool
	AdjustPeriod   time.Duration

	// Workers bounds how many nodes step concurrently within an epoch:
	// 0 selects parallel.DefaultWorkers, 1 forces the sequential
	// reference run. Results are bit-identical for any worker count.
	Workers int

	// Sched, when non-nil (and Heracles), attaches the best-effort job
	// scheduler: jobs dispatch onto nodes by advertised slack, evict when
	// a controller disables BE, and account goodput vs wasted CPU time.
	// A zero Sched.Seed inherits Config.Seed.
	Sched *sched.Config

	// Faults is the scenario-schedule fault plan: each entry fires at the
	// first epoch whose start time reaches its At. Invalid entries panic at
	// construction, like scenario events. Ignored when restoring from a
	// checkpoint (the checkpoint carries the schedule and its progress).
	Faults []fault.Fault

	// SLO, when non-nil, attaches the error-budget engine (DESIGN.md §15):
	// one burn-rate tracker per node plus a cluster-wide one, each fed one
	// violation bit per epoch. With SLO.Admission set, a node whose
	// fast-burn page fires advertises BE-disallowed to the scheduler until
	// the alert resolves. Tracker state rides the engine checkpoint.
	SLO *slo.Config
}

// EpochStat is the engine's per-epoch statistic — the cluster layer
// collects these as its result rows. Root fields are zero when the
// engine runs without root sampling (RootSamples == 0).
type EpochStat struct {
	At         time.Duration
	Load       float64
	RootMean   time.Duration // mean fan-out latency at the root (µ/30s proxy)
	RootFrac   float64       // RootMean / SLO
	EMU        float64       // mean effective machine utilisation over nodes
	LeafWorst  float64       // worst per-node tail latency / workload SLO
	Violations int           // nodes violating the workload SLO this epoch
	Down       int           // nodes inside a crash outage this epoch

	// Scheduler depths at this epoch (zero without Config.Sched).
	SchedQueue   int
	SchedRunning int
}

// EpochResult is everything one Step produced. Tel aliases the engine's
// scratch and each machine's telemetry ring: consume it before the next
// Step, copy to retain.
type EpochResult struct {
	Epoch uint64        // completed epochs, 1-based after the first Step
	At    time.Duration // simulated time at the start of the epoch
	Stat  EpochStat
	Tel   []machine.Telemetry
	// EventsApplied counts the scenario events that fired this epoch.
	EventsApplied int
	// FaultsApplied counts the faults (scheduled or injected) that fired
	// this epoch.
	FaultsApplied int
	// ScenarioDone carries the scenario's name on the epoch its horizon
	// elapsed; the load freezes at its final value.
	ScenarioDone string
	// SLOTransitions are the alert edges this epoch produced (nodes
	// ascending, cluster-wide last as Node=-1), nil without Config.SLO.
	// Like Tel it aliases engine scratch: consume before the next Step.
	SLOTransitions []slo.Transition
	// Spans is the wall-clock phase breakdown of this Step, feeding the
	// control plane's trace ring (GET /api/v1/instances/{id}/trace).
	// Wall time, not sim time — excluded from every determinism pin.
	Spans StepSpans
}

// StepSpans is the wall-clock time one Step spent per phase, in
// nanoseconds: scenario/fault event resolution, the scheduler tick, the
// node stepping fan-out, and the sequential reduction (including SLO
// tracker updates).
type StepSpans struct {
	EventsNs int64 `json:"events_ns"`
	SchedNs  int64 `json:"sched_ns"`
	NodesNs  int64 `json:"nodes_ns"`
	ReduceNs int64 `json:"reduce_ns"`
}

// node couples one machine with its (optional) controller. The fault
// environment sits between them: the controller monitors and actuates
// through fenv, which forwards to the machine except inside telemetry
// blackout or actuation-failure windows.
type node struct {
	m    *machine.Machine
	ctl  *core.Controller
	fenv *fault.Env
}

// runState is the active scenario, owned by the stepping goroutine.
type runState struct {
	sc        scenario.Scenario
	cursor    *scenario.Cursor
	t0        time.Duration // sim time when the scenario was installed
	loadScale float64
}

// Engine is the canonical epoch loop over a set of simulated machines.
// It is single-threaded by contract: callers step it from one goroutine
// (the cluster's run loop, or a live instance's driver) and apply any
// external mutation between Steps.
type Engine struct {
	cfg   Config
	nodes []*node
	epoch time.Duration
	slo   time.Duration // root SLO; zero without root sampling

	epochIdx uint64
	t        time.Duration

	leafScale  float64
	lastAdjust time.Duration
	rootEWMA   float64

	run *runState

	schd       *sched.Scheduler
	schedTasks map[int]schedTask       // job id -> live task
	schedOwned map[*machine.BETask]int // task -> owning job id (externOwner for live-fleet tasks)
	nodeStates []sched.NodeState

	// Fault state: the sorted schedule with its cursor, live injections
	// awaiting the next Step, the lifetime applied count, and the lazily
	// allocated per-node window table.
	faults        []fault.Fault
	faultNext     int
	pendingFaults []fault.Fault
	faultCount    int
	nf            []nodeFault

	// Error-budget trackers (nil without Config.SLO): one per node plus
	// the cluster-wide tracker, and the per-Step transition scratch.
	sloNodes   []*slo.Tracker
	sloCluster *slo.Tracker
	sloTrans   []slo.Transition

	pool     *parallel.Pool
	leafEMU  []float64
	leafFrac []float64
	leafTail []lat.EpochStats
	telBuf   []machine.Telemetry

	// Steady-state Step scratch (DESIGN.md §16 economics): the fan-out
	// and progress closures are bound once so a Step allocates nothing,
	// with the per-epoch inputs passed through fields instead of fresh
	// closure environments. rootRNG is reseeded from (Seed, epoch) each
	// epoch — identical stream to the DeriveRNG it replaced.
	stepFn     func(int)
	progressFn func(*sched.Job) float64
	stepT      time.Duration
	stepLoad   float64
	stepManual bool
	rootRNG    sim.RNG
}

type schedTask struct {
	node int
	task *machine.BETask
}

// externOwner marks a task owned by a scheduler outside this engine (the
// live control plane's fleet dispatcher); see OwnBE.
const externOwner = -1

// New builds an engine. It panics on structural misconfiguration (no LC
// workload, unresolvable scheduler job workloads): engine composition is
// programmer input, not runtime data.
func New(cfg Config) *Engine {
	e := newEngine(&cfg, true)
	for i, n := range e.nodes {
		if cfg.InitialBEs != nil {
			for _, att := range cfg.InitialBEs(i) {
				n.m.AddBE(att.WL, att.Placement)
			}
		}
		n.m.SetLoad(cfg.Load)
	}
	if cfg.Sched != nil && cfg.Heracles {
		sc2 := *cfg.Sched
		if sc2.Seed == 0 {
			sc2.Seed = cfg.Seed
		}
		for _, js := range sc2.Jobs {
			e.lookupBE(js.Workload) // fail before any simulation state exists
		}
		e.attachScheduler(sched.New(sc2))
	}
	return e
}

// newEngine builds the engine skeleton shared by New and Restore. With
// construct set it also builds the node fleet and runs the root-SLO
// calibration; Restore passes false — its nodes, clock and SLO all come
// from the checkpoint, so constructing throwaways here (N machines plus
// an 8-epoch calibration run) would only be waste.
func newEngine(cfg *Config, construct bool) *Engine {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.LC == nil {
		panic("engine: Config.LC workload missing")
	}
	if cfg.AdjustPeriod == 0 {
		cfg.AdjustPeriod = 30 * time.Second
	}
	e := &Engine{
		cfg:       *cfg,
		leafScale: cfg.SLOScale,
		leafEMU:   make([]float64, cfg.Nodes),
		leafFrac:  make([]float64, cfg.Nodes),
		leafTail:  make([]lat.EpochStats, cfg.Nodes),
		telBuf:    make([]machine.Telemetry, cfg.Nodes),
	}
	e.nodes = make([]*node, cfg.Nodes)
	e.epoch = time.Second
	if construct {
		for i := range e.nodes {
			m := machine.New(cfg.HW)
			m.SetLC(cfg.LC)
			if cfg.SLOScale > 0 {
				m.SetSLOScale(cfg.SLOScale)
			}
			e.nodes[i] = buildNode(m, cfg)
		}
		e.epoch = e.nodes[0].m.Epoch()
		e.installFaults(cfg.Faults)
		e.initSLO()

		// Root SLO: mean fan-out latency at 95% load with a small margin
		// for noise above the nominal crest (the paper sets the target as
		// µ/30s at 90% load). The calibration draws from its own derived
		// RNG stream, disjoint from every epoch's sampling stream.
		if cfg.RootSamples > 0 {
			e.slo = rootLatencyAt(*cfg, 0.95, sim.DeriveRNG(cfg.Seed, ^uint64(0)))
		}
	}
	// One persistent pool for the engine's lifetime: the epoch loop fans
	// out tens of thousands of times and must not spawn goroutines each
	// time.
	e.pool = parallel.NewPool(cfg.Workers)
	e.stepFn = e.stepNode // bound once: Step's fan-out allocates nothing
	return e
}

// attachScheduler wires a (new or restored) scheduler into the loop.
func (e *Engine) attachScheduler(s *sched.Scheduler) {
	e.schd = s
	if e.schedTasks == nil {
		e.schedTasks = make(map[int]schedTask)
	}
	if e.schedOwned == nil {
		e.schedOwned = make(map[*machine.BETask]int)
	}
	e.nodeStates = make([]sched.NodeState, len(e.nodes))
	e.progressFn = e.schedProgress // bound once: Tick gets no fresh closure
}

// schedProgress reports a job's consumed CPU-seconds: the live task's
// counter while it runs, the job's banked total otherwise.
func (e *Engine) schedProgress(j *sched.Job) float64 {
	if st, ok := e.schedTasks[j.ID]; ok {
		return st.task.CPUSec
	}
	return j.CPUSec
}

// lookupBE resolves a BE workload name via the config. Unknown names
// panic: scenario and job composition is programmer error, not runtime
// input.
func (e *Engine) lookupBE(name string) *workload.BE {
	if e.cfg.LookupBE != nil {
		if wl := e.cfg.LookupBE(name); wl != nil {
			return wl
		}
	}
	panic("engine: unknown BE workload " + name)
}

// initSLO builds fresh error-budget trackers once the epoch duration is
// known. Restore replaces their state from the checkpoint afterwards.
func (e *Engine) initSLO() {
	if e.cfg.SLO == nil {
		return
	}
	e.sloNodes = make([]*slo.Tracker, len(e.nodes))
	for i := range e.sloNodes {
		e.sloNodes[i] = slo.NewTracker(*e.cfg.SLO, e.epoch)
	}
	e.sloCluster = slo.NewTracker(*e.cfg.SLO, e.epoch)
}

// SLOEnabled reports whether the error-budget engine is attached.
func (e *Engine) SLOEnabled() bool { return e.sloCluster != nil }

// SLONodeStatus returns node i's error-budget snapshot (zero without
// Config.SLO).
func (e *Engine) SLONodeStatus(i int) slo.Status {
	if e.sloNodes == nil {
		return slo.Status{}
	}
	return e.sloNodes[i].Status()
}

// SLOClusterStatus returns the cluster-wide error-budget snapshot, whose
// violation bit is "any node violated this epoch" (zero without
// Config.SLO).
func (e *Engine) SLOClusterStatus() slo.Status {
	if e.sloCluster == nil {
		return slo.Status{}
	}
	return e.sloCluster.Status()
}

// Close releases the engine's worker pool.
func (e *Engine) Close() { e.pool.Close() }

// Nodes returns the node count.
func (e *Engine) Nodes() int { return len(e.nodes) }

// Machine returns node i's simulated machine. Mutate it only between
// Steps, from the stepping goroutine's context.
func (e *Engine) Machine(i int) *machine.Machine { return e.nodes[i].m }

// Controller returns node i's controller, or nil on baseline engines.
func (e *Engine) Controller(i int) *core.Controller { return e.nodes[i].ctl }

// SLO returns the calibrated root-level SLO (zero without root sampling).
func (e *Engine) SLO() time.Duration { return e.slo }

// Epoch returns the number of completed epochs.
func (e *Engine) Epoch() uint64 { return e.epochIdx }

// Now returns the simulated time at the start of the next epoch.
func (e *Engine) Now() time.Duration { return e.t }

// ScenarioActive reports whether a scenario currently drives the load.
func (e *Engine) ScenarioActive() bool { return e.run != nil }

// ScenarioName returns the active scenario's name ("" when none).
func (e *Engine) ScenarioName() string {
	if e.run == nil {
		return ""
	}
	return e.run.sc.Name
}

// SchedReport returns the job scheduler's report, or nil without one.
func (e *Engine) SchedReport() *sched.Report {
	if e.schd == nil {
		return nil
	}
	rep := e.schd.Report()
	return &rep
}

// InstallScenario starts driving the engine by the scenario from the
// next Step, replacing any active scenario. Events aimed at nodes
// outside the fleet panic, like unknown workload names: scenario
// composition is programmer (or pre-validated API) input.
func (e *Engine) InstallScenario(sc scenario.Scenario) {
	if err := sc.Validate(); err != nil {
		panic(err.Error())
	}
	for i, ev := range sc.Events {
		if ev.Leaf != scenario.AllLeaves && (ev.Leaf < 0 || ev.Leaf >= len(e.nodes)) {
			panic(fmt.Sprintf("engine: scenario event %d (%v) targets node %d of a %d-node engine",
				i, ev.Kind, ev.Leaf, len(e.nodes)))
		}
	}
	e.run = &runState{sc: sc, cursor: sc.Cursor(), t0: e.t, loadScale: 1}
}

// OwnBE marks a task as owned by a scheduler outside this engine (the
// live control plane's fleet dispatcher): scripted depart events and
// name-based removals leave it alone, exactly like the engine's own job
// tasks.
func (e *Engine) OwnBE(task *machine.BETask) {
	if e.schedOwned == nil {
		e.schedOwned = make(map[*machine.BETask]int)
	}
	e.schedOwned[task] = externOwner
}

// DisownBE releases an OwnBE marking when the external scheduler retires
// the task.
func (e *Engine) DisownBE(task *machine.BETask) { delete(e.schedOwned, task) }

// OwnedBE reports whether any scheduler owns the task's lifecycle.
func (e *Engine) OwnedBE(task *machine.BETask) bool {
	_, ok := e.schedOwned[task]
	return ok
}

// NodeState builds the scheduler's view of one node from the previous
// epoch's telemetry and the controller's enablement — the "slack
// advertised upward" half of the feedback loop. Both the engine's own
// scheduler tick and the live control plane's fleet dispatcher read
// nodes through this.
func (e *Engine) NodeState(i int) sched.NodeState {
	n := e.nodes[i]
	if e.NodeDown(i) {
		// A crashed node advertises nothing: no BE admission, no slack.
		// Its running jobs were already force-evicted at crash time.
		return sched.NodeState{ID: i, MaxBECores: n.m.MaxBECores()}
	}
	tel := n.m.Last()
	slack := 0.0
	if slo := n.m.SLO(); slo > 0 && tel.Time > 0 {
		slack = (slo.Seconds() - tel.TailLatency.Seconds()) / slo.Seconds()
	}
	// Burn-rate admission (DESIGN.md §15): while this node's fast-burn
	// page fires, raise the admission hold so the scheduler places no new
	// best-effort work here until the error budget recovers. Jobs already
	// running stay under the controller's own enablement — the hold
	// throttles, it never evicts.
	hold := e.sloNodes != nil && e.cfg.SLO.Admission && e.sloNodes[i].Page()
	return sched.NodeState{
		ID:         i,
		BEAllowed:  n.ctl != nil && n.ctl.BEEnabled(),
		AdmitHold:  hold,
		Slack:      slack,
		EMU:        tel.EMU,
		Load:       n.m.Load(),
		MaxBECores: n.m.MaxBECores(),
	}
}

// pushSLO feeds one violation bit to a tracker and appends any alert
// edges it produced to the per-Step transition scratch. node -1 is the
// cluster-wide tracker.
func (e *Engine) pushSLO(tr *slo.Tracker, node int, bad bool, epoch uint64) {
	p0, t0 := tr.Page(), tr.Ticket()
	tr.Push(bad)
	if p := tr.Page(); p != p0 {
		e.sloTrans = append(e.sloTrans, slo.Transition{Epoch: int(epoch), Node: node, Alert: slo.AlertPage, Firing: p})
	}
	if tk := tr.Ticket(); tk != t0 {
		e.sloTrans = append(e.sloTrans, slo.Transition{Epoch: int(epoch), Node: node, Alert: slo.AlertTicket, Firing: tk})
	}
}

// Step resolves one epoch: scenario events and the scheduler tick apply
// sequentially first (so mutation order never depends on worker
// scheduling), then the offered load, then every machine and controller
// step, then the epoch statistics reduce in node order.
func (e *Engine) Step() EpochResult {
	t := e.t
	res := EpochResult{Epoch: e.epochIdx + 1, At: t, Tel: e.telBuf}
	phase := time.Now()

	// Faults resolve first in the sequential window: a crash firing this
	// epoch must evict its jobs before the scheduler tick observes the
	// node, and a blackout must blind the controller before it polls.
	res.FaultsApplied = e.stepFaults(t)

	load := math.NaN() // NaN = manual mode, leave each machine's load alone
	if e.run != nil {
		st := t - e.run.t0
		if st >= e.run.sc.Duration {
			res.ScenarioDone = e.run.sc.Name
			e.run = nil
		} else {
			for _, ev := range e.run.cursor.Due(st) {
				e.applyEvent(ev)
				res.EventsApplied++
			}
			load = e.run.sc.LoadAt(st) * e.run.loadScale
			if load > 1 {
				load = 1
			}
		}
	}

	now := time.Now()
	res.Spans.EventsNs = now.Sub(phase).Nanoseconds()
	phase = now

	// The scheduler ticks in the same sequential window as the events,
	// against the previous epoch's telemetry: the slack each controller
	// advertised is what steers placement.
	if e.schd != nil {
		for i := range e.nodes {
			e.nodeStates[i] = e.NodeState(i)
		}
		actions := e.schd.Tick(t, e.nodeStates, e.progressFn)
		for _, a := range actions {
			e.applySchedAction(a)
		}
	}

	now = time.Now()
	res.Spans.SchedNs = now.Sub(phase).Nanoseconds()
	phase = now

	// Nodes are independent servers: step them concurrently, each writing
	// only its own slot, then reduce sequentially in node order so float
	// accumulation is identical for any worker count.
	manual := math.IsNaN(load)
	e.stepT, e.stepLoad, e.stepManual = t, load, manual
	e.pool.ForEach(len(e.nodes), e.stepFn)

	now = time.Now()
	res.Spans.NodesNs = now.Sub(phase).Nanoseconds()
	phase = now

	if e.sloNodes != nil {
		e.sloTrans = e.sloTrans[:0]
	}
	var (
		emu   float64
		worst float64
		viol  int
		down  int
	)
	for i := range e.nodes {
		if e.nf != nil && e.nf[i].downUntil > t {
			// A dark node is the worst possible violation: count it as
			// one, and pin LeafWorst at least to "at the SLO".
			down++
			viol++
			if worst < 1 {
				worst = 1
			}
			if e.sloNodes != nil {
				e.pushSLO(e.sloNodes[i], i, true, res.Epoch)
			}
			continue
		}
		emu += e.leafEMU[i]
		if e.leafFrac[i] > worst {
			worst = e.leafFrac[i]
		}
		if e.leafFrac[i] > 1 {
			viol++
		}
		if e.sloNodes != nil {
			e.pushSLO(e.sloNodes[i], i, e.leafFrac[i] > 1, res.Epoch)
		}
	}
	if e.sloCluster != nil {
		e.pushSLO(e.sloCluster, -1, viol > 0, res.Epoch)
		if len(e.sloTrans) > 0 {
			res.SLOTransitions = e.sloTrans
		}
	}
	stat := EpochStat{
		At:         t,
		EMU:        emu / float64(len(e.nodes)),
		LeafWorst:  worst,
		Violations: viol,
		Down:       down,
	}
	if manual {
		stat.Load = e.nodes[0].m.Load()
	} else {
		stat.Load = load
	}
	if e.cfg.RootSamples > 0 {
		// The root's fan-out sampling gets a fresh stream derived from
		// (seed, epoch): no shared mutable RNG state, so the samples do
		// not depend on execution order. The generator value lives on the
		// engine and is reseeded in place — same stream, no allocation.
		e.rootRNG.Reseed(e.cfg.Seed, e.epochIdx)
		mean := rootMean(e.leafTail, e.cfg.RootSamples, &e.rootRNG)
		stat.RootMean = mean
		stat.RootFrac = mean.Seconds() / e.slo.Seconds()
		e.adjustTargets(t, mean)
	}
	if e.schd != nil {
		stat.SchedQueue = e.schd.QueueDepth()
		stat.SchedRunning = e.schd.Running()
	}
	res.Stat = stat
	res.Spans.ReduceNs = time.Since(phase).Nanoseconds()

	e.epochIdx++
	e.t += e.epoch
	return res
}

// stepNode advances node i one epoch, writing only its own reduction
// slots. It is the pool fan-out body, bound once as stepFn; the per-epoch
// inputs arrive through stepT/stepLoad/stepManual, set before ForEach.
func (e *Engine) stepNode(i int) {
	n := e.nodes[i]
	if e.nf != nil && e.nf[i].downUntil > e.stepT {
		// The node is dark: its wall clock still advances, but it
		// serves nothing and reports nothing. Requests routed to it
		// fail upward — the reduction books it as a violation.
		n.m.Clock().Advance(e.epoch)
		e.telBuf[i] = machine.Telemetry{}
		e.leafEMU[i] = 0
		e.leafFrac[i] = 0
		e.leafTail[i] = lat.EpochStats{}
		return
	}
	if !e.stepManual {
		n.m.SetLoad(e.stepLoad)
	}
	tel := n.m.Step()
	if n.ctl != nil {
		n.ctl.Step(n.m.Clock().Now())
	}
	e.telBuf[i] = tel
	e.leafEMU[i] = tel.EMU
	e.leafFrac[i] = tel.TailLatency.Seconds() / e.cfg.LC.SLO.Seconds()
	e.leafTail[i] = tel.Lat
}

// adjustTargets is the centralized root controller (§5.3 future work):
// convert root-level slack into looser per-node targets, and tighten
// quickly when the root approaches its SLO.
func (e *Engine) adjustTargets(t time.Duration, mean time.Duration) {
	if !e.cfg.DynamicTargets || !e.cfg.Heracles {
		return
	}
	if e.rootEWMA == 0 {
		e.rootEWMA = mean.Seconds()
	} else {
		e.rootEWMA = 0.2*mean.Seconds() + 0.8*e.rootEWMA
	}
	if t-e.lastAdjust < e.cfg.AdjustPeriod {
		return
	}
	e.lastAdjust = t
	rootSlack := (e.slo.Seconds() - e.rootEWMA) / e.slo.Seconds()
	switch {
	case rootSlack < 0.05:
		e.leafScale -= 0.05
	case rootSlack > 0.15:
		e.leafScale += 0.02
	}
	if e.leafScale < 0.5 {
		e.leafScale = 0.5
	}
	if e.leafScale > 0.90 {
		e.leafScale = 0.90
	}
	for _, n := range e.nodes {
		n.m.SetSLOScale(e.leafScale)
	}
}

// applyEvent applies one scenario event to the targeted nodes. BE churn
// applies only to controller-managed nodes: the baseline configuration
// models no colocation, so arrivals have nowhere to run. Scheduler-owned
// tasks are off-limits to scripted departures — a scheduler (this
// engine's or an external one) is the sole owner of its jobs' lifecycle,
// otherwise a depart event would freeze a job's progress forever while
// the scheduler still believes it is running.
func (e *Engine) applyEvent(ev scenario.Event) {
	for i, n := range e.nodes {
		if ev.Leaf != scenario.AllLeaves && ev.Leaf != i {
			continue
		}
		switch ev.Kind {
		case scenario.EventBEArrive:
			if n.ctl == nil {
				continue
			}
			wl := e.lookupBE(ev.Workload)
			// The arrival inherits the controller's current enablement so
			// a task landing mid-emergency or mid-cooldown stays parked
			// until the controller re-enables BE execution. The machine
			// state covers the window before the controller's first
			// enable, when construction-time BE tasks are running.
			enabled := n.ctl.BEEnabled() || n.m.BEEnabled()
			task := n.m.AddBE(wl, workload.PlaceDedicated)
			task.Enabled = enabled
			n.m.Partition(n.m.BECoreCount())
		case scenario.EventBEDepart:
			if n.ctl == nil {
				continue
			}
			// Collect first: RemoveBE splices the live task list.
			var departing []*machine.BETask
			for _, be := range n.m.BEs() {
				if _, owned := e.schedOwned[be]; owned {
					continue
				}
				if be.WL.Spec.Name == ev.Workload {
					departing = append(departing, be)
				}
			}
			for _, be := range departing {
				n.m.RemoveBE(be)
			}
			if len(departing) > 0 {
				n.m.Partition(n.m.BECoreCount())
			}
		case scenario.EventLeafDegrade:
			n.m.SetDegrade(ev.Factor)
		case scenario.EventSLOScale:
			n.m.SetSLOScale(ev.Factor)
		}
	}
	switch ev.Kind {
	case scenario.EventLoadScale:
		if e.run != nil {
			e.run.loadScale = ev.Factor
		}
	case scenario.EventSLOScale:
		if ev.Leaf == scenario.AllLeaves {
			e.leafScale = ev.Factor
		}
	}
}

// applySchedAction executes one scheduler instruction on the fleet:
// dispatch installs the job's workload as a dedicated BE task, the stop
// kinds retire it (CompleteBE banks goodput, RemoveBE charges the lost
// work) and re-partition the freed cores back to the LC task.
func (e *Engine) applySchedAction(a sched.Action) {
	n := e.nodes[a.Node]
	switch a.Kind {
	case sched.ActionDispatch:
		// The scheduler filters eligibility before placement, so a
		// dispatch onto a BE-disabled node is a scheduler bug, not a
		// runtime condition: fail loudly (the invariant the tests pin).
		if n.ctl == nil || !n.ctl.BEEnabled() {
			panic(fmt.Sprintf("engine: scheduler dispatched job %d to node %d whose controller has BE disabled", a.Job, a.Node))
		}
		task := n.m.AddBE(e.lookupBE(a.Workload), workload.PlaceDedicated)
		task.Enabled = true
		n.m.Partition(n.m.BECoreCount())
		e.schedTasks[a.Job] = schedTask{node: a.Node, task: task}
		e.schedOwned[task] = a.Job
	case sched.ActionEvict, sched.ActionFail, sched.ActionComplete:
		st, ok := e.schedTasks[a.Job]
		if !ok {
			return
		}
		if a.Kind == sched.ActionComplete {
			n.m.CompleteBE(st.task)
		} else {
			n.m.RemoveBE(st.task)
		}
		n.m.Partition(n.m.BECoreCount())
		delete(e.schedTasks, a.Job)
		delete(e.schedOwned, st.task)
	}
}

// rootMean estimates the mean fan-out latency: each request's latency is
// the maximum over per-node samples drawn from the nodes' latency
// distributions (approximated as lognormal matching each node's measured
// p50/p99).
func rootMean(leafStats []lat.EpochStats, samples int, rng *sim.RNG) time.Duration {
	var sum float64
	for s := 0; s < samples; s++ {
		var worst float64
		for _, ls := range leafStats {
			v := sampleLeaf(ls, rng)
			if v > worst {
				worst = v
			}
		}
		sum += worst
	}
	return time.Duration(sum / float64(samples) * float64(time.Second))
}

// sampleLeaf draws one response-time sample from a node's epoch stats.
func sampleLeaf(ls lat.EpochStats, rng *sim.RNG) float64 {
	p50 := ls.P50.Seconds()
	p99 := ls.P99.Seconds()
	if p50 <= 0 {
		return 0
	}
	if p99 < p50 {
		p99 = p50
	}
	// Lognormal with median p50 and 99th percentile p99:
	// sigma = ln(p99/p50)/z99.
	sigma := 0.0
	if p99 > p50 {
		sigma = math.Log(p99/p50) / 2.326
	}
	return p50 * math.Exp(rng.Norm(0, sigma))
}

// rootLatencyAt computes the baseline root mean latency at the given load.
func rootLatencyAt(cfg Config, load float64, rng *sim.RNG) time.Duration {
	stats := make([]lat.EpochStats, cfg.Nodes)
	m := machine.New(cfg.HW)
	m.SetLC(cfg.LC)
	m.SetLoad(load)
	var tel machine.Telemetry
	for i := 0; i < 8; i++ {
		tel = m.Step()
	}
	for i := range stats {
		stats[i] = tel.Lat
	}
	return rootMean(stats, cfg.RootSamples, rng)
}
