package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"heracles/internal/core"
	"heracles/internal/fault"
	"heracles/internal/machine"
	"heracles/internal/scenario"
	"heracles/internal/sched"
	"heracles/internal/slo"
	"heracles/internal/workload"
)

// CheckpointVersion is the current checkpoint format version. Restore
// rejects other versions; bump it on any incompatible change to the
// layout (and document the change in DESIGN.md §11).
const CheckpointVersion = 1

// Checkpoint is the engine's complete serializable state: machines,
// controllers, scheduler, scenario cursor position, the epoch index that
// roots the per-epoch RNG streams, and the dynamic-target latches.
// Restoring it (with the same Config and scenario value) continues the
// run bit-identically to one that was never interrupted.
//
// The scenario itself does not travel in the checkpoint — load shapes
// are arbitrary code — only its name and cursor position do; the caller
// re-supplies the scenario on Restore (the live control plane persists
// its JSON ScenarioSpec alongside for exactly this purpose).
type Checkpoint struct {
	Version int `json:"version"`

	Epoch uint64        `json:"epoch"`
	Now   time.Duration `json:"now_ns"`
	SLO   time.Duration `json:"slo_ns,omitempty"`

	LeafScale  float64       `json:"leaf_scale,omitempty"`
	LastAdjust time.Duration `json:"last_adjust_ns,omitempty"`
	RootEWMA   float64       `json:"root_ewma,omitempty"`

	Scenario *ScenarioState `json:"scenario,omitempty"`

	Machines    []machine.Snapshot      `json:"machines"`
	Controllers []*core.ControllerState `json:"controllers,omitempty"`

	Sched         *sched.State   `json:"sched,omitempty"`
	SchedBindings []SchedBinding `json:"sched_bindings,omitempty"`

	// Faults carries the fault schedule with its cursor and the open
	// per-node fault windows. Omitted entirely on fault-free engines, so
	// pre-fault checkpoints restore unchanged.
	Faults *FaultState `json:"faults,omitempty"`

	// Budget carries the error-budget engine's trackers (DESIGN.md §15).
	// Omitted when Config.SLO is nil, so older checkpoints restore
	// unchanged and an SLO-enabled engine restoring one simply starts
	// its windows empty.
	Budget *SLOState `json:"slo_budget,omitempty"`
}

// SLOState is the serialized error-budget engine: one burn-rate tracker
// per node plus the cluster-wide tracker.
type SLOState struct {
	Nodes   []slo.TrackerState `json:"nodes"`
	Cluster slo.TrackerState   `json:"cluster"`
}

// FaultState is the engine's serialized fault-injection state.
type FaultState struct {
	Schedule []fault.Fault    `json:"schedule,omitempty"`
	Next     int              `json:"next"`
	Applied  int              `json:"applied"`
	Pending  []fault.Fault    `json:"pending,omitempty"`
	Nodes    []NodeFaultState `json:"nodes,omitempty"`
}

// NodeFaultState is one node's open fault windows (absolute deadlines in
// simulated time; zero = closed).
type NodeFaultState struct {
	DownUntil     time.Duration `json:"down_until_ns,omitempty"`
	BlackoutUntil time.Duration `json:"blackout_until_ns,omitempty"`
	ActFailUntil  time.Duration `json:"act_fail_until_ns,omitempty"`
	SlowUntil     time.Duration `json:"slow_until_ns,omitempty"`
}

// ScenarioState is the active scenario's cursor position.
type ScenarioState struct {
	Name      string        `json:"name,omitempty"`
	T0        time.Duration `json:"t0_ns"`
	Delivered int           `json:"delivered"`
	LoadScale float64       `json:"load_scale"`
}

// SchedBinding reconnects one running job to its live BE task: Task is
// the index into the node machine's BE list at snapshot time.
type SchedBinding struct {
	Job  int `json:"job"`
	Node int `json:"node"`
	Task int `json:"task"`
}

// Snapshot serializes the engine's state. Call it between Steps (from
// the stepping goroutine's context); every buffer is deep-copied, so the
// checkpoint stays valid while the engine continues.
//
// Tasks owned by an external scheduler (OwnBE) are captured as plain
// machine state — their owning scheduler lives outside the engine, so a
// restored engine does not re-mark them; the external scheduler re-
// establishes ownership when it re-dispatches.
func (e *Engine) Snapshot() *Checkpoint {
	cp := &Checkpoint{
		Version:    CheckpointVersion,
		Epoch:      e.epochIdx,
		Now:        e.t,
		SLO:        e.slo,
		LeafScale:  e.leafScale,
		LastAdjust: e.lastAdjust,
		RootEWMA:   e.rootEWMA,
	}
	if e.run != nil {
		cp.Scenario = &ScenarioState{
			Name:      e.run.sc.Name,
			T0:        e.run.t0,
			Delivered: e.run.cursor.Delivered(),
			LoadScale: e.run.loadScale,
		}
	}
	cp.Machines = make([]machine.Snapshot, len(e.nodes))
	hasCtl := false
	for i, n := range e.nodes {
		cp.Machines[i] = n.m.Snapshot()
		if n.ctl != nil {
			hasCtl = true
		}
	}
	if hasCtl {
		cp.Controllers = make([]*core.ControllerState, len(e.nodes))
		for i, n := range e.nodes {
			if n.ctl != nil {
				st := n.ctl.Snapshot()
				cp.Controllers[i] = &st
			}
		}
	}
	if e.schd != nil {
		st := e.schd.Snapshot()
		cp.Sched = &st
		jobs := make([]int, 0, len(e.schedTasks))
		for id := range e.schedTasks {
			jobs = append(jobs, id)
		}
		sort.Ints(jobs)
		for _, id := range jobs {
			st := e.schedTasks[id]
			idx := -1
			for ti, be := range e.nodes[st.node].m.BEs() {
				if be == st.task {
					idx = ti
					break
				}
			}
			if idx < 0 {
				continue // task already retired; the scheduler will notice
			}
			cp.SchedBindings = append(cp.SchedBindings, SchedBinding{Job: id, Node: st.node, Task: idx})
		}
	}
	if len(e.faults) > 0 || e.faultCount > 0 || len(e.pendingFaults) > 0 || e.nf != nil {
		fs := &FaultState{
			Next:    e.faultNext,
			Applied: e.faultCount,
		}
		fs.Schedule = append([]fault.Fault(nil), e.faults...)
		fs.Pending = append([]fault.Fault(nil), e.pendingFaults...)
		if e.nf != nil {
			fs.Nodes = make([]NodeFaultState, len(e.nf))
			for i, nf := range e.nf {
				fs.Nodes[i] = NodeFaultState{
					DownUntil:     nf.downUntil,
					BlackoutUntil: nf.blackoutUntil,
					ActFailUntil:  nf.actFailUntil,
					SlowUntil:     nf.slowUntil,
				}
			}
		}
		cp.Faults = fs
	}
	if e.sloNodes != nil {
		bs := &SLOState{Cluster: e.sloCluster.State()}
		bs.Nodes = make([]slo.TrackerState, len(e.sloNodes))
		for i, tr := range e.sloNodes {
			bs.Nodes[i] = tr.State()
		}
		cp.Budget = bs
	}
	return cp
}

// Restore rebuilds an engine from a checkpoint. cfg must describe the
// same fleet the checkpoint was taken from (node count, hardware,
// workloads, scheduler policy); cfg.InitialBEs and cfg.Load are ignored
// — machine state comes from the checkpoint. sc re-supplies the active
// scenario when the checkpoint recorded one (matched by name); pass nil
// when none was active.
func Restore(cfg Config, cp *Checkpoint, sc *scenario.Scenario) (*Engine, error) {
	if cp == nil {
		return nil, fmt.Errorf("engine: nil checkpoint")
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("engine: checkpoint version %d, this build reads version %d", cp.Version, CheckpointVersion)
	}
	if len(cp.Machines) == 0 {
		return nil, fmt.Errorf("engine: checkpoint has no machines")
	}
	cfg.Nodes = len(cp.Machines)
	e := newEngine(&cfg, false)

	// Rebuild every node from its snapshot. The LC workload is resolved
	// against cfg.LC (by name — a checkpoint for a different workload is
	// an error, not a silent mismatch); BE names resolve through the
	// usual catalogue.
	lcByName := func(name string) *workload.LC {
		if cfg.LC != nil && cfg.LC.Spec.Name == name {
			return cfg.LC
		}
		return nil
	}
	beByName := func(name string) *workload.BE {
		if cfg.LookupBE == nil {
			return nil
		}
		return cfg.LookupBE(name)
	}
	for i := range cp.Machines {
		if cp.Machines[i].HW != cfg.HW {
			return nil, fmt.Errorf("engine: checkpoint machine %d hardware differs from Config.HW", i)
		}
		m, err := machine.RestoreMachine(cp.Machines[i], lcByName, beByName)
		if err != nil {
			return nil, err
		}
		n := buildNode(m, &cfg)
		if i < len(cp.Controllers) && cp.Controllers[i] != nil {
			if n.ctl == nil {
				return nil, fmt.Errorf("engine: checkpoint node %d has controller state but Config.Heracles is false", i)
			}
			n.ctl.Restore(*cp.Controllers[i])
		} else if n.ctl != nil {
			return nil, fmt.Errorf("engine: Config.Heracles is true but checkpoint node %d has no controller state", i)
		}
		e.nodes[i] = n
	}

	e.epoch = e.nodes[0].m.Epoch()
	e.epochIdx = cp.Epoch
	e.t = cp.Now
	e.slo = cp.SLO
	e.leafScale = cp.LeafScale
	e.lastAdjust = cp.LastAdjust
	e.rootEWMA = cp.RootEWMA
	e.initSLO()
	if cp.Budget != nil {
		if cfg.SLO == nil {
			return nil, fmt.Errorf("engine: checkpoint has SLO budget state but Config.SLO is nil")
		}
		if len(cp.Budget.Nodes) != len(e.nodes) {
			return nil, fmt.Errorf("engine: checkpoint SLO state covers %d nodes of a %d-node fleet", len(cp.Budget.Nodes), len(e.nodes))
		}
		for i, st := range cp.Budget.Nodes {
			tr, err := slo.RestoreTracker(*cfg.SLO, e.epoch, st)
			if err != nil {
				return nil, fmt.Errorf("engine: node %d: %w", i, err)
			}
			e.sloNodes[i] = tr
		}
		tr, err := slo.RestoreTracker(*cfg.SLO, e.epoch, cp.Budget.Cluster)
		if err != nil {
			return nil, err
		}
		e.sloCluster = tr
	}

	if cp.Scenario != nil {
		if sc == nil {
			return nil, fmt.Errorf("engine: checkpoint has active scenario %q but none was supplied to Restore", cp.Scenario.Name)
		}
		if sc.Name != cp.Scenario.Name {
			return nil, fmt.Errorf("engine: checkpoint scenario %q does not match supplied scenario %q", cp.Scenario.Name, sc.Name)
		}
		cursor := sc.Cursor()
		cursor.Skip(cp.Scenario.Delivered)
		e.run = &runState{sc: *sc, cursor: cursor, t0: cp.Scenario.T0, loadScale: cp.Scenario.LoadScale}
	}

	if cp.Sched != nil {
		s, err := sched.RestoreScheduler(*cp.Sched)
		if err != nil {
			return nil, err
		}
		e.attachScheduler(s)
		for _, b := range cp.SchedBindings {
			if b.Node < 0 || b.Node >= len(e.nodes) {
				return nil, fmt.Errorf("engine: sched binding for job %d names node %d of %d", b.Job, b.Node, len(e.nodes))
			}
			bes := e.nodes[b.Node].m.BEs()
			if b.Task < 0 || b.Task >= len(bes) {
				return nil, fmt.Errorf("engine: sched binding for job %d names BE task %d of %d on node %d", b.Job, b.Task, len(bes), b.Node)
			}
			task := bes[b.Task]
			e.schedTasks[b.Job] = schedTask{node: b.Node, task: task}
			e.schedOwned[task] = b.Job
		}
	}

	if cp.Faults != nil {
		fs := cp.Faults
		if fs.Next < 0 || fs.Next > len(fs.Schedule) {
			return nil, fmt.Errorf("engine: checkpoint fault cursor %d outside its %d-entry schedule", fs.Next, len(fs.Schedule))
		}
		e.faults = append([]fault.Fault(nil), fs.Schedule...)
		e.faultNext = fs.Next
		e.faultCount = fs.Applied
		e.pendingFaults = append([]fault.Fault(nil), fs.Pending...)
		if len(fs.Nodes) > 0 {
			if len(fs.Nodes) != len(e.nodes) {
				return nil, fmt.Errorf("engine: checkpoint fault state covers %d nodes of a %d-node fleet", len(fs.Nodes), len(e.nodes))
			}
			e.nf = make([]nodeFault, len(e.nodes))
			for i, ns := range fs.Nodes {
				e.nf[i] = nodeFault{
					downUntil:     ns.DownUntil,
					blackoutUntil: ns.BlackoutUntil,
					actFailUntil:  ns.ActFailUntil,
					slowUntil:     ns.SlowUntil,
				}
				// Re-arm the interposition flags for windows still open at
				// the restore point; SlowMachine needs nothing here (the
				// degrade factor travels in the machine snapshot).
				if fe := e.nodes[i].fenv; fe != nil {
					fe.SetBlackout(ns.BlackoutUntil > e.t)
					fe.SetActuationFail(ns.ActFailUntil > e.t)
				}
			}
		}
	}
	return e, nil
}

// Encode writes the checkpoint as indented JSON.
func (cp *Checkpoint) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(cp)
}

// DecodeCheckpoint reads a JSON checkpoint.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("engine: decoding checkpoint: %w", err)
	}
	return &cp, nil
}

// WriteFile atomically persists the checkpoint (write-then-rename, so a
// crash mid-write never corrupts an existing checkpoint).
func (cp *Checkpoint) WriteFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := cp.Encode(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadFile loads a checkpoint persisted with WriteFile.
func ReadFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeCheckpoint(f)
}
