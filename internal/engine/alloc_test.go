package engine_test

import (
	"testing"
	"time"

	"heracles/internal/engine"
)

// TestStepDoesNotAllocate pins the engine's zero-allocation stepping
// property: once the telemetry rings are full (600 epochs) every
// steady-state Step — scenario evaluation, scheduler tick, machine and
// controller fan-out, root sampling — runs entirely on the engine's
// scratch state. The warmup must outlast the ring fill; entries get
// fresh inner slices until then. Mirrors the machine-level pin in
// internal/machine/alloc_test.go, one layer up.
func TestStepDoesNotAllocate(t *testing.T) {
	if testing.Short() {
		t.Skip("620-epoch warmup")
	}
	configs := []struct {
		name string
		cfg  engine.Config
	}{
		{"plain", clusterConfig(1, nil)},
		{"with-sched", clusterConfig(1, testJobs(8))},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			eng := engine.New(tc.cfg)
			defer eng.Close()
			eng.InstallScenario(testScenario(100 * time.Hour))
			for i := 0; i < 650; i++ {
				eng.Step()
			}
			if avg := testing.AllocsPerRun(200, func() {
				eng.Step()
			}); avg != 0 {
				t.Fatalf("steady-state Step allocates %.1f allocs/op, want 0", avg)
			}
		})
	}
}
