package engine

import (
	"fmt"
	"sort"
	"time"

	"heracles/internal/codec"
	"heracles/internal/core"
	"heracles/internal/fault"
	"heracles/internal/hw"
	"heracles/internal/machine"
	"heracles/internal/sched"
	"heracles/internal/slo"
	"heracles/internal/workload"
)

// The binary checkpoint codec (DESIGN.md §16): a versioned, length-
// prefixed little-endian encoding of Checkpoint, hand-rolled over
// internal/codec. It exists for the hot paths — periodic heraclesd
// snapshots, in-process shard migration, supervisor restart — where the
// reflection-driven JSON codec dominates the cost of a snapshot; JSON
// remains the wire/interchange format (REST bodies, cross-daemon
// migration, operator tooling). Both codecs decode to the same
// Checkpoint value, so a restored engine continues bit-identically
// regardless of which format carried the state.
//
// Layout: a 4-byte magic ("HRCB"), a uint16 format version, then the
// checkpoint fields in fixed order with uint32 length prefixes on every
// string and slice. Optional sections (scenario, sched, faults, budget)
// carry a presence byte. Maps encode in sorted key order, so the same
// state always produces the same bytes. Integrity (CRC-32C) is the
// enclosing envelope's job — see internal/serve's checkpoint files —
// keeping codec, checksum and storage concerns separate, exactly like
// the JSON path.

// binaryMagic distinguishes binary checkpoints from JSON ones (JSON
// always starts with '{' or whitespace); readers auto-detect by prefix.
var binaryMagic = [4]byte{'H', 'R', 'C', 'B'}

// BinaryVersion is the binary layout version. DecodeCheckpointBinary
// rejects other versions; bump it on any incompatible layout change
// (and document the change in DESIGN.md §16). It is independent of
// CheckpointVersion, which versions the logical state schema.
const BinaryVersion = 1

// IsBinaryCheckpoint reports whether data begins with the binary
// checkpoint magic — the auto-detection used by every resume path.
func IsBinaryCheckpoint(data []byte) bool {
	return len(data) >= 4 && [4]byte(data[:4]) == binaryMagic
}

// EncodeBinary serialises the checkpoint to a fresh buffer.
func (cp *Checkpoint) EncodeBinary() []byte { return cp.AppendBinary(nil) }

// AppendBinary serialises the checkpoint, appending to buf (pass scratch
// from a previous encode to amortise allocation) and returning the
// extended buffer.
func (cp *Checkpoint) AppendBinary(buf []byte) []byte {
	w := codec.NewWriter(buf)
	w.U8(binaryMagic[0])
	w.U8(binaryMagic[1])
	w.U8(binaryMagic[2])
	w.U8(binaryMagic[3])
	w.U16(BinaryVersion)

	w.Int(cp.Version)
	w.U64(cp.Epoch)
	w.Duration(cp.Now)
	w.Duration(cp.SLO)
	w.F64(cp.LeafScale)
	w.Duration(cp.LastAdjust)
	w.F64(cp.RootEWMA)

	w.Bool(cp.Scenario != nil)
	if cp.Scenario != nil {
		w.String(cp.Scenario.Name)
		w.Duration(cp.Scenario.T0)
		w.Int(cp.Scenario.Delivered)
		w.F64(cp.Scenario.LoadScale)
	}

	w.U32(uint32(len(cp.Machines)))
	for i := range cp.Machines {
		appendMachine(w, &cp.Machines[i])
	}

	w.U32(uint32(len(cp.Controllers)))
	for _, st := range cp.Controllers {
		w.Bool(st != nil)
		if st != nil {
			appendController(w, st)
		}
	}

	w.Bool(cp.Sched != nil)
	if cp.Sched != nil {
		appendSched(w, cp.Sched)
	}
	w.U32(uint32(len(cp.SchedBindings)))
	for _, b := range cp.SchedBindings {
		w.Int(b.Job)
		w.Int(b.Node)
		w.Int(b.Task)
	}

	w.Bool(cp.Faults != nil)
	if cp.Faults != nil {
		appendFaults(w, cp.Faults)
	}

	w.Bool(cp.Budget != nil)
	if cp.Budget != nil {
		w.U32(uint32(len(cp.Budget.Nodes)))
		for i := range cp.Budget.Nodes {
			appendTracker(w, &cp.Budget.Nodes[i])
		}
		appendTracker(w, &cp.Budget.Cluster)
	}
	return w.Bytes()
}

// DecodeCheckpointBinary parses a binary checkpoint. Malformed input of
// any kind — truncation, oversized length claims, version skew, trailing
// garbage — returns an error, never a panic.
func DecodeCheckpointBinary(data []byte) (*Checkpoint, error) {
	if !IsBinaryCheckpoint(data) {
		return nil, fmt.Errorf("engine: not a binary checkpoint (missing %q magic)", binaryMagic)
	}
	r := codec.NewReader(data[4:])
	if v := r.U16(); v != BinaryVersion {
		return nil, fmt.Errorf("engine: binary checkpoint layout version %d, this build reads version %d", v, BinaryVersion)
	}

	cp := &Checkpoint{}
	cp.Version = r.Int()
	cp.Epoch = r.U64()
	cp.Now = r.Duration()
	cp.SLO = r.Duration()
	cp.LeafScale = r.F64()
	cp.LastAdjust = r.Duration()
	cp.RootEWMA = r.F64()

	if r.Bool() {
		cp.Scenario = &ScenarioState{
			Name:      r.String(),
			T0:        r.Duration(),
			Delivered: r.Int(),
			LoadScale: r.F64(),
		}
	}

	// A machine snapshot is at least ~150 bytes; 32 is a safe floor for
	// the count guard.
	if n := r.Count(32); n > 0 {
		cp.Machines = make([]machine.Snapshot, n)
		for i := range cp.Machines {
			readMachine(r, &cp.Machines[i])
			if r.Err() != nil {
				return nil, fmt.Errorf("engine: decoding binary checkpoint machine %d: %w", i, r.Err())
			}
		}
	}

	if n := r.Count(1); n > 0 {
		cp.Controllers = make([]*core.ControllerState, n)
		for i := range cp.Controllers {
			if r.Bool() {
				st := readController(r)
				cp.Controllers[i] = &st
			}
		}
	}

	if r.Bool() {
		st := readSched(r)
		if r.Err() != nil {
			return nil, fmt.Errorf("engine: decoding binary checkpoint scheduler: %w", r.Err())
		}
		cp.Sched = &st
	}
	if n := r.Count(24); n > 0 {
		cp.SchedBindings = make([]SchedBinding, n)
		for i := range cp.SchedBindings {
			cp.SchedBindings[i] = SchedBinding{Job: r.Int(), Node: r.Int(), Task: r.Int()}
		}
	}

	if r.Bool() {
		cp.Faults = readFaults(r)
	}

	if r.Bool() {
		bs := &SLOState{}
		if n := r.Count(8); n > 0 {
			bs.Nodes = make([]slo.TrackerState, n)
			for i := range bs.Nodes {
				bs.Nodes[i] = readTracker(r)
			}
		}
		bs.Cluster = readTracker(r)
		cp.Budget = bs
	}

	if err := r.Expect(); err != nil {
		return nil, fmt.Errorf("engine: decoding binary checkpoint: %w", err)
	}
	return cp, nil
}

// appendMachine encodes one machine snapshot: hardware config, clock,
// tasks, accumulators, then the telemetry ring.
func appendMachine(w *codec.Writer, s *machine.Snapshot) {
	appendHW(w, &s.HW)
	w.Duration(s.Epoch)
	w.Duration(s.Now)

	w.Bool(s.LC != nil)
	if s.LC != nil {
		w.String(s.LC.Workload)
		w.F64(s.LC.Load)
		w.Ints(s.LC.Cores)
		w.Int(s.LC.Ways)
		w.Bool(s.LC.OSShared)
	}

	w.U32(uint32(len(s.BEs)))
	for i := range s.BEs {
		be := &s.BEs[i]
		w.String(be.Workload)
		w.Int(int(be.Placement))
		w.Bool(be.Enabled)
		w.Ints(be.Cores)
		w.Int(be.Ways)
		w.F64(be.FreqCapGHz)
		w.F64(be.LastRate)
		w.F64(be.LastNorm)
		w.F64(be.LastHit)
		w.F64(be.CPUSec)
	}

	w.F64(s.BENetCeilGBs)
	w.F64(s.SLOScale)
	w.F64(s.Degrade)
	w.F64(s.BEGoodCPUSec)
	w.F64(s.BELostCPUSec)
	w.F64(s.LastService)

	w.U32(uint32(len(s.Recent)))
	for i := range s.Recent {
		appendTelemetry(w, &s.Recent[i])
	}
}

// readMachine decodes one machine snapshot.
func readMachine(r *codec.Reader, s *machine.Snapshot) {
	readHW(r, &s.HW)
	s.Epoch = r.Duration()
	s.Now = r.Duration()

	if r.Bool() {
		s.LC = &machine.LCSnapshot{
			Workload: r.String(),
			Load:     r.F64(),
			Cores:    r.Ints(),
			Ways:     r.Int(),
			OSShared: r.Bool(),
		}
	}

	if n := r.Count(32); n > 0 {
		s.BEs = make([]machine.BESnapshot, n)
		for i := range s.BEs {
			s.BEs[i] = machine.BESnapshot{
				Workload:   r.String(),
				Placement:  workload.PlacementKind(r.Int()),
				Enabled:    r.Bool(),
				Cores:      r.Ints(),
				Ways:       r.Int(),
				FreqCapGHz: r.F64(),
				LastRate:   r.F64(),
				LastNorm:   r.F64(),
				LastHit:    r.F64(),
				CPUSec:     r.F64(),
			}
		}
	}

	s.BENetCeilGBs = r.F64()
	s.SLOScale = r.F64()
	s.Degrade = r.F64()
	s.BEGoodCPUSec = r.F64()
	s.BELostCPUSec = r.F64()
	s.LastService = r.F64()

	// A telemetry entry is ~45 fixed fields (≥360 bytes); 64 is a safe
	// floor for the count guard. Inner float slices pack into one backing
	// array sized from the hardware config (2 per-socket series plus one
	// per-core series per entry), mirroring the snapshot-side packing.
	if n := r.Count(64); n > 0 && r.Err() == nil {
		s.Recent = make([]machine.Telemetry, n)
		cores := s.HW.Sockets * s.HW.CoresPerSocket * s.HW.ThreadsPerCore
		backing := make([]float64, 0, n*(2*s.HW.Sockets+cores))
		for i := range s.Recent {
			backing = readTelemetry(r, &s.Recent[i], backing)
		}
	}
}

// appendHW encodes the hardware config field-by-field (it is a flat
// struct of ints and floats).
func appendHW(w *codec.Writer, c *hw.Config) {
	w.Int(c.Sockets)
	w.Int(c.CoresPerSocket)
	w.Int(c.ThreadsPerCore)
	w.F64(c.NominalGHz)
	w.F64(c.MinGHz)
	w.F64(c.MaxTurboGHz)
	w.F64(c.TurboBinGHz)
	w.F64(c.LLCMB)
	w.Int(c.LLCWays)
	w.F64(c.DRAMGBs)
	w.F64(c.TDPWatts)
	w.F64(c.IdleWatts)
	w.F64(c.CoreDynWatts)
	w.F64(c.FreqExponent)
	w.F64(c.LinkGbps)
}

func readHW(r *codec.Reader, c *hw.Config) {
	c.Sockets = r.Int()
	c.CoresPerSocket = r.Int()
	c.ThreadsPerCore = r.Int()
	c.NominalGHz = r.F64()
	c.MinGHz = r.F64()
	c.MaxTurboGHz = r.F64()
	c.TurboBinGHz = r.F64()
	c.LLCMB = r.F64()
	c.LLCWays = r.Int()
	c.DRAMGBs = r.F64()
	c.TDPWatts = r.F64()
	c.IdleWatts = r.F64()
	c.CoreDynWatts = r.F64()
	c.FreqExponent = r.F64()
	c.LinkGbps = r.F64()
}

// appendTelemetry encodes one epoch's counters in declaration order.
func appendTelemetry(w *codec.Writer, t *machine.Telemetry) {
	w.Duration(t.Time)
	w.Duration(t.Lat.Mean)
	w.Duration(t.Lat.P50)
	w.Duration(t.Lat.P95)
	w.Duration(t.Lat.P99)
	w.F64(t.Lat.OfferedQPS)
	w.F64(t.Lat.ServedQPS)
	w.F64(t.Lat.Utilisation)
	w.Duration(t.TailLatency)
	w.F64(t.LCLoad)
	w.F64(t.LCServed)
	w.Int(t.LCCores)
	w.Int(t.LCWays)
	w.F64(t.LCFreqGHz)
	w.F64(t.LCDRAMGBs)
	w.F64(t.LCTxGBs)
	w.Bool(t.BEEnabled)
	w.Int(t.BECores)
	w.Int(t.BEWays)
	w.F64(t.BEFreqCap)
	w.F64(t.BEDRAMGBs)
	w.F64(t.BETxGBs)
	w.F64(t.BERateNorm)
	w.F64(t.BEFreqGHz)
	w.F64(t.BEGoodCPUSec)
	w.F64(t.BELostCPUSec)
	w.Floats(t.SocketPowerW)
	w.F64(t.PowerFracTDP)
	w.F64(t.MaxSocketPower)
	w.F64(t.CPUUtil)
	w.F64(t.DRAMTotalGBs)
	w.F64(t.DRAMDemandGBs)
	w.F64(t.DRAMUtil)
	w.Floats(t.DRAMSocketUtil)
	w.Floats(t.PerCoreDRAMGBs)
	w.F64(t.LinkUtil)
	w.F64(t.EMU)
}

// readTelemetry decodes one entry, packing its float series into backing
// and returning the grown backing.
func readTelemetry(r *codec.Reader, t *machine.Telemetry, backing []float64) []float64 {
	t.Time = r.Duration()
	t.Lat.Mean = r.Duration()
	t.Lat.P50 = r.Duration()
	t.Lat.P95 = r.Duration()
	t.Lat.P99 = r.Duration()
	t.Lat.OfferedQPS = r.F64()
	t.Lat.ServedQPS = r.F64()
	t.Lat.Utilisation = r.F64()
	t.TailLatency = r.Duration()
	t.LCLoad = r.F64()
	t.LCServed = r.F64()
	t.LCCores = r.Int()
	t.LCWays = r.Int()
	t.LCFreqGHz = r.F64()
	t.LCDRAMGBs = r.F64()
	t.LCTxGBs = r.F64()
	t.BEEnabled = r.Bool()
	t.BECores = r.Int()
	t.BEWays = r.Int()
	t.BEFreqCap = r.F64()
	t.BEDRAMGBs = r.F64()
	t.BETxGBs = r.F64()
	t.BERateNorm = r.F64()
	t.BEFreqGHz = r.F64()
	t.BEGoodCPUSec = r.F64()
	t.BELostCPUSec = r.F64()
	t.SocketPowerW, backing = r.FloatsInto(backing)
	t.PowerFracTDP = r.F64()
	t.MaxSocketPower = r.F64()
	t.CPUUtil = r.F64()
	t.DRAMTotalGBs = r.F64()
	t.DRAMDemandGBs = r.F64()
	t.DRAMUtil = r.F64()
	t.DRAMSocketUtil, backing = r.FloatsInto(backing)
	t.PerCoreDRAMGBs, backing = r.FloatsInto(backing)
	t.LinkUtil = r.F64()
	t.EMU = r.F64()
	return backing
}

func appendController(w *codec.Writer, st *core.ControllerState) {
	w.Bool(st.Enabled)
	w.Bool(st.GrowAllowed)
	w.Duration(st.CooldownTill)
	w.F64(st.Slack)
	w.Duration(st.Latency)
	w.Duration(st.LastTelemetry)
	w.Int(int(st.StaleState))
	w.Int(int(st.State))
	w.F64(st.LastBW)
	w.F64(st.BWDerivative)
	w.Int(st.PendingWays)
	w.Bool(st.PendingCheck)
	w.F64(st.RateBefore)
	w.Duration(st.LastGrow)
	w.Duration(st.NextTop)
	w.Duration(st.NextCore)
	w.Duration(st.NextPower)
	w.Duration(st.NextNet)
}

func readController(r *codec.Reader) core.ControllerState {
	return core.ControllerState{
		Enabled:       r.Bool(),
		GrowAllowed:   r.Bool(),
		CooldownTill:  r.Duration(),
		Slack:         r.F64(),
		Latency:       r.Duration(),
		LastTelemetry: r.Duration(),
		StaleState:    core.StaleState(r.Int()),
		State:         core.GrowState(r.Int()),
		LastBW:        r.F64(),
		BWDerivative:  r.F64(),
		PendingWays:   r.Int(),
		PendingCheck:  r.Bool(),
		RateBefore:    r.F64(),
		LastGrow:      r.Duration(),
		NextTop:       r.Duration(),
		NextCore:      r.Duration(),
		NextPower:     r.Duration(),
		NextNet:       r.Duration(),
	}
}

// appendSched encodes the scheduler state. DisabledSince writes in
// ascending node order so identical states produce identical bytes.
func appendSched(w *codec.Writer, st *sched.State) {
	w.String(st.Policy)
	w.Duration(st.Backoff)
	w.Duration(st.EvictGrace)
	w.U64(st.RNGSeed)
	w.U64(st.Tick)

	w.U32(uint32(len(st.Jobs)))
	for i := range st.Jobs {
		j := &st.Jobs[i]
		w.Int(j.ID)
		w.String(j.Spec.Name)
		w.String(j.Spec.Workload)
		w.Int(j.Spec.Demand)
		w.Duration(j.Spec.Work)
		w.Int(j.Spec.Priority)
		w.Int(j.Spec.Retries)
		w.Duration(j.Spec.Submit)
		w.Int(int(j.State))
		w.Int(j.Node)
		w.Int(j.Attempts)
		w.Duration(j.SubmittedAt)
		w.Duration(j.ReadyAt)
		w.Duration(j.StartedAt)
		w.Duration(j.FinishedAt)
		w.F64(j.CPUSec)
		w.F64(j.WastedCPUSec)
	}

	nodes := make([]int, 0, len(st.DisabledSince))
	for n := range st.DisabledSince {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	w.U32(uint32(len(nodes)))
	for _, n := range nodes {
		w.Int(n)
		w.Duration(st.DisabledSince[n])
	}

	a := &st.Accounting
	w.Int(a.Submitted)
	w.Int(a.Dispatches)
	w.Int(a.Completed)
	w.Int(a.Evictions)
	w.Int(a.Failed)
	w.Int(a.Cancelled)
	w.Int(a.Aborted)
	w.F64(a.GoodCPUSec)
	w.F64(a.WastedCPUSec)
	w.Duration(a.QueueDelaySum)
	w.Int(a.QueueDepth)
	w.Int(a.Running)
	w.Int(a.MaxQueueDepth)

	w.U32(uint32(len(st.Log)))
	for i := range st.Log {
		d := &st.Log[i]
		w.Duration(d.At)
		w.Int(int(d.Kind))
		w.Int(d.Job)
		w.Int(d.Node)
		w.String(d.Detail)
	}
}

func readSched(r *codec.Reader) sched.State {
	st := sched.State{
		Policy:     r.String(),
		Backoff:    r.Duration(),
		EvictGrace: r.Duration(),
		RNGSeed:    r.U64(),
		Tick:       r.U64(),
	}

	if n := r.Count(64); n > 0 {
		st.Jobs = make([]sched.Job, n)
		for i := range st.Jobs {
			j := &st.Jobs[i]
			j.ID = r.Int()
			j.Spec.Name = r.String()
			j.Spec.Workload = r.String()
			j.Spec.Demand = r.Int()
			j.Spec.Work = r.Duration()
			j.Spec.Priority = r.Int()
			j.Spec.Retries = r.Int()
			j.Spec.Submit = r.Duration()
			j.State = sched.JobState(r.Int())
			j.Node = r.Int()
			j.Attempts = r.Int()
			j.SubmittedAt = r.Duration()
			j.ReadyAt = r.Duration()
			j.StartedAt = r.Duration()
			j.FinishedAt = r.Duration()
			j.CPUSec = r.F64()
			j.WastedCPUSec = r.F64()
		}
	}

	if n := r.Count(16); n > 0 {
		st.DisabledSince = make(map[int]time.Duration, n)
		for i := 0; i < n; i++ {
			node := r.Int()
			st.DisabledSince[node] = r.Duration()
		}
	}

	a := &st.Accounting
	a.Submitted = r.Int()
	a.Dispatches = r.Int()
	a.Completed = r.Int()
	a.Evictions = r.Int()
	a.Failed = r.Int()
	a.Cancelled = r.Int()
	a.Aborted = r.Int()
	a.GoodCPUSec = r.F64()
	a.WastedCPUSec = r.F64()
	a.QueueDelaySum = r.Duration()
	a.QueueDepth = r.Int()
	a.Running = r.Int()
	a.MaxQueueDepth = r.Int()

	if n := r.Count(36); n > 0 {
		st.Log = make([]sched.Decision, n)
		for i := range st.Log {
			d := &st.Log[i]
			d.At = r.Duration()
			d.Kind = sched.ActionKind(r.Int())
			d.Job = r.Int()
			d.Node = r.Int()
			d.Detail = r.String()
		}
	}
	return st
}

func appendFaults(w *codec.Writer, fs *FaultState) {
	w.U32(uint32(len(fs.Schedule)))
	for i := range fs.Schedule {
		appendFault(w, &fs.Schedule[i])
	}
	w.Int(fs.Next)
	w.Int(fs.Applied)
	w.U32(uint32(len(fs.Pending)))
	for i := range fs.Pending {
		appendFault(w, &fs.Pending[i])
	}
	w.U32(uint32(len(fs.Nodes)))
	for _, n := range fs.Nodes {
		w.Duration(n.DownUntil)
		w.Duration(n.BlackoutUntil)
		w.Duration(n.ActFailUntil)
		w.Duration(n.SlowUntil)
	}
}

func readFaults(r *codec.Reader) *FaultState {
	fs := &FaultState{}
	if n := r.Count(44); n > 0 {
		fs.Schedule = make([]fault.Fault, n)
		for i := range fs.Schedule {
			fs.Schedule[i] = readFault(r)
		}
	}
	fs.Next = r.Int()
	fs.Applied = r.Int()
	if n := r.Count(44); n > 0 {
		fs.Pending = make([]fault.Fault, n)
		for i := range fs.Pending {
			fs.Pending[i] = readFault(r)
		}
	}
	if n := r.Count(32); n > 0 {
		fs.Nodes = make([]NodeFaultState, n)
		for i := range fs.Nodes {
			fs.Nodes[i] = NodeFaultState{
				DownUntil:     r.Duration(),
				BlackoutUntil: r.Duration(),
				ActFailUntil:  r.Duration(),
				SlowUntil:     r.Duration(),
			}
		}
	}
	return fs
}

func appendFault(w *codec.Writer, f *fault.Fault) {
	w.Duration(f.At)
	w.Int(int(f.Kind))
	w.Int(f.Node)
	w.Duration(f.Duration)
	w.F64(f.Factor)
	w.String(f.Workload)
}

func readFault(r *codec.Reader) fault.Fault {
	return fault.Fault{
		At:       r.Duration(),
		Kind:     fault.Kind(r.Int()),
		Node:     r.Int(),
		Duration: r.Duration(),
		Factor:   r.F64(),
		Workload: r.String(),
	}
}

func appendTracker(w *codec.Writer, st *slo.TrackerState) {
	w.Int(st.Epochs)
	w.I64(st.Violations)
	for _, c := range st.Counts {
		w.I64(c)
	}
	w.Bytes32(st.Ring)
	w.Bool(st.Page)
	w.Bool(st.Ticket)
}

func readTracker(r *codec.Reader) slo.TrackerState {
	st := slo.TrackerState{
		Epochs:     r.Int(),
		Violations: r.I64(),
	}
	for i := range st.Counts {
		st.Counts[i] = r.I64()
	}
	if b := r.Bytes32(); len(b) > 0 {
		st.Ring = append([]byte(nil), b...)
	}
	st.Page = r.Bool()
	st.Ticket = r.Bool()
	return st
}
