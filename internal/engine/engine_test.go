package engine_test

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"

	"heracles/internal/engine"
	"heracles/internal/experiment"
	"heracles/internal/machine"
	"heracles/internal/scenario"
	"heracles/internal/sched"
	"heracles/internal/serve"
	"heracles/internal/workload"
)

// testLab is shared by every test in the package so workload calibration
// and DRAM-model profiling run once.
var testLab = experiment.DefaultLab()

// clusterConfig is a small Heracles fleet with root sampling, dynamic
// targets and a job scheduler — every optional subsystem on, so the
// determinism and checkpoint tests cover all the state there is.
func clusterConfig(workers int, jobs []sched.JobSpec) engine.Config {
	brain := testLab.BE("brain")
	sview := testLab.BE("streetview")
	cfg := engine.Config{
		Nodes:          4,
		HW:             testLab.Cfg,
		LC:             testLab.LC("websearch"),
		Heracles:       true,
		Model:          testLab.DRAMModel("websearch"),
		LookupBE:       testLab.BE,
		SLOScale:       0.8,
		RootSamples:    50,
		Seed:           7,
		DynamicTargets: true,
		Workers:        workers,
	}
	if jobs != nil {
		cfg.Sched = &sched.Config{Policy: sched.SlackGreedy{}, Jobs: jobs, EvictGrace: 20 * time.Second}
	} else {
		cfg.InitialBEs = func(i int) []engine.BEAttach {
			if i%2 == 0 {
				return []engine.BEAttach{{WL: brain, Placement: workload.PlaceDedicated}}
			}
			return []engine.BEAttach{{WL: sview, Placement: workload.PlaceDedicated}}
		}
	}
	return cfg
}

// testScenario exercises every event kind.
func testScenario(d time.Duration) scenario.Scenario {
	return scenario.Scenario{
		Name:     "mix",
		Duration: d,
		Load: scenario.Sum(
			scenario.Flat(0.35),
			scenario.FlashCrowd{Start: d / 3, Rise: 30 * time.Second, Hold: time.Minute, Fall: 30 * time.Second, Amp: 0.35},
		),
		Events: []scenario.Event{
			scenario.BEArrive(2*time.Minute, 1, "brain"),
			scenario.Degrade(3*time.Minute, 2, 1.2),
			scenario.SLOScale(4*time.Minute, scenario.AllLeaves, 0.75),
			scenario.BEDepart(5*time.Minute, 1, "brain"),
			scenario.LoadScale(6*time.Minute, 1.1),
		},
	}
}

func testJobs(n int) []sched.JobSpec {
	jobs := make([]sched.JobSpec, n)
	for i := range jobs {
		jobs[i] = sched.JobSpec{
			Name: "j", Workload: "brain", Demand: 1 + i%3,
			Work: 90 * time.Second, Retries: 3,
			Submit: time.Duration(i) * 20 * time.Second,
		}
	}
	return jobs
}

// runStats steps the engine n epochs and returns the per-epoch stats.
func runStats(e *engine.Engine, n int) []engine.EpochStat {
	out := make([]engine.EpochStat, n)
	for i := 0; i < n; i++ {
		out[i] = e.Step().Stat
	}
	return out
}

// TestWorkerCountInvariant pins the engine's claim that any worker count
// produces bit-identical results: events and scheduler ticks apply in a
// sequential window, nodes write only their own slots, reductions run in
// node order, and root sampling draws from (seed, epoch) streams.
func TestWorkerCountInvariant(t *testing.T) {
	const epochs = 480
	sc := testScenario(epochs * time.Second)

	seq := engine.New(clusterConfig(1, testJobs(8)))
	defer seq.Close()
	seq.InstallScenario(sc)
	a := runStats(seq, epochs)

	par := engine.New(clusterConfig(4, testJobs(8)))
	defer par.Close()
	par.InstallScenario(sc)
	b := runStats(par, epochs)

	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("epoch %d diverged between workers=1 and workers=4:\n%+v\nvs\n%+v", i, a[i], b[i])
		}
	}
	if rep := seq.SchedReport(); rep == nil || rep.Accounting.Completed == 0 {
		t.Fatalf("scheduler completed no jobs; the invariance test exercised nothing: %+v", rep)
	}
}

// telPoint is the scalar slice of one epoch compared bit-for-bit by the
// batch-vs-live test.
type telPoint struct {
	tail    time.Duration
	emu     float64
	load    float64
	beCores int
	beWays  int
	dram    float64
	power   float64
}

func point(tel machine.Telemetry) telPoint {
	return telPoint{
		tail:    tel.TailLatency,
		emu:     tel.EMU,
		load:    tel.LCLoad,
		beCores: tel.BECores,
		beWays:  tel.BEWays,
		dram:    tel.DRAMUtil,
		power:   tel.PowerFracTDP,
	}
}

// TestBatchVsMailboxBitIdentical is the engine-level equivalence test
// that replaces the old per-layer batch-vs-live determinism tests: the
// same single-node configuration is run once by stepping the engine
// directly (the batch style internal/cluster drives) and once inside a
// live serve.Instance whose driver goroutine advances its engine under
// the command mailbox — with harmless commands interleaved to exercise
// the mailbox path. Telemetry must match bit-for-bit: the equivalence is
// structural (one engine, two drivers), and this test pins it.
func TestBatchVsMailboxBitIdentical(t *testing.T) {
	const epochs = 240
	scSpec := &serve.ScenarioSpec{
		Name:      "det",
		DurationS: 200,
		Load: &serve.ShapeSpec{Kind: "sum", Terms: []serve.ShapeSpec{
			{Kind: "flat", Value: 0.35},
			{Kind: "flashcrowd", StartS: 80, RiseS: 20, HoldS: 20, FallS: 20, Amp: 0.5},
		}},
		Events: []serve.EventSpec{
			{AtS: 40, Kind: "be-arrive", Workload: "streetview"},
			{AtS: 120, Kind: "slo-scale", Factor: 0.7},
			{AtS: 160, Kind: "be-depart", Workload: "streetview"},
		},
	}
	sc, err := scSpec.Build()
	if err != nil {
		t.Fatal(err)
	}

	// Batch: step the engine directly.
	brain := testLab.BE("brain")
	cfg := engine.Config{
		Nodes:    1,
		HW:       testLab.Cfg,
		LC:       testLab.LC("websearch"),
		Heracles: true,
		Model:    testLab.DRAMModel("websearch"),
		LookupBE: testLab.BE,
		Load:     0.35,
		Workers:  1,
		InitialBEs: func(int) []engine.BEAttach {
			return []engine.BEAttach{{WL: brain, Placement: workload.PlaceDedicated}}
		},
	}
	batchEng := engine.New(cfg)
	defer batchEng.Close()
	batchEng.InstallScenario(sc)
	batch := make([]telPoint, epochs)
	for i := 0; i < epochs; i++ {
		batch[i] = point(batchEng.Step().Tel[0])
	}

	// Live: the same spec inside a mailbox-driven instance.
	srv := serve.New(serve.Config{Lab: testLab})
	defer srv.Close()
	live := make([]telPoint, 0, epochs)
	done := make(chan struct{})
	var once sync.Once
	inst, err := srv.CreateInstance(serve.InstanceSpec{
		BEs:       []serve.BEAttachment{{Workload: "brain"}},
		Load:      0.35,
		Speed:     serve.SpeedMax,
		MaxEpochs: epochs,
		Scenario:  scSpec,
		EpochHook: func(_ *machine.Machine, tel machine.Telemetry) {
			live = append(live, point(tel))
			if len(live) == epochs {
				once.Do(func() { close(done) })
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Interleave no-op commands through the mailbox while the driver
	// free-runs: the mutation path must not perturb the simulation.
	noops := make(chan struct{})
	go func() {
		defer close(noops)
		for j := 0; j < 50; j++ {
			if _, err := inst.DetachBE("no-such-workload"); err != nil {
				return
			}
			inst.Status()
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("live instance resolved %d/%d epochs", len(live), epochs)
	}
	<-noops

	for i := 0; i < epochs; i++ {
		if batch[i] != live[i] {
			t.Fatalf("batch and mailbox-driven runs diverged at epoch %d:\n%+v\nvs\n%+v", i, batch[i], live[i])
		}
	}
}

// TestCheckpointRoundTrip is the checkpoint property test: for several
// snapshot epochs k, running k epochs, serializing a checkpoint through
// its JSON wire form, restoring, and running the remainder must be
// bit-identical — stat for stat — to a run that was never interrupted.
// The configuration has every stateful subsystem on (controllers, job
// scheduler, scenario events, dynamic leaf targets, root sampling), so
// any piece of state missing from the checkpoint fails the comparison.
func TestCheckpointRoundTrip(t *testing.T) {
	const epochs = 480
	sc := testScenario(epochs * time.Second)

	ref := engine.New(clusterConfig(1, testJobs(8)))
	defer ref.Close()
	ref.InstallScenario(sc)
	want := runStats(ref, epochs)

	for _, k := range []int{60, 240, 419} {
		pre := engine.New(clusterConfig(1, testJobs(8)))
		pre.InstallScenario(sc)
		prefix := runStats(pre, k)
		for i := range prefix {
			if prefix[i] != want[i] {
				pre.Close()
				t.Fatalf("k=%d: prefix epoch %d diverged before the checkpoint", k, i)
			}
		}
		cp := pre.Snapshot()
		pre.Close()

		// Round-trip the wire format: what restores is the serialized
		// artifact, not the in-memory object graph.
		var buf bytes.Buffer
		if err := cp.Encode(&buf); err != nil {
			t.Fatalf("k=%d: encode: %v", k, err)
		}
		decoded, err := engine.DecodeCheckpoint(&buf)
		if err != nil {
			t.Fatalf("k=%d: decode: %v", k, err)
		}
		if decoded.Epoch != uint64(k) {
			t.Fatalf("k=%d: checkpoint records epoch %d", k, decoded.Epoch)
		}

		res, err := engine.Restore(clusterConfig(1, testJobs(8)), decoded, &sc)
		if err != nil {
			t.Fatalf("k=%d: restore: %v", k, err)
		}
		got := runStats(res, epochs-k)
		rep := res.SchedReport()
		res.Close()
		for i := range got {
			if got[i] != want[k+i] {
				t.Fatalf("k=%d: restored run diverged at epoch %d (%d after restore):\n%+v\nvs\n%+v",
					k, k+i, i, want[k+i], got[i])
			}
		}
		// The scheduler's lifetime accounting must also survive: the
		// resumed report equals the uninterrupted run's.
		if refRep := ref.SchedReport(); !reflect.DeepEqual(rep.Accounting, refRep.Accounting) {
			t.Fatalf("k=%d: scheduler accounting diverged:\n%+v\nvs\n%+v", k, rep.Accounting, refRep.Accounting)
		}
	}
}

// TestRestoreRejectsMismatches covers the checkpoint validation
// surface: wrong version, missing scenario, wrong scenario name.
func TestRestoreRejectsMismatches(t *testing.T) {
	sc := testScenario(120 * time.Second)
	e := engine.New(clusterConfig(1, nil))
	e.InstallScenario(sc)
	runStats(e, 10)
	cp := e.Snapshot()
	e.Close()

	bad := *cp
	bad.Version = 99
	if _, err := engine.Restore(clusterConfig(1, nil), &bad, &sc); err == nil {
		t.Fatal("version mismatch accepted")
	}
	if _, err := engine.Restore(clusterConfig(1, nil), cp, nil); err == nil {
		t.Fatal("missing scenario accepted")
	}
	other := sc
	other.Name = "other"
	if _, err := engine.Restore(clusterConfig(1, nil), cp, &other); err == nil {
		t.Fatal("scenario name mismatch accepted")
	}
}
