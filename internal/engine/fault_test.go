package engine_test

import (
	"testing"
	"time"

	"heracles/internal/core"
	"heracles/internal/engine"
	"heracles/internal/fault"
)

// faultSchedule covers every fault kind with deterministic, hand-placed
// times so the tests can assert exactly which epochs are affected.
func faultSchedule() []fault.Fault {
	return []fault.Fault{
		{At: 60 * time.Second, Kind: fault.LeafCrash, Node: 0, Duration: 45 * time.Second},
		{At: 90 * time.Second, Kind: fault.TelemetryBlackout, Node: 1, Duration: 2 * time.Minute},
		{At: 2 * time.Minute, Kind: fault.SlowMachine, Node: 2, Duration: time.Minute, Factor: 1.5},
		{At: 3 * time.Minute, Kind: fault.ActuationFail, Node: 3, Duration: 30 * time.Second},
		{At: 4 * time.Minute, Kind: fault.BEKill, Node: fault.AllNodes},
	}
}

// TestFaultWorkerInvariance extends the engine's determinism claim to
// fault injection: a run with a fault schedule is bit-identical for any
// worker count, and the schedule visibly perturbs the run (down epochs).
func TestFaultWorkerInvariance(t *testing.T) {
	const epochs = 360
	sc := testScenario(epochs * time.Second)

	run := func(workers int) []engine.EpochStat {
		cfg := clusterConfig(workers, testJobs(8))
		cfg.Faults = faultSchedule()
		e := engine.New(cfg)
		defer e.Close()
		e.InstallScenario(sc)
		return runStats(e, epochs)
	}
	a, b := run(1), run(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("epoch %d diverged between workers=1 and workers=4 under faults:\n%+v\nvs\n%+v", i, a[i], b[i])
		}
	}
	down := 0
	for _, st := range a {
		down += st.Down
	}
	if down == 0 {
		t.Fatal("no down epochs recorded; the crash fault did not land")
	}
}

// TestFaultWindowsAndStaleLatch steps one engine through the schedule and
// checks the observable effects of each window: the crashed leaf counts
// as down (and as an SLO violation) exactly while its outage lasts, the
// blacked-out leaf's controller walks the stale-telemetry latch to
// emergency and recovers, and the fault counter matches the schedule.
func TestFaultWindowsAndStaleLatch(t *testing.T) {
	cfg := clusterConfig(2, nil)
	cfg.Faults = faultSchedule()
	e := engine.New(cfg)
	defer e.Close()
	sc := testScenario(360 * time.Second)
	e.InstallScenario(sc)

	var stats []engine.EpochStat
	step := func(until time.Duration) {
		for e.Now() < until {
			stats = append(stats, e.Step().Stat)
		}
	}

	step(60 * time.Second)
	if e.NodeDown(0) {
		t.Fatal("node 0 down before its crash fires")
	}
	step(70 * time.Second)
	if !e.NodeDown(0) {
		t.Fatal("node 0 not down inside its outage window")
	}
	last := stats[len(stats)-1]
	if last.Down != 1 {
		t.Fatalf("EpochStat.Down = %d inside the outage, want 1", last.Down)
	}
	if last.Violations == 0 {
		t.Fatal("a down leaf must count as an SLO violation")
	}

	step(110 * time.Second) // outage ends at 105s
	if e.NodeDown(0) {
		t.Fatal("node 0 still down after its outage expired")
	}
	if stats[len(stats)-1].Down != 0 {
		t.Fatalf("EpochStat.Down = %d after recovery, want 0", stats[len(stats)-1].Down)
	}

	// Blackout on node 1 runs 90s-210s; the controller polls every 15s,
	// so by 160s it is 60s stale (4x poll) and must have latched to
	// emergency.
	step(165 * time.Second)
	if st := e.Controller(1).TelemetryState(); st != core.StaleEmergency {
		t.Fatalf("node 1 stale state mid-blackout = %v, want StaleEmergency", st)
	}
	step(240 * time.Second) // blackout over at 210s, next polls see data
	if st := e.Controller(1).TelemetryState(); st != core.StaleOK {
		t.Fatalf("node 1 stale state after blackout = %v, want StaleOK", st)
	}

	step(360 * time.Second)
	if got := e.FaultsApplied(); got != len(cfg.Faults) {
		t.Fatalf("FaultsApplied = %d, want %d", got, len(cfg.Faults))
	}
}

// TestFaultCheckpointRestore snapshots a faulted run mid-schedule —
// inside the node-0 outage and the node-1 blackout, with two faults still
// pending — and verifies the restored engine continues bit-identically
// to the uninterrupted run.
func TestFaultCheckpointRestore(t *testing.T) {
	const epochs = 360
	sc := testScenario(epochs * time.Second)

	mkCfg := func() engine.Config {
		cfg := clusterConfig(2, testJobs(8))
		cfg.Faults = faultSchedule()
		return cfg
	}

	ref := engine.New(mkCfg())
	defer ref.Close()
	ref.InstallScenario(sc)
	want := runStats(ref, epochs)

	// Cut at epoch 100: node 0 is down (60s-105s), node 1 blacked out
	// (90s-210s), slow-machine/actfail/be-kill still pending.
	cut := 100
	e := engine.New(mkCfg())
	e.InstallScenario(sc)
	runStats(e, cut)
	if !e.NodeDown(0) {
		t.Fatal("test premise broken: node 0 should be down at the cut")
	}
	cp := e.Snapshot()
	e.Close()

	r, err := engine.Restore(mkCfg(), cp, &sc)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	defer r.Close()
	got := runStats(r, epochs-cut)
	for i := range got {
		if got[i] != want[cut+i] {
			t.Fatalf("epoch %d diverged after restore:\n%+v\nvs uninterrupted\n%+v", cut+i, got[i], want[cut+i])
		}
	}
	if r.FaultsApplied() != ref.FaultsApplied() {
		t.Fatalf("restored run applied %d faults, uninterrupted %d", r.FaultsApplied(), ref.FaultsApplied())
	}
}

// TestInjectFaultValidation: live injection rejects malformed faults and
// schedules valid ones for the next epoch.
func TestInjectFaultValidation(t *testing.T) {
	cfg := clusterConfig(1, nil)
	e := engine.New(cfg)
	defer e.Close()
	e.InstallScenario(testScenario(60 * time.Second))

	if err := e.InjectFault(fault.Fault{Kind: fault.LeafCrash, Node: 99, Duration: time.Second}); err == nil {
		t.Fatal("InjectFault accepted an out-of-range node")
	}
	if err := e.InjectFault(fault.Fault{Kind: fault.LeafCrash, Node: 0}); err == nil {
		t.Fatal("InjectFault accepted a crash without a duration")
	}
	if err := e.InjectFault(fault.Fault{Kind: fault.LeafCrash, Node: 0, Duration: 10 * time.Second}); err != nil {
		t.Fatalf("InjectFault rejected a valid fault: %v", err)
	}
	res := e.Step()
	if res.FaultsApplied != 1 {
		t.Fatalf("FaultsApplied in the epoch after injection = %d, want 1", res.FaultsApplied)
	}
	if !e.NodeDown(0) {
		t.Fatal("node 0 not down after injected crash")
	}
}
