package engine_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"heracles/internal/engine"
	"heracles/internal/scenario"
	"heracles/internal/sched"
	"heracles/internal/slo"
)

// sloConfig is a two-node Heracles engine with the error-budget tracker
// attached; admission coupling is off unless a test turns it on.
func sloConfig(workers int, admission bool) engine.Config {
	return engine.Config{
		Nodes:    2,
		HW:       testLab.Cfg,
		LC:       testLab.LC("websearch"),
		Heracles: true,
		Model:    testLab.DRAMModel("websearch"),
		LookupBE: testLab.BE,
		Seed:     11,
		Workers:  workers,
		SLO:      &slo.Config{Admission: admission},
	}
}

// sloCrowd is a flash crowd with a service-time degradation riding it
// (an overloaded downstream dependency), saturating the fleet long
// enough to walk the full alert ladder: the page fires (~8.6min of
// sustained violation), the ticket fires (~43min), and the page
// resolves about an hour after the crowd passes, once the violations
// age out of its 1h window. The ticket's 3d window drains far beyond
// the horizon, so its resolution is pinned at the unit level.
func sloCrowd(d time.Duration) scenario.Scenario {
	return scenario.Scenario{
		Name:     "slo-crowd",
		Duration: d,
		Load: scenario.Sum(
			scenario.Flat(0.40),
			scenario.FlashCrowd{Start: 2 * time.Minute, Rise: 30 * time.Second,
				Hold: 47 * time.Minute, Fall: 30 * time.Second, Amp: 0.6},
		),
		Events: []scenario.Event{
			scenario.Degrade(150*time.Second, scenario.AllLeaves, 1.3),
			scenario.Degrade(48*time.Minute, scenario.AllLeaves, 1),
		},
	}
}

// runTransitions steps the engine n epochs collecting every alert edge
// (copied out of the engine's scratch).
func runTransitions(e *engine.Engine, n int) []slo.Transition {
	var out []slo.Transition
	for i := 0; i < n; i++ {
		out = append(out, e.Step().SLOTransitions...)
	}
	return out
}

func transitionString(ts []slo.Transition) string {
	var b strings.Builder
	for _, tr := range ts {
		state := "resolve"
		if tr.Firing {
			state = "fire"
		}
		fmt.Fprintf(&b, "%d n%d %s %s\n", tr.Epoch, tr.Node, tr.Alert, state)
	}
	return b.String()
}

// TestSLOAlertSequenceGolden pins the exact alert sequence a FlashCrowd
// scenario produces — the fire/resolve edges, their epochs and their
// order — and requires it bit-identical between workers=1 and
// workers=4. Any change to the burn-rate math, the violation predicate
// or the reduction order shows up here as a diff.
func TestSLOAlertSequenceGolden(t *testing.T) {
	const epochs = 7200 // 2 sim-hours: the page resolve needs the 1h drain
	sc := sloCrowd(epochs * time.Second)

	seq := engine.New(sloConfig(1, false))
	defer seq.Close()
	seq.InstallScenario(sc)
	got := runTransitions(seq, epochs)

	par := engine.New(sloConfig(4, false))
	defer par.Close()
	par.InstallScenario(sc)
	got4 := runTransitions(par, epochs)

	if a, b := transitionString(got), transitionString(got4); a != b {
		t.Fatalf("alert sequence depends on worker count:\nworkers=1:\n%sworkers=4:\n%s", a, b)
	}

	golden := strings.TrimLeft(`
669 n0 page fire
669 n1 page fire
669 n-1 page fire
2743 n0 ticket fire
2743 n1 ticket fire
2743 n-1 ticket fire
6223 n0 page resolve
6223 n1 page resolve
6223 n-1 page resolve
`, "\n")
	if s := transitionString(got); s != golden {
		t.Fatalf("alert sequence diverged from golden:\ngot:\n%swant:\n%s", s, golden)
	}
}

// TestSLOCheckpointRoundTrip snapshots mid-alert (page firing, ticket
// not yet) through the JSON wire form and requires the restored engine
// to replay the identical remaining alert sequence and land on the
// identical final budget status — window contents, alert latches and
// lifetime counters all travel in the checkpoint.
func TestSLOCheckpointRoundTrip(t *testing.T) {
	const epochs, k = 3600, 800 // k is inside the page-firing window
	sc := sloCrowd(epochs * time.Second)

	ref := engine.New(sloConfig(1, false))
	defer ref.Close()
	ref.InstallScenario(sc)
	want := runTransitions(ref, epochs)

	pre := engine.New(sloConfig(1, false))
	pre.InstallScenario(sc)
	prefix := runTransitions(pre, k)
	if !pre.SLOClusterStatus().Page {
		t.Fatalf("snapshot epoch %d should be inside the page-firing window", k)
	}
	cp := pre.Snapshot()
	pre.Close()

	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := engine.DecodeCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Restore(sloConfig(1, false), decoded, &sc)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if !res.SLOClusterStatus().Page {
		t.Fatal("restored engine lost the firing page alert")
	}
	rest := runTransitions(res, epochs-k)

	whole := transitionString(want)
	spliced := transitionString(prefix) + transitionString(rest)
	if whole != spliced {
		t.Fatalf("restored run's alert sequence diverged:\nuninterrupted:\n%sspliced:\n%s", whole, spliced)
	}
	if a, b := ref.SLOClusterStatus(), res.SLOClusterStatus(); a != b {
		t.Fatalf("final budget status diverged:\n%+v\nvs\n%+v", a, b)
	}
	for i := 0; i < ref.Nodes(); i++ {
		if a, b := ref.SLONodeStatus(i), res.SLONodeStatus(i); a != b {
			t.Fatalf("node %d budget status diverged:\n%+v\nvs\n%+v", i, a, b)
		}
	}
}

// TestSLORestoreRejectsMismatchedConfig: a checkpoint carrying budget
// state cannot restore into an engine without Config.SLO.
func TestSLORestoreRejectsMismatchedConfig(t *testing.T) {
	e := engine.New(sloConfig(1, false))
	runStats(e, 10)
	cp := e.Snapshot()
	e.Close()
	cfg := sloConfig(1, false)
	cfg.SLO = nil
	if _, err := engine.Restore(cfg, cp, nil); err == nil {
		t.Fatal("restore without Config.SLO accepted a budget-carrying checkpoint")
	}
}

// sloCrowdShock is the burn-rate-admission acceptance scenario: a flash
// crowd with a degraded dependency (mass violations, fires the page),
// then an hour of aftershock blips — 6s of deg-1.2 every 41s — that
// violate the SLO only when best-effort work is colocated. The
// instantaneous controller re-admits BE five minutes after each caught
// violation and walks into the next blip; the burn-rate gate holds
// admission until the crowd's violations drain from the 1h window,
// riding out the whole aftershock phase.
func sloCrowdShock(d time.Duration) scenario.Scenario {
	evs := []scenario.Event{
		scenario.Degrade(150*time.Second, scenario.AllLeaves, 1.35),
		scenario.Degrade(13*time.Minute, scenario.AllLeaves, 1),
	}
	for t := 800; t < 4400; t += 41 {
		evs = append(evs,
			scenario.Degrade(time.Duration(t)*time.Second, scenario.AllLeaves, 1.2),
			scenario.Degrade(time.Duration(t+6)*time.Second, scenario.AllLeaves, 1))
	}
	return scenario.Scenario{
		Name:     "slo-crowd-shock",
		Duration: d,
		Load: scenario.Sum(
			scenario.Flat(0.70),
			scenario.FlashCrowd{Start: 2 * time.Minute, Rise: 30 * time.Second,
				Hold: 10 * time.Minute, Fall: 30 * time.Second, Amp: 0.30},
		),
		Events: evs,
	}
}

// sloJobs submits a steady stream of best-effort work so admission has
// something to throttle.
func sloJobs(n int) []sched.JobSpec {
	jobs := make([]sched.JobSpec, n)
	for i := range jobs {
		jobs[i] = sched.JobSpec{
			Name: "j", Workload: "brain", Demand: 1 + i%2,
			Work: 45 * time.Second, Retries: 1000,
			Submit: time.Duration(i) * 20 * time.Second,
		}
	}
	return jobs
}

// TestSLOAdmissionBeatsController runs the crowd+aftershock scenario
// twice from the same seed — once with the controller alone, once with
// burn-rate admission coupled in — and requires the gated run to spend
// strictly less error budget at equal goodput: the same jobs complete
// the same work, with fewer evictions and no wasted best-effort CPU,
// because the gate defers dispatch past the shaky aftershock hour
// instead of re-admitting into every blip. It also checks the gate's
// mechanics: AdmitHold is advertised exactly while the page fires, and
// overlaps controller-enabled epochs (the gate binds where the
// controller alone would dispatch).
func TestSLOAdmissionBeatsController(t *testing.T) {
	const epochs = 9000
	type arm struct {
		budget  float64
		overlap int
		acct    sched.Accounting
	}
	run := func(admission bool) arm {
		cfg := sloConfig(1, admission)
		cfg.SLO = &slo.Config{Objective: 0.999, Admission: admission}
		cfg.Sched = &sched.Config{Policy: sched.SlackGreedy{}, Jobs: sloJobs(24), EvictGrace: 20 * time.Second}
		e := engine.New(cfg)
		defer e.Close()
		e.InstallScenario(sloCrowdShock(epochs * time.Second))
		var a arm
		for i := 0; i < epochs; i++ {
			e.Step()
			for n := 0; n < e.Nodes(); n++ {
				hold := e.NodeState(n).AdmitHold
				page := e.SLONodeStatus(n).Page
				if hold != (admission && page) {
					t.Fatalf("epoch %d node %d: AdmitHold=%v with admission=%v page=%v", i, n, hold, admission, page)
				}
				if hold && e.Controller(n).BEEnabled() {
					a.overlap++
				}
			}
		}
		a.budget = e.SLOClusterStatus().BudgetSpent
		a.acct = e.SchedReport().Accounting
		return a
	}

	open := run(false)
	gated := run(true)

	if gated.overlap == 0 {
		t.Fatal("the admission gate never bound: AdmitHold never overlapped a controller-enabled node")
	}
	if gated.budget >= open.budget {
		t.Fatalf("burn-rate admission did not save budget: gated %.4f vs controller-only %.4f", gated.budget, open.budget)
	}
	if gated.acct.Completed < open.acct.Completed || gated.acct.GoodCPUSec < open.acct.GoodCPUSec {
		t.Fatalf("admission sacrificed goodput: gated %d jobs/%.0f cpu-s vs %d jobs/%.0f cpu-s",
			gated.acct.Completed, gated.acct.GoodCPUSec, open.acct.Completed, open.acct.GoodCPUSec)
	}
	if gated.acct.Evictions >= open.acct.Evictions {
		t.Fatalf("admission did not reduce evictions: %d vs %d", gated.acct.Evictions, open.acct.Evictions)
	}
}
