package actuate

import (
	"fmt"
	"os"
	"path/filepath"

	"heracles/internal/isolation"
)

// Layout holds the paths used by FSActuator, relative to its root.
type Layout struct {
	CgroupDir  string // cgroup v1 cpuset hierarchy
	ResctrlDir string // resctrl filesystem
	CPUFreqDir string // sysfs cpufreq root
	TCDir      string // directory for HTB class state (one file per class)
}

// DefaultLayout mirrors the standard Linux mount points.
func DefaultLayout() Layout {
	return Layout{
		CgroupDir:  "sys/fs/cgroup/cpuset",
		ResctrlDir: "sys/fs/resctrl",
		CPUFreqDir: "sys/devices/system/cpu",
		TCDir:      "run/heracles/tc",
	}
}

// FSActuator writes isolation settings as kernel-format files.
type FSActuator struct {
	root   string
	layout Layout
}

// NewFS returns an actuator rooted at dir.
func NewFS(dir string, layout Layout) *FSActuator {
	return &FSActuator{root: dir, layout: layout}
}

func (a *FSActuator) path(parts ...string) string {
	return filepath.Join(append([]string{a.root}, parts...)...)
}

func (a *FSActuator) writeFile(path, content string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("actuate: %v", err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return fmt.Errorf("actuate: %v", err)
	}
	return nil
}

// SetCPUSet pins a task group (e.g. "lc" or "be") to the given CPUs by
// writing its cgroup cpuset.cpus file.
func (a *FSActuator) SetCPUSet(group string, cpus isolation.CPUSet) error {
	p := a.path(a.layout.CgroupDir, group, "cpuset.cpus")
	return a.writeFile(p, cpus.String()+"\n")
}

// ReadCPUSet reads a task group's cpuset back.
func (a *FSActuator) ReadCPUSet(group string) (isolation.CPUSet, error) {
	p := a.path(a.layout.CgroupDir, group, "cpuset.cpus")
	b, err := os.ReadFile(p)
	if err != nil {
		return nil, fmt.Errorf("actuate: %v", err)
	}
	return isolation.ParseCPUSet(string(b))
}

// SetSchemata programs a resctrl class-of-service group with per-socket
// L3 way masks. Masks must be contiguous, per Intel CAT rules.
func (a *FSActuator) SetSchemata(cos string, perSocket []isolation.WayMask) error {
	for i, m := range perSocket {
		if !m.Contiguous() {
			return fmt.Errorf("actuate: way mask %s for socket %d is not contiguous", m, i)
		}
	}
	p := a.path(a.layout.ResctrlDir, cos, "schemata")
	return a.writeFile(p, isolation.SchemataLine(perSocket)+"\n")
}

// ReadSchemata reads a resctrl group's L3 masks back.
func (a *FSActuator) ReadSchemata(cos string) ([]isolation.WayMask, error) {
	p := a.path(a.layout.ResctrlDir, cos, "schemata")
	b, err := os.ReadFile(p)
	if err != nil {
		return nil, fmt.Errorf("actuate: %v", err)
	}
	return isolation.ParseSchemataLine(string(b))
}

// SetFreqCap writes scaling_max_freq (in kHz) for each CPU in the set.
func (a *FSActuator) SetFreqCap(cpus isolation.CPUSet, ghz float64) error {
	khz := isolation.FreqKHz(ghz)
	for _, c := range cpus.Sorted() {
		p := a.path(a.layout.CPUFreqDir, fmt.Sprintf("cpu%d", c), "cpufreq", "scaling_max_freq")
		if err := a.writeFile(p, fmt.Sprintf("%d\n", khz)); err != nil {
			return err
		}
	}
	return nil
}

// ReadFreqCap reads one CPU's scaling_max_freq back in GHz.
func (a *FSActuator) ReadFreqCap(cpu int) (float64, error) {
	p := a.path(a.layout.CPUFreqDir, fmt.Sprintf("cpu%d", cpu), "cpufreq", "scaling_max_freq")
	b, err := os.ReadFile(p)
	if err != nil {
		return 0, fmt.Errorf("actuate: %v", err)
	}
	var khz int
	if _, err := fmt.Sscanf(string(b), "%d", &khz); err != nil {
		return 0, fmt.Errorf("actuate: bad scaling_max_freq %q: %v", string(b), err)
	}
	return isolation.KHzToGHz(khz), nil
}

// SetHTBCeil records the ceil rate of a traffic class (the `ceil`
// parameter of tc class change ... htb, §4.1).
func (a *FSActuator) SetHTBCeil(class string, gbs float64) error {
	p := a.path(a.layout.TCDir, class+".ceil")
	return a.writeFile(p, isolation.HTBRate(gbs)+"\n")
}

// ReadHTBCeil reads a class ceil back in GB/s.
func (a *FSActuator) ReadHTBCeil(class string) (float64, error) {
	p := a.path(a.layout.TCDir, class+".ceil")
	b, err := os.ReadFile(p)
	if err != nil {
		return 0, fmt.Errorf("actuate: %v", err)
	}
	var s string
	if _, err := fmt.Sscanf(string(b), "%s", &s); err != nil {
		return 0, fmt.Errorf("actuate: %v", err)
	}
	return isolation.ParseHTBRate(s)
}
