// Package actuate applies Heracles' isolation decisions to a target.
// Two backends exist: the simulated machine (which implements the
// controller's Env interface directly), and FSActuator, which writes the
// exact file formats the Linux kernel interfaces expect — cgroup cpuset
// lists, resctrl schemata, cpufreq scaling_max_freq, and an HTB class
// dump — under a configurable root directory.
//
// On a real server the root would be "/" (so paths resolve to
// /sys/fs/resctrl, /sys/fs/cgroup, ...); in tests and demos any
// directory works, and the written trees can be inspected or replayed.
// cmd/heraclesd's -fsroot flag mirrors every epoch's actuations through
// this package while the controller runs, in both the headless and the
// served (control-plane) modes.
package actuate
