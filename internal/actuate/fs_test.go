package actuate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"heracles/internal/isolation"
)

func newTestFS(t *testing.T) *FSActuator {
	t.Helper()
	return NewFS(t.TempDir(), DefaultLayout())
}

func TestCPUSetRoundTrip(t *testing.T) {
	fs := newTestFS(t)
	want := isolation.NewCPUSet(0, 1, 2, 10, 11)
	if err := fs.SetCPUSet("lc", want); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadCPUSet("lc")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("got %v", got.Sorted())
	}
}

func TestCPUSetFileFormat(t *testing.T) {
	root := t.TempDir()
	fs := NewFS(root, DefaultLayout())
	if err := fs.SetCPUSet("be", isolation.RangeCPUSet(28, 35)); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(root, "sys/fs/cgroup/cpuset/be/cpuset.cpus"))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "28-35\n" {
		t.Fatalf("file content %q", string(b))
	}
}

func TestSchemataRoundTrip(t *testing.T) {
	fs := newTestFS(t)
	lc, _ := isolation.NewWayMask(2, 18)
	be, _ := isolation.NewWayMask(0, 2)
	if err := fs.SetSchemata("lc", []isolation.WayMask{lc, lc}); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetSchemata("be", []isolation.WayMask{be, be}); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadSchemata("lc")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != lc || got[1] != lc {
		t.Fatalf("schemata = %v", got)
	}
}

func TestSchemataRejectsNonContiguous(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.SetSchemata("lc", []isolation.WayMask{0b1010}); err == nil {
		t.Fatal("non-contiguous mask accepted")
	}
}

func TestSchemataFileFormat(t *testing.T) {
	root := t.TempDir()
	fs := NewFS(root, DefaultLayout())
	m, _ := isolation.NewWayMask(0, 20)
	if err := fs.SetSchemata("lc", []isolation.WayMask{m, m}); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(filepath.Join(root, "sys/fs/resctrl/lc/schemata"))
	if strings.TrimSpace(string(b)) != "L3:0=fffff;1=fffff" {
		t.Fatalf("schemata file = %q", string(b))
	}
}

func TestFreqCapRoundTrip(t *testing.T) {
	fs := newTestFS(t)
	cpus := isolation.NewCPUSet(3, 4)
	if err := fs.SetFreqCap(cpus, 1.8); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFreqCap(4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1.8 {
		t.Fatalf("cap = %v", got)
	}
}

func TestFreqCapFileFormat(t *testing.T) {
	root := t.TempDir()
	fs := NewFS(root, DefaultLayout())
	if err := fs.SetFreqCap(isolation.NewCPUSet(7), 2.3); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(filepath.Join(root, "sys/devices/system/cpu/cpu7/cpufreq/scaling_max_freq"))
	if strings.TrimSpace(string(b)) != "2300000" {
		t.Fatalf("scaling_max_freq = %q", string(b))
	}
}

func TestHTBCeilRoundTrip(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.SetHTBCeil("be", 0.55); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadHTBCeil("be")
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.549 || got > 0.551 {
		t.Fatalf("ceil = %v", got)
	}
}

func TestReadMissingFileFails(t *testing.T) {
	fs := newTestFS(t)
	if _, err := fs.ReadCPUSet("nope"); err == nil {
		t.Fatal("read of missing group succeeded")
	}
	if _, err := fs.ReadSchemata("nope"); err == nil {
		t.Fatal("read of missing schemata succeeded")
	}
	if _, err := fs.ReadFreqCap(99); err == nil {
		t.Fatal("read of missing cpufreq succeeded")
	}
	if _, err := fs.ReadHTBCeil("nope"); err == nil {
		t.Fatal("read of missing tc class succeeded")
	}
}
